// Package explore implements campaign-level budget policies: the logic that
// decides how many executions each (tool, program) cell of a campaign matrix
// deserves. The paper's evaluation (and this repository's campaigns up to
// summary schema v2) spends a uniform N executions per cell; a Converge
// policy instead stops a cell once its observable statistics — detection
// rate, distinct race keys, litmus outcome histogram — have stabilized, and
// the campaign reassigns the freed budget to cells that are still diverging.
//
// Determinism contract: a policy's stopping decision for a cell is a pure
// function of that cell's own observation stream in execution-index order.
// Executions themselves are pure functions of (tool, program, seed), so a
// cell's stop point — and therefore the whole campaign's budget assignment —
// is independent of worker count and scheduling, preserving the campaign
// invariant that workers=1 and workers=K aggregate identically.
package explore

import "fmt"

// Obs is the per-execution observation a tracker consumes, in execution
// index order.
type Obs struct {
	// Detected reports whether the execution exhibited the cell's detection
	// signal (a race for the data-structure suite, an assertion violation
	// for the injected-bug suite, a forbidden outcome for litmus cells).
	Detected bool
	// RaceKeys are the deduplicated race keys of this execution.
	RaceKeys []string
	// Outcome is the litmus outcome string ("" for benchmark cells and
	// starved litmus executions).
	Outcome string
}

// Tracker follows one cell's observation stream and decides convergence.
// Trackers are confined to one cell and observe executions strictly in
// index order; they are not goroutine-safe.
type Tracker interface {
	// Observe folds the next execution's observation into the tracker.
	Observe(Obs)
	// Converged reports whether the cell's statistics have stabilized and
	// further executions may be cut. A converged tracker may keep observing
	// (budget-reassignment waves re-check convergence) but must stay
	// deterministic.
	Converged() bool
}

// TrackerState is a serializable snapshot of one tracker's internals: the
// forensics surface behind the /debug/converge endpoint and the
// cell_converge_state events. Every field is a pure function of the cell's
// observation stream, so snapshots taken at deterministic points (wave
// barriers) are identical across worker counts.
type TrackerState struct {
	// Execs and Detected are the full-stream totals; DetectionRate is their
	// ratio (0 when no executions have been observed).
	Execs         int     `json:"execs"`
	Detected      int     `json:"detected"`
	DetectionRate float64 `json:"detection_rate"`
	// DistinctRaces counts the race keys ever seen; Outcomes is the full
	// litmus-outcome histogram ("" excluded).
	DistinctRaces int            `json:"distinct_races"`
	Outcomes      map[string]int `json:"outcomes,omitempty"`
	// Window is the configured trailing-window size and WindowFilled how
	// much of it has been observed; WindowDetected and WindowOutcomes are
	// the window's contents, and WindowNewInfo reports whether any window
	// execution introduced a never-seen race key or outcome.
	Window         int            `json:"window"`
	WindowFilled   int            `json:"window_filled"`
	WindowDetected int            `json:"window_detected"`
	WindowOutcomes map[string]int `json:"window_outcomes,omitempty"`
	WindowNewInfo  bool           `json:"window_new_info"`
	// RateShift is the detection-rate movement the window causes (full-stream
	// rate minus pre-window rate); OutcomeL1 the L1 distance between the
	// normalized outcome histograms with and without the window. Both are 0
	// when the corresponding leg has nothing to compare (no pre-window
	// history, no outcomes).
	RateShift float64 `json:"rate_shift"`
	OutcomeL1 float64 `json:"outcome_l1"`
	// MinExecs and Epsilon echo the policy thresholds the verdict applied.
	MinExecs int     `json:"min_execs"`
	Epsilon  float64 `json:"epsilon"`
	// Converged is the tracker's current verdict.
	Converged bool `json:"converged"`
}

// Introspector is the optional Tracker extension for trackers that can
// explain their convergence decision. Converge trackers implement it;
// Uniform's never-converging tracker has nothing to explain and does not.
type Introspector interface {
	State() TrackerState
}

// Policy decides per-cell budgets.
type Policy interface {
	// Name renders the policy and its parameters for the summary spec echo.
	Name() string
	// NewTracker returns a fresh tracker for one cell.
	NewTracker() Tracker
	// Chunk is the number of executions a cell runs between convergence
	// checks; 0 means the cell's whole budget at once (no early stopping).
	Chunk() int
}

// Uniform is the fixed-budget policy: every cell runs its full budget, the
// schema v1/v2 behaviour.
type Uniform struct{}

// Name implements Policy.
func (Uniform) Name() string { return "uniform" }

// NewTracker implements Policy.
func (Uniform) NewTracker() Tracker { return neverConverged{} }

// Chunk implements Policy.
func (Uniform) Chunk() int { return 0 }

type neverConverged struct{}

func (neverConverged) Observe(Obs)     {}
func (neverConverged) Converged() bool { return false }

// Converge stops a cell once its race-detection rate and litmus-outcome
// histogram converge. The zero value means the defaults below.
type Converge struct {
	// MinExecs is the floor before convergence may be declared (default 20).
	MinExecs int
	// Window is the trailing window the convergence test compares against
	// the preceding history (default 10).
	Window int
	// Epsilon bounds the movement the trailing window may cause: the
	// detection rate (as a fraction) may shift by at most Epsilon, and the
	// L1 distance between the normalized outcome distributions with and
	// without the window must stay within Epsilon (default 0.02).
	Epsilon float64
}

// DefaultConverge are the Converge defaults.
const (
	DefaultConvergeMinExecs = 20
	DefaultConvergeWindow   = 10
	DefaultConvergeEpsilon  = 0.02
)

func (c Converge) withDefaults() Converge {
	if c.MinExecs <= 0 {
		c.MinExecs = DefaultConvergeMinExecs
	}
	if c.Window <= 0 {
		c.Window = DefaultConvergeWindow
	}
	if c.Epsilon <= 0 {
		c.Epsilon = DefaultConvergeEpsilon
	}
	if c.MinExecs < c.Window {
		c.MinExecs = c.Window
	}
	return c
}

// Name implements Policy.
func (c Converge) Name() string {
	c = c.withDefaults()
	return fmt.Sprintf("converge(min=%d,window=%d,eps=%g)", c.MinExecs, c.Window, c.Epsilon)
}

// Chunk implements Policy.
func (c Converge) Chunk() int { return c.withDefaults().Window }

// NewTracker implements Policy.
func (c Converge) NewTracker() Tracker {
	c = c.withDefaults()
	return &convergeTracker{cfg: c, raceSeen: map[string]bool{}, outcomes: map[string]int{}}
}

// windowObs is the digest of one observed execution kept in the trailing
// window ring: whether it hit the signal, its outcome, and whether it
// introduced a race key or outcome never seen before in this cell.
type windowObs struct {
	detected bool
	outcome  string
	newInfo  bool
}

type convergeTracker struct {
	cfg Converge

	n        int
	detected int
	raceSeen map[string]bool
	outcomes map[string]int // full histogram, "" excluded

	// ring holds the trailing Window observations.
	ring []windowObs
	next int
}

// Observe implements Tracker.
func (t *convergeTracker) Observe(o Obs) {
	w := windowObs{detected: o.Detected, outcome: o.Outcome}
	for _, k := range o.RaceKeys {
		if !t.raceSeen[k] {
			t.raceSeen[k] = true
			w.newInfo = true
		}
	}
	if o.Outcome != "" {
		if t.outcomes[o.Outcome] == 0 {
			w.newInfo = true
		}
		t.outcomes[o.Outcome]++
	}
	t.n++
	if o.Detected {
		t.detected++
	}
	if len(t.ring) < t.cfg.Window {
		t.ring = append(t.ring, w)
	} else {
		t.ring[t.next] = w
		t.next = (t.next + 1) % len(t.ring)
	}
}

// windowStats is the shared analysis of the trailing window that both the
// Converged verdict and the State introspection snapshot read.
type windowStats struct {
	detected int
	outcomes map[string]int
	newInfo  bool
	// rateShift is the detection-rate movement the window causes; valid only
	// when haveRate (there is pre-window history to compare against).
	haveRate  bool
	rateShift float64
	// l1 is the outcome-distribution movement; valid only when haveL1 (the
	// cell has outcomes). priorTotZero flags the all-outcomes-arrived-inside-
	// the-window case, which vetoes convergence on its own.
	haveL1       bool
	l1           float64
	priorTotZero bool
}

func (t *convergeTracker) windowStats() windowStats {
	s := windowStats{outcomes: map[string]int{}}
	for _, w := range t.ring {
		if w.newInfo {
			s.newInfo = true
		}
		if w.detected {
			s.detected++
		}
		if w.outcome != "" {
			s.outcomes[w.outcome]++
		}
	}
	if base := t.n - len(t.ring); base > 0 && t.n > 0 {
		full := float64(t.detected) / float64(t.n)
		prior := float64(t.detected-s.detected) / float64(base)
		s.haveRate = true
		s.rateShift = full - prior
	}
	tot := 0
	for _, n := range t.outcomes {
		tot += n
	}
	if tot > 0 {
		s.haveL1 = true
		priorTot := 0
		for out, n := range t.outcomes {
			priorTot += n - s.outcomes[out]
		}
		if priorTot == 0 {
			s.priorTotZero = true
		} else {
			for out, n := range t.outcomes {
				p := float64(n) / float64(tot)
				q := float64(n-s.outcomes[out]) / float64(priorTot)
				if d := p - q; d >= 0 {
					s.l1 += d
				} else {
					s.l1 -= d
				}
			}
		}
	}
	return s
}

// Converged implements Tracker: the cell has run its floor, the trailing
// window introduced no new race key or outcome, and removing the window
// moves neither the detection rate nor the outcome distribution by more
// than Epsilon. (With no history before the window there is no rate to
// compare, and the leg is skipped; the new-information test still vetoes
// windows that introduced unseen race keys or outcomes. Cells with no
// outcomes at all — benchmarks — skip the L1 leg.)
func (t *convergeTracker) Converged() bool {
	if t.n < t.cfg.MinExecs || len(t.ring) < t.cfg.Window {
		return false
	}
	s := t.windowStats()
	if s.newInfo {
		return false
	}
	if s.haveRate && (s.rateShift > t.cfg.Epsilon || s.rateShift < -t.cfg.Epsilon) {
		return false
	}
	if s.priorTotZero {
		return false // all outcomes arrived inside the window
	}
	if s.haveL1 && s.l1 > t.cfg.Epsilon {
		return false
	}
	return true
}

// State implements Introspector.
func (t *convergeTracker) State() TrackerState {
	s := t.windowStats()
	st := TrackerState{
		Execs:          t.n,
		Detected:       t.detected,
		DistinctRaces:  len(t.raceSeen),
		Window:         t.cfg.Window,
		WindowFilled:   len(t.ring),
		WindowDetected: s.detected,
		WindowNewInfo:  s.newInfo,
		RateShift:      s.rateShift,
		OutcomeL1:      s.l1,
		MinExecs:       t.cfg.MinExecs,
		Epsilon:        t.cfg.Epsilon,
		Converged:      t.Converged(),
	}
	if t.n > 0 {
		st.DetectionRate = float64(t.detected) / float64(t.n)
	}
	if len(t.outcomes) > 0 {
		st.Outcomes = make(map[string]int, len(t.outcomes))
		for k, v := range t.outcomes {
			st.Outcomes[k] = v
		}
	}
	if len(s.outcomes) > 0 {
		st.WindowOutcomes = s.outcomes
	}
	return st
}
