// Package explore implements campaign-level budget policies: the logic that
// decides how many executions each (tool, program) cell of a campaign matrix
// deserves. The paper's evaluation (and this repository's campaigns up to
// summary schema v2) spends a uniform N executions per cell; a Converge
// policy instead stops a cell once its observable statistics — detection
// rate, distinct race keys, litmus outcome histogram — have stabilized, and
// the campaign reassigns the freed budget to cells that are still diverging.
//
// Determinism contract: a policy's stopping decision for a cell is a pure
// function of that cell's own observation stream in execution-index order.
// Executions themselves are pure functions of (tool, program, seed), so a
// cell's stop point — and therefore the whole campaign's budget assignment —
// is independent of worker count and scheduling, preserving the campaign
// invariant that workers=1 and workers=K aggregate identically.
package explore

import "fmt"

// Obs is the per-execution observation a tracker consumes, in execution
// index order.
type Obs struct {
	// Detected reports whether the execution exhibited the cell's detection
	// signal (a race for the data-structure suite, an assertion violation
	// for the injected-bug suite, a forbidden outcome for litmus cells).
	Detected bool
	// RaceKeys are the deduplicated race keys of this execution.
	RaceKeys []string
	// Outcome is the litmus outcome string ("" for benchmark cells and
	// starved litmus executions).
	Outcome string
}

// Tracker follows one cell's observation stream and decides convergence.
// Trackers are confined to one cell and observe executions strictly in
// index order; they are not goroutine-safe.
type Tracker interface {
	// Observe folds the next execution's observation into the tracker.
	Observe(Obs)
	// Converged reports whether the cell's statistics have stabilized and
	// further executions may be cut. A converged tracker may keep observing
	// (budget-reassignment waves re-check convergence) but must stay
	// deterministic.
	Converged() bool
}

// Policy decides per-cell budgets.
type Policy interface {
	// Name renders the policy and its parameters for the summary spec echo.
	Name() string
	// NewTracker returns a fresh tracker for one cell.
	NewTracker() Tracker
	// Chunk is the number of executions a cell runs between convergence
	// checks; 0 means the cell's whole budget at once (no early stopping).
	Chunk() int
}

// Uniform is the fixed-budget policy: every cell runs its full budget, the
// schema v1/v2 behaviour.
type Uniform struct{}

// Name implements Policy.
func (Uniform) Name() string { return "uniform" }

// NewTracker implements Policy.
func (Uniform) NewTracker() Tracker { return neverConverged{} }

// Chunk implements Policy.
func (Uniform) Chunk() int { return 0 }

type neverConverged struct{}

func (neverConverged) Observe(Obs)     {}
func (neverConverged) Converged() bool { return false }

// Converge stops a cell once its race-detection rate and litmus-outcome
// histogram converge. The zero value means the defaults below.
type Converge struct {
	// MinExecs is the floor before convergence may be declared (default 20).
	MinExecs int
	// Window is the trailing window the convergence test compares against
	// the preceding history (default 10).
	Window int
	// Epsilon bounds the movement the trailing window may cause: the
	// detection rate (as a fraction) may shift by at most Epsilon, and the
	// L1 distance between the normalized outcome distributions with and
	// without the window must stay within Epsilon (default 0.02).
	Epsilon float64
}

// DefaultConverge are the Converge defaults.
const (
	DefaultConvergeMinExecs = 20
	DefaultConvergeWindow   = 10
	DefaultConvergeEpsilon  = 0.02
)

func (c Converge) withDefaults() Converge {
	if c.MinExecs <= 0 {
		c.MinExecs = DefaultConvergeMinExecs
	}
	if c.Window <= 0 {
		c.Window = DefaultConvergeWindow
	}
	if c.Epsilon <= 0 {
		c.Epsilon = DefaultConvergeEpsilon
	}
	if c.MinExecs < c.Window {
		c.MinExecs = c.Window
	}
	return c
}

// Name implements Policy.
func (c Converge) Name() string {
	c = c.withDefaults()
	return fmt.Sprintf("converge(min=%d,window=%d,eps=%g)", c.MinExecs, c.Window, c.Epsilon)
}

// Chunk implements Policy.
func (c Converge) Chunk() int { return c.withDefaults().Window }

// NewTracker implements Policy.
func (c Converge) NewTracker() Tracker {
	c = c.withDefaults()
	return &convergeTracker{cfg: c, raceSeen: map[string]bool{}, outcomes: map[string]int{}}
}

// windowObs is the digest of one observed execution kept in the trailing
// window ring: whether it hit the signal, its outcome, and whether it
// introduced a race key or outcome never seen before in this cell.
type windowObs struct {
	detected bool
	outcome  string
	newInfo  bool
}

type convergeTracker struct {
	cfg Converge

	n        int
	detected int
	raceSeen map[string]bool
	outcomes map[string]int // full histogram, "" excluded

	// ring holds the trailing Window observations.
	ring []windowObs
	next int
}

// Observe implements Tracker.
func (t *convergeTracker) Observe(o Obs) {
	w := windowObs{detected: o.Detected, outcome: o.Outcome}
	for _, k := range o.RaceKeys {
		if !t.raceSeen[k] {
			t.raceSeen[k] = true
			w.newInfo = true
		}
	}
	if o.Outcome != "" {
		if t.outcomes[o.Outcome] == 0 {
			w.newInfo = true
		}
		t.outcomes[o.Outcome]++
	}
	t.n++
	if o.Detected {
		t.detected++
	}
	if len(t.ring) < t.cfg.Window {
		t.ring = append(t.ring, w)
	} else {
		t.ring[t.next] = w
		t.next = (t.next + 1) % len(t.ring)
	}
}

// Converged implements Tracker: the cell has run its floor, the trailing
// window introduced no new race key or outcome, and removing the window
// moves neither the detection rate nor the outcome distribution by more
// than Epsilon.
func (t *convergeTracker) Converged() bool {
	if t.n < t.cfg.MinExecs || len(t.ring) < t.cfg.Window {
		return false
	}
	winDetected, winOutcomes := 0, map[string]int{}
	for _, w := range t.ring {
		if w.newInfo {
			return false
		}
		if w.detected {
			winDetected++
		}
		if w.outcome != "" {
			winOutcomes[w.outcome]++
		}
	}
	// Detection-rate movement. With no history before the window (n ==
	// Window) there is nothing to compare against, and the leg is skipped;
	// the new-information test above still vetoes windows that introduced
	// unseen race keys or outcomes.
	if base := t.n - t.cfg.Window; base > 0 {
		full := float64(t.detected) / float64(t.n)
		prior := float64(t.detected-winDetected) / float64(base)
		if diff := full - prior; diff > t.cfg.Epsilon || diff < -t.cfg.Epsilon {
			return false
		}
	}

	// Outcome-distribution movement (L1 over normalized histograms). Cells
	// with no outcomes at all (benchmarks) skip this leg.
	tot := 0
	for _, n := range t.outcomes {
		tot += n
	}
	if tot > 0 {
		priorTot := 0
		for out, n := range t.outcomes {
			priorTot += n - winOutcomes[out]
		}
		if priorTot == 0 {
			return false // all outcomes arrived inside the window
		}
		var l1 float64
		for out, n := range t.outcomes {
			p := float64(n) / float64(tot)
			q := float64(n-winOutcomes[out]) / float64(priorTot)
			if d := p - q; d >= 0 {
				l1 += d
			} else {
				l1 -= d
			}
		}
		if l1 > t.cfg.Epsilon {
			return false
		}
	}
	return true
}
