// snapshot.go makes converge trackers checkpointable. A tracker's verdict is
// a pure function of its cell's observation stream in index order, so a
// serialized snapshot taken at a deterministic wave barrier, restored into a
// fresh tracker, must continue the stream exactly as the original would have
// — that equivalence is what lets a resumed campaign reproduce the budget
// decisions (and therefore the artifact bytes) of an uninterrupted one.
package explore

import "sort"

// WindowObsState is one trailing-window entry of a TrackerSnapshot, in
// oldest-to-newest order.
type WindowObsState struct {
	Detected bool   `json:"detected,omitempty"`
	Outcome  string `json:"outcome,omitempty"`
	NewInfo  bool   `json:"new_info,omitempty"`
}

// TrackerSnapshot is the serializable full state of a converge tracker:
// everything Observe has folded in, in a canonical encoding (race keys
// sorted, window oldest→newest) so identical streams snapshot to identical
// bytes. A nil snapshot denotes a stateless tracker (Uniform's).
type TrackerSnapshot struct {
	N        int              `json:"n"`
	Detected int              `json:"detected"`
	RaceKeys []string         `json:"race_keys,omitempty"`
	Outcomes map[string]int   `json:"outcomes,omitempty"`
	Window   []WindowObsState `json:"window,omitempty"`
}

// Snapshotter is the optional Tracker extension for trackers whose state can
// be checkpointed and restored. Converge trackers implement it; Uniform's
// never-converging tracker is stateless and snapshots to nil.
type Snapshotter interface {
	// Snapshot serializes the tracker's state; nil means "stateless".
	Snapshot() *TrackerSnapshot
	// Restore replaces the tracker's state with the snapshot's. Restoring a
	// nil snapshot resets to the fresh state.
	Restore(*TrackerSnapshot)
}

// Snapshot implements Snapshotter.
func (neverConverged) Snapshot() *TrackerSnapshot { return nil }

// Restore implements Snapshotter.
func (neverConverged) Restore(*TrackerSnapshot) {}

// Snapshot implements Snapshotter. The window is emitted oldest→newest
// regardless of the internal ring cursor, so the encoding is canonical.
func (t *convergeTracker) Snapshot() *TrackerSnapshot {
	s := &TrackerSnapshot{N: t.n, Detected: t.detected}
	if len(t.raceSeen) > 0 {
		s.RaceKeys = make([]string, 0, len(t.raceSeen))
		for k := range t.raceSeen {
			s.RaceKeys = append(s.RaceKeys, k)
		}
		sort.Strings(s.RaceKeys)
	}
	if len(t.outcomes) > 0 {
		s.Outcomes = make(map[string]int, len(t.outcomes))
		for k, v := range t.outcomes {
			s.Outcomes[k] = v
		}
	}
	ordered := t.ring
	if len(t.ring) == t.cfg.Window && t.next != 0 {
		ordered = append(append([]windowObs{}, t.ring[t.next:]...), t.ring[:t.next]...)
	}
	for _, w := range ordered {
		s.Window = append(s.Window, WindowObsState{Detected: w.detected, Outcome: w.outcome, NewInfo: w.newInfo})
	}
	return s
}

// Restore implements Snapshotter. The restored ring holds the snapshot's
// window oldest-first with the cursor at 0, which is behaviourally identical
// to the original ring: the next Observe overwrites the oldest entry either
// way, and window analysis is order-insensitive.
func (t *convergeTracker) Restore(s *TrackerSnapshot) {
	t.n, t.detected = 0, 0
	t.raceSeen = map[string]bool{}
	t.outcomes = map[string]int{}
	t.ring = nil
	t.next = 0
	if s == nil {
		return
	}
	t.n, t.detected = s.N, s.Detected
	for _, k := range s.RaceKeys {
		t.raceSeen[k] = true
	}
	for k, v := range s.Outcomes {
		t.outcomes[k] = v
	}
	for _, w := range s.Window {
		t.ring = append(t.ring, windowObs{detected: w.Detected, outcome: w.Outcome, newInfo: w.NewInfo})
	}
}
