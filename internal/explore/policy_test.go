package explore

import (
	"fmt"
	"testing"
)

func TestUniformNeverConverges(t *testing.T) {
	p := Uniform{}
	if p.Chunk() != 0 {
		t.Fatalf("Uniform.Chunk() = %d, want 0 (whole budget)", p.Chunk())
	}
	tr := p.NewTracker()
	for i := 0; i < 1000; i++ {
		tr.Observe(Obs{Detected: true, Outcome: "x"})
		if tr.Converged() {
			t.Fatalf("uniform tracker converged after %d observations", i+1)
		}
	}
}

func TestConvergeStableStreamConvergesAtFloor(t *testing.T) {
	c := Converge{MinExecs: 20, Window: 10, Epsilon: 0.02}
	tr := c.NewTracker()
	for i := 0; i < 19; i++ {
		tr.Observe(Obs{Detected: true, RaceKeys: []string{"r1"}, Outcome: "a"})
		if tr.Converged() {
			t.Fatalf("converged after %d < MinExecs observations", i+1)
		}
	}
	tr.Observe(Obs{Detected: true, RaceKeys: []string{"r1"}, Outcome: "a"})
	if !tr.Converged() {
		t.Fatal("perfectly stable stream did not converge at the MinExecs floor")
	}
}

func TestConvergeNewRaceKeyInWindowBlocksConvergence(t *testing.T) {
	c := Converge{MinExecs: 20, Window: 10, Epsilon: 1} // epsilon wide open
	tr := c.NewTracker()
	for i := 0; i < 25; i++ {
		tr.Observe(Obs{Detected: true, RaceKeys: []string{"r1"}})
	}
	if !tr.Converged() {
		t.Fatal("stable race stream did not converge")
	}
	tr.Observe(Obs{Detected: true, RaceKeys: []string{"r1", "r2"}})
	if tr.Converged() {
		t.Fatal("a first-seen race key inside the window must block convergence")
	}
	// Once the novelty leaves the trailing window, convergence returns.
	for i := 0; i < 10; i++ {
		tr.Observe(Obs{Detected: true, RaceKeys: []string{"r1", "r2"}})
	}
	if !tr.Converged() {
		t.Fatal("novelty outside the window must not block convergence forever")
	}
}

func TestConvergeNewOutcomeInWindowBlocksConvergence(t *testing.T) {
	c := Converge{MinExecs: 20, Window: 10, Epsilon: 1}
	tr := c.NewTracker()
	for i := 0; i < 30; i++ {
		tr.Observe(Obs{Outcome: fmt.Sprintf("o%d", i%2)})
	}
	if !tr.Converged() {
		t.Fatal("two-outcome alternating stream did not converge")
	}
	tr.Observe(Obs{Outcome: "fresh"})
	if tr.Converged() {
		t.Fatal("a first-seen outcome inside the window must block convergence")
	}
}

func TestConvergeRateDriftBlocksConvergence(t *testing.T) {
	c := Converge{MinExecs: 20, Window: 10, Epsilon: 0.02}
	tr := c.NewTracker()
	// 20 undetected executions, then a trailing window full of detections:
	// the rate is still climbing, so the cell must not stop.
	for i := 0; i < 20; i++ {
		tr.Observe(Obs{})
	}
	if !tr.Converged() {
		t.Fatal("flat zero-rate stream did not converge")
	}
	for i := 0; i < 10; i++ {
		tr.Observe(Obs{Detected: true, RaceKeys: []string{"r"}})
	}
	if tr.Converged() {
		t.Fatal("rate climbing through the window must block convergence")
	}
}

func TestConvergeOutcomeDistributionDriftBlocksConvergence(t *testing.T) {
	c := Converge{MinExecs: 40, Window: 20, Epsilon: 0.05}
	tr := c.NewTracker()
	// 40 executions split 50/50 over two outcomes...
	for i := 0; i < 40; i++ {
		tr.Observe(Obs{Outcome: fmt.Sprintf("o%d", i%2)})
	}
	if !tr.Converged() {
		t.Fatal("balanced histogram did not converge")
	}
	// ...then a window that is all o0: the distribution is shifting.
	for i := 0; i < 20; i++ {
		tr.Observe(Obs{Outcome: "o0"})
	}
	if tr.Converged() {
		t.Fatal("histogram drift through the window must block convergence")
	}
}

func TestConvergeDefaultsAndName(t *testing.T) {
	var c Converge
	if c.Chunk() != DefaultConvergeWindow {
		t.Errorf("zero-value Chunk() = %d, want %d", c.Chunk(), DefaultConvergeWindow)
	}
	if want := "converge(min=20,window=10,eps=0.02)"; c.Name() != want {
		t.Errorf("Name() = %q, want %q", c.Name(), want)
	}
	// MinExecs below Window is raised to Window.
	c = Converge{MinExecs: 3, Window: 10}
	tr := c.NewTracker()
	for i := 0; i < 9; i++ {
		tr.Observe(Obs{})
		if tr.Converged() {
			t.Fatal("converged before a full window was observed")
		}
	}
	tr.Observe(Obs{})
	if !tr.Converged() {
		t.Fatal("flat stream with a full window did not converge")
	}
}

// TestConvergeDeterministicReplay pins the policy determinism contract: two
// trackers fed the same stream agree at every step.
func TestConvergeDeterministicReplay(t *testing.T) {
	c := Converge{}
	a, b := c.NewTracker(), c.NewTracker()
	stream := make([]Obs, 200)
	for i := range stream {
		o := Obs{Detected: i%3 == 0, Outcome: fmt.Sprintf("o%d", i%4)}
		if i%3 == 0 {
			o.RaceKeys = []string{fmt.Sprintf("r%d", i%5)}
		}
		stream[i] = o
	}
	for i, o := range stream {
		a.Observe(o)
		b.Observe(o)
		if a.Converged() != b.Converged() {
			t.Fatalf("trackers disagree at step %d", i)
		}
	}
}

// TestTrackerStateIntrospection pins the State snapshot against a known
// observation stream: the snapshot's aggregates, window contents, and verdict
// must agree with the tracker's own Converged decision, and Uniform's tracker
// must not claim introspection at all.
func TestTrackerStateIntrospection(t *testing.T) {
	if _, ok := (Uniform{}).NewTracker().(Introspector); ok {
		t.Fatal("uniform tracker claims introspection with nothing to explain")
	}
	c := Converge{MinExecs: 20, Window: 10, Epsilon: 0.02}
	tr := c.NewTracker()
	in, ok := tr.(Introspector)
	if !ok {
		t.Fatal("converge tracker does not implement Introspector")
	}

	// Empty tracker: all zero, not converged.
	st := in.State()
	if st.Execs != 0 || st.DetectionRate != 0 || st.WindowFilled != 0 || st.Converged {
		t.Fatalf("zero-stream state = %+v", st)
	}
	if st.Window != 10 || st.MinExecs != 20 || st.Epsilon != 0.02 {
		t.Fatalf("state does not echo policy thresholds: %+v", st)
	}

	// 15 detections with race r1 and outcome a, then 10 clean executions
	// with outcome b: the window holds the 10 clean ones, which introduced
	// outcome b (new info) and moved the detection rate from 15/15 to 15/25.
	for i := 0; i < 15; i++ {
		tr.Observe(Obs{Detected: true, RaceKeys: []string{"r1"}, Outcome: "a"})
	}
	for i := 0; i < 10; i++ {
		tr.Observe(Obs{Detected: false, Outcome: "b"})
	}
	st = in.State()
	if st.Execs != 25 || st.Detected != 15 || st.DistinctRaces != 1 {
		t.Fatalf("aggregates = %+v", st)
	}
	if got, want := st.DetectionRate, 15.0/25.0; got != want {
		t.Fatalf("detection rate = %g, want %g", got, want)
	}
	if st.WindowFilled != 10 || st.WindowDetected != 0 {
		t.Fatalf("window contents = %+v", st)
	}
	if !st.WindowNewInfo {
		t.Fatal("window introduced outcome b but WindowNewInfo is false")
	}
	if st.Outcomes["a"] != 15 || st.Outcomes["b"] != 10 || st.WindowOutcomes["b"] != 10 {
		t.Fatalf("outcome histograms = %+v", st)
	}
	// Rate shift: full 15/25 minus prior 15/15 = -0.4.
	if got, want := st.RateShift, 15.0/25.0-1.0; got != want {
		t.Fatalf("rate shift = %g, want %g", got, want)
	}
	if st.Converged || st.Converged != tr.Converged() {
		t.Fatalf("verdict = %v, tracker says %v", st.Converged, tr.Converged())
	}

	// Run the same mix until it stabilizes; the snapshot verdict must track.
	for i := 0; i < 40; i++ {
		out := "a"
		det := i%2 == 0
		if !det {
			out = "b"
		}
		tr.Observe(Obs{Detected: det, Outcome: out, RaceKeys: raceIf(det)})
	}
	st = in.State()
	if st.Converged != tr.Converged() {
		t.Fatalf("snapshot verdict %v diverges from Converged() %v", st.Converged, tr.Converged())
	}
	if st.Execs != 65 {
		t.Fatalf("execs = %d, want 65", st.Execs)
	}
}

func raceIf(det bool) []string {
	if det {
		return []string{"r1"}
	}
	return nil
}
