package explore

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// syntheticObs builds a deterministic observation stream with enough variety
// to exercise every tracker statistic: detection flips, fresh and repeated
// race keys, and a drifting outcome histogram.
func syntheticObs(n int) []Obs {
	var obs []Obs
	for i := 0; i < n; i++ {
		o := Obs{Detected: i%3 == 0, Outcome: fmt.Sprintf("out%d", i%4)}
		if i%5 == 0 {
			o.RaceKeys = []string{fmt.Sprintf("race%d", i%7)}
		}
		obs = append(obs, o)
	}
	return obs
}

// TestSnapshotRestoreContinuesIdentically is the checkpoint/resume contract
// at tracker granularity: snapshot a converge tracker at every prefix of an
// observation stream, restore into a fresh tracker, feed both the remaining
// stream, and their verdicts and introspection state must agree step for
// step.
func TestSnapshotRestoreContinuesIdentically(t *testing.T) {
	pol := Converge{MinExecs: 10, Window: 6, Epsilon: 0.05}
	stream := syntheticObs(40)
	for cut := 0; cut <= len(stream); cut++ {
		orig := pol.NewTracker()
		for _, o := range stream[:cut] {
			orig.Observe(o)
		}
		snap := orig.(Snapshotter).Snapshot()

		// The snapshot must survive serialization: a checkpoint round-trips
		// it through JSON.
		data, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		var decoded *TrackerSnapshot
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatal(err)
		}

		restored := pol.NewTracker()
		restored.(Snapshotter).Restore(decoded)
		for i, o := range stream[cut:] {
			orig.Observe(o)
			restored.Observe(o)
			if orig.Converged() != restored.Converged() {
				t.Fatalf("cut %d: verdicts diverge %d step(s) after restore", cut, i+1)
			}
			so := orig.(Introspector).State()
			sr := restored.(Introspector).State()
			if !reflect.DeepEqual(so, sr) {
				t.Fatalf("cut %d, step %d: state diverged:\norig:     %+v\nrestored: %+v", cut, i+1, so, sr)
			}
		}
	}
}

// TestSnapshotCanonicalEncoding pins that identical observation streams
// snapshot to identical bytes regardless of the ring cursor position —
// checkpoints of equivalent campaigns must be comparable bytewise.
func TestSnapshotCanonicalEncoding(t *testing.T) {
	pol := Converge{MinExecs: 4, Window: 4, Epsilon: 0.1}
	stream := syntheticObs(11) // 11 % 4 != 0: the ring cursor sits mid-ring

	direct := pol.NewTracker()
	for _, o := range stream {
		direct.Observe(o)
	}
	// Same stream via a restore at an awkward cut: the ring is rebuilt with
	// cursor 0 but must encode the same window.
	half := pol.NewTracker()
	for _, o := range stream[:7] {
		half.Observe(o)
	}
	resumed := pol.NewTracker()
	resumed.(Snapshotter).Restore(half.(Snapshotter).Snapshot())
	for _, o := range stream[7:] {
		resumed.Observe(o)
	}

	a, _ := json.Marshal(direct.(Snapshotter).Snapshot())
	b, _ := json.Marshal(resumed.(Snapshotter).Snapshot())
	if string(a) != string(b) {
		t.Fatalf("snapshots of the same stream differ:\ndirect:  %s\nresumed: %s", a, b)
	}
}

// TestUniformTrackerSnapshotsToNil pins the stateless tracker contract.
func TestUniformTrackerSnapshotsToNil(t *testing.T) {
	tr := Uniform{}.NewTracker()
	tr.Observe(Obs{Detected: true})
	sn, ok := tr.(Snapshotter)
	if !ok {
		t.Fatal("uniform tracker does not implement Snapshotter")
	}
	if s := sn.Snapshot(); s != nil {
		t.Fatalf("uniform tracker snapshot = %+v, want nil", s)
	}
	sn.Restore(nil) // must not panic
	if tr.Converged() {
		t.Fatal("uniform tracker must never converge")
	}
}
