package rng

import (
	mrand "math/rand"
	"testing"
)

// goldenPCG pins the PCG stream bit for bit: the campaign determinism
// invariant (every execution is a pure function of its seed) extends to the
// raw draw stream, so these vectors must never change — across Go versions,
// architectures, or refactors. If a change to the generator is ever
// deliberate, it is an artifact-regenerating cut like the PCG introduction
// itself, not a test update.
var goldenPCG = map[int64][8]uint64{
	1:  {0x41428939e667d8cf, 0xaa2e1c9ee8408734, 0x9b2b14f62feea5e1, 0xfdb3478779a550b2, 0x252effa8b9ed56cb, 0xd5e206621d6e0467, 0xa8132cf4bef161b3, 0x873529b7ae067959},
	42: {0x4887316ccdc0f854, 0xe0ea6c71bab5b504, 0xc65ca514b0f85a20, 0xc1f465e27439ffc9, 0x82889a38b03b14b3, 0xa754fe022d6a980c, 0x4af6c63da97a3cbb, 0x55acef4c23c63801},
	-7: {0x84a0d45281f79c28, 0x140361e6ac504bc0, 0xd118eaeb72f27f2b, 0xe71136323b0b696b, 0x006f94507d541992, 0xd1d53118b799b6d9, 0xc84258bc1bb94eac, 0xb94bb3734d4666c7},
}

// goldenIntn10 pins the bounded-reduction stream (seed 1, Intn(10)).
var goldenIntn10 = []int{2, 6, 6, 9, 1, 8, 6, 5, 1, 0, 5, 4, 3, 8, 1, 3}

func TestGoldenStream(t *testing.T) {
	for seed, want := range goldenPCG {
		r := New(PCG)
		r.Seed(seed)
		for i, w := range want {
			if got := r.Uint64(); got != w {
				t.Fatalf("seed %d draw %d: got %#016x, want %#016x", seed, i, got, w)
			}
		}
	}
	r := New(PCG)
	r.Seed(1)
	for i, w := range goldenIntn10 {
		if got := r.Intn(10); got != w {
			t.Fatalf("Intn(10) draw %d: got %d, want %d", i, got, w)
		}
	}
}

// TestReseedReproduces pins the O(1)-reseed contract: re-seeding an
// already-used Rand must reproduce the stream of a fresh one exactly, for
// both sources (the legacy source's in-place reseed is the hoisted pattern
// the strategies share).
func TestReseedReproduces(t *testing.T) {
	for _, kind := range []Kind{PCG, Legacy} {
		used := New(kind)
		used.Seed(99)
		for i := 0; i < 100; i++ {
			used.Uint64()
			used.Intn(7)
		}
		used.Seed(5)
		fresh := New(kind)
		fresh.Seed(5)
		for i := 0; i < 200; i++ {
			if g, w := used.Uint64(), fresh.Uint64(); g != w {
				t.Fatalf("%v: reseeded draw %d: got %#x, want %#x", kind, i, g, w)
			}
			if g, w := used.Intn(13), fresh.Intn(13); g != w {
				t.Fatalf("%v: reseeded Intn %d: got %d, want %d", kind, i, g, w)
			}
		}
	}
}

// TestLegacyMatchesMathRand pins the -rng legacy reproduction guarantee:
// the legacy source's stream is exactly math/rand's, draw for draw, so
// pre-PCG campaign artifacts reproduce bit for bit.
func TestLegacyMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{1, 7, 1042, -3} {
		r := New(Legacy)
		r.Seed(seed)
		ref := mrand.New(mrand.NewSource(seed))
		for i := 0; i < 500; i++ {
			if g, w := r.Uint64(), ref.Uint64(); g != w {
				t.Fatalf("seed %d draw %d: got %#x, want %#x", seed, i, g, w)
			}
			if g, w := r.Intn(i+1), ref.Intn(i+1); g != w {
				t.Fatalf("seed %d Intn draw %d: got %d, want %d", seed, i, g, w)
			}
		}
	}
}

// TestIntnUniformity is the bounded-reduction smoke test: over many draws
// every bucket of Intn(n) lands near 1/n, for bounds that exercise both the
// power-of-two and odd-modulus paths of the Lemire reduction.
func TestIntnUniformity(t *testing.T) {
	const draws = 200000
	for _, n := range []int{2, 3, 7, 10, 16, 61} {
		r := New(PCG)
		r.Seed(12345)
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			counts[v]++
		}
		want := float64(draws) / float64(n)
		for v, c := range counts {
			if dev := float64(c)/want - 1; dev > 0.05 || dev < -0.05 {
				t.Errorf("Intn(%d): bucket %d has %d draws (%.1f%% off uniform)", n, v, c, 100*dev)
			}
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(PCG)
	r.Seed(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(1); v != 0 {
			t.Fatalf("Intn(1) = %d", v)
		}
	}
	// A huge bound exercises the rejection threshold path.
	big := 1 << 62
	for i := 0; i < 1000; i++ {
		if v := r.Intn(big); v < 0 || v >= big {
			t.Fatalf("Intn(1<<62) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestParse(t *testing.T) {
	for name, want := range map[string]Kind{"": PCG, "pcg": PCG, "legacy": Legacy} {
		k, err := Parse(name)
		if err != nil || k != want {
			t.Fatalf("Parse(%q) = %v, %v; want %v", name, k, err, want)
		}
	}
	if _, err := Parse("mersenne"); err == nil {
		t.Fatal("Parse accepted an unknown source name")
	}
	if got := Canonical(""); got != "pcg" {
		t.Fatalf("Canonical(\"\") = %q", got)
	}
}

// BenchmarkSeed measures the per-execution reseed cost — the fixed cost the
// PCG source exists to remove (legacy's lagged-Fibonacci reseed walks a
// 607-entry table; PCG's is two multiplies).
func BenchmarkSeed(b *testing.B) {
	for _, kind := range []Kind{PCG, Legacy} {
		b.Run(kind.String(), func(b *testing.B) {
			r := New(kind)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.Seed(int64(i))
			}
		})
	}
}

func BenchmarkUint64(b *testing.B) {
	for _, kind := range []Kind{PCG, Legacy} {
		b.Run(kind.String(), func(b *testing.B) {
			r := New(kind)
			r.Seed(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.Uint64()
			}
		})
	}
}

func BenchmarkIntn(b *testing.B) {
	for _, kind := range []Kind{PCG, Legacy} {
		b.Run(kind.String(), func(b *testing.B) {
			r := New(kind)
			r.Seed(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.Intn(3)
			}
		})
	}
}
