// Package rng is the repository's random-decision subsystem: every
// scheduling choice, reads-from pick, and workload draw flows through a
// Rand. It exists because the per-execution cost of randomness is on the
// campaign hot path — a campaign re-seeds once per execution and short
// litmus executions make only a handful of draws, so seeding cost dominates.
//
// Two sources are provided:
//
//   - PCG (the default): a 128-bit PCG-DXSM generator seeded in O(1) by
//     splitmix64 expansion of the int64 seed. Uint64 draws are served from a
//     small fixed buffer refilled in a tight loop, so the per-decision fast
//     path is a load and an increment; Intn uses Lemire's multiply-shift
//     bounded reduction, which divides only on the (rare) rejection path.
//     The stream is a pure function of the seed, pinned by golden-value
//     tests so it cannot drift across Go versions.
//
//   - Legacy: math/rand's lagged-Fibonacci source, re-seeded in place (the
//     pattern previously duplicated across the core strategies and
//     Engine.Rand). Its reseed walks a 607-entry state table (~10 µs — more
//     than half of a short litmus execution), which is exactly the cost the
//     PCG source removes; it is kept behind -rng legacy so pre-PCG campaign
//     artifacts remain reproducible bit for bit.
//
// A Rand is a value type: embed it directly (strategies and the engine do)
// so the PCG state and draw buffer live inline and seeding allocates
// nothing. The zero value is an unseeded PCG source; call Seed before
// drawing.
package rng

import (
	"fmt"
	"math/bits"
	mrand "math/rand"
)

// Kind selects the random source backing a Rand.
type Kind uint8

const (
	// PCG is the default source: splitmix64-seeded PCG-DXSM with the
	// buffered fast path.
	PCG Kind = iota
	// Legacy is math/rand's lagged-Fibonacci source, kept as a comparison
	// dimension and for reproducing pre-PCG artifacts.
	Legacy
)

// String returns the -rng flag name of the kind.
func (k Kind) String() string {
	if k == Legacy {
		return "legacy"
	}
	return "pcg"
}

// Parse resolves a -rng flag value. The empty string is the default source.
func Parse(name string) (Kind, error) {
	switch name {
	case "", "pcg":
		return PCG, nil
	case "legacy":
		return Legacy, nil
	}
	return PCG, fmt.Errorf("unknown rng source %q (want pcg or legacy)", name)
}

// Canonical normalizes a -rng flag value to its canonical name; unknown
// names normalize to the default (validate with Parse first).
func Canonical(name string) string {
	k, _ := Parse(name)
	return k.String()
}

// Names lists the selectable sources for -list output.
func Names() []string { return []string{"pcg", "legacy"} }

// Kinded is implemented by decision sources that can report which rng source
// they draw from; wrappers (trace guides, recorders) use it to keep their
// auxiliary draws on the same source as the strategy they wrap.
type Kinded interface {
	RNGKind() Kind
}

// KindOf reports the rng source behind v (via Kinded), or the default.
func KindOf(v any) Kind {
	if k, ok := v.(Kinded); ok {
		return k.RNGKind()
	}
	return PCG
}

// bufLen is the decision buffer size: 32 raw 64-bit draws (256 bytes of
// inline state). Short litmus executions make ~20–40 combined decisions, so
// most executions refill at most once beyond the initial fill.
const bufLen = 32

// Rand is a seedable random source. It is not safe for concurrent use; like
// the engine state it feeds, a Rand is confined to one worker.
type Rand struct {
	kind Kind

	// PCG-DXSM state: a 128-bit linear congruential step whose output is
	// scrambled by a double-xorshift-multiply. hi/lo are the state words.
	hi, lo uint64

	// buf holds raw Uint64 draws; i is the read cursor. Seed marks the
	// buffer empty (i = bufLen) rather than refilling, so re-seeding stays
	// O(1) even when no draw follows.
	buf [bufLen]uint64
	i   int

	// legacy is the math/rand source, materialized on the first legacy
	// Seed and re-seeded in place afterwards.
	legacy *mrand.Rand
}

// New returns a seeded Rand of the given kind. The initial seed is 1,
// matching the historical rand.NewSource(1) strategy default.
func New(kind Kind) *Rand {
	r := &Rand{kind: kind}
	r.Seed(1)
	return r
}

// Kind reports the source backing this Rand.
func (r *Rand) Kind() Kind { return r.kind }

// SetKind switches the source kind; it takes effect at the next Seed.
// (Engine-embedded Rands are re-kinded and re-seeded together at each
// execution reset.)
func (r *Rand) SetKind(k Kind) { r.kind = k }

// splitmix64 is the seed-expansion step: a Weyl increment followed by a
// finalizer. It turns correlated int64 seeds (campaigns use base+i) into
// well-distributed state words.
func splitmix64(x uint64) uint64 {
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 27
	return x ^ x>>31
}

// Seed re-seeds the source for a new execution. For PCG this is O(1): two
// splitmix64 expansions and a buffer invalidation. For Legacy it re-seeds
// the math/rand source in place — the exact state of a fresh
// rand.New(rand.NewSource(seed)) without re-allocating its state table —
// which is the single shared implementation of the reseed pattern the core
// strategies and Engine.Rand previously each carried.
func (r *Rand) Seed(seed int64) {
	if r.kind == Legacy {
		if r.legacy == nil {
			r.legacy = mrand.New(mrand.NewSource(seed))
			return
		}
		r.legacy.Seed(seed)
		return
	}
	// Two Weyl steps of the splitmix increment (the second is 2γ mod 2^64)
	// expand the seed into independent state words.
	s := uint64(seed)
	r.hi = splitmix64(s + 0x9e3779b97f4a7c15)
	r.lo = splitmix64(s + 0x3c6ef372fe94f82a)
	// The LCG state must be odd-incremented anyway; force lo odd so the
	// all-zero expansion (impossible with splitmix, but cheap to rule out)
	// cannot produce a degenerate stream.
	r.lo |= 1
	r.i = bufLen
}

// step advances the 128-bit LCG and returns one DXSM output.
func (r *Rand) step() uint64 {
	// 128-bit multiply-add-increment: state = state*mul + inc. The
	// multiplier is the 64-bit "cheap multiplier" of the PCG-DXSM variant;
	// the increment is the classic Knuth MMIX pair.
	const (
		mul   = 0xda942042e4dd58b5
		incHi = 0x5851f42d4c957f2d
		incLo = 0x14057b7ef767814f
	)
	oldHi, oldLo := r.hi, r.lo
	carryHi, newLo := bits.Mul64(oldLo, mul)
	newHi := carryHi + oldHi*mul
	newLo, c := bits.Add64(newLo, incLo, 0)
	newHi, _ = bits.Add64(newHi, incHi, c)
	r.hi, r.lo = newHi, newLo
	// DXSM output permutation over the pre-step state.
	out := oldHi
	out ^= out >> 32
	out *= mul
	out ^= out >> 48
	out *= oldLo | 1
	return out
}

// refill repopulates the draw buffer in one tight loop.
func (r *Rand) refill() {
	for j := range r.buf {
		r.buf[j] = r.step()
	}
	r.i = 0
}

// Uint64 returns the next raw 64-bit draw. On the PCG fast path this is a
// buffer load and cursor increment.
func (r *Rand) Uint64() uint64 {
	if r.kind == Legacy {
		return r.legacy.Uint64()
	}
	if r.i == bufLen {
		r.refill()
	}
	v := r.buf[r.i]
	r.i++
	return v
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand. The PCG path uses Lemire's multiply-shift reduction: the
// quotient of a 64×64→128 multiply is the bounded value, and the modulo
// (the only division) runs only when the low half lands in the rejection
// zone — with probability n/2^64, i.e. essentially never for scheduler-sized
// bounds.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	if r.kind == Legacy {
		return r.legacy.Intn(n)
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}
