package baseline

import (
	"fmt"
	"testing"

	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/memmodel"
)

const (
	rlx = memmodel.Relaxed
	acq = memmodel.Acquire
	rel = memmodel.Release
	sc  = memmodel.SeqCst
)

func outcomes(t *testing.T, tool capi.Tool, n int, out *string, body func(capi.Env)) map[string]int {
	t.Helper()
	hist := map[string]int{}
	prog := capi.Program{Name: t.Name(), Run: body}
	for seed := 0; seed < n; seed++ {
		*out = ""
		res := tool.Execute(prog, int64(seed))
		if res.Deadlocked || res.Truncated {
			t.Fatalf("seed %d: deadlock/truncation", seed)
		}
		hist[*out]++
	}
	return hist
}

func tools() []capi.Tool {
	return []capi.Tool{NewTsan11(Options{}), NewTsan11rec(Options{})}
}

func TestBaselinesAllowStaleRelaxedReads(t *testing.T) {
	// With precise C11 clocks, the commit-order model does explore stale
	// values within its history.
	for _, tool := range []capi.Tool{
		NewTsan11(Options{PreciseSync: true}),
		NewTsan11rec(Options{PreciseSync: true, FastHandoff: true}),
	} {
		var out string
		hist := outcomes(t, tool, 400, &out, func(env capi.Env) {
			x := env.NewAtomic("x", 0)
			y := env.NewAtomic("y", 0)
			a := env.Spawn("A", func(env capi.Env) {
				env.Store(x, 1, rlx)
				env.Store(y, 1, rlx)
			})
			b := env.Spawn("B", func(env capi.Env) {
				r1 := env.Load(y, rlx)
				r2 := env.Load(x, rlx)
				out = fmt.Sprintf("r1=%d r2=%d", r1, r2)
			})
			env.Join(a)
			env.Join(b)
		})
		if hist["r1=1 r2=0"] == 0 {
			t.Errorf("%s: never produced the stale-read MP outcome: %v", tool.Name(), hist)
		}
	}
}

func TestBaselinesRespectReleaseAcquire(t *testing.T) {
	for _, tool := range tools() {
		var out string
		hist := outcomes(t, tool, 400, &out, func(env capi.Env) {
			x := env.NewAtomic("x", 0)
			y := env.NewAtomic("y", 0)
			a := env.Spawn("A", func(env capi.Env) {
				env.Store(x, 1, rlx)
				env.Store(y, 1, rel)
			})
			b := env.Spawn("B", func(env capi.Env) {
				r1 := env.Load(y, acq)
				r2 := env.Load(x, rlx)
				out = fmt.Sprintf("r1=%d r2=%d", r1, r2)
			})
			env.Join(a)
			env.Join(b)
		})
		if hist["r1=1 r2=0"] != 0 {
			t.Errorf("%s: release/acquire MP violated: %v", tool.Name(), hist)
		}
	}
}

func TestBaselinesForbidSeqCstSBBothZero(t *testing.T) {
	for _, tool := range tools() {
		var out string
		hist := outcomes(t, tool, 300, &out, func(env capi.Env) {
			x := env.NewAtomic("x", 0)
			y := env.NewAtomic("y", 0)
			var r1, r2 memmodel.Value
			a := env.Spawn("A", func(env capi.Env) {
				env.Store(x, 1, sc)
				r1 = env.Load(y, sc)
			})
			b := env.Spawn("B", func(env capi.Env) {
				env.Store(y, 1, sc)
				r2 = env.Load(x, sc)
			})
			env.Join(a)
			env.Join(b)
			out = fmt.Sprintf("%d%d", r1, r2)
		})
		if hist["00"] != 0 {
			t.Errorf("%s: seq_cst SB produced 00: %v", tool.Name(), hist)
		}
	}
}

// mowSeparator is the behaviour that separates the memory-model fragments
// (Section 1.1): two relaxed stores whose *commit* order is pinned by a
// relaxed flag chain, read fresh-then-stale by a third thread. Legal under
// C/C++11 (no hb between the stores, so mo may oppose commit order); illegal
// when hb ∪ sc ∪ rf ∪ mo must be acyclic with mo = commit order.
func mowSeparator(out *string) func(capi.Env) {
	return func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		f := env.NewAtomic("f", 0)
		g := env.NewAtomic("g", 0)
		w1 := env.Spawn("w1", func(env capi.Env) {
			env.Store(x, 1, rlx)
			env.Store(f, 1, rlx)
		})
		w2 := env.Spawn("w2", func(env capi.Env) {
			for i := 0; i < 200 && env.Load(f, rlx) == 0; i++ {
				env.Yield()
			}
			if env.Load(f, rlx) == 0 {
				return // scheduling starved the flag; skip this run
			}
			env.Store(x, 2, rlx)
			env.Store(g, 1, rlx)
		})
		r := env.Spawn("r", func(env capi.Env) {
			for i := 0; i < 200 && env.Load(g, rlx) == 0; i++ {
				env.Yield()
			}
			if env.Load(g, rlx) == 0 {
				return
			}
			a := env.Load(x, rlx)
			b := env.Load(x, rlx)
			*out = fmt.Sprintf("%d%d", a, b)
		})
		env.Join(w1)
		env.Join(w2)
		env.Join(r)
	}
}

func TestSeparatorAllowedByC11Tester(t *testing.T) {
	tool := core.New("c11tester", core.NewC11Model(), core.Config{StoreBurst: true})
	var out string
	hist := outcomes(t, tool, 3000, &out, mowSeparator(&out))
	if hist["21"] == 0 {
		t.Errorf("C11Tester never produced the 2-then-1 read (mo opposing commit order): %v", hist)
	}
}

func TestSeparatorForbiddenByBaselines(t *testing.T) {
	for _, tool := range tools() {
		var out string
		hist := outcomes(t, tool, 1500, &out, mowSeparator(&out))
		if hist["21"] != 0 {
			t.Errorf("%s produced 2-then-1, which its memory model forbids: %v", tool.Name(), hist)
		}
	}
}

func TestConservativeSyncHidesRelaxedPublicationRace(t *testing.T) {
	// The default (conservative) clock treatment turns relaxed atomics into
	// synchronization, hiding races behind relaxed flag chains — the
	// mechanism by which the real tools miss the Section 8.1 injected bugs.
	// C11Tester's precise treatment reports them (TestRelaxedPublicationRaces
	// in internal/core).
	prog := capi.Program{Name: "badpub", Run: func(env capi.Env) {
		d := env.NewLoc("data", 0)
		f := env.NewAtomic("flag", 0)
		a := env.Spawn("A", func(env capi.Env) {
			env.Write(d, 42)
			env.Store(f, 1, rlx)
		})
		b := env.Spawn("B", func(env capi.Env) {
			if env.Load(f, rlx) == 1 {
				env.Read(d)
			}
		})
		env.Join(a)
		env.Join(b)
	}}
	for _, tool := range tools() {
		for seed := 0; seed < 200; seed++ {
			if res := tool.Execute(prog, int64(seed)); len(res.Races) > 0 {
				t.Fatalf("%s: conservative sync should hide this race: %v", tool.Name(), res.Races[0])
			}
		}
	}
}

func TestBaselinesDetectPlainRaces(t *testing.T) {
	for _, mk := range []func() capi.Tool{
		func() capi.Tool { return NewTsan11(Options{QuantumMean: 3}) },
		func() capi.Tool { return NewTsan11rec(Options{}) },
	} {
		tool := mk()
		prog := capi.Program{Name: "race", Run: func(env capi.Env) {
			d := env.NewLoc("data", 0)
			a := env.Spawn("A", func(env capi.Env) { env.Write(d, 1) })
			env.Write(d, 2)
			env.Join(a)
		}}
		raced := 0
		for seed := 0; seed < 50; seed++ {
			if res := tool.Execute(prog, int64(seed)); len(res.Races) > 0 {
				raced++
			}
		}
		if raced == 0 {
			t.Errorf("%s never detected the unsynchronized race", tool.Name())
		}
	}
}

func TestRMWAlwaysReadsCommitLatest(t *testing.T) {
	for _, tool := range tools() {
		prog := capi.Program{Name: "rmw", Run: func(env capi.Env) {
			x := env.NewAtomic("x", 0)
			var threads []capi.Thread
			for i := 0; i < 3; i++ {
				threads = append(threads, env.Spawn("t", func(env capi.Env) {
					for k := 0; k < 4; k++ {
						env.FetchAdd(x, 1, rlx)
					}
				}))
			}
			for _, th := range threads {
				env.Join(th)
			}
			env.Assert(env.Load(x, sc) == 12, "lost update")
		}}
		for seed := 0; seed < 100; seed++ {
			res := tool.Execute(prog, int64(seed))
			if len(res.AssertFailures) > 0 {
				t.Fatalf("%s seed %d: %v", tool.Name(), seed, res.AssertFailures[0])
			}
		}
	}
}

func TestHistoryBoundEnforced(t *testing.T) {
	// Reads must never reach past the history bound: with the bound at 4,
	// a reader can lag at most 4 stores behind.
	tool := NewTsan11rec(Options{HistoryLimit: 4})
	prog := capi.Program{Name: "hist", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		a := env.Spawn("w", func(env capi.Env) {
			for i := 1; i <= 100; i++ {
				env.Store(x, memmodel.Value(i), rlx)
			}
		})
		env.Join(a)
		v := env.Load(x, rlx)
		env.Assert(v >= 97, "read %d, beyond the history bound", v)
	}}
	for seed := 0; seed < 100; seed++ {
		res := tool.Execute(prog, int64(seed))
		if len(res.AssertFailures) > 0 {
			t.Fatalf("seed %d: %v", seed, res.AssertFailures[0])
		}
	}
}

func TestRecordLogPopulated(t *testing.T) {
	model := NewCommitModel(0, true)
	tool := core.New("tsan11rec", model, core.Config{
		// Plain handoff keeps the test fast; the log is what's under test.
	})
	prog := capi.Program{Name: "log", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		env.Store(x, 1, rlx)
		env.Load(x, rlx)
		env.FetchAdd(x, 1, rlx)
		env.Fence(sc)
	}}
	tool.Execute(prog, 1)
	if n := model.RecordLogLen(); n < 4 {
		t.Errorf("record log holds %d entries, want at least 4", n)
	}
}

func TestBaselineCoherenceMonotoneReads(t *testing.T) {
	for _, tool := range tools() {
		prog := capi.Program{Name: "corr", Run: func(env capi.Env) {
			x := env.NewAtomic("x", 0)
			a := env.Spawn("w", func(env capi.Env) {
				for i := 1; i <= 50; i++ {
					env.Store(x, memmodel.Value(i), rlx)
				}
			})
			last := memmodel.Value(0)
			for i := 0; i < 50; i++ {
				v := env.Load(x, rlx)
				env.Assert(v >= last, "reads went backwards: %d after %d", v, last)
				last = v
			}
			env.Join(a)
		}}
		for seed := 0; seed < 50; seed++ {
			res := tool.Execute(prog, int64(seed))
			if len(res.AssertFailures) > 0 {
				t.Fatalf("%s seed %d: %v", tool.Name(), seed, res.AssertFailures[0])
			}
		}
	}
}
