// Package baseline implements the two comparison tools of the paper's
// evaluation: tsan11 (Lidbury & Donaldson, POPL 2017) and tsan11rec
// (Lidbury & Donaldson, PLDI 2019).
//
// Both tools support a restricted fragment of the C/C++11 memory model:
// they require hb ∪ sc ∪ rf ∪ mo to be acyclic, which forces the
// modification order of every location to be the total order in which
// stores commit (Section 1.1 and Section 9 of the C11Tester paper). The
// commit-order model here captures exactly that restriction: each location
// keeps a bounded history of committed stores; a load may read backwards in
// the history only as far as coherence over the *total* commit order
// allows, and RMWs always operate on the commit-latest store. Release/
// acquire synchronization, release sequences, and fences reuse the same
// Figure 9 clock machinery as the C11Tester engine — the tools differ in
// the admitted mo fragment, not in their happens-before treatment.
//
// The tools also differ in scheduling, which this package reproduces:
//
//   - tsan11 does not control the schedule: threads run under the OS
//     scheduler. On the engine's sequentialized substrate this is modelled
//     by quantum scheduling (a thread runs a geometrically distributed
//     number of operations before being preempted) over the cheap channel
//     handoff.
//
//   - tsan11rec sequentializes visible operations across kernel threads
//     and records them for replay. Its threads are pinned to OS threads
//     with condition-variable handoff (every visible operation costs a real
//     kernel context switch, the regime measured in Figure 14) and every
//     visible operation is appended to an in-memory record log.
package baseline

import (
	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/memmodel"
	"c11tester/internal/rng"
	"c11tester/internal/sched"
)

// DefaultHistoryLimit bounds the per-location store history, mirroring the
// bounded store buffers the tsan11 family keeps in shadow memory.
const DefaultHistoryLimit = 8

// bloc is the commit-order bookkeeping of one location.
type bloc struct {
	// history is the retained suffix of the location's commit order; the
	// commit order *is* the modification order in this model.
	history []*core.Action
	// base is the absolute commit position of history[0].
	base int
	// readFloor[t] is the absolute position of the last store thread t read
	// (reads may not go backwards past it: CoRR over the total order).
	readFloor []int
}

// reset recycles a pooled bloc for a new execution, keeping the history and
// read-floor slice capacity.
func (b *bloc) reset() {
	b.history = b.history[:0]
	b.base = 0
	b.readFloor = b.readFloor[:0]
}

func (b *bloc) floor(t memmodel.TID) int {
	if int(t) < len(b.readFloor) {
		return b.readFloor[t]
	}
	return -1
}

func (b *bloc) setFloor(t memmodel.TID, pos int) {
	for len(b.readFloor) <= int(t) {
		b.readFloor = append(b.readFloor, -1)
	}
	if pos > b.readFloor[t] {
		b.readFloor[t] = pos
	}
}

// recordEntry is one entry of tsan11rec's record log.
type recordEntry struct {
	TID  memmodel.TID
	Kind memmodel.Kind
	Loc  memmodel.LocID
}

// CommitModel is the commit-order memory model shared by both baselines.
type CommitModel struct {
	e            *core.Engine
	locs         []*bloc
	historyLimit int
	record       bool
	conservative bool
	log          []recordEntry

	// locPool recycles bloc bookkeeping across executions; entry i serves
	// LocID i. Actions themselves come from the engine's execution arena.
	locPool []*bloc
}

// NewCommitModel returns a commit-order model. record enables tsan11rec's
// record log.
func NewCommitModel(historyLimit int, record bool) *CommitModel {
	if historyLimit <= 0 {
		historyLimit = DefaultHistoryLimit
	}
	return &CommitModel{historyLimit: historyLimit, record: record}
}

// SetConservativeSync enables the tsan-runtime clock treatment: every
// atomic load behaves like an acquire and every atomic store like a release
// for happens-before purposes. The tsan11 tools are built on ThreadSanitizer
// whose sync-clock machinery transfers clocks on atomic reads-from pairs;
// modelling that over-approximation is what reproduces their measured
// misses — races hidden behind relaxed-atomic synchronization chains (the
// injected seqlock/rwlock bugs of Section 8.1 and most of the Table 2
// benchmarks) are invisible to them, as the paper observes.
func (m *CommitModel) SetConservativeSync(on bool) { m.conservative = on }

func (m *CommitModel) loadOrder(mo memmodel.MemoryOrder) memmodel.MemoryOrder {
	if m.conservative && !mo.IsAcquire() {
		return memmodel.Acquire
	}
	return mo
}

func (m *CommitModel) storeOrder(mo memmodel.MemoryOrder) memmodel.MemoryOrder {
	if m.conservative && !mo.IsRelease() {
		return memmodel.Release
	}
	return mo
}

// Begin implements core.MemModel.
func (m *CommitModel) Begin(e *core.Engine) {
	m.e = e
	m.locs = m.locs[:0]
	m.log = m.log[:0]
}

// RecordLogLen returns the number of recorded visible operations (tsan11rec
// only); exposed for tests.
func (m *CommitModel) RecordLogLen() int { return len(m.log) }

func (m *CommitModel) bloc(id memmodel.LocID) *bloc {
	for len(m.locs) <= int(id) {
		m.locs = append(m.locs, nil)
	}
	if m.locs[id] == nil {
		for len(m.locPool) <= int(id) {
			m.locPool = append(m.locPool, nil)
		}
		b := m.locPool[id]
		if b == nil {
			b = &bloc{}
			m.locPool[id] = b
		}
		b.reset()
		m.locs[id] = b
	}
	return m.locs[id]
}

func (m *CommitModel) rec(t *core.ThreadState, kind memmodel.Kind, loc memmodel.LocID) {
	if m.record {
		m.log = append(m.log, recordEntry{TID: t.ID, Kind: kind, Loc: loc})
	}
}

// append commits a store at the end of the location's total order and
// evicts history beyond the limit.
func (m *CommitModel) append(b *bloc, a *core.Action) {
	b.history = append(b.history, a)
	if len(b.history) > m.historyLimit {
		drop := len(b.history) - m.historyLimit
		copy(b.history, b.history[drop:])
		for i := m.historyLimit; i < len(b.history); i++ {
			b.history[i] = nil
		}
		b.history = b.history[:m.historyLimit]
		b.base += drop
	}
}

// AtomicStore implements core.MemModel.
func (m *CommitModel) AtomicStore(t *core.ThreadState, op *capi.Op) {
	b := m.bloc(op.Loc)
	act := m.e.NewAction()
	act.Seq, act.TID, act.Kind, act.MO = t.OpSeq(), t.ID, memmodel.KStore, op.MO
	act.Loc, act.Value = op.Loc, op.Operand
	act.RFCV = core.StoreRFCV(t, m.storeOrder(op.MO))
	m.append(b, act)
	m.rec(t, memmodel.KStore, op.Loc)
}

// candidates returns the commit positions the current load of thread t may
// read: no earlier than the thread's own read floor, no earlier than the
// latest store that happens before the load (write-read coherence over the
// total order), and within the retained history. seq_cst loads read the
// commit-latest store (SC is trivially total in this model).
func (m *CommitModel) candidates(t *core.ThreadState, b *bloc, mo memmodel.MemoryOrder) (lo, hi int) {
	hi = b.base + len(b.history) - 1
	if mo.IsSeqCst() {
		return hi, hi
	}
	lo = b.base
	if f := b.floor(t.ID); f > lo {
		lo = f
	}
	for i := len(b.history) - 1; i >= 0; i-- {
		s := b.history[i]
		if t.C.Synchronized(s.TID, s.Seq) {
			if p := b.base + i; p > lo {
				lo = p
			}
			break
		}
	}
	return lo, hi
}

// AtomicLoad implements core.MemModel.
func (m *CommitModel) AtomicLoad(t *core.ThreadState, op *capi.Op) memmodel.Value {
	b := m.bloc(op.Loc)
	if len(b.history) == 0 {
		// Never happens for programs that initialise their atomics; return
		// zero like uninitialised memory.
		return 0
	}
	lo, hi := m.candidates(t, b, op.MO)
	pos := lo + m.e.PickIndex(hi-lo+1)
	s := b.history[pos-b.base]
	b.setFloor(t.ID, pos)
	core.ApplyLoadClocks(t, m.loadOrder(op.MO), s)
	m.rec(t, memmodel.KLoad, op.Loc)
	return s.Value
}

// AtomicRMW implements core.MemModel: RMWs read the commit-latest store —
// the defining restriction of a total modification order.
func (m *CommitModel) AtomicRMW(t *core.ThreadState, op *capi.Op) (memmodel.Value, bool) {
	b := m.bloc(op.Loc)
	if len(b.history) == 0 {
		return 0, false
	}
	last := b.history[len(b.history)-1]
	old := last.Value
	if op.RMW == capi.RMWCas && old != op.Expected {
		b.setFloor(t.ID, b.base+len(b.history)-1)
		core.ApplyLoadClocks(t, m.loadOrder(op.FailMO), last)
		m.rec(t, memmodel.KLoad, op.Loc)
		return old, false
	}
	core.ApplyLoadClocks(t, m.loadOrder(op.MO), last)
	act := m.e.NewAction()
	act.Seq, act.TID, act.Kind, act.MO = t.OpSeq(), t.ID, memmodel.KRMW, op.MO
	act.Loc, act.Value, act.RF = op.Loc, core.RMWNewValue(op, old), last
	act.RFCV = core.StoreRFCV(t, m.storeOrder(op.MO))
	act.RFCV.Merge(last.RFCV)
	m.append(b, act)
	b.setFloor(t.ID, b.base+len(b.history)-1)
	m.rec(t, memmodel.KRMW, op.Loc)
	return old, true
}

// Fence implements core.MemModel. seq_cst fences act as acq_rel fences; the
// SC-fence modification-order rules are vacuous when mo is the commit order.
func (m *CommitModel) Fence(t *core.ThreadState, op *capi.Op) {
	core.ApplyFenceClocks(t, op.MO)
	m.rec(t, memmodel.KFence, memmodel.NoLoc)
}

// PromoteNAStore implements core.MemModel: the plain store becomes the
// commit-latest entry (no atomic store can have intervened, or the shadow
// word would name it as the last write).
func (m *CommitModel) PromoteNAStore(t *core.ThreadState, loc memmodel.LocID, writer memmodel.TID, epoch memmodel.SeqNum, v memmodel.Value) {
	b := m.bloc(loc)
	act := m.e.NewAction()
	act.Seq, act.TID, act.Kind, act.MO = epoch, writer, memmodel.KNAStore, memmodel.Relaxed
	act.Loc, act.Value = loc, v
	m.append(b, act)
}

// Maintain implements core.MemModel; the bounded history needs no limiter.
func (m *CommitModel) Maintain(*core.Engine) {}

// Options configures baseline construction (exposed for experiments).
type Options struct {
	// HistoryLimit overrides the store-history bound.
	HistoryLimit int
	// QuantumMean overrides tsan11's mean scheduling quantum.
	QuantumMean int
	// MaxSteps caps execution length.
	MaxSteps uint64
	// VolatileAcqRel mirrors core.Config.VolatileAcqRel.
	VolatileAcqRel bool
	// PreciseSync disables the conservative tsan-runtime clock treatment
	// (see CommitModel.SetConservativeSync); on by default to match the
	// tools' measured behaviour.
	PreciseSync bool
	// FastHandoff runs tsan11rec on the cheap channel handoff instead of
	// kernel threads (useful in tests; performance experiments use the
	// faithful regime).
	FastHandoff bool
	// Handoff, when non-empty, overrides the tool's handoff regime outright
	// (sched.ParseHandoff names; it takes precedence over FastHandoff).
	// Unknown names panic — validate with sched.ParseHandoff first, as
	// campaign.StandardTool does.
	Handoff string
	// Respawn disables the scheduler's fiber pool (see sched.Config.Respawn).
	Respawn bool
	// RNG selects the random source behind the tool's strategy and workload
	// draws (rng.PCG default, rng.Legacy for pre-PCG stream reproduction).
	RNG rng.Kind
}

// schedConfig resolves the options' scheduler configuration from the tool's
// default regime.
func (o Options) schedConfig(def sched.Config) sched.Config {
	cfg := def
	if o.Handoff != "" {
		cfg = sched.MustHandoff(o.Handoff)
	}
	cfg.Respawn = o.Respawn
	return cfg
}

// NewTsan11 builds the tsan11 baseline: commit-order memory model,
// uncontrolled (quantum) scheduling, cheap handoff.
func NewTsan11(opts Options) *core.Engine {
	mean := opts.QuantumMean
	if mean == 0 {
		mean = 150
	}
	m := NewCommitModel(opts.HistoryLimit, false)
	m.SetConservativeSync(!opts.PreciseSync)
	return core.New("tsan11", m, core.Config{
		Sched:          opts.schedConfig(sched.Config{}),
		Strategy:       core.NewQuantumStrategyKind(opts.RNG, mean),
		MaxSteps:       opts.MaxSteps,
		VolatileAcqRel: opts.VolatileAcqRel,
		RNG:            opts.RNG,
	})
}

// NewTsan11rec builds the tsan11rec baseline: commit-order memory model,
// controlled random scheduling of visible operations sequenced across
// kernel threads, plus the record log.
func NewTsan11rec(opts Options) *core.Engine {
	m := NewCommitModel(opts.HistoryLimit, true)
	m.SetConservativeSync(!opts.PreciseSync)
	def := sched.Config{LockOSThread: true, CondHandoff: true}
	if opts.FastHandoff {
		def = sched.Config{}
	}
	// Strategy stays nil: Config.withDefaults builds the default random
	// strategy on Config.RNG, so the rng source follows the option.
	return core.New("tsan11rec", m, core.Config{
		Sched:          opts.schedConfig(def),
		MaxSteps:       opts.MaxSteps,
		VolatileAcqRel: opts.VolatileAcqRel,
		RNG:            opts.RNG,
	})
}
