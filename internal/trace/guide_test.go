package trace

import (
	"fmt"
	"reflect"
	"testing"

	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/memmodel"
)

// guideProg is a small weak-memory program with enough scheduling freedom
// that different seeds produce different interleavings: two writers and a
// reader racing over a pair of locations.
func guideProg(out *string) capi.Program {
	return capi.Program{Name: "guide-prog", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		y := env.NewAtomic("y", 0)
		a := env.Spawn("A", func(env capi.Env) {
			env.Store(x, 1, memmodel.Relaxed)
			env.Store(y, 1, memmodel.Release)
		})
		b := env.Spawn("B", func(env capi.Env) {
			r1 := env.Load(y, memmodel.Acquire)
			r2 := env.Load(x, memmodel.Relaxed)
			*out = fmt.Sprintf("r1=%d r2=%d", r1, r2)
		})
		env.Join(a)
		env.Join(b)
	}}
}

func newGuideEngine() *core.Engine {
	return core.New("c11tester", core.NewC11Model(), core.Config{StoreBurst: true})
}

// digest is the comparable outcome of one execution.
type execDigest struct {
	RaceKeys []string
	Finals   map[string]memmodel.Value
	Outcome  string
	Atomic   uint64
}

func digestOf(eng *core.Engine, res *capi.Result, out string) execDigest {
	keys := []string{}
	seen := map[string]bool{}
	for _, r := range res.Races {
		if k := r.Key(); !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return execDigest{RaceKeys: keys, Finals: eng.FinalValues(), Outcome: out, Atomic: res.Stats.AtomicOps}
}

// recordGuideTrace records one execution of guideProg under a fresh engine.
func recordGuideTrace(t *testing.T, seed int64) (*Trace, execDigest) {
	t.Helper()
	var out string
	prog := guideProg(&out)
	eng := newGuideEngine()
	rec := NewRecorder(eng.Strategy())
	eng.SetStrategy(rec)
	eng.SetTrace(true)
	res := eng.Execute(prog, seed)
	if res.EngineError != nil {
		t.Fatal(res.EngineError)
	}
	dg := digestOf(eng, res, out)
	tr, err := Record(eng, res, rec.Schedule(), Meta{Program: prog.Name, Seed: seed, Outcome: out})
	if err != nil {
		t.Fatal(err)
	}
	return tr, dg
}

func TestPrefixGuideFullDepthReproducesRecordedExecution(t *testing.T) {
	tr, want := recordGuideTrace(t, 7)
	var out string
	prog := guideProg(&out)
	eng := newGuideEngine()
	pg := NewPrefixGuide(core.NewRandomStrategy())
	pg.MinFrac, pg.MaxFrac = 1.0, 1.0
	pg.SetSchedule(tr.Schedule)
	eng.SetStrategy(pg)

	// Any live seed: with the full prefix replayed, the live strategy never
	// gets a choice, so the execution is the recorded one regardless.
	res := eng.Execute(prog, 12345)
	got := digestOf(eng, res, out)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("full-depth guided execution %+v != recorded %+v", got, want)
	}
	depth, consumed, diverged := pg.Handoff()
	if depth != tr.Schedule.Len() || consumed != depth || diverged {
		t.Fatalf("Handoff() = (%d, %d, %v), want full depth %d consumed without divergence",
			depth, consumed, diverged, tr.Schedule.Len())
	}
}

func TestPrefixGuideDepthIsSeedDerivedAndBounded(t *testing.T) {
	tr, _ := recordGuideTrace(t, 3)
	var out string
	prog := guideProg(&out)
	eng := newGuideEngine()
	pg := NewPrefixGuide(core.NewRandomStrategy())
	pg.MinFrac, pg.MaxFrac = 0.25, 0.75
	pg.SetSchedule(tr.Schedule)
	eng.SetStrategy(pg)

	L := tr.Schedule.Len()
	lo, hi := int(0.25*float64(L)), int(0.75*float64(L))
	depths := map[int]bool{}
	for seed := int64(0); seed < 30; seed++ {
		res := eng.Execute(prog, seed)
		if res.EngineError != nil {
			t.Fatal(res.EngineError)
		}
		depth, consumed, _ := pg.Handoff()
		if depth < lo || depth > hi {
			t.Fatalf("seed %d: depth %d outside [%d, %d]", seed, depth, lo, hi)
		}
		if consumed > depth {
			t.Fatalf("seed %d: consumed %d > depth %d", seed, consumed, depth)
		}
		depths[depth] = true
	}
	if len(depths) < 2 {
		t.Errorf("depth never varied across seeds: %v", depths)
	}

	// Same seed, same schedule → same depth (the campaign determinism
	// invariant extends to guided cells).
	pg2 := NewPrefixGuide(core.NewRandomStrategy())
	pg2.MinFrac, pg2.MaxFrac = 0.25, 0.75
	pg2.SetSchedule(tr.Schedule)
	pg2.Seed(17)
	pg.Seed(17)
	d1, _, _ := pg.Handoff()
	d2, _, _ := pg2.Handoff()
	if d1 != d2 {
		t.Fatalf("depth not a pure function of seed: %d vs %d", d1, d2)
	}
}

// flakyModel wraps the real C11 model but panics with a core.InfeasibleError
// on the Nth atomic load when armed — the mid-execution model-failure mode
// the fiber-pool stress test interleaves with other abort paths.
type flakyModel struct {
	*core.C11Model
	loads    int
	failLoad int
}

func (m *flakyModel) Begin(e *core.Engine) {
	m.loads = 0
	m.C11Model.Begin(e)
}

func (m *flakyModel) AtomicLoad(t *core.ThreadState, op *capi.Op) memmodel.Value {
	m.loads++
	if m.failLoad > 0 && m.loads == m.failLoad {
		panic(&core.InfeasibleError{Stage: "load", Loc: op.Loc, Detail: "injected for stress test"})
	}
	return m.C11Model.AtomicLoad(t, op)
}

// TestFiberPoolStressMixedAbortPaths is the fiber-pool stress test: one
// pooled engine interleaves InfeasibleError aborts, step-limit aborts, and
// guided (PrefixGuide) and unguided executions. The worker pool must stay
// bounded by the widest program — aborts recycle workers, they never leak or
// respawn them — and every completed execution must stay byte-identical to a
// fresh engine running the same (strategy, seed).
func TestFiberPoolStressMixedAbortPaths(t *testing.T) {
	tr, _ := recordGuideTrace(t, 5)

	var out string
	prog := guideProg(&out)
	spin := capi.Program{Name: "spin", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		th := env.Spawn("spinner", func(env capi.Env) {
			for i := 0; i < 500; i++ {
				env.Load(x, memmodel.Relaxed)
			}
		})
		env.Join(th)
	}}

	const maxSteps = 64 // truncates spin, never guideProg
	fm := &flakyModel{C11Model: core.NewC11Model()}
	pooled := core.New("c11tester", fm, core.Config{StoreBurst: true, MaxSteps: maxSteps})
	pg := NewPrefixGuide(core.NewRandomStrategy())
	pg.SetSchedule(tr.Schedule)
	rnd := core.NewRandomStrategy()

	compare := func(round int, seed int64, guided bool) {
		var outF string
		progF := guideProg(&outF)
		fresh := core.New("c11tester", core.NewC11Model(), core.Config{StoreBurst: true, MaxSteps: maxSteps})
		if guided {
			fpg := NewPrefixGuide(core.NewRandomStrategy())
			fpg.SetSchedule(tr.Schedule)
			fresh.SetStrategy(fpg)
		}
		resF := fresh.Execute(progF, seed)
		want := digestOf(fresh, resF, outF)
		if guided {
			pooled.SetStrategy(pg)
		} else {
			pooled.SetStrategy(rnd)
		}
		out = ""
		res := pooled.Execute(prog, seed)
		if res.EngineError != nil {
			t.Fatalf("round %d: clean execution failed: %v", round, res.EngineError)
		}
		got := digestOf(pooled, res, out)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d (guided=%v): pooled %+v != fresh %+v", round, guided, got, want)
		}
		fresh.Close()
	}

	for round := 0; round < 24; round++ {
		seed := int64(round)
		switch round % 4 {
		case 0: // infeasible model state mid-execution
			fm.failLoad = 2
			pooled.SetStrategy(rnd)
			res := pooled.Execute(prog, seed)
			if res.EngineError == nil {
				t.Fatalf("round %d: armed model did not abort", round)
			}
			fm.failLoad = 0
		case 1: // step-limit abort
			pooled.SetStrategy(rnd)
			res := pooled.Execute(spin, seed)
			if !res.Truncated {
				t.Fatalf("round %d: spin execution was not truncated", round)
			}
		case 2: // guided execution vs fresh engine
			compare(round, seed, true)
		case 3: // unguided execution vs fresh engine
			compare(round, seed, false)
		}
	}

	if w := pooled.Workers(); w > 3 {
		t.Errorf("worker count %d, want ≤ 3 (guideProg's thread count)", w)
	}
	if s := pooled.WorkerSpawns(); s > 3 {
		t.Errorf("scheduler spawned %d goroutines over 24 mixed executions, want ≤ 3 (aborts must recycle workers)", s)
	}
	pooled.Close()
}

// TestGuidedUnguidedAlternationOnPooledEngine is the regression test for the
// stale-arena bugfix: alternating guided (PrefixGuide) and unguided
// executions on ONE pooled engine must produce results byte-identical to
// fresh engines running the same (strategy, seed) — i.e. the unconditional
// per-execution reset leaves nothing for a guided prefix (or the execution
// after it) to observe from the previous execution.
func TestGuidedUnguidedAlternationOnPooledEngine(t *testing.T) {
	tr, _ := recordGuideTrace(t, 11)

	var outP string
	progP := guideProg(&outP)
	pooled := newGuideEngine()
	pooled.SetTrace(true)
	pg := NewPrefixGuide(core.NewRandomStrategy())
	pg.SetSchedule(tr.Schedule)
	rnd := core.NewRandomStrategy()

	for seed := int64(0); seed < 20; seed++ {
		guided := seed%2 == 0
		if guided {
			pooled.SetStrategy(pg)
		} else {
			pooled.SetStrategy(rnd)
		}
		outP = ""
		resP := pooled.Execute(progP, seed)
		if resP.EngineError != nil {
			t.Fatal(resP.EngineError)
		}
		got := digestOf(pooled, resP, outP)

		var outF string
		progF := guideProg(&outF)
		fresh := newGuideEngine()
		fresh.SetTrace(true)
		if guided {
			fpg := NewPrefixGuide(core.NewRandomStrategy())
			fpg.SetSchedule(tr.Schedule)
			fresh.SetStrategy(fpg)
		}
		resF := fresh.Execute(progF, seed)
		want := digestOf(fresh, resF, outF)

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d (guided=%v): pooled %+v != fresh %+v", seed, guided, got, want)
		}
	}
}
