package trace

import (
	"fmt"
	"reflect"
	"sort"

	"c11tester/internal/capi"
	"c11tester/internal/core"
)

// Subject is everything needed to re-execute a trace: a freshly built tool
// of the recorded configuration and the recorded program. Reset is called
// before each execution (litmus programs reset their outcome cell) and
// Outcome is read after it; both may be nil.
type Subject struct {
	Tool    capi.Tool
	Prog    capi.Program
	Reset   func()
	Outcome func() string
}

func (s Subject) engine() (*core.Engine, error) {
	eng, ok := s.Tool.(*core.Engine)
	if !ok {
		return nil, fmt.Errorf("trace: tool %q is not a core engine and cannot be replayed", s.Tool.Name())
	}
	return eng, nil
}

// ReplayResult is the observable digest of one replayed execution.
type ReplayResult struct {
	RaceKeys       []string
	Outcome        string
	FinalValues    map[string]uint64
	Deadlocked     bool
	Truncated      bool
	AssertFailures int

	// Diverged is the first schedule divergence, "" for an exact replay.
	Diverged string
	// Effective is the schedule actually taken, fallbacks included.
	Effective Schedule
	// Events is the replayed event payload when the model provides one.
	Events []Event

	// Result is the raw execution result.
	Result *capi.Result
}

// Replay re-drives tr's recorded schedule through s and returns the digest
// of the replayed execution. Use tr.Verify on the result to check that the
// replay reproduced the recorded execution exactly.
func Replay(tr *Trace, s Subject) (*ReplayResult, error) {
	eng, err := s.engine()
	if err != nil {
		return nil, err
	}
	rp := NewReplayer(tr.Schedule)
	eng.SetStrategy(rp)
	eng.SetTrace(true)
	return replayOnce(tr, s, eng, rp)
}

// replayOnce runs one execution with the replayer already interposed and
// collects the digest. The engine state it reads is only valid until the
// next Execute, so recording of the minimized trace also goes through here.
func replayOnce(tr *Trace, s Subject, eng *core.Engine, rp *Replayer) (*ReplayResult, error) {
	if s.Reset != nil {
		s.Reset()
	}
	res := eng.Execute(s.Prog, tr.Seed)
	if res.EngineError != nil {
		// The engine aborted mid-execution (core.InfeasibleError); the model
		// state behind it is half-unwound, so recording or verifying against
		// it would misdiagnose the failure. Surface it as what it is.
		return nil, fmt.Errorf("trace: replay aborted by the engine: %w", res.EngineError)
	}
	rr := &ReplayResult{
		RaceKeys:       raceKeys(res),
		FinalValues:    finalValues(eng),
		Deadlocked:     res.Deadlocked,
		Truncated:      res.Truncated,
		AssertFailures: len(res.AssertFailures),
		Diverged:       rp.Diverged(),
		Effective:      rp.Effective(),
		Result:         res,
	}
	if s.Outcome != nil {
		rr.Outcome = s.Outcome()
	}
	if _, ok := eng.Model().(core.MOProvider); ok {
		// Serialize the replayed events through the same path as Record, so
		// Verify can compare them field for field.
		rt, err := Record(eng, res, rr.Effective, Meta{
			Tool: tr.Tool, Program: tr.Program, Litmus: tr.Litmus,
			Seed: tr.Seed, Outcome: rr.Outcome,
		})
		if err != nil {
			return nil, err
		}
		rr.Events = rt.Events
	}
	return rr, nil
}

// Verify checks that a replay reproduced the recorded execution: no schedule
// divergence, the same schedule consumed in full, and byte-identical race
// keys, outcome, final values, termination flags, and (when both sides carry
// them) event payloads. It returns nil on an exact reproduction.
func (tr *Trace) Verify(rr *ReplayResult) error {
	if rr.Diverged != "" {
		return fmt.Errorf("replay diverged: %s", rr.Diverged)
	}
	if !reflect.DeepEqual(normalizeSchedule(rr.Effective), normalizeSchedule(tr.Schedule)) {
		return fmt.Errorf("replay consumed schedule (%d thread, %d index choices) != recorded (%d, %d)",
			len(rr.Effective.Threads), len(rr.Effective.Indices),
			len(tr.Schedule.Threads), len(tr.Schedule.Indices))
	}
	if !equalStrings(rr.RaceKeys, tr.RaceKeys) {
		return fmt.Errorf("replay race keys %v != recorded %v", rr.RaceKeys, tr.RaceKeys)
	}
	if rr.Outcome != tr.Outcome {
		return fmt.Errorf("replay outcome %q != recorded %q", rr.Outcome, tr.Outcome)
	}
	if !equalValues(rr.FinalValues, tr.FinalValues) {
		return fmt.Errorf("replay final values differ: %v != %v", rr.FinalValues, tr.FinalValues)
	}
	if rr.Deadlocked != tr.Deadlocked || rr.Truncated != tr.Truncated {
		return fmt.Errorf("replay termination (deadlocked=%v truncated=%v) != recorded (%v, %v)",
			rr.Deadlocked, rr.Truncated, tr.Deadlocked, tr.Truncated)
	}
	if rr.AssertFailures != tr.AssertFailures {
		return fmt.Errorf("replay assert failures %d != recorded %d", rr.AssertFailures, tr.AssertFailures)
	}
	if len(rr.Events) > 0 && len(tr.Events) > 0 && !reflect.DeepEqual(rr.Events, tr.Events) {
		return fmt.Errorf("replay events differ from recorded events (%d vs %d)", len(rr.Events), len(tr.Events))
	}
	return nil
}

func normalizeSchedule(s Schedule) Schedule {
	if s.Threads == nil {
		s.Threads = []int32{}
	}
	if s.Indices == nil {
		s.Indices = []int32{}
	}
	return s
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	ac := append([]string(nil), a...)
	bc := append([]string(nil), b...)
	sort.Strings(ac)
	sort.Strings(bc)
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}

func equalValues(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
