package trace

import (
	"fmt"

	"c11tester/internal/core"
	"c11tester/internal/memmodel"
	"c11tester/internal/rng"
)

// Recorder wraps an exploration strategy and logs every choice it makes.
// Interposed via Engine.SetStrategy, it captures the complete Schedule of
// each execution; Seed (called by Engine.Execute) starts a fresh log, so one
// Recorder serves a whole run of executions.
type Recorder struct {
	inner core.Strategy
	sched Schedule
}

// NewRecorder wraps inner (nil means the default random strategy).
func NewRecorder(inner core.Strategy) *Recorder {
	if inner == nil {
		inner = core.NewRandomStrategy()
	}
	return &Recorder{inner: inner}
}

// Seed implements core.Strategy: re-seed the inner strategy and reset the log.
func (r *Recorder) Seed(seed int64) {
	r.inner.Seed(seed)
	r.sched = Schedule{}
}

// RNGKind implements rng.Kinded, reporting the inner strategy's source so
// wrappers stacked on a Recorder (e.g. a PrefixGuide) stay on it.
func (r *Recorder) RNGKind() rng.Kind { return rng.KindOf(r.inner) }

// PickThread implements core.Strategy.
func (r *Recorder) PickThread(ready []*core.ThreadState) *core.ThreadState {
	t := r.inner.PickThread(ready)
	r.sched.Threads = append(r.sched.Threads, int32(t.ID))
	return t
}

// PickIndex implements core.Strategy.
func (r *Recorder) PickIndex(n int) int {
	i := r.inner.PickIndex(n)
	r.sched.Indices = append(r.sched.Indices, int32(i))
	return i
}

// Schedule returns a copy of the choices recorded since the last Seed.
func (r *Recorder) Schedule() Schedule {
	return Schedule{
		Threads: append([]int32(nil), r.sched.Threads...),
		Indices: append([]int32(nil), r.sched.Indices...),
	}
}

// Replayer is a strategy that re-drives a recorded Schedule. When the
// recorded stream is exhausted or names a choice the current execution
// cannot take (a thread that is not ready, an index out of range) it falls
// back to a fixed deterministic choice — first ready thread, index 0 — and
// notes the first such divergence. An exact replay of a faithful trace never
// diverges; minimization relies on the tolerant fallback to run truncated
// schedules to completion.
type Replayer struct {
	sched Schedule
	ti    int
	ii    int

	// effective logs the choices actually taken, fallbacks included; it is
	// the canonical schedule of the replayed execution.
	effective Schedule
	diverged  string
}

// NewReplayer returns a Replayer for sched.
func NewReplayer(sched Schedule) *Replayer {
	return &Replayer{sched: sched}
}

// Seed implements core.Strategy: rewind to the start of the schedule.
func (r *Replayer) Seed(int64) {
	r.ti, r.ii = 0, 0
	r.effective = Schedule{}
	r.diverged = ""
}

func (r *Replayer) note(format string, args ...any) {
	if r.diverged == "" {
		r.diverged = fmt.Sprintf(format, args...)
	}
}

// PickThread implements core.Strategy.
func (r *Replayer) PickThread(ready []*core.ThreadState) *core.ThreadState {
	if r.ti < len(r.sched.Threads) {
		want := memmodel.TID(r.sched.Threads[r.ti])
		r.ti++
		for _, t := range ready {
			if t.ID == want {
				r.effective.Threads = append(r.effective.Threads, int32(t.ID))
				return t
			}
		}
		r.note("recorded thread %d not ready at scheduling point %d", want, r.ti-1)
	} else {
		r.note("thread schedule exhausted after %d choices", len(r.sched.Threads))
	}
	t := ready[0]
	r.effective.Threads = append(r.effective.Threads, int32(t.ID))
	return t
}

// PickIndex implements core.Strategy.
func (r *Replayer) PickIndex(n int) int {
	i := 0
	if r.ii < len(r.sched.Indices) {
		rec := int(r.sched.Indices[r.ii])
		r.ii++
		if rec < n {
			i = rec
		} else {
			r.note("recorded index %d out of range %d at choice point %d", rec, n, r.ii-1)
		}
	} else {
		r.note("index schedule exhausted after %d choices", len(r.sched.Indices))
	}
	r.effective.Indices = append(r.effective.Indices, int32(i))
	return i
}

// Diverged returns the first divergence description, or "".
func (r *Replayer) Diverged() string { return r.diverged }

// Consumed reports how many recorded choices were consumed.
func (r *Replayer) Consumed() (threads, indices int) { return r.ti, r.ii }

// Effective returns the choices actually taken, fallbacks included.
func (r *Replayer) Effective() Schedule {
	return Schedule{
		Threads: append([]int32(nil), r.effective.Threads...),
		Indices: append([]int32(nil), r.effective.Indices...),
	}
}
