// Package trace implements portable execution traces for the tools in this
// repository: a versioned serialization of one execution — its scheduling
// choices, its dynamic actions with reads-from edges, the per-location
// modification orders, and a digest of the observable outcome — together
// with deterministic replay, offline axiomatic validation, and ddmin-style
// schedule minimization.
//
// The design leans on the same invariant as the campaign runner: every tool
// re-derives all scheduling and reads-from choices from (seed, strategy), so
// an execution is fully determined by the seed plus the sequence of values
// the strategy returned. A trace therefore records that choice stream (the
// Schedule) next to the seed and tool configuration; replay substitutes a
// strategy that returns the recorded choices and must reproduce the
// execution event for event. The event payload (Events + MO) is what the
// tsan11rec baseline's record log aspires to be (Section 2 of the paper) and
// what Appendix A's axiomatic model consumes: internal/axiom can re-check a
// serialized trace with no live engine.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"

	"c11tester/internal/axiom"
	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/memmodel"
	"c11tester/internal/safeio"
)

// Schema identifiers of the serialized trace. Bump SchemaVersion on any
// incompatible change to the JSON shape.
const (
	SchemaName    = "c11tester/trace"
	SchemaVersion = 1
)

// ToolConfig identifies the tool an execution ran under, in enough detail to
// reconstruct an identical tool for replay (the same execution function of
// seed). Fields mirror the cmd/c11tester flags.
type ToolConfig struct {
	Name            string `json:"name"`
	Prune           string `json:"prune,omitempty"`
	Sched           string `json:"sched,omitempty"`
	QuantumMean     int    `json:"quantum_mean,omitempty"`
	MaxSteps        uint64 `json:"max_steps,omitempty"`
	FaithfulHandoff bool   `json:"faithful_handoff,omitempty"`
	// RNG names a non-default random source ("legacy"); empty means the
	// default PCG source. Replay must rebuild the tool on the same source:
	// workload draws (env.RandUint64) depend on it.
	RNG string `json:"rng,omitempty"`
}

// Schedule is the recorded choice stream of one execution: the thread picked
// at each scheduling point and the index picked at each behaviour choice
// (which candidate store a load reads from, etc.). The two streams are
// consumed at engine-determined points, so two flat lists reproduce the
// interleaving exactly.
type Schedule struct {
	Threads []int32 `json:"threads"`
	Indices []int32 `json:"indices"`
}

// Len returns the total number of recorded choices.
func (s Schedule) Len() int { return len(s.Threads) + len(s.Indices) }

// Event is one serialized dynamic action. Kinds and memory orders are
// serialized by name, not ordinal, so traces stay readable and survive
// enum reordering.
type Event struct {
	Seq   uint64 `json:"seq"`
	TID   int32  `json:"tid"`
	Kind  string `json:"kind"`
	MO    string `json:"mo,omitempty"`
	Loc   uint32 `json:"loc,omitempty"`
	Value uint64 `json:"value,omitempty"`
	// RF is the index (into Events) of the store this load/RMW read from,
	// or -1.
	RF int `json:"rf"`
	// SCIdx is the position in the seq_cst total order, or -1.
	SCIdx int `json:"sc_idx"`
}

// Trace is one serialized execution.
type Trace struct {
	Schema        string     `json:"schema"`
	SchemaVersion int        `json:"schema_version"`
	Tool          ToolConfig `json:"tool"`
	Program       string     `json:"program"`
	// Litmus marks Program as a litmus-test name rather than a benchmark
	// name.
	Litmus bool  `json:"litmus,omitempty"`
	Seed   int64 `json:"seed"`

	Schedule Schedule `json:"schedule"`

	// Digest of the recorded execution; replay must reproduce it exactly.
	RaceKeys       []string          `json:"race_keys"`
	Outcome        string            `json:"outcome,omitempty"`
	FinalValues    map[string]uint64 `json:"final_values"`
	Deadlocked     bool              `json:"deadlocked,omitempty"`
	Truncated      bool              `json:"truncated,omitempty"`
	AssertFailures int               `json:"assert_failures,omitempty"`

	// Axiomatic payload, present when the tool's memory model exposes a
	// total modification order (core.MOProvider): the full action trace and
	// one concrete modification order per location, as event indices.
	Events []Event          `json:"events,omitempty"`
	MO     map[string][]int `json:"mo,omitempty"`
	// Locs names the locations appearing in MO, for human readers.
	Locs map[string]string `json:"locs,omitempty"`
}

// kindByName and moByName invert the memmodel name tables.
var kindByName = func() map[string]memmodel.Kind {
	m := map[string]memmodel.Kind{}
	for k := memmodel.KLoad; k <= memmodel.KAssert; k++ {
		m[k.String()] = k
	}
	return m
}()

var moByName = func() map[string]memmodel.MemoryOrder {
	m := map[string]memmodel.MemoryOrder{}
	for mo := memmodel.Relaxed; mo <= memmodel.SeqCst; mo++ {
		m[mo.String()] = mo
	}
	return m
}()

// Meta carries the identity of the execution being recorded.
type Meta struct {
	Tool    ToolConfig
	Program string
	Litmus  bool
	Seed    int64
	// Outcome is the litmus outcome string, when the program produced one.
	Outcome string
}

// Record serializes the execution the engine just ran: res is the Execute
// result, sched the choice stream captured by a Recorder (zero Schedule if
// none was interposed). It must be called before the engine's next Execute.
// The axiomatic payload is included when the engine ran in trace mode and
// its model provides total modification orders.
func Record(eng *core.Engine, res *capi.Result, sched Schedule, meta Meta) (*Trace, error) {
	tr := &Trace{
		Schema:         SchemaName,
		SchemaVersion:  SchemaVersion,
		Tool:           meta.Tool,
		Program:        meta.Program,
		Litmus:         meta.Litmus,
		Seed:           meta.Seed,
		Schedule:       sched,
		RaceKeys:       raceKeys(res),
		Outcome:        meta.Outcome,
		FinalValues:    finalValues(eng),
		Deadlocked:     res.Deadlocked,
		Truncated:      res.Truncated,
		AssertFailures: len(res.AssertFailures),
	}
	if tr.Tool.Name == "" {
		tr.Tool.Name = eng.Name()
	}
	mp, hasMO := eng.Model().(core.MOProvider)
	if !eng.Config().Trace || !hasMO {
		return tr, nil
	}

	actions := eng.Trace()
	index := make(map[*core.Action]int, len(actions))
	for i, a := range actions {
		index[a] = i
	}
	tr.Events = make([]Event, len(actions))
	for i, a := range actions {
		ev := Event{
			Seq: uint64(a.Seq), TID: int32(a.TID), Kind: a.Kind.String(),
			MO: a.MO.String(), Loc: uint32(a.Loc), Value: uint64(a.Value),
			RF: -1, SCIdx: a.SCIdx,
		}
		if a.RF != nil {
			j, ok := index[a.RF]
			if !ok {
				return nil, fmt.Errorf("trace: %v reads from an untraced store", a)
			}
			ev.RF = j
		}
		tr.Events[i] = ev
	}
	tr.MO = map[string][]int{}
	tr.Locs = map[string]string{}
	for _, loc := range mp.Locations() {
		mo := mp.TotalMO(loc)
		ids := make([]int, len(mo))
		for i, a := range mo {
			j, ok := index[a]
			if !ok {
				return nil, fmt.Errorf("trace: mo of loc %d contains untraced store %v", loc, a)
			}
			ids[i] = j
		}
		key := fmt.Sprintf("%d", loc)
		tr.MO[key] = ids
		tr.Locs[key] = eng.LocName(loc)
	}
	return tr, nil
}

// raceKeys returns the sorted, deduplicated race keys of one execution.
func raceKeys(res *capi.Result) []string {
	seen := map[string]bool{}
	keys := []string{}
	for _, r := range res.Races {
		if k := r.Key(); !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func finalValues(eng *core.Engine) map[string]uint64 {
	fv := eng.FinalValues()
	out := make(map[string]uint64, len(fv))
	for k, v := range fv {
		out[k] = uint64(v)
	}
	return out
}

// Validatable reports whether the trace carries the axiomatic payload.
func (tr *Trace) Validatable() bool { return len(tr.Events) > 0 }

// Execution reconstructs the axiomatic-checker view of the trace: the action
// list with reads-from edges rewired and the concrete per-location
// modification orders. No live engine is involved.
func (tr *Trace) Execution() (*axiom.Execution, error) {
	if !tr.Validatable() {
		return nil, fmt.Errorf("trace: no event payload (recorded from a tool without a total-mo model)")
	}
	acts := make([]*core.Action, len(tr.Events))
	for i, ev := range tr.Events {
		kind, ok := kindByName[ev.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: event %d has unknown kind %q", i, ev.Kind)
		}
		a := &core.Action{
			Seq: memmodel.SeqNum(ev.Seq), TID: memmodel.TID(ev.TID), Kind: kind,
			Loc: memmodel.LocID(ev.Loc), Value: memmodel.Value(ev.Value), SCIdx: ev.SCIdx,
		}
		if ev.MO != "" {
			mo, ok := moByName[ev.MO]
			if !ok {
				return nil, fmt.Errorf("trace: event %d has unknown memory order %q", i, ev.MO)
			}
			a.MO = mo
		}
		acts[i] = a
	}
	for i, ev := range tr.Events {
		if ev.RF >= 0 {
			if ev.RF >= len(acts) {
				return nil, fmt.Errorf("trace: event %d rf index %d out of range", i, ev.RF)
			}
			acts[i].RF = acts[ev.RF]
		}
	}
	mo := map[memmodel.LocID][]*core.Action{}
	for key, ids := range tr.MO {
		var loc memmodel.LocID
		if _, err := fmt.Sscanf(key, "%d", &loc); err != nil {
			return nil, fmt.Errorf("trace: bad mo location key %q", key)
		}
		list := make([]*core.Action, len(ids))
		for i, id := range ids {
			if id < 0 || id >= len(acts) {
				return nil, fmt.Errorf("trace: mo of loc %s references event %d out of range", key, id)
			}
			list[i] = acts[id]
		}
		mo[loc] = list
	}
	// RMWReader links are needed by nothing in the checker, but rebuild the
	// per-store uniqueness the checker verifies from RF alone.
	return &axiom.Execution{Trace: acts, MO: mo}, nil
}

// Validate runs the offline axiomatic checker over the serialized trace.
func (tr *Trace) Validate() ([]axiom.Violation, error) {
	ex, err := tr.Execution()
	if err != nil {
		return nil, err
	}
	return axiom.Check(ex), nil
}

// WriteFile serializes the trace to path as indented JSON. The write is
// atomic (temp + rename): a run SIGKILLed mid-capture leaves no torn trace
// for replay tooling to choke on.
func (tr *Trace) WriteFile(path string) error {
	data, err := json.MarshalIndent(tr, "", " ")
	if err != nil {
		return err
	}
	return safeio.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// ReadFile loads and sanity-checks a serialized trace. Truncated or corrupt
// files come back as a *safeio.DecodeError naming the byte offset.
func ReadFile(path string) (*Trace, error) {
	var tr Trace
	if err := safeio.DecodeJSONFile(path, &tr); err != nil {
		return nil, err
	}
	if tr.Schema != SchemaName {
		return nil, fmt.Errorf("trace: %s: schema %q, want %q", path, tr.Schema, SchemaName)
	}
	if tr.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("trace: %s: schema version %d, want %d", path, tr.SchemaVersion, SchemaVersion)
	}
	return &tr, nil
}

// FileName renders the canonical trace file name for one execution. The
// (tool, program, seed) triple is unique within a campaign, so concurrent
// shards never collide.
func FileName(tool, program string, seed int64) string {
	return fmt.Sprintf("trace_%s_%s_%d.json", sanitize(tool), sanitize(program), seed)
}

func sanitize(s string) string {
	out := []rune(s)
	for i, r := range out {
		switch r {
		case '/', '\\', ':', ' ':
			out[i] = '-'
		}
	}
	return string(out)
}
