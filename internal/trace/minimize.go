package trace

import (
	"fmt"
)

// MinimizeStats summarizes a minimization run. The After lengths describe
// the stored schedule, which is re-expanded to the full effective choice
// stream so the minimized trace replays exactly; the Core lengths are the
// minimal recorded choices that still drive the signal before that
// expansion (everything beyond them is the trivial first-ready/index-0
// fallback made explicit).
type MinimizeStats struct {
	Replays       int `json:"replays"`
	ThreadsBefore int `json:"threads_before"`
	ThreadsAfter  int `json:"threads_after"`
	IndicesBefore int `json:"indices_before"`
	IndicesAfter  int `json:"indices_after"`
	CoreThreads   int `json:"core_threads"`
	CoreIndices   int `json:"core_indices"`
}

// DefaultMinimizeBudget caps the number of replays one Minimize call may
// spend.
const DefaultMinimizeBudget = 600

// Minimize shrinks a trace's schedule to a smaller one that still exhibits
// the same signal: every recorded race key (and, for litmus traces, the same
// outcome). It combines a monotone prefix cut — a race that fired inside the
// first k choices still fires when the tail is dropped — with ddmin over the
// thread-choice stream and then the index-choice stream. Candidate schedules
// run under the tolerant replayer (truncations fall back to a deterministic
// first-ready/index-0 scheduler), and only candidates that reproduce the
// signal are accepted, so the result is always a verified trace. budget <= 0
// uses DefaultMinimizeBudget.
func Minimize(tr *Trace, s Subject, budget int) (*Trace, MinimizeStats, error) {
	stats := MinimizeStats{
		ThreadsBefore: len(tr.Schedule.Threads),
		IndicesBefore: len(tr.Schedule.Indices),
	}
	if budget <= 0 {
		budget = DefaultMinimizeBudget
	}
	if len(tr.RaceKeys) == 0 && tr.Outcome == "" {
		return nil, stats, fmt.Errorf("trace: nothing to minimize (no race keys and no outcome recorded)")
	}
	eng, err := s.engine()
	if err != nil {
		return nil, stats, err
	}
	eng.SetTrace(true)

	satisfies := func(rr *ReplayResult) bool {
		for _, want := range tr.RaceKeys {
			found := false
			for _, got := range rr.RaceKeys {
				if got == want {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return tr.Outcome == "" || rr.Outcome == tr.Outcome
	}

	var last *ReplayResult
	attempt := func(sched Schedule) bool {
		if stats.Replays >= budget {
			return false
		}
		stats.Replays++
		rp := NewReplayer(sched)
		eng.SetStrategy(rp)
		rr, err := replayOnce(tr, s, eng, rp)
		if err != nil || !satisfies(rr) {
			return false
		}
		last = rr
		return true
	}

	if !attempt(tr.Schedule) {
		return nil, stats, fmt.Errorf("trace: does not reproduce its own race keys/outcome; cannot minimize")
	}

	// Monotone prefix cut on the thread stream: find the shortest prefix that
	// still reproduces. Every accepted cut is itself tested, so correctness
	// does not depend on monotonicity — only the search efficiency does.
	threads := tr.Schedule.Threads
	lo, hi := 0, len(threads)
	for lo < hi {
		mid := (lo + hi) / 2
		if attempt(Schedule{Threads: threads[:mid], Indices: tr.Schedule.Indices}) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	threads = threads[:hi]

	threads = ddmin(threads, func(cand []int32) bool {
		return attempt(Schedule{Threads: cand, Indices: tr.Schedule.Indices})
	})
	indices := ddmin(tr.Schedule.Indices, func(cand []int32) bool {
		return attempt(Schedule{Threads: threads, Indices: cand})
	})

	// Canonical final run: replay the minimized choice stream once more
	// (outside the budget — the engine state Record reads below must come
	// from this execution) and record its *effective* schedule (fallback
	// choices made explicit), so the minimized trace replays exactly, with
	// no divergence. The (threads, indices) combination was accepted above,
	// and the engine is deterministic, so this run reproduces the signal.
	stats.Replays++
	rp := NewReplayer(Schedule{Threads: threads, Indices: indices})
	eng.SetStrategy(rp)
	rr, err := replayOnce(tr, s, eng, rp)
	if err != nil {
		return nil, stats, err
	}
	if !satisfies(rr) {
		return nil, stats, fmt.Errorf("trace: minimized schedule failed to reproduce on the final run")
	}
	last = rr
	min, err := Record(eng, last.Result, last.Effective, Meta{
		Tool: tr.Tool, Program: tr.Program, Litmus: tr.Litmus,
		Seed: tr.Seed, Outcome: last.Outcome,
	})
	if err != nil {
		return nil, stats, err
	}
	stats.ThreadsAfter = len(min.Schedule.Threads)
	stats.IndicesAfter = len(min.Schedule.Indices)
	stats.CoreThreads = len(threads)
	stats.CoreIndices = len(indices)
	return min, stats, nil
}

// ddmin is the complement-removal half of Zeller's ddmin: repeatedly try
// dropping chunks of the input, refining granularity until no single chunk
// at maximal granularity can be removed. test must return true when the
// candidate still exhibits the target behaviour; it is never called with the
// unmodified input.
func ddmin(input []int32, test func([]int32) bool) []int32 {
	cur := input
	if len(cur) == 0 {
		return cur
	}
	if test(nil) {
		return nil
	}
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]int32, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if test(cand) {
				cur = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	return cur
}
