package trace

import (
	"fmt"
	"path/filepath"
	"testing"

	"c11tester/internal/baseline"
	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/memmodel"
)

const (
	rlx = memmodel.Relaxed
	acq = memmodel.Acquire
	rel = memmodel.Release
	sc  = memmodel.SeqCst
)

// mixProg is a deterministic multi-threaded atomics program with enough
// behavioural freedom (relaxed MP, SB, an RMW chain) that different seeds
// produce different executions.
func mixProg(out *string) capi.Program {
	return capi.Program{Name: "mix", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		y := env.NewAtomic("y", 0)
		c := env.NewAtomic("c", 0)
		var r1, r2 memmodel.Value
		a := env.Spawn("A", func(env capi.Env) {
			env.Store(x, 1, rlx)
			env.FetchAdd(c, 1, rel)
			env.Store(y, 1, rlx)
			r1 = env.Load(y, rlx)
		})
		b := env.Spawn("B", func(env capi.Env) {
			env.Store(y, 2, sc)
			env.FetchAdd(c, 1, acq)
			r2 = env.Load(x, rlx)
			env.Store(x, 2, rel)
		})
		env.Join(a)
		env.Join(b)
		*out = fmt.Sprintf("r1=%d r2=%d c=%d", r1, r2, env.Load(c, acq))
	}}
}

// racyProg races on a plain location behind a relaxed-atomic flag: the race
// fires only in executions where the reader observes flag=1, so whether it
// manifests depends on the schedule and reads-from choices.
func racyProg() capi.Program {
	return capi.Program{Name: "racy-flag", Run: func(env capi.Env) {
		data := env.NewLoc("data", 0)
		flag := env.NewAtomic("flag", 0)
		noise := env.NewAtomic("noise", 0)
		w := env.Spawn("w", func(env capi.Env) {
			for i := 0; i < 6; i++ {
				env.FetchAdd(noise, 1, rlx)
			}
			env.Write(data, 1)
			env.Store(flag, 1, rlx)
		})
		r := env.Spawn("r", func(env capi.Env) {
			for i := 0; i < 24; i++ {
				env.FetchAdd(noise, 1, rlx)
				if env.Load(flag, rlx) == 1 {
					env.Read(data)
					return
				}
			}
		})
		env.Join(w)
		env.Join(r)
	}}
}

func newEngine() *core.Engine {
	return core.New("c11tester", core.NewC11Model(), core.Config{StoreBurst: true, Trace: true})
}

// recordOne runs prog once under a fresh recording engine and serializes the
// execution.
func recordOne(t *testing.T, prog capi.Program, seed int64, outcome func() string, reset func()) *Trace {
	t.Helper()
	eng := newEngine()
	rec := NewRecorder(core.NewRandomStrategy())
	eng.SetStrategy(rec)
	if reset != nil {
		reset()
	}
	res := eng.Execute(prog, seed)
	meta := Meta{Tool: ToolConfig{Name: "c11tester"}, Program: prog.Name, Seed: seed}
	if outcome != nil {
		meta.Outcome = outcome()
	}
	tr, err := Record(eng, res, rec.Schedule(), meta)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	return tr
}

func TestRecordReplayRoundTrip(t *testing.T) {
	var out string
	prog := mixProg(&out)
	for seed := int64(1); seed <= 20; seed++ {
		out = ""
		tr := recordOne(t, prog, seed, func() string { return out }, nil)
		if !tr.Validatable() {
			t.Fatalf("seed %d: trace has no event payload", seed)
		}
		if tr.Schedule.Len() == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		rr, err := Replay(tr, Subject{
			Tool: newEngine(), Prog: prog,
			Reset:   func() { out = "" },
			Outcome: func() string { return out },
		})
		if err != nil {
			t.Fatalf("seed %d: Replay: %v", seed, err)
		}
		if err := tr.Verify(rr); err != nil {
			t.Fatalf("seed %d: replay is not byte-identical: %v", seed, err)
		}
	}
}

func TestSerializationRoundTripAndOfflineValidation(t *testing.T) {
	var out string
	prog := mixProg(&out)
	tr := recordOne(t, prog, 7, func() string { return out }, func() { out = "" })

	path := filepath.Join(t.TempDir(), FileName("c11tester", prog.Name, 7))
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Schedule.Len() != tr.Schedule.Len() || len(loaded.Events) != len(tr.Events) {
		t.Fatalf("round trip lost data: %d/%d choices, %d/%d events",
			loaded.Schedule.Len(), tr.Schedule.Len(), len(loaded.Events), len(tr.Events))
	}

	// Offline validation, no live engine: the serialized execution must
	// satisfy the axiomatic model.
	vs, err := loaded.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) > 0 {
		t.Fatalf("offline validation of a legal execution failed: %v", vs)
	}

	// The checker must actually see the serialized data: corrupt one store's
	// value so its reader's rf edge no longer matches.
	for _, ev := range loaded.Events {
		if ev.Kind == "load" && ev.RF >= 0 {
			loaded.Events[ev.RF].Value++ // the reader now holds a stale value
			break
		}
	}
	vs, err = loaded.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("offline validator missed a corrupted rf value")
	}
}

func TestVerifyFlagsTamperedSchedule(t *testing.T) {
	var out string
	prog := mixProg(&out)
	tr := recordOne(t, prog, 3, func() string { return out }, func() { out = "" })
	if len(tr.Schedule.Threads) < 4 {
		t.Fatalf("schedule too short to tamper with: %d", len(tr.Schedule.Threads))
	}
	// Drop the second half of the thread schedule: replay now takes fallback
	// decisions and must be flagged by Verify.
	tr.Schedule.Threads = tr.Schedule.Threads[:len(tr.Schedule.Threads)/2]
	rr, err := Replay(tr, Subject{
		Tool: newEngine(), Prog: prog,
		Reset:   func() { out = "" },
		Outcome: func() string { return out },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Verify(rr); err == nil {
		t.Fatal("Verify accepted a truncated schedule as an exact replay")
	}
}

func TestBaselineScheduleOnlyTraceReplays(t *testing.T) {
	mk := func() capi.Tool { return baseline.NewTsan11(baseline.Options{}) }
	var out string
	prog := mixProg(&out)

	eng := mk().(*core.Engine)
	rec := NewRecorder(eng.Strategy())
	eng.SetStrategy(rec)
	out = ""
	res := eng.Execute(prog, 11)
	tr, err := Record(eng, res, rec.Schedule(), Meta{
		Tool: ToolConfig{Name: "tsan11"}, Program: prog.Name, Seed: 11, Outcome: out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Validatable() {
		t.Fatal("commit-order baseline must produce a schedule-only trace (no total mo)")
	}
	rr, err := Replay(tr, Subject{
		Tool: mk(), Prog: prog,
		Reset:   func() { out = "" },
		Outcome: func() string { return out },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Verify(rr); err != nil {
		t.Fatalf("baseline replay not identical: %v", err)
	}
}

func TestMinimizeConvergesOnRacyExecution(t *testing.T) {
	prog := racyProg()
	var tr *Trace
	for seed := int64(1); seed <= 50; seed++ {
		cand := recordOne(t, prog, seed, nil, nil)
		if len(cand.RaceKeys) > 0 {
			tr = cand
			break
		}
	}
	if tr == nil {
		t.Fatal("no seed in 1..50 exhibited the flag-guarded race")
	}

	min, stats, err := Minimize(tr, Subject{Tool: newEngine(), Prog: prog}, 0)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if stats.ThreadsAfter > stats.ThreadsBefore || stats.IndicesAfter > stats.IndicesBefore {
		t.Errorf("minimization grew the schedule: %+v", stats)
	}
	if !equalStrings(min.RaceKeys, tr.RaceKeys) {
		t.Errorf("minimized race keys %v != original %v", min.RaceKeys, tr.RaceKeys)
	}
	// The minimized trace must itself be an exactly replayable trace.
	rr, err := Replay(min, Subject{Tool: newEngine(), Prog: prog})
	if err != nil {
		t.Fatal(err)
	}
	if err := min.Verify(rr); err != nil {
		t.Fatalf("minimized trace does not replay exactly: %v", err)
	}
	// And it must still validate against the axiomatic model.
	if vs, err := min.Validate(); err != nil || len(vs) > 0 {
		t.Fatalf("minimized trace fails axiomatic validation: %v %v", err, vs)
	}
	t.Logf("minimize: %d→%d thread choices, %d→%d index choices in %d replays",
		stats.ThreadsBefore, stats.ThreadsAfter, stats.IndicesBefore, stats.IndicesAfter, stats.Replays)
}

func TestDDMinFindsOneMinimalSubset(t *testing.T) {
	input := make([]int32, 24)
	for i := range input {
		input[i] = int32(i)
	}
	contains := func(xs []int32, v int32) bool {
		for _, x := range xs {
			if x == v {
				return true
			}
		}
		return false
	}
	got := ddmin(input, func(cand []int32) bool {
		return contains(cand, 5) && contains(cand, 17)
	})
	if len(got) != 2 || !contains(got, 5) || !contains(got, 17) {
		t.Fatalf("ddmin = %v, want [5 17]", got)
	}
}
