package trace

import (
	"c11tester/internal/core"
	"c11tester/internal/memmodel"
	"c11tester/internal/rng"
)

// Default prefix-depth bounds of a PrefixGuide, as fractions of the recorded
// schedule's combined choice count. Guided exploration wants to stay *near*
// the recorded (typically racy) schedule, so the default range skews deep:
// every guided execution replays at least half the recorded choices before
// the live strategy takes over.
const (
	DefaultGuideMinFrac = 0.5
	DefaultGuideMaxFrac = 1.0
)

// PrefixGuide is the trace-guided exploration strategy (core.Strategy, and
// core.PrefixedStrategy): it re-drives a prefix of a recorded Schedule and
// then hands control to a live inner strategy at the divergence point, so a
// campaign concentrates executions in the schedule neighbourhood of known
// (typically racy) executions instead of sampling uniformly.
//
// The prefix depth is drawn per execution from the seed: Seed(s) picks a
// depth uniformly in [MinFrac·L, MaxFrac·L] of the recorded schedule's L
// combined choices using a dedicated RNG derived from s, so a guided cell
// spreads its executions over divergence points while remaining a pure
// function of (schedule, seed) — the campaign determinism invariant. If a
// recorded choice inside the prefix is not takeable in the current execution
// (a thread not ready, an index out of range), the guide hands off early and
// reports the divergence, rather than forcing the Replayer's deterministic
// fallback: past a divergence the recorded suffix no longer describes a
// nearby execution, and live exploration is the better use of the remaining
// steps.
type PrefixGuide struct {
	inner core.Strategy
	sched Schedule
	// MinFrac and MaxFrac bound the per-execution prefix depth as fractions
	// of the schedule's combined choice count. Zero values mean the
	// DefaultGuideMinFrac/DefaultGuideMaxFrac skew-deep range.
	MinFrac, MaxFrac float64

	depthRng rng.Rand
	depth    int // combined choices to replay this execution
	ti, ii   int // consumption cursors into sched
	taken    int // combined choices consumed from the prefix
	handed   bool
	diverged bool
}

// NewPrefixGuide returns a PrefixGuide handing off to inner (nil means the
// default random strategy). Call SetSchedule before each execution (or once,
// to guide every execution along the same trace).
func NewPrefixGuide(inner core.Strategy) *PrefixGuide {
	if inner == nil {
		inner = core.NewRandomStrategy()
	}
	return &PrefixGuide{inner: inner, MinFrac: DefaultGuideMinFrac, MaxFrac: DefaultGuideMaxFrac}
}

// SetSchedule installs the recorded schedule to guide along. It takes effect
// at the next Seed (i.e. the next Engine.Execute).
func (g *PrefixGuide) SetSchedule(s Schedule) { g.sched = s }

// Inner returns the live strategy the guide hands off to.
func (g *PrefixGuide) Inner() core.Strategy { return g.inner }

// Seed implements core.Strategy: seed the inner strategy, rewind the prefix,
// and draw this execution's prefix depth from the seed.
func (g *PrefixGuide) Seed(seed int64) {
	g.inner.Seed(seed)
	g.ti, g.ii, g.taken = 0, 0, 0
	g.handed = false
	g.diverged = false

	lo, hi := g.MinFrac, g.MaxFrac
	if hi <= 0 {
		lo, hi = DefaultGuideMinFrac, DefaultGuideMaxFrac
	}
	n := g.sched.Len()
	min := int(lo * float64(n))
	max := int(hi * float64(n))
	if min < 0 {
		min = 0
	}
	if max > n {
		max = n
	}
	if max < min {
		max = min
	}
	// A distinct RNG (seed XOR'd with an arbitrary odd constant) keeps the
	// depth draw from perturbing the inner strategy's choice stream. It
	// follows the inner strategy's rng source (rng.KindOf), so a -rng legacy
	// guided campaign stays a pure function of (schedule, seed) with exactly
	// the pre-PCG depth sequence.
	g.depthRng.SetKind(rng.KindOf(g.inner))
	g.depthRng.Seed(seed ^ 0x5bf03635)
	g.depth = min
	if max > min {
		g.depth = min + g.depthRng.Intn(max-min+1)
	}
}

// RNGKind implements rng.Kinded, reporting the inner strategy's source.
func (g *PrefixGuide) RNGKind() rng.Kind { return rng.KindOf(g.inner) }

// handoff permanently switches control to the inner strategy.
func (g *PrefixGuide) handoff(diverged bool) {
	g.handed = true
	g.diverged = g.diverged || diverged
}

// inPrefix reports whether the guide is still replaying the recorded prefix.
func (g *PrefixGuide) inPrefix() bool { return !g.handed && g.taken < g.depth }

// PickThread implements core.Strategy.
func (g *PrefixGuide) PickThread(ready []*core.ThreadState) *core.ThreadState {
	if g.inPrefix() && g.ti < len(g.sched.Threads) {
		want := memmodel.TID(g.sched.Threads[g.ti])
		for _, t := range ready {
			if t.ID == want {
				g.ti++
				g.taken++
				return t
			}
		}
		g.handoff(true) // recorded thread not ready: diverge to live exploration
	} else if g.inPrefix() {
		g.handoff(false) // thread stream exhausted inside the depth window
	} else if !g.handed {
		g.handoff(false) // depth reached
	}
	return g.inner.PickThread(ready)
}

// PickIndex implements core.Strategy.
func (g *PrefixGuide) PickIndex(n int) int {
	if g.inPrefix() && g.ii < len(g.sched.Indices) {
		rec := int(g.sched.Indices[g.ii])
		if rec < n {
			g.ii++
			g.taken++
			return rec
		}
		g.handoff(true) // recorded index infeasible here: diverge
	} else if g.inPrefix() {
		g.handoff(false)
	} else if !g.handed {
		g.handoff(false)
	}
	return g.inner.PickIndex(n)
}

// Handoff implements core.PrefixedStrategy: the last execution's intended
// prefix depth, the combined choices actually consumed before handoff, and
// whether the prefix diverged.
func (g *PrefixGuide) Handoff() (depth, consumed int, diverged bool) {
	return g.depth, g.taken, g.diverged
}

var _ core.PrefixedStrategy = (*PrefixGuide)(nil)
