package structures

import (
	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
)

// BuggySeqlock is the Section 8.1 seqlock benchmark: following the paper,
// the writer correctly uses release atomics for the data field stores, and
// the injected bug weakens the counter increments to relaxed RMWs. The
// readers use the standard seqlock protocol — read the counter, read the
// data (relaxed, as the protocol's whole point is to avoid ordering the
// data reads), re-read the counter, and accept the snapshot if the counter
// is even and unchanged.
//
// Under the full C/C++11 fragment, a reader can accept a snapshot whose two
// halves come from different writer sessions: nothing orders the relaxed
// counter reads against the release data stores, so the validation passes
// while the data is torn — the assertion fires. Under the baselines'
// fragment the buggy executions correspond to hb ∪ rf ∪ mo ∪ sc cycles
// (the relaxed chains still transfer clocks), so the torn snapshot is never
// produced — exactly the paper's observation that tsan11 and tsan11rec miss
// these bugs.
//
// The assertion messages are constants: formatting the torn values would
// allocate on every validated read (the variadic argument slice escapes into
// Sprintf even when the assertion holds), and the detection signal only
// needs the message identity.
func BuggySeqlock() Benchmark {
	const sessions = 6
	const attempts = 10
	return Benchmark{
		Name: "seqlock",
		Doc:  "seqlock with relaxed counter increments; detection = torn snapshot assertion",
		New: func() capi.Program {
			var seq, dataA, dataB capi.Loc
			writerBody := func(env capi.Env) {
				for s := 1; s <= sessions; s++ {
					env.FetchAdd(seq, 1, rlx) // bug: must be release/acquire
					env.Store(dataA, memmodel.Value(s), rel)
					env.Store(dataB, memmodel.Value(s), rel)
					env.FetchAdd(seq, 1, rlx) // bug: must be release
				}
			}
			reader := func(env capi.Env) {
				for i := 0; i < attempts; i++ {
					c1 := env.Load(seq, acq)
					if c1%2 != 0 {
						env.Yield()
						continue
					}
					a := env.Load(dataA, rlx)
					b := env.Load(dataB, rlx)
					c2 := env.Load(seq, rlx)
					if c1 == c2 {
						env.Assert(a == b, "torn seqlock read: dataA != dataB under an unchanged even seq")
					}
				}
			}
			return capi.Program{Name: "seqlock", Run: func(env capi.Env) {
				seq = env.NewAtomic("seqlock.seq", 0)
				dataA = env.NewAtomic("seqlock.dataA", 0)
				dataB = env.NewAtomic("seqlock.dataB", 0)
				writer := env.Spawn("writer", writerBody)
				r2 := env.Spawn("reader2", reader)
				reader(env)
				env.Join(writer)
				env.Join(r2)
			}}
		},
	}
}

// BuggyRWLock is the Section 8.1 reader-writer lock benchmark: the
// write-lock operation incorrectly uses relaxed atomics. The test uses the
// read lock to protect reads from atomic variables and the write lock to
// protect writes to them, as in the paper. With the write-side ordering
// gone, a reader holding the read lock can observe the two protected
// fields from different writer critical sections; the invariant assertion
// fires. The baselines' stronger fragment cannot produce the behaviour.
func BuggyRWLock() Benchmark {
	const bias = 0x1000
	const rounds = 6
	return Benchmark{
		Name: "rwlock",
		Doc:  "reader-writer lock with relaxed write-lock ops; detection = invariant assertion",
		New: func() capi.Program {
			var lock, fieldA, fieldB capi.Loc
			readLock := func(env capi.Env) bool {
				return spinUntil(env, 200, func() bool {
					if env.FetchAdd(lock, ^memmodel.Value(0), acq) > 0 {
						return true
					}
					env.FetchAdd(lock, 1, rlx)
					return false
				})
			}
			readUnlock := func(env capi.Env) { env.FetchAdd(lock, 1, rel) }
			writeLock := func(env capi.Env) bool {
				return spinUntil(env, 200, func() bool {
					_, ok := env.CompareExchange(lock, bias, 0, rlx, rlx) // bug: must be acquire
					return ok
				})
			}
			writeUnlock := func(env capi.Env) { env.Store(lock, bias, rlx) } // bug: must be release
			writerBody := func(env capi.Env) {
				for s := 1; s <= rounds; s++ {
					if !writeLock(env) {
						return
					}
					env.Store(fieldA, memmodel.Value(s), rlx)
					env.Store(fieldB, memmodel.Value(s), rlx)
					writeUnlock(env)
				}
			}
			reader := func(env capi.Env) {
				for i := 0; i < rounds; i++ {
					if !readLock(env) {
						return
					}
					a := env.Load(fieldA, rlx)
					b := env.Load(fieldB, rlx)
					env.Assert(a == b, "rwlock invariant broken: fieldA != fieldB under the read lock")
					readUnlock(env)
				}
			}
			return capi.Program{Name: "rwlock", Run: func(env capi.Env) {
				lock = env.NewAtomic("rwlock.lock", bias)
				fieldA = env.NewAtomic("rwlock.fieldA", 0)
				fieldB = env.NewAtomic("rwlock.fieldB", 0)
				writer := env.Spawn("writer", writerBody)
				r2 := env.Spawn("reader2", reader)
				reader(env)
				env.Join(writer)
				env.Join(r2)
			}}
		},
	}
}
