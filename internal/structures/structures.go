// Package structures contains the concurrent data-structure benchmarks of
// the paper's evaluation: the seven CDSChecker benchmarks used in Table 2
// (barrier, chase-lev-deque, dekker-fences, linuxrwlocks, mcs-lock,
// mpmc-queue, ms-queue) and the two injected-bug benchmarks of Section 8.1
// (seqlock and reader-writer lock).
//
// Each data-structure benchmark carries the seeded data race of the
// original suite. The races fall into two classes, which is what produces
// the cross-tool detection-rate differences of Table 2:
//
//   - weak-memory races: an access pair whose happens-before edge was
//     removed by weakening an ordering to relaxed; reaching them requires
//     precise relaxed-atomic semantics and a wide reads-from choice, so the
//     baselines (conservative clocks, commit-order mo) rarely or never see
//     them;
//
//   - overlap races: accesses with no synchronization chain at all, whose
//     detection only requires the scheduler to interleave the right
//     operations; controlled schedulers find them often, the uncontrolled
//     quantum scheduler rarely.
//
// The injected-bug benchmarks manifest as assertion violations (torn
// seqlock snapshots, reader-writer lock inconsistency) rather than data
// races, exactly as in the paper.
//
// Benchmark.New builds a program *instance*: location handles, thread
// bodies, and scratch registers are instance state rebound at the start of
// every Run, location names are formatted once at package init, and thread
// bodies are closures built once at New time — so steady-state executions
// of an instance allocate nothing (the zero-alloc invariant the fiber-pool
// perf matrix gates on). An instance runs one execution at a time;
// concurrent campaign cells each construct their own.
package structures

import (
	"fmt"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
)

const (
	rlx = memmodel.Relaxed
	acq = memmodel.Acquire
	rel = memmodel.Release
	arl = memmodel.AcqRel
	sc  = memmodel.SeqCst
)

// locNames formats a deterministic indexed name set once, so program
// executions never Sprintf location names on the hot path.
func locNames(prefix string, n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return names
}

var (
	barrierSlotNames = locNames("barrier.slot", 3)
	dequeBufNames    = locNames("deque.buf", 8)
	mcsFlagNames     = locNames("mcs.flag", 3)
	mcsNextNames     = locNames("mcs.next", 3)
	mpmcReadyNames   = locNames("mpmc.ready", 4)
	mpmcSlotNames    = locNames("mpmc.slot", 4)
	msqValNames      = locNames("msq.val", 16)
	msqNextNames     = locNames("msq.next", 16)
	wNames           = locNames("w", 3) // spawn names "w1", "w2"
	tNames           = locNames("t", 3) // spawn names "t1", "t2"
)

// Benchmark is one named program under test.
type Benchmark struct {
	Name string
	Doc  string
	// New builds a fresh program instance (see the package comment for the
	// instance lifetime and reuse rules).
	New func() capi.Program
}

// DataStructures returns the Table 2 benchmark set.
func DataStructures() []Benchmark {
	return []Benchmark{
		Barrier(),
		ChaseLevDeque(),
		DekkerFences(),
		LinuxRWLocks(),
		MCSLock(),
		MPMCQueue(),
		MSQueue(),
	}
}

// InjectedBugs returns the Section 8.1 benchmark set.
func InjectedBugs() []Benchmark {
	return []Benchmark{BuggySeqlock(), BuggyRWLock()}
}

// Extras returns workloads outside the paper's evaluation matrix, seeded for
// the analyzer pipeline rather than for race detection. They are selectable
// by name (`-bench atomic-counter`) and listed by Names, but excluded from
// All, so `-bench all` campaigns reproduce the paper's matrix unchanged.
func Extras() []Benchmark {
	return []Benchmark{AtomicCounter()}
}

// All returns every paper benchmark: the Table 2 data structures followed by
// the Section 8.1 injected-bug benchmarks. Extras are not included.
func All() []Benchmark {
	return append(DataStructures(), InjectedBugs()...)
}

// Names returns the names of all selectable benchmarks: the paper matrix
// (data structures first) followed by the extras.
func Names() []string {
	all := append(All(), Extras()...)
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// IsInjected reports whether the named benchmark is one of the injected-bug
// benchmarks, whose detection signal is an assertion violation rather than a
// data race.
func IsInjected(name string) bool {
	for _, b := range InjectedBugs() {
		if b.Name == name {
			return true
		}
	}
	return false
}

// spinUntil repeatedly evaluates cond with scheduling yields, giving up
// after limit attempts; it reports whether cond became true. Bounded spins
// keep benchmark executions finite under every scheduler.
func spinUntil(env capi.Env, limit int, cond func() bool) bool {
	for i := 0; i < limit; i++ {
		if cond() {
			return true
		}
		env.Yield()
	}
	return false
}

// Barrier is a sense-reversing spinning barrier for three threads with the
// seeded bug of the original suite: the arriving threads synchronize on the
// sense flag with relaxed ordering (release/acquire was required), so the
// pre-barrier writes of other threads are not ordered before the
// post-barrier reads — a weak-memory race.
func Barrier() Benchmark {
	const n = 3
	return Benchmark{
		Name: "barrier",
		Doc:  "sense-reversing spinning barrier; relaxed sense flag (weak-memory race)",
		New: func() capi.Program {
			var count, sense capi.Loc
			var slots [n]capi.Loc
			var workers [n]func(capi.Env)
			for i := range workers {
				id := i
				workers[id] = func(env capi.Env) {
					env.Write(slots[id], memmodel.Value(id+1))
					if env.FetchAdd(count, 1, arl) == n-1 {
						env.Store(count, 0, rlx)
						env.Store(sense, 1, rlx) // bug: must be release
					} else if !spinUntil(env, 400, func() bool {
						return env.Load(sense, rlx) == 1 // bug: must be acquire
					}) {
						return
					}
					env.Read(slots[(id+1)%n])
				}
			}
			var threads [n - 1]capi.Thread
			return capi.Program{Name: "barrier", Run: func(env capi.Env) {
				count = env.NewAtomic("barrier.count", 0)
				sense = env.NewAtomic("barrier.sense", 0)
				for i := range slots {
					slots[i] = env.NewLoc(barrierSlotNames[i], 0)
				}
				for i := 1; i < n; i++ {
					threads[i-1] = env.Spawn(wNames[i], workers[i])
				}
				workers[0](env)
				for _, th := range threads {
					env.Join(th)
				}
			}}
		},
	}
}

// ChaseLevDeque is a work-stealing deque with one owner and one thief. The
// seeded bug removes the release ordering on the owner's bottom updates, so
// a thief can observe a bottom value without the matching buffer write — a
// weak-memory race on the buffer slot, the race only C11Tester detected in
// the paper's Table 2.
func ChaseLevDeque() Benchmark {
	const capacity = 8
	return Benchmark{
		Name: "chase-lev-deque",
		Doc:  "work-stealing deque; relaxed bottom publication (weak-memory race)",
		New: func() capi.Program {
			var top, bottom capi.Loc
			var buf [capacity]capi.Loc
			push := func(env capi.Env, v memmodel.Value) {
				b := env.Load(bottom, rlx)
				env.Write(buf[b%capacity], v)
				env.Store(bottom, b+1, rlx) // bug: must be release
			}
			takeOwner := func(env capi.Env) {
				b := env.Load(bottom, rlx)
				if b == 0 {
					return
				}
				b--
				env.Store(bottom, b, rlx)
				env.Fence(sc)
				tp := env.Load(top, rlx)
				if tp <= b {
					env.Read(buf[b%capacity])
					if tp == b {
						env.CompareExchange(top, tp, tp+1, sc, rlx)
						env.Store(bottom, b+1, rlx)
					}
				} else {
					env.Store(bottom, b+1, rlx)
				}
			}
			steal := func(env capi.Env) {
				tp := env.Load(top, acq)
				env.Fence(sc)
				b := env.Load(bottom, acq)
				if tp < b {
					v := env.Read(buf[tp%capacity]) // races with push's write
					if _, ok := env.CompareExchange(top, tp, tp+1, sc, rlx); ok {
						_ = v
					}
				}
			}
			thiefBody := func(env capi.Env) {
				for i := 0; i < 6; i++ {
					steal(env)
				}
			}
			return capi.Program{Name: "chase-lev-deque", Run: func(env capi.Env) {
				top = env.NewAtomic("deque.top", 0)
				bottom = env.NewAtomic("deque.bottom", 0)
				for i := range buf {
					buf[i] = env.NewLoc(dequeBufNames[i], 0)
				}
				thief := env.Spawn("thief", thiefBody)
				for i := 1; i <= 6; i++ {
					push(env, memmodel.Value(i))
					if i%3 == 0 {
						takeOwner(env)
					}
				}
				env.Join(thief)
			}}
		},
	}
}

// DekkerFences is Dekker's mutual exclusion with seq_cst fences. The seeded
// bug weakens the second thread's fence to acq_rel, so both threads can
// enter the critical section when their flag loads read the stale initial
// value — the shared variable access in the critical section races.
func DekkerFences() Benchmark {
	return Benchmark{
		Name: "dekker-fences",
		Doc:  "Dekker mutual exclusion; one fence weakened to acq_rel (both-enter race)",
		New: func() capi.Program {
			var flag0, flag1, data capi.Loc
			enter := func(env capi.Env, mine, theirs capi.Loc, fence memmodel.MemoryOrder) bool {
				env.Store(mine, 1, rlx)
				env.Fence(fence)
				if env.Load(theirs, rlx) != 0 {
					env.Store(mine, 0, rlx)
					return false
				}
				return true
			}
			critical := func(env capi.Env) {
				env.Write(data, env.Read(data)+1)
			}
			t1Body := func(env capi.Env) {
				for i := 0; i < 4; i++ {
					if enter(env, flag1, flag0, arl) { // bug: must be seq_cst
						critical(env)
						env.Store(flag1, 0, rel)
					}
				}
			}
			return capi.Program{Name: "dekker-fences", Run: func(env capi.Env) {
				flag0 = env.NewAtomic("dekker.flag0", 0)
				flag1 = env.NewAtomic("dekker.flag1", 0)
				data = env.NewLoc("dekker.data", 0)
				t1 := env.Spawn("t1", t1Body)
				for i := 0; i < 4; i++ {
					if enter(env, flag0, flag1, sc) {
						critical(env)
						env.Store(flag0, 0, rel)
					}
				}
				env.Join(t1)
			}}
		},
	}
}

// LinuxRWLocks is the Linux-kernel-style reader-writer lock benchmark. The
// seeded bugs: the write unlock is relaxed (weak-memory race on the
// protected data) and the readers keep an unprotected shared statistic
// (overlap race between concurrent readers, which legitimately hold the
// lock together).
func LinuxRWLocks() Benchmark {
	const bias = 0x1000
	return Benchmark{
		Name: "linuxrwlocks",
		Doc:  "reader-writer lock; relaxed write unlock + unprotected reader statistic",
		New: func() capi.Program {
			var lock, data, stat capi.Loc
			readLock := func(env capi.Env) bool {
				return spinUntil(env, 200, func() bool {
					if env.FetchAdd(lock, ^memmodel.Value(0), acq) > 0 { // -1
						return true
					}
					env.FetchAdd(lock, 1, rlx)
					return false
				})
			}
			readUnlock := func(env capi.Env) { env.FetchAdd(lock, 1, rel) }
			writeLock := func(env capi.Env) bool {
				return spinUntil(env, 200, func() bool {
					_, ok := env.CompareExchange(lock, bias, 0, acq, rlx)
					return ok
				})
			}
			writeUnlock := func(env capi.Env) { env.Store(lock, bias, rlx) } // bug: must be release
			reader := func(env capi.Env) {
				for i := 0; i < 3; i++ {
					if !readLock(env) {
						return
					}
					env.Read(data)
					env.Write(stat, env.Read(stat)+1) // overlap race: readers share the lock
					readUnlock(env)
				}
			}
			return capi.Program{Name: "linuxrwlocks", Run: func(env capi.Env) {
				lock = env.NewAtomic("rwlock.counter", bias)
				data = env.NewLoc("rwlock.data", 0)
				stat = env.NewLoc("rwlock.stat", 0)
				r1 := env.Spawn("r1", reader)
				r2 := env.Spawn("r2", reader)
				for i := 1; i <= 3; i++ {
					if writeLock(env) {
						env.Write(data, memmodel.Value(i))
						writeUnlock(env)
					}
				}
				env.Join(r1)
				env.Join(r2)
			}}
		},
	}
}

// MCSLock is an MCS queue lock. Seeded bugs: the unlock handoff store is
// relaxed (weak-memory race on the protected counter) and contenders stamp
// an unprotected "last contender" variable before queueing (overlap race).
func MCSLock() Benchmark {
	const n = 3
	return Benchmark{
		Name: "mcs-lock",
		Doc:  "MCS queue lock; relaxed handoff + unprotected contender stamp",
		New: func() capi.Program {
			// Node i state: flag[i] spins until the predecessor hands off.
			var tail, counter, stamp capi.Loc // tail: 0 = empty, else owner id+1
			var flags, next [n]capi.Loc
			acquire := func(env capi.Env, id int) bool {
				env.Write(stamp, memmodel.Value(id+1)) // overlap race among contenders
				env.Store(next[id], 0, rlx)
				env.Store(flags[id], 0, rlx)
				pred := env.Exchange(tail, memmodel.Value(id+1), arl)
				if pred == 0 {
					return true
				}
				env.Store(next[pred-1], memmodel.Value(id+1), rel)
				return spinUntil(env, 300, func() bool {
					return env.Load(flags[id], acq) == 1
				})
			}
			release := func(env capi.Env, id int) {
				if _, ok := env.CompareExchange(tail, memmodel.Value(id+1), 0, arl, rlx); ok {
					return
				}
				if !spinUntil(env, 300, func() bool { return env.Load(next[id], acq) != 0 }) {
					return
				}
				succ := env.Load(next[id], acq)
				env.Store(flags[succ-1], 1, rlx) // bug: must be release
			}
			var workers [n]func(capi.Env)
			for i := range workers {
				id := i
				workers[id] = func(env capi.Env) {
					for i := 0; i < 2; i++ {
						if !acquire(env, id) {
							return
						}
						env.Write(counter, env.Read(counter)+1)
						release(env, id)
					}
				}
			}
			var threads [n - 1]capi.Thread
			return capi.Program{Name: "mcs-lock", Run: func(env capi.Env) {
				tail = env.NewAtomic("mcs.tail", 0)
				for i := 0; i < n; i++ {
					flags[i] = env.NewAtomic(mcsFlagNames[i], 0)
					next[i] = env.NewAtomic(mcsNextNames[i], 0)
				}
				counter = env.NewLoc("mcs.counter", 0)
				stamp = env.NewLoc("mcs.stamp", 0)
				for i := 1; i < n; i++ {
					threads[i-1] = env.Spawn(tNames[i], workers[i])
				}
				workers[0](env)
				for _, th := range threads {
					env.Join(th)
				}
			}}
		},
	}
}

// MPMCQueue is a bounded multi-producer multi-consumer ring. Seeded bugs:
// the per-slot ready flag is relaxed (weak-memory race between the
// producer's slot write and the consumer's slot read) and consumers share
// an unprotected dequeue counter (overlap race).
func MPMCQueue() Benchmark {
	const capacity = 4
	return Benchmark{
		Name: "mpmc-queue",
		Doc:  "bounded MPMC ring; relaxed ready flags + unprotected dequeue count",
		New: func() capi.Program {
			var head, tailLoc, deqCount capi.Loc
			var ready, slots [capacity]capi.Loc
			produce := func(env capi.Env, v memmodel.Value) {
				t := env.FetchAdd(tailLoc, 1, arl)
				idx := t % capacity
				env.Write(slots[idx], v)
				env.Store(ready[idx], 1, rlx) // bug: must be release
			}
			consume := func(env capi.Env) {
				h := env.FetchAdd(head, 1, arl)
				idx := h % capacity
				if !spinUntil(env, 200, func() bool {
					return env.Load(ready[idx], rlx) == 1 // bug: must be acquire
				}) {
					return
				}
				env.Read(slots[idx])
				env.Store(ready[idx], 0, rlx)
				env.Write(deqCount, env.Read(deqCount)+1) // overlap race: consumers
			}
			p2Body := func(env capi.Env) {
				for i := 0; i < 3; i++ {
					produce(env, memmodel.Value(100+i))
				}
			}
			consumerBody := func(env capi.Env) {
				for i := 0; i < 3; i++ {
					consume(env)
				}
			}
			return capi.Program{Name: "mpmc-queue", Run: func(env capi.Env) {
				head = env.NewAtomic("mpmc.head", 0)
				tailLoc = env.NewAtomic("mpmc.tail", 0)
				for i := 0; i < capacity; i++ {
					ready[i] = env.NewAtomic(mpmcReadyNames[i], 0)
					slots[i] = env.NewLoc(mpmcSlotNames[i], 0)
				}
				deqCount = env.NewLoc("mpmc.dequeued", 0)
				p2 := env.Spawn("p2", p2Body)
				c1 := env.Spawn("c1", consumerBody)
				c2 := env.Spawn("c2", consumerBody)
				for i := 0; i < 3; i++ {
					produce(env, memmodel.Value(i))
				}
				env.Join(p2)
				env.Join(c1)
				env.Join(c2)
			}}
		},
	}
}

// MSQueue is a Michael-Scott queue (array-backed node pool). Its seeded
// race is unconditional: enqueuers maintain a shared non-atomic length
// counter with no synchronization at all, so every tool detects it in every
// execution — the 100%/100%/100% row of Table 2.
func MSQueue() Benchmark {
	const pool = 16
	return Benchmark{
		Name: "ms-queue",
		Doc:  "Michael-Scott queue; unconditional race on a shared length counter",
		New: func() capi.Program {
			// nodes[i]: value slot + next pointer (0 = nil, else index+1).
			var values, nexts [pool]capi.Loc
			var alloc, headPtr, tailPtr, length capi.Loc
			enqueue := func(env capi.Env, v memmodel.Value) {
				n := env.FetchAdd(alloc, 1, rlx)
				if int(n) >= pool {
					return
				}
				env.Write(values[n], v)
				env.Store(nexts[n], 0, rlx)
				for i := 0; i < 100; i++ {
					t := env.Load(tailPtr, acq)
					nx := env.Load(nexts[t-1], acq)
					if nx == 0 {
						if _, ok := env.CompareExchange(nexts[t-1], 0, n+1, rel, rlx); ok {
							env.CompareExchange(tailPtr, t, n+1, rel, rlx)
							break
						}
					} else {
						env.CompareExchange(tailPtr, t, nx, rel, rlx)
					}
					env.Yield()
				}
				env.Write(length, env.Read(length)+1) // unconditional race
			}
			dequeue := func(env capi.Env) {
				for i := 0; i < 100; i++ {
					h := env.Load(headPtr, acq)
					t := env.Load(tailPtr, acq)
					nx := env.Load(nexts[h-1], acq)
					if h == t {
						if nx == 0 {
							return
						}
						env.CompareExchange(tailPtr, t, nx, rel, rlx)
					} else if nx != 0 {
						env.Read(values[nx-1])
						if _, ok := env.CompareExchange(headPtr, h, nx, rel, rlx); ok {
							return
						}
					}
					env.Yield()
				}
			}
			e2Body := func(env capi.Env) {
				for i := 0; i < 3; i++ {
					enqueue(env, memmodel.Value(100+i))
				}
			}
			d1Body := func(env capi.Env) {
				for i := 0; i < 3; i++ {
					dequeue(env)
				}
			}
			return capi.Program{Name: "ms-queue", Run: func(env capi.Env) {
				for i := 0; i < pool; i++ {
					values[i] = env.NewLoc(msqValNames[i], 0)
					nexts[i] = env.NewAtomic(msqNextNames[i], 0)
				}
				alloc = env.NewAtomic("msq.alloc", 1) // node 0 is the dummy
				headPtr = env.NewAtomic("msq.head", 1)
				tailPtr = env.NewAtomic("msq.tail", 1)
				length = env.NewLoc("msq.len", 0)
				e2 := env.Spawn("enq2", e2Body)
				d1 := env.Spawn("deq1", d1Body)
				for i := 0; i < 3; i++ {
					enqueue(env, memmodel.Value(i))
				}
				env.Join(e2)
				env.Join(d1)
			}}
		},
	}
}

// AtomicCounter is the seeded workload for the atomicity analyzer: a shared
// counter incremented by two threads, each increment a marked atomic block
// (BeginAtomic/EndAtomic) containing an acquire load and a release store of
// the new value. Every access is atomic, so the program is race-free and no
// race detector flags it — but the load/store pair is not an atomic RMW, so
// interleaved blocks lose updates: a classic atomicity violation only
// conflict-serializability monitoring observes.
func AtomicCounter() Benchmark {
	return Benchmark{
		Name: "atomic-counter",
		Doc:  "lost-update counter; non-RMW increments in marked atomic blocks (race-free atomicity violation)",
		New: func() capi.Program {
			var counter capi.Loc
			body := func(env capi.Env) {
				for i := 0; i < 2; i++ {
					env.BeginAtomic("counter.increment")
					v := env.Load(counter, acq)
					env.Yield() // widen the window between load and store
					env.Store(counter, v+1, rel)
					env.EndAtomic()
				}
			}
			return capi.Program{Name: "atomic-counter", Run: func(env capi.Env) {
				counter = env.NewAtomic("counter.value", 0)
				t1 := env.Spawn("t1", body)
				body(env)
				env.Join(t1)
			}}
		},
	}
}

// ByName returns a named benchmark from any set, including the extras.
func ByName(name string) (Benchmark, error) {
	for _, b := range DataStructures() {
		if b.Name == name {
			return b, nil
		}
	}
	for _, b := range InjectedBugs() {
		if b.Name == name {
			return b, nil
		}
	}
	for _, b := range Extras() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("structures: unknown benchmark %q", name)
}
