package structures

import (
	"fmt"
	"testing"

	"c11tester/internal/baseline"
	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/harness"
)

func TestShapeProbe(t *testing.T) {
	mk := map[string]func() capi.Tool{
		"c11tester": func() capi.Tool { return core.New("c11tester", core.NewC11Model(), core.Config{StoreBurst: true}) },
		"tsan11":    func() capi.Tool { return baseline.NewTsan11(baseline.Options{}) },
		"tsan11rec": func() capi.Tool { return baseline.NewTsan11rec(baseline.Options{FastHandoff: true}) },
	}
	for _, b := range DataStructures() {
		line := b.Name + ": "
		for _, name := range []string{"c11tester", "tsan11rec", "tsan11"} {
			d := harness.MeasureDetection(mk[name](), b.New(), 200, 0, harness.SignalRace)
			line += fmt.Sprintf("%s=%.1f%% ", name, d.Rate())
		}
		t.Log(line)
	}
	for _, b := range InjectedBugs() {
		line := b.Name + ": "
		for _, name := range []string{"c11tester", "tsan11rec", "tsan11"} {
			d := harness.MeasureDetection(mk[name](), b.New(), 300, 0, harness.SignalAssert)
			line += fmt.Sprintf("%s=%.1f%% ", name, d.Rate())
		}
		t.Log(line)
	}
}
