// forensics.go is obs layer 2: the anomaly-triggered flight recorder and the
// capture manifest. The metrics/event fabric (layer 1) answers "is the
// campaign healthy"; the flight recorder answers "which executions mattered"
// by watching a bounded ring of per-execution digests and nominating
// anomalous seed indices for full trace capture.
//
// Determinism contract: a FlightRecorder belongs to one unit of work (one
// cell runner in campaign terms), not to an OS worker. Units are pure
// functions of the campaign spec, digests are pushed in seed-index order
// within a unit, and every default trigger is a pure function of the digest
// stream — so the set of captured (tool, program, seed) triples is identical
// for workers=1 and workers=K. The one wall-clock trigger (SlowNS) is
// explicitly opt-in and documented as non-deterministic.
package obs

import (
	"fmt"
	"sort"

	"c11tester/internal/safeio"
)

// Trigger identifies why the flight recorder nominated an execution for
// capture.
type Trigger uint8

const (
	// TriggerNone: no anomaly; the digest was only archived in the ring.
	TriggerNone Trigger = iota
	// TriggerNewRace: the execution reported a race key not seen before by
	// this tool instance (Result.NewRaces non-empty).
	TriggerNewRace
	// TriggerInfeasible: the engine aborted with a core.InfeasibleError.
	TriggerInfeasible
	// TriggerForbidden: a litmus execution produced an outcome the test
	// forbids.
	TriggerForbidden
	// TriggerSlowSteps: the execution's schedule length strictly exceeded the
	// trailing p99 of the digest ring. Deterministic (steps are a pure
	// function of the seed), so it is the default slow-execution trigger.
	TriggerSlowSteps
	// TriggerSlowNS: the execution's wall time strictly exceeded the trailing
	// p99 of the digest ring. Wall time is not a pure function of the seed,
	// so this trigger breaks the workers=1 ≡ workers=K capture-set identity;
	// it is off by default and must be armed explicitly
	// (FlightRecorderConfig.SlowNS).
	TriggerSlowNS
)

var triggerNames = [...]string{"", "new_race", "infeasible", "forbidden", "slow_steps", "slow_ns"}

// String returns the stable trigger name used in manifests and events; empty
// for TriggerNone.
func (t Trigger) String() string {
	if int(t) < len(triggerNames) {
		return triggerNames[t]
	}
	return "unknown"
}

// ExecDigest is the fixed-size per-execution record the flight recorder
// archives and evaluates. Building and checking one allocates nothing.
type ExecDigest struct {
	// Index is the global execution index (seed = SeedBase + Index).
	Index int
	// NS is the execution's wall time (only consulted by the opt-in SlowNS
	// trigger).
	NS int64
	// Steps is the schedule length; Choices the strategy-decision count.
	Steps   uint64
	Choices uint64
	// NewRace marks an execution that reported a first-seen race key.
	NewRace bool
	// Infeasible marks an execution aborted by core.InfeasibleError.
	Infeasible bool
	// Forbidden marks a litmus execution with a forbidden outcome.
	Forbidden bool
}

// FlightRecorderConfig bounds a recorder. The zero value gets defaults.
type FlightRecorderConfig struct {
	// Ring is the digest ring size (default 64, capped at 99 — see
	// trailingP99). Slow triggers arm only once the ring is full.
	Ring int
	// MaxSlow caps slow-trigger captures per recorder (default 2): slow
	// executions cluster, and one unit of work should not flood the capture
	// directory with near-duplicates.
	MaxSlow int
	// MaxCaptures caps total captures per recorder (default 16), applied in
	// digest order, so even a pathological unit (every execution infeasible)
	// produces a bounded capture set. Deterministic: the cap cuts the same
	// prefix regardless of worker count.
	MaxCaptures int
	// SlowNS additionally arms the wall-clock slow trigger (see
	// TriggerSlowNS). Non-deterministic; off by default.
	SlowNS bool
}

func (c FlightRecorderConfig) withDefaults() FlightRecorderConfig {
	if c.Ring <= 0 {
		c.Ring = 64
	}
	// ceil(0.99·n) == n for all n ≤ 99, so capping the ring here is what
	// licenses trailingP99's max-scan implementation.
	if c.Ring > 99 {
		c.Ring = 99
	}
	if c.MaxSlow <= 0 {
		c.MaxSlow = 2
	}
	if c.MaxCaptures <= 0 {
		c.MaxCaptures = 16
	}
	return c
}

// FlightRecorder watches a unit of work's execution digests and decides
// which seed indices deserve a full trace capture. All state is pre-allocated
// at construction; Check is allocation-free on every path.
type FlightRecorder struct {
	cfg      FlightRecorderConfig
	ring     []ExecDigest
	n        int // digests ever pushed
	next     int // ring write cursor
	slow     int // slow-trigger captures granted
	captures int // total captures granted
}

// NewFlightRecorder returns an armed recorder.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	return &FlightRecorder{cfg: cfg, ring: make([]ExecDigest, cfg.Ring)}
}

// Check evaluates the trigger set against d, then archives d in the ring, and
// returns the trigger that fired (TriggerNone otherwise). The current digest
// is evaluated against the ring *before* being pushed, so an execution is
// never compared with itself. Trigger priority when several conditions hold:
// infeasible > forbidden > new race > slow.
func (f *FlightRecorder) Check(d ExecDigest) Trigger {
	trig := TriggerNone
	switch {
	case d.Infeasible:
		trig = TriggerInfeasible
	case d.Forbidden:
		trig = TriggerForbidden
	case d.NewRace:
		trig = TriggerNewRace
	default:
		if f.n >= len(f.ring) {
			if f.cfg.SlowNS && d.NS > f.trailingP99NS() {
				trig = TriggerSlowNS
			} else if d.Steps > f.trailingP99Steps() {
				trig = TriggerSlowSteps
			}
			if trig != TriggerNone && f.slow >= f.cfg.MaxSlow {
				trig = TriggerNone
			}
		}
	}
	if trig != TriggerNone && f.captures >= f.cfg.MaxCaptures {
		trig = TriggerNone
	}
	if trig != TriggerNone {
		f.captures++
		if trig == TriggerSlowSteps || trig == TriggerSlowNS {
			f.slow++
		}
	}
	f.ring[f.next] = d
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
	}
	f.n++
	return trig
}

// trailingP99Steps returns the trailing p99 of schedule length over the ring.
// The ring holds at most 99 digests and ceil(0.99·n) == n for every n ≤ 99,
// so the p99 order statistic is exactly the ring maximum — a single
// allocation-free scan, no sorting.
func (f *FlightRecorder) trailingP99Steps() uint64 {
	var max uint64
	for i := range f.ring {
		if f.ring[i].Steps > max {
			max = f.ring[i].Steps
		}
	}
	return max
}

// trailingP99NS is trailingP99Steps over wall time (SlowNS trigger only).
func (f *FlightRecorder) trailingP99NS() int64 {
	var max int64
	for i := range f.ring {
		if f.ring[i].NS > max {
			max = f.ring[i].NS
		}
	}
	return max
}

// Checked returns the number of digests pushed; Captures the number of
// triggers granted.
func (f *FlightRecorder) Checked() int  { return f.n }
func (f *FlightRecorder) Captures() int { return f.captures }

// CaptureRecord is one manifest entry: the identity and repro of a captured
// execution. Wall time is deliberately absent — the manifest is part of the
// workers=1 ≡ workers=K byte-identity contract.
type CaptureRecord struct {
	Tool    string `json:"tool"`
	Program string `json:"program"`
	Litmus  bool   `json:"litmus,omitempty"`
	Seed    int64  `json:"seed"`
	// Index is the global execution index within the cell (Seed = SeedBase +
	// Index).
	Index   int    `json:"index"`
	Trigger string `json:"trigger"`
	// RaceKeys are the distinct race keys of the captured execution (not
	// just first-seen ones), sorted.
	RaceKeys []string `json:"race_keys,omitempty"`
	// Outcome is the litmus outcome string, when the cell is a litmus test.
	Outcome string `json:"outcome,omitempty"`
	Steps   uint64 `json:"steps,omitempty"`
	Choices uint64 `json:"choices,omitempty"`
	// File is the portable trace's file name within the capture directory;
	// empty when the capture re-run could not produce a trace (see Err).
	File string `json:"file,omitempty"`
	// Repro is the one-command reproduction line.
	Repro string `json:"repro,omitempty"`
	// Err records why no trace was written (e.g. the re-run itself was
	// infeasible, or the tool cannot serialize traces).
	Err string `json:"error,omitempty"`
}

// Manifest schema identity, versioned like the campaign summary and trace
// formats.
const (
	ManifestSchemaName    = "c11tester/captures"
	ManifestSchemaVersion = 1
	// ManifestFileName is the manifest's file name inside a capture
	// directory.
	ManifestFileName = "manifest.json"
)

// Manifest is the capture directory's index: every capture the campaign's
// flight recorders granted, in canonical order.
type Manifest struct {
	Schema        string          `json:"schema"`
	SchemaVersion int             `json:"schema_version"`
	Captures      []CaptureRecord `json:"captures"`
}

// NewManifest returns an empty manifest with the schema header set.
func NewManifest() *Manifest {
	return &Manifest{Schema: ManifestSchemaName, SchemaVersion: ManifestSchemaVersion}
}

// Sort puts the captures in canonical order — (tool, litmus, program, seed) —
// so manifests merged from any sharding are byte-identical.
func (m *Manifest) Sort() {
	sort.Slice(m.Captures, func(i, j int) bool {
		a, b := &m.Captures[i], &m.Captures[j]
		if a.Tool != b.Tool {
			return a.Tool < b.Tool
		}
		if a.Litmus != b.Litmus {
			return !a.Litmus
		}
		if a.Program != b.Program {
			return a.Program < b.Program
		}
		return a.Seed < b.Seed
	})
}

// WriteFile writes the manifest as indented JSON, sorted canonically. The
// write is atomic (temp + rename) so a crash mid-campaign never leaves a torn
// manifest next to valid captures.
func (m *Manifest) WriteFile(path string) error {
	m.Sort()
	return safeio.WriteJSONAtomic(path, m, 0o644)
}

// ReadManifest loads a capture manifest. Truncated or corrupt files come back
// as a *safeio.DecodeError naming the byte offset.
func ReadManifest(path string) (*Manifest, error) {
	var m Manifest
	if err := safeio.DecodeJSONFile(path, &m); err != nil {
		return nil, err
	}
	if m.Schema != ManifestSchemaName {
		return nil, fmt.Errorf("obs: %s: schema %q, want %q", path, m.Schema, ManifestSchemaName)
	}
	if m.SchemaVersion < 1 || m.SchemaVersion > ManifestSchemaVersion {
		return nil, fmt.Errorf("obs: %s: unsupported schema version %d", path, m.SchemaVersion)
	}
	return &m, nil
}
