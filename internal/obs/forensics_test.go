package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fillRing pushes n uneventful digests with the given step count so the slow
// triggers arm.
func fillRing(f *FlightRecorder, n int, steps uint64) {
	for i := 0; i < n; i++ {
		if trig := f.Check(ExecDigest{Index: i, Steps: steps, NS: int64(steps)}); trig != TriggerNone {
			panic(fmt.Sprintf("baseline digest %d triggered %s", i, trig))
		}
	}
}

func TestFlightRecorderTriggerPriority(t *testing.T) {
	f := NewFlightRecorder(FlightRecorderConfig{})
	d := ExecDigest{Infeasible: true, Forbidden: true, NewRace: true, Steps: 1 << 40}
	if trig := f.Check(d); trig != TriggerInfeasible {
		t.Fatalf("trigger = %s, want infeasible first", trig)
	}
	d.Infeasible = false
	if trig := f.Check(d); trig != TriggerForbidden {
		t.Fatalf("trigger = %s, want forbidden over new race", trig)
	}
	d.Forbidden = false
	if trig := f.Check(d); trig != TriggerNewRace {
		t.Fatalf("trigger = %s, want new race", trig)
	}
}

func TestFlightRecorderSlowStepsArming(t *testing.T) {
	f := NewFlightRecorder(FlightRecorderConfig{Ring: 8})
	// Before the ring fills, even extreme outliers never trigger slow.
	for i := 0; i < 7; i++ {
		if trig := f.Check(ExecDigest{Index: i, Steps: uint64(1000 * (i + 1))}); trig != TriggerNone {
			t.Fatalf("slow trigger fired at digest %d with a non-full ring: %s", i, trig)
		}
	}
	if trig := f.Check(ExecDigest{Index: 7, Steps: 10}); trig != TriggerNone {
		t.Fatalf("trigger = %s at ring-filling digest", trig)
	}
	// Ring full. Equal-to-max must NOT trigger (strictly greater).
	if trig := f.Check(ExecDigest{Index: 8, Steps: 7000}); trig != TriggerNone {
		t.Fatalf("steps equal to trailing max triggered: %s", trig)
	}
	if trig := f.Check(ExecDigest{Index: 9, Steps: 7001}); trig != TriggerSlowSteps {
		t.Fatalf("trigger = %s, want slow_steps for a strict outlier", trig)
	}
}

func TestFlightRecorderSlowNSOptIn(t *testing.T) {
	// Wall-clock outliers are ignored unless SlowNS is armed.
	f := NewFlightRecorder(FlightRecorderConfig{Ring: 4})
	fillRing(f, 4, 100)
	if trig := f.Check(ExecDigest{Steps: 100, NS: 1 << 40}); trig != TriggerNone {
		t.Fatalf("wall-clock outlier triggered %s without SlowNS", trig)
	}
	f = NewFlightRecorder(FlightRecorderConfig{Ring: 4, SlowNS: true})
	fillRing(f, 4, 100)
	if trig := f.Check(ExecDigest{Steps: 100, NS: 1 << 40}); trig != TriggerSlowNS {
		t.Fatalf("trigger = %s, want slow_ns when armed", trig)
	}
}

func TestFlightRecorderCaps(t *testing.T) {
	f := NewFlightRecorder(FlightRecorderConfig{Ring: 4, MaxSlow: 1, MaxCaptures: 3})
	fillRing(f, 4, 100)
	if trig := f.Check(ExecDigest{Steps: 1000}); trig != TriggerSlowSteps {
		t.Fatalf("first outlier = %s", trig)
	}
	// MaxSlow reached: further slow outliers are suppressed...
	if trig := f.Check(ExecDigest{Steps: 100000}); trig != TriggerNone {
		t.Fatalf("slow capture beyond MaxSlow granted: %s", trig)
	}
	// ...but anomaly triggers still fire until MaxCaptures.
	if trig := f.Check(ExecDigest{NewRace: true}); trig != TriggerNewRace {
		t.Fatalf("new-race trigger = %s after MaxSlow", trig)
	}
	if trig := f.Check(ExecDigest{Infeasible: true}); trig != TriggerInfeasible {
		t.Fatalf("infeasible trigger = %s", trig)
	}
	if f.Captures() != 3 {
		t.Fatalf("captures = %d, want 3", f.Captures())
	}
	// MaxCaptures reached: everything is suppressed now.
	if trig := f.Check(ExecDigest{Infeasible: true}); trig != TriggerNone {
		t.Fatalf("capture beyond MaxCaptures granted: %s", trig)
	}
}

// TestFlightRecorderCheckZeroAlloc pins the armed recorder's per-execution
// cost at zero allocations — the property that lets the campaign hot path
// stay at 0 B / 0 obj with -capture enabled.
func TestFlightRecorderCheckZeroAlloc(t *testing.T) {
	f := NewFlightRecorder(FlightRecorderConfig{})
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		f.Check(ExecDigest{Index: i, Steps: uint64(100 + i%7), NS: int64(i)})
		i++
	}); n != 0 {
		t.Fatalf("Check allocates %.1f objects per call, want 0", n)
	}
}

func TestManifestSortAndRoundTrip(t *testing.T) {
	m := NewManifest()
	m.Captures = []CaptureRecord{
		{Tool: "tsan11", Program: "b", Seed: 5, Trigger: "new_race"},
		{Tool: "c11tester", Program: "MP", Litmus: true, Seed: 3, Trigger: "forbidden"},
		{Tool: "c11tester", Program: "queue", Seed: 9, Trigger: "slow_steps", File: "t.json"},
		{Tool: "c11tester", Program: "queue", Seed: 2, Trigger: "new_race", RaceKeys: []string{"k1", "k2"}},
	}
	path := filepath.Join(t.TempDir(), ManifestFileName)
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, c := range rt.Captures {
		got = append(got, fmt.Sprintf("%s/%s/%d", c.Tool, c.Program, c.Seed))
	}
	want := []string{"c11tester/queue/2", "c11tester/queue/9", "c11tester/MP/3", "tsan11/b/5"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("canonical order = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(rt.Captures[0].RaceKeys, []string{"k1", "k2"}) {
		t.Fatalf("race keys did not round-trip: %+v", rt.Captures[0])
	}

	// Schema validation: wrong name and future version are rejected.
	bad := filepath.Join(t.TempDir(), "bad.json")
	for _, m := range []*Manifest{
		{Schema: "other/schema", SchemaVersion: 1},
		{Schema: ManifestSchemaName, SchemaVersion: ManifestSchemaVersion + 1},
	} {
		data, _ := json.Marshal(m)
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(bad); err == nil {
			t.Fatalf("manifest %+v accepted, want schema error", m)
		}
	}
}

// TestStreamBackpressureExactAccounting fills the bounded channel against a
// stalled drainer and checks the contract precisely: Emit never blocks, the
// drop counter is exact (emitted + dropped == offered), and the drained
// output is a prefix-consistent subsequence of what was offered — events
// survive in emission order, and only a contiguous set of later events is
// shed.
func TestStreamBackpressureExactAccounting(t *testing.T) {
	const depth, offered = 4, 100
	w := &blockedWriter{release: make(chan struct{})}
	var buf bytes.Buffer
	s := NewStream(writerTee{w, &buf}, nil, depth)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < offered; i++ {
			s.Emit(testEvent{Seq: i})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Emit blocked against a stalled drainer")
	}
	if got := s.Emitted() + s.Dropped(); got != offered {
		t.Fatalf("emitted(%d) + dropped(%d) = %d, want exactly %d",
			s.Emitted(), s.Dropped(), got, offered)
	}
	if s.Dropped() == 0 {
		t.Fatalf("depth-%d channel absorbed %d events without dropping", depth, offered)
	}
	close(w.release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Every line that made it out is intact JSON, and the Seq values are
	// strictly increasing: a subsequence of the offered stream, no
	// reordering, no duplication, no torn lines.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if uint64(len(lines)) != s.Emitted() {
		t.Fatalf("drained %d lines, emitted counter says %d", len(lines), s.Emitted())
	}
	prev := -1
	for _, line := range lines {
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
		if ev.Seq <= prev {
			t.Fatalf("sequence not strictly increasing: %d after %d", ev.Seq, prev)
		}
		prev = ev.Seq
	}
	// The serial emitter + depth-d channel guarantee the first d events are
	// never shed (they were queued before anything could drop).
	var first testEvent
	if json.Unmarshal([]byte(lines[0]), &first); first.Seq != 0 {
		t.Fatalf("first drained event Seq = %d, want 0 (prefix shed)", first.Seq)
	}
}

// writerTee lets the blockedWriter gate the drainer while the bytes still
// land in a buffer for inspection.
type writerTee struct {
	gate *blockedWriter
	buf  *bytes.Buffer
}

func (w writerTee) Write(p []byte) (int, error) {
	if _, err := w.gate.Write(p); err != nil {
		return 0, err
	}
	return w.buf.Write(p)
}

// TestHistogramSnapshotMergeEdgeCases covers the quantile corners of Merge:
// merging into/from empties, all mass in one bucket, and associativity of
// merge-of-merges.
func TestHistogramSnapshotMergeEdgeCases(t *testing.T) {
	bounds := ExpBuckets(1, 10)
	build := func(vals ...uint64) *HistogramSnapshot {
		h := NewHistogram(bounds)
		for _, v := range vals {
			h.Observe(v)
		}
		return h.Snapshot()
	}

	t.Run("empty into empty", func(t *testing.T) {
		s := &HistogramSnapshot{}
		s.Merge(&HistogramSnapshot{})
		s.Merge(nil)
		if s.Count != 0 || s.P50 != 0 || s.P99 != 0 {
			t.Fatalf("empty merge produced mass: %+v", s)
		}
	})
	t.Run("empty into populated", func(t *testing.T) {
		s := build(4, 8, 16)
		want := *build(4, 8, 16)
		s.Merge(&HistogramSnapshot{})
		if s.Count != want.Count || s.P50 != want.P50 || s.P99 != want.P99 {
			t.Fatalf("merging an empty snapshot moved quantiles: %+v vs %+v", s, want)
		}
	})
	t.Run("populated into empty", func(t *testing.T) {
		s := &HistogramSnapshot{}
		s.Merge(build(4, 8, 16))
		if s.Count != 3 || s.P50 == 0 {
			t.Fatalf("merge into zero value lost mass: %+v", s)
		}
	})
	t.Run("single bucket mass", func(t *testing.T) {
		// All observations land in one bucket: the merged quantiles must
		// match a direct observation of the same mass, and stay within the
		// bucket's bound.
		s := build(3, 3, 3, 3)
		s.Merge(build(3, 3, 3, 3))
		if s.Count != 8 {
			t.Fatalf("count = %d, want 8", s.Count)
		}
		if want := build(3, 3, 3, 3, 3, 3, 3, 3); !reflect.DeepEqual(s, want) {
			t.Fatalf("merged single-bucket snapshot %+v != direct %+v", s, want)
		}
		if s.P50 > s.P99 || s.P99 > 4 {
			t.Fatalf("single-bucket quantiles p50=%d p99=%d escape the bucket", s.P50, s.P99)
		}
	})
	t.Run("merge of merges associativity", func(t *testing.T) {
		a, b, c := []uint64{1, 2, 300}, []uint64{4, 500, 6}, []uint64{700, 8, 9}
		left := build(a...)
		left.Merge(build(b...))
		left.Merge(build(c...))
		bc := build(b...)
		bc.Merge(build(c...))
		right := build(a...)
		right.Merge(bc)
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("(a+b)+c != a+(b+c):\n%+v\n%+v", left, right)
		}
		all := append(append(append([]uint64{}, a...), b...), c...)
		if direct := build(all...); !reflect.DeepEqual(left, direct) {
			t.Fatalf("merged != directly observed:\n%+v\n%+v", left, direct)
		}
	})
}

// TestServerHandle pins the extension endpoint the campaign CLIs use for
// /debug/converge.
func TestServerHandle(t *testing.T) {
	r := NewRegistry()
	srv := NewServer(r, func() any { return map[string]int{"x": 1} })
	srv.Handle("/debug/converge", func() any {
		return []map[string]any{{"tool": "c11tester", "converged": true}}
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	cl := http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + addr + "/debug/converge")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), `"converged": true`) {
		t.Fatalf("/debug/converge = %d %q", resp.StatusCode, buf.String())
	}
}
