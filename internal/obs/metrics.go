// Package obs is the campaign telemetry fabric: a zero-alloc-compatible
// metrics core (preallocated atomic counters, gauges, and fixed-bucket
// histograms), a structured JSONL event stream drained off a bounded channel,
// and the HTTP serving surface behind the CLIs' -status-addr flag (/metrics
// in Prometheus text format, /progress as a JSON snapshot, net/http/pprof).
//
// The design rule that keeps the engine's steady state at exactly 0 B /
// 0 objs per execution: all registration happens at campaign setup, and the
// hot path touches only pre-bound handles — a Counter.Inc is one atomic add,
// a Histogram.Observe is a bounded linear scan over fixed bucket bounds plus
// two atomic adds. No maps, no interface conversions, no formatting on the
// instrumented path; rendering (Prometheus text, JSON snapshots) walks the
// registry outside the hot path.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable,
// but campaign code obtains counters from a Registry so they render.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of uint64 observations (nanoseconds,
// step counts). Bucket bounds are fixed at registration; counts[i] holds
// observations ≤ bounds[i], with one implicit +Inf overflow bucket at the
// end. Observe is goroutine-safe and allocation-free.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64
}

// NewHistogram returns a standalone histogram with the given ascending
// bucket upper bounds (campaign code normally registers through a Registry).
func NewHistogram(bounds []uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value. The bucket scan is linear: bound slices are
// short (≲ 24 entries) and the scan touches no heap, keeping the hot path
// free of allocation and of the function-value indirection sort.Search
// would cost.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// ExpBuckets returns n ascending bucket bounds starting at start and
// doubling: start, start*2, ..., start<<(n-1). It is the standard bound set
// for the campaign's latency and step-count histograms.
func ExpBuckets(start uint64, n int) []uint64 {
	b := make([]uint64, n)
	for i := range b {
		b[i] = start << uint(i)
	}
	return b
}

// HistogramSnapshot is the serializable point-in-time state of a histogram,
// embedded in campaign summaries (schema v4). Le/N are parallel arrays of
// the non-empty buckets' upper bounds and (non-cumulative) counts; an Le of
// 0 marks the +Inf overflow bucket. P50/P90/P99 are quantiles estimated by
// linear interpolation inside the bucket.
type HistogramSnapshot struct {
	Count uint64   `json:"count"`
	Sum   uint64   `json:"sum"`
	Le    []uint64 `json:"le,omitempty"`
	N     []uint64 `json:"n,omitempty"`
	P50   uint64   `json:"p50,omitempty"`
	P90   uint64   `json:"p90,omitempty"`
	P99   uint64   `json:"p99,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := uint64(0) // +Inf
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Le = append(s.Le, le)
		s.N = append(s.N, n)
		s.Count += n
	}
	s.Sum = h.sum.Load()
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the snapshot's buckets,
// interpolating linearly within the bucket. Observations in the +Inf bucket
// clamp to the last finite bound. Returns 0 for an empty snapshot.
func (s *HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	var lower uint64
	for i, n := range s.N {
		next := cum + float64(n)
		if rank <= next || i == len(s.N)-1 {
			le := s.Le[i]
			if le == 0 { // +Inf bucket: clamp to the last finite bound
				return lower
			}
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / float64(n)
				if frac < 0 {
					frac = 0
				}
				if frac > 1 {
					frac = 1
				}
			}
			return lower + uint64(frac*float64(le-lower))
		}
		cum = next
		if s.Le[i] != 0 {
			lower = s.Le[i]
		}
	}
	return lower
}

// Merge folds other into s, summing bucket counts by bound (both sides must
// come from histograms registered with the same bound set, which holds for
// any one metric family) and recomputing the quantiles.
func (s *HistogramSnapshot) Merge(other *HistogramSnapshot) {
	if other == nil {
		return
	}
	byLe := map[uint64]uint64{}
	for i, le := range s.Le {
		byLe[le] += s.N[i]
	}
	for i, le := range other.Le {
		byLe[le] += other.N[i]
	}
	s.Le, s.N, s.Count = nil, nil, 0
	les := make([]uint64, 0, len(byLe))
	hasInf := false
	for le := range byLe {
		if le == 0 {
			hasInf = true
			continue
		}
		les = append(les, le)
	}
	sort.Slice(les, func(i, j int) bool { return les[i] < les[j] })
	if hasInf {
		les = append(les, 0)
	}
	for _, le := range les {
		s.Le = append(s.Le, le)
		s.N = append(s.N, byLe[le])
		s.Count += byLe[le]
	}
	s.Sum += other.Sum
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
}

// Label is one Prometheus label pair.
type Label struct{ Name, Value string }

// series is one labeled instance of a metric family; exactly one of c/g/h
// is set, matching the family's type.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric with its help text, type, and series.
type family struct {
	name, help, typ string
	bounds          []uint64 // histogram families only
	series          []*series
}

// Registry holds metric families and renders them. Registration happens at
// setup and takes a lock; the returned handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) familyOf(name, help, typ string) *family {
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// Counter registers (or extends) a counter family and returns the handle for
// the given label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyOf(name, help, "counter")
	c := &Counter{}
	f.series = append(f.series, &series{labels: labels, c: c})
	return c
}

// Gauge registers (or extends) a gauge family and returns the handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyOf(name, help, "gauge")
	g := &Gauge{}
	f.series = append(f.series, &series{labels: labels, g: g})
	return g
}

// Histogram registers (or extends) a histogram family and returns the
// handle. Every series of one family must use the same bounds; the first
// registration fixes them.
func (r *Registry) Histogram(name, help string, bounds []uint64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyOf(name, help, "histogram")
	if f.bounds == nil {
		f.bounds = bounds
	}
	h := NewHistogram(f.bounds)
	f.series = append(f.series, &series{labels: labels, h: h})
	return h
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. It runs entirely outside the hot path: values are atomic loads,
// and concurrent Observe/Inc calls simply land in this or the next scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch f.typ {
			case "counter":
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels, "", 0), s.c.Load())
			case "gauge":
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels, "", 0), s.g.Load())
			case "histogram":
				err = writePromHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, s *series) error {
	var cum uint64
	for i, b := range s.h.bounds {
		cum += s.h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(s.labels, "le", b), cum); err != nil {
			return err
		}
	}
	cum += s.h.counts[len(s.h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabelsInf(s.labels), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, renderLabels(s.labels, "", 0), s.h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.labels, "", 0), cum)
	return err
}

// renderLabels renders a label set, optionally with a trailing numeric le
// label (leName non-empty).
func renderLabels(labels []Label, leName string, le uint64) string {
	if len(labels) == 0 && leName == "" {
		return ""
	}
	out := "{"
	for i, l := range labels {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", l.Name, l.Value)
	}
	if leName != "" {
		if len(labels) > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=\"%d\"", leName, le)
	}
	return out + "}"
}

func renderLabelsInf(labels []Label) string {
	out := "{"
	for i, l := range labels {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", l.Name, l.Value)
	}
	if len(labels) > 0 {
		out += ","
	}
	return out + `le="+Inf"}`
}
