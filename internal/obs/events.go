package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// EventSchemaVersion is the version stamped into every event line ("v").
// Bump it on any incompatible change to an event's JSON shape; stream
// consumers (the future distributed-fabric coordinator, RaceFixer-style
// per-race consumers) key on it.
const EventSchemaVersion = 1

// Stream writes structured events as JSONL through a single drainer
// goroutine fed by a bounded channel. Emit never blocks the instrumented
// path: when the channel is full the event is counted in Dropped and
// discarded — campaign summaries surface any nonzero drop count, and the
// campaign Compare gate fails on it.
//
// Events are marshaled on the emitting goroutine (emission happens at unit-
// of-work boundaries, never inside the per-execution hot path) and written
// by the drainer, so writer latency never stalls workers.
type Stream struct {
	ch      chan streamItem
	done    chan struct{}
	w       *bufio.Writer
	echo    io.Writer
	emitted atomic.Uint64
	dropped atomic.Uint64

	mu     sync.Mutex
	closed bool

	errMu sync.Mutex
	err   error // first write/flush error, guarded by errMu
}

func (s *Stream) setErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

func (s *Stream) firstErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// streamItem is one drainer message: an event line, or (when flush is
// non-nil) a Sync barrier the drainer acknowledges by flushing the buffered
// writer and closing flush.
type streamItem struct {
	line  []byte
	flush chan struct{}
}

// DefaultStreamDepth is the bounded channel depth of NewStream.
const DefaultStreamDepth = 1024

// NewStream starts a drainer writing JSONL events to w. echo, when non-nil,
// receives a copy of every line (the CLI -v flag). depth ≤ 0 means
// DefaultStreamDepth.
func NewStream(w io.Writer, echo io.Writer, depth int) *Stream {
	if depth <= 0 {
		depth = DefaultStreamDepth
	}
	s := &Stream{
		ch:   make(chan streamItem, depth),
		done: make(chan struct{}),
		w:    bufio.NewWriter(w),
		echo: echo,
	}
	go s.drain()
	return s
}

func (s *Stream) drain() {
	defer close(s.done)
	for item := range s.ch {
		if item.flush != nil {
			if err := s.w.Flush(); err != nil {
				s.setErr(err)
			}
			close(item.flush)
			continue
		}
		if _, err := s.w.Write(item.line); err != nil {
			s.setErr(err)
		}
		if s.echo != nil {
			_, _ = s.echo.Write(item.line)
		}
	}
	if err := s.w.Flush(); err != nil {
		s.setErr(err)
	}
}

// Emit marshals ev and queues it for the drainer. A full channel drops the
// event (counted); a closed stream drops silently. ev must marshal cleanly —
// a marshal error counts as a drop.
func (s *Stream) Emit(ev any) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		s.dropped.Add(1)
		s.mu.Unlock()
		return
	}
	line = append(line, '\n')
	select {
	case s.ch <- streamItem{line: line}:
		s.emitted.Add(1)
	default:
		s.dropped.Add(1)
	}
	s.mu.Unlock()
}

// Sync blocks until everything emitted before the call has been handed to the
// underlying writer and the buffered writer flushed. Checkpoint writers call
// it before persisting event-stream cursors so a checkpoint never references
// lines still sitting in the drainer's buffer. Sync on a closed stream is a
// no-op returning the stream's first write error.
func (s *Stream) Sync() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.firstErr()
	}
	marker := make(chan struct{})
	// Blocking send is safe under mu: the drainer always consumes, and Close
	// (which also takes mu) cannot close the channel while we hold it.
	s.ch <- streamItem{flush: marker}
	s.mu.Unlock()
	<-marker
	return s.firstErr()
}

// Emitted returns the number of events successfully queued.
func (s *Stream) Emitted() uint64 { return s.emitted.Load() }

// Dropped returns the number of events lost to a full channel (or a marshal
// failure). A campaign that drops events fails its observability gate.
func (s *Stream) Dropped() uint64 { return s.dropped.Load() }

// Close stops accepting events, waits for the drainer to write everything
// queued, flushes, and returns the first write error (it does not close the
// underlying writer — the opener owns it). Close is idempotent.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return s.firstErr()
	}
	s.closed = true
	close(s.ch)
	s.mu.Unlock()
	<-s.done
	return s.firstErr()
}
