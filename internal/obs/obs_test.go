package obs

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c11_test_total", "test counter", Label{"tool", "c11tester"})
	g := r.Gauge("c11_test_gauge", "test gauge")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 4)) // bounds 1,2,4,8
	for _, v := range []uint64{1, 2, 3, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 115 {
		t.Fatalf("sum = %d, want 115", h.Sum())
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 115 {
		t.Fatalf("snapshot count/sum = %d/%d", s.Count, s.Sum)
	}
	// Buckets: ≤1:1, ≤2:1, ≤4:1, +Inf:2 (9 and 100 overflow past bound 8).
	wantLe := []uint64{1, 2, 4, 0}
	wantN := []uint64{1, 1, 1, 2}
	if len(s.Le) != len(wantLe) {
		t.Fatalf("snapshot buckets = %v/%v", s.Le, s.N)
	}
	for i := range wantLe {
		if s.Le[i] != wantLe[i] || s.N[i] != wantN[i] {
			t.Fatalf("bucket %d = (%d,%d), want (%d,%d)", i, s.Le[i], s.N[i], wantLe[i], wantN[i])
		}
	}
	if s.P50 == 0 || s.P99 == 0 {
		t.Fatalf("quantiles not computed: %+v", s)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(ExpBuckets(1, 4))
	b := NewHistogram(ExpBuckets(1, 4))
	a.Observe(1)
	a.Observe(8)
	b.Observe(1)
	b.Observe(100)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 4 || sa.Sum != 110 {
		t.Fatalf("merged count/sum = %d/%d, want 4/110", sa.Count, sa.Sum)
	}
	if sa.Le[0] != 1 || sa.N[0] != 2 {
		t.Fatalf("merged first bucket = (%d,%d), want (1,2)", sa.Le[0], sa.N[0])
	}
	// +Inf bucket must sort last.
	if sa.Le[len(sa.Le)-1] != 0 {
		t.Fatalf("merged +Inf bucket not last: %v", sa.Le)
	}
}

// TestHotPathZeroAlloc pins the instrumentation primitives at zero
// allocations, the property that lets the campaign thread them through the
// engine's steady state without breaking the 0 B / 0 objs invariant.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c11_test_total", "t")
	h := r.Histogram("c11_test_ns", "t", ExpBuckets(1024, 20))
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(123456)
	}); n != 0 {
		t.Fatalf("hot path allocates %.1f objs/op, want 0", n)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c11_execs_total", "executions", Label{"tool", "c11tester"}, Label{"program", "ms-queue"})
	c.Add(42)
	h := r.Histogram("c11_exec_ns", "ns per execution", ExpBuckets(1, 2), Label{"tool", "c11tester"})
	h.Observe(1)
	h.Observe(5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP c11_execs_total executions",
		"# TYPE c11_execs_total counter",
		`c11_execs_total{tool="c11tester",program="ms-queue"} 42`,
		"# TYPE c11_exec_ns histogram",
		`c11_exec_ns_bucket{tool="c11tester",le="1"} 1`,
		`c11_exec_ns_bucket{tool="c11tester",le="2"} 1`,
		`c11_exec_ns_bucket{tool="c11tester",le="+Inf"} 2`,
		`c11_exec_ns_sum{tool="c11tester"} 6`,
		`c11_exec_ns_count{tool="c11tester"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

type testEvent struct {
	V    int    `json:"v"`
	Type string `json:"type"`
	Seq  int    `json:"seq"`
}

func TestStreamDrainAndClose(t *testing.T) {
	var buf bytes.Buffer
	s := NewStream(&buf, nil, 8)
	for i := 0; i < 5; i++ {
		s.Emit(testEvent{V: EventSchemaVersion, Type: "tick", Seq: i})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	if s.Emitted() != 5 || s.Dropped() != 0 {
		t.Fatalf("emitted/dropped = %d/%d, want 5/0", s.Emitted(), s.Dropped())
	}
	if !strings.Contains(lines[0], `"type":"tick"`) || !strings.Contains(lines[0], `"v":1`) {
		t.Fatalf("unexpected event line: %s", lines[0])
	}
	// Emits after Close are silently ignored.
	s.Emit(testEvent{Type: "late"})
	if s.Emitted() != 5 {
		t.Fatalf("emit after close was queued")
	}
}

// blockedWriter blocks until released, forcing the drainer to stall so the
// bounded channel fills and Emit must drop.
type blockedWriter struct{ release chan struct{} }

func (w *blockedWriter) Write(p []byte) (int, error) {
	<-w.release
	return len(p), nil
}

func TestStreamDropsWhenFull(t *testing.T) {
	w := &blockedWriter{release: make(chan struct{})}
	s := NewStream(w, nil, 2)
	// Buffered writer absorbs nothing here: bufio only flushes at 4096 bytes,
	// so force enough events that channel depth 2 (+ one in-flight) overflows.
	for i := 0; i < 10; i++ {
		s.Emit(testEvent{Seq: i})
	}
	if s.Dropped() == 0 {
		t.Fatalf("expected drops with a stalled drainer, got emitted=%d dropped=%d", s.Emitted(), s.Dropped())
	}
	close(w.release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c11_execs_total", "executions")
	c.Add(3)
	srv := NewServer(r, func() any {
		return map[string]any{"execs_done": 3, "execs_planned": 10}
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	get := func(path string) string {
		cl := http.Client{Timeout: 5 * time.Second}
		resp, err := cl.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, buf.String())
		}
		return buf.String()
	}
	if out := get("/metrics"); !strings.Contains(out, "c11_execs_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/progress"); !strings.Contains(out, `"execs_planned": 10`) {
		t.Fatalf("/progress missing snapshot:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatalf("/debug/pprof/cmdline empty")
	}
}
