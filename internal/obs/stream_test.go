package obs

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestStreamEmitWhileCloseRace hammers Emit from many goroutines while Close
// runs concurrently (run under -race): no send-on-closed-channel panic, and
// the accounting must be exact — every event is either written to the sink or
// counted in Dropped, never lost silently.
func TestStreamEmitWhileCloseRace(t *testing.T) {
	type ev struct {
		Type string `json:"type"`
		N    int    `json:"n"`
	}
	for round := 0; round < 50; round++ {
		var buf bytes.Buffer
		s := NewStream(&buf, nil, 4) // tiny depth: force the drop path too

		const emitters, perEmitter = 8, 20
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < emitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < perEmitter; i++ {
					s.Emit(ev{Type: "unit", N: g*perEmitter + i})
				}
			}(g)
		}
		closed := make(chan error, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			closed <- s.Close()
		}()
		close(start)
		wg.Wait()
		if err := <-closed; err != nil {
			t.Fatal(err)
		}
		// Emits that land after Close are silently refused by contract; the
		// ones accepted must all reach the sink.
		written := 0
		for _, line := range strings.Split(buf.String(), "\n") {
			if line != "" {
				written++
			}
		}
		if uint64(written) != s.Emitted() {
			t.Fatalf("round %d: %d line(s) written, %d emitted — events lost between queue and sink",
				round, written, s.Emitted())
		}
		if s.Emitted()+s.Dropped() > emitters*perEmitter {
			t.Fatalf("round %d: emitted %d + dropped %d > %d sent",
				round, s.Emitted(), s.Dropped(), emitters*perEmitter)
		}
	}
}

// TestStreamSyncFlushes pins Sync's barrier contract: after Sync returns,
// every prior emit is in the underlying writer, not the drainer's buffer.
func TestStreamSyncFlushes(t *testing.T) {
	var buf bytes.Buffer
	s := NewStream(&buf, nil, 64)
	for i := 0; i < 10; i++ {
		s.Emit(map[string]int{"n": i})
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 10 {
		t.Fatalf("after Sync the sink holds %d line(s), want 10", got)
	}
	// Sync is repeatable and still works interleaved with more emits.
	s.Emit(map[string]int{"n": 10})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 11 {
		t.Fatalf("after second Sync the sink holds %d line(s), want 11", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Sync on a closed stream is a no-op, not a deadlock.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

// errWriter fails every write after the first n bytes worth of calls.
type errWriter struct{ failAfter int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.failAfter <= 0 {
		return 0, errors.New("sink failed")
	}
	w.failAfter--
	return len(p), nil
}

// TestStreamSyncSurfacesWriteError pins that a sink failure comes back from
// Sync (and Close), not just silently recorded.
func TestStreamSyncSurfacesWriteError(t *testing.T) {
	s := NewStream(&errWriter{failAfter: 0}, nil, 4)
	// Overflow the bufio buffer so the flush actually hits the sink.
	big := strings.Repeat("x", 100_000)
	s.Emit(map[string]string{"pad": big})
	if err := s.Sync(); err == nil {
		t.Error("Sync returned nil after sink failure")
	}
	if err := s.Close(); err == nil {
		t.Error("Close returned nil after sink failure")
	}
}

// TestStreamConcurrentSyncAndEmit runs Sync, Emit, and Close concurrently
// under -race to pin the lock discipline (Sync's blocking send under mu must
// not deadlock against the drainer).
func TestStreamConcurrentSyncAndEmit(t *testing.T) {
	s := NewStream(io.Discard, nil, 2)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Emit(map[string]int{"n": i})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.Sync()
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
