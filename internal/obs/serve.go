package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the -status-addr serving surface: /metrics (Prometheus text
// format), /progress (a JSON snapshot supplied by the owner), and the
// net/http/pprof handlers under /debug/pprof/. All rendering happens in the
// handler goroutines, outside the campaign's hot path.
type Server struct {
	reg      *Registry
	progress func() any
	mux      *http.ServeMux
	ln       net.Listener
	srv      *http.Server
}

// NewServer returns a server for the given registry. progress, when non-nil,
// produces the /progress snapshot (any JSON-marshalable value).
func NewServer(reg *Registry, progress func() any) *Server {
	s := &Server{reg: reg, progress: progress}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// Handle registers an additional JSON endpoint: fn's value is marshaled
// (indented) per request, like /progress. The campaign CLIs use it for
// /debug/converge. It must be called before Start.
func (s *Server) Handle(path string, fn func() any) {
	s.mux.HandleFunc(path, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(fn(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(append(data, '\n'))
	})
}

// Start binds addr and serves in a background goroutine. It returns the
// bound address (useful with a ":0" port).
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Stop closes the listener and in-flight connections.
func (s *Server) Stop() {
	if s.srv != nil {
		_ = s.srv.Close()
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var snap any
	if s.progress != nil {
		snap = s.progress()
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_, _ = w.Write(append(data, '\n'))
}
