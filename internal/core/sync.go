package core

import (
	"fmt"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
)

// Mutex and condition-variable semantics. Lock and unlock establish
// happens-before through the mutex's release clock (they behave like
// release/acquire operations on a private location, which is how the paper
// notes they can be implemented with atomic statements, Section 6).
//
// Blocking is modelled by leaving the thread's operation pending and marking
// the thread unschedulable; wakes mark it schedulable again and the
// operation is re-dispatched, which re-evaluates its guard. This gives
// wake-all retry semantics for mutexes (losers simply block again).

func (e *Engine) mutex(id memmodel.LocID) *mutexState {
	if int(id) >= len(e.mutexes) || e.mutexes[id] == nil {
		panic(fmt.Sprintf("core: unknown mutex %d", id))
	}
	return e.mutexes[id]
}

func (e *Engine) cond(id memmodel.LocID) *condState {
	if int(id) >= len(e.conds) || e.conds[id] == nil {
		panic(fmt.Sprintf("core: unknown cond %d", id))
	}
	return e.conds[id]
}

func (e *Engine) doLock(ts *ThreadState, op *capi.Op) {
	m := e.mutex(op.Loc)
	if m.owner != nil {
		e.block(ts)
		return
	}
	e.acquireMutex(ts, m)
	e.result.Stats.AtomicOps++
	e.complete(ts)
}

func (e *Engine) acquireMutex(ts *ThreadState, m *mutexState) {
	e.assignSeq(ts)
	m.owner = ts
	ts.C.Merge(&m.cv)
}

func (e *Engine) doTryLock(ts *ThreadState, op *capi.Op) {
	m := e.mutex(op.Loc)
	if m.owner == nil {
		e.acquireMutex(ts, m)
		op.OK = true
	} else {
		e.assignSeq(ts)
		op.OK = false
	}
	e.result.Stats.AtomicOps++
	e.complete(ts)
}

func (e *Engine) doUnlock(ts *ThreadState, op *capi.Op) {
	m := e.mutex(op.Loc)
	if m.owner != ts {
		e.failAssert(ts, fmt.Sprintf("unlock of mutex %q not owned by thread %d", m.name, ts.ID))
		e.complete(ts)
		return
	}
	e.assignSeq(ts)
	m.cv.Merge(ts.C)
	m.owner = nil
	e.wakeMutexWaiters(m)
	e.result.Stats.AtomicOps++
	e.complete(ts)
}

// wakeMutexWaiters marks every thread blocked on m schedulable: both plain
// lockers and cond-waiters that are re-acquiring after a signal.
func (e *Engine) wakeMutexWaiters(m *mutexState) {
	for _, w := range e.threads {
		if w.finished || e.schedulable(w) {
			continue
		}
		op := w.thr.Pending()
		if op == nil {
			continue
		}
		switch {
		case op.Kind == memmodel.KMutexLock && op.Loc == m.id:
			w.woken = true
		case op.Kind == memmodel.KCondWait && op.Loc2 == m.id && w.condPhase == condReacquire:
			w.woken = true
		}
	}
}

func (e *Engine) doCondWait(ts *ThreadState, op *capi.Op) {
	c := e.cond(op.Loc)
	m := e.mutex(op.Loc2)
	switch ts.condPhase {
	case condIdle:
		if m.owner != ts {
			e.failAssert(ts, fmt.Sprintf("cond wait on %q without holding mutex %q", c.name, m.name))
			e.complete(ts)
			return
		}
		// Atomically release the mutex and park on the condition variable.
		e.assignSeq(ts)
		m.cv.Merge(ts.C)
		m.owner = nil
		e.wakeMutexWaiters(m)
		ts.condPhase = condWaiting
		c.waiters = append(c.waiters, ts)
		e.result.Stats.AtomicOps++
		e.block(ts)
	case condWaiting:
		// Not signaled yet; stay parked.
		e.block(ts)
	case condReacquire:
		if m.owner != nil {
			e.block(ts)
			return
		}
		e.acquireMutex(ts, m)
		ts.C.Merge(&c.cv)
		ts.condPhase = condIdle
		ts.condSignaled = false
		e.result.Stats.AtomicOps++
		e.complete(ts)
	}
}

func (e *Engine) doCondSignal(ts *ThreadState, op *capi.Op, broadcast bool) {
	c := e.cond(op.Loc)
	e.assignSeq(ts)
	c.cv.Merge(ts.C)
	if len(c.waiters) > 0 {
		if broadcast {
			for _, w := range c.waiters {
				w.condPhase = condReacquire
				w.condSignaled = true
				w.woken = true
			}
			c.waiters = c.waiters[:0]
		} else {
			i := e.Rand().Intn(len(c.waiters))
			w := c.waiters[i]
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			w.condPhase = condReacquire
			w.condSignaled = true
			w.woken = true
		}
	}
	e.result.Stats.AtomicOps++
	e.complete(ts)
}
