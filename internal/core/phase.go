package core

import "time"

// Phase identifies one clock-bracketed region of an execution for the
// forensics timing of campaign telemetry. The engine brackets PhaseReset,
// PhaseRun, and PhaseRace itself; PhaseValidate and PhaseRecord are campaign
// duties (axiomatic validation, trace recording) that run after Execute
// returns, so the campaign runner brackets those and feeds them into the same
// per-cell histograms.
type Phase uint8

const (
	// PhaseReset is resetExecState: scheduler reset/rebuild, pool and arena
	// recycling, strategy re-seed, model Begin.
	PhaseReset Phase = iota
	// PhaseRun is the exploration loop (Figure 3), from spawning the main
	// thread to the last thread finishing. It includes PhaseRace: the race
	// spans are nested inside the run span, not disjoint from it.
	PhaseRun
	// PhaseRace covers the shadow-word checks and conflict reporting on
	// memory-access dispatch paths. Nested inside PhaseRun.
	PhaseRace
	// PhaseValidate is the campaign's offline axiomatic check of the
	// execution (bracketed by the campaign runner, not the engine).
	PhaseValidate
	// PhaseRecord is the campaign's trace serialization duty (bracketed by
	// the campaign runner, not the engine).
	PhaseRecord
	// NumPhases sizes the fixed per-phase arrays.
	NumPhases int = iota
)

var phaseNames = [NumPhases]string{"reset", "run", "race", "validate", "record"}

// String returns the stable lower-case phase name used as the histogram
// label and summary key.
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseTimer accumulates wall time per phase into a fixed array of monotonic
// stamps. It is deliberately interface-free and allocation-free: Begin/End
// are two clock reads and an add, and a disabled timer is a single branch, so
// the engine can carry one unconditionally without disturbing the 0 B / 0 obj
// steady state. Like the scheduler's handoff-wait measurement it is opt-in
// (Engine.SetPhaseTiming): campaign telemetry turns it on, raw perf sweeps
// leave it off.
//
// Phases may nest (PhaseRace inside PhaseRun) because each phase has its own
// start stamp; a phase must not nest inside itself.
type PhaseTimer struct {
	on      bool
	ns      [NumPhases]int64
	started [NumPhases]time.Time
}

// SetEnabled toggles the timer. Disabling does not clear accumulated time.
func (t *PhaseTimer) SetEnabled(on bool) { t.on = on }

// Enabled reports whether the timer is measuring.
func (t *PhaseTimer) Enabled() bool { return t.on }

// Reset zeroes the accumulated per-phase time for a new execution.
func (t *PhaseTimer) Reset() { t.ns = [NumPhases]int64{} }

// Begin stamps the start of a span of p.
func (t *PhaseTimer) Begin(p Phase) {
	if t.on {
		t.started[p] = time.Now()
	}
}

// End accumulates the span opened by the matching Begin.
func (t *PhaseTimer) End(p Phase) {
	if t.on {
		t.ns[p] += int64(time.Since(t.started[p]))
	}
}

// NS returns the accumulated nanoseconds of p.
func (t *PhaseTimer) NS(p Phase) int64 { return t.ns[p] }

// Durations returns the accumulated nanoseconds of every phase by value.
func (t *PhaseTimer) Durations() [NumPhases]int64 { return t.ns }
