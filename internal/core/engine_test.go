package core

import (
	"fmt"
	"testing"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
)

const (
	rlx = memmodel.Relaxed
	acq = memmodel.Acquire
	rel = memmodel.Release
	sc  = memmodel.SeqCst
)

func newTool(cfg Config) *Engine {
	cfg.StoreBurst = true
	return New("c11tester", NewC11Model(), cfg)
}

// outcomes runs prog n times and histograms the string written to *out by
// each execution.
func outcomes(t *testing.T, tool *Engine, n int, out *string, body func(capi.Env)) map[string]int {
	t.Helper()
	hist := map[string]int{}
	prog := capi.Program{Name: t.Name(), Run: body}
	for seed := 0; seed < n; seed++ {
		*out = ""
		res := tool.Execute(prog, int64(seed))
		if res.Deadlocked {
			t.Fatalf("seed %d: unexpected deadlock", seed)
		}
		if res.Truncated {
			t.Fatalf("seed %d: unexpected truncation", seed)
		}
		hist[*out]++
	}
	return hist
}

func TestMessagePassingRelaxedAllowsStaleRead(t *testing.T) {
	var out string
	hist := outcomes(t, newTool(Config{}), 400, &out, func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		y := env.NewAtomic("y", 0)
		a := env.Spawn("A", func(env capi.Env) {
			env.Store(x, 1, rlx)
			env.Store(y, 1, rlx)
		})
		b := env.Spawn("B", func(env capi.Env) {
			r1 := env.Load(y, rlx)
			r2 := env.Load(x, rlx)
			out = fmt.Sprintf("r1=%d r2=%d", r1, r2)
		})
		env.Join(a)
		env.Join(b)
	})
	// The counter-intuitive weak behaviour of Figure 2 must be producible.
	if hist["r1=1 r2=0"] == 0 {
		t.Errorf("relaxed MP never produced r1=1 r2=0: %v", hist)
	}
	// And the SC behaviours as well.
	for _, want := range []string{"r1=0 r2=0", "r1=1 r2=1"} {
		if hist[want] == 0 {
			t.Errorf("missing outcome %q: %v", want, hist)
		}
	}
}

func TestMessagePassingReleaseAcquireForbidsStaleRead(t *testing.T) {
	var out string
	hist := outcomes(t, newTool(Config{}), 400, &out, func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		y := env.NewAtomic("y", 0)
		a := env.Spawn("A", func(env capi.Env) {
			env.Store(x, 1, rlx)
			env.Store(y, 1, rel)
		})
		b := env.Spawn("B", func(env capi.Env) {
			r1 := env.Load(y, acq)
			r2 := env.Load(x, rlx)
			out = fmt.Sprintf("r1=%d r2=%d", r1, r2)
		})
		env.Join(a)
		env.Join(b)
	})
	if hist["r1=1 r2=0"] != 0 {
		t.Errorf("release/acquire MP produced the forbidden r1=1 r2=0: %v", hist)
	}
	if hist["r1=1 r2=1"] == 0 {
		t.Errorf("release/acquire MP never synchronized: %v", hist)
	}
}

func TestStoreBufferingRelaxedAllowsBothZero(t *testing.T) {
	var out string
	hist := outcomes(t, newTool(Config{}), 300, &out, func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		y := env.NewAtomic("y", 0)
		var r1, r2 memmodel.Value
		a := env.Spawn("A", func(env capi.Env) {
			env.Store(x, 1, rlx)
			r1 = env.Load(y, rlx)
		})
		b := env.Spawn("B", func(env capi.Env) {
			env.Store(y, 1, rlx)
			r2 = env.Load(x, rlx)
		})
		env.Join(a)
		env.Join(b)
		out = fmt.Sprintf("r1=%d r2=%d", r1, r2)
	})
	if hist["r1=0 r2=0"] == 0 {
		t.Errorf("relaxed SB never produced r1=r2=0: %v", hist)
	}
}

func TestStoreBufferingSeqCstForbidsBothZero(t *testing.T) {
	var out string
	hist := outcomes(t, newTool(Config{}), 300, &out, func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		y := env.NewAtomic("y", 0)
		var r1, r2 memmodel.Value
		a := env.Spawn("A", func(env capi.Env) {
			env.Store(x, 1, sc)
			r1 = env.Load(y, sc)
		})
		b := env.Spawn("B", func(env capi.Env) {
			env.Store(y, 1, sc)
			r2 = env.Load(x, sc)
		})
		env.Join(a)
		env.Join(b)
		out = fmt.Sprintf("r1=%d r2=%d", r1, r2)
	})
	if hist["r1=0 r2=0"] != 0 {
		t.Errorf("seq_cst SB produced the forbidden r1=r2=0: %v", hist)
	}
}

func TestLoadBufferingForbidden(t *testing.T) {
	// Out-of-thin-air / load buffering requires an rf ∪ sb cycle, which the
	// model forbids (hb ∪ sc ∪ rf acyclic, Section 2.2 change 2).
	var out string
	hist := outcomes(t, newTool(Config{}), 300, &out, func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		y := env.NewAtomic("y", 0)
		var r1, r2 memmodel.Value
		a := env.Spawn("A", func(env capi.Env) {
			r1 = env.Load(y, rlx)
			env.Store(x, 1, rlx)
		})
		b := env.Spawn("B", func(env capi.Env) {
			r2 = env.Load(x, rlx)
			env.Store(y, 1, rlx)
		})
		env.Join(a)
		env.Join(b)
		out = fmt.Sprintf("r1=%d r2=%d", r1, r2)
	})
	if hist["r1=1 r2=1"] != 0 {
		t.Errorf("load buffering outcome produced: %v", hist)
	}
}

func TestCoherenceSameThreadStores(t *testing.T) {
	var out string
	hist := outcomes(t, newTool(Config{}), 400, &out, func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		a := env.Spawn("A", func(env capi.Env) {
			env.Store(x, 1, rlx)
			env.Store(x, 2, rlx)
		})
		b := env.Spawn("B", func(env capi.Env) {
			r1 := env.Load(x, rlx)
			r2 := env.Load(x, rlx)
			out = fmt.Sprintf("%d%d", r1, r2)
		})
		env.Join(a)
		env.Join(b)
	})
	for o := range hist {
		if o == "21" || o == "10" || o == "20" {
			t.Errorf("coherence violation %q observed: %v", o, hist)
		}
	}
	if hist["12"] == 0 {
		t.Errorf("never observed the 1-then-2 progression: %v", hist)
	}
}

func TestFigure4BiasIsRemoved(t *testing.T) {
	// With the store-burst rule, r1 should read 1 and 2 about equally often
	// (Section 3, Figure 4).
	var out string
	hist := outcomes(t, newTool(Config{}), 2000, &out, func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		a := env.Spawn("A", func(env capi.Env) {
			env.Store(x, 1, rlx)
			env.Store(x, 2, rlx)
		})
		b := env.Spawn("B", func(env capi.Env) {
			out = fmt.Sprintf("%d", env.Load(x, rlx))
		})
		env.Join(a)
		env.Join(b)
	})
	ones, twos := hist["1"], hist["2"]
	if ones == 0 || twos == 0 {
		t.Fatalf("missing outcomes: %v", hist)
	}
	ratio := float64(ones) / float64(twos)
	if ratio < 0.6 || ratio > 1.67 {
		t.Errorf("store-burst rule should balance 1 and 2: ones=%d twos=%d", ones, twos)
	}
}

func TestIRIWSeqCstForbidden(t *testing.T) {
	var out string
	hist := outcomes(t, newTool(Config{}), 500, &out, func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		y := env.NewAtomic("y", 0)
		var a1, a2, b1, b2 memmodel.Value
		w1 := env.Spawn("w1", func(env capi.Env) { env.Store(x, 1, sc) })
		w2 := env.Spawn("w2", func(env capi.Env) { env.Store(y, 1, sc) })
		r1 := env.Spawn("r1", func(env capi.Env) { a1 = env.Load(x, sc); a2 = env.Load(y, sc) })
		r2 := env.Spawn("r2", func(env capi.Env) { b1 = env.Load(y, sc); b2 = env.Load(x, sc) })
		for _, th := range []capi.Thread{w1, w2, r1, r2} {
			env.Join(th)
		}
		out = fmt.Sprintf("%d%d%d%d", a1, a2, b1, b2)
	})
	if hist["1010"] != 0 {
		t.Errorf("seq_cst IRIW produced forbidden 1010: %v", hist)
	}
}

func TestIRIWAcquireAllowed(t *testing.T) {
	var out string
	hist := outcomes(t, newTool(Config{}), 1500, &out, func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		y := env.NewAtomic("y", 0)
		var a1, a2, b1, b2 memmodel.Value
		w1 := env.Spawn("w1", func(env capi.Env) { env.Store(x, 1, rel) })
		w2 := env.Spawn("w2", func(env capi.Env) { env.Store(y, 1, rel) })
		r1 := env.Spawn("r1", func(env capi.Env) { a1 = env.Load(x, acq); a2 = env.Load(y, acq) })
		r2 := env.Spawn("r2", func(env capi.Env) { b1 = env.Load(y, acq); b2 = env.Load(x, acq) })
		for _, th := range []capi.Thread{w1, w2, r1, r2} {
			env.Join(th)
		}
		out = fmt.Sprintf("%d%d%d%d", a1, a2, b1, b2)
	})
	if hist["1010"] == 0 {
		t.Errorf("acquire IRIW never produced the ARM-observable 1010: %v", hist)
	}
}

func TestRMWAtomicity(t *testing.T) {
	tool := newTool(Config{})
	prog := capi.Program{Name: "rmw", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		seen := map[memmodel.Value]bool{}
		var threads []capi.Thread
		for i := 0; i < 4; i++ {
			threads = append(threads, env.Spawn(fmt.Sprintf("t%d", i), func(env capi.Env) {
				for k := 0; k < 5; k++ {
					old := env.FetchAdd(x, 1, rlx)
					env.Assert(!seen[old], "duplicate RMW observation %d", old)
					seen[old] = true
				}
			}))
		}
		for _, th := range threads {
			env.Join(th)
		}
		env.Assert(env.Load(x, rlx) == 20, "final count")
	}}
	for seed := 0; seed < 100; seed++ {
		res := tool.Execute(prog, int64(seed))
		if len(res.AssertFailures) > 0 {
			t.Fatalf("seed %d: %v", seed, res.AssertFailures[0])
		}
	}
}

func TestCASSemantics(t *testing.T) {
	tool := newTool(Config{})
	prog := capi.Program{Name: "cas", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		wins := 0
		var threads []capi.Thread
		for i := 0; i < 3; i++ {
			threads = append(threads, env.Spawn(fmt.Sprintf("t%d", i), func(env capi.Env) {
				if _, ok := env.CompareExchange(x, 0, 1, sc, sc); ok {
					wins++
				}
			}))
		}
		for _, th := range threads {
			env.Join(th)
		}
		env.Assert(wins == 1, "exactly one CAS(0→1) must win, got %d", wins)
		env.Assert(env.Load(x, sc) == 1, "final value")
	}}
	for seed := 0; seed < 200; seed++ {
		res := tool.Execute(prog, int64(seed))
		if len(res.AssertFailures) > 0 {
			t.Fatalf("seed %d: %v", seed, res.AssertFailures[0])
		}
	}
}

func TestUnsynchronizedWritesRace(t *testing.T) {
	tool := newTool(Config{})
	prog := capi.Program{Name: "race", Run: func(env capi.Env) {
		d := env.NewLoc("data", 0)
		a := env.Spawn("A", func(env capi.Env) { env.Write(d, 1) })
		env.Write(d, 2)
		env.Join(a)
	}}
	raced := 0
	for seed := 0; seed < 50; seed++ {
		if res := tool.Execute(prog, int64(seed)); len(res.Races) > 0 {
			raced++
		}
	}
	if raced != 50 {
		t.Errorf("unsynchronized write/write race detected in %d/50 runs", raced)
	}
}

func TestMutexPreventsRace(t *testing.T) {
	tool := newTool(Config{})
	prog := capi.Program{Name: "mutex", Run: func(env capi.Env) {
		d := env.NewLoc("data", 0)
		m := env.NewMutex("m")
		a := env.Spawn("A", func(env capi.Env) {
			env.Lock(m)
			env.Write(d, env.Read(d)+1)
			env.Unlock(m)
		})
		env.Lock(m)
		env.Write(d, env.Read(d)+1)
		env.Unlock(m)
		env.Join(a)
		env.Assert(env.Read(d) == 2, "both increments must land")
	}}
	for seed := 0; seed < 100; seed++ {
		res := tool.Execute(prog, int64(seed))
		if len(res.Races) > 0 {
			t.Fatalf("seed %d: mutex-protected accesses raced: %v", seed, res.Races[0])
		}
		if len(res.AssertFailures) > 0 {
			t.Fatalf("seed %d: %v", seed, res.AssertFailures[0])
		}
	}
}

func TestReleaseAcquirePublicationIsRaceFree(t *testing.T) {
	tool := newTool(Config{})
	prog := capi.Program{Name: "pub", Run: func(env capi.Env) {
		d := env.NewLoc("data", 0)
		f := env.NewAtomic("flag", 0)
		a := env.Spawn("A", func(env capi.Env) {
			env.Write(d, 42)
			env.Store(f, 1, rel)
		})
		b := env.Spawn("B", func(env capi.Env) {
			if env.Load(f, acq) == 1 {
				env.Assert(env.Read(d) == 42, "published value")
			}
		})
		env.Join(a)
		env.Join(b)
	}}
	for seed := 0; seed < 300; seed++ {
		res := tool.Execute(prog, int64(seed))
		if len(res.Races) > 0 {
			t.Fatalf("seed %d: rel/acq publication raced: %v", seed, res.Races[0])
		}
		if len(res.AssertFailures) > 0 {
			t.Fatalf("seed %d: %v", seed, res.AssertFailures[0])
		}
	}
}

func TestRelaxedPublicationRaces(t *testing.T) {
	tool := newTool(Config{})
	prog := capi.Program{Name: "badpub", Run: func(env capi.Env) {
		d := env.NewLoc("data", 0)
		f := env.NewAtomic("flag", 0)
		a := env.Spawn("A", func(env capi.Env) {
			env.Write(d, 42)
			env.Store(f, 1, rlx) // bug: relaxed publication
		})
		b := env.Spawn("B", func(env capi.Env) {
			if env.Load(f, rlx) == 1 {
				env.Read(d)
			}
		})
		env.Join(a)
		env.Join(b)
	}}
	raced := 0
	for seed := 0; seed < 300; seed++ {
		if res := tool.Execute(prog, int64(seed)); len(res.Races) > 0 {
			raced++
		}
	}
	if raced == 0 {
		t.Error("relaxed publication never reported a race")
	}
}

func TestReleaseSequenceThroughRMW(t *testing.T) {
	// C++20 release sequences: a relaxed RMW continues the sequence headed
	// by a release store, so an acquire load reading the RMW synchronizes
	// with the original release store.
	tool := newTool(Config{})
	prog := capi.Program{Name: "relseq", Run: func(env capi.Env) {
		d := env.NewLoc("data", 0)
		f := env.NewAtomic("flag", 0)
		a := env.Spawn("A", func(env capi.Env) {
			env.Write(d, 7)
			env.Store(f, 1, rel)
		})
		b := env.Spawn("B", func(env capi.Env) {
			env.FetchAdd(f, 1, rlx) // may read 0 or 1; continues the sequence
		})
		c := env.Spawn("C", func(env capi.Env) {
			if env.Load(f, acq) == 2 {
				// flag==2 means the RMW read the release store.
				env.Assert(env.Read(d) == 7, "release sequence must publish data")
			}
		})
		env.Join(a)
		env.Join(b)
		env.Join(c)
	}}
	for seed := 0; seed < 400; seed++ {
		res := tool.Execute(prog, int64(seed))
		for _, r := range res.Races {
			t.Fatalf("seed %d: race through release sequence: %v", seed, r)
		}
		if len(res.AssertFailures) > 0 {
			t.Fatalf("seed %d: %v", seed, res.AssertFailures[0])
		}
	}
}

func TestFenceSynchronization(t *testing.T) {
	// Release fence + relaxed store / relaxed load + acquire fence must
	// establish happens-before (Figure 9 fence rules).
	tool := newTool(Config{})
	prog := capi.Program{Name: "fences", Run: func(env capi.Env) {
		d := env.NewLoc("data", 0)
		f := env.NewAtomic("flag", 0)
		a := env.Spawn("A", func(env capi.Env) {
			env.Write(d, 9)
			env.Fence(rel)
			env.Store(f, 1, rlx)
		})
		b := env.Spawn("B", func(env capi.Env) {
			if env.Load(f, rlx) == 1 {
				env.Fence(acq)
				env.Assert(env.Read(d) == 9, "fence sync must publish data")
			}
		})
		env.Join(a)
		env.Join(b)
	}}
	for seed := 0; seed < 400; seed++ {
		res := tool.Execute(prog, int64(seed))
		for _, r := range res.Races {
			t.Fatalf("seed %d: race despite fences: %v", seed, r)
		}
		if len(res.AssertFailures) > 0 {
			t.Fatalf("seed %d: %v", seed, res.AssertFailures[0])
		}
	}
}

func TestCondVarProtocol(t *testing.T) {
	tool := newTool(Config{})
	prog := capi.Program{Name: "cond", Run: func(env capi.Env) {
		m := env.NewMutex("m")
		c := env.NewCond("c")
		q := env.NewLoc("q", 0)
		consumer := env.Spawn("consumer", func(env capi.Env) {
			env.Lock(m)
			for env.Read(q) == 0 {
				env.Wait(c, m)
			}
			env.Assert(env.Read(q) == 5, "consumed value")
			env.Write(q, 0)
			env.Unlock(m)
		})
		env.Lock(m)
		env.Write(q, 5)
		env.Signal(c)
		env.Unlock(m)
		env.Join(consumer)
	}}
	for seed := 0; seed < 200; seed++ {
		res := tool.Execute(prog, int64(seed))
		if res.Deadlocked {
			t.Fatalf("seed %d: deadlock", seed)
		}
		if len(res.Races) > 0 || len(res.AssertFailures) > 0 {
			t.Fatalf("seed %d: %v %v", seed, res.Races, res.AssertFailures)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	tool := newTool(Config{})
	prog := capi.Program{Name: "deadlock", Run: func(env capi.Env) {
		m1 := env.NewMutex("m1")
		m2 := env.NewMutex("m2")
		a := env.Spawn("A", func(env capi.Env) {
			env.Lock(m1)
			env.Yield()
			env.Lock(m2)
			env.Unlock(m2)
			env.Unlock(m1)
		})
		env.Lock(m2)
		env.Yield()
		env.Lock(m1)
		env.Unlock(m1)
		env.Unlock(m2)
		env.Join(a)
	}}
	deadlocks := 0
	for seed := 0; seed < 200; seed++ {
		if tool.Execute(prog, int64(seed)).Deadlocked {
			deadlocks++
		}
	}
	if deadlocks == 0 {
		t.Error("AB-BA locking never deadlocked under controlled scheduling")
	}
}

func TestTruncationGuard(t *testing.T) {
	tool := newTool(Config{MaxSteps: 1000})
	prog := capi.Program{Name: "spin", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		for {
			env.Load(x, rlx)
		}
	}}
	res := tool.Execute(prog, 1)
	if !res.Truncated {
		t.Fatal("runaway execution must be truncated")
	}
}

func TestMixedAtomicNonAtomicPromotion(t *testing.T) {
	// atomic_init style: a non-atomic initialisation read by atomics.
	tool := newTool(Config{})
	prog := capi.Program{Name: "mixed", Run: func(env capi.Env) {
		x := env.NewLoc("x", 3) // non-atomic init
		v := env.Load(x, rlx)   // atomic load must see the promoted store
		env.Assert(v == 3, "promoted init visible, got %d", v)
		env.Store(x, 4, rlx)
		env.Assert(env.Read(x) == 4, "plain read after atomic store")
	}}
	for seed := 0; seed < 50; seed++ {
		res := tool.Execute(prog, int64(seed))
		if len(res.AssertFailures) > 0 {
			t.Fatalf("seed %d: %v", seed, res.AssertFailures[0])
		}
		if len(res.Races) > 0 {
			t.Fatalf("seed %d: same-thread mixed access raced: %v", seed, res.Races[0])
		}
	}
}

func TestVolatileTreatedAsAtomic(t *testing.T) {
	// Volatile/volatile conflicts are not data races (C11Tester converts
	// volatiles to atomics and intentionally elides such reports, §8.2).
	tool := newTool(Config{})
	prog := capi.Program{Name: "volatile", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		a := env.Spawn("A", func(env capi.Env) { env.VolatileStore(x, 1) })
		env.VolatileLoad(x)
		env.Join(a)
	}}
	for seed := 0; seed < 50; seed++ {
		if res := tool.Execute(prog, int64(seed)); len(res.Races) > 0 {
			t.Fatalf("seed %d: volatile/volatile reported as race: %v", seed, res.Races[0])
		}
	}
}

func TestRaceDeduplicationAcrossExecutions(t *testing.T) {
	tool := newTool(Config{})
	prog := capi.Program{Name: "dedup", Run: func(env capi.Env) {
		d := env.NewLoc("data", 0)
		a := env.Spawn("A", func(env capi.Env) { env.Write(d, 1) })
		env.Write(d, 2)
		env.Join(a)
	}}
	newCount := 0
	for seed := 0; seed < 20; seed++ {
		newCount += len(tool.Execute(prog, int64(seed)).NewRaces)
	}
	if newCount == 0 {
		t.Fatal("race never reported")
	}
	if newCount > 2 {
		t.Errorf("race reported as new %d times; must be deduplicated across executions", newCount)
	}
}

func TestConservativePruningBoundsMemoryAndKeepsSemantics(t *testing.T) {
	model := NewC11Model()
	cfg := Config{Prune: PruneConservative, PruneInterval: 256}
	cfg.StoreBurst = true
	tool := New("c11tester", model, cfg)
	const iters = 4000
	prog := capi.Program{Name: "prune", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		ack := env.NewAtomic("ack", 0)
		a := env.Spawn("producer", func(env capi.Env) {
			for i := 1; i <= iters; i++ {
				env.Store(x, memmodel.Value(i), rel)
				// Synchronize with the consumer so CVmin advances.
				for env.Load(ack, acq) < memmodel.Value(i) {
					env.Yield()
				}
			}
		})
		last := memmodel.Value(0)
		for i := 1; i <= iters; i++ {
			v := env.Load(x, acq)
			env.Assert(v >= last, "coherence under pruning: %d after %d", v, last)
			last = v
			env.Store(ack, memmodel.Value(i), rel)
		}
		env.Join(a)
	}}
	res := tool.Execute(prog, 7)
	if len(res.AssertFailures) > 0 {
		t.Fatalf("%v", res.AssertFailures[0])
	}
	if res.Truncated {
		t.Fatal("truncated")
	}
	// Without pruning the location would hold ~4000 stores.
	for _, loc := range model.Locations() {
		if n := model.StoreCount(loc); n > 200 {
			t.Errorf("loc %d retains %d stores; pruning ineffective", loc, n)
		}
	}
}

func TestAggressivePruningKeepsCoherence(t *testing.T) {
	model := NewC11Model()
	cfg := Config{Prune: PruneAggressive, PruneInterval: 128, Window: 16}
	cfg.StoreBurst = true
	tool := New("c11tester", model, cfg)
	prog := capi.Program{Name: "prune-agg", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		a := env.Spawn("producer", func(env capi.Env) {
			for i := 1; i <= 2000; i++ {
				env.Store(x, memmodel.Value(i), rlx)
			}
		})
		last := memmodel.Value(0)
		for i := 0; i < 2000; i++ {
			v := env.Load(x, rlx)
			env.Assert(v >= last, "coherence under aggressive pruning: %d after %d", v, last)
			last = v
		}
		env.Join(a)
	}}
	res := tool.Execute(prog, 11)
	if len(res.AssertFailures) > 0 {
		t.Fatalf("%v", res.AssertFailures[0])
	}
	for _, loc := range model.Locations() {
		if n := model.StoreCount(loc); n > 120 {
			t.Errorf("loc %d retains %d stores; window not enforced", loc, n)
		}
	}
}

func TestOpStatsCounted(t *testing.T) {
	tool := newTool(Config{})
	prog := capi.Program{Name: "stats", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		d := env.NewLoc("d", 0)
		env.Store(x, 1, rlx)    // atomic
		env.Load(x, rlx)        // atomic
		env.FetchAdd(x, 1, rlx) // atomic
		env.Write(d, 1)         // normal
		env.Read(d)             // normal
	}}
	res := tool.Execute(prog, 1)
	// +1 atomic for the NewAtomic init store, +1 normal for NewLoc init.
	if res.Stats.AtomicOps != 4 {
		t.Errorf("atomic ops = %d, want 4", res.Stats.AtomicOps)
	}
	if res.Stats.NormalOps != 3 {
		t.Errorf("normal ops = %d, want 3", res.Stats.NormalOps)
	}
}
