package core

import (
	"fmt"

	"c11tester/internal/memmodel"
)

// InfeasibleError reports that the memory model reached a state it cannot
// extend: a load or RMW whose every may-read-from candidate fails the
// modification-order feasibility check, or a modification-order lifting that
// contains a cycle. Either condition is a model soundness bug — the paper's
// algorithm guarantees a feasible candidate always exists (Section 4.3) — so
// the error must surface loudly, but as data rather than a crashed worker:
// the model panics with an *InfeasibleError, Engine.Execute recovers it,
// unwinds the execution's threads, and returns it through
// capi.Result.EngineError, so a campaign records the failing (tool, program,
// seed) cell and keeps running the rest of its matrix.
type InfeasibleError struct {
	// Stage names the operation that failed: "load", "rmw", or "total-mo".
	Stage string
	// Loc is the location the operation was on.
	Loc memmodel.LocID
	// Detail is the human-readable condition.
	Detail string
}

// Error implements error.
func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("c11model: %s of loc %d infeasible: %s", e.Stage, e.Loc, e.Detail)
}

// RecoverInfeasible converts a panicking *InfeasibleError into a returned
// error and re-raises anything else. Callers that invoke model methods
// outside Engine.Execute — the trace recorder and the axiomatic validator
// both call TotalMO after the execution — use it to turn a lifting failure
// into a recordable result instead of a dead goroutine:
//
//	err := core.RecoverInfeasible(func() { ... mp.TotalMO(loc) ... })
func RecoverInfeasible(f func()) (err *InfeasibleError) {
	defer func() {
		if r := recover(); r != nil {
			ie, ok := r.(*InfeasibleError)
			if !ok {
				panic(r)
			}
			err = ie
		}
	}()
	f()
	return nil
}
