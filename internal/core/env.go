package core

import (
	"fmt"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
)

// env implements capi.Env for one thread: every method packages the request
// as an Op and parks the thread until the engine has executed it. This is
// the runtime half of the instrumentation boundary (Figure 1).
type env struct {
	e  *Engine
	ts *ThreadState
}

var _ capi.Env = (*env)(nil)

func (v *env) call(op *capi.Op) *capi.Op {
	v.ts.thr.Call(op)
	return op
}

func (v *env) TID() memmodel.TID { return v.ts.ID }

func (v *env) NewLoc(name string, init memmodel.Value) capi.Loc {
	op := v.call(&capi.Op{Kind: memmodel.KAlloc, NewName: name, Operand: init})
	return capi.Loc{ID: memmodel.LocID(op.Val)}
}

func (v *env) NewAtomic(name string, init memmodel.Value) capi.Loc {
	op := v.call(&capi.Op{Kind: memmodel.KAlloc, NewName: name, Operand: init, NewAtomic: true})
	return capi.Loc{ID: memmodel.LocID(op.Val)}
}

func (v *env) Load(l capi.Loc, mo memmodel.MemoryOrder) memmodel.Value {
	return v.call(&capi.Op{Kind: memmodel.KLoad, MO: mo, Loc: l.ID}).Val
}

func (v *env) Store(l capi.Loc, val memmodel.Value, mo memmodel.MemoryOrder) {
	v.call(&capi.Op{Kind: memmodel.KStore, MO: mo, Loc: l.ID, Operand: val})
}

func (v *env) FetchAdd(l capi.Loc, delta memmodel.Value, mo memmodel.MemoryOrder) memmodel.Value {
	return v.call(&capi.Op{Kind: memmodel.KRMW, MO: mo, Loc: l.ID, RMW: capi.RMWAdd, Operand: delta}).Val
}

func (v *env) Exchange(l capi.Loc, val memmodel.Value, mo memmodel.MemoryOrder) memmodel.Value {
	return v.call(&capi.Op{Kind: memmodel.KRMW, MO: mo, Loc: l.ID, RMW: capi.RMWExchange, Operand: val}).Val
}

func (v *env) CompareExchange(l capi.Loc, expected, desired memmodel.Value, succ, fail memmodel.MemoryOrder) (memmodel.Value, bool) {
	op := v.call(&capi.Op{
		Kind: memmodel.KRMW, MO: succ, FailMO: fail, Loc: l.ID,
		RMW: capi.RMWCas, Operand: desired, Expected: expected,
	})
	return op.Val, op.OK
}

func (v *env) Fence(mo memmodel.MemoryOrder) {
	v.call(&capi.Op{Kind: memmodel.KFence, MO: mo})
}

func (v *env) Read(l capi.Loc) memmodel.Value {
	return v.call(&capi.Op{Kind: memmodel.KNALoad, Loc: l.ID}).Val
}

func (v *env) Write(l capi.Loc, val memmodel.Value) {
	v.call(&capi.Op{Kind: memmodel.KNAStore, Loc: l.ID, Operand: val})
}

// VolatileLoad and VolatileStore model legacy pre-C11 atomics: C11Tester
// converts them to atomic accesses with a configurable memory order
// (Sections 7.2 and 8.2). Because they become atomics, volatile/volatile and
// volatile/atomic pairs are never reported as races — only volatile/plain
// conflicts are.
func (v *env) VolatileLoad(l capi.Loc) memmodel.Value {
	mo := memmodel.Relaxed
	if v.e.cfg.VolatileAcqRel {
		mo = memmodel.Acquire
	}
	return v.call(&capi.Op{Kind: memmodel.KLoad, MO: mo, Loc: l.ID, Volatile: true}).Val
}

func (v *env) VolatileStore(l capi.Loc, val memmodel.Value) {
	mo := memmodel.Relaxed
	if v.e.cfg.VolatileAcqRel {
		mo = memmodel.Release
	}
	v.call(&capi.Op{Kind: memmodel.KStore, MO: mo, Loc: l.ID, Operand: val, Volatile: true})
}

func (v *env) Spawn(name string, fn func(capi.Env)) capi.Thread {
	op := v.call(&capi.Op{Kind: memmodel.KThreadCreate, SpawnName: name, SpawnFn: fn})
	return capi.Thread{TID: memmodel.TID(op.Val)}
}

func (v *env) Join(t capi.Thread) {
	v.call(&capi.Op{Kind: memmodel.KThreadJoin, Target: t.TID})
}

func (v *env) Yield() {
	v.call(&capi.Op{Kind: memmodel.KYield})
}

func (v *env) NewMutex(name string) capi.Mutex {
	op := v.call(&capi.Op{Kind: memmodel.KAllocMutex, NewName: name})
	return capi.Mutex{ID: memmodel.LocID(op.Val)}
}

func (v *env) Lock(m capi.Mutex) {
	v.call(&capi.Op{Kind: memmodel.KMutexLock, Loc: m.ID})
}

func (v *env) TryLock(m capi.Mutex) bool {
	return v.call(&capi.Op{Kind: memmodel.KMutexTryLock, Loc: m.ID}).OK
}

func (v *env) Unlock(m capi.Mutex) {
	v.call(&capi.Op{Kind: memmodel.KMutexUnlock, Loc: m.ID})
}

func (v *env) NewCond(name string) capi.Cond {
	op := v.call(&capi.Op{Kind: memmodel.KAllocCond, NewName: name})
	return capi.Cond{ID: memmodel.LocID(op.Val)}
}

func (v *env) Wait(c capi.Cond, m capi.Mutex) {
	v.call(&capi.Op{Kind: memmodel.KCondWait, Loc: c.ID, Loc2: m.ID})
}

func (v *env) Signal(c capi.Cond) {
	v.call(&capi.Op{Kind: memmodel.KCondSignal, Loc: c.ID})
}

func (v *env) Broadcast(c capi.Cond) {
	v.call(&capi.Op{Kind: memmodel.KCondBroadcast, Loc: c.ID})
}

func (v *env) Assert(cond bool, format string, args ...any) {
	if cond {
		return
	}
	v.call(&capi.Op{Kind: memmodel.KAssert, AssertMsg: fmt.Sprintf(format, args...)})
}

// RandUint64 draws from the engine's per-execution source. Threads run one
// at a time and are totally ordered by the handoff channels, so the shared
// source is safe to use here without additional synchronization.
func (v *env) RandUint64() uint64 { return v.e.rng.Uint64() }
