package core

import (
	"fmt"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
)

// env implements capi.Env for one thread: every method packages the request
// as an Op and parks the thread until the engine has executed it. This is
// the runtime half of the instrumentation boundary (Figure 1).
//
// Each thread owns exactly one Op (the struct below), reused for every
// visible operation: a thread has at most one operation in flight — it parks
// until the engine replies — so the request fields can be overwritten once
// the previous call returned. prep zeroes the Op between uses so no stale
// request field leaks into the next operation. This removes the dominant
// per-operation allocation of the instrumentation boundary.
type env struct {
	e  *Engine
	ts *ThreadState
	op capi.Op
}

var _ capi.Env = (*env)(nil)

// prep resets the thread's reusable Op and returns it.
func (v *env) prep() *capi.Op {
	v.op = capi.Op{}
	return &v.op
}

func (v *env) call(op *capi.Op) *capi.Op {
	v.ts.thr.Call(op)
	return op
}

func (v *env) TID() memmodel.TID { return v.ts.ID }

func (v *env) NewLoc(name string, init memmodel.Value) capi.Loc {
	op := v.prep()
	op.Kind, op.NewName, op.Operand = memmodel.KAlloc, name, init
	return capi.Loc{ID: memmodel.LocID(v.call(op).Val)}
}

func (v *env) NewAtomic(name string, init memmodel.Value) capi.Loc {
	op := v.prep()
	op.Kind, op.NewName, op.Operand, op.NewAtomic = memmodel.KAlloc, name, init, true
	return capi.Loc{ID: memmodel.LocID(v.call(op).Val)}
}

func (v *env) Load(l capi.Loc, mo memmodel.MemoryOrder) memmodel.Value {
	op := v.prep()
	op.Kind, op.MO, op.Loc = memmodel.KLoad, mo, l.ID
	return v.call(op).Val
}

func (v *env) Store(l capi.Loc, val memmodel.Value, mo memmodel.MemoryOrder) {
	op := v.prep()
	op.Kind, op.MO, op.Loc, op.Operand = memmodel.KStore, mo, l.ID, val
	v.call(op)
}

func (v *env) FetchAdd(l capi.Loc, delta memmodel.Value, mo memmodel.MemoryOrder) memmodel.Value {
	op := v.prep()
	op.Kind, op.MO, op.Loc, op.RMW, op.Operand = memmodel.KRMW, mo, l.ID, capi.RMWAdd, delta
	return v.call(op).Val
}

func (v *env) Exchange(l capi.Loc, val memmodel.Value, mo memmodel.MemoryOrder) memmodel.Value {
	op := v.prep()
	op.Kind, op.MO, op.Loc, op.RMW, op.Operand = memmodel.KRMW, mo, l.ID, capi.RMWExchange, val
	return v.call(op).Val
}

func (v *env) CompareExchange(l capi.Loc, expected, desired memmodel.Value, succ, fail memmodel.MemoryOrder) (memmodel.Value, bool) {
	op := v.prep()
	op.Kind, op.MO, op.FailMO, op.Loc = memmodel.KRMW, succ, fail, l.ID
	op.RMW, op.Operand, op.Expected = capi.RMWCas, desired, expected
	v.call(op)
	return op.Val, op.OK
}

func (v *env) Fence(mo memmodel.MemoryOrder) {
	op := v.prep()
	op.Kind, op.MO = memmodel.KFence, mo
	v.call(op)
}

func (v *env) Read(l capi.Loc) memmodel.Value {
	op := v.prep()
	op.Kind, op.Loc = memmodel.KNALoad, l.ID
	return v.call(op).Val
}

func (v *env) Write(l capi.Loc, val memmodel.Value) {
	op := v.prep()
	op.Kind, op.Loc, op.Operand = memmodel.KNAStore, l.ID, val
	v.call(op)
}

// VolatileLoad and VolatileStore model legacy pre-C11 atomics: C11Tester
// converts them to atomic accesses with a configurable memory order
// (Sections 7.2 and 8.2). Because they become atomics, volatile/volatile and
// volatile/atomic pairs are never reported as races — only volatile/plain
// conflicts are.
func (v *env) VolatileLoad(l capi.Loc) memmodel.Value {
	mo := memmodel.Relaxed
	if v.e.cfg.VolatileAcqRel {
		mo = memmodel.Acquire
	}
	op := v.prep()
	op.Kind, op.MO, op.Loc, op.Volatile = memmodel.KLoad, mo, l.ID, true
	return v.call(op).Val
}

func (v *env) VolatileStore(l capi.Loc, val memmodel.Value) {
	mo := memmodel.Relaxed
	if v.e.cfg.VolatileAcqRel {
		mo = memmodel.Release
	}
	op := v.prep()
	op.Kind, op.MO, op.Loc, op.Operand, op.Volatile = memmodel.KStore, mo, l.ID, val, true
	v.call(op)
}

func (v *env) Spawn(name string, fn func(capi.Env)) capi.Thread {
	op := v.prep()
	op.Kind, op.SpawnName, op.SpawnFn = memmodel.KThreadCreate, name, fn
	return capi.Thread{TID: memmodel.TID(v.call(op).Val)}
}

func (v *env) Join(t capi.Thread) {
	op := v.prep()
	op.Kind, op.Target = memmodel.KThreadJoin, t.TID
	v.call(op)
}

func (v *env) Yield() {
	op := v.prep()
	op.Kind = memmodel.KYield
	v.call(op)
}

func (v *env) NewMutex(name string) capi.Mutex {
	op := v.prep()
	op.Kind, op.NewName = memmodel.KAllocMutex, name
	return capi.Mutex{ID: memmodel.LocID(v.call(op).Val)}
}

func (v *env) Lock(m capi.Mutex) {
	op := v.prep()
	op.Kind, op.Loc = memmodel.KMutexLock, m.ID
	v.call(op)
}

func (v *env) TryLock(m capi.Mutex) bool {
	op := v.prep()
	op.Kind, op.Loc = memmodel.KMutexTryLock, m.ID
	return v.call(op).OK
}

func (v *env) Unlock(m capi.Mutex) {
	op := v.prep()
	op.Kind, op.Loc = memmodel.KMutexUnlock, m.ID
	v.call(op)
}

func (v *env) NewCond(name string) capi.Cond {
	op := v.prep()
	op.Kind, op.NewName = memmodel.KAllocCond, name
	return capi.Cond{ID: memmodel.LocID(v.call(op).Val)}
}

func (v *env) Wait(c capi.Cond, m capi.Mutex) {
	op := v.prep()
	op.Kind, op.Loc, op.Loc2 = memmodel.KCondWait, c.ID, m.ID
	v.call(op)
}

func (v *env) Signal(c capi.Cond) {
	op := v.prep()
	op.Kind, op.Loc = memmodel.KCondSignal, c.ID
	v.call(op)
}

func (v *env) Broadcast(c capi.Cond) {
	op := v.prep()
	op.Kind, op.Loc = memmodel.KCondBroadcast, c.ID
	v.call(op)
}

func (v *env) Assert(cond bool, format string, args ...any) {
	if cond {
		return
	}
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	op := v.prep()
	op.Kind, op.AssertMsg = memmodel.KAssert, msg
	v.call(op)
}

// RandUint64 draws from the engine's per-execution source. Threads run one
// at a time and are totally ordered by the handoff channels, so the shared
// source is safe to use here without additional synchronization.
func (v *env) RandUint64() uint64 { return v.e.Rand().Uint64() }

// BeginAtomic and EndAtomic record block annotations directly on the engine
// without a dispatch Op: they have no memory-model or scheduling effect, so
// routing them through the scheduler would only perturb nothing at a handoff
// cost. Like RandUint64, direct engine access is safe because threads run one
// at a time, totally ordered by the handoff channels.
func (v *env) BeginAtomic(name string) { v.e.beginBlock(v.ts, name) }
func (v *env) EndAtomic()              { v.e.endBlock(v.ts) }
