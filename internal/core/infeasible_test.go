package core

import (
	"errors"
	"strings"
	"testing"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
)

// faultyModel wraps the real C11 model but panics with an InfeasibleError on
// the Nth atomic load, reproducing the failure mode of a model soundness bug
// mid-execution (the condition itself is unreachable through the real model,
// by the paper's Section 4.3 argument).
type faultyModel struct {
	*C11Model
	loads     int
	failLoad  int // 1-based load index to fail on; 0 disables
	armedOnly bool
}

func (m *faultyModel) AtomicLoad(t *ThreadState, op *capi.Op) memmodel.Value {
	m.loads++
	if m.failLoad > 0 && m.loads == m.failLoad {
		panic(&InfeasibleError{Stage: "load", Loc: op.Loc, Detail: "injected for test"})
	}
	return m.C11Model.AtomicLoad(t, op)
}

// crossLoadProg exercises loads from two threads, so the injected failure
// fires while another program thread is parked mid-execution.
var crossLoadProg = capi.Program{Name: "cross-load", Run: func(env capi.Env) {
	x := env.NewAtomic("x", 0)
	th := env.Spawn("reader", func(env capi.Env) {
		env.Load(x, memmodel.Acquire)
		env.Load(x, memmodel.Acquire)
	})
	env.Store(x, 1, memmodel.Release)
	env.Load(x, memmodel.Acquire)
	env.Join(th)
}}

func TestInfeasiblePanicIsRecoveredAndEngineStaysUsable(t *testing.T) {
	fm := &faultyModel{C11Model: NewC11Model(), failLoad: 2}
	eng := New("c11tester", fm, Config{StoreBurst: true})

	res := eng.Execute(crossLoadProg, 1)
	if res == nil || res.EngineError == nil {
		t.Fatalf("Execute with an infeasible model state returned %+v, want EngineError set", res)
	}
	var ie *InfeasibleError
	if !errors.As(res.EngineError, &ie) {
		t.Fatalf("EngineError = %v (%T), want *InfeasibleError", res.EngineError, res.EngineError)
	}
	if ie.Stage != "load" || !strings.Contains(ie.Error(), "infeasible") {
		t.Errorf("error = %v, want a load-stage infeasibility", ie)
	}

	// The same engine must run clean executions afterwards: the recovery
	// aborted the previous execution's threads, so the pooled scheduler and
	// arenas reset as usual.
	fm.failLoad = 0
	for seed := int64(2); seed < 12; seed++ {
		res := eng.Execute(crossLoadProg, seed)
		if res.EngineError != nil {
			t.Fatalf("seed %d: clean execution reported %v", seed, res.EngineError)
		}
		if res.Deadlocked || res.Truncated {
			t.Fatalf("seed %d: clean execution deadlocked=%v truncated=%v", seed, res.Deadlocked, res.Truncated)
		}
	}

	// And an infeasibility after clean runs is recovered again (pool reuse
	// does not mask the recovery path).
	fm.failLoad = 3
	fm.loads = 0
	if res := eng.Execute(crossLoadProg, 50); res.EngineError == nil {
		t.Fatal("re-armed infeasibility not reported")
	}
	fm.failLoad = 0
	if res := eng.Execute(crossLoadProg, 51); res.EngineError != nil {
		t.Fatalf("engine unusable after second recovery: %v", res.EngineError)
	}
}

func TestInfeasibleResultsMatchFreshEngineAfterRecovery(t *testing.T) {
	// Executions after a recovery on a pooled engine must be byte-identical
	// to a fresh engine's: the recovery path may not leak state into the
	// pools or arenas.
	fm := &faultyModel{C11Model: NewC11Model(), failLoad: 2}
	pooled := New("c11tester", fm, Config{StoreBurst: true})
	if res := pooled.Execute(crossLoadProg, 7); res.EngineError == nil {
		t.Fatal("injected infeasibility not reported")
	}
	fm.failLoad = 0

	for seed := int64(0); seed < 20; seed++ {
		fresh := newTool(Config{})
		want := fresh.Execute(crossLoadProg, seed)
		got := pooled.Execute(crossLoadProg, seed)
		if len(got.Races) != len(want.Races) || got.Stats != want.Stats ||
			got.Deadlocked != want.Deadlocked || got.Truncated != want.Truncated {
			t.Fatalf("seed %d: pooled-after-recovery result %+v != fresh %+v", seed, got, want)
		}
	}
}

func TestRecoverInfeasible(t *testing.T) {
	if err := RecoverInfeasible(func() {}); err != nil {
		t.Fatalf("clean call returned %v", err)
	}
	err := RecoverInfeasible(func() {
		panic(&InfeasibleError{Stage: "total-mo", Loc: 3, Detail: "cycle"})
	})
	if err == nil || err.Stage != "total-mo" {
		t.Fatalf("RecoverInfeasible = %v, want the panicked total-mo error", err)
	}
	// Other panics must propagate untouched.
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("foreign panic = %v, want boom", r)
		}
	}()
	_ = RecoverInfeasible(func() { panic("boom") })
}
