// Package core implements the C11Tester engine: the exploration loop of
// Figure 3, the operational semantics of Figure 11, and the surrounding
// runtime (race detection, scheduling, pruning, repeated execution).
//
// The engine is shared infrastructure: the memory-model-specific part — how
// an atomic operation picks the store it reads from and what bookkeeping it
// maintains — is behind the MemModel interface, so the tsan11/tsan11rec
// baselines (internal/baseline) reuse the same scheduler, clock machinery,
// race detector, and instrumentation plumbing, and differ only in the
// fragment of the memory model they admit. That mirrors the paper's framing:
// the tools are comparable because they test the same programs and differ in
// memory model and scheduling control.
package core

import (
	"fmt"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
	"c11tester/internal/rng"
	"c11tester/internal/sched"
)

// PruneMode selects the execution-graph memory limiter of Section 7.1.
type PruneMode uint8

const (
	// PruneOff never frees execution-graph state.
	PruneOff PruneMode = iota
	// PruneConservative frees only state that provably cannot influence any
	// future behaviour, preserving the full set of executions.
	PruneConservative
	// PruneAggressive keeps a bounded window of stores per location and may
	// reduce the set of producible executions.
	PruneAggressive
)

// Config configures an engine.
type Config struct {
	// Sched selects the handoff regime (see internal/sched).
	Sched sched.Config
	// Strategy plugs in the exploration strategy (Section 3's pluggable
	// framework). Nil means the default random strategy.
	Strategy Strategy
	// MaxSteps aborts executions that exceed this many visible operations
	// (livelock guard). 0 means the default of 4M.
	MaxSteps uint64
	// VolatileAcqRel maps volatile loads to acquire and volatile stores to
	// release instead of relaxed (the Silo experiment of Section 8.2).
	VolatileAcqRel bool
	// Prune selects the memory limiter mode.
	Prune PruneMode
	// PruneInterval is the number of visible operations between limiter
	// runs (default 4096).
	PruneInterval uint64
	// Window is the aggressive-mode per-location store window (default 64).
	Window int
	// Trace records the full execution for the axiomatic validator.
	Trace bool
	// StoreBurst enables the consecutive-store scheduling rule of Section 3
	// (on for C11Tester; the baselines do not have it).
	StoreBurst bool
	// RNG selects the random source backing the default strategy and the
	// workload RNG (Engine.Rand): rng.PCG (the default) or rng.Legacy. A
	// Strategy supplied explicitly carries its own source; this field still
	// governs Engine.Rand.
	RNG rng.Kind
}

func (c Config) withDefaults() Config {
	if c.MaxSteps == 0 {
		c.MaxSteps = 4 << 20
	}
	if c.PruneInterval == 0 {
		c.PruneInterval = 4096
	}
	if c.Window == 0 {
		c.Window = 64
	}
	if c.Strategy == nil {
		c.Strategy = NewRandomStrategyKind(c.RNG)
	}
	return c
}

// Strategy is the exploration plugin: it picks the next thread to run and
// makes the random choices of the memory model (which candidate store a load
// reads from). The default implements the paper's random strategy.
type Strategy interface {
	// Seed re-seeds the strategy for a new execution.
	Seed(seed int64)
	// PickThread selects the next thread among the schedulable ones.
	PickThread(ready []*ThreadState) *ThreadState
	// PickIndex selects an index in [0, n).
	PickIndex(n int) int
}

// PrefixedStrategy is the optional Strategy extension implemented by
// trace-guided wrappers (internal/trace.PrefixGuide): strategies that drive a
// recorded schedule prefix and then hand control to a live inner strategy.
// The engine's per-execution reset runs unconditionally before the strategy's
// first decision either way — a guided prefix must never observe recycled
// scheduler, action-arena, or mo-graph state from an earlier pooled
// execution — and campaign summaries read the handoff statistics through this
// interface after each guided execution.
type PrefixedStrategy interface {
	Strategy
	// Handoff reports the last execution's prefix statistics: the depth the
	// strategy intended to replay (in combined choices), how many recorded
	// choices were actually consumed before control passed to the live
	// strategy, and whether the prefix diverged (a recorded choice was not
	// takeable and forced an early handoff).
	Handoff() (depth, consumed int, diverged bool)
}

// RandomStrategy is the paper's default plugin: uniform random choices. The
// rng.Rand is embedded by value, so the decision buffer lives inline and
// re-seeding allocates nothing; all reseed mechanics (including the legacy
// source's in-place table reset) live in internal/rng.
type RandomStrategy struct{ rng rng.Rand }

// NewRandomStrategy returns a RandomStrategy on the default rng source.
func NewRandomStrategy() *RandomStrategy { return NewRandomStrategyKind(rng.PCG) }

// NewRandomStrategyKind returns a RandomStrategy drawing from the given rng
// source (-rng legacy campaigns reproduce pre-PCG decision streams).
func NewRandomStrategyKind(k rng.Kind) *RandomStrategy {
	s := &RandomStrategy{}
	s.rng.SetKind(k)
	s.rng.Seed(1)
	return s
}

// Seed implements Strategy.
func (s *RandomStrategy) Seed(seed int64) { s.rng.Seed(seed) }

// RNGKind implements rng.Kinded.
func (s *RandomStrategy) RNGKind() rng.Kind { return s.rng.Kind() }

// PickThread implements Strategy.
func (s *RandomStrategy) PickThread(ready []*ThreadState) *ThreadState {
	return ready[s.rng.Intn(len(ready))]
}

// PickIndex implements Strategy.
func (s *RandomStrategy) PickIndex(n int) int { return s.rng.Intn(n) }

// QuantumStrategy models an uncontrolled OS scheduler: it keeps running the
// same thread for a geometrically distributed quantum of visible operations
// before preempting to a random other thread. This is how the tsan11
// baseline, which does not control scheduling, is represented on the
// engine's sequentialized substrate (Section 8's single-core configuration).
type QuantumStrategy struct {
	rng       rng.Rand
	mean      int
	remaining int
	current   *ThreadState
}

// NewQuantumStrategy returns a QuantumStrategy with the given mean quantum,
// on the default rng source.
func NewQuantumStrategy(mean int) *QuantumStrategy {
	return NewQuantumStrategyKind(rng.PCG, mean)
}

// NewQuantumStrategyKind returns a QuantumStrategy drawing from the given
// rng source.
func NewQuantumStrategyKind(k rng.Kind, mean int) *QuantumStrategy {
	if mean < 1 {
		mean = 1
	}
	s := &QuantumStrategy{mean: mean}
	s.rng.SetKind(k)
	s.rng.Seed(1)
	return s
}

// Seed implements Strategy.
func (s *QuantumStrategy) Seed(seed int64) {
	s.rng.Seed(seed)
	s.current = nil
	s.remaining = 0
}

// RNGKind implements rng.Kinded.
func (s *QuantumStrategy) RNGKind() rng.Kind { return s.rng.Kind() }

// PickThread implements Strategy.
func (s *QuantumStrategy) PickThread(ready []*ThreadState) *ThreadState {
	if s.current != nil && s.remaining > 0 {
		for _, t := range ready {
			if t == s.current {
				s.remaining--
				return t
			}
		}
	}
	s.current = ready[s.rng.Intn(len(ready))]
	// Geometric quantum with the configured mean.
	s.remaining = 1
	for s.rng.Intn(s.mean) != 0 {
		s.remaining++
	}
	return s.current
}

// PickIndex implements Strategy.
func (s *QuantumStrategy) PickIndex(n int) int { return s.rng.Intn(n) }

// MemModel is the memory-model plugin point: the C11Tester model
// (constraint-based modification order, full hb∪sc∪rf-acyclic fragment)
// and the baseline commit-order models implement it.
type MemModel interface {
	// Begin resets the model's per-execution state.
	Begin(e *Engine)
	// AtomicLoad executes an atomic load and returns the value read.
	AtomicLoad(t *ThreadState, op *capi.Op) memmodel.Value
	// AtomicStore executes an atomic store.
	AtomicStore(t *ThreadState, op *capi.Op)
	// AtomicRMW executes a fetch-add, exchange, or compare-exchange. It
	// returns the value read and whether the write part happened (false for
	// a failed CAS).
	AtomicRMW(t *ThreadState, op *capi.Op) (old memmodel.Value, stored bool)
	// Fence executes an atomic fence.
	Fence(t *ThreadState, op *capi.Op)
	// PromoteNAStore informs the model that the most recent write to loc
	// was a non-atomic store by writer at the given epoch; the model must
	// make it visible to atomics (Section 7.2).
	PromoteNAStore(t *ThreadState, loc memmodel.LocID, writer memmodel.TID, epoch memmodel.SeqNum, v memmodel.Value)
	// Maintain runs periodic upkeep (the Section 7.1 memory limiter).
	Maintain(e *Engine)
}

// Engine runs programs under a MemModel with controlled scheduling. One
// Engine instance is one "tool" in the paper's sense: it persists state
// (race deduplication) across repeated executions (Section 7.6).
type Engine struct {
	cfg   Config
	name  string
	model MemModel

	// Persistent tool state across executions. seenRaces is keyed by a
	// comparable struct rather than RaceReport.Key()'s string so the
	// per-conflict dedup check never formats (and never allocates) on the
	// hot path.
	seenRaces map[raceKey]struct{}
	execIndex int

	// Per-execution state.
	sch     *sched.Scheduler
	threads []*ThreadState
	locs    []*locState
	mutexes []*mutexState
	conds   []*condState
	nextSeq memmodel.SeqNum
	scCount int
	// rng is the workload randomness source behind env.RandUint64, seeded
	// lazily (rngSeed/rngSeeded): most programs never draw from it, and
	// even the PCG source's O(1) reseed is work a program that never draws
	// does not need. The legacy source's ~5KB lagged-Fibonacci state lives
	// inside the rng.Rand and is still re-seeded in place when materialized.
	rng       rng.Rand
	rngSeed   int64
	rngSeeded bool
	result    *capi.Result
	steps     uint64
	choices   uint64 // strategy decisions (PickThread + PickIndex) this execution
	trace     []*Action
	burstT    *ThreadState // thread eligible for a store burst

	// measureWait mirrors sched.SetMeasureWait across scheduler rebuilds
	// (Close discards the scheduler; the next Execute makes a fresh one).
	measureWait bool

	// phases is the forensics phase timer (reset/run/race spans), opt-in via
	// SetPhaseTiming exactly like measureWait. It lives on the engine (not the
	// scheduler), so it needs no rebuild mirroring.
	phases PhaseTimer

	readyBuf []*ThreadState

	// Dispatch scratch: the race-conflict buffer handed to the shadow-word
	// checks (conflicts are copied into the result before the next dispatch)
	// and the synthetic Op backing NewAtomic's initializing store. Both are
	// reused so race-bearing operations and location creation allocate
	// nothing in steady state.
	confBuf []raceConflict
	initOp  capi.Op

	// State pools: locState, ThreadState, mutexState, and condState objects
	// (and their clock-vector buffers) are recycled across Execute calls of
	// one engine instance, so repeated executions inside a campaign shard do
	// not re-allocate the per-location and per-thread scaffolding (ROADMAP:
	// batch executions per tool instance to amortize engine allocation). Pool
	// entry i corresponds to locs[i] / threads[i] / mutexes[i] / conds[i];
	// entries are reset in place when reused.
	locPool    []*locState
	threadPool []*ThreadState
	mutexPool  []*mutexState
	condPool   []*condState

	// resultBuf is the engine-owned capi.Result recycled across Execute
	// calls; result always points at it. See the ownership rules on
	// capi.Result: a returned Result is valid until the engine's next
	// Execute, and consumers copy what they keep.
	resultBuf capi.Result

	// Execution-lifetime arenas: every Action and every per-action
	// clock-vector snapshot created during Execute dies at the next Execute's
	// reset (see NewAction for the lifetime rules). The scheduler is likewise
	// recycled via sched.Reset.
	actions actionArena
	cvs     memmodel.CVArena
}

// New returns an engine running the given memory model.
func New(name string, model MemModel, cfg Config) *Engine {
	return &Engine{
		cfg:       cfg.withDefaults(),
		name:      name,
		model:     model,
		seenRaces: map[raceKey]struct{}{},
	}
}

// Name implements capi.Tool.
func (e *Engine) Name() string { return e.name }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Model returns the engine's memory-model plugin.
func (e *Engine) Model() MemModel { return e.model }

// SetStrategy replaces the exploration strategy. The trace subsystem uses it
// to interpose recording and replay wrappers; it takes effect at the next
// strategy decision.
func (e *Engine) SetStrategy(s Strategy) {
	if s == nil {
		s = NewRandomStrategyKind(e.cfg.RNG)
	}
	e.cfg.Strategy = s
}

// SetTrace toggles trace recording for subsequent executions (the same
// switch as Config.Trace at construction time).
func (e *Engine) SetTrace(on bool) { e.cfg.Trace = on }

// FinalValues snapshots the last stored value of every shared location of
// the current (or last) execution, keyed by "name#id" (location names need
// not be unique). It must be read before the next Execute call.
func (e *Engine) FinalValues() map[string]memmodel.Value {
	out := make(map[string]memmodel.Value, len(e.locs))
	for _, l := range e.locs {
		if l != nil {
			out[fmt.Sprintf("%s#%d", l.name, l.id)] = l.naValue
		}
	}
	return out
}

// MOProvider is implemented by memory models that can produce a concrete
// per-location modification order for the last execution (the lifting of
// Section A.2). The C11 model implements it; the commit-order baselines keep
// only bounded histories and do not. The axiomatic validator and the trace
// recorder require it.
type MOProvider interface {
	Locations() []memmodel.LocID
	TotalMO(loc memmodel.LocID) []*Action
}

// Threads returns the threads of the current (or last) execution.
func (e *Engine) Threads() []*ThreadState { return e.threads }

// Trace returns the recorded execution when Config.Trace is set.
func (e *Engine) Trace() []*Action { return e.trace }

// Rand returns the engine's per-execution random source, materializing it on
// first use in the execution (the source is a pure function of the execution
// seed and Config.RNG either way).
func (e *Engine) Rand() *rng.Rand {
	if !e.rngSeeded {
		e.rng.SetKind(e.cfg.RNG)
		e.rng.Seed(e.rngSeed)
		e.rngSeeded = true
	}
	return &e.rng
}

// Strategy returns the engine's exploration strategy.
func (e *Engine) Strategy() Strategy { return e.cfg.Strategy }

// PickIndex routes a memory-model candidate choice (which store a load reads
// from, which position a commit order inserts at) through the strategy,
// counting it toward the execution's decision total. Memory models must make
// their random choices through it rather than calling the strategy directly,
// so ExecStats sees every decision.
func (e *Engine) PickIndex(n int) int {
	e.choices++
	return e.cfg.Strategy.PickIndex(n)
}

// ExecStats is the per-execution instrumentation snapshot behind the
// campaign's schedule-length, choices, and handoff-wait histograms.
type ExecStats struct {
	// Steps is the number of visible operations dispatched (the schedule
	// length of the execution).
	Steps uint64
	// Choices is the number of strategy decisions made: PickThread calls
	// plus PickIndex calls routed through Engine.PickIndex.
	Choices uint64
	// HandoffWaitNS is the total time the tool goroutine spent waiting for
	// program threads during scheduler handoffs; 0 unless SetHandoffTiming
	// enabled the measurement.
	HandoffWaitNS int64
	// PhaseNS is the per-phase wall time of the execution (indexed by Phase);
	// all zero unless SetPhaseTiming enabled the measurement. Only the
	// engine-bracketed phases (PhaseReset, PhaseRun, PhaseRace) are filled
	// here — PhaseValidate and PhaseRecord are campaign duties timed by the
	// campaign runner. PhaseRace is nested inside PhaseRun.
	PhaseNS [NumPhases]int64
}

// ExecStats returns the instrumentation counters of the current (or last)
// execution. Like Trace and FinalValues, it must be read before the next
// Execute call.
func (e *Engine) ExecStats() ExecStats {
	var wait int64
	if e.sch != nil {
		wait = e.sch.WaitNS()
	}
	return ExecStats{Steps: e.steps, Choices: e.choices, HandoffWaitNS: wait, PhaseNS: e.phases.Durations()}
}

// SetHandoffTiming toggles the scheduler's handoff-wait measurement for
// subsequent executions (see sched.SetMeasureWait). It costs two monotonic
// clock reads per visible operation and allocates nothing, so campaign
// telemetry leaves it on; raw perf sweeps keep it off.
func (e *Engine) SetHandoffTiming(on bool) {
	e.measureWait = on
	if e.sch != nil {
		e.sch.SetMeasureWait(on)
	}
}

// SetPhaseTiming toggles the forensics phase spans (PhaseTimer) for
// subsequent executions. Like handoff timing it is a handful of monotonic
// clock reads per execution plus two per race-bearing access, allocates
// nothing, and is left on by campaign telemetry while raw perf sweeps keep
// it off.
func (e *Engine) SetPhaseTiming(on bool) { e.phases.SetEnabled(on) }

// PhaseTiming reports whether phase spans are being measured.
func (e *Engine) PhaseTiming() bool { return e.phases.Enabled() }

// Execute implements capi.Tool: it runs one execution of p.
//
// Executing resets the engine's execution-lifetime arenas: every *Action,
// clock-vector snapshot, and mo-graph node of the previous execution is
// reclaimed here. Anything read from the engine after an execution (Trace,
// FinalValues, a model's TotalMO) must be consumed — or deep-copied, as the
// trace recorder does — before the next Execute call.
//
// If the memory model reaches an infeasible state mid-execution (see
// InfeasibleError), Execute recovers the panic, unwinds the execution's
// remaining threads through the scheduler, and returns the partial result
// with Result.EngineError set; the engine stays usable for further Execute
// calls. Any other panic propagates.
func (e *Engine) Execute(p capi.Program, seed int64) (res *capi.Result) {
	e.phases.Reset()
	e.phases.Begin(PhaseReset)
	e.resetExecState(seed)
	e.phases.End(PhaseReset)
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ie, ok := r.(*InfeasibleError)
		if !ok {
			panic(r)
		}
		// The panic unwound the exploration loop on this goroutine while the
		// program's threads are still parked awaiting a reply; Abort unwinds
		// them all, restoring the all-goroutines-finished state the next
		// resetExecState relies on.
		e.phases.End(PhaseRun)
		e.result.EngineError = ie
		e.sch.Abort()
		e.execIndex++
		res = e.result
	}()

	e.phases.Begin(PhaseRun)
	e.spawnThread("main", p.Run, nil)
	e.loop()
	e.phases.End(PhaseRun)

	e.execIndex++
	return e.result
}

// resetExecState resets every piece of per-execution state — scheduler,
// thread/location/mutex/cond pools, execution-lifetime arenas, RNG, strategy,
// and the model's own bookkeeping (mo-graph included, via Begin). It runs
// unconditionally at the top of every Execute: pooled engines, trace
// replayers, and guided prefix strategies (PrefixedStrategy) all rely on the
// next execution never observing recycled state from the previous one.
func (e *Engine) resetExecState(seed int64) {
	if e.sch == nil {
		e.sch = sched.New(e.cfg.Sched)
		e.sch.SetMeasureWait(e.measureWait)
	} else {
		e.sch.Reset()
	}
	e.threads = e.threads[:0]
	e.locs = e.locs[:0]
	e.locs = append(e.locs, nil) // LocID 0 is NoLoc
	e.mutexes = e.mutexes[:0]
	e.mutexes = append(e.mutexes, nil)
	e.conds = e.conds[:0]
	e.conds = append(e.conds, nil)
	e.nextSeq = 0
	e.scCount = 0
	e.steps = 0
	e.choices = 0
	e.trace = e.trace[:0]
	e.burstT = nil
	e.actions.reset()
	e.cvs.Reset()
	e.rngSeed = seed
	e.rngSeeded = false
	e.cfg.Strategy.Seed(seed)
	// The Result is recycled in place: its slices keep their capacity, so a
	// steady-state execution appends races and assertion failures without
	// allocating. The previous execution's Result contents die here — the
	// ownership rule consumers see on capi.Result.
	e.resultBuf.Reset()
	e.result = &e.resultBuf
	e.model.Begin(e)
}

// Close retires the engine's scheduler workers (see sched.Shutdown), so
// discarding a pooled engine does not leave parked goroutines behind in a
// long-lived process. Campaign runners close every tool instance when its
// unit of work completes. Close is idempotent; a later Execute transparently
// builds a fresh scheduler (and pool) again.
func (e *Engine) Close() {
	if e.sch != nil {
		e.sch.Shutdown()
		e.sch = nil
	}
}

// Workers returns the number of live pooled scheduler workers (0 before the
// first execution) and WorkerSpawns the number of goroutines the scheduler
// has ever started. The fiber-pool tests pin the tentpole invariant with
// them: spawns stop growing once the pool is warm, and retirements (panics)
// replace workers instead of leaking them.
func (e *Engine) Workers() int {
	if e.sch == nil {
		return 0
	}
	return e.sch.WorkerCount()
}

// WorkerSpawns returns the scheduler's lifetime goroutine-start count; see
// Workers.
func (e *Engine) WorkerSpawns() int {
	if e.sch == nil {
		return 0
	}
	return e.sch.Spawns()
}

// spawnThread creates a model thread. parent is nil for the main thread;
// otherwise the child inherits the parent's clock (the asw edge of the
// paper's lifting, Section A.2). ThreadState objects are recycled from the
// engine's pool across executions; all thread bindings of the previous
// execution have settled by the time Execute reuses them. The sched binding
// is the ThreadState's cached runBody method value — re-binding a pooled
// thread to a new fn allocates nothing.
func (e *Engine) spawnThread(name string, fn func(capi.Env), parent *ThreadState) *ThreadState {
	idx := len(e.threads)
	var ts *ThreadState
	if idx < len(e.threadPool) {
		ts = e.threadPool[idx]
		ts.reset(name, idx+1)
	} else {
		ts = &ThreadState{
			Name: name,
			C:    memmodel.NewClockVector(idx + 1),
		}
		ts.bodyFn = ts.runBody
		e.threadPool = append(e.threadPool, ts)
	}
	ts.eng = e
	ts.envv = env{e: e, ts: ts}
	ts.fn = fn
	if parent != nil {
		ts.C.Merge(parent.C)
	}
	// The handle must be wired up inside the body (runBody): the thread runs
	// to its first operation before NewThread returns.
	e.sch.NewThread(name, ts.bodyFn)
	ts.thr = e.sch.Threads()[len(e.sch.Threads())-1]
	ts.ID = ts.thr.ID
	e.threads = append(e.threads, ts)
	if ts.thr.State() == sched.Finished {
		e.finishThread(ts)
	}
	return ts
}

// loop is the Explore procedure of Figure 3: while threads are enabled,
// select one, select its operation's behaviour, and execute it.
func (e *Engine) loop() {
	for {
		// Store-burst rule (Section 3): consecutive relaxed/release stores
		// by the same thread execute without a scheduling decision.
		var t *ThreadState
		if e.cfg.StoreBurst && e.burstT != nil && e.schedulable(e.burstT) && isBurstableStore(e.burstT.thr.Pending()) {
			t = e.burstT
		} else {
			ready := e.readyBuf[:0]
			for _, ts := range e.threads {
				if e.schedulable(ts) {
					ready = append(ready, ts)
				}
			}
			e.readyBuf = ready
			if len(ready) == 0 {
				if e.sch.AliveCount() == 0 {
					return
				}
				e.result.Deadlocked = true
				e.sch.Abort()
				return
			}
			t = e.cfg.Strategy.PickThread(ready)
			e.choices++
		}
		e.dispatch(t)
		e.steps++
		if e.steps >= e.cfg.MaxSteps {
			e.result.Truncated = true
			e.sch.Abort()
			return
		}
		if e.cfg.Prune != PruneOff && e.steps%e.cfg.PruneInterval == 0 {
			e.model.Maintain(e)
		}
	}
}

func (e *Engine) schedulable(ts *ThreadState) bool {
	if ts.finished {
		return false
	}
	switch ts.thr.State() {
	case sched.Ready:
		return true
	case sched.Blocked:
		return ts.woken
	}
	return false
}

func isBurstableStore(op *capi.Op) bool {
	return op != nil && op.Kind == memmodel.KStore &&
		(op.MO == memmodel.Relaxed || op.MO == memmodel.Release)
}

// assignSeq gives the current operation of ts its event sequence number and
// advances the thread's clock (a thread's own clock entry is the sequence
// number of its latest event, Section 4.2).
func (e *Engine) assignSeq(ts *ThreadState) memmodel.SeqNum {
	e.nextSeq++
	ts.opSeq = e.nextSeq
	ts.C.Set(ts.ID, e.nextSeq)
	return e.nextSeq
}

// nextSCIndex allocates the next position in the seq_cst total order.
func (e *Engine) nextSCIndex() int {
	e.scCount++
	return e.scCount - 1
}

// complete replies to ts, letting it run to its next operation, and handles
// thread termination.
func (e *Engine) complete(ts *ThreadState) {
	ts.woken = false
	if e.sch.Reply(ts.thr) == sched.Finished {
		e.finishThread(ts)
	}
}

// block suspends ts on its current operation; it stays suspended until a
// wake marks it schedulable again, at which point the operation is
// re-dispatched.
func (e *Engine) block(ts *ThreadState) {
	if ts.thr.State() == sched.Ready {
		e.sch.Block(ts.thr)
	}
	ts.woken = false
	e.burstT = nil
}

func (e *Engine) finishThread(ts *ThreadState) {
	ts.finished = true
	if ts.thr.PanicValue != nil {
		e.result.AssertFailures = append(e.result.AssertFailures, capi.AssertFailure{
			TID:       ts.ID,
			Message:   fmt.Sprintf("panic in thread %q: %v", ts.Name, ts.thr.PanicValue),
			Execution: e.execIndex,
		})
	}
	// Wake joiners; their join ops re-dispatch and now succeed.
	for _, w := range e.threads {
		if !w.finished && w.thr.State() == sched.Blocked {
			if op := w.thr.Pending(); op != nil && op.Kind == memmodel.KThreadJoin && op.Target == ts.ID {
				w.woken = true
			}
		}
	}
	if e.cfg.Trace {
		a := e.NewAction()
		a.Seq, a.TID, a.Kind = e.nextSeqPeek(), ts.ID, memmodel.KThreadFinish
		e.trace = append(e.trace, a)
	}
}

func (e *Engine) nextSeqPeek() memmodel.SeqNum {
	e.nextSeq++
	return e.nextSeq
}

// beginBlock opens a BeginAtomic block on ts: the span covers every action
// whose sequence number is assigned from here on (the next assignSeq yields
// nextSeq+1), until the matching endBlock. Annotations are engine-local
// bookkeeping, not visible operations — no Action, no scheduling decision —
// so annotated and unannotated programs produce identical executions.
func (e *Engine) beginBlock(ts *ThreadState, name string) {
	e.result.Blocks = append(e.result.Blocks, capi.BlockSpan{
		TID: ts.ID, Name: name, Begin: e.nextSeq + 1,
	})
}

// endBlock closes ts's innermost open block: actions numbered strictly below
// nextSeq+1 (i.e. everything executed since the matching beginBlock) are in
// the span. An EndAtomic with no open block is ignored — a harmless
// annotation bug, not an execution error.
func (e *Engine) endBlock(ts *ThreadState) {
	blocks := e.result.Blocks
	for i := len(blocks) - 1; i >= 0; i-- {
		if blocks[i].TID == ts.ID && blocks[i].End == 0 {
			blocks[i].End = e.nextSeq + 1
			return
		}
	}
}

// NewAction allocates an Action from the engine's execution-lifetime arena,
// zeroed except for SCIdx, which is -1 (not in the seq_cst order). Memory
// model plugins must create every per-execution Action through it.
//
// Lifetime rules: an arena Action is valid until the engine's next Execute
// call. It must never be stored anywhere that outlives the execution —
// results, summaries, and serialized traces copy the fields they keep (see
// internal/trace.Record). The README's "Performance" section documents the
// contract for external consumers.
func (e *Engine) NewAction() *Action { return e.actions.alloc() }

// CloneCV returns an arena-backed copy of cv, for per-action clock-vector
// snapshots (RFCV, CVSnap) that die with the execution. The same lifetime
// rules as NewAction apply. A nil cv yields the empty clock.
func (e *Engine) CloneCV(cv *memmodel.ClockVector) *memmodel.ClockVector {
	return e.cvs.CloneOf(cv)
}

// ActionCount returns the number of Actions allocated in the current (or
// last) execution; tests use it to pin the arena's steady-state behaviour.
func (e *Engine) ActionCount() int { return e.actions.len() }

// loc returns the location state for id.
func (e *Engine) loc(id memmodel.LocID) *locState { return e.locs[id] }

// newLocState returns a reset locState for id, recycled from the engine's
// pool when a previous execution already allocated one at this slot. The
// reset is field-wise: zeroing the struct would discard the race-detector
// shadow's spilled record, re-allocating it on the next expansion.
func (e *Engine) newLocState(id memmodel.LocID, name string) *locState {
	for len(e.locPool) <= int(id) {
		e.locPool = append(e.locPool, nil)
	}
	l := e.locPool[id]
	if l == nil {
		l = &locState{}
		e.locPool[id] = l
	}
	l.id = id
	l.name = name
	l.naValue = 0
	l.promoted = false
	l.shadow.Reset()
	return l
}

// newMutexState returns a reset mutexState for id, recycled from the
// engine's pool when a previous execution already allocated one at this slot.
func (e *Engine) newMutexState(id memmodel.LocID, name string) *mutexState {
	for len(e.mutexPool) <= int(id) {
		e.mutexPool = append(e.mutexPool, nil)
	}
	m := e.mutexPool[id]
	if m == nil {
		m = &mutexState{}
		e.mutexPool[id] = m
	}
	m.reset(id, name)
	return m
}

// newCondState returns a reset condState for id, recycled from the engine's
// pool when a previous execution already allocated one at this slot.
func (e *Engine) newCondState(id memmodel.LocID, name string) *condState {
	for len(e.condPool) <= int(id) {
		e.condPool = append(e.condPool, nil)
	}
	c := e.condPool[id]
	if c == nil {
		c = &condState{}
		e.condPool[id] = c
	}
	c.reset(id, name)
	return c
}

// LocName returns the name a location was created with.
func (e *Engine) LocName(id memmodel.LocID) string {
	if int(id) < len(e.locs) && e.locs[id] != nil {
		return e.locs[id].name
	}
	return fmt.Sprintf("loc#%d", id)
}

// raceKey is the comparable form of capi.RaceReport.Key(): the cross-
// execution race identity (location name, access-kind pair). Using a struct
// map key keeps the per-conflict dedup lookup allocation-free.
type raceKey struct {
	loc         string
	prior, kind memmodel.Kind
}

// reportConflicts converts race-detector conflicts on loc into reports,
// deduplicating across executions (Section 7.6: races are reported once).
func (e *Engine) reportConflicts(ts *ThreadState, l *locState, kind memmodel.Kind, conflicts []raceConflict) {
	for _, c := range conflicts {
		priorKind := memmodel.KNALoad
		if c.PriorWrite {
			priorKind = memmodel.KNAStore
		}
		if !c.PriorNA {
			priorKind = memmodel.KLoad
			if c.PriorWrite {
				priorKind = memmodel.KStore
			}
		}
		r := capi.RaceReport{
			LocName:   l.name,
			PriorKind: priorKind,
			Kind:      kind,
			PriorTID:  c.PriorTID,
			TID:       ts.ID,
			Execution: e.execIndex,
		}
		e.result.Races = append(e.result.Races, r)
		k := raceKey{loc: l.name, prior: priorKind, kind: kind}
		if _, seen := e.seenRaces[k]; !seen {
			e.seenRaces[k] = struct{}{}
			e.result.NewRaces = append(e.result.NewRaces, r)
		}
	}
}
