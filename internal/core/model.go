package core

import (
	"fmt"
	"sort"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
	"c11tester/internal/mograph"
)

// aloc is the memory model's bookkeeping for one atomic location: the
// per-thread lists of memory accesses the paper maintains to evaluate the
// modification-order implications (Section 4.1) and the prior-set
// procedures (Figure 13).
type aloc struct {
	id memmodel.LocID
	// storesBy[t] lists the stores/RMWs (and promoted non-atomic stores) by
	// thread t in sequenced-before order.
	storesBy [][]*Action
	// accessesBy[t] lists loads and stores by thread t (loads_stores).
	accessesBy [][]*Action
	// scStoresBy[t] lists thread t's seq_cst stores (sc_stores).
	scStoresBy  [][]*Action
	lastSCStore *Action
	storeCount  int
}

func (al *aloc) stores(t memmodel.TID) []*Action {
	if int(t) < len(al.storesBy) {
		return al.storesBy[t]
	}
	return nil
}

func (al *aloc) accesses(t memmodel.TID) []*Action {
	if int(t) < len(al.accessesBy) {
		return al.accessesBy[t]
	}
	return nil
}

func (al *aloc) scStores(t memmodel.TID) []*Action {
	if int(t) < len(al.scStoresBy) {
		return al.scStoresBy[t]
	}
	return nil
}

func grow(lists [][]*Action, t memmodel.TID) [][]*Action {
	for len(lists) <= int(t) {
		lists = append(lists, nil)
	}
	return lists
}

func (al *aloc) appendStore(a *Action) {
	al.storesBy = grow(al.storesBy, a.TID)
	al.storesBy[a.TID] = append(al.storesBy[a.TID], a)
	al.accessesBy = grow(al.accessesBy, a.TID)
	al.accessesBy[a.TID] = append(al.accessesBy[a.TID], a)
	if a.IsSC() {
		al.scStoresBy = grow(al.scStoresBy, a.TID)
		al.scStoresBy[a.TID] = append(al.scStoresBy[a.TID], a)
		al.lastSCStore = a
	}
	al.storeCount++
}

func (al *aloc) appendLoad(a *Action) {
	al.accessesBy = grow(al.accessesBy, a.TID)
	al.accessesBy[a.TID] = append(al.accessesBy[a.TID], a)
}

// reset recycles a pooled aloc for a new execution: the outer per-thread
// slices keep their length and the inner lists keep their capacity, so the
// steady state re-allocates neither.
func (al *aloc) reset(id memmodel.LocID) {
	al.id = id
	for i := range al.storesBy {
		al.storesBy[i] = al.storesBy[i][:0]
	}
	for i := range al.accessesBy {
		al.accessesBy[i] = al.accessesBy[i][:0]
	}
	for i := range al.scStoresBy {
		al.scStoresBy[i] = al.scStoresBy[i][:0]
	}
	al.lastSCStore = nil
	al.storeCount = 0
}

// C11Model is the paper's memory model: the fragment of C/C++11 with the
// C++20 release-sequence definition, consume strengthened to acquire, and
// hb ∪ sc ∪ rf acyclic (Section 2.2), with modification order maintained as
// a constraint graph (Section 4).
type C11Model struct {
	e     *Engine
	g     *mograph.Graph
	alocs []*aloc

	// alocPool recycles aloc bookkeeping (with its per-thread slice
	// capacity) across executions; entry i serves LocID i.
	alocPool []*aloc

	// Scratch buffers for the per-operation hot path: the may-read-from
	// candidate set and the read/write prior sets of Figure 13. Their
	// lifetimes never overlap with a second use of the same buffer (cands is
	// live across prior-set computation, and the read and write prior sets
	// can be live at once inside AtomicRMW, hence three distinct buffers).
	candBuf []*Action
	priRBuf []*Action
	priWBuf []*Action
}

// NewC11Model returns the C11Tester memory model.
func NewC11Model() *C11Model { return &C11Model{} }

// Graph exposes the modification order graph (stats, validation, ablation).
func (m *C11Model) Graph() *mograph.Graph { return m.g }

// Begin implements MemModel. The modification-order graph and the per-location
// bookkeeping are recycled across executions rather than re-allocated.
func (m *C11Model) Begin(e *Engine) {
	m.e = e
	if m.g == nil {
		m.g = mograph.New()
	} else {
		m.g.Reset()
	}
	m.alocs = m.alocs[:0]
}

func (m *C11Model) aloc(id memmodel.LocID) *aloc {
	for len(m.alocs) <= int(id) {
		m.alocs = append(m.alocs, nil)
	}
	if m.alocs[id] == nil {
		for len(m.alocPool) <= int(id) {
			m.alocPool = append(m.alocPool, nil)
		}
		al := m.alocPool[id]
		if al == nil {
			al = &aloc{}
			m.alocPool[id] = al
		}
		al.reset(id)
		m.alocs[id] = al
	}
	return m.alocs[id]
}

// ApplyLoadClocks implements the [ACQUIRE LOAD] and [RELAXED LOAD] rules of
// Figure 9: an acquire load merges the store's reads-from clock into the
// thread clock; a relaxed load banks it in the acquire-fence clock. It is
// exported because the baseline memory models use the same happens-before
// machinery (both tsan11 variants implement C11 release/acquire clocks).
func ApplyLoadClocks(t *ThreadState, mo memmodel.MemoryOrder, rf *Action) {
	if rf.RFCV == nil {
		return // promoted non-atomic store: carries no release sequence
	}
	if mo.IsAcquire() {
		t.C.Merge(rf.RFCV)
	} else {
		t.acqFence().Merge(rf.RFCV)
	}
}

// ApplyFenceClocks implements the [ACQUIRE FENCE] / [RELEASE FENCE] rules of
// Figure 9: an acquire fence merges the banked acquire-fence clock into the
// thread clock; a release fence snapshots the thread clock into the
// release-fence clock. Shared by the C11 model and the baselines (their
// happens-before machinery is identical, Section 8's comparability premise).
func ApplyFenceClocks(t *ThreadState, mo memmodel.MemoryOrder) {
	if mo.IsAcquire() {
		t.C.Merge(t.facq) // Merge tolerates a nil (never-materialized) clock
	}
	if mo.IsRelease() {
		t.relFence().CopyFrom(t.C)
	}
}

// StoreRFCV implements [RELEASE STORE] / [RELAXED STORE]: a release store's
// reads-from clock is the thread clock; a relaxed store inherits the
// release-fence clock (fences turn later relaxed stores into releases). The
// snapshot is drawn from the engine's execution-lifetime clock arena.
func StoreRFCV(t *ThreadState, mo memmodel.MemoryOrder) *memmodel.ClockVector {
	if mo.IsRelease() {
		return t.eng.CloneCV(t.C)
	}
	return t.eng.CloneCV(t.frel) // CloneOf(nil) yields the empty clock
}

// chainEnd follows rmw edges to the end of a node's RMW chain; edges added
// "to" a store land after its RMW chain (Figure 6), so feasibility checks
// must test reachability of the chain end.
func chainEnd(n *mograph.Node) *mograph.Node {
	for n.RMW() != nil {
		n = n.RMW()
	}
	return n
}

// AtomicStore implements MemModel ([ATOMIC STORE] of Figure 11).
func (m *C11Model) AtomicStore(t *ThreadState, op *capi.Op) {
	al := m.aloc(op.Loc)
	act := m.e.NewAction()
	act.Seq, act.TID, act.Kind, act.MO = t.opSeq, t.ID, memmodel.KStore, op.MO
	act.Loc, act.Value = op.Loc, op.Operand
	if op.MO.IsSeqCst() {
		act.SCIdx = m.e.nextSCIndex()
		act.CVSnap = m.e.CloneCV(t.C)
	}
	pset := m.writePriorSet(t, al, act.MO.IsSeqCst())
	act.RFCV = StoreRFCV(t, op.MO)
	act.Node = m.g.NewNode(t.ID, act.Seq, op.Loc)
	m.addEdges(pset, act.Node)
	al.appendStore(act)
	m.e.TraceAppend(act)
}

// AtomicLoad implements MemModel ([ATOMIC LOAD] of Figure 11): build the
// may-read-from set, pick candidates until one passes the modification-order
// feasibility check, then commit the reads-from edge.
func (m *C11Model) AtomicLoad(t *ThreadState, op *capi.Op) memmodel.Value {
	al := m.aloc(op.Loc)
	cands := m.mayReadFrom(t, al, op.MO, false)
	for len(cands) > 0 {
		i := m.e.PickIndex(len(cands))
		s := cands[i]
		pset, ok := m.readPriorSet(t, al, op.MO.IsSeqCst(), s)
		if !ok {
			cands[i] = cands[len(cands)-1]
			cands = cands[:len(cands)-1]
			continue
		}
		act := m.e.NewAction()
		act.Seq, act.TID, act.Kind, act.MO = t.opSeq, t.ID, memmodel.KLoad, op.MO
		act.Loc, act.Value, act.RF = op.Loc, s.Value, s
		if op.MO.IsSeqCst() {
			act.SCIdx = m.e.nextSCIndex()
		}
		m.addEdges(pset, s.Node)
		ApplyLoadClocks(t, op.MO, s)
		al.appendLoad(act)
		m.e.TraceAppend(act)
		return s.Value
	}
	panic(&InfeasibleError{Stage: "load", Loc: op.Loc, Detail: "no feasible store in the may-read-from set"})
}

// AtomicRMW implements MemModel ([ATOMIC RMW] of Figure 11). A failed
// compare-exchange degrades to a load with the failure memory order.
func (m *C11Model) AtomicRMW(t *ThreadState, op *capi.Op) (memmodel.Value, bool) {
	al := m.aloc(op.Loc)
	isCAS := op.RMW == capi.RMWCas
	cands := m.mayReadFrom(t, al, op.MO, !isCAS)
	for len(cands) > 0 {
		i := m.e.PickIndex(len(cands))
		s := cands[i]
		matches := !isCAS || s.Value == op.Expected
		drop := func() {
			cands[i] = cands[len(cands)-1]
			cands = cands[:len(cands)-1]
		}
		if isCAS && matches && s.RMWReader != nil {
			// A store already consumed by an RMW cannot be read by a
			// successful strong CAS, and reading it with the matching value
			// and failing would be a spurious failure.
			drop()
			continue
		}
		mo := op.MO
		if isCAS && !matches {
			mo = op.FailMO
		}
		pset, ok := m.readPriorSet(t, al, mo.IsSeqCst(), s)
		if !ok {
			drop()
			continue
		}
		if isCAS && !matches {
			// Failure path: a pure load.
			act := m.e.NewAction()
			act.Seq, act.TID, act.Kind, act.MO = t.opSeq, t.ID, memmodel.KLoad, mo
			act.Loc, act.Value, act.RF = op.Loc, s.Value, s
			if mo.IsSeqCst() {
				act.SCIdx = m.e.nextSCIndex()
			}
			m.addEdges(pset, s.Node)
			ApplyLoadClocks(t, mo, s)
			al.appendLoad(act)
			m.e.TraceAppend(act)
			return s.Value, false
		}
		// Defensive feasibility check for the write part: the store rule
		// will add edges from the write prior set into the RMW node, which
		// after migration also carries the read store's outgoing edges.
		// Reject the candidate if such an edge would close a cycle (the
		// paper's pseudocode only checks the read prior set).
		if !m.rmwWriteFeasible(t, al, op.MO.IsSeqCst(), s) {
			drop()
			continue
		}
		act := m.e.NewAction()
		act.Seq, act.TID, act.Kind, act.MO = t.opSeq, t.ID, memmodel.KRMW, op.MO
		act.Loc, act.Value, act.RF = op.Loc, rmwNewValue(op, s.Value), s
		ApplyLoadClocks(t, op.MO, s)
		if op.MO.IsSeqCst() {
			act.SCIdx = m.e.nextSCIndex()
			act.CVSnap = m.e.CloneCV(t.C)
		}
		// [RELEASE RMW] / [RELAXED RMW]: the RMW continues every release
		// sequence the store it reads from is part of.
		act.RFCV = StoreRFCV(t, op.MO)
		act.RFCV.Merge(s.RFCV)
		act.Node = m.g.NewNode(t.ID, act.Seq, op.Loc)
		m.addEdges(pset, s.Node)
		m.g.AddRMWEdge(s.Node, act.Node)
		wpset := m.writePriorSet(t, al, op.MO.IsSeqCst())
		m.addEdges(wpset, act.Node)
		s.RMWReader = act
		al.appendStore(act)
		m.e.TraceAppend(act)
		return s.Value, true
	}
	panic(&InfeasibleError{Stage: "rmw", Loc: op.Loc, Detail: "no feasible store in the may-read-from set"})
}

// Fence implements MemModel ([ACQUIRE FENCE] / [RELEASE FENCE] of Figure 9;
// seq_cst fences additionally enter the SC order and the per-thread fence
// lists consumed by the Figure 13 prior-set procedures).
func (m *C11Model) Fence(t *ThreadState, op *capi.Op) {
	ApplyFenceClocks(t, op.MO)
	if op.MO.IsSeqCst() {
		act := m.e.NewAction()
		act.Seq, act.TID, act.Kind, act.MO = t.opSeq, t.ID, memmodel.KFence, op.MO
		act.SCIdx = m.e.nextSCIndex()
		t.SCFences = append(t.SCFences, act)
		m.e.TraceAppend(act)
	}
}

// PromoteNAStore implements MemModel (Section 7.2): the latest non-atomic
// store to loc becomes visible to the atomic machinery as a relaxed store by
// its original writer at its original epoch. Only the writer's intra-thread
// coherence edges are added; cross-thread ordering against a historical
// plain store cannot be reconstructed (the racing accesses themselves are
// reported by the race detector).
func (m *C11Model) PromoteNAStore(t *ThreadState, loc memmodel.LocID, writer memmodel.TID, epoch memmodel.SeqNum, v memmodel.Value) {
	al := m.aloc(loc)
	act := m.e.NewAction()
	act.Seq, act.TID, act.Kind, act.MO = epoch, writer, memmodel.KNAStore, memmodel.Relaxed
	act.Loc, act.Value = loc, v
	act.Node = m.g.NewNode(writer, epoch, loc)
	al.storesBy = grow(al.storesBy, writer)
	al.accessesBy = grow(al.accessesBy, writer)
	insertSorted := func(list []*Action) ([]*Action, int) {
		i := sort.Search(len(list), func(k int) bool { return list[k].Seq > epoch })
		list = append(list, nil)
		copy(list[i+1:], list[i:])
		list[i] = act
		return list, i
	}
	var i int
	al.storesBy[writer], i = insertSorted(al.storesBy[writer])
	if i > 0 {
		m.g.AddEdge(al.storesBy[writer][i-1].Node, act.Node)
	}
	if i+1 < len(al.storesBy[writer]) {
		m.g.AddEdge(act.Node, chainStart(al.storesBy[writer][i+1]).Node)
	}
	al.accessesBy[writer], _ = insertSorted(al.accessesBy[writer])
	al.storeCount++
	m.e.TraceAppend(act)
}

// chainStart is the identity today but documents that the successor edge of
// a promoted store targets the store itself; AddEdge handles any RMW chain.
func chainStart(a *Action) *Action { return a }

// addEdges adds modification-order edges from each prior action's node to
// dst (Figure 7's AddEdges).
func (m *C11Model) addEdges(pset []*Action, dst *mograph.Node) {
	for _, a := range pset {
		if a.Node != dst {
			m.g.AddEdge(a.Node, dst)
		}
	}
}

// mayReadFrom builds the may-read-from set of Figure 12 for the current
// operation of thread t at al. The returned slice aliases the model's scratch
// buffer: it is valid until the next mayReadFrom call (callers shrink it in
// place while picking candidates, which is fine — calls never nest).
func (m *C11Model) mayReadFrom(t *ThreadState, al *aloc, mo memmodel.MemoryOrder, forRMW bool) []*Action {
	isSC := mo.IsSeqCst()
	var lastSC *Action
	if isSC {
		lastSC = al.lastSCStore
	}
	ret := m.candBuf[:0]
	for tid := range al.storesBy {
		stores := al.storesBy[tid]
		if len(stores) == 0 {
			continue
		}
		// Stores that happen before the load form a prefix of the thread's
		// list; only the last of them remains readable (line 8).
		start := -1
		for i := len(stores) - 1; i >= 0; i-- {
			if t.C.Synchronized(stores[i].TID, stores[i].Seq) {
				start = i
				break
			}
		}
		if start < 0 {
			start = 0
		}
		for i := start; i < len(stores); i++ {
			x := stores[i]
			if forRMW && x.RMWReader != nil {
				continue // no two RMWs read the same store (line 15)
			}
			if isSC && lastSC != nil && x != lastSC {
				// A seq_cst load reads the last seq_cst store or a store
				// neither sc- nor hb-before it (lines 9–11).
				if x.SCIdx >= 0 && x.SCIdx < lastSC.SCIdx {
					continue
				}
				if lastSC.CVSnap != nil && lastSC.CVSnap.Synchronized(x.TID, x.Seq) {
					continue
				}
			}
			ret = append(ret, x)
		}
	}
	m.candBuf = ret[:0]
	return ret
}

// lastStoreBefore returns the last store in list sequenced before seq.
func lastStoreBefore(list []*Action, seq memmodel.SeqNum) *Action {
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].Seq < seq {
			return list[i]
		}
	}
	return nil
}

// lastSCStoreBefore returns the last store in list that is sc-ordered
// before scIdx.
func lastSCStoreBefore(list []*Action, scIdx int) *Action {
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].SCIdx >= 0 && list[i].SCIdx < scIdx {
			return list[i]
		}
	}
	return nil
}

// lastFenceBefore returns the last fence in fences sc-ordered before scIdx.
func lastFenceBefore(fences []*Action, scIdx int) *Action {
	for i := len(fences) - 1; i >= 0; i-- {
		if fences[i].SCIdx < scIdx {
			return fences[i]
		}
	}
	return nil
}

// lastHBAccess returns the last access in list that happens before the
// current point described by clock cv (first hit from the end, since
// hb-before accesses form a prefix).
func lastHBAccess(list []*Action, cv *memmodel.ClockVector) *Action {
	for i := len(list) - 1; i >= 0; i-- {
		if cv.Synchronized(list[i].TID, list[i].Seq) {
			return list[i]
		}
	}
	return nil
}

func getWrite(a *Action) *Action {
	if a == nil || a.Kind.IsWrite() {
		return a
	}
	return a.RF
}

func maxSeq(actions ...*Action) *Action {
	var best *Action
	for _, a := range actions {
		if a != nil && (best == nil || a.Seq > best.Seq) {
			best = a
		}
	}
	return best
}

// priorWrite computes get_write(last{S1,S2,S3,S4}) of Figure 13 for thread
// u, shared by ReadPriorSet and WritePriorSet: Fcur is the current thread's
// last seq_cst fence, isSC whether the current operation is seq_cst.
func (m *C11Model) priorWrite(t *ThreadState, al *aloc, u *ThreadState, fCur *Action, isSC bool) *Action {
	stores := al.stores(u.ID)
	var s1, s2, s3 *Action
	if isSC {
		if fu := u.LastSCFence(); fu != nil {
			s1 = lastStoreBefore(stores, fu.Seq)
		}
	}
	if fCur != nil {
		s2 = lastSCStoreBefore(al.scStores(u.ID), fCur.SCIdx)
		if fb := lastFenceBefore(u.SCFences, fCur.SCIdx); fb != nil {
			s3 = lastStoreBefore(stores, fb.Seq)
		}
	}
	s4 := lastHBAccess(al.accesses(u.ID), t.C)
	return getWrite(maxSeq(s1, s2, s3, s4))
}

// readPriorSet implements ReadPriorSet of Figure 13: the set of stores that
// must be modification-ordered before s if the current load reads from s,
// and whether establishing the rf edge keeps the constraints satisfiable.
// The returned slice aliases the model's read-prior scratch buffer and is
// valid until the next readPriorSet call.
func (m *C11Model) readPriorSet(t *ThreadState, al *aloc, isSCLoad bool, s *Action) ([]*Action, bool) {
	fl := t.LastSCFence()
	pri := m.priRBuf[:0]
	for _, u := range m.e.threads {
		if a := m.priorWrite(t, al, u, fl, isSCLoad); a != nil && a != s {
			pri = append(pri, a)
		}
	}
	m.priRBuf = pri[:0]
	for _, a := range pri {
		end := chainEnd(a.Node)
		if end == s.Node {
			continue
		}
		if m.g.Reachable(s.Node, end) {
			return nil, false
		}
	}
	return pri, true
}

// writePriorSet implements WritePriorSet of Figure 13 for a store that is
// about to be appended (it is not in the location lists yet). The returned
// slice aliases the model's write-prior scratch buffer — distinct from the
// read buffer, because AtomicRMW holds both sets live at once.
func (m *C11Model) writePriorSet(t *ThreadState, al *aloc, isSC bool) []*Action {
	fs := t.LastSCFence()
	pri := m.priWBuf[:0]
	if isSC && al.lastSCStore != nil {
		pri = append(pri, al.lastSCStore)
	}
	for _, u := range m.e.threads {
		if a := m.priorWrite(t, al, u, fs, isSC); a != nil {
			pri = append(pri, a)
		}
	}
	m.priWBuf = pri[:0]
	return pri
}

// rmwWriteFeasible rejects an RMW read candidate whose write-part edges
// would close a cycle through the RMW's migrated successors (see AtomicRMW).
func (m *C11Model) rmwWriteFeasible(t *ThreadState, al *aloc, isSC bool, s *Action) bool {
	for _, a := range m.writePriorSet(t, al, isSC) {
		if a == s {
			continue
		}
		if m.g.Reachable(s.Node, chainEnd(a.Node)) {
			return false
		}
	}
	return true
}

// TotalMO returns one modification order for loc consistent with the
// constraint graph: a linear extension of the mo edges in which every RMW
// immediately follows the store it read from (Section A.2's lifting). To
// honour the adjacency constraint, each store and its chain of RMW readers
// is contracted into one group before the topological sort; groups are
// emitted head-first with ties broken by head sequence number. It is used
// by the axiomatic validator.
func (m *C11Model) TotalMO(loc memmodel.LocID) []*Action {
	if int(loc) >= len(m.alocs) || m.alocs[loc] == nil {
		return nil
	}
	al := m.alocs[loc]
	var stores []*Action
	byNode := map[*mograph.Node]*Action{}
	for _, list := range al.storesBy {
		for _, a := range list {
			stores = append(stores, a)
			byNode[a.Node] = a
		}
	}
	// rep maps each action to the head of its store/RMW chain.
	rep := map[*Action]*Action{}
	var headOf func(a *Action) *Action
	headOf = func(a *Action) *Action {
		if h, ok := rep[a]; ok {
			return h
		}
		h := a
		if a.Kind == memmodel.KRMW && a.RF != nil && a.RF.RMWReader == a {
			if _, inGraph := byNode[a.RF.Node]; inGraph {
				h = headOf(a.RF)
			}
		}
		rep[a] = h
		return h
	}
	indeg := map[*Action]int{}
	for _, a := range stores {
		ha := headOf(a)
		for _, e := range a.Node.Edges() {
			if dst, ok := byNode[e]; ok {
				if hd := headOf(dst); hd != ha {
					indeg[hd]++
				}
			}
		}
	}
	var frontier []*Action
	for _, a := range stores {
		if headOf(a) == a && indeg[a] == 0 {
			frontier = append(frontier, a)
		}
	}
	var out []*Action
	emitted := 0
	for len(frontier) > 0 {
		best := 0
		for i := 1; i < len(frontier); i++ {
			if frontier[i].Seq < frontier[best].Seq {
				best = i
			}
		}
		head := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		// Emit the whole chain, then release the edges of all its members.
		for a := head; a != nil; a = chainNext(a, byNode) {
			out = append(out, a)
			emitted++
			for _, e := range a.Node.Edges() {
				if dst, ok := byNode[e]; ok {
					if hd := headOf(dst); hd != head {
						indeg[hd]--
						if indeg[hd] == 0 {
							frontier = append(frontier, hd)
						}
					}
				}
			}
		}
	}
	if emitted != len(stores) {
		panic(&InfeasibleError{Stage: "total-mo", Loc: loc,
			Detail: fmt.Sprintf("modification order contains a cycle (%d of %d stores ordered)", emitted, len(stores))})
	}
	return out
}

// chainNext returns the RMW that extends a's chain, if it is part of this
// location's graph.
func chainNext(a *Action, byNode map[*mograph.Node]*Action) *Action {
	r := a.RMWReader
	if r == nil {
		return nil
	}
	if _, ok := byNode[r.Node]; !ok {
		return nil
	}
	return r
}

// Locations returns the ids of all atomic locations the model has seen.
func (m *C11Model) Locations() []memmodel.LocID {
	var ids []memmodel.LocID
	for id, al := range m.alocs {
		if al != nil {
			ids = append(ids, memmodel.LocID(id))
		}
	}
	return ids
}
