package core

import (
	"reflect"
	"strings"
	"testing"

	"c11tester/internal/capi"
)

// cleanCrossProg is a short racy two-thread program used as the "healthy"
// counterpart in pool-recycling tests.
var cleanCrossProg = capi.Program{Name: "clean-cross", Run: func(env capi.Env) {
	x := env.NewAtomic("x", 0)
	d := env.NewLoc("d", 0)
	th := env.Spawn("w", func(env capi.Env) {
		env.Write(d, 1)
		env.Store(x, 1, rel)
	})
	env.Read(d)
	env.Load(x, acq)
	env.Join(th)
}}

// poolDigest is the comparable outcome of one execution for pool tests.
type poolDigest struct {
	Races      []string
	Finals     map[string]uint64
	Asserts    int
	Deadlocked bool
	Truncated  bool
	Atomic     uint64
}

func poolDigestOf(eng *Engine, res *capi.Result) poolDigest {
	keys := []string{}
	seen := map[string]bool{}
	for _, r := range res.Races {
		if k := r.Key(); !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	finals := map[string]uint64{}
	for k, v := range eng.FinalValues() {
		finals[k] = uint64(v)
	}
	return poolDigest{
		Races: keys, Finals: finals, Asserts: len(res.AssertFailures),
		Deadlocked: res.Deadlocked, Truncated: res.Truncated,
		Atomic: res.Stats.AtomicOps,
	}
}

// TestPanickingProgramAlternationOnPooledEngine is the regression test for
// worker retirement: a program thread that panics (a non-abort PanicValue)
// must retire its fiber-pool worker, and the next execution on the same
// engine must run on a fresh worker with no stale panic state — alternating
// a panicking program with a clean one stays byte-identical to fresh
// engines throughout.
func TestPanickingProgramAlternationOnPooledEngine(t *testing.T) {
	bomb := capi.Program{Name: "bomb", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		th := env.Spawn("p", func(env capi.Env) {
			env.Load(x, rlx)
			panic("kaboom")
		})
		env.Join(th)
	}}

	eng := newTool(Config{})
	for round := 0; round < 12; round++ {
		seed := int64(round)
		if round%2 == 0 {
			res := eng.Execute(bomb, seed)
			if res.EngineError != nil {
				t.Fatalf("round %d: program panic surfaced as engine error %v", round, res.EngineError)
			}
			if len(res.AssertFailures) != 1 || !strings.Contains(res.AssertFailures[0].Message, "kaboom") {
				t.Fatalf("round %d: panic not surfaced as failure: %+v", round, res.AssertFailures)
			}
			continue
		}
		res := eng.Execute(cleanCrossProg, seed)
		if len(res.AssertFailures) != 0 {
			t.Fatalf("round %d: stale panic leaked into a clean execution: %+v", round, res.AssertFailures)
		}
		fresh := newTool(Config{})
		want := fresh.Execute(cleanCrossProg, seed)
		got, wantD := poolDigestOf(eng, res), poolDigestOf(fresh, want)
		// FinalValues must be read before the comparison engine executes
		// again, but both are consumed immediately here.
		if !reflect.DeepEqual(got, wantD) {
			t.Fatalf("round %d: pooled-after-panic %+v != fresh %+v", round, got, wantD)
		}
		fresh.Close()
	}
	// The bomb program uses 2 threads; every panic retires the panicking
	// worker and the pool replaces it on the next binding, so the live
	// worker count stays bounded by the widest program.
	if w := eng.Workers(); w > 2 {
		t.Errorf("worker count %d after alternation, want ≤ 2", w)
	}
	// 6 bomb rounds retire 6 workers; spawns = 2 initial + 6 replacements.
	if s := eng.WorkerSpawns(); s > 8 {
		t.Errorf("worker spawns = %d, want ≤ 8 (clean executions must not spawn)", s)
	}
	eng.Close()
	if w := eng.Workers(); w != 0 {
		t.Errorf("worker count %d after Close, want 0", w)
	}
}

// TestResultRecycledAcrossExecutions pins the capi.Result ownership rule: the
// engine returns the same Result object every execution, reset in place, and
// its report slices reuse their backing arrays.
func TestResultRecycledAcrossExecutions(t *testing.T) {
	eng := newTool(Config{})
	res1 := eng.Execute(cleanCrossProg, 1)
	res2 := eng.Execute(cleanCrossProg, 2)
	if res1 != res2 {
		t.Fatal("engine allocated a fresh Result instead of recycling")
	}
	res3 := eng.Execute(capi.Program{Name: "empty", Run: func(env capi.Env) {}}, 3)
	if len(res3.Races) != 0 || res3.Stats.AtomicOps != 0 || res3.EngineError != nil {
		t.Fatalf("recycled result not reset: %+v", res3)
	}
	eng.Close()
}
