package core

import (
	"c11tester/internal/memmodel"
)

// Execution-graph pruning (Section 7.1). Naively dropping old actions is
// unsound: an old store can be modification-ordered *after* a newer one, so
// removing it could let a thread read a store it must no longer observe.
// Both modes below therefore prune sets of stores that are downward-closed
// under the modification order — everything mo-before an anchor goes — plus
// every load that read a pruned store.
//
//   - Conservative: anchors are stores that happen before the current point
//     of every live thread (computed from CVmin, the ∩ of live thread
//     clocks). Anything mo-before such an anchor is unreadable by any
//     future load (write-read coherence), so pruning preserves the full set
//     of executions.
//
//   - Aggressive: anchors are the stores W positions from the end of each
//     per-thread list. Stores mo-before them may still have been readable,
//     so this mode can reduce the set of producible executions — but never
//     admits an illegal one: because the pruned set is mo-downward-closed,
//     no retained store is mo-before any pruned coherence floor.

// Maintain implements MemModel.
func (m *C11Model) Maintain(e *Engine) {
	switch e.cfg.Prune {
	case PruneConservative:
		cvmin := m.cvMin()
		if cvmin == nil {
			return
		}
		for _, al := range m.alocs {
			if al != nil {
				m.pruneLoc(al, m.coveredAnchors(al, cvmin))
			}
		}
		m.pruneFences(cvmin)
	case PruneAggressive:
		for _, al := range m.alocs {
			if al != nil {
				m.pruneLoc(al, m.windowAnchors(al, e.cfg.Window))
			}
		}
	}
}

// cvMin intersects the clock vectors of all live threads (Section 7.1's ∩
// operator); a store (t, s) with s ≤ CVmin[t] happens before every live
// thread's current point.
func (m *C11Model) cvMin() *memmodel.ClockVector {
	var cvmin *memmodel.ClockVector
	for _, t := range m.e.threads {
		if t.finished {
			continue
		}
		if cvmin == nil {
			cvmin = t.C.Clone()
		} else {
			cvmin.Intersect(t.C)
		}
	}
	return cvmin
}

// coveredAnchors returns, per thread list, the latest store known to every
// live thread.
func (m *C11Model) coveredAnchors(al *aloc, cvmin *memmodel.ClockVector) []*Action {
	var anchors []*Action
	for _, list := range al.storesBy {
		for i := len(list) - 1; i >= 0; i-- {
			if cvmin.Synchronized(list[i].TID, list[i].Seq) {
				anchors = append(anchors, list[i])
				break
			}
		}
	}
	return anchors
}

// windowAnchors returns, per thread list longer than the window, the store
// at the window boundary.
func (m *C11Model) windowAnchors(al *aloc, window int) []*Action {
	var anchors []*Action
	for _, list := range al.storesBy {
		if len(list) > window {
			anchors = append(anchors, list[len(list)-window])
		}
	}
	return anchors
}

// pruneLoc retires every store strictly mo-before one of the anchors, plus
// the loads that read them. The last seq_cst store is always retained (the
// may-read-from SC restriction needs it to stay readable).
func (m *C11Model) pruneLoc(al *aloc, anchors []*Action) {
	if len(anchors) == 0 {
		return
	}
	var pruned map[*Action]bool
	for ti, list := range al.storesBy {
		kept := list[:0]
		for _, x := range list {
			dead := false
			if x != al.lastSCStore {
				for _, anc := range anchors {
					if x != anc && m.g.Reachable(x.Node, anc.Node) {
						dead = true
						break
					}
				}
			}
			if dead {
				if pruned == nil {
					pruned = map[*Action]bool{}
				}
				pruned[x] = true
				m.g.Retire(x.Node)
				al.storeCount--
			} else {
				kept = append(kept, x)
			}
		}
		clearTail(list, len(kept))
		al.storesBy[ti] = kept
	}
	if pruned == nil {
		return
	}
	for ti, list := range al.accessesBy {
		kept := list[:0]
		for _, x := range list {
			if pruned[x] {
				continue
			}
			if x.Kind == memmodel.KLoad && x.RF != nil && pruned[x.RF] {
				continue
			}
			kept = append(kept, x)
		}
		clearTail(list, len(kept))
		al.accessesBy[ti] = kept
	}
	for ti, list := range al.scStoresBy {
		kept := list[:0]
		for _, x := range list {
			if !pruned[x] {
				kept = append(kept, x)
			}
		}
		clearTail(list, len(kept))
		al.scStoresBy[ti] = kept
	}
}

// clearTail nils the now-unused tail of a filtered slice so pruned actions
// become collectable.
func clearTail(list []*Action, from int) {
	for i := from; i < len(list); i++ {
		list[i] = nil
	}
}

// pruneFences drops seq_cst fences that happen before every live thread's
// current point: the happens-before relation already enforces the orderings
// they would contribute (Section 7.1, Fences).
func (m *C11Model) pruneFences(cvmin *memmodel.ClockVector) {
	for _, t := range m.e.threads {
		fences := t.SCFences
		cut := 0
		for cut < len(fences) && cvmin.Synchronized(fences[cut].TID, fences[cut].Seq) {
			cut++
		}
		if cut > 0 {
			// Shift the retained suffix left in place (copy handles the
			// overlap); the backing array is recycled, not re-allocated.
			n := copy(fences, fences[cut:])
			clearTail(fences, n)
			t.SCFences = fences[:n]
		}
	}
}

// StoreCount returns the number of retained stores at loc (memory-bound
// tests and the pruning ablation).
func (m *C11Model) StoreCount(loc memmodel.LocID) int {
	if int(loc) >= len(m.alocs) || m.alocs[loc] == nil {
		return 0
	}
	return m.alocs[loc].storeCount
}
