package core

import (
	"fmt"
	"testing"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
)

// Benchmark programs covering the engine's hot-path shapes: release/acquire
// message passing (the litmus shape), RMW contention (mo-graph chains with
// RMW migration), store bursts (long same-location histories), and mixed
// atomic/non-atomic traffic through the race detector. Every benchmark runs
// repeated executions on ONE engine instance — the steady state the arenas
// and pools are built for — and reports allocations per execution.

func benchProgMP() capi.Program {
	return capi.Program{Name: "bench-mp", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		y := env.NewAtomic("y", 0)
		a := env.Spawn("A", func(env capi.Env) {
			env.Store(x, 1, rlx)
			env.Store(y, 1, rel)
		})
		b := env.Spawn("B", func(env capi.Env) {
			if env.Load(y, acq) == 1 {
				env.Load(x, rlx)
			}
		})
		env.Join(a)
		env.Join(b)
	}}
}

func benchProgRMW(iters, threads int) capi.Program {
	return capi.Program{Name: "bench-rmw", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		var ths []capi.Thread
		for i := 0; i < threads; i++ {
			ths = append(ths, env.Spawn(fmt.Sprintf("t%d", i), func(env capi.Env) {
				for k := 0; k < iters; k++ {
					env.FetchAdd(x, 1, rlx)
				}
			}))
		}
		for _, th := range ths {
			env.Join(th)
		}
	}}
}

func benchProgStoreHeavy(iters int) capi.Program {
	return capi.Program{Name: "bench-stores", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		a := env.Spawn("producer", func(env capi.Env) {
			for i := 1; i <= iters; i++ {
				env.Store(x, memmodel.Value(i), rlx)
			}
		})
		for i := 0; i < iters/4; i++ {
			env.Load(x, rlx)
		}
		env.Join(a)
	}}
}

func benchProgMixed() capi.Program {
	return capi.Program{Name: "bench-mixed", Run: func(env capi.Env) {
		d := env.NewLoc("data", 0)
		f := env.NewAtomic("flag", 0)
		m := env.NewMutex("m")
		a := env.Spawn("A", func(env capi.Env) {
			env.Lock(m)
			env.Write(d, env.Read(d)+1)
			env.Unlock(m)
			env.Store(f, 1, rel)
			env.Fence(sc)
		})
		if env.Load(f, acq) == 1 {
			env.Read(d)
		}
		env.Lock(m)
		env.Write(d, env.Read(d)+1)
		env.Unlock(m)
		env.Join(a)
	}}
}

func benchExecute(b *testing.B, tool *Engine, prog capi.Program) {
	b.Helper()
	// Warm the pools so the measured window reflects steady state.
	for i := 0; i < 3; i++ {
		tool.Execute(prog, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tool.Execute(prog, int64(i))
	}
}

func BenchmarkExecuteMessagePassing(b *testing.B) {
	benchExecute(b, newTool(Config{}), benchProgMP())
}

func BenchmarkExecuteRMWContention(b *testing.B) {
	benchExecute(b, newTool(Config{}), benchProgRMW(8, 4))
}

func BenchmarkExecuteStoreHeavy(b *testing.B) {
	benchExecute(b, newTool(Config{}), benchProgStoreHeavy(128))
}

func BenchmarkExecuteMixedSync(b *testing.B) {
	benchExecute(b, newTool(Config{}), benchProgMixed())
}

// BenchmarkExecuteTraceMode measures the recording overhead: the trace slice
// and its arena Actions are recycled, so trace mode must not re-introduce
// per-action heap allocation.
func BenchmarkExecuteTraceMode(b *testing.B) {
	benchExecute(b, newTool(Config{Trace: true}), benchProgStoreHeavy(64))
}

// BenchmarkExecutePruneConservative exercises the memory limiter path.
func BenchmarkExecutePruneConservative(b *testing.B) {
	benchExecute(b, newTool(Config{Prune: PruneConservative, PruneInterval: 64}), benchProgStoreHeavy(256))
}

// TestArenaSteadyStateStopsGrowing pins the arena contract: after the first
// execution of a program, repeated executions re-use the arena storage
// instead of growing it.
func TestArenaSteadyStateStopsGrowing(t *testing.T) {
	tool := newTool(Config{})
	prog := benchProgRMW(6, 3)
	tool.Execute(prog, 1)
	actions := tool.ActionCount()
	cvCap := tool.cvs.Cap()
	for seed := int64(2); seed < 12; seed++ {
		tool.Execute(prog, seed)
		if got := tool.cvs.Cap(); got > cvCap {
			// Different schedules may create slightly different counts, but
			// the arena capacity must settle, not grow per execution.
			cvCap = got
		}
	}
	settled := tool.cvs.Cap()
	for seed := int64(12); seed < 22; seed++ {
		tool.Execute(prog, seed)
	}
	if tool.cvs.Cap() != settled {
		t.Fatalf("clock arena still growing in steady state: %d → %d", settled, tool.cvs.Cap())
	}
	if tool.ActionCount() == 0 || actions == 0 {
		t.Fatal("executions must allocate arena actions")
	}
}
