package core

import (
	"fmt"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
	"c11tester/internal/mograph"
	"c11tester/internal/race"
	"c11tester/internal/sched"
)

// Action is one dynamic event of an execution: an atomic load, store, RMW,
// fence, promoted non-atomic store, or thread/synchronization event. It is
// the operational counterpart of the elements in Figure 10 of the paper
// (StoreElem, LoadElem, RMWElem, FenceElem).
type Action struct {
	Seq  memmodel.SeqNum
	TID  memmodel.TID
	Kind memmodel.Kind
	MO   memmodel.MemoryOrder
	Loc  memmodel.LocID

	// Value is the stored value for stores/RMWs, the value read for loads,
	// and the child/target thread id for thread events.
	Value memmodel.Value

	// RF is the store this load or RMW read from.
	RF *Action

	// RFCV is the reads-from clock vector RF_s of Figure 9, maintained for
	// stores and RMWs to implement release sequences.
	RFCV *memmodel.ClockVector

	// CVSnap is the thread clock at the time of the action. It is recorded
	// only for seq_cst stores (needed by the may-read-from SC restriction)
	// and, in trace mode, for every action.
	CVSnap *memmodel.ClockVector

	// Node is the action's node in the modification order graph (stores and
	// RMWs only).
	Node *mograph.Node

	// SCIdx is the action's position in the seq_cst total order, or -1.
	SCIdx int

	// RMWReader is the RMW that read from this store, if any; at most one
	// RMW may read from a given store (RMW atomicity).
	RMWReader *Action
}

func (a *Action) String() string {
	return fmt.Sprintf("%v(loc=%d mo=%v tid=%d seq=%d val=%d)", a.Kind, a.Loc, a.MO, a.TID, a.Seq, a.Value)
}

// IsSC reports whether the action participates in the seq_cst total order.
func (a *Action) IsSC() bool { return a.SCIdx >= 0 }

// locState is the engine-level state of one shared memory location: its
// plain-memory cell, race-detector shadow word, and promotion bookkeeping.
// Atomic bookkeeping (per-thread access lists, mo-graph nodes) belongs to
// the memory model.
type locState struct {
	id      memmodel.LocID
	name    string
	naValue memmodel.Value
	shadow  race.Shadow
	// promoted records that the latest non-atomic store has already been
	// promoted into the modification order graph (Section 7.2), so repeated
	// atomic accesses do not promote it again.
	promoted bool
}

// mutexState models one pthread mutex: ownership, a wait set, and a release
// clock that transfers happens-before from unlockers to the next locker.
type mutexState struct {
	id    memmodel.LocID
	name  string
	owner *ThreadState
	cv    memmodel.ClockVector
}

// reset recycles a pooled mutexState, keeping its clock's backing array.
func (m *mutexState) reset(id memmodel.LocID, name string) {
	m.id = id
	m.name = name
	m.owner = nil
	m.cv.Reset(0)
}

// condState models one pthread condition variable.
type condState struct {
	id      memmodel.LocID
	name    string
	waiters []*ThreadState
	cv      memmodel.ClockVector
}

// reset recycles a pooled condState, keeping its waiter-slice capacity and
// its clock's backing array.
func (c *condState) reset(id memmodel.LocID, name string) {
	c.id = id
	c.name = name
	c.waiters = c.waiters[:0]
	c.cv.Reset(0)
}

// condPhase tracks where a thread is inside a cond-wait state machine.
type condPhase uint8

const (
	condIdle      condPhase = iota
	condWaiting             // parked on the condition variable
	condReacquire           // signaled; re-acquiring the mutex
)

// ThreadState is the engine-side state of one model thread: the clock
// vectors of Figure 9, the per-thread seq_cst fence list, and blocking
// bookkeeping.
type ThreadState struct {
	ID   memmodel.TID
	Name string

	// C is the thread clock vector of Figure 9.
	C *memmodel.ClockVector

	// frel and facq are the release/acquire fence clock vectors of Figure 9.
	// They are nil until the thread's first fence-clock use: most threads
	// never execute a fence (or a relaxed store, which consults frel), so
	// eagerly carrying both vectors on every thread of every execution is
	// pure waste. Access them through relFence/acqFence (mutating) or the
	// nil-tolerant direct reads in ApplyFenceClocks/StoreRFCV.
	frel *memmodel.ClockVector
	facq *memmodel.ClockVector

	// eng is the engine that owns this thread; per-action clock-vector
	// snapshots are drawn from its execution-lifetime arenas. envv is the
	// thread's capi.Env, embedded here so spawning a thread does not allocate
	// a fresh env (and, through env's reusable Op, so visible operations do
	// not allocate either).
	eng  *Engine
	envv env

	// fn is the program function the thread currently runs; bodyFn is the
	// runBody method value built once per pooled ThreadState, so re-binding
	// the thread to a new fn each execution allocates neither a closure nor
	// a goroutine (the scheduler's fiber pool serves the binding).
	fn     func(capi.Env)
	bodyFn func(*sched.Thread)

	// SCFences lists the thread's seq_cst fences in order (used by the
	// prior-set procedures of Figure 13).
	SCFences []*Action

	thr      *sched.Thread
	finished bool
	// woken marks a blocked thread as schedulable again: its pending
	// operation will be re-dispatched, and may block again.
	woken bool
	// opSeq is the sequence number assigned to the operation currently
	// being dispatched.
	opSeq memmodel.SeqNum

	condPhase    condPhase
	condSignaled bool

	// burstable records that the thread's previous operation was a relaxed
	// or release atomic store, enabling the store-burst scheduling rule of
	// Section 3.
	burstable bool
}

// reset recycles a pooled ThreadState for a new execution, zeroing its clock
// vectors in place (clockSlots is the minimum clock width, as in
// NewClockVector). The lazily allocated fence vectors are kept (and emptied)
// when a previous execution materialized them.
func (t *ThreadState) reset(name string, clockSlots int) {
	t.Name = name
	t.C.Reset(clockSlots)
	if t.frel != nil {
		t.frel.Reset(0)
	}
	if t.facq != nil {
		t.facq.Reset(0)
	}
	t.SCFences = t.SCFences[:0]
	t.thr = nil
	t.fn = nil
	t.finished = false
	t.woken = false
	t.opSeq = 0
	t.condPhase = condIdle
	t.condSignaled = false
	t.burstable = false
}

// relFence returns the thread's release-fence clock, materializing it on
// first use.
func (t *ThreadState) relFence() *memmodel.ClockVector {
	if t.frel == nil {
		t.frel = memmodel.NewClockVector(0)
	}
	return t.frel
}

// acqFence returns the thread's acquire-fence clock, materializing it on
// first use.
func (t *ThreadState) acqFence() *memmodel.ClockVector {
	if t.facq == nil {
		t.facq = memmodel.NewClockVector(0)
	}
	return t.facq
}

// LastSCFence returns the thread's most recent seq_cst fence, or nil.
func (t *ThreadState) LastSCFence() *Action {
	if n := len(t.SCFences); n > 0 {
		return t.SCFences[n-1]
	}
	return nil
}

// OpSeq returns the sequence number of the operation currently being
// dispatched for this thread (memory-model plugins use it to stamp the
// actions they create).
func (t *ThreadState) OpSeq() memmodel.SeqNum { return t.opSeq }

// runBody is the thread's scheduler binding: it wires the sched handle into
// the ThreadState and runs the thread's current program function. spawnThread
// caches one method value of it per pooled ThreadState (bodyFn) and re-binds
// fn per execution.
func (t *ThreadState) runBody(thr *sched.Thread) {
	t.thr = thr
	t.ID = thr.ID
	t.fn(&t.envv)
}
