package core

// actionArena is the execution-lifetime allocator for Action structs. Every
// Action created while executing a program — by the engine (thread events),
// the C11 model, or the commit-order baselines — dies when the execution is
// reset: traces, race reports, and campaign summaries all copy out what they
// persist (see the lifetime rules on Engine.NewAction). The arena therefore
// hands Actions out of chunked storage and rewinds wholesale at the start of
// the next Execute, so steady-state executions allocate no Action memory.
//
// Chunked storage (rather than one growing slice) keeps Action pointers
// stable: Actions reference each other (RF, RMWReader) and are referenced by
// mo-graph nodes and per-location lists, so they must never be moved.
type actionArena struct {
	chunks [][]Action
	ci     int // chunk currently being filled
	used   int // slots used in chunks[ci]
}

// actionChunk is the number of Actions per arena chunk.
const actionChunk = 128

// alloc returns a zeroed Action with SCIdx = -1 (the "not in the seq_cst
// order" sentinel every creation site wants as the default).
func (a *actionArena) alloc() *Action {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]Action, actionChunk))
	}
	act := &a.chunks[a.ci][a.used]
	a.used++
	if a.used == actionChunk {
		a.ci++
		a.used = 0
	}
	*act = Action{SCIdx: -1}
	return act
}

// reset rewinds the arena; all Actions handed out since the last reset are
// reclaimed for reuse.
func (a *actionArena) reset() {
	a.ci = 0
	a.used = 0
}

// len returns the number of Actions handed out since the last reset.
func (a *actionArena) len() int {
	return a.ci*actionChunk + a.used
}
