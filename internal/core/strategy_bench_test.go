package core

import (
	"testing"

	"c11tester/internal/rng"
)

// BenchmarkPickIndex measures the strategy decision fast path — the cost of
// one bounded random draw as the engine sees it (reads-from selection, waiter
// picks). The pcg source amortizes to a buffer load plus a multiply; legacy
// pays math/rand's locked-source call.
func BenchmarkPickIndex(b *testing.B) {
	for _, kind := range []rng.Kind{rng.PCG, rng.Legacy} {
		b.Run(kind.String(), func(b *testing.B) {
			s := NewRandomStrategyKind(kind)
			s.Seed(1)
			b.ReportAllocs()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += s.PickIndex(7)
			}
			if sink < 0 {
				b.Fatal("impossible")
			}
		})
	}
}

// BenchmarkStrategySeed measures the per-execution re-seed cost in strategy
// position — the fixed cost every execution pays before its first decision.
func BenchmarkStrategySeed(b *testing.B) {
	for _, kind := range []rng.Kind{rng.PCG, rng.Legacy} {
		b.Run(kind.String(), func(b *testing.B) {
			s := NewRandomStrategyKind(kind)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Seed(int64(i))
			}
		})
	}
}
