package core

import (
	"fmt"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
	"c11tester/internal/race"
)

type raceConflict = race.Conflict

// dispatch executes the pending operation of ts: the "Execute(s, t, b)" step
// of Figure 3. Handlers either complete the operation (replying to the
// thread) or block it; blocked operations are re-dispatched after a wake.
func (e *Engine) dispatch(ts *ThreadState) {
	op := ts.thr.Pending()
	e.burstT = nil
	switch op.Kind {
	case memmodel.KLoad:
		e.doAtomicLoad(ts, op)
	case memmodel.KStore:
		e.doAtomicStore(ts, op)
	case memmodel.KRMW:
		e.doAtomicRMW(ts, op)
	case memmodel.KFence:
		e.doFence(ts, op)
	case memmodel.KNALoad:
		e.doNALoad(ts, op)
	case memmodel.KNAStore:
		e.doNAStore(ts, op)
	case memmodel.KThreadCreate:
		e.doSpawn(ts, op)
	case memmodel.KThreadJoin:
		e.doJoin(ts, op)
	case memmodel.KMutexLock:
		e.doLock(ts, op)
	case memmodel.KMutexTryLock:
		e.doTryLock(ts, op)
	case memmodel.KMutexUnlock:
		e.doUnlock(ts, op)
	case memmodel.KCondWait:
		e.doCondWait(ts, op)
	case memmodel.KCondSignal:
		e.doCondSignal(ts, op, false)
	case memmodel.KCondBroadcast:
		e.doCondSignal(ts, op, true)
	case memmodel.KYield:
		e.assignSeq(ts)
		e.complete(ts)
	case memmodel.KAlloc:
		e.doAlloc(ts, op)
	case memmodel.KAllocMutex:
		id := memmodel.LocID(len(e.mutexes))
		e.mutexes = append(e.mutexes, e.newMutexState(id, op.NewName))
		op.Val = memmodel.Value(id)
		e.complete(ts)
	case memmodel.KAllocCond:
		id := memmodel.LocID(len(e.conds))
		e.conds = append(e.conds, e.newCondState(id, op.NewName))
		op.Val = memmodel.Value(id)
		e.complete(ts)
	case memmodel.KAssert:
		e.result.AssertFailures = append(e.result.AssertFailures, capi.AssertFailure{
			TID: ts.ID, Message: op.AssertMsg, Execution: e.execIndex,
		})
		e.complete(ts)
	default:
		panic(fmt.Sprintf("core: unknown op kind %v", op.Kind))
	}
}

// hbCheck returns the happens-before oracle for the current point of ts:
// event (t, s) happens before ts's current operation iff ts's clock vector
// contains it.
func (e *Engine) hbCheck(ts *ThreadState) race.HB {
	return func(t memmodel.TID, s memmodel.SeqNum) bool {
		return ts.C.Synchronized(t, s)
	}
}

// maybePromote lifts the latest non-atomic store to loc into the memory
// model when an atomic operation is about to touch it (Section 7.2): by the
// time the atomic access is observed the plain store has already happened,
// so the engine reconstructs it from the shadow word.
func (e *Engine) maybePromote(ts *ThreadState, l *locState) {
	if l.promoted {
		return
	}
	if wtid, wclk, na, ok := l.shadow.LastWrite(); ok && na {
		e.model.PromoteNAStore(ts, l.id, wtid, wclk, l.naValue)
	}
	l.promoted = true
}

func (e *Engine) doAlloc(ts *ThreadState, op *capi.Op) {
	id := memmodel.LocID(len(e.locs))
	l := e.newLocState(id, op.NewName)
	e.locs = append(e.locs, l)
	op.Val = memmodel.Value(id)
	if op.NewAtomic {
		// Initialise with a relaxed atomic store, backed by the engine's
		// scratch Op (the model reads it synchronously and keeps nothing).
		e.initOp = capi.Op{Kind: memmodel.KStore, MO: memmodel.Relaxed, Loc: id, Operand: op.Operand}
		e.assignSeq(ts)
		e.phases.Begin(PhaseRace)
		e.confBuf = l.shadow.OnWrite(ts.ID, ts.opSeq, true, e.hbCheck(ts), e.confBuf[:0])
		e.phases.End(PhaseRace)
		e.model.AtomicStore(ts, &e.initOp)
		l.naValue = op.Operand
		l.promoted = true
		e.result.Stats.AtomicOps++
	} else {
		// atomic_init is implemented as a non-atomic store (Section 7.2);
		// it may race with concurrent atomic accesses.
		e.assignSeq(ts)
		e.phases.Begin(PhaseRace)
		e.confBuf = l.shadow.OnWrite(ts.ID, ts.opSeq, false, e.hbCheck(ts), e.confBuf[:0])
		e.phases.End(PhaseRace)
		l.naValue = op.Operand
		e.result.Stats.NormalOps++
	}
	e.complete(ts)
}

func (e *Engine) doNAStore(ts *ThreadState, op *capi.Op) {
	e.assignSeq(ts)
	l := e.loc(op.Loc)
	e.phases.Begin(PhaseRace)
	conf := l.shadow.OnWrite(ts.ID, ts.opSeq, false, e.hbCheck(ts), e.confBuf[:0])
	e.confBuf = conf
	e.reportConflicts(ts, l, memmodel.KNAStore, conf)
	e.phases.End(PhaseRace)
	l.naValue = op.Operand
	l.promoted = false
	e.result.Stats.NormalOps++
	e.complete(ts)
}

func (e *Engine) doNALoad(ts *ThreadState, op *capi.Op) {
	e.assignSeq(ts)
	l := e.loc(op.Loc)
	e.phases.Begin(PhaseRace)
	conf := l.shadow.OnRead(ts.ID, ts.opSeq, false, e.hbCheck(ts), e.confBuf[:0])
	e.confBuf = conf
	e.reportConflicts(ts, l, memmodel.KNALoad, conf)
	e.phases.End(PhaseRace)
	op.Val = l.naValue
	e.result.Stats.NormalOps++
	e.complete(ts)
}

func (e *Engine) doAtomicLoad(ts *ThreadState, op *capi.Op) {
	e.assignSeq(ts)
	l := e.loc(op.Loc)
	e.maybePromote(ts, l)
	e.phases.Begin(PhaseRace)
	conf := l.shadow.OnRead(ts.ID, ts.opSeq, true, e.hbCheck(ts), e.confBuf[:0])
	e.confBuf = conf
	e.reportConflicts(ts, l, memmodel.KLoad, conf)
	e.phases.End(PhaseRace)
	op.Val = e.model.AtomicLoad(ts, op)
	e.result.Stats.AtomicOps++
	e.complete(ts)
}

func (e *Engine) doAtomicStore(ts *ThreadState, op *capi.Op) {
	e.assignSeq(ts)
	l := e.loc(op.Loc)
	e.maybePromote(ts, l)
	e.phases.Begin(PhaseRace)
	conf := l.shadow.OnWrite(ts.ID, ts.opSeq, true, e.hbCheck(ts), e.confBuf[:0])
	e.confBuf = conf
	e.reportConflicts(ts, l, memmodel.KStore, conf)
	e.phases.End(PhaseRace)
	e.model.AtomicStore(ts, op)
	l.naValue = op.Operand
	e.result.Stats.AtomicOps++
	burst := isBurstableStore(op)
	e.complete(ts)
	if burst {
		e.burstT = ts
	}
}

// RMWNewValue applies an op's RMW functor to the observed value; it is
// exported for memory-model plugins.
func RMWNewValue(op *capi.Op, old memmodel.Value) memmodel.Value {
	return rmwNewValue(op, old)
}

// rmwNewValue applies the RMW functor to the observed value.
func rmwNewValue(op *capi.Op, old memmodel.Value) memmodel.Value {
	switch op.RMW {
	case capi.RMWAdd:
		return old + op.Operand
	case capi.RMWExchange, capi.RMWCas:
		return op.Operand
	}
	panic("core: not an RMW op")
}

func (e *Engine) doAtomicRMW(ts *ThreadState, op *capi.Op) {
	e.assignSeq(ts)
	l := e.loc(op.Loc)
	e.maybePromote(ts, l)
	hb := e.hbCheck(ts)
	e.phases.Begin(PhaseRace)
	conf := l.shadow.OnRead(ts.ID, ts.opSeq, true, hb, e.confBuf[:0])
	e.phases.End(PhaseRace)
	old, stored := e.model.AtomicRMW(ts, op)
	op.Val = old
	op.OK = stored
	e.phases.Begin(PhaseRace)
	if stored {
		conf = l.shadow.OnWrite(ts.ID, ts.opSeq, true, hb, conf)
		l.naValue = rmwNewValue(op, old)
	}
	e.confBuf = conf
	e.reportConflicts(ts, l, memmodel.KRMW, conf)
	e.phases.End(PhaseRace)
	e.result.Stats.AtomicOps++
	e.complete(ts)
}

func (e *Engine) doFence(ts *ThreadState, op *capi.Op) {
	e.assignSeq(ts)
	e.model.Fence(ts, op)
	e.result.Stats.AtomicOps++
	e.complete(ts)
}

func (e *Engine) doSpawn(ts *ThreadState, op *capi.Op) {
	e.assignSeq(ts)
	if e.cfg.Trace {
		a := e.NewAction()
		a.Seq, a.TID, a.Kind = ts.opSeq, ts.ID, memmodel.KThreadCreate
		e.trace = append(e.trace, a)
	}
	child := e.spawnThread(op.SpawnName, op.SpawnFn, ts)
	op.Val = memmodel.Value(child.ID)
	if e.cfg.Trace {
		e.trace[len(e.trace)-1].Value = memmodel.Value(child.ID)
	}
	e.result.Stats.AtomicOps++
	e.complete(ts)
}

func (e *Engine) doJoin(ts *ThreadState, op *capi.Op) {
	if int(op.Target) >= len(e.threads) {
		e.failAssert(ts, fmt.Sprintf("join of unknown thread %d", op.Target))
		e.complete(ts)
		return
	}
	target := e.threads[op.Target]
	if !target.finished {
		e.block(ts)
		return
	}
	e.assignSeq(ts)
	ts.C.Merge(target.C)
	if e.cfg.Trace {
		a := e.NewAction()
		a.Seq, a.TID, a.Kind, a.Value = ts.opSeq, ts.ID, memmodel.KThreadJoin, memmodel.Value(target.ID)
		e.trace = append(e.trace, a)
	}
	e.result.Stats.AtomicOps++
	e.complete(ts)
}

func (e *Engine) failAssert(ts *ThreadState, msg string) {
	e.result.AssertFailures = append(e.result.AssertFailures, capi.AssertFailure{
		TID: ts.ID, Message: msg, Execution: e.execIndex,
	})
}

// TraceAppend records an action in the execution trace (trace mode only);
// the memory model calls it for atomic actions.
func (e *Engine) TraceAppend(a *Action) {
	if e.cfg.Trace {
		e.trace = append(e.trace, a)
	}
}
