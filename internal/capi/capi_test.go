package capi

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"c11tester/internal/memmodel"
)

func TestResultBuggy(t *testing.T) {
	cases := []struct {
		name string
		res  Result
		want bool
	}{
		{"clean", Result{}, false},
		{"race", Result{Races: []RaceReport{{LocName: "x"}}}, true},
		{"assert", Result{AssertFailures: []AssertFailure{{Message: "m"}}}, true},
		{"deadlock", Result{Deadlocked: true}, true},
		{"truncated only", Result{Truncated: true}, false},
	}
	for _, c := range cases {
		if got := c.res.Buggy(); got != c.want {
			t.Errorf("%s: Buggy() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRaceReportKey(t *testing.T) {
	r1 := RaceReport{LocName: "deque.buf3", PriorKind: memmodel.KNAStore,
		Kind: memmodel.KNALoad, PriorTID: 0, TID: 2, Execution: 17}
	// Key must not depend on which threads or execution exhibited the race:
	// it is the cross-execution deduplication key (Section 7.6).
	r2 := r1
	r2.PriorTID, r2.TID, r2.Execution = 5, 6, 99
	if r1.Key() != r2.Key() {
		t.Fatalf("Key varies with thread/execution identity: %q vs %q", r1.Key(), r2.Key())
	}
	// Distinct access pairs or locations must have distinct keys.
	r3 := r1
	r3.Kind = memmodel.KNAStore
	if r1.Key() == r3.Key() {
		t.Fatalf("Key ignores the racing access kind: %q", r1.Key())
	}
	r4 := r1
	r4.LocName = "deque.buf4"
	if r1.Key() == r4.Key() {
		t.Fatalf("Key ignores the location: %q", r1.Key())
	}
}

func TestRaceReportString(t *testing.T) {
	r := RaceReport{LocName: "x", PriorKind: memmodel.KNAStore,
		Kind: memmodel.KNALoad, PriorTID: 1, TID: 2}
	s := r.String()
	for _, frag := range []string{"data race on x", "thread 1", "thread 2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q, missing %q", s, frag)
		}
	}
}

func TestAssertFailureString(t *testing.T) {
	a := AssertFailure{TID: 3, Message: "torn read"}
	s := a.String()
	if !strings.Contains(s, "thread 3") || !strings.Contains(s, "torn read") {
		t.Errorf("String() = %q", s)
	}
}

// TestResetZeroesEveryContainerField checks reflectively that Reset
// truncates every slice and map field of Result, so adding a per-execution
// container field without extending Reset fails here instead of leaking one
// execution's reports into the next (the analyzer pipeline reads these
// fields after every execution).
func TestResetZeroesEveryContainerField(t *testing.T) {
	var res Result
	v := reflect.ValueOf(&res).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Slice:
			f.Set(reflect.MakeSlice(f.Type(), 1, 1))
		case reflect.Map:
			m := reflect.MakeMap(f.Type())
			m.SetMapIndex(reflect.Zero(f.Type().Key()), reflect.Zero(f.Type().Elem()))
			f.Set(m)
		}
	}
	res.Deadlocked, res.Truncated = true, true
	res.EngineError = errors.New("boom")
	res.Stats = OpStats{AtomicOps: 1, NormalOps: 2}

	res.Reset()

	for i := 0; i < v.NumField(); i++ {
		f, name := v.Field(i), v.Type().Field(i).Name
		switch f.Kind() {
		case reflect.Slice, reflect.Map:
			if f.Len() != 0 {
				t.Errorf("Reset left container field %s with %d element(s); extend Reset", name, f.Len())
			}
		}
	}
	if res.Deadlocked || res.Truncated || res.EngineError != nil || res.Stats != (OpStats{}) {
		t.Errorf("Reset left scalar state behind: %+v", res)
	}
}

func TestOpStatsAdd(t *testing.T) {
	var s OpStats
	s.Add(OpStats{AtomicOps: 3, NormalOps: 1})
	s.Add(OpStats{AtomicOps: 0, NormalOps: 0})
	s.Add(OpStats{AtomicOps: 5, NormalOps: 7})
	if s.AtomicOps != 8 || s.NormalOps != 8 {
		t.Fatalf("accumulated OpStats = %+v, want {8 8}", s)
	}
}
