// Package capi is the instrumentation boundary between a program under test
// and a testing tool. In the paper, an LLVM pass rewrites every atomic
// operation, fence, and shared non-atomic access into calls into the
// C11Tester runtime (Figure 1); here, programs under test are written
// directly against the Env interface, which exposes exactly that runtime
// call surface: atomics with explicit memory orders, non-atomic reads and
// writes, legacy volatile accesses, fences, threads, mutexes, and condition
// variables (the core language of Figure 8, plus the pthread-level
// operations the real tool interposes on).
//
// All three tools in this repository — the C11Tester engine and the tsan11
// and tsan11rec baselines — execute the same programs through this
// interface, which is what makes the paper's cross-tool comparisons
// meaningful.
package capi

import (
	"fmt"

	"c11tester/internal/memmodel"
)

// Loc is a handle to one shared memory location. A location may be accessed
// both atomically and non-atomically; supporting such mixed-mode access is a
// deliberate feature (Section 7.2: atomic_init, memory reuse, realloc).
type Loc struct {
	ID memmodel.LocID
}

// Mutex is a handle to a model-managed mutex.
type Mutex struct {
	ID memmodel.LocID
}

// Cond is a handle to a model-managed condition variable.
type Cond struct {
	ID memmodel.LocID
}

// Thread is a handle to a model-managed thread, usable with Join.
type Thread struct {
	TID memmodel.TID
}

// Env is the per-thread view of the testing runtime. Every method is a
// "visible operation" in the paper's sense — executing one hands control to
// the tool, which picks the behaviour (e.g. which store a load reads from)
// and the next thread to run.
//
// Env values must only be used from the thread they were handed to.
type Env interface {
	// TID returns this thread's id (main is 0).
	TID() memmodel.TID

	// NewLoc creates a shared memory location initialised by a non-atomic
	// store of init performed by the creating thread (the model of
	// atomic_init, Section 7.2).
	NewLoc(name string, init memmodel.Value) Loc
	// NewAtomic creates a location initialised by a relaxed atomic store,
	// for objects that are only ever accessed atomically.
	NewAtomic(name string, init memmodel.Value) Loc

	// Load performs an atomic load.
	Load(l Loc, mo memmodel.MemoryOrder) memmodel.Value
	// Store performs an atomic store.
	Store(l Loc, v memmodel.Value, mo memmodel.MemoryOrder)
	// FetchAdd performs an atomic fetch-and-add and returns the old value.
	FetchAdd(l Loc, delta memmodel.Value, mo memmodel.MemoryOrder) memmodel.Value
	// Exchange atomically replaces the value and returns the old one.
	Exchange(l Loc, v memmodel.Value, mo memmodel.MemoryOrder) memmodel.Value
	// CompareExchange performs a strong compare-and-exchange. It returns the
	// observed value and whether the exchange succeeded. succ and fail give
	// the memory orders of the success RMW and the failure load.
	CompareExchange(l Loc, expected, desired memmodel.Value, succ, fail memmodel.MemoryOrder) (memmodel.Value, bool)
	// Fence performs an atomic thread fence.
	Fence(mo memmodel.MemoryOrder)

	// Read performs a non-atomic load; Write a non-atomic store. These are
	// the accesses the race detector checks (Section 7.2).
	Read(l Loc) memmodel.Value
	Write(l Loc, v memmodel.Value)

	// VolatileLoad and VolatileStore model pre-C11 legacy atomics (volatile
	// accesses, LLVM intrinsics). The tool maps them to atomic accesses with
	// its configured volatile memory order (Section 8.2, Silo).
	VolatileLoad(l Loc) memmodel.Value
	VolatileStore(l Loc, v memmodel.Value)

	// Spawn starts a new model thread running fn and returns its handle.
	Spawn(name string, fn func(Env)) Thread
	// Join blocks until t has finished.
	Join(t Thread)
	// Yield is a scheduling hint with no memory-model effect.
	Yield()

	// NewMutex, Lock, TryLock, Unlock model a pthread mutex.
	NewMutex(name string) Mutex
	Lock(m Mutex)
	TryLock(m Mutex) bool
	Unlock(m Mutex)

	// NewCond, Wait, Signal, Broadcast model a pthread condition variable.
	NewCond(name string) Cond
	Wait(c Cond, m Mutex)
	Signal(c Cond)
	Broadcast(c Cond)

	// Assert records an assertion violation when cond is false. Execution
	// continues (the tool reports the violation), mirroring how C11Tester
	// reports assertion failures it discovers.
	Assert(cond bool, format string, args ...any)

	// RandUint64 returns deterministic per-execution randomness for
	// workloads (seeded by the tool), so runs are reproducible.
	RandUint64() uint64

	// BeginAtomic and EndAtomic bracket a code block the program intends to
	// behave atomically, for the atomicity analyzer (conflict-serializability
	// of marked blocks). They are pure annotations with no memory-model or
	// scheduling effect: tools that do not analyze atomicity may treat them
	// as no-ops, and annotated programs execute identically to unannotated
	// ones. Blocks nest per thread; EndAtomic closes the innermost open
	// block.
	BeginAtomic(name string)
	EndAtomic()
}

// Program is a complete program under test. Run is the body of the main
// thread; it receives the main thread's Env.
type Program struct {
	Name string
	Run  func(Env)
}

// RaceReport describes one data race. Tools deduplicate reports across
// executions (Section 7.6), keyed by Key().
type RaceReport struct {
	LocName   string
	PriorKind memmodel.Kind // the older access
	Kind      memmodel.Kind // the access that completed the race
	PriorTID  memmodel.TID
	TID       memmodel.TID
	Execution int // execution index (0-based) in which the race was first seen
}

// Key identifies a race for cross-execution deduplication.
func (r RaceReport) Key() string {
	return fmt.Sprintf("%s/%v/%v", r.LocName, r.PriorKind, r.Kind)
}

func (r RaceReport) String() string {
	return fmt.Sprintf("data race on %s: %v by thread %d vs %v by thread %d",
		r.LocName, r.PriorKind, r.PriorTID, r.Kind, r.TID)
}

// AssertFailure describes one failed Env.Assert.
type AssertFailure struct {
	TID       memmodel.TID
	Message   string
	Execution int
}

func (a AssertFailure) String() string {
	return fmt.Sprintf("assertion failed on thread %d: %s", a.TID, a.Message)
}

// BlockSpan is one BeginAtomic/EndAtomic block instance observed during an
// execution, identified by the half-open action-sequence range [Begin, End)
// on thread TID. End == 0 means the block was still open when the execution
// finished (a missing EndAtomic); analyzers treat such spans as extending to
// the end of the execution.
type BlockSpan struct {
	TID   memmodel.TID
	Name  string
	Begin memmodel.SeqNum
	End   memmodel.SeqNum
}

// OpStats counts the operations one execution performed, mirroring the
// paper's Table 3 columns.
type OpStats struct {
	AtomicOps uint64 // atomic loads/stores/RMWs, fences, and sync operations
	NormalOps uint64 // non-atomic accesses to shared memory
}

// Add accumulates other into s.
func (s *OpStats) Add(other OpStats) {
	s.AtomicOps += other.AtomicOps
	s.NormalOps += other.NormalOps
}

// Result is the outcome of one execution of a program under a tool.
//
// Ownership: tools recycle one Result per instance across executions (the
// engine resets it in place via Reset), so a Result returned by Execute —
// including its Races/NewRaces/AssertFailures/Blocks backing arrays — is only
// valid until the same tool's next Execute call. Consumers that keep anything
// past that point must copy it (the report values themselves are plain
// values; copying an element or appending it to a consumer-owned slice is
// enough). Campaign runners, analyzers, the trace recorder, and the harness
// all consume results before re-executing. Every slice or map field added to
// Result must be cleared by Reset — TestResetZeroesEveryContainerField
// enforces this reflectively.
type Result struct {
	// Races holds the races observed during this execution (including ones
	// seen in earlier executions of the same tool instance).
	Races []RaceReport
	// NewRaces holds only races not reported by any earlier execution.
	NewRaces []RaceReport
	// AssertFailures holds assertion violations observed this execution.
	AssertFailures []AssertFailure
	// Deadlocked reports that the execution ended with all unfinished
	// threads blocked.
	Deadlocked bool
	// Truncated reports that the execution hit the tool's step limit.
	Truncated bool
	// EngineError reports that the tool itself aborted the execution (e.g.
	// an infeasible memory-model state, see core.InfeasibleError). The other
	// fields cover only the prefix that ran before the abort; campaigns
	// record the execution as failed instead of folding it into the
	// detection statistics.
	EngineError error
	// Blocks holds the BeginAtomic/EndAtomic block instances observed this
	// execution, in Begin order, for the atomicity analyzer. Empty for
	// programs without annotations.
	Blocks []BlockSpan
	// Stats counts the operations performed.
	Stats OpStats
}

// Buggy reports whether this execution exhibited any bug signal — a data
// race, an assertion violation, or a deadlock.
func (r *Result) Buggy() bool {
	return len(r.Races) > 0 || len(r.AssertFailures) > 0 || r.Deadlocked
}

// Reset recycles the Result for a new execution, truncating the report
// slices in place so their backing arrays (and capacity) survive. Tools call
// it at the top of every execution; see the ownership rules above.
func (r *Result) Reset() {
	r.Races = r.Races[:0]
	r.NewRaces = r.NewRaces[:0]
	r.AssertFailures = r.AssertFailures[:0]
	r.Blocks = r.Blocks[:0]
	r.Deadlocked = false
	r.Truncated = false
	r.EngineError = nil
	r.Stats = OpStats{}
}

// Tool is a testing tool: something that can repeatedly execute a program
// and report what it found. Implementations keep state across executions
// (e.g. race deduplication, Section 7.6).
type Tool interface {
	// Name returns the tool's short name ("c11tester", "tsan11", ...).
	Name() string
	// Execute runs one execution of p with the given seed.
	Execute(p Program, seed int64) *Result
}
