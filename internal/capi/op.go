package capi

import "c11tester/internal/memmodel"

// RMWKind distinguishes the read-modify-write flavours. The paper's core
// language models RMWs with an arbitrary functor F (Figure 8); the flavours
// here cover the functors the benchmarks need while keeping the operand
// data, rather than a closure, visible to the tool.
type RMWKind uint8

const (
	RMWNone     RMWKind = iota
	RMWAdd              // fetch_add: new = old + Operand
	RMWExchange         // exchange: new = Operand
	RMWCas              // compare_exchange: new = Operand if old == Expected
)

// Op is one visible operation handed from a program thread to the tool.
// It is the wire format of the instrumentation boundary: the program thread
// fills in the request fields, parks, and the tool fills in the result
// fields before resuming it.
type Op struct {
	Kind   memmodel.Kind
	MO     memmodel.MemoryOrder
	FailMO memmodel.MemoryOrder // CAS failure-load order
	Loc    memmodel.LocID
	Loc2   memmodel.LocID // mutex in a cond-wait

	RMW      RMWKind
	Operand  memmodel.Value // store value / add delta / exchange or CAS-desired value
	Expected memmodel.Value // CAS expected value
	Volatile bool

	// Thread management.
	SpawnFn   func(Env)
	SpawnName string
	Target    memmodel.TID // join target

	// Location creation.
	NewName   string
	NewAtomic bool

	// Assertion.
	AssertMsg string

	// Results (filled by the tool).
	Val memmodel.Value
	OK  bool
}
