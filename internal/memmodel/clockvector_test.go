package memmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClockVectorZeroValue(t *testing.T) {
	var cv ClockVector
	if cv.Get(3) != 0 {
		t.Fatal("zero vector must read 0 everywhere")
	}
	cv.Set(3, 7)
	if cv.Get(3) != 7 || cv.Get(0) != 0 || cv.Get(100) != 0 {
		t.Fatalf("unexpected entries after Set: %v", cv)
	}
}

func TestUnitClockVector(t *testing.T) {
	cv := UnitClockVector(2, 42)
	if cv.Get(2) != 42 || cv.Get(0) != 0 || cv.Get(1) != 0 {
		t.Fatalf("unit vector wrong: %+v", cv)
	}
}

func TestMergeReportsChange(t *testing.T) {
	a := UnitClockVector(0, 5)
	b := UnitClockVector(1, 3)
	if !a.Merge(b) {
		t.Fatal("merging new information must report change")
	}
	if a.Merge(b) {
		t.Fatal("re-merging the same vector must not report change")
	}
	if a.Get(0) != 5 || a.Get(1) != 3 {
		t.Fatalf("merge result wrong: %+v", a)
	}
	if a.Merge(nil) {
		t.Fatal("merging nil must be a no-op")
	}
}

func TestLeqAndSynchronized(t *testing.T) {
	a := UnitClockVector(0, 5)
	b := UnitClockVector(0, 6)
	b.Set(1, 2)
	if !a.Leq(b) {
		t.Fatal("a ≤ b expected")
	}
	if b.Leq(a) {
		t.Fatal("b ≤ a unexpected")
	}
	if !b.Synchronized(0, 6) || b.Synchronized(0, 7) || !b.Synchronized(2, 0) {
		t.Fatal("Synchronized wrong")
	}
	// Leq against nil: only the zero vector is ≤ nil.
	var zero ClockVector
	if !zero.Leq(nil) {
		t.Fatal("zero ≤ nil expected")
	}
	if a.Leq(nil) {
		t.Fatal("nonzero ≤ nil unexpected")
	}
}

func TestIntersect(t *testing.T) {
	a := &ClockVector{clock: []SeqNum{5, 3, 9}}
	b := &ClockVector{clock: []SeqNum{2, 8}}
	a.Intersect(b)
	want := []SeqNum{2, 3, 0}
	for i, w := range want {
		if a.Get(TID(i)) != w {
			t.Fatalf("intersect[%d] = %d, want %d", i, a.Get(TID(i)), w)
		}
	}
	a.Intersect(nil)
	for i := range want {
		if a.Get(TID(i)) != 0 {
			t.Fatal("intersect with nil must zero the vector")
		}
	}
}

// randomCV builds a small random clock vector from a generated seed.
func randomCV(r *rand.Rand) *ClockVector {
	n := r.Intn(6)
	cv := NewClockVector(n)
	for i := 0; i < n; i++ {
		cv.clock[i] = SeqNum(r.Intn(8))
	}
	return cv
}

// Property: Merge computes the least upper bound — the result dominates both
// inputs and is dominated by any other common upper bound.
func TestQuickMergeIsLUB(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomCV(r), randomCV(r), randomCV(r)
		ab := a.Clone()
		ab.Merge(b)
		if !a.Leq(ab) || !b.Leq(ab) {
			return false
		}
		// Any upper bound of a and b dominates ab.
		ub := c.Clone()
		ub.Merge(a)
		ub.Merge(b)
		return ab.Leq(ub)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is commutative, associative, and idempotent.
func TestQuickMergeLatticeLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomCV(r), randomCV(r), randomCV(r)

		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false
		}

		abc1 := ab.Clone()
		abc1.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		abc2 := a.Clone()
		abc2.Merge(bc)
		if !abc1.Equal(abc2) {
			return false
		}

		aa := a.Clone()
		aa.Merge(a)
		return aa.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Leq is a partial order (reflexive, antisymmetric via Equal,
// transitive).
func TestQuickLeqPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomCV(r), randomCV(r), randomCV(r)
		if !a.Leq(a) {
			return false
		}
		if a.Leq(b) && b.Leq(a) && !a.Equal(b) {
			return false
		}
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect is the greatest lower bound w.r.t. Leq.
func TestQuickIntersectIsGLB(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomCV(r), randomCV(r)
		glb := a.Clone()
		glb.Intersect(b)
		return glb.Leq(a) && glb.Leq(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
