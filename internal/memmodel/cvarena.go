package memmodel

// CVArena is an execution-lifetime allocator for ClockVectors. The engine
// creates one clock-vector snapshot per store (RF_s of Figure 9) and one per
// seq_cst store (the CV snapshot of the may-read-from SC restriction); all of
// them die together when the execution ends. The arena hands out vectors from
// chunked backing storage and Reset rewinds it wholesale: the vector structs
// *and* their grown []SeqNum backing arrays are reused by the next execution,
// so steady-state executions allocate no clock-vector memory at all.
//
// Vectors obtained from an arena are valid until the next Reset. Anything
// that must outlive the execution (serialized traces, race reports) copies
// the data out; pointers into the arena must not be retained across Reset.
type CVArena struct {
	chunks [][]ClockVector
	ci     int // index of the chunk currently being filled
	used   int // slots used in chunks[ci]
}

// cvArenaChunk is the number of ClockVectors per arena chunk.
const cvArenaChunk = 64

// Get returns an empty clock vector with at least n slots, drawn from the
// arena. The vector's previous backing array (from an earlier execution) is
// zeroed and reused when wide enough.
func (a *CVArena) Get(n int) *ClockVector {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]ClockVector, cvArenaChunk))
	}
	cv := &a.chunks[a.ci][a.used]
	a.used++
	if a.used == cvArenaChunk {
		a.ci++
		a.used = 0
	}
	cv.Reset(n)
	return cv
}

// CloneOf returns an arena-backed copy of src (the allocation-free
// counterpart of src.Clone()).
func (a *CVArena) CloneOf(src *ClockVector) *ClockVector {
	cv := a.Get(0)
	cv.CopyFrom(src)
	return cv
}

// Reset rewinds the arena: every vector handed out since the last Reset is
// reclaimed (structs and backing arrays stay allocated for reuse). The caller
// guarantees no pointer obtained from Get/CloneOf is used afterwards.
func (a *CVArena) Reset() {
	a.ci = 0
	a.used = 0
}

// Cap returns the number of vector slots the arena currently holds (for
// tests and benchmarks asserting steady-state reuse).
func (a *CVArena) Cap() int { return len(a.chunks) * cvArenaChunk }
