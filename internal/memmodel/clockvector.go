package memmodel

// ClockVector maps thread ids to sequence numbers. The engine uses clock
// vectors in two distinct roles that the paper is careful to separate:
//
//   - happens-before clocks (C_t, Frel_t, Facq_t, RF_s of Figure 9), and
//   - mo-graph clocks that encode reachability between same-location store
//     nodes (Section 4.2, Theorem 1).
//
// The zero value is the empty (all-zero) clock vector and is ready to use.
// Vectors grow on demand as threads are created; absent entries read as 0.
type ClockVector struct {
	clock []SeqNum
}

// NewClockVector returns an empty clock vector with capacity for n threads.
func NewClockVector(n int) *ClockVector {
	return &ClockVector{clock: make([]SeqNum, n)}
}

// UnitClockVector returns the vector ⊥CV_A for a store A by thread t with
// sequence number s: s at position t, zero elsewhere (Section 4.2).
func UnitClockVector(t TID, s SeqNum) *ClockVector {
	cv := NewClockVector(int(t) + 1)
	cv.clock[t] = s
	return cv
}

// Reset empties the vector in place for reuse, keeping (and zeroing) its
// backing capacity and guaranteeing at least n slots. The engine's state
// pools use it to recycle per-thread clocks across executions.
func (cv *ClockVector) Reset(n int) {
	if cap(cv.clock) < n {
		cv.clock = make([]SeqNum, n)
		return
	}
	if cap(cv.clock) > n {
		n = cap(cv.clock)
	}
	cv.clock = cv.clock[:n]
	for i := range cv.clock {
		cv.clock[i] = 0
	}
}

// Clone returns an independent copy of cv.
func (cv *ClockVector) Clone() *ClockVector {
	out := &ClockVector{clock: make([]SeqNum, len(cv.clock))}
	copy(out.clock, cv.clock)
	return out
}

// CopyFrom makes cv pointwise equal to src in place, reusing cv's backing
// capacity (the allocation-free counterpart of Clone). Like Reset, it keeps
// the whole capacity live — slots beyond src's length are zeroed, which is
// pointwise identical to src (absent entries read as 0). A nil src empties cv.
func (cv *ClockVector) CopyFrom(src *ClockVector) {
	if src == nil {
		cv.Reset(0)
		return
	}
	n := len(src.clock)
	if cap(cv.clock) < n {
		cv.clock = make([]SeqNum, n)
	}
	cv.clock = cv.clock[:cap(cv.clock)]
	copy(cv.clock, src.clock)
	for i := n; i < len(cv.clock); i++ {
		cv.clock[i] = 0
	}
}

// Len returns the number of thread slots currently held.
func (cv *ClockVector) Len() int { return len(cv.clock) }

func (cv *ClockVector) grow(n int) {
	if n <= len(cv.clock) {
		return
	}
	grown := make([]SeqNum, n)
	copy(grown, cv.clock)
	cv.clock = grown
}

// Get returns the clock entry for thread t (0 if t is beyond the vector).
func (cv *ClockVector) Get(t TID) SeqNum {
	if int(t) < len(cv.clock) {
		return cv.clock[t]
	}
	return 0
}

// Set assigns the clock entry for thread t.
func (cv *ClockVector) Set(t TID, s SeqNum) {
	cv.grow(int(t) + 1)
	cv.clock[t] = s
}

// Merge sets cv to the pointwise maximum of cv and other (the ∪ operator)
// and reports whether cv changed. A nil other is a no-op.
func (cv *ClockVector) Merge(other *ClockVector) bool {
	if other == nil {
		return false
	}
	cv.grow(len(other.clock))
	changed := false
	for i, s := range other.clock {
		if s > cv.clock[i] {
			cv.clock[i] = s
			changed = true
		}
	}
	return changed
}

// Intersect sets cv to the pointwise minimum of cv and other (the ∩ operator
// used to compute CVmin for conservative pruning, Section 7.1). Slots beyond
// either vector's length are treated as 0.
func (cv *ClockVector) Intersect(other *ClockVector) {
	n := len(cv.clock)
	if other == nil {
		for i := range cv.clock {
			cv.clock[i] = 0
		}
		return
	}
	for i := 0; i < n; i++ {
		var o SeqNum
		if i < len(other.clock) {
			o = other.clock[i]
		}
		if o < cv.clock[i] {
			cv.clock[i] = o
		}
	}
}

// Leq reports cv ≤ other: every entry of cv is ≤ the corresponding entry of
// other (Section 4.2). Entries beyond a vector's length are 0.
func (cv *ClockVector) Leq(other *ClockVector) bool {
	for i, s := range cv.clock {
		if s == 0 {
			continue
		}
		if other == nil || i >= len(other.clock) || s > other.clock[i] {
			return false
		}
	}
	return true
}

// Synchronized reports whether the event (t, s) is contained in this clock
// vector, i.e. whether that event happens before the point the vector
// describes: cv.Get(t) ≥ s.
func (cv *ClockVector) Synchronized(t TID, s SeqNum) bool {
	return cv.Get(t) >= s
}

// Equal reports pointwise equality (absent slots read as zero).
func (cv *ClockVector) Equal(other *ClockVector) bool {
	return cv.Leq(other) && other.Leq(cv)
}
