package memmodel

import "testing"

// Benchmarks for the clock-vector hot path: Merge/Leq are executed on every
// synchronization edge and every mo-graph propagation step, and the arena is
// what makes per-action snapshots allocation-free in steady state.

func benchVector(n int, stride SeqNum) *ClockVector {
	cv := NewClockVector(n)
	for i := 0; i < n; i++ {
		cv.Set(TID(i), SeqNum(i+1)*stride)
	}
	return cv
}

func BenchmarkClockVectorMerge(b *testing.B) {
	dst := benchVector(16, 2)
	src := benchVector(16, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst.Merge(src)
	}
}

func BenchmarkClockVectorLeq(b *testing.B) {
	a := benchVector(16, 2)
	c := benchVector(16, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Leq(c)
	}
}

// BenchmarkClockVectorClone is the heap-allocating snapshot path the arena
// replaces; keep it as the before/after reference.
func BenchmarkClockVectorClone(b *testing.B) {
	src := benchVector(16, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = src.Clone()
	}
}

// BenchmarkCVArenaCloneOf is the steady-state snapshot path: one Reset per
// simulated execution, many snapshots per execution, zero allocations after
// the first round.
func BenchmarkCVArenaCloneOf(b *testing.B) {
	src := benchVector(16, 2)
	var arena CVArena
	const perExec = 256
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%perExec == 0 {
			arena.Reset()
		}
		_ = arena.CloneOf(src)
	}
}
