// Package memmodel defines the vocabulary of the C/C++11 memory model as
// used by the C11Tester reproduction: memory orders, thread and sequence
// identifiers, action kinds, and the clock vectors that the engine uses both
// for happens-before tracking (Figure 9 of the paper) and for
// modification-order-graph reachability (Section 4.2).
package memmodel

// TID identifies a thread managed by the model. Thread ids are small dense
// integers assigned in spawn order; the main thread is always 0.
type TID int32

// NoTID marks an absent thread (e.g. the writer of an untouched location).
const NoTID TID = -1

// SeqNum is a global event sequence number. Sequence numbers are a global
// counter of events across all threads, incremented by one at each event
// (Section 4.2), so they uniquely identify events.
type SeqNum uint64

// Value is the value stored in or loaded from a memory location. The model
// treats all program data as 64-bit words, like the paper's core language
// (Figure 8) treats them as integers.
type Value uint64

// LocID identifies a memory location (atomic object, non-atomic variable,
// mutex, or condition variable) in the model's address space.
type LocID uint32

// NoLoc marks an absent location (fences have no location).
const NoLoc LocID = 0

// MemoryOrder is one of the six C/C++11 memory orders. Consume is
// strengthened to acquire (Section 2.2 change 3), matching all compilers.
type MemoryOrder uint8

const (
	Relaxed MemoryOrder = iota
	Consume             // treated as Acquire everywhere
	Acquire
	Release
	AcqRel
	SeqCst
)

var moNames = [...]string{"relaxed", "consume", "acquire", "release", "acq_rel", "seq_cst"}

func (m MemoryOrder) String() string {
	if int(m) < len(moNames) {
		return moNames[m]
	}
	return "invalid"
}

// IsAcquire reports whether an operation with this order has acquire
// semantics (acquire, acq_rel, seq_cst; consume is strengthened to acquire).
func (m MemoryOrder) IsAcquire() bool {
	return m == Acquire || m == Consume || m == AcqRel || m == SeqCst
}

// IsRelease reports whether an operation with this order has release
// semantics (release, acq_rel, seq_cst).
func (m MemoryOrder) IsRelease() bool {
	return m == Release || m == AcqRel || m == SeqCst
}

// IsSeqCst reports whether this is memory_order_seq_cst.
func (m MemoryOrder) IsSeqCst() bool { return m == SeqCst }

// Kind is the kind of a dynamic action (event) in an execution.
type Kind uint8

const (
	KLoad Kind = iota
	KStore
	KRMW
	KFence
	KNALoad  // non-atomic read
	KNAStore // non-atomic write (also used for promoted NA stores, §7.2)
	KThreadCreate
	KThreadStart
	KThreadFinish
	KThreadJoin
	KMutexLock
	KMutexUnlock
	KMutexTryLock
	KCondWait
	KCondSignal
	KCondBroadcast
	KYield
	KAlloc      // shared-location creation
	KAllocMutex // mutex creation
	KAllocCond  // condition-variable creation
	KAssert     // failed assertion report
)

var kindNames = [...]string{
	"load", "store", "rmw", "fence", "na-load", "na-store",
	"thread-create", "thread-start", "thread-finish", "thread-join",
	"lock", "unlock", "trylock", "cond-wait", "cond-signal", "cond-broadcast",
	"yield", "alloc", "alloc-mutex", "alloc-cond", "assert",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// IsWrite reports whether the kind writes an atomic location (store or RMW,
// or a promoted non-atomic store that entered the mo-graph).
func (k Kind) IsWrite() bool { return k == KStore || k == KRMW || k == KNAStore }

// IsRead reports whether the kind reads an atomic location.
func (k Kind) IsRead() bool { return k == KLoad || k == KRMW }
