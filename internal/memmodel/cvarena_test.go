package memmodel

import "testing"

func TestCopyFromMatchesClone(t *testing.T) {
	src := NewClockVector(3)
	src.Set(0, 5)
	src.Set(2, 9)
	dst := NewClockVector(8)
	dst.Set(7, 99) // stale data beyond src's length must be cleared
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatalf("CopyFrom result not equal to src")
	}
	if dst.Get(7) != 0 {
		t.Fatalf("stale slot survived CopyFrom: %d", dst.Get(7))
	}
	// Mutating dst must not affect src.
	dst.Set(0, 100)
	if src.Get(0) != 5 {
		t.Fatal("CopyFrom aliased the source backing array")
	}
}

func TestCopyFromNilEmpties(t *testing.T) {
	dst := NewClockVector(2)
	dst.Set(1, 7)
	dst.CopyFrom(nil)
	if !dst.Equal(NewClockVector(0)) {
		t.Fatalf("CopyFrom(nil) must empty the vector")
	}
}

func TestCVArenaRecyclesAcrossResets(t *testing.T) {
	var a CVArena
	cv1 := a.Get(4)
	cv1.Set(3, 42)
	src := NewClockVector(2)
	src.Set(1, 7)
	cv2 := a.CloneOf(src)
	if !cv2.Equal(src) {
		t.Fatal("CloneOf must copy the source")
	}
	capBefore := a.Cap()

	a.Reset()
	// The same slots come back, zeroed, without growing the arena.
	r1 := a.Get(4)
	if r1 != cv1 {
		t.Fatal("arena must hand the first slot out again after Reset")
	}
	if r1.Get(3) != 0 {
		t.Fatalf("recycled vector not zeroed: %d", r1.Get(3))
	}
	r2 := a.CloneOf(src)
	if r2 != cv2 {
		t.Fatal("arena must hand the second slot out again after Reset")
	}
	if a.Cap() != capBefore {
		t.Fatalf("arena grew across an identical round: %d → %d", capBefore, a.Cap())
	}
}

func TestCVArenaGrowsAcrossChunks(t *testing.T) {
	var a CVArena
	seen := map[*ClockVector]bool{}
	for i := 0; i < 3*cvArenaChunk+7; i++ {
		cv := a.Get(1)
		if seen[cv] {
			t.Fatalf("arena handed out slot %d twice before Reset", i)
		}
		seen[cv] = true
		cv.Set(0, SeqNum(i+1))
	}
	if a.Cap() < 3*cvArenaChunk+7 {
		t.Fatalf("arena capacity %d below demand", a.Cap())
	}
}
