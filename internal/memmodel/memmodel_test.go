package memmodel

import "testing"

func TestMemoryOrderPredicates(t *testing.T) {
	cases := []struct {
		mo                   MemoryOrder
		acquire, release, sc bool
	}{
		{Relaxed, false, false, false},
		{Consume, true, false, false}, // strengthened to acquire
		{Acquire, true, false, false},
		{Release, false, true, false},
		{AcqRel, true, true, false},
		{SeqCst, true, true, true},
	}
	for _, c := range cases {
		if got := c.mo.IsAcquire(); got != c.acquire {
			t.Errorf("%v.IsAcquire() = %v, want %v", c.mo, got, c.acquire)
		}
		if got := c.mo.IsRelease(); got != c.release {
			t.Errorf("%v.IsRelease() = %v, want %v", c.mo, got, c.release)
		}
		if got := c.mo.IsSeqCst(); got != c.sc {
			t.Errorf("%v.IsSeqCst() = %v, want %v", c.mo, got, c.sc)
		}
	}
}

func TestMemoryOrderString(t *testing.T) {
	if Relaxed.String() != "relaxed" || SeqCst.String() != "seq_cst" {
		t.Errorf("unexpected names: %v %v", Relaxed, SeqCst)
	}
	if MemoryOrder(99).String() != "invalid" {
		t.Errorf("out-of-range order should stringify as invalid")
	}
}

func TestKindPredicates(t *testing.T) {
	if !KStore.IsWrite() || !KRMW.IsWrite() || !KNAStore.IsWrite() {
		t.Error("store kinds must be writes")
	}
	if KLoad.IsWrite() || KFence.IsWrite() {
		t.Error("load/fence must not be writes")
	}
	if !KLoad.IsRead() || !KRMW.IsRead() {
		t.Error("load and RMW are reads")
	}
	if KStore.IsRead() {
		t.Error("store is not a read")
	}
	if KMutexLock.String() != "lock" || Kind(99).String() != "invalid" {
		t.Error("kind names wrong")
	}
}
