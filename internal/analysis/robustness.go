// robustness.go is the dynamic SC-robustness analyzer (Margalit et al.,
// "Dynamic Robustness Verification Against Weak Memory"): it flags
// executions whose outcome is not explainable under sequential consistency,
// i.e. where the weak memory model was load-bearing. The check itself —
// acyclicity of sb ∪ rf ∪ mo ∪ fr over the lifted execution — lives in
// axiom.SCExplainable; this analyzer adapts it to the campaign's finding
// algebra.
package analysis

import (
	"fmt"

	"c11tester/internal/axiom"
)

func init() {
	Register("sc-robustness", func() Analyzer { return &scRobustness{} })
}

type scRobustness struct{}

func (*scRobustness) Name() string     { return "sc-robustness" }
func (*scRobustness) NeedsTrace() bool { return true }
func (*scRobustness) NeedsMO() bool    { return true }

// Observe lifts the execution and checks SC-explainability. Findings are
// keyed by the litmus outcome when there is one — each distinct non-SC
// outcome of a litmus cell is its own finding — and by a single per-cell key
// for benchmarks, where outcomes have no canonical rendering.
func (*scRobustness) Observe(x *Exec) []Finding {
	if x.Engine == nil || x.MO == nil {
		return nil
	}
	if axiom.SCExplainable(axiom.FromEngine(x.Engine, x.MO)) {
		return nil
	}
	if x.Outcome != "" {
		return []Finding{{
			Key:  "outcome/" + x.Outcome,
			Desc: fmt.Sprintf("outcome %q is not SC-explainable (sb∪rf∪mo∪fr cycle): the weak memory model was load-bearing", x.Outcome),
		}}
	}
	return []Finding{{
		Key:  "non-sc",
		Desc: "execution is not SC-explainable (sb∪rf∪mo∪fr cycle): the weak memory model was load-bearing",
	}}
}
