package analysis

import (
	"reflect"
	"sort"
	"testing"
)

func TestBuiltinsRegistered(t *testing.T) {
	want := []string{"atomicity", "sc-robustness"}
	got := Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if !sort.StringsAreSorted(got) {
		t.Errorf("Names() not sorted: %v", got)
	}
	for _, name := range want {
		a, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, a.Name())
		}
		if !a.NeedsTrace() {
			t.Errorf("%s: both built-ins read the action trace", name)
		}
	}
	// Only sc-robustness needs a concrete modification order; atomicity runs
	// on baseline tools too.
	if a, _ := New("sc-robustness"); !a.NeedsMO() {
		t.Error("sc-robustness must require a modification order")
	}
	if a, _ := New("atomicity"); a.NeedsMO() {
		t.Error("atomicity must not require a modification order")
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Fatal("New(nope) succeeded")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("sc-robustness", func() Analyzer { return nil })
}
