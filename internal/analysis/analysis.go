// Package analysis is the plug-in seam for dynamic analyses over finished
// executions. The engine already produces everything a family of analyses
// needs — actions, reads-from, modification order, clock vectors — and the
// campaign runner owns the loop that executes (tool, program, seed) triples;
// an Analyzer observes each finished execution through that loop and emits
// keyed Findings, which the campaign deduplicates, samples, merges across
// shards, and reports with one-command repro triples exactly like races.
//
// The contract mirrors the race detector's determinism rules: an execution
// is a pure function of (tool, program, seed), so Observe must be a pure
// function of the Exec it is handed — no randomness, no wall-clock, no state
// shared across cells — which is what keeps workers=1 ≡ workers=K
// byte-identical per-analyzer findings.
package analysis

import (
	"fmt"
	"sort"

	"c11tester/internal/capi"
	"c11tester/internal/core"
)

// Exec is one finished execution as presented to analyzers. The campaign
// runner reuses a single Exec per cell, rewriting the fields between
// executions; everything reachable from it — the Result, the engine's trace
// and modification order — is only valid for the duration of Observe, per
// the capi.Result ownership rules. Analyzers copy what they keep.
type Exec struct {
	// Result is the execution's outcome (races, assertion failures, block
	// annotations, op counts). Never nil.
	Result *capi.Result
	// Index is the 0-based execution index within the cell; Seed is the
	// seed it ran under (SeedBase + Index).
	Index int
	Seed  int64
	// Tool and Program name the cell; Litmus distinguishes litmus cells
	// from benchmark cells, and Outcome carries the rendered litmus outcome
	// ("" for benchmarks).
	Tool    string
	Program string
	Litmus  bool
	Outcome string
	// Engine exposes the recorded action trace (Engine.Trace, present when
	// the analyzer asked for it via NeedsTrace); MO the concrete
	// modification order (when NeedsMO). Engine is nil for tools that are
	// not built on the core engine; MO is nil for tools whose memory model
	// keeps no concrete modification order.
	Engine *core.Engine
	MO     core.MOProvider
}

// Finding is one keyed analyzer observation. Key deduplicates findings
// across executions of a cell (and across shards), like capi.RaceReport.Key
// does for races; Desc is the human-readable one-liner. Both must be pure
// functions of the execution. The strings are copied by the campaign, so a
// Finding may reference per-execution storage.
type Finding struct {
	Key  string
	Desc string
}

// Analyzer observes finished executions and emits findings. Implementations
// are cell-confined: the campaign builds one instance per (tool, program)
// cell via the registry, so an Analyzer may keep per-cell state (e.g. a
// dedup set) but must not share state across cells or goroutines.
type Analyzer interface {
	// Name is the registry key, the -analyzers flag value, and the label on
	// findings, events, and metrics.
	Name() string
	// NeedsTrace reports whether Observe reads the engine's action trace;
	// the campaign enables trace recording for the cell when any analyzer
	// asks. NeedsMO additionally requires a concrete modification order —
	// analyzers that need it are skipped (never run) on cells whose tool
	// cannot provide one, mirroring how axiom validation skips those cells.
	NeedsTrace() bool
	NeedsMO() bool
	// Observe inspects one finished execution. The returned findings (and
	// the Exec's fields) are valid only until the next Observe call.
	Observe(x *Exec) []Finding
}

// factories is the process-wide registry; built-ins register in init, and
// tests may add their own. Registration is not synchronized: it happens at
// init time, before campaigns run.
var factories = map[string]func() Analyzer{}

// Register adds an analyzer factory under its name. The factory is invoked
// once per campaign cell, so instances are worker-confined by construction.
// Registering a duplicate name panics: names are a flag surface, and a
// silent overwrite would repoint existing repro commands.
func Register(name string, factory func() Analyzer) {
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("analysis: duplicate analyzer %q", name))
	}
	factories[name] = factory
}

// New builds a fresh instance of the named analyzer.
func New(name string) (Analyzer, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("unknown analyzer %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered analyzer names, sorted.
func Names() []string {
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
