// atomicity.go is the conflict-serializability atomicity monitor (after
// Tunç et al., "Fast Atomicity Monitoring"): programs bracket intended-
// atomic code with Env.BeginAtomic/EndAtomic, and the analyzer checks each
// execution's conflict graph — block instances plus singleton transactions
// for unbracketed accesses, with an edge for every trace-ordered conflicting
// access pair — for acyclicity. A cycle certifies the execution is not
// conflict-serializable: no serial order of the marked blocks explains the
// observed interleaving, i.e. an atomicity violation was actually exercised.
package analysis

import (
	"fmt"
	"sort"

	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/memmodel"
)

func init() {
	Register("atomicity", func() Analyzer { return &atomicity{} })
}

type atomicity struct{}

func (*atomicity) Name() string     { return "atomicity" }
func (*atomicity) NeedsTrace() bool { return true }
func (*atomicity) NeedsMO() bool    { return false }

// Observe builds the execution's transaction conflict graph and reports one
// finding per marked block on the first cycle found. Programs without block
// annotations produce no transactions and therefore no findings.
func (*atomicity) Observe(x *Exec) []Finding {
	blocks := x.Result.Blocks
	if len(blocks) == 0 || x.Engine == nil {
		return nil
	}
	tr := x.Engine.Trace()

	// Transactions: node b < len(blocks) is block instance b; every shared-
	// memory access outside any block is its own singleton transaction.
	// Singleton-to-singleton edges follow trace order (acyclic on their
	// own), so any conflict-graph cycle passes through at least one block.
	nodes := len(blocks)
	type access struct {
		txn   int
		write bool
	}
	byLoc := map[memmodel.LocID][]access{}
	var locs []memmodel.LocID
	for _, a := range tr {
		if a.Loc == memmodel.NoLoc || (!a.Kind.IsRead() && !a.Kind.IsWrite()) {
			continue
		}
		txn := blockOf(blocks, a)
		if txn < 0 {
			txn = nodes
			nodes++
		}
		if len(byLoc[a.Loc]) == 0 {
			locs = append(locs, a.Loc)
		}
		byLoc[a.Loc] = append(byLoc[a.Loc], access{txn: txn, write: a.Kind.IsWrite()})
	}

	// Conflict edges: same location, at least one write, different
	// transactions, directed by trace order. Iterating locations in
	// first-touch order keeps the adjacency — and the cycle found first —
	// deterministic.
	adj := make([][]int, nodes)
	seen := map[[2]int]bool{}
	for _, loc := range locs {
		accs := byLoc[loc]
		for i, early := range accs {
			for _, late := range accs[i+1:] {
				if early.txn == late.txn || (!early.write && !late.write) {
					continue
				}
				e := [2]int{early.txn, late.txn}
				if !seen[e] {
					seen[e] = true
					adj[early.txn] = append(adj[early.txn], late.txn)
				}
			}
		}
	}

	cycle := findCycle(adj)
	if cycle == nil {
		return nil
	}
	names := map[string]bool{}
	for _, n := range cycle {
		if n < len(blocks) {
			names[blocks[n].Name] = true
		}
	}
	var out []Finding
	for _, name := range sortedNames(names) {
		out = append(out, Finding{
			Key:  "block/" + name,
			Desc: fmt.Sprintf("atomic block %q is not conflict-serializable: its accesses interleave with a conflicting transaction (cycle of %d transaction(s) in the conflict graph)", name, len(cycle)),
		})
	}
	return out
}

// blockOf returns the index of the innermost block span containing action a,
// or -1. Spans with End == 0 were still open when the execution finished and
// extend to its end. Blocks nest per thread and are appended in Begin order,
// so the last matching span is the innermost.
func blockOf(blocks []capi.BlockSpan, a *core.Action) int {
	for i := len(blocks) - 1; i >= 0; i-- {
		b := blocks[i]
		if b.TID == a.TID && b.Begin <= a.Seq && (b.End == 0 || a.Seq < b.End) {
			return i
		}
	}
	return -1
}

// findCycle returns the node set of the first directed cycle found by a
// deterministic DFS over the adjacency list, or nil if the graph is acyclic.
func findCycle(adj [][]int) []int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]byte, len(adj))
	type frame struct {
		node int
		next int
	}
	var stack []frame
	for start := range adj {
		if color[start] != white {
			continue
		}
		color[start] = grey
		stack = append(stack[:0], frame{node: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				to := adj[f.node][f.next]
				f.next++
				switch color[to] {
				case grey:
					// The cycle is the stack suffix from to's frame.
					for i := range stack {
						if stack[i].node == to {
							var cycle []int
							for _, fr := range stack[i:] {
								cycle = append(cycle, fr.node)
							}
							return cycle
						}
					}
				case white:
					color[to] = grey
					stack = append(stack, frame{node: to})
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
