package safeio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicReplacesWholeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.json")
	if err := WriteFileAtomic(path, []byte("old-content"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "new" {
		t.Fatalf("read %q, %v; want \"new\"", data, err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil || len(entries) != 1 {
		t.Fatalf("directory holds %d entries (err=%v), want only the artifact", len(entries), err)
	}
}

func TestWriteFileAtomicFailpointLeavesOldFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.json")
	if err := WriteFileAtomic(path, []byte("survivor"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("no space left on device")
	SetFailpoint(func(p string) error {
		if p == path {
			return boom
		}
		return nil
	})
	defer SetFailpoint(nil)
	err := WriteFileAtomic(path, []byte("clobber"), 0o644)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped failpoint error", err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "survivor" {
		t.Fatalf("old artifact damaged by failed write: %q", data)
	}
}

func TestWriteJSONAtomicTrailingNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.json")
	if err := WriteJSONAtomic(path, map[string]int{"n": 1}, 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "}\n") {
		t.Fatalf("artifact does not end in newline: %q", data)
	}
}

func TestDecodeJSONFileErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	var v map[string]any

	// Empty file: the signature of a crash between create and write.
	err := DecodeJSONFile(write("empty.json", ""), &v)
	var de *DecodeError
	if !errors.As(err, &de) || de.Size != 0 {
		t.Fatalf("empty file: err = %v", err)
	}
	if !strings.Contains(err.Error(), "empty file") {
		t.Errorf("empty-file message = %q", err)
	}

	// Truncated JSON: a torn non-atomic write.
	full := `{"schema":"x","n":12345}`
	err = DecodeJSONFile(write("torn.json", full[:10]), &v)
	if !errors.As(err, &de) {
		t.Fatalf("torn file: err = %v, want *DecodeError", err)
	}
	if de.Path == "" || !strings.Contains(err.Error(), "truncated JSON") {
		t.Errorf("torn-file error lacks path/diagnosis: %v", err)
	}

	// Corrupt byte mid-file: the offset names the failure point.
	err = DecodeJSONFile(write("corrupt.json", `{"a": 1, "b": ???}`), &v)
	if !errors.As(err, &de) || de.Offset <= 0 {
		t.Fatalf("corrupt file: err = %v (offset %d), want positive offset", err, de.Offset)
	}

	// Type mismatch also carries an offset.
	var typed struct{ N int }
	err = DecodeJSONFile(write("typed.json", `{"N": "not-a-number"}`), &typed)
	if !errors.As(err, &de) || de.Offset <= 0 {
		t.Fatalf("type mismatch: err = %v, want *DecodeError with offset", err)
	}

	// A missing file is a plain fs error, not a DecodeError.
	err = DecodeJSONFile(filepath.Join(dir, "nope.json"), &v)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want ErrNotExist", err)
	}
}

func TestForEachJSONLineToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	content := `{"type":"a"}` + "\n" + `{"type":"b"}` + "\n" + `{"type":"c","tr` // torn final line
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var got []string
	bad, err := ForEachJSONLine(path, func(line []byte) bool {
		if !strings.HasSuffix(string(line), "}") {
			return false
		}
		got = append(got, string(line))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || bad != 1 {
		t.Fatalf("accepted %d line(s), bad=%d; want 2 accepted and 1 torn", len(got), bad)
	}
}

func TestRotate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")

	// Rotating a missing file is a no-op.
	if rotated, err := Rotate(path); err != nil || rotated != "" {
		t.Fatalf("Rotate(missing) = %q, %v", rotated, err)
	}

	for i := 1; i <= 3; i++ {
		if err := os.WriteFile(path, []byte(fmt.Sprintf("gen%d", i)), 0o644); err != nil {
			t.Fatal(err)
		}
		rotated, err := Rotate(path)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("%s.%d", path, i); rotated != want {
			t.Fatalf("rotation %d landed at %q, want %q", i, rotated, want)
		}
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("original path still exists after rotation")
	}
	data, err := os.ReadFile(path + ".2")
	if err != nil || string(data) != "gen2" {
		t.Errorf("rotated generation 2 = %q, %v", data, err)
	}
}
