// Package safeio is the crash-safety layer under every artifact the campaign
// fabric writes or reads. Writers go through WriteFileAtomic — temp file in
// the destination directory, fsync, rename, directory fsync — so a crash (or
// a SIGKILL mid-write) never leaves a torn file where a reader expects JSON:
// readers see either the old complete artifact or the new complete one.
// Readers go through DecodeJSONFile, which turns truncation and corruption
// into named, actionable errors (file, byte offset) instead of bare unmarshal
// errors, and ForEachJSONLine, the shared lenient JSONL reader that tolerates
// a torn final line (an interrupted append) by counting it rather than
// failing.
//
// The package also hosts the fault-injection hook the chaos tests use:
// SetFailpoint makes every atomic write consult a caller-supplied function
// first, so ENOSPC-style write failures can be injected deterministically and
// asserted to surface as structured errors, not panics or torn files.
package safeio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// failpoint, when non-nil, is consulted by WriteFileAtomic before touching
// the filesystem; a non-nil return aborts the write with that error. Tests
// inject ENOSPC-style failures here.
var (
	failMu    sync.Mutex
	failpoint func(path string) error
)

// SetFailpoint installs (or, with nil, clears) the write-failure injection
// hook. Intended for fault-injection tests only; the hook sees the
// destination path of every atomic write.
func SetFailpoint(f func(path string) error) {
	failMu.Lock()
	failpoint = f
	failMu.Unlock()
}

func checkFailpoint(path string) error {
	failMu.Lock()
	f := failpoint
	failMu.Unlock()
	if f == nil {
		return nil
	}
	return f(path)
}

// WriteFileAtomic writes data to path so that path never holds a partial
// file: the bytes land in a temp file in the same directory, are fsync'd,
// and are renamed over path; the directory is fsync'd afterwards so the
// rename itself survives a crash. Any failure cleans up the temp file and
// leaves path untouched.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	if err := checkFailpoint(path); err != nil {
		return fmt.Errorf("safeio: write %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("safeio: write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("safeio: write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("safeio: write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("safeio: write %s: %w", path, err)
	}
	// Persist the rename. Directory fsync is best-effort: some platforms
	// refuse to open directories for writing, and the data itself is already
	// durable.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// WriteJSONAtomic marshals v indented and writes it atomically, with a
// trailing newline — the convention of every JSON artifact in this
// repository.
func WriteJSONAtomic(path string, v any, perm os.FileMode) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("safeio: write %s: %w", path, err)
	}
	return WriteFileAtomic(path, append(data, '\n'), perm)
}

// DecodeError is the named error DecodeJSONFile returns for unreadable JSON
// artifacts: it carries the file, the byte offset where decoding failed, and
// the file size, so "truncated at byte 4096 of 4096" is one glance instead of
// a bare "unexpected end of JSON input".
type DecodeError struct {
	Path   string
	Offset int64 // byte offset of the failure; -1 when unknown
	Size   int64
	Err    error
}

func (e *DecodeError) Error() string {
	switch {
	case e.Size == 0:
		return fmt.Sprintf("%s: empty file (torn or never-completed write?)", e.Path)
	case e.truncated():
		return fmt.Sprintf("%s: truncated JSON: input ends at byte %d (torn write? re-fetch or regenerate the artifact)", e.Path, e.Size)
	case e.Offset >= 0:
		return fmt.Sprintf("%s: corrupt JSON at byte %d of %d: %v", e.Path, e.Offset, e.Size, e.Err)
	default:
		return fmt.Sprintf("%s: corrupt JSON: %v", e.Path, e.Err)
	}
}

func (e *DecodeError) Unwrap() error { return e.Err }

// truncated reports whether the decode failure is input ending mid-value — a
// torn write. encoding/json reports that as its own SyntaxError ("unexpected
// end of JSON input"), not as io.ErrUnexpectedEOF, so both spellings count.
func (e *DecodeError) truncated() bool {
	if errors.Is(e.Err, io.ErrUnexpectedEOF) || errors.Is(e.Err, io.EOF) {
		return true
	}
	var syn *json.SyntaxError
	return errors.As(e.Err, &syn) && syn.Offset >= e.Size
}

// DecodeJSONFile reads path and unmarshals it into v. Decoding failures come
// back as a *DecodeError naming the file and byte offset; file-system errors
// are returned as-is.
func DecodeJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return &DecodeError{Path: path, Offset: 0, Size: 0, Err: io.ErrUnexpectedEOF}
	}
	if err := json.Unmarshal(data, v); err != nil {
		de := &DecodeError{Path: path, Offset: -1, Size: int64(len(data)), Err: err}
		var syn *json.SyntaxError
		if errors.As(err, &syn) {
			de.Offset = syn.Offset
		}
		var typ *json.UnmarshalTypeError
		if errors.As(err, &typ) {
			de.Offset = typ.Offset
		}
		return de
	}
	return nil
}

// MaxJSONLLine bounds one line of a JSONL stream (events, merged streams).
const MaxJSONLLine = 4 * 1024 * 1024

// ForEachJSONLine streams the non-empty lines of a JSONL file to fn. fn
// reports whether it accepted the line; rejected lines — a torn final line
// from an interrupted append, a corrupt line — are counted in bad, never
// fatal. The line buffer is reused; fn must copy if it retains.
func ForEachJSONLine(path string, fn func(line []byte) bool) (bad int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), MaxJSONLLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if !fn(line) {
			bad++
		}
	}
	return bad, sc.Err()
}

// Rotate renames path to the first free "path.N" (N ≥ 1), returning the new
// name. A resumed campaign rotates its previous event stream aside so the
// fresh run appends to a clean file while the crash-era lines stay readable.
// A missing path is not an error ("", nil).
func Rotate(path string) (string, error) {
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", err
	}
	for n := 1; ; n++ {
		rotated := fmt.Sprintf("%s.%d", path, n)
		if _, err := os.Stat(rotated); err == nil {
			continue
		} else if !os.IsNotExist(err) {
			return "", err
		}
		if err := os.Rename(path, rotated); err != nil {
			return "", err
		}
		return rotated, nil
	}
}
