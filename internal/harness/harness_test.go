package harness

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"c11tester/internal/capi"
)

// stubTool is a deterministic capi.Tool: the outcome of an execution is a
// pure function of the seed, which is exactly the property the harness (and
// the campaign runner built on it) relies on.
type stubTool struct {
	seeds []int64
}

func (s *stubTool) Name() string { return "stub" }

func (s *stubTool) Execute(p capi.Program, seed int64) *capi.Result {
	s.seeds = append(s.seeds, seed)
	res := &capi.Result{Stats: capi.OpStats{AtomicOps: uint64(seed%7) + 1, NormalOps: 2}}
	if seed%2 == 0 {
		res.Races = append(res.Races, capi.RaceReport{LocName: "x"})
	}
	if seed%3 == 0 {
		res.AssertFailures = append(res.AssertFailures, capi.AssertFailure{Message: "boom"})
	}
	return res
}

var nopProg = capi.Program{Name: "nop", Run: func(capi.Env) {}}

func TestMeasureDetectionDeterminism(t *testing.T) {
	run := func() (Detection, []int64) {
		tool := &stubTool{}
		d := MeasureDetection(tool, nopProg, 10, 100, SignalRace)
		return d, tool.seeds
	}
	d1, seeds1 := run()
	d2, seeds2 := run()

	if d1.Runs != 10 || d1.Detected != d2.Detected || d1.Ops != d2.Ops {
		t.Fatalf("detection not deterministic: %+v vs %+v", d1, d2)
	}
	// Seeds must be seedBase+index, in order.
	for i, s := range seeds1 {
		if s != 100+int64(i) {
			t.Fatalf("seed %d = %d, want %d", i, s, 100+i)
		}
	}
	if len(seeds2) != len(seeds1) {
		t.Fatalf("seed count mismatch: %d vs %d", len(seeds2), len(seeds1))
	}
	// seeds 100..109: even seeds race → 5 detections.
	if d1.Detected != 5 {
		t.Fatalf("Detected = %d, want 5", d1.Detected)
	}
	if got := d1.Rate(); got != 50 {
		t.Fatalf("Rate = %v, want 50", got)
	}
}

func TestMeasureDetectionSignals(t *testing.T) {
	// seeds 0..5: races on 0,2,4; asserts on 0,3.
	if d := MeasureDetection(&stubTool{}, nopProg, 6, 0, SignalAssert); d.Detected != 2 {
		t.Fatalf("SignalAssert Detected = %d, want 2", d.Detected)
	}
	if d := MeasureDetection(&stubTool{}, nopProg, 6, 0, SignalAny); d.Detected != 4 {
		t.Fatalf("SignalAny Detected = %d, want 4", d.Detected)
	}
}

func TestMeasureDetectionZeroRuns(t *testing.T) {
	d := MeasureDetection(&stubTool{}, nopProg, 0, 0, SignalRace)
	if d.Rate() != 0 || d.Time != 0 {
		t.Fatalf("zero-run detection should be zero-valued: %+v", d)
	}
}

func TestMeasurePerfDeterminism(t *testing.T) {
	work := 0.0
	p1 := MeasurePerf(&stubTool{}, nopProg, 5, 7, func() float64 { work++; return work })
	p2 := MeasurePerf(&stubTool{}, nopProg, 5, 7, nil)
	if len(p1.Times) != 5 || len(p1.Work) != 5 {
		t.Fatalf("Times/Work lengths: %d/%d, want 5/5", len(p1.Times), len(p1.Work))
	}
	if p2.Work != nil {
		t.Fatalf("nil work fn must not collect Work, got %v", p2.Work)
	}
	// Ops are the last execution's stats: seed 11 → 11%7+1 = 5 atomics.
	if p1.Ops != p2.Ops || p1.Ops.AtomicOps != 5 {
		t.Fatalf("Ops not deterministic: %+v vs %+v", p1.Ops, p2.Ops)
	}
	if p1.MeanWork() != 3 {
		t.Fatalf("MeanWork = %v, want 3", p1.MeanWork())
	}
}

func TestPerfEmpty(t *testing.T) {
	var p Perf
	if p.MeanTime() != 0 || p.RSDTime() != 0 || p.MeanWork() != 0 || p.RSDWork() != 0 {
		t.Fatalf("empty Perf aggregates should be zero")
	}
}

func TestGeomean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{2, 8}, 4},
		{[]float64{1, -1}, 0}, // nonpositive values: undefined, reported as 0
		{[]float64{3, 0}, 0},
	}
	for _, c := range cases {
		if got := Geomean(c.xs); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Geomean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestRSDEdgeCases(t *testing.T) {
	if got := rsd(nil); got != 0 {
		t.Errorf("rsd(empty) = %v, want 0", got)
	}
	if got := rsd([]float64{42}); got != 0 {
		t.Errorf("rsd(single) = %v, want 0", got)
	}
	if got := rsd([]float64{0, 0}); got != 0 {
		t.Errorf("rsd(zero mean) = %v, want 0", got)
	}
	// mean 10, sample stddev sqrt(2) → rsd = 10*sqrt(2) %.
	if got, want := rsd([]float64{9, 11}), 100*math.Sqrt2/10; math.Abs(got-want) > 1e-9 {
		t.Errorf("rsd([9 11]) = %v, want %v", got, want)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"bench", "rate"}}
	tb.AddRow("ms-queue", "100.0%")
	tb.AddRow("mp", "3.1%")
	got := tb.String()
	want := "" +
		"bench     rate  \n" +
		"--------  ------\n" +
		"ms-queue  100.0%\n" +
		"mp        3.1%  \n"
	if got != want {
		t.Fatalf("Table.String():\n%q\nwant:\n%q", got, want)
	}
	if !strings.HasPrefix(got, "bench") {
		t.Fatal("header missing")
	}
}

func TestFmtDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{2500 * time.Millisecond, "2.50s"},
		{time.Second, "1.00s"},
		{15 * time.Millisecond, "15.00ms"},
		{1500 * time.Microsecond, "1.50ms"},
		{900 * time.Microsecond, "900.0µs"},
		{0, "0.0µs"},
	}
	for _, c := range cases {
		if got := FmtDuration(c.d); got != c.want {
			t.Errorf("FmtDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestFmtOps(t *testing.T) {
	cases := []struct {
		n    uint64
		want string
	}{
		{63_700_000, "63.7M"},
		{1_000_000, "1.0M"},
		{63_700, "63.7K"},
		{1_000, "1.0K"},
		{999, "999"},
		{0, "0"},
	}
	for _, c := range cases {
		if got := FmtOps(c.n); got != c.want {
			t.Errorf("FmtOps(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}

func TestSummariesJSON(t *testing.T) {
	d := Detection{Runs: 4, Detected: 1, Time: time.Millisecond,
		Ops: capi.OpStats{AtomicOps: 10, NormalOps: 3}}
	b, err := json.Marshal(d.Summary())
	if err != nil {
		t.Fatal(err)
	}
	var ds DetectionSummary
	if err := json.Unmarshal(b, &ds); err != nil {
		t.Fatal(err)
	}
	if ds.RatePct != 25 || ds.MeanTimeNS != int64(time.Millisecond) || ds.AtomicOps != 10 {
		t.Fatalf("round-tripped DetectionSummary = %+v", ds)
	}

	p := Perf{Times: []time.Duration{time.Millisecond, 3 * time.Millisecond},
		Ops: capi.OpStats{AtomicOps: 7}}
	ps := p.Summary()
	if ps.Runs != 2 || ps.MeanTimeNS != int64(2*time.Millisecond) || ps.AtomicOps != 7 {
		t.Fatalf("PerfSummary = %+v", ps)
	}
}

func TestReproCommand(t *testing.T) {
	r := Repro{Tool: "c11tester", Program: "ms-queue", Seed: 42}
	want := "go run ./cmd/c11tester -tools c11tester -bench ms-queue -litmus none -runs 1 -seed 42 -json ''"
	if got := r.Command(); got != want {
		t.Fatalf("Command() = %q, want %q", got, want)
	}
	l := Repro{Tool: "tsan11", Program: "CoRR+opposed", Seed: 7, Litmus: true}
	want = "go run ./cmd/c11tester -tools tsan11 -bench none -litmus CoRR+opposed -runs 1 -seed 7 -json ''"
	if got := l.Command(); got != want {
		t.Fatalf("Command() = %q, want %q", got, want)
	}
}

func TestExecsPerSec(t *testing.T) {
	if got := ExecsPerSec(100, 2*time.Second); got != 50 {
		t.Fatalf("ExecsPerSec = %v, want 50", got)
	}
	if got := ExecsPerSec(100, 0); got != 0 {
		t.Fatalf("ExecsPerSec(zero wall) = %v, want 0", got)
	}
}
