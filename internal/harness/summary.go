package harness

import (
	"fmt"
	"time"

	"c11tester/internal/capi"
)

// Repro identifies one execution — which tool ran which program with which
// seed — so any failing execution (a detected race, a forbidden litmus
// outcome) can be replayed with a single command. Tools re-derive every
// scheduling and reads-from choice from the seed, so the triple is a
// complete reproduction recipe.
type Repro struct {
	Tool    string `json:"tool"`
	Program string `json:"program"`
	Seed    int64  `json:"seed"`
	// Litmus marks Program as a litmus-test name rather than a benchmark
	// name, which changes the flag it is replayed through.
	Litmus bool `json:"litmus,omitempty"`
	// Flags are the non-default tool-configuration flags (prune mode,
	// scheduler strategy, ...) the tool ran with. Without them the replay
	// would derive a different execution from the same seed.
	Flags string `json:"flags,omitempty"`
}

// Command renders the one-command replay invocation for this execution. The
// command selects only this program (and no artifact file), so running it
// verbatim has no side effects beyond the replay itself.
func (r Repro) Command() string {
	cmd := "go run ./cmd/c11tester -tools " + r.Tool
	if r.Flags != "" {
		cmd += " " + r.Flags
	}
	sel := fmt.Sprintf("-bench %s -litmus none", r.Program)
	if r.Litmus {
		sel = fmt.Sprintf("-bench none -litmus %s", r.Program)
	}
	return fmt.Sprintf("%s %s -runs 1 -seed %d -json ''", cmd, sel, r.Seed)
}

func (r Repro) String() string {
	return fmt.Sprintf("%s/%s seed=%d", r.Tool, r.Program, r.Seed)
}

// DetectionSummary is the JSON-serializable view of a Detection.
type DetectionSummary struct {
	Runs       int     `json:"runs"`
	Detected   int     `json:"detected"`
	RatePct    float64 `json:"rate_pct"`
	MeanTimeNS int64   `json:"mean_time_ns"`
	AtomicOps  uint64  `json:"atomic_ops"`
	NormalOps  uint64  `json:"normal_ops"`
}

// Summary converts d into its JSON-serializable form.
func (d Detection) Summary() DetectionSummary {
	return DetectionSummary{
		Runs:       d.Runs,
		Detected:   d.Detected,
		RatePct:    d.Rate(),
		MeanTimeNS: int64(d.Time),
		AtomicOps:  d.Ops.AtomicOps,
		NormalOps:  d.Ops.NormalOps,
	}
}

// PerfSummary is the JSON-serializable view of a Perf.
type PerfSummary struct {
	Runs       int     `json:"runs"`
	MeanTimeNS int64   `json:"mean_time_ns"`
	RSDTimePct float64 `json:"rsd_time_pct"`
	MeanWork   float64 `json:"mean_work,omitempty"`
	RSDWorkPct float64 `json:"rsd_work_pct,omitempty"`
	AtomicOps  uint64  `json:"atomic_ops"`
	NormalOps  uint64  `json:"normal_ops"`
}

// Summary converts p into its JSON-serializable form.
func (p Perf) Summary() PerfSummary {
	return PerfSummary{
		Runs:       len(p.Times),
		MeanTimeNS: int64(p.MeanTime()),
		RSDTimePct: p.RSDTime(),
		MeanWork:   p.MeanWork(),
		RSDWorkPct: p.RSDWork(),
		AtomicOps:  p.Ops.AtomicOps,
		NormalOps:  p.Ops.NormalOps,
	}
}

// ExecsPerSec converts a total execution count and wall-clock time into the
// throughput figure the campaign summaries report.
func ExecsPerSec(execs int, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(execs) / wall.Seconds()
}

// RaceSummary is the JSON-serializable view of one deduplicated race report
// plus the reproduction metadata of the execution that first exhibited it.
type RaceSummary struct {
	Key         string `json:"key"`
	Description string `json:"description"`
	Repro       Repro  `json:"repro"`
}

// NewRaceSummary builds a RaceSummary from a report and its repro triple.
func NewRaceSummary(r capi.RaceReport, repro Repro) RaceSummary {
	return RaceSummary{Key: r.Key(), Description: r.String(), Repro: repro}
}
