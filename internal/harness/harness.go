// Package harness runs programs under tools and aggregates the metrics the
// paper reports: bug/race detection rates over repeated executions
// (Section 8.1, Table 2), execution time and throughput statistics with
// relative standard deviations (Table 1, Table 4), operation counts
// (Table 3), and the geometric-mean speedups of Figure 15.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"c11tester/internal/capi"
)

// Signal selects which bug signal counts as a detection.
type Signal int

const (
	// SignalRace counts executions that reported a data race.
	SignalRace Signal = iota
	// SignalAssert counts executions with assertion violations.
	SignalAssert
	// SignalAny counts races, assertion violations, and deadlocks.
	SignalAny
)

// Hit reports whether the execution exhibited this signal.
func (s Signal) Hit(r *capi.Result) bool {
	switch s {
	case SignalRace:
		return len(r.Races) > 0
	case SignalAssert:
		return len(r.AssertFailures) > 0
	default:
		return r.Buggy()
	}
}

// Detection aggregates a detection-rate experiment.
type Detection struct {
	Runs     int
	Detected int
	// Time is the mean wall-clock time per execution.
	Time time.Duration
	// Ops accumulates the operation counts over all executions.
	Ops capi.OpStats
}

// Rate returns the detection rate in percent.
func (d Detection) Rate() float64 {
	if d.Runs == 0 {
		return 0
	}
	return 100 * float64(d.Detected) / float64(d.Runs)
}

// MeasureDetection executes prog runs times under tool and counts
// executions exhibiting the signal.
func MeasureDetection(tool capi.Tool, prog capi.Program, runs int, seedBase int64, signal Signal) Detection {
	d := Detection{Runs: runs}
	start := time.Now()
	for i := 0; i < runs; i++ {
		res := tool.Execute(prog, seedBase+int64(i))
		if signal.Hit(res) {
			d.Detected++
		}
		d.Ops.Add(res.Stats)
	}
	if runs > 0 {
		d.Time = time.Since(start) / time.Duration(runs)
	}
	return d
}

// Perf aggregates a timed experiment.
type Perf struct {
	Times []time.Duration
	// Ops are the operation counts of the last execution.
	Ops capi.OpStats
	// Work is the application-reported work metric per run (throughput
	// numerator), when the workload provides one.
	Work []float64
}

// MeasurePerf executes prog runs times under tool, timing each execution.
// work, if non-nil, extracts the run's application-level work metric.
func MeasurePerf(tool capi.Tool, prog capi.Program, runs int, seedBase int64, work func() float64) Perf {
	var p Perf
	for i := 0; i < runs; i++ {
		start := time.Now()
		res := tool.Execute(prog, seedBase+int64(i))
		p.Times = append(p.Times, time.Since(start))
		p.Ops = res.Stats
		if work != nil {
			p.Work = append(p.Work, work())
		}
	}
	return p
}

// MeanTime returns the mean execution time.
func (p Perf) MeanTime() time.Duration {
	if len(p.Times) == 0 {
		return 0
	}
	var sum time.Duration
	for _, t := range p.Times {
		sum += t
	}
	return sum / time.Duration(len(p.Times))
}

// RSDTime returns the relative standard deviation of execution times in
// percent (the parenthesised numbers of Table 1).
func (p Perf) RSDTime() float64 {
	return rsd(durationsToFloats(p.Times))
}

// MeanWork and RSDWork aggregate the throughput metric.
func (p Perf) MeanWork() float64 { return mean(p.Work) }
func (p Perf) RSDWork() float64  { return rsd(p.Work) }

func durationsToFloats(ts []time.Duration) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = float64(t)
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func rsd(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	if m == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return 100 * math.Sqrt(ss/float64(len(xs)-1)) / m
}

// Geomean returns the geometric mean of positive values (Figure 15's
// cross-benchmark aggregation).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Table is a simple fixed-width text table for experiment output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FmtDuration renders a duration in the unit the paper's tables use.
func FmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

// FmtBytes renders a byte count in compact binary units.
func FmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// FmtOps renders an operation count the way Table 3 does (e.g. "63.7M").
func FmtOps(n uint64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// SortedKeys returns the sorted keys of a string-keyed map (deterministic
// experiment output).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
