package race

import (
	"math/rand"
	"testing"
	"testing/quick"

	"c11tester/internal/memmodel"
)

// always and never are trivial happens-before oracles.
func always(memmodel.TID, memmodel.SeqNum) bool { return true }
func never(memmodel.TID, memmodel.SeqNum) bool  { return false }

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []struct {
		wTID, rTID memmodel.TID
		wClk, rClk memmodel.SeqNum
		wNA, rNA   bool
	}{
		{0, 0, 0, 0, false, false},
		{1, 2, 100, 200, true, false},
		{maxPackedTID, maxPackedTID, maxPackedClock, maxPackedClock, true, true},
		{5, 0, 1, 0, false, true},
	}
	for _, c := range cases {
		word := pack(c.wTID, c.wClk, c.wNA, c.rTID, c.rClk, c.rNA)
		wTID, wClk, wNA := unpackWrite(word)
		rTID, rClk, rNA := unpackRead(word)
		if wTID != c.wTID || wClk != c.wClk || wNA != c.wNA {
			t.Errorf("write round trip failed: %+v → %v %v %v", c, wTID, wClk, wNA)
		}
		if rTID != c.rTID || rClk != c.rClk || rNA != c.rNA {
			t.Errorf("read round trip failed: %+v → %v %v %v", c, rTID, rClk, rNA)
		}
	}
}

func TestWriteWriteRace(t *testing.T) {
	var s Shadow
	if c := s.OnWrite(0, 1, false, never, nil); len(c) != 0 {
		t.Fatal("first write cannot race")
	}
	c := s.OnWrite(1, 5, false, never, nil)
	if len(c) != 1 || !c[0].PriorWrite || c[0].PriorTID != 0 || c[0].PriorClock != 1 {
		t.Fatalf("expected write-write race with (0,1), got %+v", c)
	}
}

func TestOrderedWritesDoNotRace(t *testing.T) {
	var s Shadow
	s.OnWrite(0, 1, false, never, nil)
	if c := s.OnWrite(1, 5, false, always, nil); len(c) != 0 {
		t.Fatalf("hb-ordered writes must not race: %+v", c)
	}
}

func TestReadWriteRace(t *testing.T) {
	var s Shadow
	s.OnRead(0, 1, false, never, nil)
	c := s.OnWrite(1, 5, false, never, nil)
	if len(c) != 1 || c[0].PriorWrite || c[0].PriorTID != 0 {
		t.Fatalf("expected read-write race, got %+v", c)
	}
}

func TestWriteReadRace(t *testing.T) {
	var s Shadow
	s.OnWrite(0, 1, false, never, nil)
	c := s.OnRead(1, 5, false, never, nil)
	if len(c) != 1 || !c[0].PriorWrite {
		t.Fatalf("expected write-read race, got %+v", c)
	}
}

func TestAtomicAtomicNeverRaces(t *testing.T) {
	var s Shadow
	s.OnWrite(0, 1, true, never, nil)
	if c := s.OnWrite(1, 5, true, never, nil); len(c) != 0 {
		t.Fatalf("atomic/atomic writes must not race: %+v", c)
	}
	if c := s.OnRead(2, 7, true, never, nil); len(c) != 0 {
		t.Fatalf("atomic read of atomic write must not race: %+v", c)
	}
}

func TestMixedAtomicNonAtomicRaces(t *testing.T) {
	var s Shadow
	s.OnWrite(0, 1, false, never, nil) // non-atomic write
	c := s.OnRead(1, 5, true, never, nil)
	if len(c) != 1 {
		t.Fatalf("atomic read must race with unordered non-atomic write: %+v", c)
	}
	var s2 Shadow
	s2.OnWrite(0, 1, true, never, nil) // atomic write
	c = s2.OnRead(1, 5, false, never, nil)
	if len(c) != 1 {
		t.Fatalf("non-atomic read must race with unordered atomic write: %+v", c)
	}
}

func TestReadsClearedByWrite(t *testing.T) {
	var s Shadow
	s.OnRead(0, 1, false, never, nil)
	s.OnWrite(1, 2, false, always, nil) // ordered after the read
	// A write ordered after the previous write must not re-report against
	// the cleared read.
	if c := s.OnWrite(2, 3, false, always, nil); len(c) != 0 {
		t.Fatalf("reads must be subsumed by the write: %+v", c)
	}
}

func TestConcurrentReadersExpandAndBothRace(t *testing.T) {
	var s Shadow
	s.OnRead(0, 1, false, never, nil)
	s.OnRead(1, 2, false, never, nil) // concurrent with the first read
	if !s.Expanded() {
		t.Fatal("two concurrent readers must expand the shadow word")
	}
	c := s.OnWrite(2, 3, false, never, nil)
	if len(c) != 2 {
		t.Fatalf("write must race with both concurrent readers, got %+v", c)
	}
}

func TestLastWrite(t *testing.T) {
	var s Shadow
	if _, _, _, ok := s.LastWrite(); ok {
		t.Fatal("fresh shadow has no last write")
	}
	s.OnWrite(3, 9, false, always, nil)
	tid, clk, na, ok := s.LastWrite()
	if !ok || tid != 3 || clk != 9 || !na {
		t.Fatalf("unexpected last write %v %v %v %v", tid, clk, na, ok)
	}
	s.OnWrite(2, 11, true, always, nil)
	_, _, na, _ = s.LastWrite()
	if na {
		t.Fatal("atomic write must clear the non-atomic flag")
	}
}

func TestOverflowSpillsToExpanded(t *testing.T) {
	var s Shadow
	s.OnWrite(0, maxPackedClock+1, false, always, nil)
	if !s.Expanded() {
		t.Fatal("clock overflow must expand")
	}
	tid, clk, _, ok := s.LastWrite()
	if !ok || tid != 0 || clk != maxPackedClock+1 {
		t.Fatalf("expanded last write wrong: %v %v", tid, clk)
	}
	var s2 Shadow
	s2.OnRead(maxPackedTID+1, 1, false, always, nil)
	if !s2.Expanded() {
		t.Fatal("tid overflow must expand")
	}
}

// refShadow is a brute-force oracle keeping every access ever made.
type refShadow struct {
	accs []struct {
		acc   access
		write bool
	}
}

func (r *refShadow) on(tid memmodel.TID, clock memmodel.SeqNum, atomic, write bool, hb HB) int {
	races := 0
	for _, p := range r.accs {
		if !p.write && !write {
			continue // read/read never races
		}
		if !p.acc.na && atomic {
			continue // atomic/atomic never races
		}
		if !hb(p.acc.tid, p.acc.clock) {
			races++
		}
	}
	r.accs = append(r.accs, struct {
		acc   access
		write bool
	}{access{tid, clock, !atomic}, write})
	if write {
		// Writes subsume prior accesses, as in FastTrack.
		r.accs = r.accs[len(r.accs)-1:]
	}
	return races
}

// TestQuickAgainstBruteForce drives random access sequences through the
// shadow word and an always-expanded oracle, with an hb relation generated
// from a random program order: accesses by the same thread are ordered;
// cross-thread accesses are ordered iff a randomly chosen "sync epoch"
// covers them. Detected race *counts* may differ (FastTrack reports each
// racing pair once against its kept representatives), but race *presence*
// per access must match on write checks.
func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s Shadow
		var ref refShadow
		// hb oracle: everything with clock below the sync frontier is
		// ordered before the current access.
		frontier := memmodel.SeqNum(0)
		clock := memmodel.SeqNum(1)
		for i := 0; i < 40; i++ {
			if r.Intn(5) == 0 {
				frontier = clock // global synchronization point
			}
			tid := memmodel.TID(r.Intn(4))
			atomic := r.Intn(3) == 0
			write := r.Intn(2) == 0
			self := tid
			hb := func(pt memmodel.TID, pc memmodel.SeqNum) bool {
				return pt == self || pc <= frontier
			}
			var got []Conflict
			var want int
			if write {
				got = s.OnWrite(tid, clock, atomic, hb, nil)
				want = ref.on(tid, clock, atomic, true, hb)
			} else {
				got = s.OnRead(tid, clock, atomic, hb, nil)
				want = ref.on(tid, clock, atomic, false, hb)
			}
			if (len(got) > 0) != (want > 0) {
				t.Logf("step %d: got %d conflicts, oracle %d (tid=%d write=%v atomic=%v)", i, len(got), want, tid, write, atomic)
				return false
			}
			clock++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
