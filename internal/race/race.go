// Package race implements the FastTrack-style data race detector C11Tester
// embeds (Section 7.2 of the paper).
//
// Each shared location carries a 64-bit shadow word packing the last write
// (25-bit clock, 6-bit thread id, atomic/non-atomic bit) and the last read
// (same layout). When the packed representation cannot express the state —
// clock overflow, thread id overflow, or multiple concurrent readers — the
// shadow word is replaced by a reference to an expanded access record, just
// as the paper describes.
//
// Atomic accesses participate so that mixed atomic/non-atomic races are
// caught: a race is any pair of conflicting accesses, at least one of them a
// write and at least one of them non-atomic, that are not ordered by
// happens-before. Volatile accesses are mapped to atomics by the engine
// before they reach this package, which is why C11Tester intentionally does
// not warn about volatile/volatile or volatile/atomic pairs (Section 8.2).
package race

import "c11tester/internal/memmodel"

// Packed shadow word layout (low to high):
//
//	bits  0..24  write clock (25 bits)
//	bits 25..30  write thread id (6 bits)
//	bit  31      write was non-atomic
//	bits 32..56  read clock (25 bits)
//	bits 57..62  read thread id (6 bits)
//	bit  63      read was non-atomic
const (
	clockBits = 25
	tidBits   = 6
	clockMask = (1 << clockBits) - 1
	tidMask   = (1 << tidBits) - 1

	maxPackedClock = clockMask
	maxPackedTID   = tidMask
)

func pack(wTID memmodel.TID, wClock memmodel.SeqNum, wNA bool,
	rTID memmodel.TID, rClock memmodel.SeqNum, rNA bool) uint64 {
	w := uint64(wClock&clockMask) | uint64(wTID&tidMask)<<clockBits
	if wNA {
		w |= 1 << 31
	}
	r := uint64(rClock&clockMask) | uint64(rTID&tidMask)<<clockBits
	if rNA {
		r |= 1 << 31
	}
	return w | r<<32
}

func unpackWrite(word uint64) (memmodel.TID, memmodel.SeqNum, bool) {
	return memmodel.TID(word >> clockBits & tidMask),
		memmodel.SeqNum(word & clockMask),
		word&(1<<31) != 0
}

func unpackRead(word uint64) (memmodel.TID, memmodel.SeqNum, bool) {
	r := word >> 32
	return memmodel.TID(r >> clockBits & tidMask),
		memmodel.SeqNum(r & clockMask),
		r&(1<<31) != 0
}

// access is one recorded access in an expanded record.
type access struct {
	tid   memmodel.TID
	clock memmodel.SeqNum
	na    bool
}

// expanded is the spilled representation of a shadow word.
type expanded struct {
	write    access
	hasWrite bool
	reads    []access
}

// Conflict describes the prior access of a detected race. The engine turns
// conflicts into reports (attaching location names and the current access).
type Conflict struct {
	PriorTID   memmodel.TID
	PriorClock memmodel.SeqNum
	PriorWrite bool // prior access was a write
	PriorNA    bool // prior access was non-atomic
}

// HB reports whether the event (tid, clock) happens before the current
// access; the engine supplies the current thread's clock-vector check.
type HB func(memmodel.TID, memmodel.SeqNum) bool

// Shadow is the race-detector state of one location. The zero value
// describes a never-accessed location.
type Shadow struct {
	word uint64
	ext  *expanded
	// spare retains a spilled record across Reset calls, so a pooled
	// location that expands again in a later execution reuses the record
	// (and its reads capacity) instead of allocating.
	spare *expanded
}

// Reset clears the shadow for a new execution, keeping a previously spilled
// expanded record for reuse. Location pools call it instead of zeroing the
// struct, which would discard the record's backing memory.
func (s *Shadow) Reset() {
	s.word = 0
	if s.ext != nil {
		s.spare = s.ext
		s.ext = nil
	}
}

// LastWrite returns the recorded last write, if any.
func (s *Shadow) LastWrite() (tid memmodel.TID, clock memmodel.SeqNum, na, ok bool) {
	if s.ext != nil {
		if !s.ext.hasWrite {
			return 0, 0, false, false
		}
		w := s.ext.write
		return w.tid, w.clock, w.na, true
	}
	tid, clock, na = unpackWrite(s.word)
	return tid, clock, na, clock != 0 || tid != 0
}

// Expanded reports whether the shadow word spilled to an expanded record
// (exposed for tests and stats).
func (s *Shadow) Expanded() bool { return s.ext != nil }

func (s *Shadow) expand() *expanded {
	if s.ext != nil {
		return s.ext
	}
	e := s.spare
	if e != nil {
		s.spare = nil
		e.write = access{}
		e.hasWrite = false
		e.reads = e.reads[:0]
	} else {
		e = &expanded{}
	}
	if wTID, wClock, wNA := unpackWrite(s.word); wClock != 0 || wTID != 0 {
		e.write = access{wTID, wClock, wNA}
		e.hasWrite = true
	}
	if rTID, rClock, rNA := unpackRead(s.word); rClock != 0 || rTID != 0 {
		e.reads = append(e.reads, access{rTID, rClock, rNA})
	}
	s.ext = e
	return e
}

func fitsPacked(tid memmodel.TID, clock memmodel.SeqNum) bool {
	return tid >= 0 && tid <= maxPackedTID && clock > 0 && clock <= maxPackedClock
}

// OnWrite checks a write access by (tid, clock) against the recorded state,
// appends any races to conflicts, records the write, and returns the updated
// conflict slice. atomic marks the access as an atomic (or volatile) store.
// A write races with any prior access that is not happens-before it, unless
// both accesses are atomic.
func (s *Shadow) OnWrite(tid memmodel.TID, clock memmodel.SeqNum, atomic bool, hb HB, conflicts []Conflict) []Conflict {
	na := !atomic
	if s.ext == nil && fitsPacked(tid, clock) {
		wTID, wClock, wNA := unpackWrite(s.word)
		if wClock != 0 && (wNA || na) && !hb(wTID, wClock) {
			conflicts = append(conflicts, Conflict{wTID, wClock, true, wNA})
		}
		rTID, rClock, rNA := unpackRead(s.word)
		if rClock != 0 && (rNA || na) && !hb(rTID, rClock) {
			conflicts = append(conflicts, Conflict{rTID, rClock, false, rNA})
		}
		// FastTrack: a write subsumes prior read information.
		s.word = pack(tid, clock, na, 0, 0, false)
		return conflicts
	}
	e := s.expand()
	if e.hasWrite && (e.write.na || na) && !hb(e.write.tid, e.write.clock) {
		conflicts = append(conflicts, Conflict{e.write.tid, e.write.clock, true, e.write.na})
	}
	for _, r := range e.reads {
		if (r.na || na) && !hb(r.tid, r.clock) {
			conflicts = append(conflicts, Conflict{r.tid, r.clock, false, r.na})
		}
	}
	e.write = access{tid, clock, na}
	e.hasWrite = true
	e.reads = e.reads[:0]
	return conflicts
}

// OnRead checks a read access by (tid, clock) against the recorded write,
// appends any race to conflicts, records the read, and returns the updated
// slice. A read races with a prior write that is not happens-before it,
// unless both accesses are atomic.
func (s *Shadow) OnRead(tid memmodel.TID, clock memmodel.SeqNum, atomic bool, hb HB, conflicts []Conflict) []Conflict {
	na := !atomic
	if s.ext == nil && fitsPacked(tid, clock) {
		wTID, wClock, wNA := unpackWrite(s.word)
		if wClock != 0 && (wNA || na) && !hb(wTID, wClock) {
			conflicts = append(conflicts, Conflict{wTID, wClock, true, wNA})
		}
		rTID, rClock, rNA := unpackRead(s.word)
		switch {
		case rClock == 0 || (rTID == tid && rNA == na):
			// Empty or same-thread same-mode read slot: overwrite in place
			// (same-thread accesses are program-ordered).
			s.word = pack(wTID, wClock, wNA, tid, clock, na)
		case hb(rTID, rClock) && (na || !rNA):
			// The previous reader is ordered before us and keeping only the
			// newer read loses no race: an access unordered with the old
			// read is also not ordered after the new one, and the new read
			// races with at least as many access modes (a non-atomic read
			// must never be replaced by an atomic one — an unordered atomic
			// write races with the former but not the latter).
			s.word = pack(wTID, wClock, wNA, tid, clock, na)
		default:
			// Concurrent readers, or mode information would be lost: spill
			// to the expanded record.
			e := s.expand()
			e.reads = append(e.reads, access{tid, clock, na})
		}
		return conflicts
	}
	e := s.expand()
	if e.hasWrite && (e.write.na || na) && !hb(e.write.tid, e.write.clock) {
		conflicts = append(conflicts, Conflict{e.write.tid, e.write.clock, true, e.write.na})
	}
	// Keep reads minimal: drop entries this read subsumes — same thread and
	// mode (program-ordered), or happens-before this read without losing
	// non-atomic mode information.
	kept := e.reads[:0]
	for _, r := range e.reads {
		if r.tid == tid && r.na == na {
			continue
		}
		if hb(r.tid, r.clock) && (na || !r.na) {
			continue
		}
		kept = append(kept, r)
	}
	e.reads = append(kept, access{tid, clock, na})
	return conflicts
}
