// Package litmus provides the classic weak-memory litmus tests as programs
// for the capi instrumentation boundary, each with an oracle classifying
// outcomes as forbidden or as weak (allowed but not sequentially
// consistent) under the C11Tester memory-model fragment (Section 2.2).
// They validate the engine, differentiate the baselines, and drive
// cmd/litmus.
//
// Each Test.Make call builds a fresh program *instance*: the location
// handles, outcome registers, and thread bodies live in the instance (they
// are rebound by Run at the start of every execution), so steady-state
// executions of an instance allocate nothing — outcome strings are interned
// and thread bodies are closures built once at Make time. An instance runs
// one execution at a time; concurrent campaign cells each make their own.
package litmus

import (
	"fmt"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
)

const (
	rlx = memmodel.Relaxed
	acq = memmodel.Acquire
	rel = memmodel.Release
	sc  = memmodel.SeqCst
)

// internMax bounds the per-register values covered by the interned outcome
// tables; litmus registers only ever hold tiny constants (0..3).
const internMax = 4

var (
	rrOut   [internMax][internMax]string                       // "r1=%d r2=%d"
	d2Out   [internMax][internMax]string                       // "%d%d"
	d3Out   [internMax][internMax][internMax]string            // "%d%d%d"
	d4Out   [internMax][internMax][internMax][internMax]string // "%d%d%d%d"
	winsOut [internMax]string                                  // "wins=%d"
)

func init() {
	for i := 0; i < internMax; i++ {
		winsOut[i] = fmt.Sprintf("wins=%d", i)
		for j := 0; j < internMax; j++ {
			rrOut[i][j] = fmt.Sprintf("r1=%d r2=%d", i, j)
			d2Out[i][j] = fmt.Sprintf("%d%d", i, j)
			for k := 0; k < internMax; k++ {
				d3Out[i][j][k] = fmt.Sprintf("%d%d%d", i, j, k)
				for l := 0; l < internMax; l++ {
					d4Out[i][j][k][l] = fmt.Sprintf("%d%d%d%d", i, j, k, l)
				}
			}
		}
	}
}

// outRR interns the "r1=%d r2=%d" outcome; recording an outcome must not
// allocate per execution (the zero-alloc steady-state invariant of the
// fiber-pool perf matrix). The Sprintf fallbacks are unreachable for the
// suite's programs and only guard future tests with larger constants.
func outRR(r1, r2 memmodel.Value) string {
	if r1 < internMax && r2 < internMax {
		return rrOut[r1][r2]
	}
	return fmt.Sprintf("r1=%d r2=%d", r1, r2)
}

func outD2(a, b memmodel.Value) string {
	if a < internMax && b < internMax {
		return d2Out[a][b]
	}
	return fmt.Sprintf("%d%d", a, b)
}

func outD3(a, b, c memmodel.Value) string {
	if a < internMax && b < internMax && c < internMax {
		return d3Out[a][b][c]
	}
	return fmt.Sprintf("%d%d%d", a, b, c)
}

func outD4(a, b, c, d memmodel.Value) string {
	if a < internMax && b < internMax && c < internMax && d < internMax {
		return d4Out[a][b][c][d]
	}
	return fmt.Sprintf("%d%d%d%d", a, b, c, d)
}

func outWins(n memmodel.Value) string {
	if n < internMax {
		return winsOut[n]
	}
	return fmt.Sprintf("wins=%d", n)
}

// Test is one litmus test.
type Test struct {
	Name string
	Doc  string
	// Forbidden outcomes under the C11Tester fragment (hb ∪ sc ∪ rf
	// acyclic). Observing one is a model soundness bug.
	Forbidden map[string]bool
	// Weak outcomes are allowed but not sequentially consistent; a complete
	// exploration should eventually produce them.
	Weak map[string]bool
	// BaselineForbidden marks outcomes additionally forbidden under the
	// tsan11/tsan11rec fragment (hb ∪ sc ∪ rf ∪ mo acyclic): the fragment
	// gap of Section 1.1.
	BaselineForbidden map[string]bool
	// Make builds a program instance; each execution writes its outcome to
	// *out ("" means the run was skipped, e.g. a bounded spin starved). An
	// instance must only run one execution at a time.
	Make func(out *string) capi.Program
}

// spin waits (boundedly) for l to become nonzero; it returns false if the
// scheduler starved the producer.
func spin(env capi.Env, l capi.Loc, mo memmodel.MemoryOrder) bool {
	for i := 0; i < 300; i++ {
		if env.Load(l, mo) != 0 {
			return true
		}
		env.Yield()
	}
	return false
}

// Tests returns the litmus suite.
func Tests() []*Test {
	return []*Test{
		{
			Name: "MP+rlx",
			Doc:  "message passing, all relaxed: the stale read r1=1,r2=0 is allowed (Figure 2)",
			Weak: map[string]bool{"r1=1 r2=0": true},
			Make: func(out *string) capi.Program {
				return prog2(out, func(env capi.Env, x, y capi.Loc) {
					env.Store(x, 1, rlx)
					env.Store(y, 1, rlx)
				}, func(env capi.Env, x, y capi.Loc) string {
					r1 := env.Load(y, rlx)
					r2 := env.Load(x, rlx)
					return outRR(r1, r2)
				})
			},
		},
		{
			Name:      "MP+rel+acq",
			Doc:       "message passing with release/acquire: the stale read is forbidden",
			Forbidden: map[string]bool{"r1=1 r2=0": true},
			Make: func(out *string) capi.Program {
				return prog2(out, func(env capi.Env, x, y capi.Loc) {
					env.Store(x, 1, rlx)
					env.Store(y, 1, rel)
				}, func(env capi.Env, x, y capi.Loc) string {
					r1 := env.Load(y, acq)
					r2 := env.Load(x, rlx)
					return outRR(r1, r2)
				})
			},
		},
		{
			Name: "SB+rlx",
			Doc:  "store buffering, relaxed: r1=r2=0 allowed",
			Weak: map[string]bool{"r1=0 r2=0": true},
			Make: sbProgram(rlx),
		},
		{
			Name:      "SB+sc",
			Doc:       "store buffering, seq_cst: r1=r2=0 forbidden",
			Forbidden: map[string]bool{"r1=0 r2=0": true},
			Make:      sbProgram(sc),
		},
		{
			Name:      "LB+rlx",
			Doc:       "load buffering: r1=r2=1 forbidden by hb ∪ sc ∪ rf acyclicity (no OOTA)",
			Forbidden: map[string]bool{"r1=1 r2=1": true},
			Make: func(out *string) capi.Program {
				var x, y capi.Loc
				var r1, r2 memmodel.Value
				aBody := func(env capi.Env) {
					r1 = env.Load(y, rlx)
					env.Store(x, 1, rlx)
				}
				bBody := func(env capi.Env) {
					r2 = env.Load(x, rlx)
					env.Store(y, 1, rlx)
				}
				return capi.Program{Name: "LB+rlx", Run: func(env capi.Env) {
					x = env.NewAtomic("x", 0)
					y = env.NewAtomic("y", 0)
					r1, r2 = 0, 0
					a := env.Spawn("A", aBody)
					b := env.Spawn("B", bBody)
					env.Join(a)
					env.Join(b)
					*out = outRR(r1, r2)
				}}
			},
		},
		{
			Name:      "CoRR",
			Doc:       "read-read coherence: same-thread writes 1 then 2 can never be read 2 then 1",
			Forbidden: map[string]bool{"21": true, "10": true, "20": true},
			Weak:      map[string]bool{"01": true, "02": true},
			Make: func(out *string) capi.Program {
				var x capi.Loc
				aBody := func(env capi.Env) {
					env.Store(x, 1, rlx)
					env.Store(x, 2, rlx)
				}
				bBody := func(env capi.Env) {
					r1 := env.Load(x, rlx)
					r2 := env.Load(x, rlx)
					*out = outD2(r1, r2)
				}
				return capi.Program{Name: "CoRR", Run: func(env capi.Env) {
					x = env.NewAtomic("x", 0)
					a := env.Spawn("A", aBody)
					b := env.Spawn("B", bBody)
					env.Join(a)
					env.Join(b)
				}}
			},
		},
		{
			Name:      "IRIW+sc",
			Doc:       "independent reads of independent writes, seq_cst: readers must agree",
			Forbidden: map[string]bool{"1010": true},
			Make:      iriwProgram(sc, sc),
		},
		{
			Name: "IRIW+acq",
			Doc:  "IRIW with release/acquire: disagreeing readers allowed (ARM-observable)",
			Weak: map[string]bool{"1010": true},
			Make: iriwProgram(rel, acq),
		},
		{
			Name:      "RelSeq+rmw",
			Doc:       "C++20 release sequence: relaxed RMW passes synchronization through",
			Forbidden: map[string]bool{"sync-miss": true},
			Weak:      map[string]bool{"synced": true},
			Make: func(out *string) capi.Program {
				var d, f capi.Loc
				aBody := func(env capi.Env) {
					env.Store(d, 7, rlx)
					env.Store(f, 1, rel)
				}
				bBody := func(env capi.Env) {
					env.FetchAdd(f, 1, rlx)
				}
				cBody := func(env capi.Env) {
					if env.Load(f, acq) == 2 {
						if env.Load(d, rlx) == 7 {
							*out = "synced"
						} else {
							*out = "sync-miss"
						}
					}
				}
				return capi.Program{Name: "RelSeq+rmw", Run: func(env capi.Env) {
					d = env.NewAtomic("d", 0)
					f = env.NewAtomic("f", 0)
					a := env.Spawn("A", aBody)
					b := env.Spawn("B", bBody)
					c := env.Spawn("C", cBody)
					env.Join(a)
					env.Join(b)
					env.Join(c)
				}}
			},
		},
		{
			Name:      "MP+fences",
			Doc:       "message passing through release/acquire fences",
			Forbidden: map[string]bool{"r1=1 r2=0": true},
			Make: func(out *string) capi.Program {
				return prog2(out, func(env capi.Env, x, y capi.Loc) {
					env.Store(x, 1, rlx)
					env.Fence(rel)
					env.Store(y, 1, rlx)
				}, func(env capi.Env, x, y capi.Loc) string {
					r1 := env.Load(y, rlx)
					env.Fence(acq)
					r2 := env.Load(x, rlx)
					return outRR(r1, r2)
				})
			},
		},
		{
			Name: "CoRR+opposed",
			Doc: "fresh-then-stale reads of two commit-ordered but hb-unordered stores: " +
				"allowed by C/C++11, impossible when mo must extend the commit order (Section 1.1)",
			Weak:              map[string]bool{"21": true},
			BaselineForbidden: map[string]bool{"21": true},
			Make: func(out *string) capi.Program {
				var x, f, g capi.Loc
				w1Body := func(env capi.Env) {
					env.Store(x, 1, rlx)
					env.Store(f, 1, rlx)
				}
				w2Body := func(env capi.Env) {
					if !spin(env, f, rlx) {
						return
					}
					env.Store(x, 2, rlx)
					env.Store(g, 1, rlx)
				}
				rBody := func(env capi.Env) {
					if !spin(env, g, rlx) {
						return
					}
					a := env.Load(x, rlx)
					b := env.Load(x, rlx)
					*out = outD2(a, b)
				}
				return capi.Program{Name: "CoRR+opposed", Run: func(env capi.Env) {
					x = env.NewAtomic("x", 0)
					f = env.NewAtomic("f", 0)
					g = env.NewAtomic("g", 0)
					w1 := env.Spawn("w1", w1Body)
					w2 := env.Spawn("w2", w2Body)
					r := env.Spawn("r", rBody)
					env.Join(w1)
					env.Join(w2)
					env.Join(r)
				}}
			},
		},
		{
			Name:      "W+RWC",
			Doc:       "write-to-read causality with seq_cst accesses: the non-SC outcome is forbidden",
			Forbidden: map[string]bool{"100": true},
			Make: func(out *string) capi.Program {
				var x, y capi.Loc
				var a1, b1, c1 memmodel.Value
				aBody := func(env capi.Env) { env.Store(x, 1, sc) }
				bBody := func(env capi.Env) {
					a1 = env.Load(x, sc)
					b1 = env.Load(y, sc)
				}
				cBody := func(env capi.Env) {
					env.Store(y, 1, sc)
					c1 = env.Load(x, sc)
				}
				return capi.Program{Name: "W+RWC", Run: func(env capi.Env) {
					x = env.NewAtomic("x", 0)
					y = env.NewAtomic("y", 0)
					a1, b1, c1 = 0, 0, 0
					ta := env.Spawn("a", aBody)
					tb := env.Spawn("b", bBody)
					tc := env.Spawn("c", cBody)
					env.Join(ta)
					env.Join(tb)
					env.Join(tc)
					*out = outD3(a1, b1, c1)
				}}
			},
		},
		{
			Name:      "CAS+winner",
			Doc:       "a strong CAS from the initial value has exactly one winner",
			Forbidden: map[string]bool{"wins=0": true, "wins=2": true, "wins=3": true},
			Make: func(out *string) capi.Program {
				var x capi.Loc
				var wins memmodel.Value
				body := func(env capi.Env) {
					if _, ok := env.CompareExchange(x, 0, 1, sc, sc); ok {
						wins++
					}
				}
				var threads [3]capi.Thread
				return capi.Program{Name: "CAS+winner", Run: func(env capi.Env) {
					x = env.NewAtomic("x", 0)
					wins = 0
					for i := range threads {
						threads[i] = env.Spawn("t", body)
					}
					for _, th := range threads {
						env.Join(th)
					}
					*out = outWins(wins)
				}}
			},
		},
	}
}

// ByName looks a litmus test up by its Name; ok is false if none matches.
func ByName(name string) (*Test, bool) {
	for _, t := range Tests() {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}

// Names returns the names of all litmus tests in suite order.
func Names() []string {
	tests := Tests()
	names := make([]string, len(tests))
	for i, t := range tests {
		names[i] = t.Name
	}
	return names
}

// prog2 builds a two-location, two-thread program instance whose reader
// thread produces the outcome. The location handles and thread bodies are
// instance state, rebound at the start of every Run.
func prog2(out *string, writer func(capi.Env, capi.Loc, capi.Loc), reader func(capi.Env, capi.Loc, capi.Loc) string) capi.Program {
	var x, y capi.Loc
	wBody := func(env capi.Env) { writer(env, x, y) }
	rBody := func(env capi.Env) { *out = reader(env, x, y) }
	return capi.Program{Name: "litmus", Run: func(env capi.Env) {
		x = env.NewAtomic("x", 0)
		y = env.NewAtomic("y", 0)
		a := env.Spawn("A", wBody)
		b := env.Spawn("B", rBody)
		env.Join(a)
		env.Join(b)
	}}
}

func sbProgram(mo memmodel.MemoryOrder) func(out *string) capi.Program {
	return func(out *string) capi.Program {
		var x, y capi.Loc
		var r1, r2 memmodel.Value
		aBody := func(env capi.Env) {
			env.Store(x, 1, mo)
			r1 = env.Load(y, mo)
		}
		bBody := func(env capi.Env) {
			env.Store(y, 1, mo)
			r2 = env.Load(x, mo)
		}
		return capi.Program{Name: "SB", Run: func(env capi.Env) {
			x = env.NewAtomic("x", 0)
			y = env.NewAtomic("y", 0)
			r1, r2 = 0, 0
			a := env.Spawn("A", aBody)
			b := env.Spawn("B", bBody)
			env.Join(a)
			env.Join(b)
			*out = outRR(r1, r2)
		}}
	}
}

func iriwProgram(w, r memmodel.MemoryOrder) func(out *string) capi.Program {
	return func(out *string) capi.Program {
		var x, y capi.Loc
		var a1, a2, b1, b2 memmodel.Value
		w1Body := func(env capi.Env) { env.Store(x, 1, w) }
		w2Body := func(env capi.Env) { env.Store(y, 1, w) }
		r1Body := func(env capi.Env) { a1 = env.Load(x, r); a2 = env.Load(y, r) }
		r2Body := func(env capi.Env) { b1 = env.Load(y, r); b2 = env.Load(x, r) }
		return capi.Program{Name: "IRIW", Run: func(env capi.Env) {
			x = env.NewAtomic("x", 0)
			y = env.NewAtomic("y", 0)
			a1, a2, b1, b2 = 0, 0, 0, 0
			w1 := env.Spawn("w1", w1Body)
			w2 := env.Spawn("w2", w2Body)
			r1 := env.Spawn("r1", r1Body)
			r2 := env.Spawn("r2", r2Body)
			env.Join(w1)
			env.Join(w2)
			env.Join(r1)
			env.Join(r2)
			*out = outD4(a1, a2, b1, b2)
		}}
	}
}

// Run executes test under tool for runs executions and histograms outcomes.
func Run(tool capi.Tool, test *Test, runs int, seedBase int64) map[string]int {
	hist := map[string]int{}
	var out string
	prog := test.Make(&out)
	for i := 0; i < runs; i++ {
		out = ""
		tool.Execute(prog, seedBase+int64(i))
		if out != "" {
			hist[out]++
		}
	}
	return hist
}
