package litmus

import (
	"testing"

	"c11tester/internal/baseline"
	"c11tester/internal/capi"
	"c11tester/internal/core"
)

func c11() capi.Tool {
	return core.New("c11tester", core.NewC11Model(), core.Config{StoreBurst: true})
}

// TestC11TesterSoundness: the C11Tester engine must never produce a
// forbidden outcome of any litmus test.
func TestC11TesterSoundness(t *testing.T) {
	for _, lt := range Tests() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			hist := Run(c11(), lt, 600, 0)
			for o := range lt.Forbidden {
				if hist[o] > 0 {
					t.Errorf("forbidden outcome %q observed %d times: %v", o, hist[o], hist)
				}
			}
		})
	}
}

// TestC11TesterCompleteness: the weak outcomes must all be explorable.
func TestC11TesterCompleteness(t *testing.T) {
	for _, lt := range Tests() {
		if len(lt.Weak) == 0 {
			continue
		}
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			hist := Run(c11(), lt, 3000, 1000)
			for o := range lt.Weak {
				if hist[o] == 0 {
					t.Errorf("weak outcome %q never observed: %v", o, hist)
				}
			}
		})
	}
}

// TestBaselineSoundness: the baselines admit a smaller fragment, so they
// must avoid both the common forbidden outcomes and their additional ones.
func TestBaselineSoundness(t *testing.T) {
	mk := []func() capi.Tool{
		func() capi.Tool { return baseline.NewTsan11(baseline.Options{}) },
		func() capi.Tool { return baseline.NewTsan11rec(baseline.Options{}) },
	}
	for _, makeTool := range mk {
		tool := makeTool()
		t.Run(tool.Name(), func(t *testing.T) {
			for _, lt := range Tests() {
				hist := Run(makeTool(), lt, 400, 0)
				for o := range lt.Forbidden {
					if hist[o] > 0 {
						t.Errorf("%s: forbidden outcome %q observed: %v", lt.Name, o, hist)
					}
				}
				for o := range lt.BaselineForbidden {
					if hist[o] > 0 {
						t.Errorf("%s: baseline-forbidden outcome %q observed: %v", lt.Name, o, hist)
					}
				}
			}
		})
	}
}

// TestFragmentGap: the CoRR+opposed behaviour separates the fragments —
// C11Tester can produce it, the baselines cannot (Section 1.1).
func TestFragmentGap(t *testing.T) {
	var sep *Test
	for _, lt := range Tests() {
		if lt.Name == "CoRR+opposed" {
			sep = lt
		}
	}
	if sep == nil {
		t.Fatal("separator test missing")
	}
	hist := Run(c11(), sep, 4000, 0)
	if hist["21"] == 0 {
		t.Errorf("C11Tester never exhibited the fragment-gap behaviour: %v", hist)
	}
}
