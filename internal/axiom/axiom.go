// Package axiom is an independent axiomatic checker for executions produced
// by the operational engine. Appendix A of the paper proves the operational
// model equivalent to a restricted axiomatic model (the modified C++11 model
// plus hb ∪ sc ∪ rf acyclicity); this package re-derives the axiomatic
// relations from a recorded trace — with its own implementation of release
// sequences and synchronizes-with, not the engine's clock rules — and
// checks the consistency predicates. It serves as the test oracle for the
// engine: every traced execution must validate.
package axiom

import (
	"fmt"

	"c11tester/internal/core"
	"c11tester/internal/memmodel"
)

// Execution is a lifted execution: the recorded trace plus one concrete
// modification order per location (a linear extension of the engine's
// mo-graph, Section A.2).
type Execution struct {
	Trace []*core.Action
	MO    map[memmodel.LocID][]*core.Action
}

// FromEngine lifts the engine's last traced execution. m is the engine's
// memory model, which must expose a concrete total modification order per
// location (the C11 model does; the commit-order baselines do not).
func FromEngine(e *core.Engine, m core.MOProvider) *Execution {
	mo := map[memmodel.LocID][]*core.Action{}
	for _, loc := range m.Locations() {
		mo[loc] = m.TotalMO(loc)
	}
	return &Execution{Trace: e.Trace(), MO: mo}
}

// Violation describes one failed consistency predicate.
type Violation struct {
	Rule   string
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// checker carries the derived relations.
type checker struct {
	ex   *Execution
	vs   []Violation
	hb   map[*core.Action]*memmodel.ClockVector
	moIx map[*core.Action]int // position in its location's modification order
}

// Check validates the execution and returns all violations found.
func Check(ex *Execution) []Violation {
	c := &checker{
		ex:   ex,
		hb:   map[*core.Action]*memmodel.ClockVector{},
		moIx: map[*core.Action]int{},
	}
	for _, moList := range ex.MO {
		for i, a := range moList {
			c.moIx[a] = i
		}
	}
	c.checkForwardEdges()
	c.computeHB()
	c.checkReadsFrom()
	c.checkCoherence()
	c.checkRMWAtomicity()
	c.checkSeqCst()
	return c.vs
}

func (c *checker) fail(rule, format string, args ...any) {
	c.vs = append(c.vs, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// hbBefore reports a hb→ b using the recomputed clocks.
func (c *checker) hbBefore(a, b *core.Action) bool {
	cv := c.hb[b]
	return cv != nil && a != b && cv.Synchronized(a.TID, a.Seq)
}

// moBefore reports a mo→ b; both must be stores to the same location.
func (c *checker) moBefore(a, b *core.Action) bool {
	return a.Loc == b.Loc && c.moIx[a] < c.moIx[b]
}

// checkForwardEdges verifies hb ∪ sc ∪ rf acyclicity (Section 2.2 change 2)
// structurally: the trace order must linearize sb, rf, and sc, i.e. every
// such edge points backwards to an already-executed event.
func (c *checker) checkForwardEdges() {
	pos := map[*core.Action]int{}
	lastSC := -1
	for i, a := range c.ex.Trace {
		pos[a] = i
		if a.RF != nil {
			if j, ok := pos[a.RF]; !ok || j >= i {
				c.fail("acyclicity", "%v reads from a store not yet executed", a)
			}
		}
		if a.IsSC() {
			if a.SCIdx <= lastSC {
				c.fail("sc-total", "%v has non-monotone SC index", a)
			}
			lastSC = a.SCIdx
		}
	}
}

// releaseHead returns the head of the release sequence a store belongs to
// under the C++20 definition (Section 2.2 change 1): an RMW is part of the
// release sequence of the store it reads from; walking rf links from an RMW
// reaches the head, which contributes synchronization only if it is a
// release operation.
func releaseHead(s *core.Action) *core.Action {
	for s.Kind == memmodel.KRMW && s.RF != nil {
		s = s.RF
	}
	return s
}

// computeHB recomputes happens-before from scratch: hb is the transitive
// closure of sequenced-before, additional-synchronizes-with (thread create
// and join), and synchronizes-with (release/acquire pairs, including the
// fence variants of Figure 9, over C++20 release sequences).
func (c *checker) computeHB() {
	type threadInfo struct {
		clock *memmodel.ClockVector // clock after the thread's last action
		// relFence is the clock at the thread's last release fence.
		relFence *memmodel.ClockVector
		// acqFence accumulates release clocks of stores read by relaxed
		// loads, to be claimed by a later acquire fence.
		acqFence *memmodel.ClockVector
		started  bool
	}
	threads := map[memmodel.TID]*threadInfo{}
	// pending child clocks: create actions whose child has not started yet.
	pendingChild := map[memmodel.TID]*memmodel.ClockVector{}
	finished := map[memmodel.TID]*memmodel.ClockVector{}
	// relClock[s] is the clock transferred to readers of store s through
	// its release sequence.
	relClock := map[*core.Action]*memmodel.ClockVector{}

	info := func(t memmodel.TID) *threadInfo {
		ti := threads[t]
		if ti == nil {
			ti = &threadInfo{
				clock:    memmodel.NewClockVector(int(t) + 1),
				acqFence: memmodel.NewClockVector(0),
			}
			threads[t] = ti
		}
		return ti
	}

	for _, a := range c.ex.Trace {
		ti := info(a.TID)
		if !ti.started {
			ti.started = true
			if base, ok := pendingChild[a.TID]; ok {
				ti.clock.Merge(base)
			}
		}
		ti.clock.Set(a.TID, a.Seq)

		switch a.Kind {
		case memmodel.KThreadCreate:
			pendingChild[memmodel.TID(a.Value)] = ti.clock.Clone()
		case memmodel.KThreadJoin:
			if fc := finished[memmodel.TID(a.Value)]; fc != nil {
				ti.clock.Merge(fc)
			}
		case memmodel.KThreadFinish:
			finished[a.TID] = ti.clock.Clone()
		case memmodel.KStore, memmodel.KRMW, memmodel.KNAStore:
			// The clock a reader synchronizes with: for a release store,
			// the store's own clock; for a relaxed store, the clock of the
			// thread's last release fence (fence-release rule); for an RMW,
			// additionally everything transferred by the store it reads
			// from (release-sequence continuation).
			var rc *memmodel.ClockVector
			if a.MO.IsRelease() {
				rc = ti.clock.Clone()
			} else if ti.relFence != nil {
				rc = ti.relFence.Clone()
			} else {
				rc = memmodel.NewClockVector(0)
			}
			if a.Kind == memmodel.KRMW && a.RF != nil {
				if prev := relClock[a.RF]; prev != nil {
					rc.Merge(prev)
				}
			}
			relClock[a] = rc
			if a.Kind == memmodel.KRMW && a.RF != nil {
				// The load half of the RMW acquires like a load.
				if src := relClock[a.RF]; src != nil {
					if a.MO.IsAcquire() {
						ti.clock.Merge(src)
					} else {
						ti.acqFence.Merge(src)
					}
				}
			}
		case memmodel.KLoad:
			if a.RF != nil {
				if src := relClock[a.RF]; src != nil {
					if a.MO.IsAcquire() {
						ti.clock.Merge(src)
					} else {
						ti.acqFence.Merge(src)
					}
				}
			}
		case memmodel.KFence:
			if a.MO.IsAcquire() {
				ti.clock.Merge(ti.acqFence)
			}
			if a.MO.IsRelease() {
				ti.relFence = ti.clock.Clone()
			}
		}
		c.hb[a] = ti.clock.Clone()
	}
}

// checkReadsFrom verifies every rf edge: same location, matching value, and
// the store is not hidden by coherence (no intervening same-location store
// between rf(b) and b in happens-before).
func (c *checker) checkReadsFrom() {
	for _, a := range c.ex.Trace {
		if !a.Kind.IsRead() || a.RF == nil {
			continue
		}
		s := a.RF
		if s.Loc != a.Loc {
			c.fail("rf-loc", "%v reads from %v at a different location", a, s)
		}
		if a.Kind == memmodel.KLoad && a.Value != s.Value {
			c.fail("rf-value", "%v read %d but %v wrote %d", a, a.Value, s, s.Value)
		}
		if c.hbBefore(a, s) {
			c.fail("rf-hb", "%v reads from hb-later store %v", a, s)
		}
	}
}

// checkCoherence verifies the four coherence shapes of Figure 5 against the
// concrete modification order.
func (c *checker) checkCoherence() {
	byLoc := map[memmodel.LocID][]*core.Action{}
	for _, a := range c.ex.Trace {
		if a.Loc != memmodel.NoLoc && (a.Kind.IsWrite() || a.Kind.IsRead()) {
			byLoc[a.Loc] = append(byLoc[a.Loc], a)
		}
	}
	for _, acts := range byLoc {
		for i, x := range acts {
			for _, y := range acts[i+1:] {
				if !c.hbBefore(x, y) {
					continue
				}
				wx, wy := writeOf(x), writeOf(y)
				if wx == nil || wy == nil {
					continue
				}
				switch {
				case x.Kind.IsWrite() && y.Kind.IsWrite():
					if !c.moBefore(wx, wy) {
						c.fail("CoWW", "%v hb %v but mo disagrees", x, y)
					}
				case x.Kind.IsWrite() && !y.Kind.IsWrite():
					if wx != wy && c.moBefore(wy, wx) {
						c.fail("CoWR", "%v hb %v but %v reads mo-earlier %v", x, y, y, wy)
					}
				case !x.Kind.IsWrite() && y.Kind.IsWrite():
					if wx != wy && c.moBefore(wy, wx) {
						c.fail("CoRW", "%v hb %v but store is mo-before the read's source", x, y)
					}
				default:
					if wx != wy && c.moBefore(wy, wx) {
						c.fail("CoRR", "%v hb %v but reads go backwards in mo", x, y)
					}
				}
			}
		}
	}
}

// writeOf maps an access to the store whose mo position constrains it: the
// action itself for writes, the store read from for reads.
func writeOf(a *core.Action) *core.Action {
	if a.Kind.IsWrite() {
		return a
	}
	return a.RF
}

// checkRMWAtomicity verifies that every RMW immediately follows the store
// it read from in modification order and that no store feeds two RMWs.
func (c *checker) checkRMWAtomicity() {
	readBy := map[*core.Action]*core.Action{}
	for _, moList := range c.ex.MO {
		for i, a := range moList {
			if a.Kind != memmodel.KRMW || a.RF == nil {
				continue
			}
			if prev := readBy[a.RF]; prev != nil {
				c.fail("rmw-unique", "store %v read by RMWs %v and %v", a.RF, prev, a)
			}
			readBy[a.RF] = a
			if i == 0 || moList[i-1] != a.RF {
				c.fail("rmw-atomic", "%v does not immediately follow %v in mo", a, a.RF)
			}
		}
	}
}

// checkSeqCst verifies the SC axioms the engine must enforce: the SC order
// restricted to same-location stores is consistent with mo, and an SC load
// reads either the last SC store sc-before it or a store that does not
// happen before that store (C++11 29.3p3).
func (c *checker) checkSeqCst() {
	var scOps []*core.Action
	for _, a := range c.ex.Trace {
		if a.IsSC() {
			scOps = append(scOps, a)
		}
	}
	// SC ∪ mo consistency for same-location stores.
	for i, x := range scOps {
		if !x.Kind.IsWrite() {
			continue
		}
		for _, y := range scOps[i+1:] {
			if y.Kind.IsWrite() && y.Loc == x.Loc && c.moBefore(y, x) {
				c.fail("sc-mo", "SC order %v before %v contradicts mo", x, y)
			}
		}
	}
	// SC read restriction.
	lastSCStore := map[memmodel.LocID]*core.Action{}
	for _, a := range scOps {
		if a.Kind.IsRead() && a.RF != nil {
			if last := lastSCStore[a.Loc]; last != nil && a.RF != last {
				if a.RF.IsSC() && a.RF.SCIdx < last.SCIdx {
					c.fail("sc-read", "%v reads SC store %v older than last SC store %v", a, a.RF, last)
				}
				if c.hbBefore(a.RF, last) {
					c.fail("sc-read-hb", "%v reads %v which happens before last SC store %v", a, a.RF, last)
				}
			}
		}
		if a.Kind.IsWrite() {
			lastSCStore[a.Loc] = a
		}
	}
}
