package axiom

import (
	"fmt"
	"math/rand"
	"testing"

	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/memmodel"
)

// opSpec is one pre-generated operation of a chaos program.
type opSpec struct {
	kind memmodel.Kind
	loc  int
	mo   memmodel.MemoryOrder
	val  memmodel.Value
	rmw  capi.RMWKind
}

var chaosOrders = []memmodel.MemoryOrder{
	memmodel.Relaxed, memmodel.Acquire, memmodel.Release,
	memmodel.AcqRel, memmodel.SeqCst,
}

// genChaosProgram builds a random well-formed atomics program: T threads
// over L atomic locations performing loads, stores, RMWs, CASes, and fences
// with random memory orders. The shape is fixed up front so the program is
// deterministic given its spec.
func genChaosProgram(r *rand.Rand) capi.Program {
	nThreads := 2 + r.Intn(3)
	nLocs := 1 + r.Intn(3)
	specs := make([][]opSpec, nThreads)
	val := memmodel.Value(1)
	for ti := range specs {
		nOps := 4 + r.Intn(10)
		for k := 0; k < nOps; k++ {
			s := opSpec{
				loc: r.Intn(nLocs),
				mo:  chaosOrders[r.Intn(len(chaosOrders))],
			}
			switch r.Intn(6) {
			case 0, 1:
				s.kind = memmodel.KLoad
			case 2, 3:
				s.kind = memmodel.KStore
				s.val = val
				val++
			case 4:
				s.kind = memmodel.KRMW
				if r.Intn(2) == 0 {
					s.rmw = capi.RMWAdd
					s.val = 1
				} else {
					s.rmw = capi.RMWExchange
					s.val = val
					val++
				}
			case 5:
				if r.Intn(2) == 0 {
					s.kind = memmodel.KFence
				} else {
					s.kind = memmodel.KRMW
					s.rmw = capi.RMWCas
					s.val = val
					val++
				}
			}
			specs[ti] = append(specs[ti], s)
		}
	}
	return capi.Program{
		Name: "chaos",
		Run: func(env capi.Env) {
			locs := make([]capi.Loc, nLocs)
			for i := range locs {
				locs[i] = env.NewAtomic(fmt.Sprintf("x%d", i), 0)
			}
			var threads []capi.Thread
			for _, spec := range specs {
				spec := spec
				threads = append(threads, env.Spawn("worker", func(env capi.Env) {
					for _, s := range spec {
						switch s.kind {
						case memmodel.KLoad:
							env.Load(locs[s.loc], s.mo)
						case memmodel.KStore:
							env.Store(locs[s.loc], s.val, s.mo)
						case memmodel.KFence:
							env.Fence(s.mo)
						case memmodel.KRMW:
							switch s.rmw {
							case capi.RMWAdd:
								env.FetchAdd(locs[s.loc], s.val, s.mo)
							case capi.RMWExchange:
								env.Exchange(locs[s.loc], s.val, s.mo)
							case capi.RMWCas:
								env.CompareExchange(locs[s.loc], 0, s.val, s.mo, memmodel.Relaxed)
							}
						}
					}
				}))
			}
			for _, th := range threads {
				env.Join(th)
			}
		},
	}
}

// TestChaosExecutionsValidate runs hundreds of random atomics programs
// through the engine and validates every lifted execution against the
// independent axiomatic checker (the equivalence of Appendix A).
func TestChaosExecutionsValidate(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for i := 0; i < 250; i++ {
		prog := genChaosProgram(r)
		model := core.NewC11Model()
		tool := core.New("c11tester", model, core.Config{Trace: true, StoreBurst: true})
		for seed := int64(0); seed < 4; seed++ {
			res := tool.Execute(prog, seed)
			if res.Truncated || res.Deadlocked {
				t.Fatalf("program %d seed %d: truncated/deadlocked", i, seed)
			}
			ex := FromEngine(tool, model)
			if vs := Check(ex); len(vs) > 0 {
				for _, v := range vs {
					t.Errorf("program %d seed %d: %v", i, seed, v)
				}
				t.Fatalf("program %d seed %d: %d axiom violations", i, seed, len(vs))
			}
		}
	}
}

// TestChaosWithConservativePruning re-runs chaos programs with the
// conservative pruner active on a tiny interval; behaviours must stay legal
// (the validator only checks retained actions, but coherence among them
// must hold).
func TestChaosLongRunsUnderPruning(t *testing.T) {
	// Long-running two-thread program with heavy traffic on one location,
	// pruned conservatively; assertion-checked coherence.
	prog := capi.Program{Name: "prune-chaos", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		y := env.NewAtomic("y", 0)
		a := env.Spawn("w", func(env capi.Env) {
			for i := 1; i <= 1500; i++ {
				env.Store(x, memmodel.Value(i), memmodel.Release)
				if i%16 == 0 {
					env.Store(y, memmodel.Value(i), memmodel.Release)
				}
			}
		})
		last := memmodel.Value(0)
		for i := 0; i < 1500; i++ {
			if env.Load(y, memmodel.Acquire) > 0 {
				v := env.Load(x, memmodel.Acquire)
				env.Assert(v >= last, "coherence: %d after %d", v, last)
				last = v
			}
		}
		env.Join(a)
	}}
	for _, mode := range []core.PruneMode{core.PruneConservative, core.PruneAggressive} {
		tool := core.New("c11tester", core.NewC11Model(), core.Config{
			Prune: mode, PruneInterval: 128, Window: 24, StoreBurst: true,
		})
		for seed := int64(0); seed < 10; seed++ {
			res := tool.Execute(prog, seed)
			if len(res.AssertFailures) > 0 {
				t.Fatalf("mode %d seed %d: %v", mode, seed, res.AssertFailures[0])
			}
		}
	}
}

// badExecution builds a hand-made execution with a CoWW violation to prove
// the checker is not vacuous.
func TestCheckerDetectsCoWWViolation(t *testing.T) {
	s1 := &core.Action{Seq: 1, TID: 0, Kind: memmodel.KStore, MO: memmodel.Relaxed, Loc: 1, Value: 1, SCIdx: -1}
	s2 := &core.Action{Seq: 2, TID: 0, Kind: memmodel.KStore, MO: memmodel.Relaxed, Loc: 1, Value: 2, SCIdx: -1}
	ex := &Execution{
		Trace: []*core.Action{s1, s2},
		// mo contradicts sb: s2 before s1.
		MO: map[memmodel.LocID][]*core.Action{1: {s2, s1}},
	}
	vs := Check(ex)
	found := false
	for _, v := range vs {
		if v.Rule == "CoWW" {
			found = true
		}
	}
	if !found {
		t.Fatalf("checker missed the CoWW violation: %v", vs)
	}
}

func TestCheckerDetectsRFValueViolation(t *testing.T) {
	s := &core.Action{Seq: 1, TID: 0, Kind: memmodel.KStore, MO: memmodel.Relaxed, Loc: 1, Value: 1, SCIdx: -1}
	l := &core.Action{Seq: 2, TID: 1, Kind: memmodel.KLoad, MO: memmodel.Relaxed, Loc: 1, Value: 99, RF: s, SCIdx: -1}
	ex := &Execution{
		Trace: []*core.Action{s, l},
		MO:    map[memmodel.LocID][]*core.Action{1: {s}},
	}
	vs := Check(ex)
	found := false
	for _, v := range vs {
		if v.Rule == "rf-value" {
			found = true
		}
	}
	if !found {
		t.Fatalf("checker missed the rf value violation: %v", vs)
	}
}

func TestCheckerDetectsRMWAtomicityViolation(t *testing.T) {
	s1 := &core.Action{Seq: 1, TID: 0, Kind: memmodel.KStore, MO: memmodel.Relaxed, Loc: 1, Value: 1, SCIdx: -1}
	s2 := &core.Action{Seq: 2, TID: 1, Kind: memmodel.KStore, MO: memmodel.Relaxed, Loc: 1, Value: 2, SCIdx: -1}
	rmw := &core.Action{Seq: 3, TID: 2, Kind: memmodel.KRMW, MO: memmodel.Relaxed, Loc: 1, Value: 3, RF: s1, SCIdx: -1}
	ex := &Execution{
		Trace: []*core.Action{s1, s2, rmw},
		// s2 intervenes between the RMW and the store it read from.
		MO: map[memmodel.LocID][]*core.Action{1: {s1, s2, rmw}},
	}
	vs := Check(ex)
	found := false
	for _, v := range vs {
		if v.Rule == "rmw-atomic" {
			found = true
		}
	}
	if !found {
		t.Fatalf("checker missed the RMW atomicity violation: %v", vs)
	}
}
