// sc.go decides per-execution sequential-consistency explainability: whether
// a lifted execution's outcome could have been produced by some interleaving
// under sequential consistency. Following the classic Shasha–Snir criterion
// (and its dynamic-robustness use in Margalit et al., "Dynamic Robustness
// Verification Against Weak Memory"), an execution is SC-explainable iff the
// union of
//
//	sb  (sequenced-before: program order per thread, plus the
//	     create→child / child→join synchronization edges),
//	rf  (reads-from),
//	mo  (the concrete per-location modification order), and
//	fr  (from-read: read → mo-successor of the store it read from)
//
// is acyclic: a topological order of that graph is exactly an SC
// interleaving reproducing every read's value. A cycle certifies that the
// weak memory model was load-bearing for the observed outcome — e.g. the
// store-buffering result r1=0 ∧ r2=0 is a four-edge sb/fr cycle.
package axiom

import (
	"c11tester/internal/core"
	"c11tester/internal/memmodel"
)

// SCExplainable reports whether the execution's outcome is explainable under
// sequential consistency. It reuses the lifted form FromEngine builds for the
// axiomatic checker; executions with an empty trace are trivially SC.
func SCExplainable(ex *Execution) bool {
	n := len(ex.Trace)
	if n == 0 {
		return true
	}
	pos := make(map[*core.Action]int, n)
	for i, a := range ex.Trace {
		pos[a] = i
	}
	moIx := map[*core.Action]int{}
	for _, moList := range ex.MO {
		for i, a := range moList {
			moIx[a] = i
		}
	}

	adj := make([][]int, n)
	addEdge := func(from, to *core.Action) {
		i, iok := pos[from]
		j, jok := pos[to]
		if !iok || !jok || i == j {
			return
		}
		adj[i] = append(adj[i], j)
	}

	// sb: successive actions of the same thread (trace order is a linear
	// extension of every thread's program order), plus the thread
	// create/join synchronization edges — both are orderings any SC
	// interleaving must respect.
	lastOf := map[memmodel.TID]*core.Action{}
	firstOf := map[memmodel.TID]*core.Action{}
	for _, a := range ex.Trace {
		if prev := lastOf[a.TID]; prev != nil {
			addEdge(prev, a)
		} else {
			firstOf[a.TID] = a
		}
		lastOf[a.TID] = a
	}
	for _, a := range ex.Trace {
		switch a.Kind {
		case memmodel.KThreadCreate:
			if first := firstOf[memmodel.TID(a.Value)]; first != nil {
				addEdge(a, first)
			}
		case memmodel.KThreadJoin:
			if last := lastOf[memmodel.TID(a.Value)]; last != nil {
				addEdge(last, a)
			}
		}
	}

	// rf and mo: a read follows its source store; each location's stores
	// follow their modification order.
	for _, a := range ex.Trace {
		if a.Kind.IsRead() && a.RF != nil {
			addEdge(a.RF, a)
		}
	}
	for _, moList := range ex.MO {
		for i := 1; i < len(moList); i++ {
			addEdge(moList[i-1], moList[i])
		}
	}

	// fr: a read is overwritten by every store mo-after its source, so it
	// must be scheduled before the source's mo-successor (the rest of the
	// chain follows through mo). A read from the initial value (RF == nil)
	// precedes the location's first store. The RMW reading from w *is* w's
	// mo-successor (rmw-atomic); skipping the self-edge leaves exactly the
	// mo edges, which are already present.
	for _, a := range ex.Trace {
		if !a.Kind.IsRead() {
			continue
		}
		var succ *core.Action
		if a.RF != nil {
			ix, ok := moIx[a.RF]
			if !ok {
				continue
			}
			if moList := ex.MO[a.RF.Loc]; ix+1 < len(moList) {
				succ = moList[ix+1]
			}
		} else if moList := ex.MO[a.Loc]; len(moList) > 0 {
			succ = moList[0]
		}
		if succ != nil && succ != a {
			addEdge(a, succ)
		}
	}

	return acyclic(adj)
}

// acyclic reports whether the adjacency list has no directed cycle, via an
// iterative three-color DFS (the trace can be long; no recursion).
func acyclic(adj [][]int) bool {
	const (
		white = 0 // unvisited
		grey  = 1 // on the DFS stack
		black = 2 // done
	)
	color := make([]byte, len(adj))
	type frame struct {
		node int
		next int // index into adj[node] of the next edge to follow
	}
	var stack []frame
	for start := range adj {
		if color[start] != white {
			continue
		}
		color[start] = grey
		stack = append(stack[:0], frame{node: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				to := adj[f.node][f.next]
				f.next++
				switch color[to] {
				case grey:
					return false
				case white:
					color[to] = grey
					stack = append(stack, frame{node: to})
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return true
}
