// Package sched implements the controlled scheduler that stands in for
// C11Tester's fibers (Sections 7.3–7.4 of the paper).
//
// Every thread of the program under test runs in a worker goroutine, but at
// most one of them executes at a time: a thread runs until its next visible
// operation, parks itself while handing the operation to the tool, and
// resumes only when the tool replies. The tool (engine) therefore has full
// control of the interleaving, exactly like C11Tester's fiber scheduler.
//
// Workers form a fiber pool: a Scheduler creates each worker goroutine once
// and parks it between executions; NewThread re-binds a parked worker to a
// fresh (name, body) instead of spawning a goroutine. Steady-state executions
// therefore start zero goroutines and allocate nothing — the analogue of
// C11Tester reusing its fiber stacks across executions rather than paying
// thread creation per run (Section 7.3). Config.Respawn restores the
// spawn-per-thread regime as a benchmark dimension.
//
// The handoff mechanism is configurable, mirroring the design space the
// paper measures in Figure 14:
//
//   - channel handoff between ordinary goroutines (the default) is the
//     analogue of swapcontext fibers — a cheap user-level switch;
//   - condition-variable handoff ("cond") swaps the resume path for a
//     sync.Cond, the pthread-condvar sequencing discipline on green threads;
//   - condition-variable handoff between goroutines pinned to kernel threads
//     ("osthread", LockOSThread) makes every handoff a real OS context
//     switch, the regime tsan11rec operates in.
package sched

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
)

// State is a thread's scheduling state.
type State uint8

const (
	// Ready means the thread has parked with a pending operation and can be
	// scheduled.
	Ready State = iota
	// Blocked means the tool has suspended the thread (mutex, cond, join);
	// it must be woken with Reply after the tool completes its operation.
	Blocked
	// Finished means the thread's function has returned.
	Finished
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Blocked:
		return "blocked"
	case Finished:
		return "finished"
	}
	return "invalid"
}

// abortSignal is panicked through a program thread to unwind it when the
// scheduler aborts the execution (step-limit hit or deadlock).
type abortSignal struct{}

// Config selects the handoff regime and the worker lifecycle. The named
// Figure 14 regimes are the supported LockOSThread/CondHandoff combinations
// (see ParseHandoff): LockOSThread without CondHandoff is not a named regime
// and HandoffName does not distinguish it from "osthread".
type Config struct {
	// LockOSThread pins every program thread to its own kernel thread, so
	// each handoff costs a real OS context switch (the kernel-thread regime
	// of tsan11rec).
	LockOSThread bool
	// CondHandoff switches the resume path from an unbuffered channel to a
	// sync.Cond, the analogue of pthread condition-variable sequencing.
	CondHandoff bool
	// Respawn disables the fiber pool: every NewThread starts a fresh
	// goroutine that exits when its body returns, instead of re-binding a
	// parked worker. This is the pre-pool regime, kept as a benchmark
	// dimension of the Figure 14 handoff matrix (pooled vs respawn).
	Respawn bool
}

// HandoffRegimes lists the Figure 14 handoff regime names in the paper's
// order: user-level switches first, full kernel-thread sequencing last.
func HandoffRegimes() []string { return []string{"channel", "cond", "osthread"} }

// ParseHandoff maps a handoff regime name onto a scheduler configuration:
// "channel" (or "") is the default channel handoff, "cond" condition-variable
// handoff on green threads, "osthread" condition-variable handoff on pinned
// kernel threads. The Respawn bit is orthogonal and left false.
func ParseHandoff(name string) (Config, error) {
	switch name {
	case "", "channel":
		return Config{}, nil
	case "cond":
		return Config{CondHandoff: true}, nil
	case "osthread":
		return Config{LockOSThread: true, CondHandoff: true}, nil
	}
	return Config{}, fmt.Errorf("sched: unknown handoff regime %q (want channel, cond, or osthread)", name)
}

// MustHandoff is ParseHandoff for already-validated names; it panics on an
// unknown regime.
func MustHandoff(name string) Config {
	cfg, err := ParseHandoff(name)
	if err != nil {
		panic(err)
	}
	return cfg
}

// HandoffName renders a Config's handoff regime as its ParseHandoff name. It
// is only an inverse of ParseHandoff for the named regimes (see Config);
// hand-built hybrid configs collapse to the nearest name.
func HandoffName(cfg Config) string {
	switch {
	case cfg.LockOSThread:
		return "osthread"
	case cfg.CondHandoff:
		return "cond"
	}
	return "channel"
}

// Thread is one managed thread of the program under test. In pooled mode the
// handle owns a persistent worker goroutine that serves one thread binding
// per execution and parks between executions.
type Thread struct {
	ID   memmodel.TID
	Name string

	sched   *Scheduler
	state   State
	pending *capi.Op

	// body is the worker's current binding; NewThread sets it before waking
	// the worker and the worker clears it when the binding finishes. A nil
	// body at wakeup is the retirement sentinel (Shutdown).
	body func(*Thread)

	// dead marks a retired worker: its goroutine has exited (a non-abort
	// panic escaped the body, or Shutdown retired it) and the handle must
	// not be re-bound. Written by the worker before its finish event (or by
	// Shutdown while the worker is parked), read by the tool goroutine after
	// receiving that event — the events channel orders the two.
	dead bool

	// Channel handoff.
	replyCh chan struct{}
	// Cond handoff.
	mu      sync.Mutex
	cond    *sync.Cond
	replied bool

	// PanicValue records a non-abort panic that escaped the thread's
	// function, so the tool can surface it instead of crashing the host.
	PanicValue any
}

// State returns the thread's scheduling state. Only the tool goroutine may
// call it.
func (t *Thread) State() State { return t.state }

// Pending returns the operation the thread is parked on (nil unless Ready).
func (t *Thread) Pending() *capi.Op { return t.pending }

// Call hands op to the tool and parks until the tool replies. It must be
// called from t's own goroutine. If the execution is aborting, Call unwinds
// the thread instead of returning.
func (t *Thread) Call(op *capi.Op) {
	if t.sched.aborting {
		panic(abortSignal{})
	}
	t.pending = op
	t.state = Ready
	t.sched.events <- t
	t.awaitReply()
	if t.sched.aborting {
		panic(abortSignal{})
	}
}

func (t *Thread) awaitReply() {
	if t.sched.cfg.CondHandoff {
		t.mu.Lock()
		for !t.replied {
			t.cond.Wait()
		}
		t.replied = false
		t.mu.Unlock()
		return
	}
	<-t.replyCh
}

func (t *Thread) signalReply() {
	if t.sched.cfg.CondHandoff {
		t.mu.Lock()
		t.replied = true
		t.cond.Signal()
		t.mu.Unlock()
		return
	}
	t.replyCh <- struct{}{}
}

// workerLoop is the body of a pooled worker goroutine: park until NewThread
// binds a thread function, run it, and park again. The loop exits when the
// binding signal carries no body (Shutdown) or when a non-abort panic escaped
// the body — the goroutine's stack may then hold arbitrary half-unwound
// program state, so it is retired rather than recycled (the tool observes
// the retirement through Thread.PanicValue and the pool replaces the worker
// on the next binding).
func (t *Thread) workerLoop() {
	if t.sched.cfg.LockOSThread {
		runtime.LockOSThread()
	}
	for {
		t.awaitReply()
		if t.body == nil {
			return // Shutdown retired this worker while it was parked.
		}
		if t.runOnce() {
			return
		}
	}
}

// runRespawn is the body of a respawn-mode goroutine: one binding, then exit.
func (t *Thread) runRespawn() {
	if t.sched.cfg.LockOSThread {
		runtime.LockOSThread()
	}
	t.runOnce()
}

// runOnce runs the worker's current binding to completion, converting an
// abort unwind into a clean finish, and reports whether the worker must be
// retired. Everything the tool goroutine may read — state, PanicValue, dead —
// is written before the finish event is sent, so the events channel carries
// the happens-before edge.
func (t *Thread) runOnce() (retire bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); !ok {
				t.PanicValue = r
				t.dead = true
				retire = true
			}
		}
		t.body = nil
		t.state = Finished
		t.pending = nil
		t.sched.events <- t
	}()
	t.body(t)
	return
}

// Scheduler sequences the threads of one execution. One Scheduler instance
// serves many executions in sequence: its fiber pool keeps one parked worker
// goroutine per thread slot, and Reset + NewThread re-bind those workers (and
// their handoff channels / condition variables) to the next execution's
// threads, so steady-state executions start no goroutines and allocate
// nothing.
type Scheduler struct {
	cfg      Config
	threads  []*Thread
	events   chan *Thread
	aborting bool

	// pool recycles Thread handles (and, in pooled mode, their worker
	// goroutines) across executions; pool[i] serves TID i. All threads of
	// the previous execution have settled as Finished by the time Reset
	// hands a slot out again.
	pool []*Thread

	// spawns counts goroutines started over the scheduler's lifetime. In
	// pooled mode it stops growing once the pool covers the program's thread
	// count — the tentpole invariant the fiber-pool tests pin.
	spawns int

	// measureWait, when set, times every waitSettle park — the tool-side
	// half of a handoff, where the tool goroutine waits for the program
	// thread to reach its next visible operation — accumulating into waitNS.
	// Opt-in because it costs two monotonic clock reads per visible
	// operation; campaign telemetry enables it, raw perf sweeps do not.
	// time.Now/Since never allocate, so the instrumented handoff stays
	// inside the zero-alloc steady state.
	measureWait bool
	waitNS      int64
}

// New returns a scheduler. The same instance is reused across executions via
// Reset; call Shutdown when discarding it so the pooled workers exit.
func New(cfg Config) *Scheduler {
	return &Scheduler{cfg: cfg, events: make(chan *Thread)}
}

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Reset prepares the scheduler for a new execution. It must only be called
// after the previous execution fully ended (all threads Finished, via normal
// completion or Abort); the events channel is empty and every pooled worker
// is parked then, so the recycled scheduler starts from a clean handoff
// state.
func (s *Scheduler) Reset() {
	s.threads = s.threads[:0]
	s.aborting = false
	s.waitNS = 0
}

// SetMeasureWait toggles handoff-wait timing for subsequent executions.
func (s *Scheduler) SetMeasureWait(on bool) { s.measureWait = on }

// WaitNS returns the accumulated handoff wait of the current (or last)
// execution: total time the tool goroutine spent parked in waitSettle while
// program threads ran to their next visible operation. Zero unless
// SetMeasureWait enabled timing.
func (s *Scheduler) WaitNS() int64 { return s.waitNS }

// Threads returns all threads created so far, indexed by TID.
func (s *Scheduler) Threads() []*Thread { return s.threads }

// Ready appends to dst the threads that are parked with a pending operation.
func (s *Scheduler) Ready(dst []*Thread) []*Thread {
	for _, t := range s.threads {
		if t.state == Ready {
			dst = append(dst, t)
		}
	}
	return dst
}

// AliveCount returns the number of unfinished threads.
func (s *Scheduler) AliveCount() int {
	n := 0
	for _, t := range s.threads {
		if t.state != Finished {
			n++
		}
	}
	return n
}

// WorkerCount returns the number of live pooled workers (retired workers
// excluded). It is bounded by the widest execution the scheduler has run,
// plus one replacement per retirement — the invariant the pool stress tests
// assert.
func (s *Scheduler) WorkerCount() int {
	n := 0
	for _, t := range s.pool {
		if !t.dead {
			n++
		}
	}
	return n
}

// Spawns returns the number of goroutines the scheduler has ever started. In
// pooled mode it is constant across steady-state executions; in respawn mode
// it grows by the thread count every execution.
func (s *Scheduler) Spawns() int { return s.spawns }

// NewThread creates a managed thread running body and blocks until it
// settles (parks on its first operation, or finishes). body receives the
// thread handle so the tool can wire up its Env.
//
// In pooled mode the thread is served by the slot's parked worker goroutine;
// a goroutine (and its handoff channel or condition variable) is only
// created when the slot is new or its previous worker was retired.
func (s *Scheduler) NewThread(name string, body func(*Thread)) *Thread {
	idx := len(s.threads)
	var t *Thread
	fresh := true
	if idx < len(s.pool) && (s.cfg.Respawn || !s.pool[idx].dead) {
		t = s.pool[idx]
		t.ID = memmodel.TID(idx)
		t.Name = name
		t.state = Ready
		t.pending = nil
		t.PanicValue = nil
		t.dead = false
		fresh = false
		// t.replied is deliberately not touched: every signal is consumed by
		// the worker before it parks (Call, abort unwind, or retirement), so
		// the flag is false here — and the worker may concurrently be taking
		// t.mu to park, so only the signal protocol itself may write it.
	} else {
		t = &Thread{
			ID:    memmodel.TID(idx),
			Name:  name,
			sched: s,
		}
		if s.cfg.CondHandoff {
			t.cond = sync.NewCond(&t.mu)
		} else {
			t.replyCh = make(chan struct{})
		}
		if idx < len(s.pool) {
			s.pool[idx] = t // replace a retired worker's handle
		} else {
			s.pool = append(s.pool, t)
		}
	}
	s.threads = append(s.threads, t)
	t.body = body
	if s.cfg.Respawn {
		s.spawns++
		go t.runRespawn()
	} else {
		if fresh {
			s.spawns++
			go t.workerLoop()
		}
		// Hand the binding to the parked worker. For a fresh worker the
		// channel send simply waits until the goroutine reaches its first
		// park; the cond path records the signal in the replied flag.
		t.signalReply()
	}
	s.waitSettle(t)
	return t
}

// Block marks t suspended. The tool must not reply to a blocked thread until
// it completes the thread's pending operation; Reply wakes it.
func (s *Scheduler) Block(t *Thread) {
	if t.state != Ready {
		panic(fmt.Sprintf("sched: blocking %s thread %d", t.state, t.ID))
	}
	t.state = Blocked
}

// Reply resumes t after its pending operation was processed and blocks until
// t settles again. It returns t's new state (Ready or Finished).
func (s *Scheduler) Reply(t *Thread) State {
	if t.state == Finished {
		panic(fmt.Sprintf("sched: replying to finished thread %d", t.ID))
	}
	t.pending = nil
	t.state = Blocked // transient until the thread settles
	t.signalReply()
	s.waitSettle(t)
	return t.state
}

// waitSettle consumes the next settle event, which must come from t: only
// one program thread runs at a time, so no other thread can settle.
func (s *Scheduler) waitSettle(t *Thread) {
	var ev *Thread
	if s.measureWait {
		t0 := time.Now()
		ev = <-s.events
		s.waitNS += int64(time.Since(t0))
	} else {
		ev = <-s.events
	}
	if ev != t {
		panic(fmt.Sprintf("sched: thread %d settled while waiting for %d", ev.ID, t.ID))
	}
}

// Abort unwinds every unfinished thread. After Abort returns, all threads
// have finished and every pooled worker is parked again awaiting its next
// binding; the execution is over and the scheduler must not be used again
// until Reset recycles it for the next execution (Reset relies on exactly
// this all-settled state). Workers unwound by an abort are recycled — only a
// non-abort panic retires one.
func (s *Scheduler) Abort() {
	s.aborting = true
	for _, t := range s.threads {
		if t.state == Finished {
			continue
		}
		t.signalReply()
		s.waitSettle(t)
	}
}

// Shutdown retires every pooled worker goroutine. Like Reset, it must only
// be called in the quiescent all-threads-finished state. The scheduler must
// not run further executions afterwards; tools call it when an engine is
// discarded so long-lived processes (campaign runners) do not accumulate
// parked goroutines.
func (s *Scheduler) Shutdown() {
	if !s.cfg.Respawn {
		for _, t := range s.pool {
			if t.dead {
				continue
			}
			t.dead = true
			t.body = nil
			t.signalReply() // nil body: the worker exits its loop
		}
	}
	s.pool = s.pool[:0]
	s.threads = s.threads[:0]
}
