// Package sched implements the controlled scheduler that stands in for
// C11Tester's fibers (Sections 7.3–7.4 of the paper).
//
// Every thread of the program under test runs in its own goroutine, but at
// most one of them executes at a time: a thread runs until its next visible
// operation, parks itself while handing the operation to the tool, and
// resumes only when the tool replies. The tool (engine) therefore has full
// control of the interleaving, exactly like C11Tester's fiber scheduler.
//
// The handoff mechanism is configurable, mirroring the design space the
// paper measures in Figure 14:
//
//   - channel handoff between ordinary goroutines (the default) is the
//     analogue of swapcontext fibers — a cheap user-level switch;
//   - condition-variable handoff between goroutines pinned to kernel threads
//     (LockOSThread) is the analogue of sequentializing kernel threads with
//     pthread condition variables, the regime tsan11rec operates in.
package sched

import (
	"fmt"
	"runtime"
	"sync"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
)

// State is a thread's scheduling state.
type State uint8

const (
	// Ready means the thread has parked with a pending operation and can be
	// scheduled.
	Ready State = iota
	// Blocked means the tool has suspended the thread (mutex, cond, join);
	// it must be woken with Reply after the tool completes its operation.
	Blocked
	// Finished means the thread's function has returned.
	Finished
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Blocked:
		return "blocked"
	case Finished:
		return "finished"
	}
	return "invalid"
}

// abortSignal is panicked through a program thread to unwind it when the
// scheduler aborts the execution (step-limit hit or deadlock).
type abortSignal struct{}

// Config selects the handoff regime.
type Config struct {
	// LockOSThread pins every program thread to its own kernel thread, so
	// each handoff costs a real OS context switch (the kernel-thread regime
	// of tsan11rec).
	LockOSThread bool
	// CondHandoff switches the resume path from an unbuffered channel to a
	// sync.Cond, the analogue of pthread condition-variable sequencing.
	CondHandoff bool
}

// Thread is one managed thread of the program under test.
type Thread struct {
	ID   memmodel.TID
	Name string

	sched   *Scheduler
	state   State
	pending *capi.Op

	// Channel handoff.
	replyCh chan struct{}
	// Cond handoff.
	mu      sync.Mutex
	cond    *sync.Cond
	replied bool

	// PanicValue records a non-abort panic that escaped the thread's
	// function, so the tool can surface it instead of crashing the host.
	PanicValue any
}

// State returns the thread's scheduling state. Only the tool goroutine may
// call it.
func (t *Thread) State() State { return t.state }

// Pending returns the operation the thread is parked on (nil unless Ready).
func (t *Thread) Pending() *capi.Op { return t.pending }

// Call hands op to the tool and parks until the tool replies. It must be
// called from t's own goroutine. If the execution is aborting, Call unwinds
// the thread instead of returning.
func (t *Thread) Call(op *capi.Op) {
	if t.sched.aborting {
		panic(abortSignal{})
	}
	t.pending = op
	t.state = Ready
	t.sched.events <- t
	t.awaitReply()
	if t.sched.aborting {
		panic(abortSignal{})
	}
}

func (t *Thread) awaitReply() {
	if t.sched.cfg.CondHandoff {
		t.mu.Lock()
		for !t.replied {
			t.cond.Wait()
		}
		t.replied = false
		t.mu.Unlock()
		return
	}
	<-t.replyCh
}

func (t *Thread) signalReply() {
	if t.sched.cfg.CondHandoff {
		t.mu.Lock()
		t.replied = true
		t.cond.Signal()
		t.mu.Unlock()
		return
	}
	t.replyCh <- struct{}{}
}

// Scheduler sequences the threads of one execution. One Scheduler instance
// can serve many executions in sequence: Reset recycles the Thread handles
// (and their handoff channels / condition variables) for the next execution,
// so repeated executions do not re-allocate the scheduling scaffolding.
type Scheduler struct {
	cfg      Config
	threads  []*Thread
	events   chan *Thread
	aborting bool

	// pool recycles Thread handles across executions; pool[i] serves TID i.
	// All goroutines of the previous execution have finished by the time
	// Reset hands a Thread out again.
	pool []*Thread
}

// New returns a scheduler for one execution.
func New(cfg Config) *Scheduler {
	return &Scheduler{cfg: cfg, events: make(chan *Thread)}
}

// Reset prepares the scheduler for a new execution. It must only be called
// after the previous execution fully ended (all threads Finished, via normal
// completion or Abort); the events channel is empty then, so the recycled
// scheduler starts from a clean handoff state.
func (s *Scheduler) Reset() {
	s.threads = s.threads[:0]
	s.aborting = false
}

// Threads returns all threads created so far, indexed by TID.
func (s *Scheduler) Threads() []*Thread { return s.threads }

// Ready appends to dst the threads that are parked with a pending operation.
func (s *Scheduler) Ready(dst []*Thread) []*Thread {
	for _, t := range s.threads {
		if t.state == Ready {
			dst = append(dst, t)
		}
	}
	return dst
}

// AliveCount returns the number of unfinished threads.
func (s *Scheduler) AliveCount() int {
	n := 0
	for _, t := range s.threads {
		if t.state != Finished {
			n++
		}
	}
	return n
}

// NewThread creates a managed thread running body and blocks until it
// settles (parks on its first operation, or finishes). body receives the
// thread handle so the tool can wire up its Env.
func (s *Scheduler) NewThread(name string, body func(*Thread)) *Thread {
	idx := len(s.threads)
	var t *Thread
	if idx < len(s.pool) {
		t = s.pool[idx]
		t.ID = memmodel.TID(idx)
		t.Name = name
		t.state = Ready
		t.pending = nil
		t.replied = false
		t.PanicValue = nil
	} else {
		t = &Thread{
			ID:    memmodel.TID(idx),
			Name:  name,
			sched: s,
		}
		if s.cfg.CondHandoff {
			t.cond = sync.NewCond(&t.mu)
		} else {
			t.replyCh = make(chan struct{})
		}
		s.pool = append(s.pool, t)
	}
	s.threads = append(s.threads, t)
	go func() {
		if s.cfg.LockOSThread {
			runtime.LockOSThread()
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); !ok {
					t.PanicValue = r
				}
			}
			t.state = Finished
			t.pending = nil
			s.events <- t
		}()
		body(t)
	}()
	s.waitSettle(t)
	return t
}

// Block marks t suspended. The tool must not reply to a blocked thread until
// it completes the thread's pending operation; Reply wakes it.
func (s *Scheduler) Block(t *Thread) {
	if t.state != Ready {
		panic(fmt.Sprintf("sched: blocking %s thread %d", t.state, t.ID))
	}
	t.state = Blocked
}

// Reply resumes t after its pending operation was processed and blocks until
// t settles again. It returns t's new state (Ready or Finished).
func (s *Scheduler) Reply(t *Thread) State {
	if t.state == Finished {
		panic(fmt.Sprintf("sched: replying to finished thread %d", t.ID))
	}
	t.pending = nil
	t.state = Blocked // transient until the thread settles
	t.signalReply()
	s.waitSettle(t)
	return t.state
}

// waitSettle consumes the next settle event, which must come from t: only
// one program thread runs at a time, so no other thread can settle.
func (s *Scheduler) waitSettle(t *Thread) {
	ev := <-s.events
	if ev != t {
		panic(fmt.Sprintf("sched: thread %d settled while waiting for %d", ev.ID, t.ID))
	}
}

// Abort unwinds every unfinished thread. After Abort returns, all threads
// have finished; the execution is over and the scheduler must not be used
// again until Reset recycles it for the next execution (Reset relies on
// exactly this all-goroutines-joined state).
func (s *Scheduler) Abort() {
	s.aborting = true
	for _, t := range s.threads {
		if t.state == Finished {
			continue
		}
		t.signalReply()
		s.waitSettle(t)
	}
}
