package sched

import (
	"testing"

	"c11tester/internal/capi"
	"c11tester/internal/memmodel"
)

// drive runs a trivial tool loop over the scheduler: process pending ops in
// the order pick() dictates until all threads finish. Each op's Val result
// is set to its own sequence in processing order.
func drive(t *testing.T, cfg Config, body func(*Thread), pick func([]*Thread) *Thread) []memmodel.Kind {
	t.Helper()
	s := New(cfg)
	var processed []memmodel.Kind
	s.NewThread("main", body)
	for {
		ready := s.Ready(nil)
		if len(ready) == 0 {
			if s.AliveCount() == 0 {
				return processed
			}
			t.Fatal("deadlock: threads alive but none ready")
		}
		th := pick(ready)
		op := th.Pending()
		processed = append(processed, op.Kind)
		op.Val = memmodel.Value(len(processed))
		s.Reply(th)
	}
}

func first(ready []*Thread) *Thread { return ready[0] }

func TestSingleThreadOpsInOrder(t *testing.T) {
	kinds := []memmodel.Kind{memmodel.KLoad, memmodel.KStore, memmodel.KFence}
	got := drive(t, Config{}, func(th *Thread) {
		for _, k := range kinds {
			op := &capi.Op{Kind: k}
			th.Call(op)
			if op.Val == 0 {
				t.Error("result not delivered")
			}
		}
	}, first)
	if len(got) != len(kinds) {
		t.Fatalf("processed %d ops, want %d", len(got), len(kinds))
	}
	for i, k := range kinds {
		if got[i] != k {
			t.Fatalf("op %d = %v, want %v", i, got[i], k)
		}
	}
}

func TestCondHandoffAndOSThreads(t *testing.T) {
	for _, cfg := range []Config{{CondHandoff: true}, {LockOSThread: true}, {CondHandoff: true, LockOSThread: true}} {
		got := drive(t, cfg, func(th *Thread) {
			th.Call(&capi.Op{Kind: memmodel.KLoad})
			th.Call(&capi.Op{Kind: memmodel.KStore})
		}, first)
		if len(got) != 2 {
			t.Fatalf("cfg %+v: processed %d ops", cfg, len(got))
		}
	}
}

func TestBlockAndWake(t *testing.T) {
	s := New(Config{})
	order := []string{}
	main := s.NewThread("main", func(th *Thread) {
		th.Call(&capi.Op{Kind: memmodel.KMutexLock})
		order = append(order, "main-after-lock")
	})
	// Main parks on the lock op; block it, then wake it.
	if main.State() != Ready {
		t.Fatal("main must be ready")
	}
	s.Block(main)
	if main.State() != Blocked {
		t.Fatal("main must be blocked")
	}
	if got := s.Ready(nil); len(got) != 0 {
		t.Fatal("blocked thread must not be ready")
	}
	if st := s.Reply(main); st != Finished {
		t.Fatalf("main should have finished, state %v", st)
	}
	if len(order) != 1 {
		t.Fatal("main body did not resume")
	}
}

func TestNestedSpawn(t *testing.T) {
	s := New(Config{})
	var childSeen bool
	main := s.NewThread("main", func(th *Thread) {
		op := &capi.Op{Kind: memmodel.KThreadCreate}
		th.Call(op)
	})
	// Process main's spawn op by creating the child; the child runs to its
	// first op before NewThread returns.
	child := s.NewThread("child", func(th *Thread) {
		childSeen = true
		th.Call(&capi.Op{Kind: memmodel.KLoad})
	})
	if !childSeen {
		t.Fatal("child must run to its first op during NewThread")
	}
	if child.State() != Ready || child.ID != 1 {
		t.Fatalf("child state %v id %d", child.State(), child.ID)
	}
	if st := s.Reply(main); st != Finished {
		t.Fatalf("main state %v", st)
	}
	if st := s.Reply(child); st != Finished {
		t.Fatalf("child state %v", st)
	}
}

func TestAbortUnwindsThreads(t *testing.T) {
	s := New(Config{})
	cleanedUp := false
	s.NewThread("main", func(th *Thread) {
		defer func() { cleanedUp = true }()
		for {
			th.Call(&capi.Op{Kind: memmodel.KLoad})
		}
	})
	s.Abort()
	if s.AliveCount() != 0 {
		t.Fatal("all threads must be finished after abort")
	}
	if !cleanedUp {
		t.Fatal("thread defers must run during abort")
	}
}

func TestPanicCaptured(t *testing.T) {
	s := New(Config{})
	th := s.NewThread("main", func(th *Thread) {
		panic("boom")
	})
	if th.State() != Finished {
		t.Fatal("panicking thread must settle as finished")
	}
	if th.PanicValue != "boom" {
		t.Fatalf("panic value %v", th.PanicValue)
	}
}

// TestFiberPoolReusesWorkers pins the tentpole invariant: after the first
// execution warms the pool, further executions start zero goroutines, in
// every handoff regime. Respawn mode, by contrast, spawns per thread per
// execution.
func TestFiberPoolReusesWorkers(t *testing.T) {
	regimes := []Config{{}, {CondHandoff: true}, {CondHandoff: true, LockOSThread: true}}
	for _, cfg := range regimes {
		s := New(cfg)
		runOnce := func() {
			for i := 0; i < 3; i++ {
				s.NewThread("t", func(t *Thread) {
					t.Call(&capi.Op{Kind: memmodel.KYield})
				})
			}
			for _, th := range s.Threads() {
				s.Reply(th)
			}
		}
		runOnce()
		warm := s.Spawns()
		if warm != 3 {
			t.Fatalf("%s: first execution spawned %d goroutines, want 3", HandoffName(cfg), warm)
		}
		for i := 0; i < 5; i++ {
			s.Reset()
			runOnce()
		}
		if got := s.Spawns(); got != warm {
			t.Errorf("%s: steady state spawned %d extra goroutines, want 0", HandoffName(cfg), got-warm)
		}
		if got := s.WorkerCount(); got != 3 {
			t.Errorf("%s: worker count = %d, want 3", HandoffName(cfg), got)
		}
		s.Shutdown()
		if got := s.WorkerCount(); got != 0 {
			t.Errorf("%s: worker count after shutdown = %d, want 0", HandoffName(cfg), got)
		}

		s = New(Config{CondHandoff: cfg.CondHandoff, LockOSThread: cfg.LockOSThread, Respawn: true})
		runOnce()
		s.Reset()
		runOnce()
		if got := s.Spawns(); got != 6 {
			t.Errorf("%s respawn: spawns = %d, want 6 (one per thread per execution)", HandoffName(cfg), got)
		}
		s.Shutdown()
	}
}

// TestWorkerRetiredAfterPanic pins the retirement rule: a worker whose body
// escaped with a non-abort panic must not be recycled — the next execution
// replaces it with a fresh goroutine — while abort unwinds keep workers
// pooled.
func TestWorkerRetiredAfterPanic(t *testing.T) {
	s := New(Config{})
	th := s.NewThread("bomb", func(th *Thread) {
		panic("boom")
	})
	if th.State() != Finished || th.PanicValue != "boom" {
		t.Fatalf("panicking thread state %v panic %v", th.State(), th.PanicValue)
	}
	if got := s.WorkerCount(); got != 0 {
		t.Fatalf("worker count after panic = %d, want 0 (retired)", got)
	}
	spawnsAfterPanic := s.Spawns()

	// The slot must be served by a fresh worker on the next execution, and
	// the panic must not leak into it.
	s.Reset()
	th2 := s.NewThread("clean", func(th *Thread) {
		th.Call(&capi.Op{Kind: memmodel.KYield})
	})
	if th2.PanicValue != nil {
		t.Fatalf("recycled panic value %v on fresh binding", th2.PanicValue)
	}
	if s.Spawns() != spawnsAfterPanic+1 {
		t.Fatalf("replacement worker not spawned: spawns %d → %d", spawnsAfterPanic, s.Spawns())
	}
	if st := s.Reply(th2); st != Finished {
		t.Fatalf("clean thread state %v", st)
	}
	if got := s.WorkerCount(); got != 1 {
		t.Fatalf("worker count = %d, want 1", got)
	}

	// Abort unwinds, by contrast, recycle the worker.
	s.Reset()
	s.NewThread("loop", func(th *Thread) {
		for {
			th.Call(&capi.Op{Kind: memmodel.KLoad})
		}
	})
	s.Abort()
	if got := s.WorkerCount(); got != 1 {
		t.Fatalf("worker count after abort = %d, want 1 (abort must not retire)", got)
	}
	spawns := s.Spawns()
	s.Reset()
	s.NewThread("again", func(th *Thread) {})
	if s.Spawns() != spawns {
		t.Fatal("aborted worker was not reused")
	}
	s.Shutdown()
}

func TestSchedulerResetRecyclesThreads(t *testing.T) {
	s := New(Config{})
	runOnce := func(wantRecycled []*Thread) []*Thread {
		var handles []*Thread
		for i := 0; i < 3; i++ {
			th := s.NewThread("t", func(t *Thread) {
				t.Call(&capi.Op{Kind: memmodel.KYield})
			})
			handles = append(handles, th)
			if wantRecycled != nil && th != wantRecycled[i] {
				t.Fatalf("thread %d not recycled after Reset", i)
			}
		}
		for _, th := range handles {
			if th.State() != Ready {
				t.Fatalf("thread %d state %v, want ready", th.ID, th.State())
			}
			if st := s.Reply(th); st != Finished {
				t.Fatalf("thread %d state after reply %v, want finished", th.ID, st)
			}
		}
		return handles
	}
	first := runOnce(nil)
	s.Reset()
	if len(s.Threads()) != 0 {
		t.Fatalf("Reset must clear the thread list, got %d", len(s.Threads()))
	}
	runOnce(first)
}
