package mograph

import (
	"testing"

	"c11tester/internal/memmodel"
)

// buildChain simulates one execution's worth of mo-graph work on g: n stores
// to one location by alternating threads, each edge-connected to its
// predecessor (the shape a contended atomic produces).
func buildChain(g *Graph, n int) (first, last *Node) {
	prev := g.NewNode(0, 1, 1)
	first = prev
	for i := 1; i < n; i++ {
		node := g.NewNode(memmodel.TID(i%4), memmodel.SeqNum(i+1), 1)
		g.AddEdge(prev, node)
		prev = node
	}
	return first, prev
}

// BenchmarkGraphExecution measures one full execution cycle against the
// recycled graph: Reset + node creation + edge insertion with clock-vector
// propagation. Steady state must not allocate.
func BenchmarkGraphExecution(b *testing.B) {
	g := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Reset()
		buildChain(g, 64)
	}
}

// BenchmarkReachableCV measures the paper's O(1)-per-query clock-vector
// reachability (Theorem 1); BenchmarkReachableDFS is the CDSChecker-style
// traversal it replaces — the ablation of Section 4.2.
func BenchmarkReachableCV(b *testing.B) {
	g := New()
	first, last := buildChain(g, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !g.Reachable(first, last) {
			b.Fatal("chain end must be reachable")
		}
	}
}

func BenchmarkReachableDFS(b *testing.B) {
	g := New()
	first, last := buildChain(g, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !g.ReachableDFS(first, last) {
			b.Fatal("chain end must be reachable")
		}
	}
}

func BenchmarkAddRMWEdge(b *testing.B) {
	g := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Reset()
		store := g.NewNode(0, 1, 1)
		for j := 0; j < 16; j++ {
			rmw := g.NewNode(1, memmodel.SeqNum(j+2), 1)
			g.AddRMWEdge(store, rmw)
			store = rmw
		}
	}
}
