// Package mograph implements C11Tester's constraint-based representation of
// the C/C++ modification order (Section 4 of the paper).
//
// A node represents one atomic store or RMW. An mo edge A→B records the
// constraint A mo→ B; an rmw edge A→B records that B must *immediately*
// follow A in the modification order. The graph is only ever required to be
// satisfiable, i.e. acyclic; a topological sort per location (with RMWs glued
// to the stores they read from) yields a concrete modification order.
//
// Reachability between same-location nodes is computed purely from per-node
// clock vectors (Section 4.2, Theorem 1): CV_A ≤ CV_B iff B is reachable
// from A. AddEdge and AddRMWEdge implement Figure 6 of the paper, including
// clock-vector propagation, so no graph traversal and no rollback is ever
// needed (Section 4.3).
package mograph

import (
	"fmt"

	"c11tester/internal/memmodel"
)

// Node is a single store or RMW in the modification order graph.
type Node struct {
	// TID and Seq identify the event this node represents; Loc is the
	// memory location it writes. These fields are immutable after creation.
	TID memmodel.TID
	Seq memmodel.SeqNum
	Loc memmodel.LocID

	cv     *memmodel.ClockVector
	edges  []*Node // outgoing mo edges
	rmw    *Node   // the RMW that reads from this node, if any
	pruned bool
}

// CV returns the node's mo-graph clock vector. The returned vector is live:
// it changes as edges are added. Callers must not mutate it.
func (n *Node) CV() *memmodel.ClockVector { return n.cv }

// RMW returns the RMW node that immediately follows n in modification order,
// or nil.
func (n *Node) RMW() *Node { return n.rmw }

// Edges returns the node's outgoing mo edges. Callers must not mutate the
// returned slice.
func (n *Node) Edges() []*Node { return n.edges }

// Pruned reports whether the node has been retired by the memory limiter.
func (n *Node) Pruned() bool { return n.pruned }

func (n *Node) String() string {
	return fmt.Sprintf("node(loc=%d tid=%d seq=%d)", n.Loc, n.TID, n.Seq)
}

func (n *Node) hasEdge(to *Node) bool {
	for _, e := range n.edges {
		if e == to {
			return true
		}
	}
	return false
}

// Graph is a modification order graph across all locations. Edges only ever
// connect nodes of the same location. The graph's node storage is an
// execution-lifetime arena: Reset rewinds it so one Graph instance serves
// every execution of an engine, recycling the Node structs, their edge
// slices, and their clock vectors (with grown backing arrays) across
// executions.
type Graph struct {
	nodeCount int
	edgeCount int
	// mergeOps counts clock-vector merges performed during propagation; it is
	// exposed for the ablation benchmarks comparing CV reachability against
	// DFS (Section 4.2 motivation).
	mergeOps int

	// Node arena: chunked so node pointers stay stable as the graph grows.
	chunks [][]Node
	ci     int // chunk currently being filled
	used   int // slots used in chunks[ci]

	// queue is the scratch buffer of propagate.
	queue []*Node
}

// nodeChunk is the number of Nodes per arena chunk.
const nodeChunk = 64

// New returns an empty modification order graph.
func New() *Graph { return &Graph{} }

// Reset rewinds the graph for a new execution: all nodes handed out by
// NewNode are reclaimed (their structs, edge-slice capacity, and clock-vector
// backing arrays are reused), and the counters restart. The caller guarantees
// no Node pointer from before the Reset is used afterwards.
func (g *Graph) Reset() {
	g.nodeCount = 0
	g.edgeCount = 0
	g.mergeOps = 0
	g.ci = 0
	g.used = 0
}

// NewNode creates a node for a store/RMW by thread t with sequence number s
// writing location loc. Its clock vector is initialized to ⊥CV (Section 4.2).
// Nodes are drawn from the graph's arena and are valid until the next Reset.
func (g *Graph) NewNode(t memmodel.TID, s memmodel.SeqNum, loc memmodel.LocID) *Node {
	if g.ci == len(g.chunks) {
		g.chunks = append(g.chunks, make([]Node, nodeChunk))
	}
	n := &g.chunks[g.ci][g.used]
	g.used++
	if g.used == nodeChunk {
		g.ci++
		g.used = 0
	}
	n.TID, n.Seq, n.Loc = t, s, loc
	n.edges = n.edges[:0]
	n.rmw = nil
	n.pruned = false
	if n.cv == nil {
		n.cv = memmodel.UnitClockVector(t, s)
	} else {
		n.cv.Reset(int(t) + 1)
		n.cv.Set(t, s)
	}
	g.nodeCount++
	return n
}

// NodeCount returns the number of live (non-pruned) nodes ever created minus
// those retired by Retire.
func (g *Graph) NodeCount() int { return g.nodeCount }

// EdgeCount returns the number of mo edges currently stored.
func (g *Graph) EdgeCount() int { return g.edgeCount }

// MergeOps returns the cumulative number of clock-vector merge operations.
func (g *Graph) MergeOps() int { return g.mergeOps }

// merge implements the Merge procedure of Figure 6: it merges src's clock
// vector into dst and reports whether dst changed.
func (g *Graph) merge(dst, src *Node) bool {
	g.mergeOps++
	if src.cv.Leq(dst.cv) {
		return false
	}
	dst.cv.Merge(src.cv)
	return true
}

// AddEdge adds the constraint from mo→ to, following Figure 6's AddEdge:
// redundant edges (already implied by the clock vectors) are dropped unless
// the edge is between same-thread stores or closes an rmw pair, rmw chains
// are followed so that edges land after any RMW reading from `from`, and
// clock-vector changes are propagated breadth-first.
//
// AddEdge must only be called when the edge is known not to create a cycle
// (the engine checks candidate edges with Reachable before committing;
// Section 4.3 explains why this check suffices).
func (g *Graph) AddEdge(from, to *Node) {
	if from == to {
		return
	}
	mustAddEdge := from.rmw == to || from.TID == to.TID
	if from.cv.Leq(to.cv) && !mustAddEdge {
		return
	}
	for from.rmw != nil {
		next := from.rmw
		if next == to {
			break
		}
		from = next
	}
	if from == to {
		return
	}
	if !from.hasEdge(to) {
		from.edges = append(from.edges, to)
		g.edgeCount++
	}
	if g.merge(to, from) {
		g.propagate(to)
	}
}

// propagate pushes clock-vector information from start breadth-first along
// mo edges until it stops changing anything. The traversal queue is a
// per-graph scratch buffer, so steady-state propagation does not allocate.
func (g *Graph) propagate(start *Node) {
	queue := append(g.queue[:0], start)
	for head := 0; head < len(queue); head++ {
		node := queue[head]
		for _, dst := range node.edges {
			if g.merge(dst, node) {
				queue = append(queue, dst)
			}
		}
	}
	g.queue = queue[:0]
}

// AddRMWEdge installs rmw as the immediate modification-order successor of
// from (Figure 6's AddRMWEdge): outgoing mo edges of from migrate to rmw,
// and a normal mo edge from→rmw is added.
//
// One refinement over the paper's pseudocode: clock vectors are propagated
// from rmw unconditionally. Figure 6 only propagates when Merge(rmw, from)
// changes rmw's vector, but when an RMW reads from a same-thread store whose
// vector it already dominates, Merge reports no change and the *migrated*
// edges would never learn the RMW's own clock component — silently breaking
// Theorem 1 (a cycle could then evade the reachability check). The
// unconditional propagation restores the Lemma 3 invariant.
func (g *Graph) AddRMWEdge(from, rmw *Node) {
	from.rmw = rmw
	for _, dst := range from.edges {
		if dst != rmw && !rmw.hasEdge(dst) {
			rmw.edges = append(rmw.edges, dst)
			g.edgeCount++
		}
	}
	g.edgeCount -= len(from.edges)
	from.edges = from.edges[:0]
	g.AddEdge(from, rmw)
	g.propagate(rmw)
}

// AddEdges adds an mo edge from every node in set to node s (the helper of
// Figure 7). Nil entries are skipped.
func (g *Graph) AddEdges(set []*Node, s *Node) {
	for _, e := range set {
		if e != nil {
			g.AddEdge(e, s)
		}
	}
}

// Reachable reports whether b is reachable from a, i.e. whether the
// constraints imply a mo→ b. Per Theorem 1 this is exactly CV_A ≤ CV_B for
// same-location nodes in an acyclic graph. a and b must write the same
// location.
func (g *Graph) Reachable(a, b *Node) bool {
	if a == b {
		return false
	}
	return a.cv.Leq(b.cv)
}

// ReachableDFS is the traversal oracle used by tests and by the ablation
// benchmark: it answers the same question as Reachable by walking edges the
// way CDSChecker did (the approach Section 4 argues is infeasible for
// executions with millions of stores).
func (g *Graph) ReachableDFS(a, b *Node) bool {
	if a == b {
		return false
	}
	seen := map[*Node]bool{a: true}
	stack := []*Node{a}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.edges {
			if e == b {
				return true
			}
			if !seen[e] {
				seen[e] = true
				stack = append(stack, e)
			}
		}
	}
	return false
}

// Retire marks node n pruned and drops its outgoing edges. The caller is
// responsible for removing edges *into* n from retained nodes via
// CompactEdges so that n becomes garbage-collectable (Section 7.1).
func (g *Graph) Retire(n *Node) {
	if n.pruned {
		return
	}
	n.pruned = true
	g.edgeCount -= len(n.edges)
	n.edges = n.edges[:0] // keep capacity: the arena reuses the node
	n.rmw = nil
	g.nodeCount--
}

// CompactEdges removes edges from n to pruned nodes.
func (g *Graph) CompactEdges(n *Node) {
	kept := n.edges[:0]
	for _, e := range n.edges {
		if !e.pruned {
			kept = append(kept, e)
		}
	}
	g.edgeCount -= len(n.edges) - len(kept)
	n.edges = kept
}
