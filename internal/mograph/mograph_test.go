package mograph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"c11tester/internal/memmodel"
)

func TestAddEdgeBasicReachability(t *testing.T) {
	g := New()
	a := g.NewNode(0, 1, 1)
	b := g.NewNode(1, 2, 1)
	c := g.NewNode(2, 3, 1)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	if !g.Reachable(a, b) || !g.Reachable(b, c) || !g.Reachable(a, c) {
		t.Fatal("transitive reachability expected")
	}
	if g.Reachable(c, a) || g.Reachable(b, a) {
		t.Fatal("reverse reachability unexpected")
	}
	if g.Reachable(a, a) {
		t.Fatal("a node must not be reachable from itself in an acyclic graph")
	}
}

func TestAddEdgeDropsRedundantCrossThreadEdge(t *testing.T) {
	g := New()
	a := g.NewNode(0, 1, 1)
	b := g.NewNode(1, 2, 1)
	c := g.NewNode(2, 3, 1)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	edges := g.EdgeCount()
	g.AddEdge(a, c) // implied by a→b→c and cross-thread: dropped
	if g.EdgeCount() != edges {
		t.Fatalf("redundant cross-thread edge should be dropped, edges %d → %d", edges, g.EdgeCount())
	}
}

func TestAddEdgeKeepsSameThreadEdge(t *testing.T) {
	g := New()
	a := g.NewNode(0, 1, 1)
	b := g.NewNode(1, 2, 1)
	c := g.NewNode(0, 3, 1)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	edges := g.EdgeCount()
	// a and c belong to the same thread: mustAddEdge forces the edge even
	// though reachability already implies it (Figure 6, line 2).
	g.AddEdge(a, c)
	if g.EdgeCount() != edges+1 {
		t.Fatalf("same-thread edge must be added, edges %d → %d", edges, g.EdgeCount())
	}
}

func TestAddEdgeIsIdempotent(t *testing.T) {
	g := New()
	a := g.NewNode(0, 1, 1)
	b := g.NewNode(0, 2, 1)
	g.AddEdge(a, b)
	edges := g.EdgeCount()
	g.AddEdge(a, b)
	if g.EdgeCount() != edges {
		t.Fatal("duplicate edge must not be stored twice")
	}
}

func TestAddRMWEdgeMigratesOutgoingEdges(t *testing.T) {
	g := New()
	s := g.NewNode(0, 1, 1) // store the RMW reads from
	x := g.NewNode(1, 2, 1) // store already mo-after s
	g.AddEdge(s, x)
	r := g.NewNode(2, 3, 1) // the RMW
	g.AddRMWEdge(s, r)

	if s.RMW() != r {
		t.Fatal("rmw pointer not installed")
	}
	if len(s.Edges()) != 1 || s.Edges()[0] != r {
		t.Fatalf("store must keep only the edge to its RMW, got %v", s.Edges())
	}
	if !r.hasEdge(x) {
		t.Fatal("outgoing edge s→x must migrate to r→x")
	}
	if !g.Reachable(s, r) || !g.Reachable(s, x) || !g.Reachable(r, x) {
		t.Fatal("reachability after migration wrong")
	}
}

func TestAddEdgeFollowsRMWChain(t *testing.T) {
	g := New()
	s := g.NewNode(0, 1, 1)
	r1 := g.NewNode(1, 2, 1)
	r2 := g.NewNode(2, 3, 1)
	g.AddRMWEdge(s, r1)
	g.AddRMWEdge(r1, r2)
	// A later constraint "s mo→ w" must order w after the whole RMW chain,
	// because RMWs immediately follow the store they read from.
	w := g.NewNode(3, 4, 1)
	g.AddEdge(s, w)
	if !g.Reachable(r2, w) {
		t.Fatal("edge must be redirected past the RMW chain")
	}
	if s.hasEdge(w) {
		t.Fatal("edge must not be attached to the store that heads an rmw chain")
	}
}

func TestRetireAndCompact(t *testing.T) {
	g := New()
	a := g.NewNode(0, 1, 1)
	b := g.NewNode(1, 2, 1)
	g.AddEdge(a, b)
	nodes, edges := g.NodeCount(), g.EdgeCount()
	g.Retire(b)
	if g.NodeCount() != nodes-1 {
		t.Fatal("retire must decrement node count")
	}
	g.Retire(b) // idempotent
	if g.NodeCount() != nodes-1 {
		t.Fatal("double retire must be a no-op")
	}
	g.CompactEdges(a)
	if len(a.Edges()) != 0 || g.EdgeCount() != edges-1 {
		t.Fatalf("compact must drop edges to pruned nodes, edges=%v count=%d", a.Edges(), g.EdgeCount())
	}
}

// chainEnd follows a node's rmw chain to its end, mirroring the redirection
// AddEdge performs (Figure 6 lines 6–12): a constraint from→to really lands
// on the last RMW glued after from.
func chainEnd(n *Node) *Node {
	for n.RMW() != nil {
		n = n.RMW()
	}
	return n
}

// edgeWouldCycle reports whether committing the constraint from mo→ to would
// close a cycle, accounting for rmw-chain redirection. This is the engine's
// pre-commit check (§4.3): the edge actually lands at chainEnd(from), so the
// cycle test is "is chainEnd(from) reachable from to".
func edgeWouldCycle(g *Graph, from, to *Node) bool {
	end := chainEnd(from)
	if end == to {
		return false // degenerate: edge collapses onto the rmw pair
	}
	return g.Reachable(to, end)
}

// buildRandomGraph grows a graph the way the engine does: every new node of
// a thread is mo-ordered after that thread's previous store to the location
// (write-write coherence), occasional nodes are RMWs glued to an unread
// store, and random extra constraints are added only when the pre-commit
// cycle check admits them — exactly the no-rollback discipline of §4.3.
func buildRandomGraph(r *rand.Rand, nodes int) (*Graph, []*Node) {
	g := New()
	var all []*Node
	lastByThread := map[memmodel.TID]*Node{}
	seq := memmodel.SeqNum(1)
	for i := 0; i < nodes; i++ {
		tid := memmodel.TID(r.Intn(4))
		n := g.NewNode(tid, seq, 1)
		seq++
		prev := lastByThread[tid]
		if r.Intn(4) == 0 && len(all) > 0 {
			// Make n an RMW reading from a random store no RMW has read
			// from, provided the read passes the prior-set check: the
			// reader's thread-prior store must be orderable before the
			// store read from (edge prev→c must not close a cycle).
			cands := make([]*Node, 0, len(all))
			for _, c := range all {
				if c.RMW() != nil {
					continue
				}
				if prev != nil && prev != c && edgeWouldCycle(g, prev, c) {
					continue
				}
				cands = append(cands, c)
			}
			if len(cands) > 0 {
				c := cands[r.Intn(len(cands))]
				if prev != nil && prev != c {
					g.AddEdge(prev, c) // the ReadPriorSet edge (CoWR)
				}
				g.AddRMWEdge(c, n)
			}
		}
		if prev != nil {
			g.AddEdge(prev, n)
		}
		lastByThread[tid] = n
		all = append(all, n)
		// A few random extra constraints, subject to the pre-commit check.
		for k := 0; k < 2; k++ {
			if len(all) < 2 {
				break
			}
			from := all[r.Intn(len(all))]
			to := all[r.Intn(len(all))]
			if from == to || edgeWouldCycle(g, from, to) {
				continue
			}
			g.AddEdge(from, to)
		}
	}
	return g, all
}

// TestQuickTheorem1 checks Theorem 1 of the paper: on graphs built with the
// engine's discipline, clock-vector comparison agrees with DFS reachability
// for every ordered pair of nodes.
func TestQuickTheorem1(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, all := buildRandomGraph(r, 3+r.Intn(30))
		for _, a := range all {
			for _, b := range all {
				if a == b {
					continue
				}
				if g.Reachable(a, b) != g.ReachableDFS(a, b) {
					t.Logf("mismatch: %v → %v cv=%v dfs=%v", a, b, g.Reachable(a, b), g.ReachableDFS(a, b))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAcyclicity checks that the no-rollback discipline keeps the graph
// acyclic: no node ever reaches itself through edges.
func TestQuickAcyclicity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, all := buildRandomGraph(r, 3+r.Intn(40))
		for _, n := range all {
			if g.ReachableDFS(n, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLemma2 checks Lemma 2: a store's own clock-vector slot stays
// exactly its sequence number, no matter what edges are added.
func TestQuickLemma2(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		_, all := buildRandomGraph(r, 3+r.Intn(40))
		for _, n := range all {
			if n.CV().Get(n.TID) != n.Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphResetRecyclesNodes(t *testing.T) {
	g := New()
	a := g.NewNode(0, 1, 1)
	b := g.NewNode(1, 2, 1)
	g.AddEdge(a, b)
	if g.NodeCount() != 2 || g.EdgeCount() != 1 {
		t.Fatalf("precondition: nodes=%d edges=%d", g.NodeCount(), g.EdgeCount())
	}

	g.Reset()
	if g.NodeCount() != 0 || g.EdgeCount() != 0 || g.MergeOps() != 0 {
		t.Fatalf("Reset must zero counters: nodes=%d edges=%d merges=%d",
			g.NodeCount(), g.EdgeCount(), g.MergeOps())
	}
	// The same storage comes back, fully reinitialized.
	a2 := g.NewNode(2, 7, 3)
	if a2 != a {
		t.Fatal("Reset must recycle the first node slot")
	}
	if a2.TID != 2 || a2.Seq != 7 || a2.Loc != 3 {
		t.Fatalf("recycled node keeps stale identity: %v", a2)
	}
	if len(a2.Edges()) != 0 || a2.RMW() != nil || a2.Pruned() {
		t.Fatal("recycled node keeps stale edges/rmw/pruned state")
	}
	b2 := g.NewNode(0, 9, 3)
	if g.Reachable(a2, b2) || g.Reachable(b2, a2) {
		t.Fatal("recycled nodes must start unordered")
	}
	g.AddEdge(a2, b2)
	if !g.Reachable(a2, b2) {
		t.Fatal("reachability broken after recycle")
	}
}

func TestGraphResetEquivalentToFreshGraph(t *testing.T) {
	// The same edge script run on a recycled graph and on a fresh graph must
	// give identical reachability answers.
	build := func(g *Graph) []*Node {
		var nodes []*Node
		for i := 0; i < 20; i++ {
			nodes = append(nodes, g.NewNode(memmodel.TID(i%3), memmodel.SeqNum(i+1), 1))
		}
		for i := 0; i+1 < len(nodes); i += 2 {
			g.AddEdge(nodes[i], nodes[i+1])
		}
		for i := 0; i+3 < len(nodes); i += 3 {
			g.AddEdge(nodes[i], nodes[i+3])
		}
		return nodes
	}
	recycled := New()
	for r := 0; r < 3; r++ { // dirty the arena first
		recycled.Reset()
		build(recycled)
	}
	recycled.Reset()
	rn := build(recycled)
	fresh := New()
	fn := build(fresh)
	for i := range rn {
		for j := range rn {
			if got, want := recycled.Reachable(rn[i], rn[j]), fresh.Reachable(fn[i], fn[j]); got != want {
				t.Fatalf("Reachable(%d,%d): recycled=%v fresh=%v", i, j, got, want)
			}
		}
	}
}
