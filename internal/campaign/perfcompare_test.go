package campaign

import (
	"strings"
	"testing"
)

func perfSum(ns, bytes, objs float64) *PerfSummary {
	return &PerfSummary{
		Schema: PerfSchemaName, SchemaVersion: PerfSchemaVersion, GoVersion: "go1.24.0",
		Tools: []PerfToolSummary{{
			Tool: "c11tester", Execs: 100,
			NsPerExec: ns, AllocBytesPerExec: bytes, AllocObjectsPerExec: objs,
		}},
	}
}

func TestComparePerfExactAllocGate(t *testing.T) {
	old := perfSum(1000, 2048, 20)

	// Identical counters: no regression at zero tolerance.
	if c := ComparePerf(old, perfSum(1000, 2048, 20), 20, 0); c.Regressed() {
		t.Errorf("identical artifacts flagged as regressed:\n%s", c)
	}
	// Any byte growth trips the exact gate.
	if c := ComparePerf(old, perfSum(1000, 2049, 20), 20, 0); !c.Regressed() {
		t.Error("bytes/exec growth passed the exact gate")
	}
	// Any object growth trips the exact gate.
	c := ComparePerf(old, perfSum(1000, 2048, 20.5), 20, 0)
	if !c.Regressed() {
		t.Error("objects/exec growth passed the exact gate")
	}
	if !strings.Contains(c.String(), "ALLOC REGRESSION") {
		t.Errorf("report does not name the alloc regression:\n%s", c)
	}
	// A tolerance band admits growth within it.
	if c := ComparePerf(old, perfSum(1000, 2100, 20.5), 20, 5); c.Regressed() {
		t.Error("growth within a 5% alloc tolerance flagged as regression")
	}
	// Shrinking counters are an improvement, not a regression — but flag the
	// artifact as stale.
	c = ComparePerf(old, perfSum(1000, 1024, 10), 20, 0)
	if c.Regressed() {
		t.Error("allocation improvement flagged as regression")
	}
	if !c.StaleAllocs() || !strings.Contains(c.String(), "regenerate") {
		t.Errorf("allocation improvement not flagged as a stale artifact:\n%s", c)
	}
}

func TestComparePerfNsToleranceBand(t *testing.T) {
	old := perfSum(1000, 2048, 20)

	// Within the band: fine either direction.
	if c := ComparePerf(old, perfSum(1150, 2048, 20), 20, 0); c.Regressed() {
		t.Error("1.15× inside a ±20% band flagged as regression")
	}
	if c := ComparePerf(old, perfSum(700, 2048, 20), 20, 0); c.Regressed() {
		t.Error("a speedup flagged as regression")
	}
	// Beyond the band: regression.
	c := ComparePerf(old, perfSum(1300, 2048, 20), 20, 0)
	if !c.Regressed() {
		t.Error("1.3× outside a ±20% band passed")
	}
	if !strings.Contains(c.String(), "TIMING REGRESSION") {
		t.Errorf("report does not name the timing regression:\n%s", c)
	}
	// Negative tolerance disables the timing leg entirely.
	if c := ComparePerf(old, perfSum(9000, 2048, 20), -1, 0); c.Regressed() {
		t.Error("timing leg not disabled by a negative tolerance")
	}
}

func TestComparePerfUnmatchedToolsAndGoVersionWarning(t *testing.T) {
	old := perfSum(1000, 2048, 20)
	new := perfSum(1000, 2048, 20)
	new.Tools[0].Tool = "tsan11"
	new.GoVersion = "go1.22"
	c := ComparePerf(old, new, 20, 0)
	if len(c.UnmatchedOld) != 1 || len(c.UnmatchedNew) != 1 {
		t.Fatalf("unmatched = %v / %v, want one each", c.UnmatchedOld, c.UnmatchedNew)
	}
	if !strings.Contains(c.String(), "different Go versions") {
		t.Errorf("report does not warn about Go version skew:\n%s", c)
	}
}

// TestComparePerfCommittedArtifactSelfDiff closes the gate loop on the real
// committed artifact: it must load under the current schema and self-diff
// clean at zero tolerance (the identity case of the CI trajectory gate).
func TestComparePerfCommittedArtifactSelfDiff(t *testing.T) {
	sum, err := LoadPerfSummary("../../BENCH_perf.json")
	if err != nil {
		t.Fatal(err)
	}
	c := ComparePerf(sum, sum, 20, 0)
	if c.Regressed() || c.StaleAllocs() {
		t.Fatalf("committed artifact does not self-diff clean:\n%s", c)
	}
	if len(c.Tools) != len(sum.Tools) {
		t.Fatalf("matched %d of %d tools", len(c.Tools), len(sum.Tools))
	}
}
