package campaign

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"c11tester/internal/litmus"
)

// eventSpec builds the fixed matrix the instrumented-determinism tests run:
// only the worker count varies between invocations, so the unit-of-work set
// (and therefore the event stream, up to ordering) is identical.
func eventSpec(t *testing.T, workers int, tel *Telemetry) Spec {
	return Spec{
		Tools: []ToolSpec{
			mustTool(t, "c11tester", ToolOptions{}),
			mustTool(t, "tsan11", ToolOptions{}),
		},
		Benchmarks: []BenchmarkSpec{
			benchSpec(t, "ms-queue"),
			benchSpec(t, "linuxrwlocks"),
			benchSpec(t, "atomic-counter"),
		},
		Litmus: []*litmus.Test{
			mustLitmus(t, "MP+rlx"),
			mustLitmus(t, "CoRR"),
		},
		// The analyzer pipeline participates in the determinism guarantee:
		// findings and analyzer_finding events must be sharding-independent.
		Analyzers: []string{"atomicity", "sc-robustness"},
		Runs:      40,
		SeedBase:  500,
		Workers:   workers,
		// The same ragged shard size on both sides keeps the unit set
		// identical; only the order units are processed in may differ.
		ShardSize: 7,
		Telemetry: tel,
	}
}

// canonicalEvents parses, normalizes, and sorts a JSONL event stream. The
// only run-dependent content is the campaign_start spec echo — the worker
// count and the (per-TempDir) capture path — which is stripped; every other
// event is a pure function of its unit of work, so after sorting the streams
// must be byte-identical.
func canonicalEvents(t *testing.T, raw []byte) []string {
	var out []string
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("malformed event line %q: %v", line, err)
		}
		if m["type"] == "campaign_start" {
			if spec, ok := m["spec"].(map[string]any); ok {
				delete(spec, "workers")
				delete(spec, "shard_size")
				delete(spec, "capture_dir")
			}
		}
		norm, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(norm))
	}
	sort.Strings(out)
	return out
}

// TestInstrumentedDeterminismUnderSharding extends the campaign determinism
// guarantee to the telemetry fabric: with metrics and the structured event
// stream enabled, workers=1 and workers=4 must produce byte-identical
// canonicalized summaries AND identical event streams up to line ordering,
// with zero dropped events — and must match an uninstrumented-sink run.
func TestInstrumentedDeterminismUnderSharding(t *testing.T) {
	run := func(workers int) (*Summary, *Telemetry, []byte) {
		var buf bytes.Buffer
		tel := NewTelemetry(TelemetryOptions{EventSink: &buf})
		sum := Run(eventSpec(t, workers, tel))
		return sum, tel, buf.Bytes()
	}
	serialSum, serialTel, serialRaw := run(1)
	shardSum, shardTel, shardRaw := run(4)

	if n := serialTel.EventsDropped(); n != 0 {
		t.Fatalf("serial run dropped %d events", n)
	}
	if n := shardTel.EventsDropped(); n != 0 {
		t.Fatalf("sharded run dropped %d events", n)
	}
	for _, sum := range []*Summary{serialSum, shardSum} {
		if sum.Obs == nil || sum.Obs.EventsDropped != 0 {
			t.Fatalf("summary obs accounting = %+v, want zero drops", sum.Obs)
		}
	}
	if serialSum.Obs.EventsEmitted != shardSum.Obs.EventsEmitted {
		t.Fatalf("event counts differ: serial %d, sharded %d",
			serialSum.Obs.EventsEmitted, shardSum.Obs.EventsEmitted)
	}

	serialJSON, _ := json.Marshal(canonicalize(serialSum))
	shardJSON, _ := json.Marshal(canonicalize(shardSum))
	if !bytes.Equal(serialJSON, shardJSON) {
		t.Errorf("instrumented aggregates differ between workers=1 and workers=4:\nserial:  %s\nsharded: %s",
			serialJSON, shardJSON)
	}

	serialEv := canonicalEvents(t, serialRaw)
	shardEv := canonicalEvents(t, shardRaw)
	if !reflect.DeepEqual(serialEv, shardEv) {
		max := len(serialEv)
		if len(shardEv) > max {
			max = len(shardEv)
		}
		for i := 0; i < max; i++ {
			var a, b string
			if i < len(serialEv) {
				a = serialEv[i]
			}
			if i < len(shardEv) {
				b = shardEv[i]
			}
			if a != b {
				t.Errorf("event %d differs:\nserial:  %s\nsharded: %s", i, a, b)
				break
			}
		}
		t.Fatalf("event streams differ after canonical ordering (%d vs %d lines)",
			len(serialEv), len(shardEv))
	}
	if uint64(len(serialEv)) != serialSum.Obs.EventsEmitted {
		t.Errorf("stream has %d lines but summary reports %d emitted",
			len(serialEv), serialSum.Obs.EventsEmitted)
	}

	// The stream must cover the whole campaign lifecycle.
	types := map[string]int{}
	for _, line := range serialEv {
		var m struct {
			V    int    `json:"v"`
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatal(err)
		}
		if m.V != 1 {
			t.Fatalf("event schema version = %d, want 1: %s", m.V, line)
		}
		types[m.Type]++
	}
	for _, want := range []string{"campaign_start", "wave_start", "cell_start",
		"cell_end", "race_first_seen", "analyzer_finding", "wave_end", "campaign_end"} {
		if types[want] == 0 {
			t.Errorf("no %q event in stream (types: %v)", want, types)
		}
	}
	if types["campaign_start"] != 1 || types["campaign_end"] != 1 {
		t.Errorf("campaign lifecycle events duplicated: %v", types)
	}

	// An events-off run (Run builds its own quiet telemetry) must agree with
	// the instrumented ones. A sink-less stream emits nothing, so the event
	// accounting — but only it — is excluded from the comparison.
	stripObs := func(s *Summary) *Summary {
		c := canonicalize(s)
		c.Obs = nil
		return c
	}
	quiet := Run(eventSpec(t, 2, nil))
	quietJSON, _ := json.Marshal(stripObs(quiet))
	serialJSON, _ = json.Marshal(stripObs(serialSum))
	if !bytes.Equal(serialJSON, quietJSON) {
		t.Errorf("instrumented and quiet aggregates differ:\ninstrumented: %s\nquiet:        %s",
			serialJSON, quietJSON)
	}

	// The metric registry renders non-empty Prometheus text with the per-cell
	// families bound at setup.
	var prom bytes.Buffer
	serialTel.Registry().WritePrometheus(&prom)
	for _, family := range []string{"c11_cell_execs_total", "c11_cell_exec_ns",
		"c11_campaign_waves_total", "c11_campaign_execs_planned",
		"c11_analyzer_findings_total"} {
		if !strings.Contains(prom.String(), family) {
			t.Errorf("metric family %q missing from exposition", family)
		}
	}
}
