package campaign

import (
	"fmt"
	"strings"

	"c11tester/internal/analysis"
	"c11tester/internal/baseline"
	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/explore"
	"c11tester/internal/harness"
	"c11tester/internal/litmus"
	"c11tester/internal/rng"
	"c11tester/internal/sched"
	"c11tester/internal/structures"
	"c11tester/internal/trace"
)

// SplitList parses a comma-separated flag value, trimming whitespace and
// dropping empty entries (shared by the cmd/ flag parsers).
func SplitList(s string) []string {
	var names []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	return names
}

// reproFlags renders the non-default cmd/c11tester flags that reconstruct
// this tool configuration, for embedding in reproduction commands.
func (o ToolOptions) reproFlags(tool string) string {
	var parts []string
	switch tool {
	case "c11tester":
		switch o.Prune {
		case core.PruneConservative:
			parts = append(parts, "-prune conservative")
		case core.PruneAggressive:
			parts = append(parts, "-prune aggressive")
		}
		if o.Strategy == "quantum" {
			parts = append(parts, "-sched quantum")
			if o.QuantumMean != 0 {
				parts = append(parts, fmt.Sprintf("-quantum %d", o.QuantumMean))
			}
		}
	case "tsan11":
		if o.QuantumMean != 0 {
			parts = append(parts, fmt.Sprintf("-quantum %d", o.QuantumMean))
		}
	case "tsan11rec":
		if o.FaithfulHandoff {
			parts = append(parts, "-faithful-handoff")
		}
	}
	if o.MaxSteps != 0 {
		parts = append(parts, fmt.Sprintf("-max-steps %d", o.MaxSteps))
	}
	if r := rng.Canonical(o.RNG); r != "pcg" {
		parts = append(parts, "-rng "+r)
	}
	return strings.Join(parts, " ")
}

// ToolOptions configures the standard tool set. The zero value is the
// paper's default configuration for every tool.
type ToolOptions struct {
	// Prune selects the C11Tester memory limiter mode (Section 7.1); the
	// baselines keep bounded histories regardless.
	Prune core.PruneMode
	// Strategy selects the c11tester exploration strategy: "random" (the
	// default) or "quantum" (the uncontrolled-scheduler model).
	Strategy string
	// QuantumMean overrides the mean scheduling quantum for quantum
	// strategies (c11tester with Strategy "quantum", and tsan11).
	QuantumMean int
	// MaxSteps caps execution length; 0 keeps each tool's default.
	MaxSteps uint64
	// FaithfulHandoff runs tsan11rec on kernel-thread condition-variable
	// handoff (the Figure 14 regime) instead of the cheap channel handoff.
	FaithfulHandoff bool
	// Handoff, when non-empty, overrides every tool's scheduler handoff
	// regime ("channel", "cond", "osthread" — see sched.ParseHandoff); it
	// takes precedence over FaithfulHandoff. Scheduling decisions and
	// campaign outcomes are identical across regimes; only the handoff cost
	// changes (the Figure 14 dimension cmd/c11bench measures).
	Handoff string
	// Respawn disables the scheduler's fiber pool (fresh goroutine per model
	// thread per execution, see sched.Config.Respawn) — the pre-pool regime,
	// kept as the second Figure 14 benchmark dimension.
	Respawn bool
	// RNG selects the random source behind every decision the tools make
	// ("pcg" — the default splitmix-seeded PCG — or "legacy", math/rand).
	// Changing the source changes every scheduling and reads-from decision,
	// so it is part of the tool identity: repro flags, trace configs, and
	// the spec digest all carry it, and "legacy" reproduces pre-PCG
	// artifacts bit for bit.
	RNG string
}

// pruneName renders a PruneMode as its -prune flag value ("" for off).
func pruneName(p core.PruneMode) string {
	switch p {
	case core.PruneConservative:
		return "conservative"
	case core.PruneAggressive:
		return "aggressive"
	}
	return ""
}

// traceConfig renders the tool configuration into the portable form embedded
// in recorded traces, from which StandardToolFromConfig rebuilds an
// identical tool.
func (o ToolOptions) traceConfig(tool string) trace.ToolConfig {
	tc := trace.ToolConfig{Name: tool, MaxSteps: o.MaxSteps}
	switch tool {
	case "c11tester":
		tc.Prune = pruneName(o.Prune)
		if o.Strategy != "" && o.Strategy != "random" {
			tc.Sched = o.Strategy
			tc.QuantumMean = o.QuantumMean
		}
	case "tsan11":
		tc.QuantumMean = o.QuantumMean
	case "tsan11rec":
		tc.FaithfulHandoff = o.FaithfulHandoff
	}
	if r := rng.Canonical(o.RNG); r != "pcg" {
		tc.RNG = r
	}
	return tc
}

// StandardToolFromConfig rebuilds the tool a trace was recorded under.
func StandardToolFromConfig(tc trace.ToolConfig) (ToolSpec, error) {
	prune, err := ParsePrune(tc.Prune)
	if err != nil {
		return ToolSpec{}, err
	}
	return StandardTool(tc.Name, ToolOptions{
		Prune:           prune,
		Strategy:        tc.Sched,
		QuantumMean:     tc.QuantumMean,
		MaxSteps:        tc.MaxSteps,
		FaithfulHandoff: tc.FaithfulHandoff,
		RNG:             tc.RNG,
	})
}

// ParsePolicy parses a -policy flag value into a budget policy. minExecs,
// window, and epsilon parameterize the converge policy; zero values mean its
// defaults.
func ParsePolicy(name string, minExecs, window int, epsilon float64) (explore.Policy, error) {
	switch name {
	case "", "uniform":
		return explore.Uniform{}, nil
	case "converge":
		return explore.Converge{MinExecs: minExecs, Window: window, Epsilon: epsilon}, nil
	}
	return nil, fmt.Errorf("unknown policy %q (want uniform or converge)", name)
}

// ParsePrune parses a -prune flag value.
func ParsePrune(s string) (core.PruneMode, error) {
	switch s {
	case "", "off":
		return core.PruneOff, nil
	case "conservative":
		return core.PruneConservative, nil
	case "aggressive":
		return core.PruneAggressive, nil
	}
	return core.PruneOff, fmt.Errorf("unknown prune mode %q (want off, conservative, or aggressive)", s)
}

// SelectBenchmarks resolves a -bench flag value ("all", "none"/"", or a
// comma-separated name list) into benchmark specs with the right detection
// signal per suite (races for the data structures, assertion violations for
// the injected-bug suite).
func SelectBenchmarks(sel string) ([]BenchmarkSpec, error) {
	var specs []BenchmarkSpec
	add := func(b structures.Benchmark) {
		sig := harness.SignalRace
		if structures.IsInjected(b.Name) {
			sig = harness.SignalAssert
		}
		specs = append(specs, BenchmarkSpec{Name: b.Name, New: b.New, Signal: sig})
	}
	switch sel {
	case "none", "":
		return nil, nil
	case "all":
		for _, b := range structures.All() {
			add(b)
		}
	default:
		for _, name := range SplitList(sel) {
			b, err := structures.ByName(name)
			if err != nil {
				return nil, err
			}
			add(b)
		}
	}
	return specs, nil
}

// SelectLitmus resolves a -litmus flag value ("all", "none"/"", or a
// comma-separated name list) into litmus tests.
func SelectLitmus(sel string) ([]*litmus.Test, error) {
	switch sel {
	case "none", "":
		return nil, nil
	case "all":
		return litmus.Tests(), nil
	}
	var tests []*litmus.Test
	for _, name := range SplitList(sel) {
		t, ok := litmus.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown litmus test %q (see -list)", name)
		}
		tests = append(tests, t)
	}
	return tests, nil
}

// ParseAnalyzers resolves a -analyzers flag value ("all", "none"/"", or a
// comma-separated name list) into analyzer names. Unknown names surface in
// Spec.Validate, which also rejects duplicates.
func ParseAnalyzers(sel string) []string {
	switch sel {
	case "none", "":
		return nil
	case "all":
		return analysis.Names()
	}
	return SplitList(sel)
}

// StandardToolNames lists the tools of the paper's evaluation in its order.
func StandardToolNames() []string {
	return []string{"c11tester", "tsan11", "tsan11rec"}
}

// StandardTool builds the ToolSpec for one of the paper's three tools.
func StandardTool(name string, opts ToolOptions) (ToolSpec, error) {
	// Validate the handoff and rng overrides once here; the factories below
	// run on worker goroutines where an error has nowhere to go.
	if _, err := sched.ParseHandoff(opts.Handoff); err != nil {
		return ToolSpec{}, err
	}
	rngKind, err := rng.Parse(opts.RNG)
	if err != nil {
		return ToolSpec{}, err
	}
	switch name {
	case "c11tester":
		strategy := opts.Strategy
		if strategy == "" {
			strategy = "random"
		}
		if strategy != "random" && strategy != "quantum" {
			return ToolSpec{}, fmt.Errorf("unknown scheduler strategy %q (want random or quantum)", strategy)
		}
		return ToolSpec{Name: name, ReproFlags: opts.reproFlags(name), TraceConfig: opts.traceConfig(name), New: func() capi.Tool {
			var strat core.Strategy
			if strategy == "quantum" {
				mean := opts.QuantumMean
				if mean == 0 {
					mean = 150
				}
				strat = core.NewQuantumStrategyKind(rngKind, mean)
			} else {
				strat = core.NewRandomStrategyKind(rngKind)
			}
			schedCfg := sched.MustHandoff(opts.Handoff) // "" is the channel default
			schedCfg.Respawn = opts.Respawn
			return core.New(name, core.NewC11Model(), core.Config{
				Sched:      schedCfg,
				StoreBurst: true,
				Prune:      opts.Prune,
				Strategy:   strat,
				MaxSteps:   opts.MaxSteps,
				RNG:        rngKind,
			})
		}}, nil
	case "tsan11":
		return ToolSpec{Name: name, Baseline: true, ReproFlags: opts.reproFlags(name), TraceConfig: opts.traceConfig(name), New: func() capi.Tool {
			return baseline.NewTsan11(baseline.Options{
				QuantumMean: opts.QuantumMean,
				MaxSteps:    opts.MaxSteps,
				Handoff:     opts.Handoff,
				Respawn:     opts.Respawn,
				RNG:         rngKind,
			})
		}}, nil
	case "tsan11rec":
		return ToolSpec{Name: name, Baseline: true, ReproFlags: opts.reproFlags(name), TraceConfig: opts.traceConfig(name), New: func() capi.Tool {
			return baseline.NewTsan11rec(baseline.Options{
				MaxSteps:    opts.MaxSteps,
				FastHandoff: !opts.FaithfulHandoff,
				Handoff:     opts.Handoff,
				Respawn:     opts.Respawn,
				RNG:         rngKind,
			})
		}}, nil
	}
	return ToolSpec{}, fmt.Errorf("unknown tool %q (want one of %v)", name, StandardToolNames())
}
