// checkpoint.go is the crash-safety core of the campaign runner: seed-slice
// sharding (ShardSel), the spec digest that gates merging and resuming, and
// the wave-barrier checkpoint (Checkpoint) a killed campaign resumes from.
//
// The design leans entirely on the package invariant that every execution is
// a pure function of (tool, program, seed) and that all budget decisions
// happen at deterministic wave barriers. A checkpoint therefore only has to
// persist barrier state — per-cell budgets, converge-tracker state, and one
// merged result fragment per cell — and a resumed run re-enters the wave loop
// as if the completed waves had just run: the synthetic whole-range job per
// cell folds into the aggregate exactly like the original job sequence, so
// the finished artifact is byte-identical (Summary.Canonical) to an
// uninterrupted run.
package campaign

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"c11tester/internal/explore"
	"c11tester/internal/obs"
	"c11tester/internal/safeio"
	"c11tester/internal/trace"
)

// ShardSel selects shard Index of Count for a sharded campaign run. The zero
// value means "unsharded".
type ShardSel struct {
	Index int
	Count int
}

func (s ShardSel) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// ParseShard parses the CLI shard selector "index/count" (e.g. "0/3").
func ParseShard(s string) (ShardSel, error) {
	head, tail, ok := strings.Cut(s, "/")
	if !ok {
		return ShardSel{}, fmt.Errorf("shard %q: want \"index/count\", e.g. 0/3", s)
	}
	idx, err1 := strconv.Atoi(strings.TrimSpace(head))
	cnt, err2 := strconv.Atoi(strings.TrimSpace(tail))
	if err1 != nil || err2 != nil {
		return ShardSel{}, fmt.Errorf("shard %q: want \"index/count\", e.g. 0/3", s)
	}
	sel := ShardSel{Index: idx, Count: cnt}
	if cnt < 1 || idx < 0 || idx >= cnt {
		return ShardSel{}, fmt.Errorf("shard %s out of range (want 0 ≤ index < count)", sel)
	}
	return sel, nil
}

// ShardInfo is the shard header a partial summary carries (schema v6): which
// slice this is and the digest of the spec that cut it. cmd/c11merge refuses
// partials whose digests differ.
type ShardInfo struct {
	Index      int    `json:"index"`
	Count      int    `json:"count"`
	SpecDigest string `json:"spec_digest"`
}

// SpecDigest fingerprints every outcome-affecting campaign parameter: the
// tool set (name, repro flags, baseline flavour, trace identity), the program
// matrix, Runs/SeedBase/ShardSize, the budget policy, the guide configuration,
// and the validation/record/capture duties. Two specs with equal digests run
// identical execution sets with identical duties; Workers and artifact paths
// deliberately do not participate (they change where and how fast, never
// what).
func SpecDigest(spec Spec) string {
	spec = spec.withDefaults()
	type digestTool struct {
		Name       string           `json:"name"`
		ReproFlags string           `json:"repro_flags"`
		Baseline   bool             `json:"baseline"`
		Trace      trace.ToolConfig `json:"trace"`
	}
	d := struct {
		Tools         []digestTool `json:"tools"`
		Benchmarks    []string     `json:"benchmarks"`
		Litmus        []string     `json:"litmus"`
		Runs          int          `json:"runs"`
		SeedBase      int64        `json:"seed_base"`
		ShardSize     int          `json:"shard_size"`
		Policy        string       `json:"policy"`
		GuideDir      string       `json:"guide_dir,omitempty"`
		GuideTraces   int          `json:"guide_traces,omitempty"`
		GuideMinFrac  float64      `json:"guide_min_frac,omitempty"`
		GuideMaxFrac  float64      `json:"guide_max_frac,omitempty"`
		Validate      bool         `json:"validate,omitempty"`
		Record        bool         `json:"record,omitempty"`
		RecordAll     bool         `json:"record_all,omitempty"`
		Capture       bool         `json:"capture,omitempty"`
		CaptureSlowNS bool         `json:"capture_slow_ns,omitempty"`
		// Analyzers change what a campaign observes and reports, so they are
		// digest material; omitempty keeps pre-analyzer digests unchanged.
		Analyzers []string `json:"analyzers,omitempty"`
	}{
		Benchmarks: []string{}, Litmus: []string{},
		Runs: spec.Runs, SeedBase: spec.SeedBase, ShardSize: spec.ShardSize,
		Policy:   spec.Policy.Name(),
		Validate: spec.ValidateAxioms,
		Record:   spec.RecordDir != "", RecordAll: spec.RecordAll,
		Capture: spec.CaptureDir != "", CaptureSlowNS: spec.CaptureSlowNS,
	}
	for _, t := range spec.Tools {
		d.Tools = append(d.Tools, digestTool{Name: t.Name, ReproFlags: t.ReproFlags,
			Baseline: t.Baseline, Trace: t.TraceConfig})
	}
	for _, b := range spec.Benchmarks {
		d.Benchmarks = append(d.Benchmarks, b.Name)
	}
	for _, l := range spec.Litmus {
		d.Litmus = append(d.Litmus, l.Name)
	}
	if spec.Guides != nil {
		d.GuideDir = spec.Guides.Dir()
		d.GuideTraces = spec.Guides.Len()
		d.GuideMinFrac = spec.GuideMinFrac
		d.GuideMaxFrac = spec.GuideMaxFrac
	}
	if len(spec.Analyzers) > 0 {
		d.Analyzers = spec.Analyzers
	}
	b, err := json.Marshal(d)
	if err != nil {
		// Every field above is a plain value; Marshal cannot fail. Keep the
		// signature infallible.
		panic(fmt.Sprintf("campaign: spec digest: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// Schema identifiers of the serialized checkpoint.
const (
	CheckpointSchemaName    = "c11tester/checkpoint"
	CheckpointSchemaVersion = 1
)

// Checkpoint is the wave-barrier state of a campaign: everything a resumed
// run needs to re-enter at the first incomplete wave and finish with an
// artifact byte-identical (Summary.Canonical) to an uninterrupted run.
type Checkpoint struct {
	Schema        string   `json:"schema"`
	SchemaVersion int      `json:"schema_version"`
	SpecDigest    string   `json:"spec_digest"`
	Spec          SpecInfo `json:"spec"`
	// Provenance pins the build that wrote the checkpoint; resuming under a
	// skewed build is refused (a different toolchain may schedule
	// differently).
	Provenance *Provenance `json:"provenance,omitempty"`
	// Wave is the last completed wave; Complete marks the whole matrix done
	// (resuming a Complete checkpoint rebuilds the artifacts without running
	// anything).
	Wave     int  `json:"wave"`
	Complete bool `json:"complete,omitempty"`
	// Event/capture cursors: accounting of the append-only artifacts at the
	// barrier, for introspection and post-crash audit.
	EventsEmitted uint64 `json:"events_emitted,omitempty"`
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	Captures      int    `json:"captures,omitempty"`
	// Cells holds one entry per campaign cell, in matrix order.
	Cells []CellCheckpoint `json:"cells"`
}

// CellCheckpoint is one cell's barrier state: its budget accounting, its
// converge-tracker snapshot (adaptive policies), and its merged result
// fragment.
type CellCheckpoint struct {
	Kind    string `json:"kind"` // "bench" or "litmus"
	Tool    int    `json:"tool"`
	Cell    int    `json:"cell"`
	ToolRef string `json:"tool_name"`
	Program string `json:"program"`
	Used    int    `json:"used"`
	Stopped bool   `json:"stopped,omitempty"`

	Tracker *explore.TrackerSnapshot `json:"tracker,omitempty"`
	Frag    FragState                `json:"frag"`
}

// RaceState is one deduplicated race of a checkpointed fragment.
type RaceState struct {
	Key  string `json:"key"`
	Desc string `json:"desc"`
	Run  int    `json:"run"`
}

// FailureState is one sampled engine failure of a checkpointed fragment.
type FailureState struct {
	Run int    `json:"run"`
	Err string `json:"err"`
}

// FindingState is one deduplicated analyzer finding of a checkpointed
// fragment (schema v7 campaigns).
type FindingState struct {
	Analyzer string `json:"analyzer"`
	Key      string `json:"key"`
	Desc     string `json:"desc"`
	Run      int    `json:"run"`
	Count    int    `json:"count"`
}

// FragState is the serialized form of a cell's merged result fragment —
// field-for-field the unexported fragment type, with races flattened to a
// key-sorted list so the encoding is canonical.
type FragState struct {
	Execs          int                 `json:"execs"`
	Detected       int                 `json:"detected,omitempty"`
	AtomicOps      uint64              `json:"atomic_ops,omitempty"`
	NormalOps      uint64              `json:"normal_ops,omitempty"`
	ElapsedNS      int64               `json:"elapsed_ns,omitempty"`
	Races          []RaceState         `json:"races,omitempty"`
	Outcomes       map[string]int      `json:"outcomes,omitempty"`
	Forbidden      map[string]int      `json:"forbidden,omitempty"`
	Weak           map[string]int      `json:"weak,omitempty"`
	Failed         int                 `json:"failed,omitempty"`
	Failures       []FailureState      `json:"failures,omitempty"`
	GuidedExecs    int                 `json:"guided_execs,omitempty"`
	PrefixDepth    int64               `json:"prefix_depth,omitempty"`
	PrefixConsumed int64               `json:"prefix_consumed,omitempty"`
	Divergences    int                 `json:"divergences,omitempty"`
	Checked        int                 `json:"checked,omitempty"`
	Skipped        int                 `json:"skipped,omitempty"`
	Violations     int                 `json:"violations,omitempty"`
	VioSamples     []string            `json:"vio_samples,omitempty"`
	Recorded       int                 `json:"recorded,omitempty"`
	RecordErrs     int                 `json:"record_errs,omitempty"`
	Captures       []obs.CaptureRecord `json:"captures,omitempty"`
	AllocBytes     uint64              `json:"alloc_bytes,omitempty"`
	AllocObjs      uint64              `json:"alloc_objs,omitempty"`
	Findings       []FindingState      `json:"findings,omitempty"`
}

// fragState serializes a merged fragment.
func fragState(f *fragment) FragState {
	s := FragState{
		Execs: f.execs, Detected: f.detected,
		AtomicOps: f.ops.AtomicOps, NormalOps: f.ops.NormalOps,
		ElapsedNS: int64(f.elapsed),
		Outcomes:  f.outcomes, Forbidden: f.forbidden, Weak: f.weak,
		Failed:      f.failed,
		GuidedExecs: f.guidedExecs, PrefixDepth: f.prefixDepth,
		PrefixConsumed: f.prefixConsumed, Divergences: f.divergences,
		Checked: f.checked, Skipped: f.skipped, Violations: f.violations,
		VioSamples: f.vioSamples,
		Recorded:   f.recorded, RecordErrs: f.recordErrs,
		Captures:   f.captures,
		AllocBytes: f.allocBytes, AllocObjs: f.allocObjs,
	}
	for _, key := range sortedStringKeys(f.races) {
		hit := f.races[key]
		s.Races = append(s.Races, RaceState{Key: key, Desc: hit.desc, Run: hit.run})
	}
	for _, fl := range f.failures {
		s.Failures = append(s.Failures, FailureState{Run: fl.run, Err: fl.err})
	}
	for _, id := range sortedFindingIDs(f.findings) {
		hit := f.findings[id]
		s.Findings = append(s.Findings, FindingState{Analyzer: id.analyzer,
			Key: id.key, Desc: hit.desc, Run: hit.run, Count: hit.count})
	}
	return s
}

// fragment rebuilds the in-memory fragment a FragState serialized.
func (s *FragState) fragment() fragment {
	f := fragment{
		execs: s.Execs, detected: s.Detected,
		elapsed:  time.Duration(s.ElapsedNS),
		races:    map[string]raceHit{},
		outcomes: s.Outcomes, forbidden: s.Forbidden, weak: s.Weak,
		failed:      s.Failed,
		guidedExecs: s.GuidedExecs, prefixDepth: s.PrefixDepth,
		prefixConsumed: s.PrefixConsumed, divergences: s.Divergences,
		checked: s.Checked, skipped: s.Skipped, violations: s.Violations,
		vioSamples: s.VioSamples,
		recorded:   s.Recorded, recordErrs: s.RecordErrs,
		captures:   s.Captures,
		allocBytes: s.AllocBytes, allocObjs: s.AllocObjs,
	}
	f.ops.AtomicOps = s.AtomicOps
	f.ops.NormalOps = s.NormalOps
	for _, r := range s.Races {
		f.races[r.Key] = raceHit{desc: r.Desc, run: r.Run}
	}
	for _, fl := range s.Failures {
		f.failures = append(f.failures, execFailure{run: fl.Run, err: fl.Err})
	}
	for _, fd := range s.Findings {
		if f.findings == nil {
			f.findings = map[findingID]findingHit{}
		}
		f.findings[findingID{analyzer: fd.Analyzer, key: fd.Key}] =
			findingHit{desc: fd.Desc, run: fd.Run, count: fd.Count}
	}
	return f
}

func sortedStringKeys(m map[string]raceHit) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

const (
	cellKindBench  = "bench"
	cellKindLitmus = "litmus"
)

func kindName(k jobKind) string {
	if k == jobLitmus {
		return cellKindLitmus
	}
	return cellKindBench
}

func kindOf(name string) jobKind {
	if name == cellKindLitmus {
		return jobLitmus
	}
	return jobBench
}

// buildCheckpoint folds the completed work into one CellCheckpoint per cell,
// in matrix order, merging each cell's job fragments in job order (execution-
// index order within a cell) so the capped sample lists stay deterministic.
// plans supplies budget/tracker state under an adaptive policy; nil (uniform)
// derives the cell list from the jobs.
func buildCheckpoint(spec Spec, tel *Telemetry, wave int, complete bool, plans []*cellPlan, jobs []job, frags []fragment) *Checkpoint {
	c := &Checkpoint{
		Schema: CheckpointSchemaName, SchemaVersion: CheckpointSchemaVersion,
		SpecDigest: SpecDigest(spec), Spec: specInfo(spec),
		Provenance: BuildProvenance(),
		Wave:       wave, Complete: complete,
		EventsEmitted: tel.EventsEmitted(), EventsDropped: tel.EventsDropped(),
		Cells: []CellCheckpoint{},
	}
	merged := map[cellKey]*fragment{}
	hi := map[cellKey]int{}
	var order []cellKey
	if plans != nil {
		for _, p := range plans {
			order = append(order, cellKey{kind: p.kind, tool: p.tool, cell: p.cell})
		}
	}
	for i := range jobs {
		key := cellKey{kind: jobs[i].kind, tool: jobs[i].tool, cell: jobs[i].cell}
		f := merged[key]
		if f == nil {
			f = &fragment{}
			merged[key] = f
			if plans == nil {
				order = append(order, key)
			}
		}
		f.merge(&frags[i])
		if jobs[i].hi > hi[key] {
			hi[key] = jobs[i].hi
		}
	}
	planOf := map[cellKey]*cellPlan{}
	for _, p := range plans {
		planOf[cellKey{kind: p.kind, tool: p.tool, cell: p.cell}] = p
	}
	for _, key := range order {
		cc := CellCheckpoint{
			Kind: kindName(key.kind), Tool: key.tool, Cell: key.cell,
			ToolRef: spec.Tools[key.tool].Name,
			Used:    hi[key],
		}
		if key.kind == jobLitmus {
			cc.Program = spec.Litmus[key.cell].Name
		} else {
			cc.Program = spec.Benchmarks[key.cell].Name
		}
		if p := planOf[key]; p != nil {
			cc.Used = p.used
			cc.Stopped = p.stopped
			if s, ok := p.tracker.(explore.Snapshotter); ok {
				cc.Tracker = s.Snapshot()
			}
		}
		if f := merged[key]; f != nil {
			cc.Frag = fragState(f)
			c.Captures += len(f.captures)
		}
		c.Cells = append(c.Cells, cc)
	}
	return c
}

// ckState carries the checkpoint duty through the runner: the target path
// (empty = disarmed), the test hook, and the write-failure count surfaced as
// Summary.CheckpointErrors. Checkpoint failures never abort a campaign — a
// full disk costs the resume point, not the run.
type ckState struct {
	path string
	hook func(*Checkpoint)
	errs int
}

func (ck *ckState) save(spec Spec, tel *Telemetry, wave int, complete bool, plans []*cellPlan, jobs []job, frags []fragment) {
	if ck.path == "" {
		return
	}
	// The checkpoint's event cursor must not run ahead of the durable stream:
	// flush queued event lines before persisting the barrier state.
	tel.syncEvents()
	c := buildCheckpoint(spec, tel, wave, complete, plans, jobs, frags)
	if ck.hook != nil {
		ck.hook(c)
	}
	if err := safeio.WriteJSONAtomic(ck.path, c, 0o644); err != nil {
		ck.errs++
		fmt.Fprintf(os.Stderr, "campaign: checkpoint: %v\n", err)
	}
}

// LoadCheckpoint reads and schema-checks a checkpoint. Truncated or corrupt
// files come back as a *safeio.DecodeError naming the byte offset.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	var c Checkpoint
	if err := safeio.DecodeJSONFile(path, &c); err != nil {
		return nil, err
	}
	if c.Schema != CheckpointSchemaName {
		return nil, fmt.Errorf("campaign: %s: schema %q, want %q", path, c.Schema, CheckpointSchemaName)
	}
	if c.SchemaVersion < 1 || c.SchemaVersion > CheckpointSchemaVersion {
		return nil, fmt.Errorf("campaign: %s: unsupported checkpoint schema version %d", path, c.SchemaVersion)
	}
	return &c, nil
}

// ValidateAgainst reports why the checkpoint cannot resume the given spec:
// a spec-digest mismatch (different execution set or duties) or build
// provenance skew (a different toolchain cannot promise identical replay).
func (c *Checkpoint) ValidateAgainst(spec Spec) error {
	if d := SpecDigest(spec); c.SpecDigest != d {
		return fmt.Errorf("campaign: checkpoint was cut from a different campaign spec (digest %.12s… vs %.12s…): resuming would mix incompatible runs — point -checkpoint at a fresh path to start over", c.SpecDigest, d)
	}
	if skew := BuildProvenance().Skew(c.Provenance); len(skew) > 0 {
		return fmt.Errorf("campaign: checkpoint build provenance skew (%s): a different build cannot promise byte-identical resume — re-run the campaign from scratch", strings.Join(skew, "; "))
	}
	return nil
}

// restoreAdaptive pushes a checkpoint's barrier state back into the adaptive
// runner: plan budgets, tracker snapshots, and one synthetic whole-range job
// per cell carrying the merged fragment.
func restoreAdaptive(spec Spec, c *Checkpoint, plans []*cellPlan, jobs *[]job, frags *[]fragment) {
	planOf := map[cellKey]*cellPlan{}
	for _, p := range plans {
		planOf[cellKey{kind: p.kind, tool: p.tool, cell: p.cell}] = p
	}
	for i := range c.Cells {
		cc := &c.Cells[i]
		key := cellKey{kind: kindOf(cc.Kind), tool: cc.Tool, cell: cc.Cell}
		p := planOf[key]
		if p == nil {
			// Unreachable behind ValidateAgainst (the digest pins the matrix);
			// skipping beats corrupting plan state.
			continue
		}
		p.used = cc.Used
		p.stopped = cc.Stopped
		if s, ok := p.tracker.(explore.Snapshotter); ok {
			s.Restore(cc.Tracker)
		}
		if cc.Used > 0 {
			*jobs = append(*jobs, job{kind: key.kind, tool: key.tool, cell: key.cell, lo: 0, hi: cc.Used})
			*frags = append(*frags, cc.Frag.fragment())
		}
	}
}

// restoreComplete rebuilds the aggregate inputs of a finished campaign from
// its Complete checkpoint, without re-running anything. adaptive additionally
// rebuilds the per-cell budget reports.
func restoreComplete(spec Spec, c *Checkpoint, adaptive bool) ([]job, []fragment, map[cellKey]*BudgetSummary) {
	var jobs []job
	var frags []fragment
	var budgets map[cellKey]*BudgetSummary
	if adaptive {
		budgets = map[cellKey]*BudgetSummary{}
	}
	for i := range c.Cells {
		cc := &c.Cells[i]
		key := cellKey{kind: kindOf(cc.Kind), tool: cc.Tool, cell: cc.Cell}
		if cc.Used > 0 {
			jobs = append(jobs, job{kind: key.kind, tool: key.tool, cell: key.cell, lo: 0, hi: cc.Used})
			frags = append(frags, cc.Frag.fragment())
		}
		if adaptive {
			extended := cc.Used - spec.Runs
			if extended < 0 {
				extended = 0
			}
			budgets[key] = &BudgetSummary{
				Planned: spec.Runs, Used: cc.Used,
				Extended: extended, Converged: cc.Stopped,
			}
		}
	}
	return jobs, frags, budgets
}
