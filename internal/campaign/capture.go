// capture.go wires the obs flight recorder (internal/obs/forensics.go) into
// the campaign runner. Each unit of work carries its own recorder — the unit
// set is a pure function of the spec, so trigger decisions (and therefore the
// capture set) are identical for workers=1 and workers=K. A granted trigger
// re-runs the exact seed on a *fresh* tool instance with a trace.Recorder
// attached: re-executing on the campaign's own engine would perturb its
// race-dedup state and change NewRaces for the unit's later executions, and
// keeping the capture off the campaign engine is also what keeps the hot path
// at 0 B / 0 obj — the per-execution cost of an armed recorder is one digest
// build and one allocation-free ring check.
package campaign

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"c11tester/internal/core"
	"c11tester/internal/explore"
	"c11tester/internal/harness"
	"c11tester/internal/obs"
	"c11tester/internal/trace"
)

// flightCheck feeds one completed execution's digest to the unit's flight
// recorder and captures it if a trigger fires. No-op (and allocation-free)
// when the recorder is unarmed or nothing triggers.
func (r *cellRunner) flightCheck(i int, dur time.Duration, newRace bool, o explore.Obs) {
	if r.fr == nil {
		return
	}
	d := obs.ExecDigest{
		Index:     i,
		NS:        int64(dur),
		NewRace:   newRace,
		Forbidden: r.test != nil && o.Detected,
	}
	if r.eng != nil {
		st := r.eng.ExecStats()
		d.Steps = st.Steps
		d.Choices = st.Choices
	}
	if trig := r.fr.Check(d); trig != obs.TriggerNone {
		r.capture(trig, d, o.RaceKeys, o.Outcome)
	}
}

// flightFail is flightCheck for executions the tool aborted
// (core.InfeasibleError): the digest carries only the infeasibility flag, and
// the capture manifest gets a trace-less entry (the re-run aborts the same
// way — the repro line is the artifact).
func (r *cellRunner) flightFail(i int) {
	if r.fr == nil {
		return
	}
	d := obs.ExecDigest{Index: i, Infeasible: true}
	if trig := r.fr.Check(d); trig != obs.TriggerNone {
		r.capture(trig, d, nil, "")
	}
}

// capture records one granted trigger: it re-runs the seed for a portable
// trace (captureTrace) and appends the manifest entry to the fragment.
func (r *cellRunner) capture(trig obs.Trigger, d obs.ExecDigest, raceKeys []string, outcome string) {
	spec := r.spec
	toolSpec := spec.Tools[r.j.tool]
	seed := spec.SeedBase + int64(d.Index)
	keys := append([]string(nil), raceKeys...)
	sort.Strings(keys)
	rec := obs.CaptureRecord{
		Tool:     toolSpec.Name,
		Program:  r.programName(),
		Litmus:   r.j.kind == jobLitmus,
		Seed:     seed,
		Index:    d.Index,
		Trigger:  trig.String(),
		RaceKeys: keys,
		Outcome:  outcome,
		Steps:    d.Steps,
		Choices:  d.Choices,
		Repro: harness.Repro{Tool: toolSpec.Name, Program: r.programName(),
			Seed: seed, Litmus: r.j.kind == jobLitmus,
			Flags: toolSpec.ReproFlags}.Command(),
	}
	file, err := captureTrace(spec, r.j, seed)
	if err != nil {
		rec.Err = err.Error()
	} else {
		rec.File = file
	}
	r.frag.captures = append(r.frag.captures, rec)
}

// captureTrace re-runs one seed with a trace recorder attached and writes the
// portable trace into the capture directory, returning its file name. The
// re-run builds a fresh tool and program through the same wiring as a
// campaign unit (guides included), minus the campaign duties: executions are
// pure functions of (tool, program, seed), so the re-run reproduces exactly
// the execution the recorder flagged.
func captureTrace(spec Spec, j job, seed int64) (string, error) {
	sub := spec
	sub.Telemetry = nil
	sub.RecordDir = ""
	sub.RecordAll = false
	sub.ValidateAxioms = false
	sub.Analyzers = nil
	sub.CaptureDir = "" // no recursive recorders
	sub.CheckpointPath = ""
	sub.Resume = nil
	sub.checkpointHook = nil
	sub.Shard = ShardSel{}
	cr := newCellRunner(sub, j)
	defer cr.close()
	if cr.eng == nil {
		return "", fmt.Errorf("tool %s cannot record traces (not an engine)", spec.Tools[j.tool].Name)
	}
	rec := trace.NewRecorder(cr.eng.Strategy())
	cr.eng.SetStrategy(rec)
	if cr.mo != nil {
		cr.eng.SetTrace(true)
	}
	i := int(seed - spec.SeedBase)
	if cr.pg != nil {
		cr.pg.SetSchedule(cr.guides[i%len(cr.guides)].Schedule)
	}
	if cr.test != nil {
		cr.out = ""
	}
	res := cr.tool.Execute(cr.prog, seed)
	if res.EngineError != nil {
		return "", fmt.Errorf("capture re-run aborted: %v", res.EngineError)
	}
	meta := trace.Meta{Tool: spec.Tools[j.tool].TraceConfig, Program: cr.programName(),
		Litmus: cr.test != nil, Seed: seed, Outcome: cr.out}
	var tr *trace.Trace
	var err error
	if ie := core.RecoverInfeasible(func() {
		tr, err = trace.Record(cr.eng, res, rec.Schedule(), meta)
	}); ie != nil {
		return "", fmt.Errorf("capture lifting infeasible: %v", ie)
	}
	if err != nil {
		return "", err
	}
	name := trace.FileName(spec.Tools[j.tool].Name, cr.programName(), seed)
	if err := tr.WriteFile(filepath.Join(spec.CaptureDir, name)); err != nil {
		return "", err
	}
	return name, nil
}

// captureManifest folds every fragment's capture records into the canonical
// manifest Run writes to CaptureDir.
func captureManifest(frags []fragment) *obs.Manifest {
	m := obs.NewManifest()
	m.Captures = []obs.CaptureRecord{}
	for i := range frags {
		m.Captures = append(m.Captures, frags[i].captures...)
	}
	m.Sort()
	return m
}
