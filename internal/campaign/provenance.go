package campaign

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Provenance identifies the build that produced an artifact: toolchain,
// module, and target. Campaign summaries (schema v5) and the /progress
// snapshot embed it so artifacts compared across machines or checkouts can be
// flagged — Compare warns on skew the way ComparePerf already warns on
// Go-version skew. Every field is machine-stable (no wall-clock, no
// hostnames), so embedding it does not disturb the byte-identity of
// same-process determinism comparisons.
type Provenance struct {
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	Module        string `json:"module,omitempty"`
	ModuleVersion string `json:"module_version,omitempty"`
}

// BuildProvenance reads the running binary's provenance.
func BuildProvenance() *Provenance {
	p := &Provenance{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		p.Module = bi.Main.Path
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			p.ModuleVersion = bi.Main.Version
		}
	}
	return p
}

// Skew lists the fields on which two provenances disagree, rendered as
// "field: old → new" lines; empty when they match. Nil-safe: a missing side
// (pre-v5 artifact) yields no skew — there is nothing to compare.
func (p *Provenance) Skew(o *Provenance) []string {
	if p == nil || o == nil {
		return nil
	}
	var out []string
	diff := func(name, a, b string) {
		if a != b {
			out = append(out, fmt.Sprintf("%s: %s → %s", name, a, b))
		}
	}
	diff("go version", p.GoVersion, o.GoVersion)
	diff("goos", p.GOOS, o.GOOS)
	diff("goarch", p.GOARCH, o.GOARCH)
	diff("module", p.Module, o.Module)
	diff("module version", p.ModuleVersion, o.ModuleVersion)
	return out
}
