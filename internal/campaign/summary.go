package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"c11tester/internal/capi"
	"c11tester/internal/harness"
	"c11tester/internal/obs"
	"c11tester/internal/rng"
	"c11tester/internal/safeio"
)

// Schema identifiers of the serialized campaign summary. Bump SchemaVersion
// on any incompatible change to the JSON shape; consumers of the
// BENCH_campaign.json trajectory key on it.
//
// v2: per-tool allocation counters ("perf"), campaign-level GC stats
// ("gc"), optional axiomatic-validation results ("validation"), recorded
// trace counts, and the record/validate spec echo.
//
// v3: budget-policy echo ("policy") and per-cell budget accounting
// ("budget") for adaptive campaigns, trace-guided exploration echo
// ("guide_dir"/"guide_traces") with per-cell prefix-depth and divergence
// statistics ("guided"), and per-tool engine-failure counts with repro
// samples ("engine_failures"/"failure_samples").
//
// v4: observability integration — per-cell ns/exec histogram snapshots
// ("timing", from the telemetry fabric's fixed-bucket histograms) and the
// campaign-level event-stream accounting ("obs": events emitted/dropped).
// Compare gates on nonzero drops and reports p99 ns/exec drift.
//
// v5: execution forensics — per-cell phase-span histograms ("phases":
// reset/run/race from the engine's phase timer, validate/record from the
// campaign duties), per-tool flight-recorder capture counts
// ("captures"/"capture_errors" with the capture spec echo), and the build
// provenance header ("provenance"). Compare warns on provenance skew.
//
// v6: crash-safe campaigns — the shard header of a partial run ("shard":
// index/count plus the spec digest cmd/c11merge validates), the
// checkpoint-write failure count ("checkpoint_errors"), and exact
// guided-exploration sums ("prefix_depth_sum"/"consumed_sum" next to the v3
// means) so merged partials reproduce the single-machine statistics without
// floating-point drift.
//
// v7: analyzer pipeline — the analyzer-set echo ("analyzers" in the spec),
// per-tool per-analyzer rollups ("analyzers": distinct keys and total hits),
// and the deduplicated finding list ("findings") with one-command repro
// triples, merged across shards by the same min-by-(cell, seed) winner
// algebra as races.
//
// v8: the rng-source echo ("rng" in the spec): campaigns name the random
// source their decision streams were drawn from ("pcg", the splitmix-seeded
// PCG subsystem, or "legacy", math/rand — reproduces pre-v8 artifacts).
const (
	SchemaName    = "c11tester/campaign"
	SchemaVersion = 8
)

// SpecInfo echoes the campaign parameters into the summary, making every
// artifact self-describing (and every execution in it replayable: seed i of
// a cell is Spec.SeedBase+i).
type SpecInfo struct {
	Tools      []string `json:"tools"`
	Benchmarks []string `json:"benchmarks"`
	Litmus     []string `json:"litmus"`
	Runs       int      `json:"runs"`
	SeedBase   int64    `json:"seed_base"`
	Workers    int      `json:"workers"`
	ShardSize  int      `json:"shard_size"`
	// Policy echoes the budget policy and its parameters (schema v3);
	// "uniform" is the fixed Runs-per-cell matrix.
	Policy string `json:"policy,omitempty"`
	// GuideDir and GuideTraces echo the trace-guided exploration input
	// (schema v3).
	GuideDir    string `json:"guide_dir,omitempty"`
	GuideTraces int    `json:"guide_traces,omitempty"`
	RecordDir   string `json:"record_dir,omitempty"`
	RecordAll   bool   `json:"record_all,omitempty"`
	Validate    bool   `json:"validate,omitempty"`
	// CaptureDir and CaptureSlowNS echo the flight-recorder configuration
	// (schema v5).
	CaptureDir    string `json:"capture_dir,omitempty"`
	CaptureSlowNS bool   `json:"capture_slow_ns,omitempty"`
	// Analyzers echoes the analyzer pipeline composed per cell (schema v7).
	Analyzers []string `json:"analyzers,omitempty"`
	// RNG names the random source behind every decision stream (schema v8):
	// "pcg" (default) or "legacy". Pre-v8 artifacts omit it and were drawn
	// from the legacy source.
	RNG string `json:"rng,omitempty"`
}

// BudgetSummary is the budget accounting of one cell under an adaptive
// policy (schema v3): how many executions its initial budget planned, how
// many actually ran, how many of those were reassigned from other cells'
// freed budget, and whether the cell's statistics converged.
type BudgetSummary struct {
	Planned   int  `json:"planned"`
	Used      int  `json:"used"`
	Extended  int  `json:"extended,omitempty"`
	Converged bool `json:"converged"`
}

// GuideStats reports the trace-guided exploration of one cell (schema v3):
// how many traces guided it, how many executions ran guided, the mean
// intended prefix depth and mean choices actually consumed before handoff
// (in combined schedule choices), and how many prefixes diverged (a recorded
// choice was not takeable and forced an early handoff).
type GuideStats struct {
	Traces          int     `json:"traces"`
	GuidedExecs     int     `json:"guided_execs"`
	MeanPrefixDepth float64 `json:"mean_prefix_depth"`
	MeanConsumed    float64 `json:"mean_consumed"`
	Divergences     int     `json:"divergences"`
	// PrefixDepthSum and ConsumedSum are the raw sums behind the means
	// (schema v6): merging shard partials recomputes exact means from summed
	// integers instead of averaging averages.
	PrefixDepthSum int64 `json:"prefix_depth_sum,omitempty"`
	ConsumedSum    int64 `json:"consumed_sum,omitempty"`
}

// EngineFailure is one sampled execution the tool itself aborted (schema
// v3): an infeasible memory-model state (core.InfeasibleError), with the
// reproduction triple of the failing execution.
type EngineFailure struct {
	Error string        `json:"error"`
	Repro harness.Repro `json:"repro"`
}

// cellKey identifies one (kind, tool, cell) of the campaign matrix.
type cellKey struct {
	kind jobKind
	tool int
	cell int
}

// CellSummary aggregates one (tool, benchmark) cell.
type CellSummary struct {
	Program   string                   `json:"program"`
	Detection harness.DetectionSummary `json:"detection"`
	// RaceKeys are the deduplicated race keys this cell exhibited, sorted.
	RaceKeys []string `json:"race_keys"`
	// Budget is the cell's budget accounting under an adaptive policy
	// (schema v3; absent under the uniform policy).
	Budget *BudgetSummary `json:"budget,omitempty"`
	// Guided is present when the cell ran trace-guided (schema v3).
	Guided *GuideStats `json:"guided,omitempty"`
	// Failed counts executions the tool itself aborted (schema v3).
	Failed int `json:"failed,omitempty"`
	// Timing is the cell's ns/exec histogram snapshot from the telemetry
	// fabric (schema v4; present when the campaign ran with telemetry, which
	// Run always enables).
	Timing *obs.HistogramSnapshot `json:"timing,omitempty"`
	// Phases are the cell's per-phase span histograms keyed by phase name
	// (schema v5; present when the tool is an engine — phase timing rides the
	// telemetry fabric).
	Phases map[string]*obs.HistogramSnapshot `json:"phases,omitempty"`
}

// ForbiddenOutcome is one observed litmus outcome the memory model must
// never produce — a model soundness bug, with the reproduction triple of
// the earliest execution that produced it.
type ForbiddenOutcome struct {
	Test    string        `json:"test"`
	Outcome string        `json:"outcome"`
	Count   int           `json:"count"`
	Repro   harness.Repro `json:"repro"`
}

// LitmusSummary aggregates one (tool, litmus test) cell.
type LitmusSummary struct {
	Test  string `json:"test"`
	Execs int    `json:"execs"`
	// Outcomes histograms the observed outcomes (empty-outcome runs, e.g.
	// starved bounded spins, are not counted).
	Outcomes map[string]int `json:"outcomes"`
	// ForbiddenSeen lists forbidden outcomes that were observed (must stay
	// empty for a sound model).
	ForbiddenSeen []ForbiddenOutcome `json:"forbidden_seen,omitempty"`
	// WeakSeen lists the weak (allowed, non-SC) outcomes observed, sorted;
	// WeakDefined is how many the test defines. Coverage of weak outcomes
	// is what separates the full fragment from the baselines'.
	WeakSeen    []string `json:"weak_seen"`
	WeakDefined int      `json:"weak_defined"`
	// Budget, Guided, and Failed mirror CellSummary's schema v3 fields.
	Budget *BudgetSummary `json:"budget,omitempty"`
	Guided *GuideStats    `json:"guided,omitempty"`
	Failed int            `json:"failed,omitempty"`
	// Timing mirrors CellSummary's schema v4 ns/exec histogram snapshot.
	Timing *obs.HistogramSnapshot `json:"timing,omitempty"`
	// Phases mirrors CellSummary's schema v5 per-phase span histograms.
	Phases map[string]*obs.HistogramSnapshot `json:"phases,omitempty"`
}

// ToolPerf carries the allocation counters of one tool's campaign: global
// heap-allocation deltas summed over the tool's shards. Exact at Workers=1;
// under concurrent workers they include co-scheduled shards' allocations and
// serve as a regression signal, like the shard wall-clock they accompany.
type ToolPerf struct {
	AllocBytes   uint64  `json:"alloc_bytes"`
	AllocObjects uint64  `json:"alloc_objects"`
	BytesPerExec float64 `json:"bytes_per_exec"`
}

// ValidationSummary reports the per-tool axiomatic-validation results of a
// -validate campaign: how many executions were checked against the Appendix
// A model, how many were skipped (the tool's memory model exposes no total
// modification order), and how many violations were found. Any violation is
// a model soundness bug and fails the campaign.
type ValidationSummary struct {
	Checked    int      `json:"checked"`
	Skipped    int      `json:"skipped"`
	Violations int      `json:"violations"`
	Samples    []string `json:"samples,omitempty"`
}

// AnalyzerSummary is one analyzer's per-tool rollup (schema v7): how many
// distinct finding keys it produced across the tool's cells and the total
// number of executions that hit one of them. A campaign run with -analyzers
// emits one entry per requested analyzer, in request order, even when the
// analyzer found nothing (or was skipped on every cell because the tool
// cannot satisfy its trace/MO needs).
type AnalyzerSummary struct {
	Analyzer string `json:"analyzer"`
	Distinct int    `json:"distinct"`
	Count    int    `json:"count"`
}

// FindingSummary is one deduplicated analyzer finding (schema v7): the
// analyzer that emitted it, its key (unique per (analyzer, cell)), and the
// reproduction triple of the earliest execution that produced it — the repro
// flags include "-analyzers <name>" so the one-command replay re-runs the
// analyzer that found it.
type FindingSummary struct {
	Analyzer    string        `json:"analyzer"`
	Key         string        `json:"key"`
	Description string        `json:"description"`
	Program     string        `json:"program"`
	Litmus      bool          `json:"litmus,omitempty"`
	Count       int           `json:"count"`
	Repro       harness.Repro `json:"repro"`
}

// GCSummary is the campaign-wide memory profile: heap allocation and GC
// deltas measured across the whole run.
type GCSummary struct {
	AllocBytes   uint64 `json:"alloc_bytes"`
	Mallocs      uint64 `json:"mallocs"`
	NumGC        uint32 `json:"num_gc"`
	PauseTotalNS uint64 `json:"pause_total_ns"`
}

// ToolSummary aggregates one tool's whole campaign.
type ToolSummary struct {
	Tool string `json:"tool"`
	// Execs counts executions across all cells; WorkNS sums the shard
	// execution times (serial-equivalent work, independent of the worker
	// count up to scheduling noise), and ExecsPerSec = Execs/WorkNS.
	Execs       int     `json:"execs"`
	WorkNS      int64   `json:"work_ns"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	AtomicOps   uint64  `json:"atomic_ops"`
	NormalOps   uint64  `json:"normal_ops"`

	// Perf carries the allocation counters (schema v2).
	Perf ToolPerf `json:"perf"`
	// Validation is present when the campaign ran with ValidateAxioms.
	Validation *ValidationSummary `json:"validation,omitempty"`
	// RecordedTraces counts the trace files this tool persisted (RecordDir);
	// RecordErrors counts executions whose trace could not be recorded or
	// written (any nonzero value is surfaced as a warning in the report).
	RecordedTraces int `json:"recorded_traces,omitempty"`
	RecordErrors   int `json:"record_errors,omitempty"`
	// EngineFailures counts executions this tool aborted with an infeasible
	// memory-model state (schema v3); FailureSamples carries the earliest
	// few with repro triples. Any failure is a model soundness bug and fails
	// the campaign — but only the failing executions, not the worker, so the
	// rest of the matrix still runs.
	EngineFailures int             `json:"engine_failures,omitempty"`
	FailureSamples []EngineFailure `json:"failure_samples,omitempty"`
	// Captures counts the flight-recorder captures this tool triggered
	// (schema v5; the manifest in Spec.CaptureDir has the details);
	// CaptureErrors counts captures whose re-run could not produce a trace
	// file (the manifest entry carries the error).
	Captures      int `json:"captures,omitempty"`
	CaptureErrors int `json:"capture_errors,omitempty"`
	// Analyzers and Findings carry the analyzer pipeline's results (schema
	// v7): per-analyzer rollups and the deduplicated findings with repro
	// triples, sorted by (analyzer, cell order, key). Present only when the
	// campaign ran with a non-empty analyzer set.
	Analyzers []AnalyzerSummary `json:"analyzers,omitempty"`
	Findings  []FindingSummary  `json:"findings,omitempty"`

	Benchmarks []CellSummary   `json:"benchmarks,omitempty"`
	Litmus     []LitmusSummary `json:"litmus,omitempty"`

	// Races are the campaign-wide deduplicated benchmark races with the
	// reproduction triple of the earliest execution per key.
	Races []harness.RaceSummary `json:"races"`
	// UnexpectedRaces are races reported inside litmus programs, which only
	// perform atomic accesses: any entry is a race-detector soundness bug.
	UnexpectedRaces []harness.RaceSummary `json:"unexpected_races,omitempty"`
}

// ObsSummary is the campaign-level event-stream accounting (schema v4).
// EventsDropped must be zero for a healthy run: a nonzero value means the
// bounded event channel overflowed and the JSONL stream is incomplete, and
// Compare treats it as a regression.
type ObsSummary struct {
	EventsEmitted uint64 `json:"events_emitted"`
	EventsDropped uint64 `json:"events_dropped"`
}

// Summary is the versioned campaign artifact serialized to
// BENCH_campaign.json.
type Summary struct {
	Schema        string    `json:"schema"`
	SchemaVersion int       `json:"schema_version"`
	Spec          SpecInfo  `json:"spec"`
	WallNS        int64     `json:"wall_ns"`
	GC            GCSummary `json:"gc"`
	// Obs carries the event-stream accounting (schema v4).
	Obs *ObsSummary `json:"obs,omitempty"`
	// Provenance identifies the build that produced the artifact (schema v5).
	Provenance *Provenance   `json:"provenance,omitempty"`
	Tools      []ToolSummary `json:"tools"`
	// Shard marks a partial artifact from a sharded run (schema v6): this is
	// shard Index of Count, cut by the spec with the given digest. Absent on
	// whole-campaign artifacts, including merged ones.
	Shard *ShardInfo `json:"shard,omitempty"`
	// CheckpointErrors counts checkpoint writes that failed (schema v6).
	// The campaign still completes — a failed checkpoint costs the resume
	// point, not the results — but the loss is never silent.
	CheckpointErrors int `json:"checkpoint_errors,omitempty"`
}

// cellAcc accumulates the fragments of one cell.
type cellAcc struct {
	execs     int
	detected  int
	ops       capi.OpStats
	elapsed   time.Duration
	races     map[string]raceHit
	outcomes  map[string]int
	forbidden map[string]int
	weak      map[string]int
	findings  map[findingID]findingHit

	checked    int
	skipped    int
	violations int
	vioSamples []string
	recorded   int
	recordErrs int
	allocBytes uint64
	allocObjs  uint64

	failed   int
	failures []execFailure

	captures    int
	captureErrs int

	guidedExecs    int
	prefixDepth    int64
	prefixConsumed int64
	divergences    int
}

func newCellAcc() *cellAcc {
	return &cellAcc{
		races:     map[string]raceHit{},
		outcomes:  map[string]int{},
		forbidden: map[string]int{},
		weak:      map[string]int{},
		findings:  map[findingID]findingHit{},
	}
}

func (a *cellAcc) merge(f fragment) {
	a.execs += f.execs
	a.detected += f.detected
	a.ops.Add(f.ops)
	a.elapsed += f.elapsed
	mergeRaces(a.races, f.races)
	for out, n := range f.outcomes {
		a.outcomes[out] += n
	}
	for out, first := range f.forbidden {
		if cur, seen := a.forbidden[out]; !seen || first < cur {
			a.forbidden[out] = first
		}
	}
	for out, n := range f.weak {
		a.weak[out] += n
	}
	// Findings fold like races: counts sum, the earliest run wins the
	// description (fragments merge in execution-index order).
	for id, hit := range f.findings {
		if cur, seen := a.findings[id]; seen {
			if hit.run < cur.run {
				cur.desc, cur.run = hit.desc, hit.run
			}
			cur.count += hit.count
			a.findings[id] = cur
		} else {
			a.findings[id] = hit
		}
	}
	a.checked += f.checked
	a.skipped += f.skipped
	a.violations += f.violations
	for _, s := range f.vioSamples {
		if len(a.vioSamples) >= maxViolationSamples {
			break
		}
		a.vioSamples = append(a.vioSamples, s)
	}
	a.recorded += f.recorded
	a.recordErrs += f.recordErrs
	a.allocBytes += f.allocBytes
	a.allocObjs += f.allocObjs
	a.failed += f.failed
	// Keep the earliest-run failure samples; fragments merge in job order
	// (execution-index order within a cell), so insertion order is already
	// by run, independent of worker scheduling.
	for _, fl := range f.failures {
		if len(a.failures) >= maxViolationSamples {
			break
		}
		a.failures = append(a.failures, fl)
	}
	a.guidedExecs += f.guidedExecs
	a.prefixDepth += f.prefixDepth
	a.prefixConsumed += f.prefixConsumed
	a.divergences += f.divergences
	a.captures += len(f.captures)
	for i := range f.captures {
		if f.captures[i].Err != "" {
			a.captureErrs++
		}
	}
}

// specInfo echoes the campaign parameters into their summary form; the same
// echo opens the structured event stream (campaign_start) and heads the
// serialized artifact.
func specInfo(spec Spec) SpecInfo {
	info := SpecInfo{
		Runs: spec.Runs, SeedBase: spec.SeedBase,
		Workers: spec.Workers, ShardSize: spec.ShardSize,
		Benchmarks: []string{}, Litmus: []string{},
		Policy:    spec.Policy.Name(),
		RecordDir: spec.RecordDir, RecordAll: spec.RecordAll,
		Validate:   spec.ValidateAxioms,
		CaptureDir: spec.CaptureDir, CaptureSlowNS: spec.CaptureSlowNS,
		Analyzers: spec.Analyzers,
		RNG:       rng.Canonical(spec.RNG),
	}
	if spec.Guides != nil {
		info.GuideDir = spec.Guides.Dir()
		info.GuideTraces = spec.Guides.Len()
	}
	for _, t := range spec.Tools {
		info.Tools = append(info.Tools, t.Name)
	}
	for _, b := range spec.Benchmarks {
		info.Benchmarks = append(info.Benchmarks, b.Name)
	}
	for _, l := range spec.Litmus {
		info.Litmus = append(info.Litmus, l.Name)
	}
	return info
}

// aggregate folds the shard fragments into the Summary. Every merge is
// order-independent (sums, histogram unions, min-by-index winners), so the
// result does not depend on how jobs were scheduled across workers. budgets
// carries the per-cell budget accounting of an adaptive policy (nil under
// uniform).
func aggregate(spec Spec, jobs []job, frags []fragment, budgets map[cellKey]*BudgetSummary, wall time.Duration, gc GCSummary) *Summary {
	benchAcc := make([][]*cellAcc, len(spec.Tools))
	litAcc := make([][]*cellAcc, len(spec.Tools))
	for t := range spec.Tools {
		benchAcc[t] = make([]*cellAcc, len(spec.Benchmarks))
		for b := range benchAcc[t] {
			benchAcc[t][b] = newCellAcc()
		}
		litAcc[t] = make([]*cellAcc, len(spec.Litmus))
		for l := range litAcc[t] {
			litAcc[t][l] = newCellAcc()
		}
	}
	for i, j := range jobs {
		switch j.kind {
		case jobBench:
			benchAcc[j.tool][j.cell].merge(frags[i])
		case jobLitmus:
			litAcc[j.tool][j.cell].merge(frags[i])
		}
	}

	sum := &Summary{Schema: SchemaName, SchemaVersion: SchemaVersion,
		Spec: specInfo(spec), WallNS: int64(wall), GC: gc,
		Provenance: BuildProvenance()}
	for t, toolSpec := range spec.Tools {
		ts := ToolSummary{Tool: toolSpec.Name, Races: []harness.RaceSummary{}}
		var val ValidationSummary
		// Campaign-wide race dedup: first winner by (cell order, run index).
		type toolRace struct {
			summary harness.RaceSummary
			cell    int
			run     int
		}
		// addRaces folds a cell's deduplicated races into dst, keeping the
		// first winner by (cell order, run index) per key — a total order,
		// so the outcome is independent of merge order.
		addRaces := func(dst map[string]toolRace, cellIdx int, program string, inLitmus bool, races map[string]raceHit) {
			for key, hit := range races {
				repro := harness.Repro{Tool: toolSpec.Name, Program: program,
					Seed: spec.SeedBase + int64(hit.run), Litmus: inLitmus,
					Flags: toolSpec.ReproFlags}
				cand := toolRace{summary: harness.RaceSummary{Key: key,
					Description: hit.desc, Repro: repro},
					cell: cellIdx, run: hit.run}
				if cur, seen := dst[key]; !seen ||
					cand.cell < cur.cell || (cand.cell == cur.cell && cand.run < cur.run) {
					dst[key] = cand
				}
			}
		}
		toolRaces := map[string]toolRace{}

		// addFindings renders a cell's deduplicated analyzer findings. The
		// finding identity includes the cell (unlike races, which dedup
		// campaign-wide), so cells contribute disjoint entries; cellIdx ranks
		// benchmarks before litmus cells for the final sort.
		type toolFinding struct {
			summary FindingSummary
			cell    int
		}
		var toolFindings []toolFinding
		addFindings := func(cellIdx int, program string, inLitmus bool, findings map[findingID]findingHit) {
			for _, id := range sortedFindingIDs(findings) {
				hit := findings[id]
				flags := strings.TrimSpace(toolSpec.ReproFlags + " -analyzers " + id.analyzer)
				toolFindings = append(toolFindings, toolFinding{
					summary: FindingSummary{Analyzer: id.analyzer, Key: id.key,
						Description: hit.desc, Program: program, Litmus: inLitmus,
						Count: hit.count,
						Repro: harness.Repro{Tool: toolSpec.Name, Program: program,
							Seed: spec.SeedBase + int64(hit.run), Litmus: inLitmus,
							Flags: flags}},
					cell: cellIdx})
			}
		}

		// addFailures folds a cell's sampled engine failures into the tool
		// summary with their repro triples (cells visited in matrix order,
		// samples already in run order, so the result is deterministic).
		addFailures := func(program string, inLitmus bool, acc *cellAcc) {
			ts.EngineFailures += acc.failed
			for _, fl := range acc.failures {
				if len(ts.FailureSamples) >= maxViolationSamples {
					break
				}
				ts.FailureSamples = append(ts.FailureSamples, EngineFailure{
					Error: fl.err,
					Repro: harness.Repro{Tool: toolSpec.Name, Program: program,
						Seed: spec.SeedBase + int64(fl.run), Litmus: inLitmus,
						Flags: toolSpec.ReproFlags},
				})
			}
		}

		for b, bench := range spec.Benchmarks {
			acc := benchAcc[t][b]
			meanTime := time.Duration(0)
			if acc.execs > 0 {
				meanTime = acc.elapsed / time.Duration(acc.execs)
			}
			cell := CellSummary{
				Program: bench.Name,
				Detection: harness.Detection{
					Runs: acc.execs, Detected: acc.detected,
					Time: meanTime, Ops: acc.ops,
				}.Summary(),
				RaceKeys: harness.SortedKeys(acc.races),
				Budget:   budgets[cellKey{kind: jobBench, tool: t, cell: b}],
				Guided:   guideStatsOf(spec, toolSpec.Name, bench.Name, acc),
				Failed:   acc.failed,
			}
			if spec.Telemetry != nil {
				cell.Timing = spec.Telemetry.timingSnapshot(jobBench, t, b)
				cell.Phases = spec.Telemetry.phaseSnapshots(jobBench, t, b)
			}
			ts.Benchmarks = append(ts.Benchmarks, cell)
			addRaces(toolRaces, b, bench.Name, false, acc.races)
			addFindings(b, bench.Name, false, acc.findings)
			addFailures(bench.Name, false, acc)
			ts.Execs += acc.execs
			ts.WorkNS += int64(acc.elapsed)
			ts.AtomicOps += acc.ops.AtomicOps
			ts.NormalOps += acc.ops.NormalOps
			addToolAcc(&ts, &val, acc)
		}
		for _, key := range harness.SortedKeys(toolRaces) {
			ts.Races = append(ts.Races, toolRaces[key].summary)
		}

		unexpected := map[string]toolRace{}
		for l, test := range spec.Litmus {
			acc := litAcc[t][l]
			ls := LitmusSummary{
				Test: test.Name, Execs: acc.execs,
				Outcomes:    acc.outcomes,
				WeakSeen:    harness.SortedKeys(acc.weak),
				WeakDefined: len(test.Weak),
				Budget:      budgets[cellKey{kind: jobLitmus, tool: t, cell: l}],
				Guided:      guideStatsOf(spec, toolSpec.Name, test.Name, acc),
				Failed:      acc.failed,
			}
			if spec.Telemetry != nil {
				ls.Timing = spec.Telemetry.timingSnapshot(jobLitmus, t, l)
				ls.Phases = spec.Telemetry.phaseSnapshots(jobLitmus, t, l)
			}
			for _, out := range harness.SortedKeys(acc.forbidden) {
				ls.ForbiddenSeen = append(ls.ForbiddenSeen, ForbiddenOutcome{
					Test: test.Name, Outcome: out, Count: acc.outcomes[out],
					Repro: harness.Repro{Tool: toolSpec.Name, Program: test.Name,
						Seed: spec.SeedBase + int64(acc.forbidden[out]), Litmus: true,
						Flags: toolSpec.ReproFlags},
				})
			}
			ts.Litmus = append(ts.Litmus, ls)
			addRaces(unexpected, l, test.Name, true, acc.races)
			addFindings(len(spec.Benchmarks)+l, test.Name, true, acc.findings)
			addFailures(test.Name, true, acc)
			ts.Execs += acc.execs
			ts.WorkNS += int64(acc.elapsed)
			ts.AtomicOps += acc.ops.AtomicOps
			ts.NormalOps += acc.ops.NormalOps
			addToolAcc(&ts, &val, acc)
		}
		for _, key := range harness.SortedKeys(unexpected) {
			ts.UnexpectedRaces = append(ts.UnexpectedRaces, unexpected[key].summary)
		}
		// Findings sort by (analyzer, cell order, key) — a total order
		// independent of worker scheduling; the per-analyzer rollups follow
		// the spec's request order so every requested analyzer appears.
		sort.Slice(toolFindings, func(i, j int) bool {
			a, b := toolFindings[i], toolFindings[j]
			if a.summary.Analyzer != b.summary.Analyzer {
				return a.summary.Analyzer < b.summary.Analyzer
			}
			if a.cell != b.cell {
				return a.cell < b.cell
			}
			return a.summary.Key < b.summary.Key
		})
		for _, tf := range toolFindings {
			ts.Findings = append(ts.Findings, tf.summary)
		}
		for _, name := range spec.Analyzers {
			as := AnalyzerSummary{Analyzer: name}
			for _, f := range ts.Findings {
				if f.Analyzer == name {
					as.Distinct++
					as.Count += f.Count
				}
			}
			ts.Analyzers = append(ts.Analyzers, as)
		}
		ts.ExecsPerSec = harness.ExecsPerSec(ts.Execs, time.Duration(ts.WorkNS))
		if ts.Execs > 0 {
			ts.Perf.BytesPerExec = float64(ts.Perf.AllocBytes) / float64(ts.Execs)
		}
		if spec.ValidateAxioms {
			ts.Validation = &val
		}
		sum.Tools = append(sum.Tools, ts)
	}
	return sum
}

// addToolAcc folds one cell's trace/validation/allocation aggregates into
// the tool summary.
func addToolAcc(ts *ToolSummary, val *ValidationSummary, acc *cellAcc) {
	ts.Perf.AllocBytes += acc.allocBytes
	ts.Perf.AllocObjects += acc.allocObjs
	ts.RecordedTraces += acc.recorded
	ts.RecordErrors += acc.recordErrs
	ts.Captures += acc.captures
	ts.CaptureErrors += acc.captureErrs
	val.Checked += acc.checked
	val.Skipped += acc.skipped
	val.Violations += acc.violations
	for _, s := range acc.vioSamples {
		if len(val.Samples) >= maxViolationSamples {
			break
		}
		val.Samples = append(val.Samples, s)
	}
}

// sortedFindingIDs orders a findings map by (analyzer, key), the iteration
// order every consumer (aggregate, checkpoint, events) uses.
func sortedFindingIDs(m map[findingID]findingHit) []findingID {
	ids := make([]findingID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].analyzer != ids[j].analyzer {
			return ids[i].analyzer < ids[j].analyzer
		}
		return ids[i].key < ids[j].key
	})
	return ids
}

// guideStatsOf renders a cell's guided-exploration statistics, or nil when
// the cell did not run guided.
func guideStatsOf(spec Spec, tool, program string, acc *cellAcc) *GuideStats {
	traces := spec.Guides.For(tool, program)
	if len(traces) == 0 || acc.guidedExecs == 0 {
		return nil
	}
	n := float64(acc.guidedExecs)
	return &GuideStats{
		Traces:          len(traces),
		GuidedExecs:     acc.guidedExecs,
		MeanPrefixDepth: float64(acc.prefixDepth) / n,
		MeanConsumed:    float64(acc.prefixConsumed) / n,
		Divergences:     acc.divergences,
		PrefixDepthSum:  acc.prefixDepth,
		ConsumedSum:     acc.prefixConsumed,
	}
}

// Forbidden returns every forbidden litmus outcome observed in the
// campaign, across all tools.
func (s *Summary) Forbidden() []ForbiddenOutcome {
	var all []ForbiddenOutcome
	for _, ts := range s.Tools {
		for _, ls := range ts.Litmus {
			all = append(all, ls.ForbiddenSeen...)
		}
	}
	return all
}

// UnexpectedRaces returns every race reported inside a litmus program,
// across all tools.
func (s *Summary) UnexpectedRaces() []harness.RaceSummary {
	var all []harness.RaceSummary
	for _, ts := range s.Tools {
		all = append(all, ts.UnexpectedRaces...)
	}
	return all
}

// RecordErrors returns the total number of executions whose trace could not
// be persisted, across all tools.
func (s *Summary) RecordErrors() int {
	n := 0
	for _, ts := range s.Tools {
		n += ts.RecordErrors
	}
	return n
}

// AxiomViolations returns the total number of axiomatic-model violations
// found by a -validate campaign, across all tools.
func (s *Summary) AxiomViolations() int {
	n := 0
	for _, ts := range s.Tools {
		if ts.Validation != nil {
			n += ts.Validation.Violations
		}
	}
	return n
}

// FindingCount returns the total number of distinct analyzer findings across
// all tools (schema v7).
func (s *Summary) FindingCount() int {
	n := 0
	for _, ts := range s.Tools {
		n += len(ts.Findings)
	}
	return n
}

// EngineFailures returns the total number of executions the tools themselves
// aborted (infeasible memory-model states), across all tools.
func (s *Summary) EngineFailures() int {
	n := 0
	for _, ts := range s.Tools {
		n += ts.EngineFailures
	}
	return n
}

// Failed reports whether the campaign found a soundness problem: a forbidden
// litmus outcome, a race in a race-free litmus program, an execution that
// violated the axiomatic model, or an execution the tool itself aborted with
// an infeasible memory-model state.
func (s *Summary) Failed() bool {
	return len(s.Forbidden()) > 0 || len(s.UnexpectedRaces()) > 0 ||
		s.AxiomViolations() > 0 || s.EngineFailures() > 0
}

// DetectionTable renders the Table 2-style detection-rate matrix: one row
// per benchmark, one column per tool.
func (s *Summary) DetectionTable() *harness.Table {
	tb := &harness.Table{Header: []string{"benchmark"}}
	for _, ts := range s.Tools {
		tb.Header = append(tb.Header, ts.Tool)
	}
	for b, name := range s.Spec.Benchmarks {
		row := []string{name}
		for _, ts := range s.Tools {
			d := ts.Benchmarks[b].Detection
			row = append(row, fmt.Sprintf("%5.1f%% (%d races)", d.RatePct, len(ts.Benchmarks[b].RaceKeys)))
		}
		tb.AddRow(row...)
	}
	return tb
}

// LitmusTable renders the litmus matrix: outcome diversity, weak-outcome
// coverage, and forbidden-outcome count per (test, tool).
func (s *Summary) LitmusTable() *harness.Table {
	tb := &harness.Table{Header: []string{"litmus"}}
	for _, ts := range s.Tools {
		tb.Header = append(tb.Header, ts.Tool)
	}
	for l, name := range s.Spec.Litmus {
		row := []string{name}
		for _, ts := range s.Tools {
			ls := ts.Litmus[l]
			cell := fmt.Sprintf("%d outcomes, weak %d/%d", len(ls.Outcomes), len(ls.WeakSeen), ls.WeakDefined)
			if n := len(ls.ForbiddenSeen); n > 0 {
				cell += fmt.Sprintf(", FORBIDDEN×%d", n)
			}
			row = append(row, cell)
		}
		tb.AddRow(row...)
	}
	return tb
}

// ThroughputTable renders per-tool execution throughput and allocation
// pressure.
func (s *Summary) ThroughputTable() *harness.Table {
	tb := &harness.Table{Header: []string{"tool", "execs", "work", "execs/sec", "atomic ops", "normal ops", "alloc/exec"}}
	for _, ts := range s.Tools {
		tb.AddRow(ts.Tool,
			fmt.Sprintf("%d", ts.Execs),
			harness.FmtDuration(time.Duration(ts.WorkNS)),
			fmt.Sprintf("%.0f", ts.ExecsPerSec),
			harness.FmtOps(ts.AtomicOps),
			harness.FmtOps(ts.NormalOps),
			harness.FmtBytes(uint64(ts.Perf.BytesPerExec)))
	}
	return tb
}

// BudgetReport summarizes an adaptive campaign's budget accounting: total
// executions run vs. the uniform plan, and how many cells converged. ok is
// false when the campaign ran under the uniform policy (no budget data).
func (s *Summary) BudgetReport() (used, planned, converged, cells int, ok bool) {
	each := func(b *BudgetSummary) {
		if b == nil {
			return
		}
		ok = true
		cells++
		used += b.Used
		planned += b.Planned
		if b.Converged {
			converged++
		}
	}
	for _, ts := range s.Tools {
		for _, cell := range ts.Benchmarks {
			each(cell.Budget)
		}
		for _, ls := range ts.Litmus {
			each(ls.Budget)
		}
	}
	return used, planned, converged, cells, ok
}

// String renders the human-readable campaign report.
func (s *Summary) String() string {
	out := fmt.Sprintf("campaign: %d tool(s) × (%d benchmark(s) + %d litmus test(s)) × %d runs, %d workers, seed base %d\nwall clock: %s\n",
		len(s.Spec.Tools), len(s.Spec.Benchmarks), len(s.Spec.Litmus),
		s.Spec.Runs, s.Spec.Workers, s.Spec.SeedBase,
		harness.FmtDuration(time.Duration(s.WallNS)))
	if p := s.Spec.Policy; p != "" && p != "uniform" {
		out += fmt.Sprintf("policy: %s", p)
		if used, planned, converged, cells, ok := s.BudgetReport(); ok && planned > 0 {
			out += fmt.Sprintf(" — %d/%d executions (%.0f%% of uniform), %d/%d cells converged",
				used, planned, 100*float64(used)/float64(planned), converged, cells)
		}
		out += "\n"
	}
	if s.Spec.GuideDir != "" {
		out += fmt.Sprintf("guided by %d trace(s) from %s\n", s.Spec.GuideTraces, s.Spec.GuideDir)
	}
	out += "\n" + s.ThroughputTable().String()
	if len(s.Spec.Benchmarks) > 0 {
		out += "\n" + s.DetectionTable().String()
	}
	if len(s.Spec.Litmus) > 0 {
		out += "\n" + s.LitmusTable().String()
	}
	for _, ts := range s.Tools {
		if len(ts.Races) > 0 {
			out += fmt.Sprintf("\n%s: %d distinct race(s)\n", ts.Tool, len(ts.Races))
			for _, r := range ts.Races {
				out += fmt.Sprintf("  %s\n    repro: %s\n", r.Description, r.Repro.Command())
			}
		}
	}
	for _, ts := range s.Tools {
		if v := ts.Validation; v != nil {
			out += fmt.Sprintf("\n%s: axiomatic validation: %d checked, %d skipped, %d violation(s)\n",
				ts.Tool, v.Checked, v.Skipped, v.Violations)
			for _, sample := range v.Samples {
				out += "  VIOLATION " + sample + "\n"
			}
		}
		if ts.RecordedTraces > 0 {
			out += fmt.Sprintf("\n%s: recorded %d trace(s) to %s\n", ts.Tool, ts.RecordedTraces, s.Spec.RecordDir)
		}
		if ts.RecordErrors > 0 {
			out += fmt.Sprintf("\n%s: WARNING: failed to record %d trace(s) to %s\n", ts.Tool, ts.RecordErrors, s.Spec.RecordDir)
		}
		if ts.Captures > 0 {
			out += fmt.Sprintf("\n%s: flight recorder captured %d execution(s) to %s\n", ts.Tool, ts.Captures, s.Spec.CaptureDir)
		}
		if ts.CaptureErrors > 0 {
			out += fmt.Sprintf("\n%s: WARNING: %d capture(s) failed to produce a trace (see %s)\n",
				ts.Tool, ts.CaptureErrors, s.Spec.CaptureDir)
		}
		if ts.EngineFailures > 0 {
			out += fmt.Sprintf("\n%s: ENGINE FAILURE: %d execution(s) aborted with an infeasible model state\n",
				ts.Tool, ts.EngineFailures)
			for _, f := range ts.FailureSamples {
				out += fmt.Sprintf("  %s\n    repro: %s\n", f.Error, f.Repro.Command())
			}
		}
	}
	for _, ts := range s.Tools {
		if len(ts.Analyzers) == 0 {
			continue
		}
		for _, as := range ts.Analyzers {
			out += fmt.Sprintf("\n%s: analyzer %s: %d distinct finding(s), %d hit(s)\n",
				ts.Tool, as.Analyzer, as.Distinct, as.Count)
			for _, f := range ts.Findings {
				if f.Analyzer != as.Analyzer {
					continue
				}
				out += fmt.Sprintf("  [%s] %s\n    repro: %s\n", f.Program, f.Description, f.Repro.Command())
			}
		}
	}
	for _, f := range s.Forbidden() {
		out += fmt.Sprintf("\nFORBIDDEN OUTCOME %s=%q ×%d\n  repro: %s\n",
			f.Test, f.Outcome, f.Count, f.Repro.Command())
	}
	for _, r := range s.UnexpectedRaces() {
		out += fmt.Sprintf("\nUNEXPECTED RACE in litmus program: %s\n  repro: %s\n",
			r.Description, r.Repro.Command())
	}
	return out
}

// WriteJSON writes the indented artifact file (BENCH_campaign.json)
// atomically: readers never observe a torn summary, even if the writer is
// killed mid-write.
func (s *Summary) WriteJSON(path string) error {
	return safeio.WriteJSONAtomic(path, s, 0o644)
}

// Canonical returns a deep copy with every wall-clock-derived measurement
// zeroed, leaving only model outcomes. This is the form in which the
// package's byte-identity guarantees hold: workers=1 vs workers=K, merged
// shard partials vs the single-machine run, and a SIGKILL-then-resume run vs
// an uninterrupted one all marshal to identical bytes after Canonical.
// Zeroed: wall clock, GC and allocation counters, per-cell mean times and
// timing/phase histograms, per-tool work time and throughput, event-stream
// accounting, and the run-shape echoes (Workers, artifact directories) plus
// the shard header, checkpoint accounting, and build provenance (`go run`
// and `go build` of the same tree stamp different VCS metadata, and the
// guarantee must hold across binaries; skew is surfaced by Compare and
// refused by MergeSummaries instead). Kept: everything the model produced —
// detections, races, outcomes, budgets, guide sums, validation.
func (s *Summary) Canonical() *Summary {
	data, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("campaign: canonicalize: %v", err))
	}
	var c Summary
	if err := json.Unmarshal(data, &c); err != nil {
		panic(fmt.Sprintf("campaign: canonicalize: %v", err))
	}
	c.WallNS = 0
	c.GC = GCSummary{}
	c.Obs = nil
	c.Shard = nil
	c.CheckpointErrors = 0
	c.Provenance = nil
	c.Spec.Workers = 0
	c.Spec.RecordDir = ""
	c.Spec.CaptureDir = ""
	c.Spec.GuideDir = ""
	for t := range c.Tools {
		ts := &c.Tools[t]
		ts.WorkNS = 0
		ts.ExecsPerSec = 0
		ts.Perf = ToolPerf{}
		for b := range ts.Benchmarks {
			cell := &ts.Benchmarks[b]
			cell.Detection.MeanTimeNS = 0
			cell.Timing = nil
			cell.Phases = nil
		}
		for l := range ts.Litmus {
			ls := &ts.Litmus[l]
			ls.Timing = nil
			ls.Phases = nil
		}
	}
	return &c
}
