package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"c11tester/internal/capi"
	"c11tester/internal/harness"
	"c11tester/internal/litmus"
	"c11tester/internal/structures"
	"c11tester/internal/trace"
)

func mustTool(t *testing.T, name string, opts ToolOptions) ToolSpec {
	t.Helper()
	spec, err := StandardTool(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func mustLitmus(t *testing.T, name string) *litmus.Test {
	t.Helper()
	test, ok := litmus.ByName(name)
	if !ok {
		t.Fatalf("unknown litmus test %q", name)
	}
	return test
}

func benchSpec(t *testing.T, name string) BenchmarkSpec {
	t.Helper()
	b, err := structures.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sig := harness.SignalRace
	if structures.IsInjected(name) {
		sig = harness.SignalAssert
	}
	return BenchmarkSpec{Name: b.Name, New: b.New, Signal: sig}
}

// canonicalize strips the fields that legitimately vary run to run — wall
// clock, per-shard work time, allocation/GC measurements, and everything
// derived from them — leaving exactly the aggregates the determinism
// guarantee covers.
func canonicalize(s *Summary) *Summary {
	c := *s
	c.WallNS = 0
	c.Spec.Workers = 0
	c.Spec.ShardSize = 0
	c.GC = GCSummary{}
	// Event counts are deterministic only up to ordering-independent totals;
	// keep them, but drop the pointer identity.
	if s.Obs != nil {
		obsCopy := *s.Obs
		c.Obs = &obsCopy
	}
	c.Tools = append([]ToolSummary(nil), s.Tools...)
	for i := range c.Tools {
		ts := &c.Tools[i]
		ts.WorkNS = 0
		ts.ExecsPerSec = 0
		ts.Perf = ToolPerf{}
		ts.Benchmarks = append([]CellSummary(nil), ts.Benchmarks...)
		for j := range ts.Benchmarks {
			ts.Benchmarks[j].Detection.MeanTimeNS = 0
			// Timing and phase histograms are wall-clock measurements
			// (schema v4/v5).
			ts.Benchmarks[j].Timing = nil
			ts.Benchmarks[j].Phases = nil
		}
		ts.Litmus = append([]LitmusSummary(nil), ts.Litmus...)
		for j := range ts.Litmus {
			ts.Litmus[j].Timing = nil
			ts.Litmus[j].Phases = nil
		}
	}
	return &c
}

// TestDeterminismUnderSharding is the acceptance-criterion test: the same
// (tools, programs, runs, seedBase) campaign must yield identical
// aggregated race keys, detection counts, reproduction seeds, and litmus
// outcome histograms whether it runs on one worker or four (and regardless
// of shard size).
func TestDeterminismUnderSharding(t *testing.T) {
	build := func(workers, shardSize int) Spec {
		return Spec{
			Tools: []ToolSpec{
				mustTool(t, "c11tester", ToolOptions{}),
				mustTool(t, "tsan11", ToolOptions{}),
			},
			Benchmarks: []BenchmarkSpec{
				benchSpec(t, "ms-queue"),
				benchSpec(t, "linuxrwlocks"),
				benchSpec(t, "seqlock"),
			},
			Litmus: []*litmus.Test{
				mustLitmus(t, "MP+rlx"),
				mustLitmus(t, "SB+sc"),
				mustLitmus(t, "CoRR"),
			},
			Runs:     60,
			SeedBase: 1000,
			Workers:  workers,
			// Shard sizes that do not divide Runs exercise the ragged tail.
			ShardSize: shardSize,
		}
	}

	serial := canonicalize(Run(build(1, 60)))
	sharded := canonicalize(Run(build(4, 7)))

	sj, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Fatalf("campaign aggregates differ between workers=1 and workers=4:\nserial:  %s\nsharded: %s", sj, pj)
	}

	// Sanity on the content itself, not just the equality: ms-queue's
	// unconditional race must be detected in every execution by every tool.
	for _, ts := range serial.Tools {
		msq := ts.Benchmarks[0]
		if msq.Program != "ms-queue" || msq.Detection.Detected != msq.Detection.Runs {
			t.Errorf("%s: ms-queue detection = %d/%d, want 100%%",
				ts.Tool, msq.Detection.Detected, msq.Detection.Runs)
		}
		if len(ts.Races) == 0 {
			t.Errorf("%s: no deduplicated races collected", ts.Tool)
		}
		for _, ls := range ts.Litmus {
			if len(ls.ForbiddenSeen) > 0 {
				t.Errorf("%s: forbidden outcome in %s: %+v", ts.Tool, ls.Test, ls.ForbiddenSeen)
			}
		}
	}
}

// TestReproSeedReplays closes the reproduction loop: take a race's repro
// triple out of a campaign summary, execute that single (tool, program,
// seed), and the race with the same key must appear again.
func TestReproSeedReplays(t *testing.T) {
	spec := Spec{
		Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
		Runs:       10,
		SeedBase:   42,
		Workers:    2,
		ShardSize:  3,
	}
	sum := Run(spec)
	races := sum.Tools[0].Races
	if len(races) == 0 {
		t.Fatal("no races to replay")
	}
	for _, r := range races {
		tool := spec.Tools[0].New()
		res := tool.Execute(spec.Benchmarks[0].New(), r.Repro.Seed)
		found := false
		for _, rep := range res.Races {
			if rep.Key() == r.Key {
				found = true
			}
		}
		if !found {
			t.Errorf("replaying %v did not reproduce race %q", r.Repro, r.Key)
		}
	}
}

// TestRecordedCampaignReplaysDeterministically is the tentpole acceptance
// test: a sharded (workers=4) recording campaign persists a trace for every
// execution, every trace is then rebuilt from its serialized form alone and
// replayed serially, and each replay must reproduce byte-identical race
// keys, litmus outcomes, final values, and event payloads. The campaign also
// axiom-checks every execution, which must produce zero violations.
func TestRecordedCampaignReplaysDeterministically(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{
		Tools: []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks: []BenchmarkSpec{
			benchSpec(t, "ms-queue"),
			benchSpec(t, "seqlock"),
		},
		Litmus:    []*litmus.Test{mustLitmus(t, "MP+rlx"), mustLitmus(t, "CoRR")},
		Runs:      8,
		SeedBase:  300,
		Workers:   4,
		ShardSize: 3,
		RecordDir: dir, RecordAll: true,
		ValidateAxioms: true,
	}
	sum := Run(spec)
	if v := sum.AxiomViolations(); v != 0 {
		t.Fatalf("axiomatic validation found %d violation(s): %+v", v, sum.Tools[0].Validation)
	}
	val := sum.Tools[0].Validation
	if val == nil || val.Checked != 32 {
		t.Fatalf("validation summary = %+v, want 32 checked executions", val)
	}
	if sum.Tools[0].RecordedTraces != 32 {
		t.Fatalf("recorded %d traces, want 32 (record-all over 4 cells × 8 runs)", sum.Tools[0].RecordedTraces)
	}

	files, err := filepath.Glob(filepath.Join(dir, "trace_*.json"))
	if err != nil || len(files) != 32 {
		t.Fatalf("found %d trace files (err=%v), want 32", len(files), err)
	}
	litmusTraces := 0
	for _, f := range files {
		tr, err := trace.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if tr.Litmus {
			litmusTraces++
		}
		subj, err := TraceSubject(tr)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		rr, err := trace.Replay(tr, subj)
		if err != nil {
			t.Fatalf("%s: replay: %v", f, err)
		}
		if err := tr.Verify(rr); err != nil {
			t.Errorf("%s: replay not identical: %v", f, err)
		}
		if vs, err := tr.Validate(); err != nil || len(vs) > 0 {
			t.Errorf("%s: offline validation: %v %v", f, err, vs)
		}
	}
	if litmusTraces != 16 {
		t.Errorf("replayed %d litmus traces, want 16", litmusTraces)
	}
}

// TestValidationSkipsBaselines pins that -validate counts baseline
// executions as skipped (their commit-order model exposes no total mo)
// while still checking the full-fragment tool.
func TestValidationSkipsBaselines(t *testing.T) {
	sum := Run(Spec{
		Tools: []ToolSpec{
			mustTool(t, "c11tester", ToolOptions{}),
			mustTool(t, "tsan11", ToolOptions{}),
		},
		Litmus:         []*litmus.Test{mustLitmus(t, "SB+sc")},
		Runs:           10,
		SeedBase:       1,
		ValidateAxioms: true,
	})
	full, base := sum.Tools[0].Validation, sum.Tools[1].Validation
	if full == nil || full.Checked != 10 || full.Skipped != 0 || full.Violations != 0 {
		t.Errorf("c11tester validation = %+v, want 10 checked", full)
	}
	if base == nil || base.Checked != 0 || base.Skipped != 10 {
		t.Errorf("tsan11 validation = %+v, want 10 skipped", base)
	}
	if sum.Failed() {
		t.Error("violation-free campaign must not fail")
	}
}

// fixedTool always produces the given result; its litmus outcome is driven
// by the program itself.
type fixedTool struct{ name string }

func (f fixedTool) Name() string { return f.name }
func (f fixedTool) Execute(p capi.Program, seed int64) *capi.Result {
	if p.Run != nil {
		p.Run(nil)
	}
	return &capi.Result{Stats: capi.OpStats{AtomicOps: 1}}
}

// constLitmus builds a litmus test whose every execution yields outcome.
func constLitmus(name, outcome string) *litmus.Test {
	return &litmus.Test{
		Name: name,
		Make: func(out *string) capi.Program {
			return capi.Program{Name: name, Run: func(capi.Env) { *out = outcome }}
		},
	}
}

func TestForbiddenOutcomeChecking(t *testing.T) {
	bad := constLitmus("always-bad", "bad")
	bad.Forbidden = map[string]bool{"bad": true}

	spec := Spec{
		Tools:     []ToolSpec{{Name: "stub", New: func() capi.Tool { return fixedTool{"stub"} }}},
		Litmus:    []*litmus.Test{bad},
		Runs:      9,
		SeedBase:  5,
		Workers:   3,
		ShardSize: 2,
	}
	sum := Run(spec)
	if !sum.Failed() {
		t.Fatal("campaign with an always-forbidden outcome must fail")
	}
	forb := sum.Forbidden()
	if len(forb) != 1 {
		t.Fatalf("Forbidden() = %+v, want exactly one entry", forb)
	}
	f := forb[0]
	if f.Outcome != "bad" || f.Count != 9 {
		t.Errorf("forbidden outcome = %+v, want outcome 'bad' ×9", f)
	}
	// The repro must point at the earliest execution: seed = SeedBase+0.
	if f.Repro.Seed != 5 || f.Repro.Tool != "stub" || f.Repro.Program != "always-bad" {
		t.Errorf("forbidden repro = %+v, want stub/always-bad seed=5", f.Repro)
	}
}

func TestBaselineForbiddenOnlyAppliesToBaselines(t *testing.T) {
	mk := func(baseline bool) *Summary {
		weak := constLitmus("fragment-gap", "21")
		weak.Weak = map[string]bool{"21": true}
		weak.BaselineForbidden = map[string]bool{"21": true}
		return Run(Spec{
			Tools:  []ToolSpec{{Name: "stub", Baseline: baseline, New: func() capi.Tool { return fixedTool{"stub"} }}},
			Litmus: []*litmus.Test{weak},
			Runs:   4,
		})
	}
	if sum := mk(false); sum.Failed() {
		t.Error("BaselineForbidden outcome must be allowed for the full-fragment tool")
	} else if ws := sum.Tools[0].Litmus[0].WeakSeen; len(ws) != 1 || ws[0] != "21" {
		t.Errorf("weak coverage not recorded: %v", ws)
	}
	if sum := mk(true); !sum.Failed() {
		t.Error("BaselineForbidden outcome must fail a baseline tool")
	}
}

func TestUnexpectedLitmusRace(t *testing.T) {
	// A "litmus test" with a genuinely racy program: two threads store to
	// the same non-atomic location with no synchronization. Any race inside
	// a litmus cell is flagged as a soundness problem.
	racy := &litmus.Test{
		Name: "racy",
		Make: func(out *string) capi.Program {
			return capi.Program{Name: "racy", Run: func(env capi.Env) {
				l := env.NewLoc("shared", 0)
				th := env.Spawn("w", func(env capi.Env) { env.Write(l, 1) })
				env.Write(l, 2)
				env.Join(th)
				*out = "done"
			}}
		},
	}
	sum := Run(Spec{
		Tools:   []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Litmus:  []*litmus.Test{racy},
		Runs:    30,
		Workers: 2,
	})
	if !sum.Failed() {
		t.Fatal("race inside a litmus program must fail the campaign")
	}
	if ur := sum.UnexpectedRaces(); len(ur) == 0 {
		t.Fatal("UnexpectedRaces() empty")
	} else if ur[0].Repro.Program != "racy" {
		t.Errorf("unexpected-race repro = %+v", ur[0].Repro)
	}
}

func TestSummaryJSONArtifact(t *testing.T) {
	spec := Spec{
		Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
		Litmus:     []*litmus.Test{mustLitmus(t, "MP+rlx")},
		Runs:       8,
		SeedBase:   7,
		Workers:    2,
	}
	sum := Run(spec)
	path := filepath.Join(t.TempDir(), "BENCH_campaign.json")
	if err := sum.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("artifact is not well-formed JSON: %v", err)
	}
	if decoded["schema"] != SchemaName || decoded["schema_version"] != float64(SchemaVersion) {
		t.Errorf("schema header = %v/%v", decoded["schema"], decoded["schema_version"])
	}
	if decoded["wall_ns"] == nil {
		t.Error("artifact missing wall_ns")
	}
	var roundTrip Summary
	if err := json.Unmarshal(data, &roundTrip); err != nil {
		t.Fatal(err)
	}
	if roundTrip.Tools[0].ExecsPerSec <= 0 {
		t.Errorf("per-tool execs_per_sec = %v, want > 0", roundTrip.Tools[0].ExecsPerSec)
	}
	if !reflect.DeepEqual(canonicalize(&roundTrip).Spec, canonicalize(sum).Spec) {
		t.Error("spec does not round-trip")
	}
	if got := len(roundTrip.Tools[0].Races); got == 0 {
		t.Error("artifact carries no deduplicated race reports")
	}
	for _, r := range roundTrip.Tools[0].Races {
		if r.Repro.Seed < 7 || r.Repro.Seed >= 7+8 {
			t.Errorf("race repro seed %d outside campaign seed range", r.Repro.Seed)
		}
	}
}

func TestSummaryTables(t *testing.T) {
	sum := Run(Spec{
		Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
		Litmus:     []*litmus.Test{mustLitmus(t, "MP+rlx")},
		Runs:       5,
	})
	text := sum.String()
	for _, want := range []string{"ms-queue", "MP+rlx", "c11tester", "execs/sec"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary text missing %q:\n%s", want, text)
		}
	}
}

// TestReproFlagsCarryToolConfiguration pins that a non-default tool
// configuration is embedded in every repro command the campaign emits, so
// replaying reconstructs the same tool (same execution function of seed).
func TestReproFlagsCarryToolConfiguration(t *testing.T) {
	opts := ToolOptions{Strategy: "quantum", QuantumMean: 50, MaxSteps: 1000}
	ts := mustTool(t, "c11tester", opts)
	if want := "-sched quantum -quantum 50 -max-steps 1000"; ts.ReproFlags != want {
		t.Fatalf("ReproFlags = %q, want %q", ts.ReproFlags, want)
	}
	if ts := mustTool(t, "c11tester", ToolOptions{}); ts.ReproFlags != "" {
		t.Fatalf("default config must emit no extra flags, got %q", ts.ReproFlags)
	}
	if ts := mustTool(t, "tsan11rec", ToolOptions{FaithfulHandoff: true}); ts.ReproFlags != "-faithful-handoff" {
		t.Fatalf("tsan11rec ReproFlags = %q", ts.ReproFlags)
	}

	sum := Run(Spec{
		Tools:      []ToolSpec{mustTool(t, "c11tester", opts)},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
		Runs:       5,
	})
	races := sum.Tools[0].Races
	if len(races) == 0 {
		t.Fatal("no races")
	}
	if races[0].Repro.Flags != ts.ReproFlags {
		t.Errorf("race repro flags = %q, want %q", races[0].Repro.Flags, ts.ReproFlags)
	}
	if !strings.Contains(races[0].Repro.Command(), "-sched quantum") {
		t.Errorf("repro command misses tool config: %q", races[0].Repro.Command())
	}
}

func TestSpecValidate(t *testing.T) {
	tool := ToolSpec{Name: "t", New: func() capi.Tool { return fixedTool{"t"} }}
	bench := BenchmarkSpec{Name: "b"}
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"ok", Spec{Tools: []ToolSpec{tool}, Benchmarks: []BenchmarkSpec{bench}, Runs: 1}, true},
		{"no tools", Spec{Benchmarks: []BenchmarkSpec{bench}, Runs: 1}, false},
		{"no programs", Spec{Tools: []ToolSpec{tool}, Runs: 1}, false},
		{"no runs", Spec{Tools: []ToolSpec{tool}, Benchmarks: []BenchmarkSpec{bench}}, false},
		{"nil factory", Spec{Tools: []ToolSpec{{Name: "x"}}, Benchmarks: []BenchmarkSpec{bench}, Runs: 1}, false},
		{"dup tool", Spec{Tools: []ToolSpec{tool, tool}, Benchmarks: []BenchmarkSpec{bench}, Runs: 1}, false},
		{"dup bench", Spec{Tools: []ToolSpec{tool}, Benchmarks: []BenchmarkSpec{bench, bench}, Runs: 1}, false},
		{"dup litmus", Spec{Tools: []ToolSpec{tool}, Litmus: []*litmus.Test{constLitmus("l", "x"), constLitmus("l", "x")}, Runs: 1}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}
