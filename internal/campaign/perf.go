package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"c11tester/internal/capi"
	"c11tester/internal/harness"
	"c11tester/internal/litmus"
	"c11tester/internal/rng"
	"c11tester/internal/sched"
)

// Schema identifiers of the serialized perf artifact (BENCH_perf.json). It
// tracks the execution-core hot path across PRs the way BENCH_campaign.json
// tracks detection: ns/exec, allocated bytes/exec, and allocated objects/exec
// per (tool, program) cell. Bump PerfSchemaVersion on any incompatible change
// to the JSON shape.
//
// Schema v2 (the fiber-pool PR) adds the scheduler regime to the spec echo
// (handoff, pooled) and the optional Figure 14 handoff matrix
// (handoff_matrix): ns/exec and allocation counters for every handoff regime
// × {pooled, respawn} scheduler combination.
//
// Schema v3 (the PCG rng PR) adds the rng-source echo ("rng": pcg or
// legacy) to the spec: the source changes every decision stream and the
// work each execution does, so artifacts from different sources are only
// compared with a warning (like handoff regimes). Pre-v3 artifacts were
// measured on the legacy source.
const (
	PerfSchemaName    = "c11tester/perf"
	PerfSchemaVersion = 3
)

// PerfSpec describes a perf measurement run. Unlike a campaign, it is always
// serial (one cell at a time on one goroutine): the point is a clean
// per-execution cost number, not wall-clock throughput.
type PerfSpec struct {
	Tools      []ToolSpec
	Benchmarks []BenchmarkSpec
	Litmus     []*litmus.Test
	// Runs is the number of measured executions per (tool, program) cell.
	Runs int
	// Warmup is the number of unmeasured full sweeps of the measured seed
	// range run first on each cell's tool instance (negative means 0; 0 means
	// the default of 1). Sweeping the exact seed sequence the measurement
	// will use brings every pool and arena to its high-water mark before the
	// window opens, so the measured window reflects the true steady state —
	// with the fiber pool, zero allocations — instead of charging one-time
	// capacity growth at a late seed to the per-execution numbers.
	Warmup int
	// SeedBase seeds measured execution i of a cell with SeedBase+i (warmup
	// sweeps replay the same seeds), mirroring the campaign runner's seeding
	// invariant.
	SeedBase int64
	// Handoff, Respawn, and RNG echo the scheduler regime and random source
	// the spec's tools were built with (ToolOptions.Handoff/Respawn/RNG)
	// into the artifact, so two BENCH_perf.json files are only compared like
	// for like. They do not themselves configure the tools — the ToolSpec
	// factories do.
	Handoff string
	Respawn bool
	RNG     string
	// Progress, when non-nil, receives live counters as the sweep runs (cells
	// planned/done, executions) for a -status-addr server. The per-execution
	// update is a single atomic add — it never allocates, so the measured
	// allocation window stays exact.
	Progress *PerfProgress
}

func (s PerfSpec) withDefaults() PerfSpec {
	if s.Runs <= 0 {
		s.Runs = 30
	}
	if s.Warmup == 0 {
		s.Warmup = 1
	} else if s.Warmup < 0 {
		s.Warmup = 0
	}
	return s
}

// PerfCell is the measured cost of one (tool, program) cell.
type PerfCell struct {
	Tool    string `json:"tool"`
	Program string `json:"program"`
	Litmus  bool   `json:"litmus,omitempty"`
	Execs   int    `json:"execs"`

	NsPerExec           float64 `json:"ns_per_exec"`
	AllocBytesPerExec   float64 `json:"alloc_bytes_per_exec"`
	AllocObjectsPerExec float64 `json:"alloc_objects_per_exec"`
	AtomicOpsPerExec    float64 `json:"atomic_ops_per_exec"`
}

// PerfToolSummary aggregates one tool over all measured cells.
type PerfToolSummary struct {
	Tool                string  `json:"tool"`
	Execs               int     `json:"execs"`
	NsPerExec           float64 `json:"ns_per_exec"`
	AllocBytesPerExec   float64 `json:"alloc_bytes_per_exec"`
	AllocObjectsPerExec float64 `json:"alloc_objects_per_exec"`
	ExecsPerSec         float64 `json:"execs_per_sec"`
}

// PerfSpecInfo echoes the measurement parameters into the artifact. Handoff
// and Pooled (schema v2) name the scheduler regime the main matrix ran in;
// artifacts from different regimes are not comparable and the perf gate
// warns on a mismatch.
type PerfSpecInfo struct {
	Tools    []string `json:"tools"`
	Programs []string `json:"programs"`
	Runs     int      `json:"runs"`
	Warmup   int      `json:"warmup"`
	SeedBase int64    `json:"seed_base"`
	Handoff  string   `json:"handoff,omitempty"`
	Pooled   bool     `json:"pooled,omitempty"`
	// RNG names the random source (schema v3): "pcg" or "legacy". Pre-v3
	// artifacts omit it and were measured on the legacy source.
	RNG string `json:"rng,omitempty"`
}

// HandoffCell is one aggregated measurement of the Figure 14 handoff matrix:
// one tool measured over the spec's programs under one handoff regime ×
// scheduler (pooled fiber workers vs goroutine respawn) combination. The
// matrix reproduces the paper's Figure 14 comparison — user-level switches
// (channel ≈ swapcontext fibers) against condition-variable sequencing on
// green and kernel threads — with the pool dimension isolating what worker
// reuse itself buys.
type HandoffCell struct {
	Handoff string `json:"handoff"`
	Pooled  bool   `json:"pooled"`
	Tool    string `json:"tool"`
	Execs   int    `json:"execs"`

	NsPerExec           float64 `json:"ns_per_exec"`
	AllocBytesPerExec   float64 `json:"alloc_bytes_per_exec"`
	AllocObjectsPerExec float64 `json:"alloc_objects_per_exec"`
}

// PerfSummary is the versioned perf artifact serialized to BENCH_perf.json.
type PerfSummary struct {
	Schema        string            `json:"schema"`
	SchemaVersion int               `json:"schema_version"`
	GoVersion     string            `json:"go_version"`
	Spec          PerfSpecInfo      `json:"spec"`
	Cells         []PerfCell        `json:"cells"`
	Tools         []PerfToolSummary `json:"tools"`
	// HandoffMatrix is the Figure 14 regime comparison (schema v2, optional:
	// cmd/c11bench -fig14).
	HandoffMatrix []HandoffCell `json:"handoff_matrix,omitempty"`
}

// RunPerf measures every (tool, program) cell serially and aggregates the
// artifact. Each cell gets a fresh tool instance; warmup executions bring the
// instance's pools and arenas to steady state before the measured window, so
// the numbers reflect the recycled hot path a long campaign shard sees.
func RunPerf(spec PerfSpec) *PerfSummary {
	spec = spec.withDefaults()
	sum := &PerfSummary{
		Schema:        PerfSchemaName,
		SchemaVersion: PerfSchemaVersion,
		GoVersion:     runtime.Version(),
		Spec: PerfSpecInfo{
			Runs: spec.Runs, Warmup: spec.Warmup, SeedBase: spec.SeedBase,
			Handoff: handoffOrDefault(spec.Handoff), Pooled: !spec.Respawn,
			RNG:   rng.Canonical(spec.RNG),
			Tools: []string{}, Programs: []string{},
		},
	}
	for _, t := range spec.Tools {
		sum.Spec.Tools = append(sum.Spec.Tools, t.Name)
	}
	for _, b := range spec.Benchmarks {
		sum.Spec.Programs = append(sum.Spec.Programs, b.Name)
	}
	for _, l := range spec.Litmus {
		sum.Spec.Programs = append(sum.Spec.Programs, l.Name)
	}

	if spec.Progress != nil {
		spec.Progress.begin(len(spec.Tools) * (len(spec.Benchmarks) + len(spec.Litmus)))
	}
	for ti := range spec.Tools {
		var tot PerfCell
		for _, b := range spec.Benchmarks {
			cell := measureCell(spec, ti, b.Name, false, b.New(), nil)
			sum.Cells = append(sum.Cells, cell)
			accumulate(&tot, cell)
		}
		for _, l := range spec.Litmus {
			var out string
			prog := l.Make(&out)
			cell := measureCell(spec, ti, l.Name, true, prog, func() { out = "" })
			sum.Cells = append(sum.Cells, cell)
			accumulate(&tot, cell)
		}
		ts := PerfToolSummary{Tool: spec.Tools[ti].Name, Execs: tot.Execs}
		if tot.Execs > 0 {
			ts.NsPerExec = tot.NsPerExec / float64(tot.Execs)
			ts.AllocBytesPerExec = tot.AllocBytesPerExec / float64(tot.Execs)
			ts.AllocObjectsPerExec = tot.AllocObjectsPerExec / float64(tot.Execs)
			ts.ExecsPerSec = 1e9 / ts.NsPerExec
		}
		sum.Tools = append(sum.Tools, ts)
	}
	return sum
}

// accumulate folds a cell into a per-tool running total; the per-exec fields
// of tot temporarily hold sums, normalized by RunPerf once the tool is done.
func accumulate(tot *PerfCell, cell PerfCell) {
	tot.Execs += cell.Execs
	tot.NsPerExec += cell.NsPerExec * float64(cell.Execs)
	tot.AllocBytesPerExec += cell.AllocBytesPerExec * float64(cell.Execs)
	tot.AllocObjectsPerExec += cell.AllocObjectsPerExec * float64(cell.Execs)
}

// measureCell runs one (tool, program) cell: warmup executions on a fresh
// tool instance, then a measured window bracketed by monotonic-clock and
// heap-allocation counter reads. The allocation counters are process-global;
// RunPerf is strictly serial, so within one process they are attributable to
// the cell (the same convention as the campaign's Workers=1 counters).
func measureCell(spec PerfSpec, ti int, program string, isLit bool, prog capi.Program, reset func()) PerfCell {
	tool := spec.Tools[ti].New()
	defer closeTool(tool)
	if spec.Progress != nil {
		spec.Progress.setCurrent(spec.Tools[ti].Name + "/" + program)
		defer spec.Progress.CellsDone.Inc()
	}
	run := func(i int) *capi.Result {
		if reset != nil {
			reset()
		}
		res := tool.Execute(prog, spec.SeedBase+int64(i))
		if spec.Progress != nil {
			spec.Progress.Execs.Inc()
		}
		return res
	}
	// Warmup sweeps replay the exact seed sequence the measured window uses,
	// so every capacity high-water mark is reached before measurement.
	for s := 0; s < spec.Warmup; s++ {
		for i := 0; i < spec.Runs; i++ {
			run(i)
		}
	}
	// A forced collection pins the GC phase at the window boundary, so
	// whether a background cycle lands inside the measured window — and the
	// runtime-internal allocations that come with it — does not vary run to
	// run. This is what lets the trajectory gate hold alloc counters to a
	// tight tolerance.
	runtime.GC()
	var atomicOps uint64
	b0, o0 := readAllocCounters()
	start := time.Now()
	for i := 0; i < spec.Runs; i++ {
		res := run(i)
		atomicOps += res.Stats.AtomicOps
	}
	elapsed := time.Since(start)
	b1, o1 := readAllocCounters()

	n := float64(spec.Runs)
	return PerfCell{
		Tool: spec.Tools[ti].Name, Program: program, Litmus: isLit,
		Execs:               spec.Runs,
		NsPerExec:           float64(elapsed.Nanoseconds()) / n,
		AllocBytesPerExec:   float64(b1-b0) / n,
		AllocObjectsPerExec: float64(o1-o0) / n,
		AtomicOpsPerExec:    float64(atomicOps) / n,
	}
}

// handoffOrDefault normalizes an empty handoff name to the default regime
// (sched.HandoffName of the zero Config).
func handoffOrDefault(name string) string {
	if name == "" {
		return sched.HandoffName(sched.Config{})
	}
	return name
}

// rngOrDefault resolves the rng source an artifact was measured on: pre-v3
// artifacts omit the echo and were drawn from the legacy math/rand source.
func rngOrDefault(name string, schemaVersion int) string {
	if name == "" {
		if schemaVersion < 3 {
			return "legacy"
		}
		return rng.Canonical("")
	}
	return name
}

// schedLabel renders the pool dimension of a scheduler regime.
func schedLabel(pooled bool) string {
	if pooled {
		return "pooled"
	}
	return "respawn"
}

// RunHandoffMatrix measures the Figure 14 design space: every handoff regime
// (channel, cond, osthread) × {pooled, respawn} scheduler, for each named
// tool, over the spec's programs. Each combination reuses the serial RunPerf
// machinery with tools rebuilt under the regime, and is aggregated to one
// HandoffCell. base supplies the non-scheduler tool options. prior, when
// non-nil, is a summary already measured over the same spec (cmd/c11bench's
// main run); its regime combination is copied from its per-tool aggregates
// instead of being measured a second time.
func RunHandoffMatrix(spec PerfSpec, toolNames []string, base ToolOptions, prior *PerfSummary) ([]HandoffCell, error) {
	var out []HandoffCell
	for _, regime := range sched.HandoffRegimes() {
		for _, pooled := range []bool{true, false} {
			for _, name := range toolNames {
				if cell, ok := priorCell(prior, regime, pooled, name); ok {
					out = append(out, cell)
					continue
				}
				opts := base
				opts.Handoff = regime
				opts.Respawn = !pooled
				ts, err := StandardTool(name, opts)
				if err != nil {
					return nil, err
				}
				sub := spec
				sub.Tools = []ToolSpec{ts}
				sub.Handoff = regime
				sub.Respawn = !pooled
				sum := RunPerf(sub)
				out = append(out, cellFromAgg(regime, pooled, sum.Tools[0]))
			}
		}
	}
	return out, nil
}

// cellFromAgg builds a matrix cell from a per-tool RunPerf aggregate.
func cellFromAgg(regime string, pooled bool, agg PerfToolSummary) HandoffCell {
	return HandoffCell{
		Handoff: regime, Pooled: pooled, Tool: agg.Tool,
		Execs:               agg.Execs,
		NsPerExec:           agg.NsPerExec,
		AllocBytesPerExec:   agg.AllocBytesPerExec,
		AllocObjectsPerExec: agg.AllocObjectsPerExec,
	}
}

// priorCell extracts the (regime, pooled, tool) matrix cell from an
// already-measured summary, if it covers that combination.
func priorCell(prior *PerfSummary, regime string, pooled bool, tool string) (HandoffCell, bool) {
	if prior == nil || handoffOrDefault(prior.Spec.Handoff) != regime || prior.Spec.Pooled != pooled {
		return HandoffCell{}, false
	}
	for _, agg := range prior.Tools {
		if agg.Tool == tool {
			return cellFromAgg(regime, pooled, agg), true
		}
	}
	return HandoffCell{}, false
}

// HandoffMatrixString renders the Figure 14 matrix table.
func HandoffMatrixString(cells []HandoffCell) string {
	tb := &harness.Table{Header: []string{"handoff", "scheduler", "tool", "ns/exec", "bytes/exec", "objects/exec"}}
	for _, c := range cells {
		tb.AddRow(c.Handoff, schedLabel(c.Pooled), c.Tool,
			fmt.Sprintf("%.0f", c.NsPerExec),
			fmt.Sprintf("%.0f", c.AllocBytesPerExec),
			fmt.Sprintf("%.1f", c.AllocObjectsPerExec))
	}
	return tb.String()
}

// String renders the human-readable perf report.
func (s *PerfSummary) String() string {
	regime := handoffOrDefault(s.Spec.Handoff)
	schedName := schedLabel(s.Spec.Pooled)
	if s.SchemaVersion == 1 {
		schedName = "pre-pool" // v1 artifacts predate the fiber pool
	}
	out := fmt.Sprintf("perf: %d tool(s) × %d program(s), %d measured execs/cell (%d warmup), seed base %d, %s handoff (%s), %s rng, %s\n\n",
		len(s.Spec.Tools), len(s.Spec.Programs), s.Spec.Runs, s.Spec.Warmup, s.Spec.SeedBase, regime, schedName, rngOrDefault(s.Spec.RNG, s.SchemaVersion), s.GoVersion)
	tb := &harness.Table{Header: []string{"tool", "execs", "ns/exec", "bytes/exec", "objects/exec", "execs/sec"}}
	for _, ts := range s.Tools {
		tb.AddRow(ts.Tool,
			fmt.Sprintf("%d", ts.Execs),
			fmt.Sprintf("%.0f", ts.NsPerExec),
			fmt.Sprintf("%.0f", ts.AllocBytesPerExec),
			fmt.Sprintf("%.1f", ts.AllocObjectsPerExec),
			fmt.Sprintf("%.0f", ts.ExecsPerSec))
	}
	out += tb.String()
	ct := &harness.Table{Header: []string{"tool", "program", "ns/exec", "bytes/exec", "objects/exec", "atomic ops/exec"}}
	for _, c := range s.Cells {
		ct.AddRow(c.Tool, c.Program,
			fmt.Sprintf("%.0f", c.NsPerExec),
			fmt.Sprintf("%.0f", c.AllocBytesPerExec),
			fmt.Sprintf("%.1f", c.AllocObjectsPerExec),
			fmt.Sprintf("%.1f", c.AtomicOpsPerExec))
	}
	out += "\nper-cell costs:\n" + ct.String()
	if len(s.HandoffMatrix) > 0 {
		out += "\nFigure 14 handoff matrix:\n" + HandoffMatrixString(s.HandoffMatrix)
	}
	return out
}

// WriteJSON writes the indented artifact file (BENCH_perf.json).
func (s *PerfSummary) WriteJSON(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadPerfSummary reads a serialized perf artifact and sanity-checks its
// schema header.
func LoadPerfSummary(path string) (*PerfSummary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s PerfSummary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("campaign: %s: %v", path, err)
	}
	if s.Schema != PerfSchemaName {
		return nil, fmt.Errorf("campaign: %s: schema %q, want %q", path, s.Schema, PerfSchemaName)
	}
	if s.SchemaVersion < 1 || s.SchemaVersion > PerfSchemaVersion {
		return nil, fmt.Errorf("campaign: %s: schema version %d, this build understands 1..%d",
			path, s.SchemaVersion, PerfSchemaVersion)
	}
	return &s, nil
}
