package campaign

import (
	"encoding/json"
	"strings"
	"testing"
)

// stripRNGFlag removes the "-rng legacy" token from every repro triple in
// the summary, so a -rng legacy run can be compared against an artifact
// captured before the flag existed (whose repros carry no flags).
func stripRNGFlag(s *Summary) {
	strip := func(flags string) string {
		parts := strings.Fields(strings.ReplaceAll(flags, "-rng legacy", ""))
		return strings.Join(parts, " ")
	}
	for t := range s.Tools {
		ts := &s.Tools[t]
		for i := range ts.FailureSamples {
			ts.FailureSamples[i].Repro.Flags = strip(ts.FailureSamples[i].Repro.Flags)
		}
		for i := range ts.Findings {
			ts.Findings[i].Repro.Flags = strip(ts.Findings[i].Repro.Flags)
		}
		for i := range ts.Races {
			ts.Races[i].Repro.Flags = strip(ts.Races[i].Repro.Flags)
		}
		for i := range ts.UnexpectedRaces {
			ts.UnexpectedRaces[i].Repro.Flags = strip(ts.UnexpectedRaces[i].Repro.Flags)
		}
		for l := range ts.Litmus {
			for i := range ts.Litmus[l].ForbiddenSeen {
				ts.Litmus[l].ForbiddenSeen[i].Repro.Flags = strip(ts.Litmus[l].ForbiddenSeen[i].Repro.Flags)
			}
		}
	}
}

// TestLegacyRNGReproducesPrePCGArtifact pins the -rng legacy escape hatch:
// testdata/legacy_campaign.json was captured by this exact matrix BEFORE the
// PCG subsystem replaced math/rand as the default decision source. Re-running
// the matrix on the legacy source must reproduce the artifact byte for byte
// (in canonical form), proving that every decision stream — strategy picks,
// reads-from selection, workload values, cond-waiter picks — is untouched by
// the rewiring. Only the envelope fields this PR itself added are aligned
// before the comparison: the schema version (v7 → v8), the spec's rng echo,
// and the "-rng legacy" token in repro flags.
func TestLegacyRNGReproducesPrePCGArtifact(t *testing.T) {
	golden, err := LoadSummary("testdata/legacy_campaign.json")
	if err != nil {
		t.Fatal(err)
	}
	var tools []ToolSpec
	for _, name := range StandardToolNames() {
		tools = append(tools, mustTool(t, name, ToolOptions{RNG: "legacy"}))
	}
	benches, err := SelectBenchmarks("ms-queue,seqlock")
	if err != nil {
		t.Fatal(err)
	}
	lits, err := SelectLitmus("MP+rlx,SB+sc,CoRR")
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Tools: tools, Benchmarks: benches, Litmus: lits,
		Runs: 40, SeedBase: 1, Workers: 1,
		RNG: "legacy",
	}
	sum := Run(spec)

	g, n := golden.Canonical(), sum.Canonical()
	g.SchemaVersion = n.SchemaVersion // golden predates the v8 rng echo
	g.Spec.RNG = "legacy"             // pre-v8 artifacts omit it (and were legacy)
	stripRNGFlag(n)
	gj, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	nj, err := json.MarshalIndent(n, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(gj) != string(nj) {
		gl, nl := strings.Split(string(gj), "\n"), strings.Split(string(nj), "\n")
		for i := 0; i < len(gl) && i < len(nl); i++ {
			if gl[i] != nl[i] {
				t.Fatalf("-rng legacy campaign diverged from the pre-PCG artifact at line %d:\n  golden: %s\n  got:    %s",
					i+1, gl[i], nl[i])
			}
		}
		t.Fatalf("-rng legacy campaign diverged from the pre-PCG artifact: lengths %d vs %d lines", len(gl), len(nl))
	}
}

// TestRNGSpecValidation pins the flag-surface contract: unknown rng names
// are rejected at Validate time with a parseable message, and the two
// canonical names round-trip through a ToolSpec's repro flags (legacy only —
// the default source adds no flag noise).
func TestRNGSpecValidation(t *testing.T) {
	spec := Spec{
		Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
		Runs:       1,
		RNG:        "mt19937",
	}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "mt19937") {
		t.Fatalf("Validate() = %v, want unknown-rng error naming mt19937", err)
	}
	if _, err := StandardTool("c11tester", ToolOptions{RNG: "mt19937"}); err == nil {
		t.Fatal("StandardTool accepted an unknown rng source")
	}
	ts := mustTool(t, "c11tester", ToolOptions{RNG: "legacy"})
	if !strings.Contains(ts.ReproFlags, "-rng legacy") {
		t.Fatalf("ReproFlags = %q, want -rng legacy", ts.ReproFlags)
	}
	if ts.TraceConfig.RNG != "legacy" {
		t.Fatalf("TraceConfig.RNG = %q, want legacy", ts.TraceConfig.RNG)
	}
	ts = mustTool(t, "c11tester", ToolOptions{RNG: "pcg"})
	if strings.Contains(ts.ReproFlags, "-rng") || ts.TraceConfig.RNG != "" {
		t.Fatalf("default source must not be echoed: flags %q, trace rng %q", ts.ReproFlags, ts.TraceConfig.RNG)
	}
}
