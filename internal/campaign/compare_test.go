package campaign

import (
	"path/filepath"
	"strings"
	"testing"

	"c11tester/internal/harness"
)

func mkSummary(execsPerSec float64, ratePct float64, raceKeys ...string) *Summary {
	var races []harness.RaceSummary
	for _, k := range raceKeys {
		races = append(races, harness.RaceSummary{Key: k})
	}
	return &Summary{
		Schema: SchemaName, SchemaVersion: SchemaVersion,
		Tools: []ToolSummary{{
			Tool: "c11tester", ExecsPerSec: execsPerSec, Races: races,
			Benchmarks: []CellSummary{{
				Program:   "ms-queue",
				Detection: harness.DetectionSummary{Runs: 100, RatePct: ratePct},
			}},
		}},
	}
}

func TestCompareDetectsMovement(t *testing.T) {
	old := mkSummary(1000, 80, "a/x/y", "b/x/y")
	new := mkSummary(2000, 95, "a/x/y", "c/x/y")

	c := Compare(old, new)
	if len(c.Tools) != 1 {
		t.Fatalf("matched %d tools, want 1", len(c.Tools))
	}
	td := c.Tools[0]
	if td.ThroughputRatio != 2 {
		t.Errorf("throughput ratio = %v, want 2", td.ThroughputRatio)
	}
	if len(td.NewRaceKeys) != 1 || td.NewRaceKeys[0] != "c/x/y" {
		t.Errorf("new race keys = %v", td.NewRaceKeys)
	}
	if len(td.LostRaceKeys) != 1 || td.LostRaceKeys[0] != "b/x/y" {
		t.Errorf("lost race keys = %v", td.LostRaceKeys)
	}
	if len(td.Detection) != 1 || td.Detection[0].DeltaPct != 15 {
		t.Errorf("detection delta = %+v", td.Detection)
	}
	if !c.Regressed() {
		t.Error("a lost race key must count as a regression")
	}
	text := c.String()
	for _, want := range []string{"2.00×", "LOST race key b/x/y", "NEW race key c/x/y", "ms-queue"} {
		if !strings.Contains(text, want) {
			t.Errorf("comparison text missing %q:\n%s", want, text)
		}
	}

	// No movement → no regression.
	if Compare(old, old).Regressed() {
		t.Error("identical artifacts must not regress")
	}
}

func TestCompareRoundTripsThroughDisk(t *testing.T) {
	sum := Run(Spec{
		Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
		Runs:       5,
		SeedBase:   7,
	})
	path := filepath.Join(t.TempDir(), "old.json")
	if err := sum.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	old, err := LoadSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	c := Compare(old, sum)
	if c.Regressed() {
		t.Errorf("self-comparison regressed:\n%s", c)
	}
	if len(c.Tools) != 1 || c.Tools[0].ThroughputRatio == 0 {
		t.Errorf("self-comparison lost the tool: %+v", c.Tools)
	}
}
