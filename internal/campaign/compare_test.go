package campaign

import (
	"path/filepath"
	"strings"
	"testing"

	"c11tester/internal/harness"
)

func mkSummary(execsPerSec float64, ratePct float64, raceKeys ...string) *Summary {
	var races []harness.RaceSummary
	for _, k := range raceKeys {
		races = append(races, harness.RaceSummary{Key: k})
	}
	return &Summary{
		Schema: SchemaName, SchemaVersion: SchemaVersion,
		Tools: []ToolSummary{{
			Tool: "c11tester", ExecsPerSec: execsPerSec, Races: races,
			Benchmarks: []CellSummary{{
				Program:   "ms-queue",
				Detection: harness.DetectionSummary{Runs: 100, RatePct: ratePct},
			}},
		}},
	}
}

func TestCompareDetectsMovement(t *testing.T) {
	old := mkSummary(1000, 80, "a/x/y", "b/x/y")
	new := mkSummary(2000, 95, "a/x/y", "c/x/y")

	c := Compare(old, new)
	if len(c.Tools) != 1 {
		t.Fatalf("matched %d tools, want 1", len(c.Tools))
	}
	td := c.Tools[0]
	if td.ThroughputRatio != 2 {
		t.Errorf("throughput ratio = %v, want 2", td.ThroughputRatio)
	}
	if len(td.NewRaceKeys) != 1 || td.NewRaceKeys[0] != "c/x/y" {
		t.Errorf("new race keys = %v", td.NewRaceKeys)
	}
	if len(td.LostRaceKeys) != 1 || td.LostRaceKeys[0] != "b/x/y" {
		t.Errorf("lost race keys = %v", td.LostRaceKeys)
	}
	if len(td.Detection) != 1 || td.Detection[0].DeltaPct != 15 {
		t.Errorf("detection delta = %+v", td.Detection)
	}
	if !c.Regressed() {
		t.Error("a lost race key must count as a regression")
	}
	text := c.String()
	for _, want := range []string{"2.00×", "LOST race key b/x/y", "NEW race key c/x/y", "ms-queue"} {
		if !strings.Contains(text, want) {
			t.Errorf("comparison text missing %q:\n%s", want, text)
		}
	}

	// No movement → no regression.
	if Compare(old, old).Regressed() {
		t.Error("identical artifacts must not regress")
	}
}

func TestCompareRoundTripsThroughDisk(t *testing.T) {
	sum := Run(Spec{
		Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
		Runs:       5,
		SeedBase:   7,
	})
	path := filepath.Join(t.TempDir(), "old.json")
	if err := sum.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	old, err := LoadSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	c := Compare(old, sum)
	if c.Regressed() {
		t.Errorf("self-comparison regressed:\n%s", c)
	}
	if len(c.Tools) != 1 || c.Tools[0].ThroughputRatio == 0 {
		t.Errorf("self-comparison lost the tool: %+v", c.Tools)
	}
}

func mkLitmusSummary(weakSeen []string, validation *ValidationSummary) *Summary {
	return &Summary{
		Schema: SchemaName, SchemaVersion: SchemaVersion,
		Tools: []ToolSummary{{
			Tool: "c11tester",
			Litmus: []LitmusSummary{{
				Test: "MP+rlx", WeakSeen: weakSeen, WeakDefined: 2,
			}},
			Validation: validation,
		}},
	}
}

func TestCompareWeakOutcomeCoverage(t *testing.T) {
	old := mkLitmusSummary([]string{"r1=1 r2=0", "r1=2 r2=0"}, nil)
	new := mkLitmusSummary([]string{"r1=1 r2=0"}, nil)

	c := Compare(old, new)
	if len(c.Tools) != 1 || len(c.Tools[0].Litmus) != 1 {
		t.Fatalf("litmus deltas = %+v", c.Tools)
	}
	ld := c.Tools[0].Litmus[0]
	if ld.OldWeak != 2 || ld.NewWeak != 1 {
		t.Errorf("weak counts %d → %d, want 2 → 1", ld.OldWeak, ld.NewWeak)
	}
	if len(ld.LostOutcomes) != 1 || ld.LostOutcomes[0] != "r1=2 r2=0" {
		t.Errorf("lost outcomes = %v", ld.LostOutcomes)
	}
	if !c.Regressed() {
		t.Error("lost weak-outcome coverage must count as a regression")
	}
	if !strings.Contains(c.String(), `LOST weak outcome MP+rlx="r1=2 r2=0"`) {
		t.Errorf("report missing lost-outcome line:\n%s", c.String())
	}

	// Gained coverage is movement, not regression.
	c = Compare(new, old)
	if c.Regressed() {
		t.Error("gained coverage must not regress")
	}
	if len(c.Tools[0].Litmus) != 1 || len(c.Tools[0].Litmus[0].GainedOutcomes) != 1 {
		t.Errorf("gained outcomes not reported: %+v", c.Tools[0].Litmus)
	}

	// Identical coverage produces no delta entries at all.
	if ls := Compare(old, old).Tools[0].Litmus; len(ls) != 0 {
		t.Errorf("identical coverage produced deltas: %+v", ls)
	}
}

func TestCompareValidationCounts(t *testing.T) {
	old := mkLitmusSummary([]string{"r1=1 r2=0"}, &ValidationSummary{Checked: 100, Violations: 0})
	new := mkLitmusSummary([]string{"r1=1 r2=0"}, &ValidationSummary{Checked: 100, Violations: 2})

	c := Compare(old, new)
	v := c.Tools[0].Validation
	if v == nil || v.OldViolations != 0 || v.NewViolations != 2 {
		t.Fatalf("validation delta = %+v", v)
	}
	if !c.Regressed() {
		t.Error("new axiom violations must count as a regression")
	}
	if !strings.Contains(c.String(), "violations 0 → 2") {
		t.Errorf("report missing validation line:\n%s", c.String())
	}
	if Compare(old, old).Regressed() {
		t.Error("stable validation must not regress")
	}

	// Validation present on only one side → no delta, no false regression.
	if d := Compare(mkLitmusSummary(nil, nil), new); d.Tools[0].Validation != nil {
		t.Errorf("one-sided validation produced a delta: %+v", d.Tools[0].Validation)
	}
}
