// cli.go holds the telemetry wiring shared by the campaign CLIs
// (cmd/c11tester and cmd/litmus): the flag set, the event-stream file, the
// status server with its /metrics, /progress, and /debug/converge endpoints,
// and the cleanup sequencing. Both commands route through SetupTelemetry so
// the serving surface cannot drift between them.
package campaign

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"c11tester/internal/obs"
	"c11tester/internal/safeio"
)

// TelemetryFlags are the shared telemetry CLI options. Register binds them to
// a FlagSet; Quiet is owned by the caller (the commands differ on what -q
// silences beyond progress lines).
type TelemetryFlags struct {
	StatusAddr string
	EventsPath string
	CaptureDir string
	SlowNS     bool
	Verbose    bool
	Quiet      bool
}

// Register binds the shared telemetry flags onto fs.
func (f *TelemetryFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.StatusAddr, "status-addr", "", "serve /metrics (Prometheus text), /progress and /debug/converge (JSON), and /debug/pprof on this address while the campaign runs ('' disables)")
	fs.StringVar(&f.EventsPath, "events", "", "append the structured JSONL event stream to this file ('' disables)")
	fs.StringVar(&f.CaptureDir, "capture", "", "arm the flight recorder: write full traces of anomalous executions (slow outliers, first-seen races, forbidden outcomes, engine failures) plus a manifest.json to this directory ('' disables)")
	fs.BoolVar(&f.SlowNS, "capture-slow-ns", false, "with -capture, also trigger on wall-clock latency outliers (non-deterministic across machines; the default slow trigger uses schedule steps)")
	fs.BoolVar(&f.Verbose, "v", false, "echo every structured event to stderr as it is emitted")
}

// SetupTelemetry builds the telemetry fabric the shared flags describe: the
// Telemetry for Spec.Telemetry, an events file if requested, and a status
// server if requested. The returned cleanup stops the server and closes the
// events file; call it after Run returns (Run itself flushes and closes the
// event stream). name prefixes the diagnostics, matching each command's
// error style.
func SetupTelemetry(name string, f TelemetryFlags) (*Telemetry, func(), error) {
	topts := TelemetryOptions{Timestamps: true}
	if !f.Quiet {
		topts.Progress = os.Stderr
	}
	if f.Verbose {
		topts.EventEcho = os.Stderr
	}
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	if f.EventsPath != "" {
		ef, err := os.OpenFile(f.EventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: -events: %v", name, err)
		}
		cleanups = append(cleanups, func() { ef.Close() })
		topts.EventSink = ef
	}
	tel := NewTelemetry(topts)
	if f.StatusAddr != "" {
		srv := obs.NewServer(tel.Registry(), func() any { return tel.Progress() })
		srv.Handle("/debug/converge", func() any { return tel.ConvergeSnapshot() })
		addr, err := srv.Start(f.StatusAddr)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("%s: -status-addr: %v", name, err)
		}
		cleanups = append(cleanups, func() { srv.Stop() })
		if !f.Quiet {
			fmt.Fprintf(os.Stderr, "%s: serving /metrics, /progress, and /debug/converge on http://%s\n", name, addr)
		}
	}
	return tel, cleanup, nil
}

// CrashFlags are the shared crash-safety CLI options: shard selection,
// checkpointing, and resume. Register binds them to a FlagSet; Apply copies
// them onto a Spec after the matrix flags are resolved.
type CrashFlags struct {
	Shard      string
	Checkpoint string
	Resume     string
}

// Register binds the crash-safety flags onto fs.
func (f *CrashFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Shard, "shard", "", "run shard i/N of the campaign (e.g. 0/3): each shard executes a disjoint deterministic slice of every cell's seed range and writes a partial summary plus a .shard.json manifest for c11merge ('' disables)")
	fs.StringVar(&f.Checkpoint, "checkpoint", "", "write an atomic checkpoint of completed-wave state to this file at every wave barrier ('' disables)")
	fs.StringVar(&f.Resume, "resume", "", "resume an interrupted campaign from this checkpoint file; a missing file starts fresh with a warning")
}

// Apply copies the crash-safety flags onto spec. A -resume file that does not
// exist yet is a fresh start (warned on warn), so `-checkpoint ck -resume ck`
// is an idempotent invocation: run it until it succeeds. When a resume is
// loaded, the previous event stream at eventsPath (the file the interrupted
// run appended to, possibly ending in a torn line) is rotated aside so the
// resumed run appends to a clean file.
func (f CrashFlags) Apply(spec *Spec, eventsPath string, warn io.Writer) error {
	if f.Shard != "" {
		sel, err := ParseShard(f.Shard)
		if err != nil {
			return err
		}
		spec.Shard = sel
	}
	spec.CheckpointPath = f.Checkpoint
	if f.Resume == "" {
		return nil
	}
	ck, err := LoadCheckpoint(f.Resume)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if warn != nil {
			fmt.Fprintf(warn, "-resume: %s does not exist yet; starting fresh\n", f.Resume)
		}
		return nil
	case err != nil:
		return fmt.Errorf("-resume: %w", err)
	}
	if err := ck.ValidateAgainst(*spec); err != nil {
		return fmt.Errorf("-resume: %w", err)
	}
	spec.Resume = ck
	if eventsPath != "" {
		rotated, err := safeio.Rotate(eventsPath)
		if err != nil {
			return fmt.Errorf("-resume: rotating %s: %w", eventsPath, err)
		}
		if rotated != "" && warn != nil {
			fmt.Fprintf(warn, "-resume: rotated previous event stream to %s\n", rotated)
		}
	}
	return nil
}

// ApplyCaptureFlags copies the flight-recorder flags onto the spec, creating
// the capture directory.
func (f TelemetryFlags) ApplyCaptureFlags(spec *Spec) error {
	if f.CaptureDir == "" {
		if f.SlowNS {
			return fmt.Errorf("-capture-slow-ns requires -capture")
		}
		return nil
	}
	if err := os.MkdirAll(f.CaptureDir, 0o755); err != nil {
		return fmt.Errorf("-capture: %v", err)
	}
	spec.CaptureDir = f.CaptureDir
	spec.CaptureSlowNS = f.SlowNS
	return nil
}
