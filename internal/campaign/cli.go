// cli.go holds the telemetry wiring shared by the campaign CLIs
// (cmd/c11tester and cmd/litmus): the flag set, the event-stream file, the
// status server with its /metrics, /progress, and /debug/converge endpoints,
// and the cleanup sequencing. Both commands route through SetupTelemetry so
// the serving surface cannot drift between them.
package campaign

import (
	"flag"
	"fmt"
	"os"

	"c11tester/internal/obs"
)

// TelemetryFlags are the shared telemetry CLI options. Register binds them to
// a FlagSet; Quiet is owned by the caller (the commands differ on what -q
// silences beyond progress lines).
type TelemetryFlags struct {
	StatusAddr string
	EventsPath string
	CaptureDir string
	SlowNS     bool
	Verbose    bool
	Quiet      bool
}

// Register binds the shared telemetry flags onto fs.
func (f *TelemetryFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.StatusAddr, "status-addr", "", "serve /metrics (Prometheus text), /progress and /debug/converge (JSON), and /debug/pprof on this address while the campaign runs ('' disables)")
	fs.StringVar(&f.EventsPath, "events", "", "append the structured JSONL event stream to this file ('' disables)")
	fs.StringVar(&f.CaptureDir, "capture", "", "arm the flight recorder: write full traces of anomalous executions (slow outliers, first-seen races, forbidden outcomes, engine failures) plus a manifest.json to this directory ('' disables)")
	fs.BoolVar(&f.SlowNS, "capture-slow-ns", false, "with -capture, also trigger on wall-clock latency outliers (non-deterministic across machines; the default slow trigger uses schedule steps)")
	fs.BoolVar(&f.Verbose, "v", false, "echo every structured event to stderr as it is emitted")
}

// SetupTelemetry builds the telemetry fabric the shared flags describe: the
// Telemetry for Spec.Telemetry, an events file if requested, and a status
// server if requested. The returned cleanup stops the server and closes the
// events file; call it after Run returns (Run itself flushes and closes the
// event stream). name prefixes the diagnostics, matching each command's
// error style.
func SetupTelemetry(name string, f TelemetryFlags) (*Telemetry, func(), error) {
	topts := TelemetryOptions{Timestamps: true}
	if !f.Quiet {
		topts.Progress = os.Stderr
	}
	if f.Verbose {
		topts.EventEcho = os.Stderr
	}
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	if f.EventsPath != "" {
		ef, err := os.OpenFile(f.EventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: -events: %v", name, err)
		}
		cleanups = append(cleanups, func() { ef.Close() })
		topts.EventSink = ef
	}
	tel := NewTelemetry(topts)
	if f.StatusAddr != "" {
		srv := obs.NewServer(tel.Registry(), func() any { return tel.Progress() })
		srv.Handle("/debug/converge", func() any { return tel.ConvergeSnapshot() })
		addr, err := srv.Start(f.StatusAddr)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("%s: -status-addr: %v", name, err)
		}
		cleanups = append(cleanups, func() { srv.Stop() })
		if !f.Quiet {
			fmt.Fprintf(os.Stderr, "%s: serving /metrics, /progress, and /debug/converge on http://%s\n", name, addr)
		}
	}
	return tel, cleanup, nil
}

// ApplyCaptureFlags copies the flight-recorder flags onto the spec, creating
// the capture directory.
func (f TelemetryFlags) ApplyCaptureFlags(spec *Spec) error {
	if f.CaptureDir == "" {
		if f.SlowNS {
			return fmt.Errorf("-capture-slow-ns requires -capture")
		}
		return nil
	}
	if err := os.MkdirAll(f.CaptureDir, 0o755); err != nil {
		return fmt.Errorf("-capture: %v", err)
	}
	spec.CaptureDir = f.CaptureDir
	spec.CaptureSlowNS = f.SlowNS
	return nil
}
