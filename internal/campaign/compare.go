package campaign

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"c11tester/internal/harness"
	"c11tester/internal/obs"
	"c11tester/internal/safeio"
)

// SplitComparePaths resolves the -compare argument convention shared by
// cmd/c11tester and cmd/c11bench: the new artifact either follows as a
// positional argument ("-compare old.json new.json") or is joined with a
// comma ("-compare old.json,new.json").
func SplitComparePaths(oldArg string, positional []string) (oldPath, newPath string, err error) {
	oldPath = oldArg
	if i := strings.IndexByte(oldArg, ','); i >= 0 {
		oldPath, newPath = oldArg[:i], oldArg[i+1:]
	} else if len(positional) == 1 {
		newPath = positional[0]
	}
	if oldPath == "" || newPath == "" {
		return "", "", fmt.Errorf("-compare needs two artifacts: -compare old.json new.json")
	}
	return oldPath, newPath, nil
}

// LoadSummary reads a serialized campaign artifact (BENCH_campaign.json)
// and sanity-checks its schema header. Versions 1 through SchemaVersion are
// accepted — comparison only touches fields that exist in every one of them;
// newer versions are rejected, since a bump signals an incompatible reshape
// that would silently decode to zero values here.
func LoadSummary(path string) (*Summary, error) {
	var s Summary
	if err := safeio.DecodeJSONFile(path, &s); err != nil {
		// A truncated artifact (a campaign killed mid-write predates the
		// atomic writer) comes back named with its byte offset.
		return nil, err
	}
	if s.Schema != SchemaName {
		return nil, fmt.Errorf("campaign: %s: schema %q, want %q", path, s.Schema, SchemaName)
	}
	if s.SchemaVersion < 1 || s.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("campaign: %s: schema version %d, this build understands 1..%d",
			path, s.SchemaVersion, SchemaVersion)
	}
	return &s, nil
}

// CellDelta is the detection-rate movement of one (tool, benchmark) cell.
type CellDelta struct {
	Tool      string  `json:"tool"`
	Benchmark string  `json:"benchmark"`
	OldPct    float64 `json:"old_pct"`
	NewPct    float64 `json:"new_pct"`
	DeltaPct  float64 `json:"delta_pct"`
}

// LitmusDelta is the weak-outcome-coverage movement of one (tool, test)
// cell: which allowed-but-non-SC outcomes each artifact observed. Coverage of
// weak outcomes is what separates the full fragment from the baselines', so
// losing it to a "perf win" is a regression the trajectory check must catch.
type LitmusDelta struct {
	Tool        string `json:"tool"`
	Test        string `json:"test"`
	OldWeak     int    `json:"old_weak"`
	NewWeak     int    `json:"new_weak"`
	WeakDefined int    `json:"weak_defined"`
	// LostOutcomes are weak outcomes observed only in the old artifact;
	// GainedOutcomes only in the new one.
	LostOutcomes   []string `json:"lost_outcomes,omitempty"`
	GainedOutcomes []string `json:"gained_outcomes,omitempty"`
}

// ValidationDelta compares the axiomatic-validation results of two -validate
// campaigns (present only when both artifacts carry them, schema v2).
type ValidationDelta struct {
	OldChecked    int `json:"old_checked"`
	NewChecked    int `json:"new_checked"`
	OldViolations int `json:"old_violations"`
	NewViolations int `json:"new_violations"`
}

// ToolDelta is the per-tool movement between two campaign artifacts.
type ToolDelta struct {
	Tool string `json:"tool"`
	// ThroughputRatio is new execs/sec over old execs/sec (>1 is faster).
	OldExecsPerSec  float64 `json:"old_execs_per_sec"`
	NewExecsPerSec  float64 `json:"new_execs_per_sec"`
	ThroughputRatio float64 `json:"throughput_ratio"`
	// NewRaceKeys are race keys present only in the new artifact; LostRaceKeys
	// only in the old one.
	NewRaceKeys  []string `json:"new_race_keys,omitempty"`
	LostRaceKeys []string `json:"lost_race_keys,omitempty"`
	// NewFindingKeys and LostFindingKeys are analyzer finding identities
	// ("analyzer program key") present in only one artifact (schema v7),
	// compared only when both artifacts ran the same analyzer set — an
	// artifact without analyzers has nothing to lose.
	NewFindingKeys  []string    `json:"new_finding_keys,omitempty"`
	LostFindingKeys []string    `json:"lost_finding_keys,omitempty"`
	Detection       []CellDelta `json:"detection,omitempty"`
	// Litmus lists the (tool, test) cells whose weak-outcome coverage moved.
	Litmus []LitmusDelta `json:"litmus,omitempty"`
	// Validation is present when both artifacts carry validation results.
	Validation *ValidationDelta `json:"validation,omitempty"`
	// OldP99NS/NewP99NS are the tool's p99 ns/exec from the merged per-cell
	// timing histograms (schema v4; zero when either artifact predates them).
	// Report-only: wall-clock quantiles are not comparable across machines,
	// so drift is surfaced in the report but never gates Regressed.
	OldP99NS uint64 `json:"old_p99_ns,omitempty"`
	NewP99NS uint64 `json:"new_p99_ns,omitempty"`
}

// Comparison diffs two campaign artifacts for PR-to-PR trajectory tracking.
// Tools and benchmarks are matched by name; entries present in only one
// artifact are listed as unmatched.
type Comparison struct {
	Tools        []ToolDelta `json:"tools"`
	UnmatchedOld []string    `json:"unmatched_old,omitempty"`
	UnmatchedNew []string    `json:"unmatched_new,omitempty"`
	OldWall      int64       `json:"old_wall_ns"`
	NewWall      int64       `json:"new_wall_ns"`
	OldSchemaVer int         `json:"old_schema_version"`
	NewSchemaVer int         `json:"new_schema_version"`
	// OldDropped/NewDropped are the artifacts' event-stream drop counters
	// (schema v4). A nonzero NewDropped means the new run's bounded event
	// channel overflowed — its JSONL stream is incomplete — and is gated as a
	// regression.
	OldDropped uint64 `json:"old_events_dropped,omitempty"`
	NewDropped uint64 `json:"new_events_dropped,omitempty"`
	// ProvenanceSkew lists build-provenance fields on which the two artifacts
	// disagree (schema v5). Report-only: wall-clock comparisons across builds
	// are already flagged as incomparable, and skew alone is not a regression.
	ProvenanceSkew []string `json:"provenance_skew,omitempty"`
}

// Compare diffs two campaign summaries.
func Compare(old, new *Summary) *Comparison {
	c := &Comparison{
		OldWall: old.WallNS, NewWall: new.WallNS,
		OldSchemaVer: old.SchemaVersion, NewSchemaVer: new.SchemaVersion,
	}
	if old.Obs != nil {
		c.OldDropped = old.Obs.EventsDropped
	}
	if new.Obs != nil {
		c.NewDropped = new.Obs.EventsDropped
	}
	c.ProvenanceSkew = old.Provenance.Skew(new.Provenance)
	oldTools := map[string]*ToolSummary{}
	for i := range old.Tools {
		oldTools[old.Tools[i].Tool] = &old.Tools[i]
	}
	matched := map[string]bool{}
	for i := range new.Tools {
		nt := &new.Tools[i]
		ot, ok := oldTools[nt.Tool]
		if !ok {
			c.UnmatchedNew = append(c.UnmatchedNew, nt.Tool)
			continue
		}
		matched[nt.Tool] = true
		td := ToolDelta{
			Tool:           nt.Tool,
			OldExecsPerSec: ot.ExecsPerSec, NewExecsPerSec: nt.ExecsPerSec,
		}
		if ot.ExecsPerSec > 0 {
			td.ThroughputRatio = nt.ExecsPerSec / ot.ExecsPerSec
		}
		td.NewRaceKeys, td.LostRaceKeys = diffRaceKeys(ot.Races, nt.Races)
		if sameAnalyzers(old.Spec.Analyzers, new.Spec.Analyzers) {
			lost, gained := diffOutcomes(findingIdents(ot.Findings), findingIdents(nt.Findings))
			td.LostFindingKeys, td.NewFindingKeys = lost, gained
		}

		oldCells := map[string]harness.DetectionSummary{}
		for _, cell := range ot.Benchmarks {
			oldCells[cell.Program] = cell.Detection
		}
		for _, cell := range nt.Benchmarks {
			od, ok := oldCells[cell.Program]
			if !ok {
				continue
			}
			td.Detection = append(td.Detection, CellDelta{
				Tool: nt.Tool, Benchmark: cell.Program,
				OldPct: od.RatePct, NewPct: cell.Detection.RatePct,
				DeltaPct: cell.Detection.RatePct - od.RatePct,
			})
		}

		oldLit := map[string]LitmusSummary{}
		for _, ls := range ot.Litmus {
			oldLit[ls.Test] = ls
		}
		for _, ls := range nt.Litmus {
			ols, ok := oldLit[ls.Test]
			if !ok {
				continue
			}
			lost, gained := diffOutcomes(ols.WeakSeen, ls.WeakSeen)
			if len(lost) == 0 && len(gained) == 0 {
				continue
			}
			td.Litmus = append(td.Litmus, LitmusDelta{
				Tool: nt.Tool, Test: ls.Test,
				OldWeak: len(ols.WeakSeen), NewWeak: len(ls.WeakSeen),
				WeakDefined:  ls.WeakDefined,
				LostOutcomes: lost, GainedOutcomes: gained,
			})
		}

		if ot.Validation != nil && nt.Validation != nil {
			td.Validation = &ValidationDelta{
				OldChecked: ot.Validation.Checked, NewChecked: nt.Validation.Checked,
				OldViolations: ot.Validation.Violations, NewViolations: nt.Validation.Violations,
			}
		}
		td.OldP99NS = toolP99(ot)
		td.NewP99NS = toolP99(nt)
		c.Tools = append(c.Tools, td)
	}
	for _, ot := range old.Tools {
		if !matched[ot.Tool] {
			c.UnmatchedOld = append(c.UnmatchedOld, ot.Tool)
		}
	}
	return c
}

// toolP99 merges a tool's per-cell ns/exec timing snapshots (schema v4) and
// returns the merged p99, or 0 when the artifact carries no timing data.
func toolP99(ts *ToolSummary) uint64 {
	merged := &obs.HistogramSnapshot{}
	for i := range ts.Benchmarks {
		merged.Merge(ts.Benchmarks[i].Timing)
	}
	for i := range ts.Litmus {
		merged.Merge(ts.Litmus[i].Timing)
	}
	return merged.P99
}

// sameAnalyzers reports whether two artifacts ran the same non-empty
// analyzer set, making their finding lists comparable.
func sameAnalyzers(old, new []string) bool {
	if len(old) == 0 || len(old) != len(new) {
		return false
	}
	for i := range old {
		if old[i] != new[i] {
			return false
		}
	}
	return true
}

// findingIdents renders a finding list as sortable identity strings
// ("analyzer program key"; litmus programs carry the litmus/ prefix).
func findingIdents(fs []FindingSummary) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		program := f.Program
		if f.Litmus {
			program = "litmus/" + program
		}
		out[i] = f.Analyzer + " " + program + " " + f.Key
	}
	return out
}

// diffOutcomes returns the outcomes only in old (lost) and only in new
// (gained), sorted. Inputs are the sorted WeakSeen lists of a litmus cell.
func diffOutcomes(old, new []string) (lost, gained []string) {
	oldSet := map[string]bool{}
	for _, o := range old {
		oldSet[o] = true
	}
	newSet := map[string]bool{}
	for _, o := range new {
		newSet[o] = true
		if !oldSet[o] {
			gained = append(gained, o)
		}
	}
	for _, o := range old {
		if !newSet[o] {
			lost = append(lost, o)
		}
	}
	sort.Strings(lost)
	sort.Strings(gained)
	return lost, gained
}

// diffRaceKeys returns the race keys only in new (added) and only in old
// (lost), sorted.
func diffRaceKeys(old, new []harness.RaceSummary) (added, lost []string) {
	keys := func(rs []harness.RaceSummary) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = r.Key
		}
		return out
	}
	lost, added = diffOutcomes(keys(old), keys(new))
	return added, lost
}

// Regressed reports whether the new artifact lost race keys, lost analyzer
// findings (schema v7, same-analyzer-set artifacts only), lost more than
// 10 percentage points of detection rate in any cell, lost litmus
// weak-outcome coverage, introduced axiomatic violations, or dropped
// telemetry events — the signals the PR trajectory check keys on. The
// weak-coverage and validation legs are what keep a perf optimisation from
// silently trading exploration quality for speed; the drop leg keeps the
// event stream trustworthy (p99 timing drift, by contrast, is report-only:
// wall clock is not comparable across machines).
func (c *Comparison) Regressed() bool {
	if c.NewDropped > 0 {
		return true
	}
	for _, td := range c.Tools {
		if len(td.LostRaceKeys) > 0 {
			return true
		}
		if len(td.LostFindingKeys) > 0 {
			return true
		}
		for _, d := range td.Detection {
			if d.DeltaPct < -10 {
				return true
			}
		}
		for _, ld := range td.Litmus {
			if len(ld.LostOutcomes) > 0 {
				return true
			}
		}
		if v := td.Validation; v != nil && v.NewViolations > v.OldViolations {
			return true
		}
	}
	return false
}

// String renders the human-readable comparison report.
func (c *Comparison) String() string {
	out := fmt.Sprintf("campaign comparison (old schema v%d, new schema v%d)\nwall clock: %s → %s\n",
		c.OldSchemaVer, c.NewSchemaVer,
		harness.FmtDuration(time.Duration(c.OldWall)), harness.FmtDuration(time.Duration(c.NewWall)))

	tb := &harness.Table{Header: []string{"tool", "execs/sec old", "execs/sec new", "ratio", "new races", "lost races"}}
	for _, td := range c.Tools {
		tb.AddRow(td.Tool,
			fmt.Sprintf("%.0f", td.OldExecsPerSec),
			fmt.Sprintf("%.0f", td.NewExecsPerSec),
			fmt.Sprintf("%.2f×", td.ThroughputRatio),
			fmt.Sprintf("%d", len(td.NewRaceKeys)),
			fmt.Sprintf("%d", len(td.LostRaceKeys)))
	}
	out += "\n" + tb.String()

	var cells []CellDelta
	for _, td := range c.Tools {
		for _, d := range td.Detection {
			if d.DeltaPct != 0 {
				cells = append(cells, d)
			}
		}
	}
	if len(cells) > 0 {
		dt := &harness.Table{Header: []string{"tool", "benchmark", "old", "new", "delta"}}
		for _, d := range cells {
			dt.AddRow(d.Tool, d.Benchmark,
				fmt.Sprintf("%5.1f%%", d.OldPct),
				fmt.Sprintf("%5.1f%%", d.NewPct),
				fmt.Sprintf("%+5.1f%%", d.DeltaPct))
		}
		out += "\ndetection-rate movement:\n" + dt.String()
	}
	var lits []LitmusDelta
	for _, td := range c.Tools {
		lits = append(lits, td.Litmus...)
	}
	if len(lits) > 0 {
		lt := &harness.Table{Header: []string{"tool", "litmus", "weak old", "weak new", "lost", "gained"}}
		for _, ld := range lits {
			lt.AddRow(ld.Tool, ld.Test,
				fmt.Sprintf("%d/%d", ld.OldWeak, ld.WeakDefined),
				fmt.Sprintf("%d/%d", ld.NewWeak, ld.WeakDefined),
				fmt.Sprintf("%d", len(ld.LostOutcomes)),
				fmt.Sprintf("%d", len(ld.GainedOutcomes)))
		}
		out += "\nweak-outcome coverage movement:\n" + lt.String()
	}
	for _, td := range c.Tools {
		if v := td.Validation; v != nil {
			out += fmt.Sprintf("\n%s: axiomatic validation: checked %d → %d, violations %d → %d",
				td.Tool, v.OldChecked, v.NewChecked, v.OldViolations, v.NewViolations)
		}
	}
	for _, td := range c.Tools {
		if td.OldP99NS > 0 && td.NewP99NS > 0 {
			out += fmt.Sprintf("\n%s: p99 ns/exec %s → %s (report-only)",
				td.Tool, harness.FmtDuration(time.Duration(td.OldP99NS)),
				harness.FmtDuration(time.Duration(td.NewP99NS)))
		}
	}
	if c.NewDropped > 0 {
		out += fmt.Sprintf("\nWARNING: new artifact dropped %d telemetry event(s) — its event stream is incomplete", c.NewDropped)
	}
	for _, skew := range c.ProvenanceSkew {
		out += fmt.Sprintf("\nWARNING: build provenance skew: %s — wall-clock comparisons are not meaningful", skew)
	}
	for _, td := range c.Tools {
		for _, k := range td.NewRaceKeys {
			out += fmt.Sprintf("\n%s: NEW race key %s", td.Tool, k)
		}
		for _, k := range td.LostRaceKeys {
			out += fmt.Sprintf("\n%s: LOST race key %s", td.Tool, k)
		}
		for _, k := range td.NewFindingKeys {
			out += fmt.Sprintf("\n%s: NEW analyzer finding %s", td.Tool, k)
		}
		for _, k := range td.LostFindingKeys {
			out += fmt.Sprintf("\n%s: LOST analyzer finding %s", td.Tool, k)
		}
		for _, ld := range td.Litmus {
			for _, o := range ld.LostOutcomes {
				out += fmt.Sprintf("\n%s: LOST weak outcome %s=%q", td.Tool, ld.Test, o)
			}
		}
	}
	if len(c.UnmatchedOld) > 0 {
		out += fmt.Sprintf("\ntools only in old artifact: %v", c.UnmatchedOld)
	}
	if len(c.UnmatchedNew) > 0 {
		out += fmt.Sprintf("\ntools only in new artifact: %v", c.UnmatchedNew)
	}
	if c.Regressed() {
		out += "\n\nREGRESSION: lost race keys, lost analyzer findings, a detection-rate drop > 10 points, lost weak-outcome coverage, new axiom violations, or dropped telemetry events\n"
	} else {
		out += "\n\nno regression detected\n"
	}
	return out
}
