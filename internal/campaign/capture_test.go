package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"c11tester/internal/explore"
	"c11tester/internal/litmus"
	"c11tester/internal/obs"
	"c11tester/internal/trace"
)

// captureSpec is the fixed matrix of the flight-recorder tests: benchmark
// cells that race (new-race triggers) plus litmus cells, under the converge
// policy so the stream also carries cell_converge_state snapshots.
func captureSpec(t *testing.T, workers int, dir string, tel *Telemetry) Spec {
	return Spec{
		Tools: []ToolSpec{
			mustTool(t, "c11tester", ToolOptions{}),
			mustTool(t, "tsan11", ToolOptions{}),
		},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
		Litmus:     []*litmus.Test{mustLitmus(t, "MP+rlx")},
		Runs:       40,
		SeedBase:   500,
		Workers:    workers,
		ShardSize:  7,
		Policy:     explore.Converge{},
		CaptureDir: dir,
		Telemetry:  tel,
	}
}

// TestCaptureDeterminismUnderSharding extends the workers=1 ≡ workers=K
// byte-identity to the forensics layer: the capture manifest must be
// byte-identical across worker counts, the event stream (including capture
// and cell_converge_state events) identical after canonical ordering, and at
// least one captured trace must replay exactly.
func TestCaptureDeterminismUnderSharding(t *testing.T) {
	run := func(workers int) (*Summary, []byte, string, []byte) {
		dir := t.TempDir()
		var buf bytes.Buffer
		tel := NewTelemetry(TelemetryOptions{EventSink: &buf})
		sum := Run(captureSpec(t, workers, dir, tel))
		man, err := os.ReadFile(filepath.Join(dir, obs.ManifestFileName))
		if err != nil {
			t.Fatalf("workers=%d: no manifest: %v", workers, err)
		}
		return sum, man, dir, buf.Bytes()
	}
	serialSum, serialMan, serialDir, serialRaw := run(1)
	shardSum, shardMan, _, shardRaw := run(4)

	if !bytes.Equal(serialMan, shardMan) {
		t.Errorf("capture manifests differ between workers=1 and workers=4:\nserial:  %s\nsharded: %s",
			serialMan, shardMan)
	}
	serialEv := canonicalEvents(t, serialRaw)
	shardEv := canonicalEvents(t, shardRaw)
	if !reflect.DeepEqual(serialEv, shardEv) {
		t.Errorf("event streams differ after canonical ordering (%d vs %d lines)",
			len(serialEv), len(shardEv))
	}

	// The stream carries the forensics event types.
	types := map[string]int{}
	for _, line := range serialEv {
		var m struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatal(err)
		}
		types[m.Type]++
	}
	if types["capture"] == 0 {
		t.Errorf("no capture events in stream (types: %v)", types)
	}
	if types["cell_converge_state"] == 0 {
		t.Errorf("no cell_converge_state events in stream (types: %v)", types)
	}

	man, err := obs.ReadManifest(filepath.Join(serialDir, obs.ManifestFileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Captures) == 0 {
		t.Fatal("racy matrix produced no captures")
	}
	for _, sum := range []*Summary{serialSum, shardSum} {
		total := 0
		for _, ts := range sum.Tools {
			total += ts.Captures
		}
		if total != len(man.Captures) {
			t.Errorf("summary counts %d captures, manifest has %d", total, len(man.Captures))
		}
		if sum.Spec.CaptureDir == "" {
			t.Error("summary does not echo the capture dir")
		}
	}

	// The summary report mentions the captures.
	if !strings.Contains(serialSum.String(), "flight recorder captured") {
		t.Error("report does not surface the captures")
	}

	// Every manifest entry is well-formed; count the trace-backed ones.
	traced := 0
	for _, c := range man.Captures {
		if c.Trigger == "" || c.Repro == "" {
			t.Errorf("malformed capture record: %+v", c)
		}
		if c.File != "" {
			traced++
		} else if c.Err == "" {
			t.Errorf("capture with neither trace nor error: %+v", c)
		}
	}
	if traced == 0 {
		t.Fatal("no capture produced a trace file")
	}

	// Exact-replay verification: every captured trace must re-drive to the
	// recorded race keys, outcome, and event stream.
	verified := 0
	for _, c := range man.Captures {
		if c.File == "" {
			continue
		}
		tr, err := trace.ReadFile(filepath.Join(serialDir, c.File))
		if err != nil {
			t.Fatalf("capture %s/%s seed %d: %v", c.Tool, c.Program, c.Seed, err)
		}
		if tr.Seed != c.Seed || tr.Program != c.Program {
			t.Fatalf("trace identity %s/%d does not match manifest entry %+v", tr.Program, tr.Seed, c)
		}
		sub, err := TraceSubject(tr)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := trace.Replay(tr, sub)
		if err != nil {
			t.Fatalf("capture %s replay: %v", c.File, err)
		}
		if err := tr.Verify(rr); err != nil {
			t.Errorf("capture %s failed exact replay: %v", c.File, err)
		}
		verified++
	}
	if verified == 0 {
		t.Fatal("verified no captures")
	}
}

// TestCaptureSlowNSRequiresCaptureDir pins the spec validation of the
// non-deterministic opt-in trigger.
func TestCaptureSlowNSRequiresCaptureDir(t *testing.T) {
	spec := Spec{
		Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
		Runs:       1, SeedBase: 1,
		CaptureSlowNS: true,
	}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "CaptureDir") {
		t.Fatalf("Validate() = %v, want CaptureSlowNS-requires-CaptureDir error", err)
	}
}
