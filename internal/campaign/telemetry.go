package campaign

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"c11tester/internal/core"
	"c11tester/internal/explore"
	"c11tester/internal/harness"
	"c11tester/internal/obs"
)

// Histogram bucket bounds shared by every cell of a campaign. Exponential
// base-2 bounds: execution latency and handoff wait from 1 µs to ~0.5 s,
// schedule length and choices from 8 to ~4M (the MaxSteps default).
var (
	nsBuckets    = obs.ExpBuckets(1<<10, 20)
	stepsBuckets = obs.ExpBuckets(8, 20)
)

// CellMetrics is the pre-bound metric handle set of one (tool, program)
// cell, registered at campaign setup. Shards of the same cell share one
// handle set (the counters are atomic), and the per-execution observation
// path allocates nothing — the property TestZeroAllocSteadyState pins with
// instrumentation enabled.
type CellMetrics struct {
	Execs    *obs.Counter
	Detected *obs.Counter
	Races    *obs.Counter // race reports first seen by the unit's tool instance
	Failures *obs.Counter

	ExecNS    *obs.Histogram
	SchedLen  *obs.Histogram
	Choices   *obs.Histogram
	HandoffNS *obs.Histogram

	// PhaseNS are the per-phase span histograms (schema v5 forensics),
	// indexed by core.Phase. The engine phases (reset, run, race) are fed by
	// ObserveExec when the engine measures them; validate and record are
	// campaign duties observed by the runner's post step, so their counts
	// track duty executions rather than all executions.
	PhaseNS [core.NumPhases]*obs.Histogram

	// Findings counts analyzer finding hits, parallel to Spec.Analyzers
	// (empty for campaigns without analyzers — the default set registers no
	// instruments and keeps the hot path allocation-free). cellAnalyzer.ix
	// indexes this slice even when some analyzers were skipped on the cell.
	Findings []*obs.Counter
}

// ObserveExec folds one completed execution into the cell's metrics: its
// wall time, and — when the tool is an engine — its schedule length, choice
// count, and handoff wait. The same method serves the campaign hot path and
// the zero-alloc test, so the pinned path is exactly the shipped path.
func (m *CellMetrics) ObserveExec(d time.Duration, eng *core.Engine) {
	m.Execs.Inc()
	m.ExecNS.Observe(uint64(d))
	if eng != nil {
		st := eng.ExecStats()
		m.SchedLen.Observe(st.Steps)
		m.Choices.Observe(st.Choices)
		m.HandoffNS.Observe(uint64(st.HandoffWaitNS))
		if eng.PhaseTiming() {
			m.PhaseNS[core.PhaseReset].Observe(uint64(st.PhaseNS[core.PhaseReset]))
			m.PhaseNS[core.PhaseRun].Observe(uint64(st.PhaseNS[core.PhaseRun]))
			m.PhaseNS[core.PhaseRace].Observe(uint64(st.PhaseNS[core.PhaseRace]))
		}
	}
}

// TelemetryOptions configures a campaign's telemetry fabric.
type TelemetryOptions struct {
	// EventSink receives the structured JSONL event stream; nil disables
	// events (metrics stay on — they are free).
	EventSink io.Writer
	// EventEcho receives a copy of every event line (the CLI -v flag).
	EventEcho io.Writer
	// EventDepth bounds the drainer channel; 0 means obs.DefaultStreamDepth.
	EventDepth int
	// Progress receives human-readable one-line wave/progress summaries
	// (the CLI writes stderr here unless -q); nil disables them.
	Progress io.Writer
	// Timestamps stamps events with wall-clock UnixNano times. Off, event
	// streams are byte-comparable across runs (the determinism tests rely
	// on this); on, consumers get real times.
	Timestamps bool
}

// Telemetry is one campaign's observability fabric: the metric registry with
// its per-cell handles, the event stream, and the live progress state behind
// /progress. Create one per campaign.Run; Run binds it to the spec's matrix,
// drives it, and closes the event stream before returning (the EventSink
// writer itself stays open — its opener owns it).
type Telemetry struct {
	opts   TelemetryOptions
	reg    *obs.Registry
	stream *obs.Stream

	// Campaign-level instruments.
	wavesC     *obs.Counter
	emittedG   *obs.Gauge
	droppedG   *obs.Gauge
	racesG     *obs.Gauge
	convergedG *obs.Gauge
	plannedG   *obs.Gauge

	// Matrix binding (bind). benchMet[t][c] / litMet[t][c] parallel
	// Spec.Benchmarks and Spec.Litmus per tool.
	bound    bool
	spec     Spec
	benchMet [][]*CellMetrics
	litMet   [][]*CellMetrics

	mu            sync.Mutex
	start         time.Time
	running       bool
	waves         int
	raceKeys      map[string]bool // "tool\x00key" — campaign-distinct races
	failures      int
	converged     map[cellKey]bool
	convergeSnaps map[cellKey]*explore.TrackerState
	provenance    *Provenance
	execsPlanned  int
	// Trailing-throughput ring for the /progress ETA.
	samples   []progressSample
	sampleAt  int
	lastLine  int // execsDone at the last periodic progress line
	lineEvery int
}

type progressSample struct {
	at    time.Time
	execs uint64
}

const progressSampleRing = 64

// NewTelemetry returns a telemetry fabric ready to be passed via
// Spec.Telemetry. The registry exists immediately (so a status server can
// start before the campaign); per-cell handles appear when Run binds it.
func NewTelemetry(opts TelemetryOptions) *Telemetry {
	t := &Telemetry{
		opts:          opts,
		reg:           obs.NewRegistry(),
		raceKeys:      map[string]bool{},
		converged:     map[cellKey]bool{},
		convergeSnaps: map[cellKey]*explore.TrackerState{},
		provenance:    BuildProvenance(),
	}
	t.wavesC = t.reg.Counter("c11_campaign_waves_total", "campaign waves completed")
	t.emittedG = t.reg.Gauge("c11_campaign_events_emitted", "structured events queued to the stream")
	t.droppedG = t.reg.Gauge("c11_campaign_events_dropped", "structured events dropped (bounded channel full)")
	t.racesG = t.reg.Gauge("c11_campaign_distinct_races", "distinct race keys observed so far")
	t.convergedG = t.reg.Gauge("c11_campaign_cells_converged", "cells whose statistics converged")
	t.plannedG = t.reg.Gauge("c11_campaign_execs_planned", "planned executions (runs × cells)")
	if opts.EventSink != nil {
		t.stream = obs.NewStream(opts.EventSink, opts.EventEcho, opts.EventDepth)
	}
	return t
}

// Registry returns the metric registry (the obs.Server's /metrics source).
func (t *Telemetry) Registry() *obs.Registry { return t.reg }

// EventsEmitted and EventsDropped report the stream counters (both zero when
// no EventSink was configured).
func (t *Telemetry) EventsEmitted() uint64 {
	if t.stream == nil {
		return 0
	}
	return t.stream.Emitted()
}

// EventsDropped reports events lost to a full drainer channel; any nonzero
// value fails the campaign's observability gate.
func (t *Telemetry) EventsDropped() uint64 {
	if t.stream == nil {
		return 0
	}
	return t.stream.Dropped()
}

// syncEvents flushes every queued event line through to the sink. Checkpoint
// writes call it so a persisted barrier never references events still in the
// drainer's buffer.
func (t *Telemetry) syncEvents() {
	if t.stream != nil {
		_ = t.stream.Sync()
	}
}

// bind registers the per-cell metric handles for spec's matrix. Run calls it
// once; binding a Telemetry to a second campaign is a programming error.
func (t *Telemetry) bind(spec Spec) {
	if t.bound {
		panic("campaign: Telemetry bound to a second campaign; create one per Run")
	}
	t.bound = true
	t.spec = spec
	newCell := func(tool, program string) *CellMetrics {
		lt := obs.Label{Name: "tool", Value: tool}
		lp := obs.Label{Name: "program", Value: program}
		m := &CellMetrics{
			Execs:     t.reg.Counter("c11_cell_execs_total", "executions completed", lt, lp),
			Detected:  t.reg.Counter("c11_cell_detected_total", "executions that hit the cell's detection signal", lt, lp),
			Races:     t.reg.Counter("c11_cell_races_total", "race reports first seen by a unit's tool instance", lt, lp),
			Failures:  t.reg.Counter("c11_cell_failures_total", "executions the tool aborted (infeasible model state)", lt, lp),
			ExecNS:    t.reg.Histogram("c11_cell_exec_ns", "wall time per execution (ns)", nsBuckets, lt, lp),
			SchedLen:  t.reg.Histogram("c11_cell_sched_len", "schedule length (visible operations) per execution", stepsBuckets, lt, lp),
			Choices:   t.reg.Histogram("c11_cell_choices", "strategy decisions per execution", stepsBuckets, lt, lp),
			HandoffNS: t.reg.Histogram("c11_cell_handoff_wait_ns", "scheduler handoff wait per execution (ns)", nsBuckets, lt, lp),
		}
		for p := 0; p < core.NumPhases; p++ {
			m.PhaseNS[p] = t.reg.Histogram("c11_cell_phase_ns", "per-phase span time per execution (ns)",
				nsBuckets, lt, lp, obs.Label{Name: "phase", Value: core.Phase(p).String()})
		}
		for _, name := range spec.Analyzers {
			m.Findings = append(m.Findings, t.reg.Counter("c11_analyzer_findings_total",
				"analyzer finding hits", lt, lp, obs.Label{Name: "analyzer", Value: name}))
		}
		return m
	}
	t.benchMet = make([][]*CellMetrics, len(spec.Tools))
	t.litMet = make([][]*CellMetrics, len(spec.Tools))
	for i, tool := range spec.Tools {
		t.benchMet[i] = make([]*CellMetrics, len(spec.Benchmarks))
		for b, bench := range spec.Benchmarks {
			t.benchMet[i][b] = newCell(tool.Name, bench.Name)
		}
		t.litMet[i] = make([]*CellMetrics, len(spec.Litmus))
		for l, test := range spec.Litmus {
			t.litMet[i][l] = newCell(tool.Name, test.Name)
		}
	}
	cellExecs := spec.Runs
	if spec.Shard.Count > 1 {
		// A sharded run only plans its round-robin share of each cell's chunk
		// sequence (every cell deals identically, so one cell's share scales).
		cellExecs = 0
		ord := 0
		for lo := 0; lo < spec.Runs; lo += spec.ShardSize {
			hi := lo + spec.ShardSize
			if hi > spec.Runs {
				hi = spec.Runs
			}
			if ord%spec.Shard.Count == spec.Shard.Index {
				cellExecs += hi - lo
			}
			ord++
		}
	}
	t.execsPlanned = cellExecs * len(spec.Tools) * (len(spec.Benchmarks) + len(spec.Litmus))
	t.plannedG.Set(int64(t.execsPlanned))
	// Aim for ~10 periodic progress lines on uniform campaigns; wave
	// barriers print their own lines either way.
	t.lineEvery = t.execsPlanned / 10
	if t.lineEvery < spec.ShardSize {
		t.lineEvery = spec.ShardSize
	}
}

// cellMetrics returns the pre-bound handles for one job's cell.
func (t *Telemetry) cellMetrics(j job) *CellMetrics {
	if !t.bound {
		return nil
	}
	if j.kind == jobLitmus {
		return t.litMet[j.tool][j.cell]
	}
	return t.benchMet[j.tool][j.cell]
}

// Event is one structured JSONL event. Every event carries the schema
// version ("v") and a type; the other fields are type-dependent and omitted
// when empty. With TelemetryOptions.Timestamps, "t" is the wall-clock
// UnixNano emission time; without it the stream is a pure function of the
// campaign outcome (up to line order — workers emit concurrently), which is
// what the determinism tests compare after canonical ordering.
type Event struct {
	V    int    `json:"v"`
	Type string `json:"type"`
	T    int64  `json:"t,omitempty"`

	Wave    int    `json:"wave,omitempty"` // 1-based
	Tool    string `json:"tool,omitempty"`
	Program string `json:"program,omitempty"`
	Litmus  bool   `json:"litmus,omitempty"`
	Lo      int    `json:"lo,omitempty"`
	Hi      int    `json:"hi,omitempty"`

	Execs     int `json:"execs,omitempty"`
	Races     int `json:"races,omitempty"`
	Detected  int `json:"detected,omitempty"`
	Failures  int `json:"failures,omitempty"`
	Recorded  int `json:"recorded,omitempty"`
	Jobs      int `json:"jobs,omitempty"`
	Cells     int `json:"cells,omitempty"`
	Converged int `json:"converged,omitempty"`
	Count     int `json:"count,omitempty"`

	Seed    int64  `json:"seed,omitempty"`
	Key     string `json:"key,omitempty"`
	Desc    string `json:"desc,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	Err     string `json:"error,omitempty"`
	Repro   string `json:"repro,omitempty"`
	// Analyzer labels "analyzer_finding" events (schema v7 campaigns).
	Analyzer string `json:"analyzer,omitempty"`

	// Trigger and File belong to "capture" events (the flight recorder's
	// manifest entries, re-emitted on the stream so a live consumer sees
	// captures as they land); Converge belongs to "cell_converge_state".
	Trigger  string                `json:"trigger,omitempty"`
	File     string                `json:"file,omitempty"`
	Converge *explore.TrackerState `json:"converge,omitempty"`

	Budget *BudgetSummary `json:"budget,omitempty"`
	Spec   *SpecInfo      `json:"spec,omitempty"`
}

// emit stamps and queues one event (no-op without an EventSink).
func (t *Telemetry) emit(ev Event) {
	if t.stream == nil {
		return
	}
	ev.V = obs.EventSchemaVersion
	if t.opts.Timestamps {
		ev.T = time.Now().UnixNano()
	}
	t.stream.Emit(ev)
	t.emittedG.Set(int64(t.stream.Emitted()))
	t.droppedG.Set(int64(t.stream.Dropped()))
}

// campaignStart marks the campaign running and emits the start event with
// the spec echo.
func (t *Telemetry) campaignStart(info SpecInfo) {
	t.mu.Lock()
	t.start = time.Now()
	t.running = true
	t.mu.Unlock()
	t.emit(Event{Type: "campaign_start", Spec: &info})
}

// unitStart emits the cell_start event for one unit of work (a shard or an
// adaptive grant). budget is the unit's execution-index budget; the actual
// end lands in cell_end.
func (t *Telemetry) unitStart(wave int, j job, budget int) {
	t.emit(Event{Type: "cell_start", Wave: wave,
		Tool: t.spec.Tools[j.tool].Name, Program: t.programOf(j), Litmus: j.kind == jobLitmus,
		Lo: j.lo, Hi: j.lo + budget})
}

func (t *Telemetry) programOf(j job) string {
	if j.kind == jobLitmus {
		return t.spec.Litmus[j.cell].Name
	}
	return t.spec.Benchmarks[j.cell].Name
}

// unitDone folds one completed unit into the campaign-level progress state
// and emits its events: race_first_seen (per race key new to the unit's tool
// instance, with the repro triple of the unit's earliest execution showing
// it), analyzer_finding (per deduplicated finding, repro flags including the
// -analyzers selection), forbidden_outcome, engine_failure, trace_recorded,
// and cell_end. All
// event contents derive from the fragment — a pure function of the job —
// so the event set is identical for any worker count; only line order varies.
func (t *Telemetry) unitDone(wave int, j job, frag *fragment) {
	toolSpec := t.spec.Tools[j.tool]
	program := t.programOf(j)
	litmus := j.kind == jobLitmus

	repro := func(run int) string {
		return harness.Repro{Tool: toolSpec.Name, Program: program,
			Seed: t.spec.SeedBase + int64(run), Litmus: litmus,
			Flags: toolSpec.ReproFlags}.Command()
	}
	for _, key := range harness.SortedKeys(frag.races) {
		hit := frag.races[key]
		t.emit(Event{Type: "race_first_seen", Wave: wave,
			Tool: toolSpec.Name, Program: program, Litmus: litmus,
			Key: key, Desc: hit.desc,
			Seed: t.spec.SeedBase + int64(hit.run), Repro: repro(hit.run)})
	}
	for _, id := range sortedFindingIDs(frag.findings) {
		hit := frag.findings[id]
		t.emit(Event{Type: "analyzer_finding", Wave: wave,
			Tool: toolSpec.Name, Program: program, Litmus: litmus,
			Analyzer: id.analyzer, Key: id.key, Desc: hit.desc, Count: hit.count,
			Seed: t.spec.SeedBase + int64(hit.run),
			Repro: harness.Repro{Tool: toolSpec.Name, Program: program,
				Seed: t.spec.SeedBase + int64(hit.run), Litmus: litmus,
				Flags: strings.TrimSpace(toolSpec.ReproFlags + " -analyzers " + id.analyzer)}.Command()})
	}
	for _, out := range harness.SortedKeys(frag.forbidden) {
		first := frag.forbidden[out]
		t.emit(Event{Type: "forbidden_outcome", Wave: wave,
			Tool: toolSpec.Name, Program: program, Litmus: true,
			Outcome: out, Count: frag.outcomes[out],
			Seed: t.spec.SeedBase + int64(first), Repro: repro(first)})
	}
	for _, fl := range frag.failures {
		t.emit(Event{Type: "engine_failure", Wave: wave,
			Tool: toolSpec.Name, Program: program, Litmus: litmus,
			Err: fl.err, Seed: t.spec.SeedBase + int64(fl.run), Repro: repro(fl.run)})
	}
	if frag.recorded > 0 {
		t.emit(Event{Type: "trace_recorded", Wave: wave,
			Tool: toolSpec.Name, Program: program, Litmus: litmus,
			Recorded: frag.recorded, Lo: j.lo, Hi: j.hi})
	}
	for i := range frag.captures {
		c := &frag.captures[i]
		t.emit(Event{Type: "capture", Wave: wave,
			Tool: c.Tool, Program: c.Program, Litmus: c.Litmus,
			Seed: c.Seed, Trigger: c.Trigger, File: c.File,
			Outcome: c.Outcome, Err: c.Err, Repro: c.Repro})
	}
	t.emit(Event{Type: "cell_end", Wave: wave,
		Tool: toolSpec.Name, Program: program, Litmus: litmus,
		Lo: j.lo, Hi: j.hi, Execs: frag.execs, Races: len(frag.races),
		Detected: frag.detected, Failures: frag.failed})

	t.mu.Lock()
	for key := range frag.races {
		t.raceKeys[toolSpec.Name+"\x00"+key] = true
	}
	t.racesG.Set(int64(len(t.raceKeys)))
	t.failures += frag.failed
	done := t.execsDoneLocked()
	t.samples = append(t.samples, progressSample{at: time.Now(), execs: done})
	if len(t.samples) > progressSampleRing {
		t.samples = t.samples[len(t.samples)-progressSampleRing:]
	}
	var line string
	if t.opts.Progress != nil && t.lineEvery > 0 && int(done)-t.lastLine >= t.lineEvery {
		t.lastLine = int(done)
		line = fmt.Sprintf("progress: %d/%d execs, %d distinct race(s), %d failure(s)\n",
			done, t.execsPlanned, len(t.raceKeys), t.failures)
	}
	t.mu.Unlock()
	if line != "" {
		fmt.Fprint(t.opts.Progress, line)
	}
}

// execsDoneLocked sums the per-cell execution counters (caller holds mu; the
// counters themselves are atomics updated by workers).
func (t *Telemetry) execsDoneLocked() uint64 {
	var n uint64
	for _, row := range t.benchMet {
		for _, m := range row {
			n += m.Execs.Load()
		}
	}
	for _, row := range t.litMet {
		for _, m := range row {
			n += m.Execs.Load()
		}
	}
	return n
}

// waveStart emits the wave_start event.
func (t *Telemetry) waveStart(wave, jobs int) {
	t.emit(Event{Type: "wave_start", Wave: wave, Jobs: jobs})
}

// cellConverged records a newly converged cell and emits its event with the
// budget report so far.
func (t *Telemetry) cellConverged(wave int, j job, used int) {
	key := cellKey{kind: j.kind, tool: j.tool, cell: j.cell}
	t.mu.Lock()
	t.converged[key] = true
	t.convergedG.Set(int64(len(t.converged)))
	t.mu.Unlock()
	extended := used - t.spec.Runs
	if extended < 0 {
		extended = 0
	}
	t.emit(Event{Type: "cell_converged", Wave: wave,
		Tool: t.spec.Tools[j.tool].Name, Program: t.programOf(j), Litmus: j.kind == jobLitmus,
		Budget: &BudgetSummary{Planned: t.spec.Runs, Used: used, Extended: extended, Converged: true}})
}

// convergeState snapshots one cell's tracker for /debug/converge and emits
// the cell_converge_state event. The adaptive planner calls it at the wave
// barrier — a single-threaded point where the tracker has folded exactly the
// wave's observations in index order — so the snapshot (and the event) is a
// pure function of the cell's observation stream, identical for any worker
// count. Trackers that cannot explain themselves (Uniform) are skipped.
func (t *Telemetry) convergeState(wave int, j job, tracker explore.Tracker) {
	in, ok := tracker.(explore.Introspector)
	if !ok {
		return
	}
	st := in.State()
	key := cellKey{kind: j.kind, tool: j.tool, cell: j.cell}
	t.mu.Lock()
	t.convergeSnaps[key] = &st
	t.mu.Unlock()
	t.emit(Event{Type: "cell_converge_state", Wave: wave,
		Tool: t.spec.Tools[j.tool].Name, Program: t.programOf(j), Litmus: j.kind == jobLitmus,
		Converge: &st})
}

// ConvergeCell is one cell's row in the /debug/converge payload.
type ConvergeCell struct {
	Tool    string                `json:"tool"`
	Program string                `json:"program"`
	Litmus  bool                  `json:"litmus,omitempty"`
	State   *explore.TrackerState `json:"state"`
}

// ConvergeSnapshot returns the latest per-cell tracker snapshots in canonical
// matrix order (tool-major, benchmarks before litmus) — the /debug/converge
// payload. Cells whose tracker has not reached a wave barrier yet (or whose
// policy has no introspection) are omitted.
func (t *Telemetry) ConvergeSnapshot() []ConvergeCell {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []ConvergeCell
	if !t.bound {
		return out
	}
	add := func(kind jobKind, ti, ci int, program string) {
		if st := t.convergeSnaps[cellKey{kind: kind, tool: ti, cell: ci}]; st != nil {
			out = append(out, ConvergeCell{
				Tool: t.spec.Tools[ti].Name, Program: program,
				Litmus: kind == jobLitmus, State: st})
		}
	}
	for ti := range t.spec.Tools {
		for b, bench := range t.spec.Benchmarks {
			add(jobBench, ti, b, bench.Name)
		}
		for l, test := range t.spec.Litmus {
			add(jobLitmus, ti, l, test.Name)
		}
	}
	return out
}

// waveEnd emits the wave_end event, bumps the wave counter, and prints the
// per-wave progress line.
func (t *Telemetry) waveEnd(wave, jobs, waveExecs int) {
	t.wavesC.Inc()
	t.mu.Lock()
	t.waves = wave
	done := t.execsDoneLocked()
	races := len(t.raceKeys)
	conv := len(t.converged)
	fails := t.failures
	cells := 0
	if t.bound {
		cells = len(t.spec.Tools) * (len(t.spec.Benchmarks) + len(t.spec.Litmus))
	}
	t.mu.Unlock()
	t.emit(Event{Type: "wave_end", Wave: wave, Jobs: jobs, Execs: waveExecs,
		Cells: cells, Converged: conv})
	if t.opts.Progress != nil {
		fmt.Fprintf(t.opts.Progress, "wave %d: %d/%d execs, %d/%d cells converged, %d distinct race(s), %d failure(s)\n",
			wave, done, t.execsPlanned, conv, cells, races, fails)
	}
}

// campaignEnd emits the final event and stops the stream, waiting for the
// drainer to flush everything queued. Run calls it last.
func (t *Telemetry) campaignEnd(execs int) {
	t.mu.Lock()
	t.running = false
	races := len(t.raceKeys)
	conv := len(t.converged)
	fails := t.failures
	cells := 0
	if t.bound {
		cells = len(t.spec.Tools) * (len(t.spec.Benchmarks) + len(t.spec.Litmus))
	}
	t.mu.Unlock()
	t.emit(Event{Type: "campaign_end", Execs: execs, Races: races,
		Failures: fails, Cells: cells, Converged: conv})
	if t.stream != nil {
		_ = t.stream.Close()
		t.emittedG.Set(int64(t.stream.Emitted()))
		t.droppedG.Set(int64(t.stream.Dropped()))
	}
}

// ProgressCell is one cell's row in the /progress snapshot.
type ProgressCell struct {
	Tool      string `json:"tool"`
	Program   string `json:"program"`
	Litmus    bool   `json:"litmus,omitempty"`
	Done      uint64 `json:"done"`
	Planned   int    `json:"planned"`
	Races     uint64 `json:"races"`
	Failures  uint64 `json:"failures"`
	Converged bool   `json:"converged,omitempty"`
	MeanNS    uint64 `json:"mean_ns,omitempty"`
}

// ProgressSnapshot is the /progress payload: campaign totals, an ETA from
// trailing throughput, and per-cell progress. Planned counts are the initial
// per-cell budget (adaptive policies may stop cells early or extend them).
type ProgressSnapshot struct {
	Running        bool           `json:"running"`
	WallNS         int64          `json:"wall_ns"`
	ExecsDone      uint64         `json:"execs_done"`
	ExecsPlanned   int            `json:"execs_planned"`
	ExecsPerSec    float64        `json:"execs_per_sec"`
	ETANS          int64          `json:"eta_ns,omitempty"`
	Waves          int            `json:"waves"`
	DistinctRaces  int            `json:"races"`
	Failures       int            `json:"failures"`
	CellsConverged int            `json:"cells_converged"`
	EventsEmitted  uint64         `json:"events_emitted"`
	EventsDropped  uint64         `json:"events_dropped"`
	Provenance     *Provenance    `json:"provenance,omitempty"`
	Cells          []ProgressCell `json:"cells,omitempty"`
}

// Progress builds the live snapshot behind /progress. The rate (and the ETA
// derived from it) comes from the trailing sample ring — recent unit
// completions — so it tracks the current throughput, not the campaign mean.
func (t *Telemetry) Progress() *ProgressSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &ProgressSnapshot{
		Running:        t.running,
		ExecsPlanned:   t.execsPlanned,
		Waves:          t.waves,
		DistinctRaces:  len(t.raceKeys),
		Failures:       t.failures,
		CellsConverged: len(t.converged),
		EventsEmitted:  t.EventsEmitted(),
		EventsDropped:  t.EventsDropped(),
		Provenance:     t.provenance,
	}
	if !t.start.IsZero() {
		s.WallNS = int64(time.Since(t.start))
	}
	if !t.bound {
		return s
	}
	s.ExecsDone = t.execsDoneLocked()
	if n := len(t.samples); n >= 2 {
		first, last := t.samples[0], t.samples[n-1]
		if dt := last.at.Sub(first.at); dt > 0 && last.execs > first.execs {
			s.ExecsPerSec = float64(last.execs-first.execs) / dt.Seconds()
			if remaining := t.execsPlanned - int(s.ExecsDone); remaining > 0 && s.Running {
				s.ETANS = int64(float64(remaining) / s.ExecsPerSec * float64(time.Second))
			}
		}
	}
	cell := func(kind jobKind, toolIdx, cellIdx int, program string, m *CellMetrics) ProgressCell {
		return ProgressCell{
			Tool: t.spec.Tools[toolIdx].Name, Program: program, Litmus: kind == jobLitmus,
			Done: m.Execs.Load(), Planned: t.spec.Runs,
			Races: m.Races.Load(), Failures: m.Failures.Load(),
			Converged: t.converged[cellKey{kind: kind, tool: toolIdx, cell: cellIdx}],
			MeanNS:    meanOf(m.ExecNS),
		}
	}
	for ti := range t.spec.Tools {
		for b, bench := range t.spec.Benchmarks {
			s.Cells = append(s.Cells, cell(jobBench, ti, b, bench.Name, t.benchMet[ti][b]))
		}
		for l, test := range t.spec.Litmus {
			s.Cells = append(s.Cells, cell(jobLitmus, ti, l, test.Name, t.litMet[ti][l]))
		}
	}
	return s
}

func meanOf(h *obs.Histogram) uint64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / n
	}
	return 0
}

// timingSnapshot returns the final ns/exec histogram snapshot of one cell
// (the schema v4 summary payload), or nil for an unbound telemetry.
func (t *Telemetry) timingSnapshot(kind jobKind, tool, cell int) *obs.HistogramSnapshot {
	if !t.bound {
		return nil
	}
	var m *CellMetrics
	if kind == jobLitmus {
		m = t.litMet[tool][cell]
	} else {
		m = t.benchMet[tool][cell]
	}
	return m.ExecNS.Snapshot()
}

// phaseSnapshots returns one cell's per-phase span histograms keyed by phase
// name (the schema v5 summary payload). Phases with no observations — every
// phase when phase timing was off, validate/record when the campaign had no
// such duties — are omitted; nil when nothing was observed at all.
func (t *Telemetry) phaseSnapshots(kind jobKind, tool, cell int) map[string]*obs.HistogramSnapshot {
	if !t.bound {
		return nil
	}
	var m *CellMetrics
	if kind == jobLitmus {
		m = t.litMet[tool][cell]
	} else {
		m = t.benchMet[tool][cell]
	}
	var out map[string]*obs.HistogramSnapshot
	for p := 0; p < core.NumPhases; p++ {
		if m.PhaseNS[p].Count() == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]*obs.HistogramSnapshot, core.NumPhases)
		}
		out[core.Phase(p).String()] = m.PhaseNS[p].Snapshot()
	}
	return out
}

// WriteEngineFailures prints every sampled engine-failure repro triple of a
// summary to w, one "ENGINE FAILURE" block per sample. It is the shared
// formatting helper of the c11tester and litmus CLIs (both print to stderr),
// and returns the total failure count across all tools.
func WriteEngineFailures(w io.Writer, s *Summary) int {
	total := 0
	for _, ts := range s.Tools {
		total += ts.EngineFailures
		for _, f := range ts.FailureSamples {
			fmt.Fprintf(w, "%s: ENGINE FAILURE: %s\n  repro: %s\n", ts.Tool, f.Error, f.Repro.Command())
		}
	}
	return total
}

// PerfProgress is the lightweight telemetry of a c11bench perf run: cell and
// execution counters RunPerf updates, registered on reg so a -status-addr
// server can serve them. The per-execution increment is one atomic add —
// nothing that would disturb the measured allocation window.
type PerfProgress struct {
	CellsTotal *obs.Gauge
	CellsDone  *obs.Counter
	Execs      *obs.Counter

	mu      sync.Mutex
	start   time.Time
	current string
}

// NewPerfProgress registers the perf-run instruments on reg.
func NewPerfProgress(reg *obs.Registry) *PerfProgress {
	return &PerfProgress{
		CellsTotal: reg.Gauge("c11bench_cells", "cells in the perf sweep"),
		CellsDone:  reg.Counter("c11bench_cells_done_total", "cells measured so far"),
		Execs:      reg.Counter("c11bench_execs_total", "executions run (warmup + measured)"),
	}
}

func (p *PerfProgress) begin(cells int) {
	p.mu.Lock()
	p.start = time.Now()
	p.mu.Unlock()
	p.CellsTotal.Set(int64(cells))
}

func (p *PerfProgress) setCurrent(name string) {
	p.mu.Lock()
	p.current = name
	p.mu.Unlock()
}

// Snapshot is the /progress payload of a perf run.
func (p *PerfProgress) Snapshot() any {
	p.mu.Lock()
	current := p.current
	var wall int64
	if !p.start.IsZero() {
		wall = int64(time.Since(p.start))
	}
	p.mu.Unlock()
	return map[string]any{
		"running":    current != "",
		"wall_ns":    wall,
		"cells":      p.CellsTotal.Load(),
		"cells_done": p.CellsDone.Load(),
		"execs_done": p.Execs.Load(),
		"current":    current,
	}
}
