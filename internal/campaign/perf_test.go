package campaign

import (
	"path/filepath"
	"testing"
)

func TestRunPerfProducesArtifact(t *testing.T) {
	spec, err := StandardTool("c11tester", ToolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	benches, err := SelectBenchmarks("seqlock")
	if err != nil {
		t.Fatal(err)
	}
	lits, err := SelectLitmus("MP+rel+acq")
	if err != nil {
		t.Fatal(err)
	}
	sum := RunPerf(PerfSpec{
		Tools: []ToolSpec{spec}, Benchmarks: benches, Litmus: lits,
		Runs: 4, Warmup: 2, SeedBase: 1,
	})
	if sum.Schema != PerfSchemaName || sum.SchemaVersion != PerfSchemaVersion {
		t.Fatalf("schema header %q v%d", sum.Schema, sum.SchemaVersion)
	}
	if len(sum.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(sum.Cells))
	}
	for _, c := range sum.Cells {
		if c.Execs != 4 {
			t.Errorf("%s/%s execs = %d, want 4", c.Tool, c.Program, c.Execs)
		}
		if c.NsPerExec <= 0 {
			t.Errorf("%s/%s ns/exec = %v, want > 0", c.Tool, c.Program, c.NsPerExec)
		}
		if c.AtomicOpsPerExec <= 0 {
			t.Errorf("%s/%s atomic ops/exec = %v, want > 0", c.Tool, c.Program, c.AtomicOpsPerExec)
		}
	}
	if len(sum.Tools) != 1 || sum.Tools[0].Execs != 8 {
		t.Fatalf("tool totals wrong: %+v", sum.Tools)
	}
	if sum.String() == "" {
		t.Fatal("empty report")
	}

	path := filepath.Join(t.TempDir(), "BENCH_perf.json")
	if err := sum.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPerfSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.SchemaVersion != sum.SchemaVersion || len(loaded.Cells) != len(sum.Cells) {
		t.Fatalf("roundtrip mismatch: %+v", loaded)
	}
}

func TestLoadPerfSummaryRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	sum := &PerfSummary{Schema: "other/schema", SchemaVersion: 1}
	if err := sum.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPerfSummary(path); err == nil {
		t.Fatal("wrong schema must be rejected")
	}
}
