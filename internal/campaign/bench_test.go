package campaign

import "testing"

// Full-matrix and litmus-heavy campaign shapes, benchmarked end to end
// (shard loop, tool construction, aggregation). Workers=1 keeps the numbers
// serial and comparable to cmd/c11bench's per-execution costs.

func mkBenchCampaign(b *testing.B, tools string, benchSel, litSel string, runs int) Spec {
	b.Helper()
	var spec Spec
	for _, name := range SplitList(tools) {
		ts, err := StandardTool(name, ToolOptions{})
		if err != nil {
			b.Fatal(err)
		}
		spec.Tools = append(spec.Tools, ts)
	}
	var err error
	spec.Benchmarks, err = SelectBenchmarks(benchSel)
	if err != nil {
		b.Fatal(err)
	}
	spec.Litmus, err = SelectLitmus(litSel)
	if err != nil {
		b.Fatal(err)
	}
	spec.Runs = runs
	spec.SeedBase = 1
	spec.Workers = 1
	return spec
}

// BenchmarkCampaignFullMatrix is the 3-tool × (benchmark + litmus) matrix at
// a small run count: the shape of the committed BENCH_campaign.json runs.
func BenchmarkCampaignFullMatrix(b *testing.B) {
	spec := mkBenchCampaign(b, "c11tester,tsan11,tsan11rec", "ms-queue,seqlock", "MP+rel+acq,SB+sc", 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(spec)
	}
}

// BenchmarkCampaignLitmusHeavy sweeps the whole litmus suite under the full
// C11 model — the 1300-execution CI campaign's shape, scaled by -benchtime.
func BenchmarkCampaignLitmusHeavy(b *testing.B) {
	spec := mkBenchCampaign(b, "c11tester", "none", "all", 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(spec)
	}
}

// BenchmarkSingleExecutionSteadyState is the per-execution cost on a pooled
// engine, the number BENCH_perf.json tracks.
func BenchmarkSingleExecutionSteadyState(b *testing.B) {
	spec, err := StandardTool("c11tester", ToolOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var out string
	tests, err := SelectLitmus("IRIW+acq")
	if err != nil || len(tests) != 1 {
		b.Fatalf("litmus selection: %v", err)
	}
	p := tests[0].Make(&out)
	tool := spec.New()
	for i := 0; i < 3; i++ {
		out = ""
		tool.Execute(p, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = ""
		tool.Execute(p, int64(i))
	}
}
