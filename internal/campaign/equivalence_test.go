package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"testing"

	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/trace"
)

// execDigest is the complete observable outcome of one execution. The pooled
// engine's arenas must be observationally invisible: executing seed s as the
// (i+1)-th execution of a reused engine must produce byte-identical results
// to executing it on a fresh engine.
type execDigest struct {
	RaceKeys       []string
	Outcome        string
	FinalValues    map[string]uint64
	Deadlocked     bool
	Truncated      bool
	AssertFailures int
	// TraceJSON is the full serialized trace (events, rf edges, per-location
	// modification orders, schedule) for tools whose model exposes total
	// modification orders; "" otherwise.
	TraceJSON string
}

func digestOf(t *testing.T, eng *core.Engine, rec *trace.Recorder, res *capi.Result, program string, isLit bool, outcome string, seed int64) execDigest {
	t.Helper()
	keys := map[string]bool{}
	for _, r := range res.Races {
		keys[r.Key()] = true
	}
	var sorted []string
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	fv := map[string]uint64{}
	for k, v := range eng.FinalValues() {
		fv[k] = uint64(v)
	}
	d := execDigest{
		RaceKeys: sorted, Outcome: outcome, FinalValues: fv,
		Deadlocked: res.Deadlocked, Truncated: res.Truncated,
		AssertFailures: len(res.AssertFailures),
	}
	if _, ok := eng.Model().(core.MOProvider); ok {
		tr, err := trace.Record(eng, res, rec.Schedule(), trace.Meta{
			Tool: trace.ToolConfig{Name: eng.Name()}, Program: program,
			Litmus: isLit, Seed: seed, Outcome: outcome,
		})
		if err != nil {
			t.Fatalf("record %s seed %d: %v", program, seed, err)
		}
		data, err := json.Marshal(tr)
		if err != nil {
			t.Fatalf("marshal trace: %v", err)
		}
		d.TraceJSON = string(data)
	}
	return d
}

func digestEqual(a, b execDigest) string {
	if fmt.Sprintf("%v", a.RaceKeys) != fmt.Sprintf("%v", b.RaceKeys) {
		return fmt.Sprintf("race keys %v vs %v", a.RaceKeys, b.RaceKeys)
	}
	if a.Outcome != b.Outcome {
		return fmt.Sprintf("outcome %q vs %q", a.Outcome, b.Outcome)
	}
	if len(a.FinalValues) != len(b.FinalValues) {
		return fmt.Sprintf("final value count %d vs %d", len(a.FinalValues), len(b.FinalValues))
	}
	for k, v := range a.FinalValues {
		if bv, ok := b.FinalValues[k]; !ok || bv != v {
			return fmt.Sprintf("final value %s: %d vs %d (present=%v)", k, v, bv, ok)
		}
	}
	if a.Deadlocked != b.Deadlocked || a.Truncated != b.Truncated || a.AssertFailures != b.AssertFailures {
		return fmt.Sprintf("termination (%v,%v,%d) vs (%v,%v,%d)",
			a.Deadlocked, a.Truncated, a.AssertFailures, b.Deadlocked, b.Truncated, b.AssertFailures)
	}
	if a.TraceJSON != b.TraceJSON {
		return "serialized traces differ"
	}
	return ""
}

// newTracedTool builds a tool instance with trace mode and a schedule
// recorder interposed when the model supports total modification orders, so
// pooled and fresh instances run the identical instrumented path.
func newTracedTool(spec ToolSpec) (capi.Tool, *core.Engine, *trace.Recorder) {
	tool := spec.New()
	eng := tool.(*core.Engine)
	rec := trace.NewRecorder(eng.Strategy())
	eng.SetStrategy(rec)
	if _, ok := eng.Model().(core.MOProvider); ok {
		eng.SetTrace(true)
	}
	return tool, eng, rec
}

// TestPooledEngineArenaEquivalence pins the tentpole invariant of the
// execution arenas and the fiber pool: N sequential Execute calls on ONE
// engine (exercising the recycled Action/clock-vector/mo-graph state and the
// re-bound pool workers) produce byte-identical race keys, outcomes, final
// values, and serialized traces to N fresh engines AND to a
// respawning-scheduler engine (sched.Config.Respawn) running the same
// executions, across every tool × program cell of the standard matrix.
func TestPooledEngineArenaEquivalence(t *testing.T) {
	const runs = 3
	benches, err := SelectBenchmarks("all")
	if err != nil {
		t.Fatal(err)
	}
	lits, err := SelectLitmus("all")
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range StandardToolNames() {
		spec, err := StandardTool(name, ToolOptions{})
		if err != nil {
			t.Fatal(err)
		}
		respawnSpec, err := StandardTool(name, ToolOptions{Respawn: true})
		if err != nil {
			t.Fatal(err)
		}
		type cell struct {
			name   string
			isLit  bool
			prog   capi.Program
			reset  func()
			outStr func() string
		}
		var cells []cell
		for _, b := range benches {
			cells = append(cells, cell{name: b.Name, prog: b.New(), outStr: func() string { return "" }})
		}
		for _, l := range lits {
			out := new(string)
			prog := l.Make(out)
			cells = append(cells, cell{
				name: l.Name, isLit: true, prog: prog,
				reset:  func() { *out = "" },
				outStr: func() string { return *out },
			})
		}

		for _, c := range cells {
			t.Run(name+"/"+c.name, func(t *testing.T) {
				pooledTool, pooledEng, pooledRec := newTracedTool(spec)
				var pooled []execDigest
				for i := 0; i < runs; i++ {
					if c.reset != nil {
						c.reset()
					}
					res := pooledTool.Execute(c.prog, int64(i+1))
					pooled = append(pooled, digestOf(t, pooledEng, pooledRec, res, c.name, c.isLit, c.outStr(), int64(i+1)))
				}
				for i := 0; i < runs; i++ {
					freshTool, freshEng, freshRec := newTracedTool(spec)
					if c.reset != nil {
						c.reset()
					}
					res := freshTool.Execute(c.prog, int64(i+1))
					fresh := digestOf(t, freshEng, freshRec, res, c.name, c.isLit, c.outStr(), int64(i+1))
					if diff := digestEqual(pooled[i], fresh); diff != "" {
						t.Fatalf("execution %d (seed %d): pooled engine diverged from fresh engine: %s", i, i+1, diff)
					}
				}
				// The fiber pool must be observationally invisible next to
				// the goroutine-respawning scheduler: same engine-level
				// recycling, workers respawned per execution.
				respawnTool, respawnEng, respawnRec := newTracedTool(respawnSpec)
				for i := 0; i < runs; i++ {
					if c.reset != nil {
						c.reset()
					}
					res := respawnTool.Execute(c.prog, int64(i+1))
					respawn := digestOf(t, respawnEng, respawnRec, res, c.name, c.isLit, c.outStr(), int64(i+1))
					if diff := digestEqual(pooled[i], respawn); diff != "" {
						t.Fatalf("execution %d (seed %d): pooled scheduler diverged from respawning scheduler: %s", i, i+1, diff)
					}
				}
			})
		}
	}
}
