package campaign

import (
	"encoding/json"
	"strings"
	"testing"

	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/explore"
	"c11tester/internal/litmus"
	"c11tester/internal/memmodel"
)

// convergeSpec is a matrix whose every cell converges under the default
// Converge parameters: ms-queue races unconditionally, seqlock's rate is
// stable, and the two litmus tests have small, quickly-saturated outcome
// histograms. The convergence-timing assertions downstream (which race keys
// surface within a budget, which cells converge early) are statistical
// coincidences of one specific decision stream, so the spec pins the legacy
// rng source — the stream they were tuned against.
func convergeSpec(t *testing.T, workers, shardSize int, policy explore.Policy) Spec {
	return Spec{
		Tools: []ToolSpec{
			mustTool(t, "c11tester", ToolOptions{RNG: "legacy"}),
			mustTool(t, "tsan11", ToolOptions{RNG: "legacy"}),
		},
		RNG: "legacy",
		Benchmarks: []BenchmarkSpec{
			benchSpec(t, "ms-queue"),
			benchSpec(t, "seqlock"),
		},
		Litmus: []*litmus.Test{
			mustLitmus(t, "MP+rel+acq"),
			mustLitmus(t, "SB+sc"),
		},
		Runs:      100,
		SeedBase:  1,
		Workers:   workers,
		ShardSize: shardSize,
		Policy:    policy,
	}
}

// TestConvergeDeterminismUnderSharding extends the campaign determinism
// guarantee to adaptive budgets: a Converge-policy campaign must aggregate
// identically on one worker and on four.
func TestConvergeDeterminismUnderSharding(t *testing.T) {
	serial := canonicalize(Run(convergeSpec(t, 1, 60, explore.Converge{})))
	sharded := canonicalize(Run(convergeSpec(t, 4, 7, explore.Converge{})))

	sj, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Fatalf("converge campaign aggregates differ between workers=1 and workers=4:\nserial:  %s\nsharded: %s", sj, pj)
	}
}

// TestConvergeReproducesUniformVerdictsAtLowerBudget is the adaptive-budget
// acceptance test: on a matrix whose cells all converge, the Converge policy
// must reproduce the uniform campaign's race set and forbidden-outcome
// verdicts with at most 60% of the executions.
func TestConvergeReproducesUniformVerdictsAtLowerBudget(t *testing.T) {
	uniform := Run(convergeSpec(t, 2, 0, nil))
	adaptive := Run(convergeSpec(t, 2, 0, explore.Converge{}))

	var uniExecs, adExecs int
	for i := range uniform.Tools {
		ut, at := uniform.Tools[i], adaptive.Tools[i]
		uniExecs += ut.Execs
		adExecs += at.Execs

		// Same deduplicated race set per tool.
		keys := func(ts ToolSummary) []string {
			var ks []string
			for _, r := range ts.Races {
				ks = append(ks, r.Key)
			}
			return ks
		}
		uk, ak := keys(ut), keys(at)
		if strings.Join(uk, "|") != strings.Join(ak, "|") {
			t.Errorf("%s: race sets differ: uniform %v, converge %v", ut.Tool, uk, ak)
		}
	}
	// Same forbidden-outcome verdict (none, for a sound model).
	if uf, af := len(uniform.Forbidden()), len(adaptive.Forbidden()); uf != af {
		t.Errorf("forbidden verdicts differ: uniform %d, converge %d", uf, af)
	}
	if adaptive.Failed() != uniform.Failed() {
		t.Errorf("failure verdicts differ: uniform %v, converge %v", uniform.Failed(), adaptive.Failed())
	}

	if adExecs*10 > uniExecs*6 {
		t.Errorf("converge campaign used %d executions, want ≤ 60%% of uniform's %d", adExecs, uniExecs)
	}

	// The budget accounting must agree with the throughput counters and mark
	// every cell converged.
	used, planned, converged, cells, ok := adaptive.BudgetReport()
	if !ok || used != adExecs || planned != uniExecs {
		t.Errorf("BudgetReport() = (%d, %d, ok=%v), want (%d, %d, true)", used, planned, ok, adExecs, uniExecs)
	}
	if converged != cells {
		t.Errorf("%d of %d cells converged, want all", converged, cells)
	}
	if uniform.Tools[0].Benchmarks[0].Budget != nil {
		t.Error("uniform campaign must carry no budget accounting")
	}
}

// TestConvergeRedistributesFreedBudget pins the budget-reassignment
// behaviour: pairing a quickly-converging cell with a diverging one (IRIW+acq
// keeps producing fresh outcomes for a long time) must reassign the freed
// budget, keep the total at the uniform level, and mark only the converging
// cell as such.
func TestConvergeRedistributesFreedBudget(t *testing.T) {
	// Pinned to the legacy stream like convergeSpec: which cell converges
	// first is a property of the decision stream, not of the policy.
	spec := Spec{
		Tools:    []ToolSpec{mustTool(t, "c11tester", ToolOptions{RNG: "legacy"})},
		Litmus:   []*litmus.Test{mustLitmus(t, "SB+sc"), mustLitmus(t, "IRIW+acq")},
		Runs:     100,
		SeedBase: 1,
		Workers:  2,
		RNG:      "legacy",
		Policy:   explore.Converge{},
	}
	sum := Run(spec)
	sb, iriw := sum.Tools[0].Litmus[0], sum.Tools[0].Litmus[1]
	if sb.Budget == nil || !sb.Budget.Converged || sb.Budget.Used >= spec.Runs {
		t.Fatalf("SB+sc budget = %+v, want early convergence", sb.Budget)
	}
	if iriw.Budget == nil || iriw.Budget.Extended == 0 {
		t.Fatalf("IRIW+acq budget = %+v, want reassigned budget (extended > 0)", iriw.Budget)
	}
	total := sb.Budget.Used + iriw.Budget.Used
	if total > 2*spec.Runs {
		t.Errorf("total executions %d exceed the campaign budget %d", total, 2*spec.Runs)
	}
}

// TestGuidedCampaignFindsSeededRaceAtHigherRate is the trace-guided
// acceptance test: record the racy executions of a cell whose uniform
// detection rate is well below 100% (dekker-fences), then re-run the same
// budget guided by those traces — the seeded race must be found in strictly
// more executions, and every race key of the uniform campaign must still be
// found.
func TestGuidedCampaignFindsSeededRaceAtHigherRate(t *testing.T) {
	dir := t.TempDir()
	base := Spec{
		Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "dekker-fences")},
		Runs:       50,
		SeedBase:   1,
		Workers:    2,
		RecordDir:  dir, // records the signal-bearing (racy) executions
	}
	uniform := Run(base)
	uniCell := uniform.Tools[0].Benchmarks[0]
	if uniCell.Detection.Detected == 0 || uniCell.Detection.Detected == uniCell.Detection.Runs {
		t.Fatalf("uniform dekker-fences detection %d/%d is not informative for this test",
			uniCell.Detection.Detected, uniCell.Detection.Runs)
	}
	if uniform.Tools[0].RecordedTraces == 0 {
		t.Fatal("no racy traces recorded to seed the guided campaign")
	}

	guides, err := LoadGuides(dir)
	if err != nil {
		t.Fatal(err)
	}
	guided := base
	guided.RecordDir = ""
	guided.Guides = guides
	gsum := Run(guided)
	gCell := gsum.Tools[0].Benchmarks[0]

	if gCell.Detection.Detected <= uniCell.Detection.Detected {
		t.Fatalf("guided campaign detected %d/%d, want strictly more than uniform's %d/%d",
			gCell.Detection.Detected, gCell.Detection.Runs,
			uniCell.Detection.Detected, uniCell.Detection.Runs)
	}
	seeded := map[string]bool{}
	for _, k := range gCell.RaceKeys {
		seeded[k] = true
	}
	for _, k := range uniCell.RaceKeys {
		if !seeded[k] {
			t.Errorf("guided campaign lost race key %s", k)
		}
	}

	// Guided cells must report their prefix statistics in the summary.
	gs := gCell.Guided
	if gs == nil || gs.GuidedExecs != base.Runs || gs.Traces != uniform.Tools[0].RecordedTraces {
		t.Fatalf("guided stats = %+v, want %d guided execs over %d traces",
			gs, base.Runs, uniform.Tools[0].RecordedTraces)
	}
	if gs.MeanPrefixDepth <= 0 || gs.MeanConsumed <= 0 {
		t.Errorf("guided stats carry no depth data: %+v", gs)
	}
	if gsum.Spec.GuideDir != dir || gsum.Spec.GuideTraces != guides.Len() {
		t.Errorf("spec echo = %q/%d, want %q/%d", gsum.Spec.GuideDir, gsum.Spec.GuideTraces, dir, guides.Len())
	}
}

// TestGuidedCampaignDeterminismUnderSharding extends the determinism
// guarantee to guided cells: the prefix depth is drawn from the execution
// seed, so worker count must not change any aggregate.
func TestGuidedCampaignDeterminismUnderSharding(t *testing.T) {
	dir := t.TempDir()
	rec := Spec{
		Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "dekker-fences")},
		Runs:       20,
		SeedBase:   1,
		RecordDir:  dir,
	}
	Run(rec)
	guides, err := LoadGuides(dir)
	if err != nil {
		t.Fatal(err)
	}
	build := func(workers, shard int) Spec {
		return Spec{
			Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
			Benchmarks: []BenchmarkSpec{benchSpec(t, "dekker-fences")},
			Litmus:     []*litmus.Test{mustLitmus(t, "MP+rlx")},
			Runs:       30,
			SeedBase:   100,
			Workers:    workers,
			ShardSize:  shard,
			Guides:     guides,
		}
	}
	serial, _ := json.Marshal(canonicalize(Run(build(1, 30))))
	sharded, _ := json.Marshal(canonicalize(Run(build(4, 7))))
	if string(serial) != string(sharded) {
		t.Fatalf("guided campaign aggregates differ between workers=1 and workers=4:\nserial:  %s\nsharded: %s", serial, sharded)
	}
}

// infeasibleModel panics with a core.InfeasibleError on every atomic load —
// the failure mode of a model soundness bug — while completing every other
// operation trivially.
type infeasibleModel struct{}

func (infeasibleModel) Begin(*core.Engine) {}
func (infeasibleModel) AtomicLoad(ts *core.ThreadState, op *capi.Op) memmodel.Value {
	panic(&core.InfeasibleError{Stage: "load", Loc: op.Loc, Detail: "stub model"})
}
func (infeasibleModel) AtomicStore(*core.ThreadState, *capi.Op) {}
func (infeasibleModel) AtomicRMW(ts *core.ThreadState, op *capi.Op) (memmodel.Value, bool) {
	return 0, true
}
func (infeasibleModel) Fence(*core.ThreadState, *capi.Op) {}
func (infeasibleModel) PromoteNAStore(*core.ThreadState, memmodel.LocID, memmodel.TID, memmodel.SeqNum, memmodel.Value) {
}
func (infeasibleModel) Maintain(*core.Engine) {}

// TestEngineFailureRecordedAndCampaignContinues pins the infeasible-store
// hardening: a cell whose every execution hits an infeasible model state is
// recorded as failed — with seed and repro triple — while the rest of the
// matrix keeps running to completion.
func TestEngineFailureRecordedAndCampaignContinues(t *testing.T) {
	loads := capi.Program{Name: "loads", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		env.Load(x, memmodel.Relaxed)
	}}
	stores := capi.Program{Name: "stores", Run: func(env capi.Env) {
		x := env.NewAtomic("x", 0)
		env.Store(x, 1, memmodel.Relaxed)
	}}
	spec := Spec{
		Tools: []ToolSpec{{Name: "stub", New: func() capi.Tool {
			return core.New("stub", infeasibleModel{}, core.Config{})
		}}},
		Benchmarks: []BenchmarkSpec{
			{Name: "loads", New: func() capi.Program { return loads }},
			{Name: "stores", New: func() capi.Program { return stores }},
		},
		Runs:      12,
		SeedBase:  5,
		Workers:   3,
		ShardSize: 4,
	}
	sum := Run(spec)
	ts := sum.Tools[0]
	failing, healthy := ts.Benchmarks[0], ts.Benchmarks[1]

	if failing.Failed != spec.Runs || ts.EngineFailures != spec.Runs {
		t.Fatalf("failing cell recorded %d/%d failures (tool total %d)", failing.Failed, spec.Runs, ts.EngineFailures)
	}
	if healthy.Failed != 0 || healthy.Detection.Runs != spec.Runs {
		t.Fatalf("healthy cell = %+v, want %d clean executions", healthy, spec.Runs)
	}
	if len(ts.FailureSamples) == 0 {
		t.Fatal("no failure samples recorded")
	}
	s := ts.FailureSamples[0]
	if s.Repro.Seed != spec.SeedBase || s.Repro.Program != "loads" || s.Repro.Tool != "stub" {
		t.Errorf("failure repro = %+v, want stub/loads seed=%d", s.Repro, spec.SeedBase)
	}
	if !strings.Contains(s.Error, "infeasible") {
		t.Errorf("failure error = %q, want an infeasibility message", s.Error)
	}
	if !sum.Failed() {
		t.Error("a campaign with engine failures must fail")
	}
	if !strings.Contains(sum.String(), "ENGINE FAILURE") {
		t.Error("report does not surface the engine failures")
	}
}

// TestSchemaArtifactRoundTrip pins the versioned summary fields through JSON.
func TestSchemaArtifactRoundTrip(t *testing.T) {
	sum := Run(Spec{
		Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
		Runs:       30,
		SeedBase:   1,
		Policy:     explore.Converge{},
	})
	if sum.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version = %d, want %d", sum.SchemaVersion, SchemaVersion)
	}
	if want := "converge(min=20,window=10,eps=0.02)"; sum.Spec.Policy != want {
		t.Fatalf("policy echo = %q, want %q", sum.Spec.Policy, want)
	}
	if sum.Obs == nil || sum.Obs.EventsDropped != 0 {
		t.Fatalf("obs accounting = %+v, want present with zero drops", sum.Obs)
	}
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var rt Summary
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatal(err)
	}
	b := rt.Tools[0].Benchmarks[0].Budget
	if b == nil || !b.Converged || b.Planned != 30 || b.Used == 0 {
		t.Fatalf("budget did not round-trip: %+v", b)
	}
	tm := rt.Tools[0].Benchmarks[0].Timing
	if tm == nil || tm.Count == 0 || tm.Sum == 0 || tm.P50 == 0 {
		t.Fatalf("timing snapshot did not round-trip: %+v", tm)
	}
	ph := rt.Tools[0].Benchmarks[0].Phases
	if ph == nil || ph["run"] == nil || ph["run"].Count == 0 {
		t.Fatalf("phase snapshots did not round-trip: %+v", ph)
	}
	if _, ok := ph["validate"]; ok {
		t.Fatal("validate phase present without validation duties")
	}
	if rt.Provenance == nil || rt.Provenance.GoVersion == "" {
		t.Fatalf("provenance did not round-trip: %+v", rt.Provenance)
	}
}
