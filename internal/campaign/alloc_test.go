package campaign

import (
	"testing"
	"time"

	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/obs"
	"c11tester/internal/rng"
	"c11tester/internal/sched"
)

// TestZeroAllocSteadyState pins the fiber-pool tentpole target exactly: once
// a tool instance's pools, arenas, fiber workers, and program instance are
// warm, an execution allocates NOTHING — no goroutines, closures, results,
// race reports, or outcome strings — on every tool × program cell of the
// standard matrix. testing.AllocsPerRun counts mallocs exactly (unlike the
// span-granular runtime/metrics counters BENCH_perf.json reports), so this
// is the strictest form of the ≤ 64 B/exec acceptance gate.
//
// The measured loop carries the full campaign telemetry instrumentation —
// pre-bound CellMetrics handles, wall-clock timing, engine exec stats with
// handoff-wait AND per-phase span measurement on, plus an armed flight
// recorder fed a digest per execution — so the observability fabric is
// itself held to the zero-alloc bar the runner's hot path relies on, exactly
// as a -capture campaign runs it. Both rng sources must hold the bar: the
// pcg fast path is allocation-free by construction, and the legacy source
// reuses its materialized math/rand state across re-seeds.
func TestZeroAllocSteadyState(t *testing.T) {
	for _, src := range rng.Names() {
		t.Run(src, func(t *testing.T) { testZeroAllocSteadyState(t, src) })
	}
}

func testZeroAllocSteadyState(t *testing.T, rngSource string) {
	benches, err := SelectBenchmarks("all")
	if err != nil {
		t.Fatal(err)
	}
	lits, err := SelectLitmus("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range StandardToolNames() {
		spec, err := StandardTool(name, ToolOptions{RNG: rngSource})
		if err != nil {
			t.Fatal(err)
		}
		// One telemetry fabric over the whole matrix, bound exactly as
		// campaign.Run binds it: every handle exists before the hot loop.
		tel := NewTelemetry(TelemetryOptions{})
		tel.bind(Spec{
			Tools:      []ToolSpec{spec},
			Benchmarks: benches,
			Litmus:     lits,
		})
		check := func(j job, program string, prog capi.Program, reset func()) {
			tool := spec.New()
			defer closeTool(tool)
			met := tel.cellMetrics(j)
			eng, _ := tool.(*core.Engine)
			if eng != nil {
				eng.SetHandoffTiming(true)
				eng.SetPhaseTiming(true)
			}
			fr := obs.NewFlightRecorder(obs.FlightRecorderConfig{})
			run := func(seed int64) {
				if reset != nil {
					reset()
				}
				t0 := time.Now()
				res := tool.Execute(prog, seed)
				dur := time.Since(t0)
				met.ObserveExec(dur, eng)
				d := obs.ExecDigest{Index: int(seed), NS: int64(dur),
					NewRace: len(res.NewRaces) > 0}
				if eng != nil {
					st := eng.ExecStats()
					d.Steps, d.Choices = st.Steps, st.Choices
				}
				fr.Check(d)
			}
			// Warm the pools across several seeds so capacity growth and the
			// race-dedup map are settled before measuring.
			for seed := int64(1); seed <= 6; seed++ {
				run(seed)
			}
			if n := testing.AllocsPerRun(10, func() { run(3) }); n != 0 {
				t.Errorf("%s/%s: %.1f allocs/exec in steady state, want 0", name, program, n)
			}
		}
		for b, bench := range benches {
			check(job{kind: jobBench, tool: 0, cell: b}, bench.Name, bench.New(), nil)
		}
		for l, lit := range lits {
			var out string
			prog := lit.Make(&out)
			check(job{kind: jobLitmus, tool: 0, cell: l}, lit.Name, prog, func() { out = "" })
		}
	}
}

// TestHandoffRegimeEquivalence pins the Figure 14 invariant that makes the
// handoff matrix a pure performance comparison: scheduling decisions are
// driven by the strategy alone, so campaign outcomes are byte-identical
// across every handoff regime × {pooled, respawn} scheduler combination.
func TestHandoffRegimeEquivalence(t *testing.T) {
	benches, err := SelectBenchmarks("ms-queue")
	if err != nil {
		t.Fatal(err)
	}
	lits, err := SelectLitmus("IRIW+acq")
	if err != nil {
		t.Fatal(err)
	}
	const runs = 3
	type cellDigests []execDigest
	digestsFor := func(opts ToolOptions) cellDigests {
		spec, err := StandardTool("c11tester", opts)
		if err != nil {
			t.Fatal(err)
		}
		var out []execDigest
		tool, eng, rec := newTracedTool(spec)
		prog := benches[0].New()
		for i := 0; i < runs; i++ {
			res := tool.Execute(prog, int64(i+1))
			out = append(out, digestOf(t, eng, rec, res, benches[0].Name, false, "", int64(i+1)))
		}
		var lit string
		litProg := lits[0].Make(&lit)
		for i := 0; i < runs; i++ {
			lit = ""
			res := tool.Execute(litProg, int64(i+1))
			out = append(out, digestOf(t, eng, rec, res, lits[0].Name, true, lit, int64(i+1)))
		}
		eng.Close()
		return out
	}

	base := digestsFor(ToolOptions{})
	for _, regime := range sched.HandoffRegimes() {
		for _, respawn := range []bool{false, true} {
			got := digestsFor(ToolOptions{Handoff: regime, Respawn: respawn})
			for i := range base {
				if diff := digestEqual(base[i], got[i]); diff != "" {
					t.Fatalf("%s/respawn=%v: execution %d diverged from the default regime: %s",
						regime, respawn, i, diff)
				}
			}
		}
	}
}

// TestRunHandoffMatrix exercises the Figure 14 measurement path end to end
// at a tiny run count.
func TestRunHandoffMatrix(t *testing.T) {
	lits, err := SelectLitmus("SB+rlx")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := RunHandoffMatrix(PerfSpec{Litmus: lits, Runs: 2, Warmup: 1, SeedBase: 1},
		[]string{"c11tester"}, ToolOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(sched.HandoffRegimes())*2 {
		t.Fatalf("matrix has %d cells, want %d", len(cells), len(sched.HandoffRegimes())*2)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if c.Execs != 2 || c.NsPerExec <= 0 {
			t.Errorf("cell %+v: want 2 execs and positive ns/exec", c)
		}
		key := c.Handoff
		if c.Pooled {
			key += "/pooled"
		} else {
			key += "/respawn"
		}
		if seen[key] {
			t.Errorf("duplicate matrix cell %s", key)
		}
		seen[key] = true
	}
	if HandoffMatrixString(cells) == "" {
		t.Error("empty matrix table")
	}

	// A prior summary over the same spec short-circuits its own regime
	// combination instead of re-measuring it.
	prior := &PerfSummary{
		SchemaVersion: PerfSchemaVersion,
		Spec:          PerfSpecInfo{Handoff: "channel", Pooled: true},
		Tools:         []PerfToolSummary{{Tool: "c11tester", Execs: 99, NsPerExec: 123}},
	}
	cells, err = RunHandoffMatrix(PerfSpec{Litmus: lits, Runs: 2, Warmup: 1, SeedBase: 1},
		[]string{"c11tester"}, ToolOptions{}, prior)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Handoff == "channel" && c.Pooled {
			if c.Execs != 99 || c.NsPerExec != 123 {
				t.Errorf("prior aggregate not reused: %+v", c)
			}
		} else if c.Execs != 2 {
			t.Errorf("non-prior cell not measured: %+v", c)
		}
	}
}
