// report.go is the offline forensics renderer behind cmd/c11report: it joins
// the three artifacts a campaign leaves behind — the versioned summary
// (BENCH_campaign.json), the structured event stream (events.jsonl), and the
// flight-recorder capture manifest — into one human-readable report. Every
// section degrades gracefully when its source artifact is absent, so the
// report is useful on partial evidence (a summary alone, or just a capture
// directory).
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"time"

	"c11tester/internal/core"
	"c11tester/internal/harness"
	"c11tester/internal/obs"
	"c11tester/internal/safeio"
)

// ReadEvents reads a JSONL event stream appended by -events, through the
// shared lenient reader (safeio.ForEachJSONLine). Unparseable lines are
// counted, not fatal: an interrupted campaign may leave a torn final line,
// and the report should still render the rest.
func ReadEvents(path string) (events []Event, bad int, err error) {
	bad, err = safeio.ForEachJSONLine(path, func(line []byte) bool {
		var ev Event
		if json.Unmarshal(line, &ev) != nil || ev.Type == "" {
			return false
		}
		events = append(events, ev)
		return true
	})
	if err != nil {
		return nil, bad, err
	}
	return events, bad, nil
}

// ReportOptions configures WriteReport.
type ReportOptions struct {
	// TopSlow bounds the slow-cell table (default 5).
	TopSlow int
	// CaptureDir prefixes trace file names in capture repro lines, so the
	// printed `c11trace replay` command works from the caller's directory.
	CaptureDir string
}

// slowCell is one row of the slow-cell table: a cell joined with its timing
// and phase snapshots from the summary.
type slowCell struct {
	tool, program string
	timing        *obs.HistogramSnapshot
	phases        map[string]*obs.HistogramSnapshot
}

// WriteReport renders the forensics report. sum is required; events and man
// may be nil (their sections are skipped).
func WriteReport(w io.Writer, sum *Summary, events []Event, man *obs.Manifest, opts ReportOptions) {
	if opts.TopSlow <= 0 {
		opts.TopSlow = 5
	}
	fmt.Fprintf(w, "campaign forensics report (schema v%d)\n", sum.SchemaVersion)
	fmt.Fprintf(w, "matrix: %d tool(s) × (%d benchmark(s) + %d litmus test(s)) × %d runs, seed base %d\n",
		len(sum.Spec.Tools), len(sum.Spec.Benchmarks), len(sum.Spec.Litmus), sum.Spec.Runs, sum.Spec.SeedBase)
	if p := sum.Provenance; p != nil {
		fmt.Fprintf(w, "build: %s %s/%s", p.GoVersion, p.GOOS, p.GOARCH)
		if p.Module != "" {
			fmt.Fprintf(w, " %s", p.Module)
			if p.ModuleVersion != "" {
				fmt.Fprintf(w, "@%s", p.ModuleVersion)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "wall clock: %s\n", harness.FmtDuration(time.Duration(sum.WallNS)))

	writeSlowCells(w, sum, opts.TopSlow)
	writeFindings(w, sum)
	writeRaceTimeline(w, events)
	writeConvergence(w, events)
	writeCaptureIndex(w, man, opts.CaptureDir)
}

// writeFindings renders the analyzer pipeline's results (schema v7): the
// per-analyzer rollups and each deduplicated finding with its one-command
// repro line.
func writeFindings(w io.Writer, sum *Summary) {
	for _, ts := range sum.Tools {
		if len(ts.Analyzers) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n%s: analyzer findings:\n", ts.Tool)
		tb := &harness.Table{Header: []string{"analyzer", "distinct", "hits"}}
		for _, as := range ts.Analyzers {
			tb.AddRow(as.Analyzer, fmt.Sprintf("%d", as.Distinct), fmt.Sprintf("%d", as.Count))
		}
		fmt.Fprint(w, tb.String())
		for _, f := range ts.Findings {
			program := f.Program
			if f.Litmus {
				program = "litmus/" + program
			}
			fmt.Fprintf(w, "  [%s] %s: %s (×%d)\n    repro: %s\n",
				f.Analyzer, program, f.Description, f.Count, f.Repro.Command())
		}
	}
}

// writeSlowCells renders the top cells by p99 ns/exec with their per-phase
// mean breakdowns (phase mean = histogram Sum/Count).
func writeSlowCells(w io.Writer, sum *Summary, top int) {
	var cells []slowCell
	for _, ts := range sum.Tools {
		for i := range ts.Benchmarks {
			if c := ts.Benchmarks[i]; c.Timing != nil {
				cells = append(cells, slowCell{ts.Tool, c.Program, c.Timing, c.Phases})
			}
		}
		for i := range ts.Litmus {
			if c := ts.Litmus[i]; c.Timing != nil {
				cells = append(cells, slowCell{ts.Tool, c.Test, c.Timing, c.Phases})
			}
		}
	}
	if len(cells) == 0 {
		return
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].timing.P99 != cells[j].timing.P99 {
			return cells[i].timing.P99 > cells[j].timing.P99
		}
		if cells[i].tool != cells[j].tool {
			return cells[i].tool < cells[j].tool
		}
		return cells[i].program < cells[j].program
	})
	if len(cells) > top {
		cells = cells[:top]
	}
	fmt.Fprintf(w, "\ntop %d cell(s) by p99 ns/exec:\n", len(cells))
	tb := &harness.Table{Header: []string{"tool", "program", "p50", "p99", "execs", "phase breakdown (mean)"}}
	for _, c := range cells {
		tb.AddRow(c.tool, c.program,
			harness.FmtDuration(time.Duration(c.timing.P50)),
			harness.FmtDuration(time.Duration(c.timing.P99)),
			fmt.Sprintf("%d", c.timing.Count),
			phaseBreakdown(c.phases))
	}
	fmt.Fprint(w, tb.String())
}

// phaseBreakdown renders the per-phase means in canonical phase order.
func phaseBreakdown(phases map[string]*obs.HistogramSnapshot) string {
	if len(phases) == 0 {
		return "(no phase spans)"
	}
	out := ""
	for p := 0; p < core.NumPhases; p++ {
		h := phases[core.Phase(p).String()]
		if h == nil || h.Count == 0 {
			continue
		}
		if out != "" {
			out += "  "
		}
		out += fmt.Sprintf("%s %s", core.Phase(p), harness.FmtDuration(time.Duration(h.Sum/h.Count)))
	}
	return out
}

// writeRaceTimeline renders when each distinct race was first seen: the
// race_first_seen events sorted by (wave, seed, tool, key).
func writeRaceTimeline(w io.Writer, events []Event) {
	var races []Event
	for _, ev := range events {
		if ev.Type == "race_first_seen" {
			races = append(races, ev)
		}
	}
	if len(races) == 0 {
		return
	}
	sort.Slice(races, func(i, j int) bool {
		a, b := races[i], races[j]
		if a.Wave != b.Wave {
			return a.Wave < b.Wave
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		if a.Tool != b.Tool {
			return a.Tool < b.Tool
		}
		return a.Key < b.Key
	})
	fmt.Fprintf(w, "\nrace timeline (%d first-seen event(s)):\n", len(races))
	tb := &harness.Table{Header: []string{"wave", "seed", "tool", "program", "race key"}}
	for _, ev := range races {
		tb.AddRow(fmt.Sprintf("%d", ev.Wave), fmt.Sprintf("%d", ev.Seed),
			ev.Tool, ev.Program, ev.Key)
	}
	fmt.Fprint(w, tb.String())
}

// writeConvergence renders each cell's convergence curve: the
// cell_converge_state snapshots the adaptive planner emitted at its wave
// barriers, in wave order per cell.
func writeConvergence(w io.Writer, events []Event) {
	type curve struct {
		tool, program string
		points        []Event
	}
	byCell := map[string]*curve{}
	var order []string
	for _, ev := range events {
		if ev.Type != "cell_converge_state" || ev.Converge == nil {
			continue
		}
		key := ev.Tool + "\x00" + ev.Program
		c := byCell[key]
		if c == nil {
			c = &curve{tool: ev.Tool, program: ev.Program}
			byCell[key] = c
			order = append(order, key)
		}
		c.points = append(c.points, ev)
	}
	if len(order) == 0 {
		return
	}
	sort.Strings(order)
	fmt.Fprintf(w, "\nconvergence curves (%d cell(s)):\n", len(order))
	for _, key := range order {
		c := byCell[key]
		sort.SliceStable(c.points, func(i, j int) bool { return c.points[i].Wave < c.points[j].Wave })
		fmt.Fprintf(w, "  %s/%s:\n", c.tool, c.program)
		for _, ev := range c.points {
			st := ev.Converge
			verdict := "diverging"
			if st.Converged {
				verdict = "CONVERGED"
			} else if st.WindowNewInfo {
				verdict = "new info in window"
			}
			fmt.Fprintf(w, "    wave %d: %d execs, rate %.2f (shift %+.3f), %d distinct race(s), L1 %.3f — %s\n",
				ev.Wave, st.Execs, st.DetectionRate, st.RateShift, st.DistinctRaces, st.OutcomeL1, verdict)
		}
	}
}

// writeCaptureIndex renders the flight-recorder manifest with one-command
// repro lines: the captured trace replays under c11trace, and trace-less
// captures (engine failures) fall back to the tool repro triple.
func writeCaptureIndex(w io.Writer, man *obs.Manifest, dir string) {
	if man == nil || len(man.Captures) == 0 {
		return
	}
	fmt.Fprintf(w, "\ncapture index (%d capture(s)):\n", len(man.Captures))
	for _, c := range man.Captures {
		fmt.Fprintf(w, "  %s/%s seed %d — trigger %s", c.Tool, c.Program, c.Seed, c.Trigger)
		if c.Outcome != "" {
			fmt.Fprintf(w, ", outcome %q", c.Outcome)
		}
		if len(c.RaceKeys) > 0 {
			fmt.Fprintf(w, ", %d race key(s)", len(c.RaceKeys))
		}
		fmt.Fprintln(w)
		switch {
		case c.File != "":
			fmt.Fprintf(w, "    repro: go run ./cmd/c11trace replay %s\n", filepath.Join(dir, c.File))
		case c.Err != "":
			fmt.Fprintf(w, "    no trace (%s)\n    repro: %s\n", c.Err, c.Repro)
		default:
			fmt.Fprintf(w, "    repro: %s\n", c.Repro)
		}
	}
}
