// merge.go folds the partial artifacts of a sharded campaign — summaries,
// capture manifests, event streams — back into the single-machine artifact.
// Shards partition the execution set (each seed runs in exactly one shard),
// and every summary statistic is either a sum, a sorted union, or a
// min-by-(cell order, seed) winner, so the merge is exact: the merged summary
// is byte-identical (Summary.Canonical) to the summary of an unsharded run.
// The capped sample lists (races keep a min-winner per key; violation and
// failure samples keep the first five by (cell order, seed)) stay exact too:
// any element of the global first-five necessarily ranks in the first five of
// its own shard, so a sorted union of the partials' lists, truncated to five,
// reproduces the single-machine list.
//
// Merging refuses partials that were not cut from the same campaign: every
// partial carries its spec digest (ShardInfo.SpecDigest) and build
// provenance, and mismatched digests, duplicate or missing shard indices, and
// provenance skew are structured errors, not silently wrong artifacts.
package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"c11tester/internal/capi"
	"c11tester/internal/harness"
	"c11tester/internal/obs"
	"c11tester/internal/safeio"
)

// MergeSummaries folds K shard partials into the whole-campaign summary.
// Parts may be given in any order; they are validated (same spec digest, same
// shard count, indices exactly 0..K-1, schema v7, uniform policy) and merged
// deterministically. force skips the provenance-skew refusal (never the
// digest checks).
func MergeSummaries(parts []*Summary, force bool) (*Summary, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("campaign: merge: no partial summaries")
	}
	sorted := make([]*Summary, len(parts))
	copy(sorted, parts)
	for _, p := range sorted {
		if p.Schema != SchemaName {
			return nil, fmt.Errorf("campaign: merge: schema %q, want %q", p.Schema, SchemaName)
		}
		if p.SchemaVersion != SchemaVersion {
			return nil, fmt.Errorf("campaign: merge: partial has schema version %d; merging needs exactly %d (regenerate the shards with this build)", p.SchemaVersion, SchemaVersion)
		}
		if p.Shard == nil {
			return nil, fmt.Errorf("campaign: merge: summary has no shard header (not a partial — was it produced with -shard?)")
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard.Index < sorted[j].Shard.Index })
	first := sorted[0]
	if len(sorted) != first.Shard.Count {
		return nil, fmt.Errorf("campaign: merge: have %d partial(s), shard headers say count=%d", len(sorted), first.Shard.Count)
	}
	for i, p := range sorted {
		if p.Shard.Index != i {
			return nil, fmt.Errorf("campaign: merge: shard indices are not exactly 0..%d (duplicate or missing shard %d)", first.Shard.Count-1, i)
		}
		if p.Shard.SpecDigest != first.Shard.SpecDigest {
			return nil, fmt.Errorf("campaign: merge: shard %d was cut from a different campaign spec (digest %.12s… vs %.12s…)", p.Shard.Index, p.Shard.SpecDigest, first.Shard.SpecDigest)
		}
		if p.Spec.Policy != "" && p.Spec.Policy != "uniform" {
			return nil, fmt.Errorf("campaign: merge: shard %d ran policy %q; only uniform campaigns shard", p.Shard.Index, p.Spec.Policy)
		}
		if skew := first.Provenance.Skew(p.Provenance); len(skew) > 0 && !force {
			return nil, fmt.Errorf("campaign: merge: shard %d build provenance skew (%s); pass -force to merge anyway", p.Shard.Index, strings.Join(skew, "; "))
		}
	}

	m := &Summary{
		Schema: SchemaName, SchemaVersion: SchemaVersion,
		Spec:       first.Spec,
		Provenance: first.Provenance,
	}
	// Workers describes one machine's pool; a merged artifact has no single
	// meaningful value. Canonical zeroes it anyway.
	m.Spec.Workers = 0
	var obsAcc ObsSummary
	haveObs := false
	for _, p := range sorted {
		m.WallNS += p.WallNS
		m.GC.AllocBytes += p.GC.AllocBytes
		m.GC.Mallocs += p.GC.Mallocs
		m.GC.NumGC += p.GC.NumGC
		m.GC.PauseTotalNS += p.GC.PauseTotalNS
		m.CheckpointErrors += p.CheckpointErrors
		if p.Obs != nil {
			haveObs = true
			obsAcc.EventsEmitted += p.Obs.EventsEmitted
			obsAcc.EventsDropped += p.Obs.EventsDropped
		}
	}
	if haveObs {
		m.Obs = &obsAcc
	}

	cellOrder := cellOrderOf(first.Spec)
	for t := range first.Tools {
		var partTools []*ToolSummary
		for _, p := range sorted {
			if t >= len(p.Tools) || p.Tools[t].Tool != first.Tools[t].Tool {
				return nil, fmt.Errorf("campaign: merge: tool matrix mismatch at %q (digest collision?)", first.Tools[t].Tool)
			}
			partTools = append(partTools, &p.Tools[t])
		}
		ts, err := mergeToolSummaries(first.Spec, cellOrder, partTools)
		if err != nil {
			return nil, err
		}
		m.Tools = append(m.Tools, *ts)
	}
	return m, nil
}

// cellOrderOf maps a program name to its matrix position — benchmarks first,
// then litmus tests — the order every capped sample list is built in.
func cellOrderOf(info SpecInfo) map[string]int {
	order := map[string]int{}
	for i, b := range info.Benchmarks {
		order[b] = i
	}
	for i, l := range info.Litmus {
		order["litmus/"+l] = len(info.Benchmarks) + i
	}
	return order
}

func cellRank(order map[string]int, program string, litmus bool) int {
	if litmus {
		return order["litmus/"+program]
	}
	return order[program]
}

func mergeToolSummaries(info SpecInfo, order map[string]int, parts []*ToolSummary) (*ToolSummary, error) {
	first := parts[0]
	ts := &ToolSummary{Tool: first.Tool, Races: []harness.RaceSummary{}}
	for _, p := range parts {
		ts.Execs += p.Execs
		ts.WorkNS += p.WorkNS
		ts.AtomicOps += p.AtomicOps
		ts.NormalOps += p.NormalOps
		ts.Perf.AllocBytes += p.Perf.AllocBytes
		ts.Perf.AllocObjects += p.Perf.AllocObjects
		ts.RecordedTraces += p.RecordedTraces
		ts.RecordErrors += p.RecordErrors
		ts.EngineFailures += p.EngineFailures
		ts.Captures += p.Captures
		ts.CaptureErrors += p.CaptureErrors
	}
	ts.ExecsPerSec = harness.ExecsPerSec(ts.Execs, time.Duration(ts.WorkNS))
	if ts.Execs > 0 {
		ts.Perf.BytesPerExec = float64(ts.Perf.AllocBytes) / float64(ts.Execs)
	}

	// Validation: all-or-none across shards (the duty is part of the digest).
	if first.Validation != nil {
		val := &ValidationSummary{}
		type vioSample struct {
			text string
			cell int
			seed int64
		}
		var samples []vioSample
		for _, p := range parts {
			if p.Validation == nil {
				return nil, fmt.Errorf("campaign: merge: tool %s has validation results in some shards but not others", first.Tool)
			}
			val.Checked += p.Validation.Checked
			val.Skipped += p.Validation.Skipped
			val.Violations += p.Validation.Violations
			for _, s := range p.Validation.Samples {
				cell, seed, err := parseVioSample(order, first.Tool, s)
				if err != nil {
					return nil, err
				}
				samples = append(samples, vioSample{text: s, cell: cell, seed: seed})
			}
		}
		sort.Slice(samples, func(i, j int) bool {
			if samples[i].cell != samples[j].cell {
				return samples[i].cell < samples[j].cell
			}
			return samples[i].seed < samples[j].seed
		})
		for _, s := range samples {
			if len(val.Samples) >= maxViolationSamples {
				break
			}
			val.Samples = append(val.Samples, s.text)
		}
		ts.Validation = val
	}

	// Engine-failure samples: first five by (cell order, seed), reconstructed
	// from the structured repro triples.
	var fails []EngineFailure
	for _, p := range parts {
		fails = append(fails, p.FailureSamples...)
	}
	sort.Slice(fails, func(i, j int) bool {
		ci := cellRank(order, fails[i].Repro.Program, fails[i].Repro.Litmus)
		cj := cellRank(order, fails[j].Repro.Program, fails[j].Repro.Litmus)
		if ci != cj {
			return ci < cj
		}
		return fails[i].Repro.Seed < fails[j].Repro.Seed
	})
	for _, f := range fails {
		if len(ts.FailureSamples) >= maxViolationSamples {
			break
		}
		ts.FailureSamples = append(ts.FailureSamples, f)
	}

	// Per-cell summaries merge element-wise: the digest pins the matrix, so
	// every shard has the same cells in the same order.
	for b := range first.Benchmarks {
		var cells []*CellSummary
		for _, p := range parts {
			cells = append(cells, &p.Benchmarks[b])
		}
		ts.Benchmarks = append(ts.Benchmarks, *mergeCells(cells))
	}
	for l := range first.Litmus {
		var cells []*LitmusSummary
		for _, p := range parts {
			cells = append(cells, &p.Litmus[l])
		}
		ts.Litmus = append(ts.Litmus, *mergeLitmus(cells))
	}

	ts.Races = mergeRaceSummaries(order, parts, func(p *ToolSummary) []harness.RaceSummary { return p.Races })
	ts.UnexpectedRaces = mergeRaceSummaries(order, parts, func(p *ToolSummary) []harness.RaceSummary { return p.UnexpectedRaces })
	if len(ts.UnexpectedRaces) == 0 {
		ts.UnexpectedRaces = nil
	}

	// Analyzer findings: the analyzer set is digest material, so every shard
	// ran the same pipeline; counts sum and the earliest (cell order, seed)
	// occurrence keeps the description and repro, exactly like races. The
	// rollups are recomputed from the merged finding list.
	ts.Findings = mergeFindingSummaries(order, parts)
	for _, name := range info.Analyzers {
		as := AnalyzerSummary{Analyzer: name}
		for _, f := range ts.Findings {
			if f.Analyzer == name {
				as.Distinct++
				as.Count += f.Count
			}
		}
		ts.Analyzers = append(ts.Analyzers, as)
	}
	return ts, nil
}

// mergeFindingSummaries unions the partials' deduplicated analyzer findings.
// Finding identity is (analyzer, cell, key) — unlike races, which dedup
// campaign-wide by key — and the merged list is re-sorted by (analyzer, cell
// order, key), the order the single-machine aggregation emits.
func mergeFindingSummaries(order map[string]int, parts []*ToolSummary) []FindingSummary {
	type fkey struct {
		analyzer string
		program  string
		litmus   bool
		key      string
	}
	type winner struct {
		f    FindingSummary
		cell int
	}
	best := map[fkey]winner{}
	var keys []fkey
	for _, p := range parts {
		for _, f := range p.Findings {
			k := fkey{analyzer: f.Analyzer, program: f.Program, litmus: f.Litmus, key: f.Key}
			cand := winner{f: f, cell: cellRank(order, f.Program, f.Litmus)}
			cur, seen := best[k]
			if !seen {
				keys = append(keys, k)
				best[k] = cand
				continue
			}
			if cand.cell < cur.cell || (cand.cell == cur.cell && cand.f.Repro.Seed < cur.f.Repro.Seed) {
				cand.f.Count += cur.f.Count
				best[k] = cand
			} else {
				cur.f.Count += cand.f.Count
				best[k] = cur
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		ca, cb := cellRank(order, a.program, a.litmus), cellRank(order, b.program, b.litmus)
		if ca != cb {
			return ca < cb
		}
		return a.key < b.key
	})
	var out []FindingSummary
	for _, k := range keys {
		out = append(out, best[k].f)
	}
	return out
}

// mergeRaceSummaries unions the partials' deduplicated races, keeping the
// earliest winner per key by (cell order, seed) — the same total order the
// single-machine aggregation uses.
func mergeRaceSummaries(order map[string]int, parts []*ToolSummary, get func(*ToolSummary) []harness.RaceSummary) []harness.RaceSummary {
	type winner struct {
		r    harness.RaceSummary
		cell int
	}
	best := map[string]winner{}
	for _, p := range parts {
		for _, r := range get(p) {
			cand := winner{r: r, cell: cellRank(order, r.Repro.Program, r.Repro.Litmus)}
			cur, seen := best[r.Key]
			if !seen || cand.cell < cur.cell ||
				(cand.cell == cur.cell && cand.r.Repro.Seed < cur.r.Repro.Seed) {
				best[r.Key] = cand
			}
		}
	}
	out := []harness.RaceSummary{}
	for _, key := range harness.SortedKeys(best) {
		out = append(out, best[key].r)
	}
	return out
}

func mergeGuided(parts []*GuideStats) *GuideStats {
	var g *GuideStats
	for _, p := range parts {
		if p == nil {
			continue
		}
		if g == nil {
			g = &GuideStats{Traces: p.Traces}
		}
		g.GuidedExecs += p.GuidedExecs
		g.Divergences += p.Divergences
		g.PrefixDepthSum += p.PrefixDepthSum
		g.ConsumedSum += p.ConsumedSum
	}
	if g != nil && g.GuidedExecs > 0 {
		n := float64(g.GuidedExecs)
		g.MeanPrefixDepth = float64(g.PrefixDepthSum) / n
		g.MeanConsumed = float64(g.ConsumedSum) / n
	}
	return g
}

func mergeCells(parts []*CellSummary) *CellSummary {
	first := parts[0]
	cell := &CellSummary{Program: first.Program}
	det := harness.Detection{}
	var timeWeighted int64
	keys := map[string]bool{}
	var guided []*GuideStats
	for _, p := range parts {
		det.Runs += p.Detection.Runs
		det.Detected += p.Detection.Detected
		det.Ops.Add(capi.OpStats{AtomicOps: p.Detection.AtomicOps, NormalOps: p.Detection.NormalOps})
		timeWeighted += p.Detection.MeanTimeNS * int64(p.Detection.Runs)
		for _, k := range p.RaceKeys {
			keys[k] = true
		}
		cell.Failed += p.Failed
		guided = append(guided, p.Guided)
		if p.Timing != nil {
			if cell.Timing == nil {
				cell.Timing = &obs.HistogramSnapshot{}
			}
			cell.Timing.Merge(p.Timing)
		}
		for name, h := range p.Phases {
			if cell.Phases == nil {
				cell.Phases = map[string]*obs.HistogramSnapshot{}
			}
			if cell.Phases[name] == nil {
				cell.Phases[name] = &obs.HistogramSnapshot{}
			}
			cell.Phases[name].Merge(h)
		}
	}
	if det.Runs > 0 {
		det.Time = time.Duration(timeWeighted / int64(det.Runs))
	}
	cell.Detection = det.Summary()
	cell.RaceKeys = harness.SortedKeys(keys)
	cell.Guided = mergeGuided(guided)
	return cell
}

func mergeLitmus(parts []*LitmusSummary) *LitmusSummary {
	first := parts[0]
	ls := &LitmusSummary{
		Test: first.Test, Outcomes: map[string]int{},
		WeakSeen: []string{}, WeakDefined: first.WeakDefined,
	}
	weak := map[string]bool{}
	type forb struct {
		repro harness.Repro
	}
	forbidden := map[string]forb{}
	var guided []*GuideStats
	for _, p := range parts {
		ls.Execs += p.Execs
		ls.Failed += p.Failed
		for out, n := range p.Outcomes {
			ls.Outcomes[out] += n
		}
		for _, w := range p.WeakSeen {
			weak[w] = true
		}
		for _, f := range p.ForbiddenSeen {
			if cur, seen := forbidden[f.Outcome]; !seen || f.Repro.Seed < cur.repro.Seed {
				forbidden[f.Outcome] = forb{repro: f.Repro}
			}
		}
		guided = append(guided, p.Guided)
		if p.Timing != nil {
			if ls.Timing == nil {
				ls.Timing = &obs.HistogramSnapshot{}
			}
			ls.Timing.Merge(p.Timing)
		}
		for name, h := range p.Phases {
			if ls.Phases == nil {
				ls.Phases = map[string]*obs.HistogramSnapshot{}
			}
			if ls.Phases[name] == nil {
				ls.Phases[name] = &obs.HistogramSnapshot{}
			}
			ls.Phases[name].Merge(h)
		}
	}
	ls.WeakSeen = harness.SortedKeys(weak)
	for _, out := range harness.SortedKeys(forbidden) {
		ls.ForbiddenSeen = append(ls.ForbiddenSeen, ForbiddenOutcome{
			Test: first.Test, Outcome: out,
			// Every occurrence of a forbidden outcome lands in its shard's
			// ForbiddenSeen (forbidden-ness is a pure predicate of the
			// outcome), so the merged count is the merged outcome count.
			Count: ls.Outcomes[out],
			Repro: forbidden[out].repro,
		})
	}
	ls.Guided = mergeGuided(guided)
	return ls
}

// parseVioSample recovers the (cell, seed) sort key from a violation sample
// line ("tool/program seed N: ..."). Samples are rendered by this package, so
// a parse failure means a corrupt artifact.
func parseVioSample(order map[string]int, tool, s string) (cell int, seed int64, err error) {
	rest, ok := strings.CutPrefix(s, tool+"/")
	if !ok {
		return 0, 0, fmt.Errorf("campaign: merge: malformed violation sample %q (want %q prefix)", s, tool+"/")
	}
	program, rest, ok := strings.Cut(rest, " seed ")
	if !ok {
		return 0, 0, fmt.Errorf("campaign: merge: malformed violation sample %q", s)
	}
	num, _, ok := strings.Cut(rest, ":")
	if !ok {
		return 0, 0, fmt.Errorf("campaign: merge: malformed violation sample %q", s)
	}
	seed, err = strconv.ParseInt(strings.TrimSpace(num), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("campaign: merge: malformed violation sample %q: %v", s, err)
	}
	// Validation runs on engine cells; litmus programs and benchmarks share
	// one name space in practice, and benchmarks come first in cell order —
	// prefer the benchmark slot, fall back to the litmus slot.
	if c, ok := order[program]; ok {
		return c, seed, nil
	}
	if c, ok := order["litmus/"+program]; ok {
		return c, seed, nil
	}
	return 0, 0, fmt.Errorf("campaign: merge: violation sample names unknown program %q", program)
}

// MergeManifests folds the shards' capture manifests into one, re-sorted
// canonically. Shards capture disjoint seed sets, so concatenation is exact.
func MergeManifests(parts []*obs.Manifest) *obs.Manifest {
	m := obs.NewManifest()
	m.Captures = []obs.CaptureRecord{}
	for _, p := range parts {
		m.Captures = append(m.Captures, p.Captures...)
	}
	m.Sort()
	return m
}

// lifecycleEvents are shard-local: their counts describe one process's run
// (its own wave barriers and campaign bracket), not the campaign outcome, so
// the canonical merged stream drops them.
var lifecycleEvents = map[string]bool{
	"campaign_start": true,
	"campaign_end":   true,
	"wave_start":     true,
	"wave_end":       true,
}

// CanonicalEvents reads one or more JSONL event streams and returns the
// canonical unit-level line set: lifecycle events dropped, timestamps
// stripped, lines re-marshaled through the Event schema and sorted. Two
// streams that observed the same executions — one machine or K shards, any
// worker interleaving — canonicalize to identical line sets. bad counts
// unparseable (torn) lines across all inputs.
func CanonicalEvents(paths ...string) (lines []string, bad int, err error) {
	lines = []string{}
	for _, path := range paths {
		b, err := safeio.ForEachJSONLine(path, func(line []byte) bool {
			var ev Event
			if json.Unmarshal(line, &ev) != nil || ev.Type == "" {
				return false
			}
			if lifecycleEvents[ev.Type] {
				return true
			}
			ev.T = 0
			// Re-marshal through the struct: field order is fixed by the
			// type, so equal events render equal bytes.
			out, err := json.Marshal(ev)
			if err != nil {
				return false
			}
			lines = append(lines, string(out))
			return true
		})
		bad += b
		if err != nil {
			return nil, bad, err
		}
	}
	sort.Strings(lines)
	return lines, bad, nil
}

// Schema identifiers of the shard manifest written next to a partial summary.
const (
	ShardManifestSchemaName    = "c11tester/shard"
	ShardManifestSchemaVersion = 1
)

// ShardManifest describes one shard's slice of a campaign: which shard, cut
// by which spec (digest + echo), built where, covering which seed ranges,
// with the partial's event/capture accounting. It makes a directory of
// partials auditable before merging.
type ShardManifest struct {
	Schema        string      `json:"schema"`
	SchemaVersion int         `json:"schema_version"`
	Shard         ShardInfo   `json:"shard"`
	Spec          SpecInfo    `json:"spec"`
	Provenance    *Provenance `json:"provenance,omitempty"`
	// SeedRanges are the [lo, hi) seed sub-ranges this shard ran in every
	// cell (the round-robin deal of the cell's chunk sequence).
	SeedRanges [][2]int64 `json:"seed_ranges"`
	// Execs counts completed executions; events/captures mirror the
	// summary's accounting.
	Execs         int    `json:"execs"`
	EventsEmitted uint64 `json:"events_emitted,omitempty"`
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	Captures      int    `json:"captures,omitempty"`
}

// BuildShardManifest renders the manifest of one partial summary.
func BuildShardManifest(spec Spec, sum *Summary) *ShardManifest {
	spec = spec.withDefaults()
	m := &ShardManifest{
		Schema: ShardManifestSchemaName, SchemaVersion: ShardManifestSchemaVersion,
		Spec:       sum.Spec,
		Provenance: sum.Provenance,
		SeedRanges: [][2]int64{},
	}
	if sum.Shard != nil {
		m.Shard = *sum.Shard
	}
	ord := 0
	for lo := 0; lo < spec.Runs; lo += spec.ShardSize {
		hi := lo + spec.ShardSize
		if hi > spec.Runs {
			hi = spec.Runs
		}
		if spec.Shard.Count <= 1 || ord%spec.Shard.Count == spec.Shard.Index {
			m.SeedRanges = append(m.SeedRanges, [2]int64{spec.SeedBase + int64(lo), spec.SeedBase + int64(hi)})
		}
		ord++
	}
	for _, ts := range sum.Tools {
		m.Execs += ts.Execs
		m.Captures += ts.Captures
	}
	if sum.Obs != nil {
		m.EventsEmitted = sum.Obs.EventsEmitted
		m.EventsDropped = sum.Obs.EventsDropped
	}
	return m
}

// WriteFile persists the shard manifest atomically.
func (m *ShardManifest) WriteFile(path string) error {
	return safeio.WriteJSONAtomic(path, m, 0o644)
}
