package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"c11tester/internal/trace"
)

// GuideSet is a directory of recorded traces indexed for trace-guided
// exploration: campaign cells whose (tool, program) matches a trace replay a
// prefix of its schedule before handing control to the live strategy
// (trace.PrefixGuide), concentrating executions near known — typically racy —
// schedules instead of sampling uniformly.
type GuideSet struct {
	dir   string
	byKey map[string][]*trace.Trace
	total int
}

func guideKey(tool, program string) string { return tool + "\x00" + program }

// LoadGuides reads every trace_*.json file in dir. The per-cell trace lists
// are sorted by (seed, schedule length), so guided campaigns are
// deterministic regardless of directory iteration order.
func LoadGuides(dir string) (*GuideSet, error) {
	files, err := filepath.Glob(filepath.Join(dir, "trace_*.json"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		if _, statErr := os.Stat(dir); statErr != nil {
			return nil, fmt.Errorf("campaign: guide directory: %v", statErr)
		}
		return nil, fmt.Errorf("campaign: guide directory %s contains no trace_*.json files", dir)
	}
	g := &GuideSet{dir: dir, byKey: map[string][]*trace.Trace{}}
	for _, f := range files {
		tr, err := trace.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("campaign: guide %s: %v", f, err)
		}
		key := guideKey(tr.Tool.Name, tr.Program)
		g.byKey[key] = append(g.byKey[key], tr)
		g.total++
	}
	for _, list := range g.byKey {
		sort.Slice(list, func(i, j int) bool {
			if list[i].Seed != list[j].Seed {
				return list[i].Seed < list[j].Seed
			}
			return list[i].Schedule.Len() < list[j].Schedule.Len()
		})
	}
	return g, nil
}

// For returns the traces guiding the (tool, program) cell, sorted; nil when
// the set holds none.
func (g *GuideSet) For(tool, program string) []*trace.Trace {
	if g == nil {
		return nil
	}
	return g.byKey[guideKey(tool, program)]
}

// Dir returns the directory the set was loaded from.
func (g *GuideSet) Dir() string { return g.dir }

// Len returns the total number of loaded traces.
func (g *GuideSet) Len() int { return g.total }
