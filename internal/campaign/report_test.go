package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"c11tester/internal/obs"
)

// TestReportEndToEnd drives the full forensics join on a real campaign: run a
// racy converge-policy matrix with the flight recorder armed and the event
// stream on, then render the report from the three artifacts and check every
// section is present and stitched from the right source.
func TestReportEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var events bytes.Buffer
	tel := NewTelemetry(TelemetryOptions{EventSink: &events})
	sum := Run(captureSpec(t, 2, dir, tel))

	evPath := filepath.Join(t.TempDir(), "events.jsonl")
	if err := os.WriteFile(evPath, events.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	evs, bad, err := ReadEvents(evPath)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("ReadEvents skipped %d lines of a clean stream", bad)
	}
	if len(evs) == 0 {
		t.Fatal("no events read back")
	}
	man, err := obs.ReadManifest(filepath.Join(dir, obs.ManifestFileName))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	WriteReport(&buf, sum, evs, man, ReportOptions{TopSlow: 3, CaptureDir: dir})
	out := buf.String()
	for _, want := range []string{
		"campaign forensics report (schema v",
		"matrix: 2 tool(s)",
		"build: go",
		"top 3 cell(s) by p99 ns/exec:",
		"race timeline (",
		"convergence curves (",
		"capture index (",
		"repro: go run ./cmd/c11trace replay ",
		"phase breakdown (mean)",
		"reset ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n--- report ---\n%s", want, out)
		}
	}
	// The capture index points each trace-backed entry into the capture dir.
	if !strings.Contains(out, filepath.Join(dir, "")) {
		t.Errorf("capture repro lines do not reference the capture dir %s", dir)
	}
}

// TestReadEventsToleratesTornLines pins the crash-forensics property of the
// reader: an events file whose final line was cut mid-write (or interleaved
// by a non-serialized writer) still yields every parseable event, with the
// damage counted rather than fatal.
func TestReadEventsToleratesTornLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	raw := `{"type":"campaign_start","wave":0}
not json at all
{"seq":3}
{"type":"exec_slow","tool":"c11tester","program":"ms-queue","seed":7}
{"type":"capture","trig`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	evs, bad, err := ReadEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("read %d events, want 2 (campaign_start + exec_slow)", len(evs))
	}
	if evs[0].Type != "campaign_start" || evs[1].Type != "exec_slow" {
		t.Fatalf("events = %q, %q", evs[0].Type, evs[1].Type)
	}
	if bad != 3 {
		t.Fatalf("counted %d bad lines, want 3 (garbage, typeless, torn tail)", bad)
	}

	if _, _, err := ReadEvents(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("missing file must be an error, not an empty stream")
	}
}

// TestWriteReportDegradesWithoutSidecars pins that the report renders from
// the summary alone: no events and no manifest means the optional sections
// say so instead of disappearing silently or panicking.
func TestWriteReportDegradesWithoutSidecars(t *testing.T) {
	var events bytes.Buffer
	tel := NewTelemetry(TelemetryOptions{EventSink: &events})
	sum := Run(captureSpec(t, 1, t.TempDir(), tel))

	var buf bytes.Buffer
	WriteReport(&buf, sum, nil, nil, ReportOptions{TopSlow: 2})
	out := buf.String()
	if !strings.Contains(out, "top 2 cell(s) by p99 ns/exec:") {
		t.Errorf("slow-cell table missing without sidecars:\n%s", out)
	}
	for _, absent := range []string{"race timeline (", "capture index ("} {
		if strings.Contains(out, absent) {
			t.Errorf("section %q rendered with no backing data:\n%s", absent, out)
		}
	}
}
