// Package chaostest is the fault-injection harness of the crash-safety
// tentpole: it drives REAL c11tester subprocesses, SIGKILLs them at
// randomized-but-seeded points mid-campaign, resumes them from their
// checkpoints until one run finishes, and asserts the survivor is
// indistinguishable from an uninterrupted campaign — byte-identical canonical
// summary, zero lost races, and readable (never torn) event and capture
// artifacts.
package chaostest

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"c11tester/internal/campaign"
	"c11tester/internal/obs"
)

// campaignArgs is the shared matrix of every run in this harness: adaptive
// policy (so resume crosses real wave barriers), two benchmark cells and two
// litmus cells, enough runs that a kill usually lands mid-campaign.
var campaignArgs = []string{
	"-tools", "c11tester",
	"-bench", "ms-queue,seqlock",
	"-litmus", "MP+rlx,CoRR",
	"-runs", "300",
	"-policy", "converge", "-min-execs", "120", "-window", "40",
	"-seed", "77",
	"-workers", "2",
	"-q",
}

// buildTester compiles cmd/c11tester once into dir and returns the binary
// path.
func buildTester(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "c11tester")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/c11tester")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building c11tester: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(wd))) // internal/campaign/chaostest → repo root
}

func canonicalSummary(t *testing.T, path string) string {
	t.Helper()
	sum, err := campaign.LoadSummary(path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	data, err := json.MarshalIndent(sum.Canonical(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestKillResumeByteIdentical is the harness's central assertion. It runs the
// campaign uninterrupted once, then runs the identical campaign under a
// seeded SIGKILL storm — kill, resume from the checkpoint, kill again — until
// an attempt completes, and compares artifacts.
func TestKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildTester(t, dir)

	runArgs := func(jsonPath, events, capDir string, extra ...string) []string {
		args := append([]string{}, campaignArgs...)
		args = append(args, "-json", jsonPath, "-events", events, "-capture", capDir)
		return append(args, extra...)
	}

	// Uninterrupted baseline.
	basePath := filepath.Join(dir, "base.json")
	baseEvents := filepath.Join(dir, "base-ev.jsonl")
	baseCap := filepath.Join(dir, "base-cap")
	start := time.Now()
	cmd := exec.Command(bin, runArgs(basePath, baseEvents, baseCap)...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("baseline campaign: %v\n%s", err, out)
	}
	baseDur := time.Since(start)

	// Chaos loop: seeded kill points spread over the campaign's natural
	// duration, so kills land in different waves across attempts.
	chaosPath := filepath.Join(dir, "chaos.json")
	chaosEvents := filepath.Join(dir, "chaos-ev.jsonl")
	chaosCap := filepath.Join(dir, "chaos-cap")
	ckPath := filepath.Join(dir, "ck.json")
	rng := rand.New(rand.NewSource(42))
	kills, completed := 0, false
	const maxAttempts = 60
	for attempt := 0; attempt < maxAttempts; attempt++ {
		cmd := exec.Command(bin, runArgs(chaosPath, chaosEvents, chaosCap,
			"-checkpoint", ckPath, "-resume", ckPath)...)
		cmd.Stderr = nil
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		// Kill somewhere inside the campaign's runtime envelope (including
		// very early, mid-write points).
		delay := time.Duration(rng.Int63n(int64(baseDur + baseDur/2)))
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("attempt %d: campaign failed on its own: %v", attempt, err)
			}
			completed = true
		case <-time.After(delay):
			_ = cmd.Process.Kill() // SIGKILL: no cleanup, no deferred writes
			<-done
			kills++
		}
		if completed {
			break
		}
	}
	if !completed {
		t.Fatalf("no attempt completed within %d kills", kills)
	}
	if kills == 0 {
		t.Log("warning: campaign completed before the first kill; resume path not exercised this run")
	}
	t.Logf("campaign survived %d SIGKILL(s) before completing", kills)

	// Byte-identical canonical summary: the headline guarantee.
	base, chaos := canonicalSummary(t, basePath), canonicalSummary(t, chaosPath)
	if base != chaos {
		t.Fatalf("resumed campaign differs from uninterrupted run after %d kill(s):\nbase:  %.2000s\nchaos: %.2000s", kills, base, chaos)
	}

	// Zero lost races, asserted directly on top of the byte identity.
	baseSum, err := campaign.LoadSummary(basePath)
	if err != nil {
		t.Fatal(err)
	}
	chaosSum, err := campaign.LoadSummary(chaosPath)
	if err != nil {
		t.Fatal(err)
	}
	for i, ts := range baseSum.Tools {
		if got := len(chaosSum.Tools[i].Races); got != len(ts.Races) {
			t.Errorf("%s: %d race(s) after chaos, want %d", ts.Tool, got, len(ts.Races))
		}
	}

	// Every event-stream generation — the final stream and each rotated
	// crash-era generation — must be readable; torn final lines are counted,
	// and only the last line of a generation may be torn.
	streams, err := filepath.Glob(chaosEvents + "*")
	if err != nil || len(streams) == 0 {
		t.Fatalf("no chaos event streams (err=%v)", err)
	}
	for _, s := range streams {
		if _, bad, err := campaign.ReadEvents(s); err != nil {
			t.Errorf("%s: %v", s, err)
		} else if bad > 1 {
			t.Errorf("%s: %d torn line(s); an appended stream can tear at most its final line", s, bad)
		}
	}

	// The capture manifest must be complete and intact (atomic write), and
	// every referenced trace file must exist — the crash-era attempts must
	// not have left dangling references.
	baseMan, err := obs.ReadManifest(filepath.Join(baseCap, obs.ManifestFileName))
	if err != nil {
		t.Fatal(err)
	}
	chaosMan, err := obs.ReadManifest(filepath.Join(chaosCap, obs.ManifestFileName))
	if err != nil {
		t.Fatalf("chaos capture manifest unreadable: %v", err)
	}
	if len(chaosMan.Captures) != len(baseMan.Captures) {
		t.Errorf("chaos run captured %d trace(s), baseline %d", len(chaosMan.Captures), len(baseMan.Captures))
	}
	for _, c := range chaosMan.Captures {
		if c.File == "" {
			continue
		}
		if _, err := os.Stat(filepath.Join(chaosCap, c.File)); err != nil {
			t.Errorf("manifest references missing capture file %s: %v", c.File, err)
		}
	}

	// The final checkpoint is marked complete, and one more -resume run
	// replays the identical summary without re-executing the campaign.
	ck, err := campaign.LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Complete {
		t.Fatalf("final checkpoint not complete: wave %d", ck.Wave)
	}
	replayPath := filepath.Join(dir, "replay.json")
	replay := exec.Command(bin, runArgs(replayPath, filepath.Join(dir, "replay-ev.jsonl"), filepath.Join(dir, "replay-cap"),
		"-resume", ckPath)...)
	if out, err := replay.CombinedOutput(); err != nil {
		t.Fatalf("replay from complete checkpoint: %v\n%s", err, out)
	}
	if got := canonicalSummary(t, replayPath); got != base {
		t.Error("replay from complete checkpoint differs from baseline")
	}
}

// TestShardFleetMerge drives the sharded half of the tentpole through real
// subprocesses: a 3-shard fleet plus c11merge must reproduce the
// single-machine artifact, and a torn partial must be refused with a
// structured error.
func TestShardFleetMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess shard harness skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildTester(t, dir)
	merge := filepath.Join(dir, "c11merge")
	build := exec.Command("go", "build", "-o", merge, "./cmd/c11merge")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building c11merge: %v\n%s", err, out)
	}

	args := []string{
		"-tools", "c11tester,tsan11",
		"-bench", "ms-queue",
		"-litmus", "MP+rlx,CoRR",
		"-runs", "60", "-seed", "31", "-q",
	}
	singlePath := filepath.Join(dir, "single.json")
	cmd := exec.Command(bin, append(append([]string{}, args...), "-json", singlePath)...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("single run: %v\n%s", err, out)
	}
	var parts []string
	for i := 0; i < 3; i++ {
		p := filepath.Join(dir, fmt.Sprintf("part%d.json", i))
		cmd := exec.Command(bin, append(append([]string{}, args...),
			"-json", p, "-shard", fmt.Sprintf("%d/3", i))...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("shard %d: %v\n%s", i, err, out)
		}
		if _, err := os.Stat(p + ".shard.json"); err != nil {
			t.Fatalf("shard %d wrote no manifest: %v", i, err)
		}
		parts = append(parts, p)
	}

	mergedPath := filepath.Join(dir, "merged.json")
	cmd = exec.Command(merge, append([]string{"-o", mergedPath, "-q"}, parts...)...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("merge: %v\n%s", err, out)
	}
	cmd = exec.Command(merge, "-equal", mergedPath, singlePath)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("merged artifact differs from single-machine run: %v\n%s", err, out)
	}

	// A torn partial must be refused with a structured error (exit 1), not a
	// panic and not a bogus merge.
	data, err := os.ReadFile(parts[1])
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(torn, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(merge, "-o", filepath.Join(dir, "bad.json"), parts[0], torn, parts[2])
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("merge accepted a torn partial:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("torn partial: %v (output %s), want exit 1", err, out)
	}
}
