package campaign

import (
	"fmt"

	"c11tester/internal/litmus"
	"c11tester/internal/structures"
	"c11tester/internal/trace"
)

// TraceSubject rebuilds the replay subject of a recorded trace: a fresh tool
// of the recorded configuration and the recorded program, looked up by name
// in the benchmark or litmus registry. cmd/c11trace and the replay tests use
// it to close the record → replay loop from a serialized trace alone.
func TraceSubject(tr *trace.Trace) (trace.Subject, error) {
	spec, err := StandardToolFromConfig(tr.Tool)
	if err != nil {
		return trace.Subject{}, err
	}
	s := trace.Subject{Tool: spec.New()}
	if tr.Litmus {
		t, ok := litmus.ByName(tr.Program)
		if !ok {
			return trace.Subject{}, fmt.Errorf("campaign: unknown litmus test %q in trace", tr.Program)
		}
		out := new(string)
		s.Prog = t.Make(out)
		s.Reset = func() { *out = "" }
		s.Outcome = func() string { return *out }
		return s, nil
	}
	b, err := structures.ByName(tr.Program)
	if err != nil {
		return trace.Subject{}, err
	}
	s.Prog = b.New()
	return s, nil
}
