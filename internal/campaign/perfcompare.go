package campaign

import (
	"fmt"

	"c11tester/internal/harness"
)

// PerfToolDelta is the per-tool movement between two perf artifacts
// (BENCH_perf.json). The allocation counters of a serial perf run are
// deterministic for a given binary and Go version, so they gate exactly
// (within AllocTolPct, default 0); ns/exec is a wall-clock measurement and
// gets a tolerance band instead.
type PerfToolDelta struct {
	Tool string `json:"tool"`

	OldNsPerExec float64 `json:"old_ns_per_exec"`
	NewNsPerExec float64 `json:"new_ns_per_exec"`
	// NsRatio is new over old (>1 is slower).
	NsRatio float64 `json:"ns_ratio"`

	OldBytesPerExec   float64 `json:"old_bytes_per_exec"`
	NewBytesPerExec   float64 `json:"new_bytes_per_exec"`
	OldObjectsPerExec float64 `json:"old_objects_per_exec"`
	NewObjectsPerExec float64 `json:"new_objects_per_exec"`
}

// regressed reports whether this tool moved beyond the comparison's
// tolerances: allocation growth past allocTol (a fraction; 0 means any
// growth), or a slowdown past nsTol.
func (d PerfToolDelta) regressed(nsTol, allocTol float64) bool {
	return growthExceeds(d.OldBytesPerExec, d.NewBytesPerExec, allocTol) ||
		growthExceeds(d.OldObjectsPerExec, d.NewObjectsPerExec, allocTol) ||
		(nsTol >= 0 && d.NsRatio > 1+nsTol)
}

// improvedAllocs reports whether either allocation counter shrank beyond
// allocTol — not a regression, but a signal the committed artifact is stale
// and should be regenerated.
func (d PerfToolDelta) improvedAllocs(allocTol float64) bool {
	return growthExceeds(d.NewBytesPerExec, d.OldBytesPerExec, allocTol) ||
		growthExceeds(d.NewObjectsPerExec, d.OldObjectsPerExec, allocTol)
}

// growthExceeds reports whether new exceeds old by more than tol (a
// fraction of old; tol 0 means any growth beyond float noise).
func growthExceeds(old, new, tol float64) bool {
	// Absolute epsilon absorbs float64 serialization rounding on tiny cells.
	const eps = 1e-9
	return new > old*(1+tol)+eps
}

// PerfComparison diffs two perf artifacts for PR-to-PR hot-path trajectory
// gating: the alloc counters (bytes/exec, objects/exec) gate exactly by
// default, ns/exec within NsTolPct. Tools are matched by name.
type PerfComparison struct {
	Tools        []PerfToolDelta `json:"tools"`
	UnmatchedOld []string        `json:"unmatched_old,omitempty"`
	UnmatchedNew []string        `json:"unmatched_new,omitempty"`
	// NsTolPct and AllocTolPct echo the tolerances the comparison gates
	// with, in percent; NsTolPct < 0 disables the timing leg.
	NsTolPct    float64 `json:"ns_tol_pct"`
	AllocTolPct float64 `json:"alloc_tol_pct"`
	// GoVersionOld/New flag environment skew: allocation counts are only
	// comparable between identical Go versions.
	GoVersionOld string `json:"go_version_old"`
	GoVersionNew string `json:"go_version_new"`
	// RegimeOld/New flag scheduler-regime skew ("<handoff>/<pooled|respawn>",
	// schema v2): comparing artifacts from different handoff regimes measures
	// the regime, not the code change.
	RegimeOld string `json:"regime_old,omitempty"`
	RegimeNew string `json:"regime_new,omitempty"`
	// RNGOld/New flag random-source skew (schema v3): changing the source
	// changes every decision stream, so the work measured differs too.
	RNGOld string `json:"rng_old,omitempty"`
	RNGNew string `json:"rng_new,omitempty"`
}

// regimeOf renders a summary's scheduler regime for skew warnings; schema v1
// artifacts predate the fields.
func regimeOf(s *PerfSummary) string {
	if s.SchemaVersion < 2 {
		return ""
	}
	return handoffOrDefault(s.Spec.Handoff) + "/" + schedLabel(s.Spec.Pooled)
}

// rngSourceOf resolves the random source a perf artifact was measured on:
// pre-v3 artifacts predate the echo and were drawn from legacy math/rand.
func rngSourceOf(s *PerfSummary) string {
	return rngOrDefault(s.Spec.RNG, s.SchemaVersion)
}

// ComparePerf diffs two perf artifacts. nsTolPct is the ns/exec tolerance
// band in percent (e.g. 20 accepts up to 1.2× slower; negative disables the
// timing leg); allocTolPct is the allocation tolerance in percent (0 gates
// exactly).
func ComparePerf(old, new *PerfSummary, nsTolPct, allocTolPct float64) *PerfComparison {
	c := &PerfComparison{
		NsTolPct: nsTolPct, AllocTolPct: allocTolPct,
		GoVersionOld: old.GoVersion, GoVersionNew: new.GoVersion,
		RegimeOld: regimeOf(old), RegimeNew: regimeOf(new),
		RNGOld: rngSourceOf(old), RNGNew: rngSourceOf(new),
	}
	oldTools := map[string]*PerfToolSummary{}
	for i := range old.Tools {
		oldTools[old.Tools[i].Tool] = &old.Tools[i]
	}
	matched := map[string]bool{}
	for i := range new.Tools {
		nt := &new.Tools[i]
		ot, ok := oldTools[nt.Tool]
		if !ok {
			c.UnmatchedNew = append(c.UnmatchedNew, nt.Tool)
			continue
		}
		matched[nt.Tool] = true
		d := PerfToolDelta{
			Tool:         nt.Tool,
			OldNsPerExec: ot.NsPerExec, NewNsPerExec: nt.NsPerExec,
			OldBytesPerExec: ot.AllocBytesPerExec, NewBytesPerExec: nt.AllocBytesPerExec,
			OldObjectsPerExec: ot.AllocObjectsPerExec, NewObjectsPerExec: nt.AllocObjectsPerExec,
		}
		if ot.NsPerExec > 0 {
			d.NsRatio = nt.NsPerExec / ot.NsPerExec
		}
		c.Tools = append(c.Tools, d)
	}
	for _, ot := range old.Tools {
		if !matched[ot.Tool] {
			c.UnmatchedOld = append(c.UnmatchedOld, ot.Tool)
		}
	}
	return c
}

// Regressed reports whether any tool's allocation counters grew beyond the
// alloc tolerance or its ns/exec slowed beyond the timing band — the signals
// the perf trajectory gate keys on.
func (c *PerfComparison) Regressed() bool {
	nsTol, allocTol := c.NsTolPct/100, c.AllocTolPct/100
	if c.NsTolPct < 0 {
		nsTol = -1
	}
	for _, d := range c.Tools {
		if d.regressed(nsTol, allocTol) {
			return true
		}
	}
	return false
}

// StaleAllocs reports whether any tool's allocation counters *shrank* beyond
// the alloc tolerance: an improvement, meaning the committed artifact should
// be regenerated so the gate keeps teeth.
func (c *PerfComparison) StaleAllocs() bool {
	allocTol := c.AllocTolPct / 100
	for _, d := range c.Tools {
		if d.improvedAllocs(allocTol) {
			return true
		}
	}
	return false
}

// String renders the human-readable perf comparison report.
func (c *PerfComparison) String() string {
	out := fmt.Sprintf("perf comparison (ns tolerance ±%.0f%%, alloc tolerance ±%.0f%%)\ngo version: %s → %s\n",
		c.NsTolPct, c.AllocTolPct, c.GoVersionOld, c.GoVersionNew)
	if c.GoVersionOld != c.GoVersionNew {
		out += "WARNING: artifacts were produced by different Go versions; allocation counts may differ for toolchain reasons\n"
	}
	if c.RegimeOld != c.RegimeNew && c.RegimeOld != "" && c.RegimeNew != "" {
		out += fmt.Sprintf("WARNING: scheduler regimes differ (%s vs %s); the comparison measures the regime, not the change\n",
			c.RegimeOld, c.RegimeNew)
	}
	if c.RNGOld != c.RNGNew && c.RNGOld != "" && c.RNGNew != "" {
		out += fmt.Sprintf("WARNING: rng sources differ (%s vs %s); decision streams and per-exec work are not like for like\n",
			c.RNGOld, c.RNGNew)
	}
	tb := &harness.Table{Header: []string{"tool", "ns/exec old", "ns/exec new", "ratio", "bytes/exec old", "bytes/exec new", "objs/exec old", "objs/exec new"}}
	for _, d := range c.Tools {
		tb.AddRow(d.Tool,
			fmt.Sprintf("%.0f", d.OldNsPerExec),
			fmt.Sprintf("%.0f", d.NewNsPerExec),
			fmt.Sprintf("%.2f×", d.NsRatio),
			fmt.Sprintf("%.1f", d.OldBytesPerExec),
			fmt.Sprintf("%.1f", d.NewBytesPerExec),
			fmt.Sprintf("%.2f", d.OldObjectsPerExec),
			fmt.Sprintf("%.2f", d.NewObjectsPerExec))
	}
	out += "\n" + tb.String()
	nsTol, allocTol := c.NsTolPct/100, c.AllocTolPct/100
	if c.NsTolPct < 0 {
		nsTol = -1
	}
	for _, d := range c.Tools {
		if growthExceeds(d.OldBytesPerExec, d.NewBytesPerExec, allocTol) {
			out += fmt.Sprintf("\n%s: ALLOC REGRESSION: bytes/exec %.1f → %.1f", d.Tool, d.OldBytesPerExec, d.NewBytesPerExec)
		}
		if growthExceeds(d.OldObjectsPerExec, d.NewObjectsPerExec, allocTol) {
			out += fmt.Sprintf("\n%s: ALLOC REGRESSION: objects/exec %.2f → %.2f", d.Tool, d.OldObjectsPerExec, d.NewObjectsPerExec)
		}
		if nsTol >= 0 && d.NsRatio > 1+nsTol {
			out += fmt.Sprintf("\n%s: TIMING REGRESSION: %.2f× slower (band ±%.0f%%)", d.Tool, d.NsRatio, c.NsTolPct)
		}
	}
	if len(c.UnmatchedOld) > 0 {
		out += fmt.Sprintf("\ntools only in old artifact: %v", c.UnmatchedOld)
	}
	if len(c.UnmatchedNew) > 0 {
		out += fmt.Sprintf("\ntools only in new artifact: %v", c.UnmatchedNew)
	}
	if c.Regressed() {
		out += "\n\nPERF REGRESSION: allocation growth beyond tolerance or timing beyond the band\n"
	} else if c.StaleAllocs() {
		out += "\n\nno regression; allocation counters improved — regenerate the committed BENCH_perf.json to keep the gate tight\n"
	} else {
		out += "\n\nno perf regression detected\n"
	}
	return out
}
