// Package campaign runs exploration campaigns: (tool × program × N
// executions) matrices like the ones behind the paper's Tables 1–4, sharded
// across a pool of worker goroutines.
//
// The campaign runner is built around one invariant: execution i of a
// (tool, program) cell always runs with seed SeedBase+i, and every tool in
// this repository re-derives all scheduling and reads-from choices from its
// seed, so the outcome of an execution is a pure function of (tool, program,
// seed). Sharding therefore only changes *when* an execution runs, never
// *what* it produces, and a K-worker campaign aggregates to byte-identical
// results as a serial one (wall-clock timings excepted — those are
// measurements, not model outcomes). The determinism test in this package
// pins that property.
//
// Shards, not executions, are the unit of work: each shard constructs a
// fresh tool instance from its ToolSpec factory (tool instances are
// stateful and not goroutine-safe) and runs a contiguous range of
// execution indices serially. Aggregation merges shard fragments with
// order-independent operations only — sums, histogram unions, and
// min-by-execution-index winners for race reproduction metadata.
package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"

	"c11tester/internal/axiom"
	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/harness"
	"c11tester/internal/litmus"
	"c11tester/internal/trace"
)

// ToolSpec names a tool and knows how to build fresh instances of it.
type ToolSpec struct {
	Name string
	// New constructs a fresh tool instance. Each shard calls it once, so
	// implementations must be safe to call concurrently (the instances
	// themselves are confined to one worker).
	New func() capi.Tool
	// Baseline marks the tsan11-family tools, for which a litmus test's
	// BaselineForbidden outcomes are forbidden in addition to Forbidden
	// (the fragment gap of Section 1.1).
	Baseline bool
	// ReproFlags are the non-default cmd/c11tester flags needed to rebuild
	// this tool configuration; they are embedded in every reproduction
	// command the campaign emits (see harness.Repro.Flags).
	ReproFlags string
	// TraceConfig is the portable tool identity embedded in recorded traces
	// (see internal/trace); StandardTool fills it in.
	TraceConfig trace.ToolConfig
}

// BenchmarkSpec is one program cell of the campaign matrix.
type BenchmarkSpec struct {
	Name string
	Prog capi.Program
	// Signal selects which bug signal counts as a detection for this
	// benchmark (races for the data-structure suite, assertion violations
	// for the injected-bug suite).
	Signal harness.Signal
}

// Spec describes a campaign.
type Spec struct {
	Tools      []ToolSpec
	Benchmarks []BenchmarkSpec
	Litmus     []*litmus.Test
	// Runs is the number of executions per (tool, program) cell.
	Runs int
	// SeedBase seeds execution i of every cell with SeedBase+i.
	SeedBase int64
	// Workers sizes the worker pool; 0 means GOMAXPROCS.
	Workers int
	// ShardSize is the number of executions per shard; 0 means 25.
	ShardSize int
	// RecordDir, when non-empty, persists a portable execution trace
	// (internal/trace) for every execution that exhibited a detection
	// signal, race, or forbidden outcome. RecordAll persists every
	// execution instead.
	RecordDir string
	RecordAll bool
	// ValidateAxioms checks every execution of a tool whose memory model
	// exposes total modification orders (core.MOProvider) against the
	// axiomatic model of Appendix A, counting violations in the summary;
	// executions of other tools are counted as skipped.
	ValidateAxioms bool
}

func (s Spec) withDefaults() Spec {
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	if s.ShardSize <= 0 {
		s.ShardSize = 25
	}
	if s.Runs < 0 {
		s.Runs = 0
	}
	return s
}

// jobKind distinguishes benchmark shards from litmus shards.
type jobKind uint8

const (
	jobBench jobKind = iota
	jobLitmus
)

// job is one shard: a contiguous execution-index range of one cell.
type job struct {
	kind   jobKind
	tool   int // index into Spec.Tools
	cell   int // index into Spec.Benchmarks or Spec.Litmus
	lo, hi int // execution indices [lo, hi)
}

// raceHit is a deduplicated race with the earliest execution that showed it.
type raceHit struct {
	report capi.RaceReport
	run    int // global execution index (seed = SeedBase+run)
}

// fragment is the result of one shard. Fields are aggregated with
// order-independent merges only, which is what keeps the campaign
// deterministic under any worker count.
type fragment struct {
	execs    int
	detected int
	ops      capi.OpStats
	elapsed  time.Duration
	races    map[string]raceHit // keyed by RaceReport.Key()
	// litmus only:
	outcomes  map[string]int
	forbidden map[string]int // outcome → earliest global execution index
	weak      map[string]int
	// trace/validation duties (Spec.RecordDir / Spec.ValidateAxioms):
	checked    int
	skipped    int
	violations int
	vioSamples []string
	recorded   int
	recordErrs int
	// allocation counters: global heap-allocation deltas observed around
	// this shard. Under concurrent workers they include other shards'
	// allocations; they are exact at Workers=1 and a regression signal
	// otherwise (like the shard wall-clock they sit next to).
	allocBytes uint64
	allocObjs  uint64
}

// maxViolationSamples caps the axiom-violation details carried per shard and
// per tool summary.
const maxViolationSamples = 5

// readAllocCounters reads the process-wide heap allocation counters (cheap,
// no stop-the-world).
func readAllocCounters() (bytes, objects uint64) {
	s := []metrics.Sample{
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/heap/allocs:objects"},
	}
	metrics.Read(s)
	return s[0].Value.Uint64(), s[1].Value.Uint64()
}

// Run executes the campaign and aggregates the results.
func Run(spec Spec) *Summary {
	spec = spec.withDefaults()
	if spec.RecordDir != "" {
		_ = os.MkdirAll(spec.RecordDir, 0o755)
	}
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	var jobs []job
	shard := func(kind jobKind, tool, cell int) {
		for lo := 0; lo < spec.Runs; lo += spec.ShardSize {
			hi := lo + spec.ShardSize
			if hi > spec.Runs {
				hi = spec.Runs
			}
			jobs = append(jobs, job{kind: kind, tool: tool, cell: cell, lo: lo, hi: hi})
		}
	}
	for t := range spec.Tools {
		for b := range spec.Benchmarks {
			shard(jobBench, t, b)
		}
		for l := range spec.Litmus {
			shard(jobLitmus, t, l)
		}
	}

	// Each worker writes only its own jobs' slots, so the fragment slice
	// needs no lock; merging happens after the barrier, in job order.
	frags := make([]fragment, len(jobs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < spec.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				frags[j] = runShard(spec, jobs[j])
			}
		}()
	}
	for j := range jobs {
		next <- j
	}
	close(next)
	wg.Wait()

	wall := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	gc := GCSummary{
		AllocBytes:   ms1.TotalAlloc - ms0.TotalAlloc,
		Mallocs:      ms1.Mallocs - ms0.Mallocs,
		NumGC:        ms1.NumGC - ms0.NumGC,
		PauseTotalNS: ms1.PauseTotalNs - ms0.PauseTotalNs,
	}
	return aggregate(spec, jobs, frags, wall, gc)
}

// runShard executes one shard with a fresh tool instance.
func runShard(spec Spec, j job) fragment {
	tool := spec.Tools[j.tool].New()
	frag := fragment{races: map[string]raceHit{}}

	// Trace duties: engines whose model exposes total modification orders
	// run in trace mode for validation and event recording; the recorder
	// strategy wrapper captures the schedule of every execution.
	eng, isEngine := tool.(*core.Engine)
	var mo core.MOProvider
	if isEngine {
		mo, _ = eng.Model().(core.MOProvider)
	}
	var rec *trace.Recorder
	if isEngine && mo != nil && (spec.ValidateAxioms || spec.RecordDir != "") {
		eng.SetTrace(true)
	}
	if isEngine && spec.RecordDir != "" {
		rec = trace.NewRecorder(eng.Strategy())
		eng.SetStrategy(rec)
	}
	// post runs after every execution: axiomatic validation and (for
	// signal-bearing executions, or all of them with RecordAll) trace
	// persistence. It must run before the engine's next Execute.
	post := func(res *capi.Result, i int, program string, isLit bool, outcome string, hit bool) {
		seed := spec.SeedBase + int64(i)
		if spec.ValidateAxioms {
			if mo != nil {
				frag.checked++
				if vs := axiom.Check(axiom.FromEngine(eng, mo)); len(vs) > 0 {
					frag.violations += len(vs)
					if len(frag.vioSamples) < maxViolationSamples {
						frag.vioSamples = append(frag.vioSamples,
							fmt.Sprintf("%s/%s seed %d: %v", tool.Name(), program, seed, vs[0]))
					}
				}
			} else {
				frag.skipped++
			}
		}
		if rec != nil && (hit || spec.RecordAll) {
			meta := trace.Meta{
				Tool: spec.Tools[j.tool].TraceConfig, Program: program,
				Litmus: isLit, Seed: seed, Outcome: outcome,
			}
			tr, err := trace.Record(eng, res, rec.Schedule(), meta)
			if err == nil {
				path := filepath.Join(spec.RecordDir, trace.FileName(tool.Name(), program, seed))
				err = tr.WriteFile(path)
			}
			if err == nil {
				frag.recorded++
			} else {
				// Counted and surfaced in the summary: a campaign asked to
				// persist traces must not drop them silently.
				frag.recordErrs++
			}
		}
	}

	a0bytes, a0objs := readAllocCounters()
	start := time.Now()
	switch j.kind {
	case jobBench:
		b := spec.Benchmarks[j.cell]
		for i := j.lo; i < j.hi; i++ {
			res := tool.Execute(b.Prog, spec.SeedBase+int64(i))
			frag.execs++
			hit := b.Signal.Hit(res)
			if hit {
				frag.detected++
			}
			frag.ops.Add(res.Stats)
			recordRaces(&frag, res, i)
			post(res, i, b.Name, false, "", hit || len(res.Races) > 0)
		}
	case jobLitmus:
		test := spec.Litmus[j.cell]
		frag.outcomes = map[string]int{}
		frag.forbidden = map[string]int{}
		frag.weak = map[string]int{}
		var out string
		prog := test.Make(&out)
		for i := j.lo; i < j.hi; i++ {
			out = ""
			res := tool.Execute(prog, spec.SeedBase+int64(i))
			frag.execs++
			frag.ops.Add(res.Stats)
			// Litmus programs only touch shared state atomically, so any
			// race here is a detector soundness bug, not a finding.
			recordRaces(&frag, res, i)
			forbidden := false
			if out != "" {
				frag.outcomes[out]++
				if isForbidden(test, out, spec.Tools[j.tool].Baseline) {
					forbidden = true
					if first, seen := frag.forbidden[out]; !seen || i < first {
						frag.forbidden[out] = i
					}
				}
				if test.Weak[out] {
					frag.weak[out]++
				}
			}
			post(res, i, test.Name, true, out, forbidden || len(res.Races) > 0)
		}
	}
	frag.elapsed = time.Since(start)
	a1bytes, a1objs := readAllocCounters()
	frag.allocBytes = a1bytes - a0bytes
	frag.allocObjs = a1objs - a0objs
	return frag
}

// recordRaces folds an execution's races into the shard fragment, keeping
// the earliest execution index per race key.
func recordRaces(frag *fragment, res *capi.Result, run int) {
	for _, r := range res.Races {
		key := r.Key()
		if hit, seen := frag.races[key]; !seen || run < hit.run {
			frag.races[key] = raceHit{report: r, run: run}
		}
	}
}

// isForbidden reports whether outcome is forbidden for the given tool
// flavour: the Forbidden set always, plus BaselineForbidden for the
// commit-order baselines.
func isForbidden(t *litmus.Test, outcome string, baseline bool) bool {
	if t.Forbidden[outcome] {
		return true
	}
	return baseline && t.BaselineForbidden[outcome]
}

// mergeRaces folds src into dst, keeping the earliest run per key.
func mergeRaces(dst map[string]raceHit, src map[string]raceHit) {
	for key, hit := range src {
		if cur, seen := dst[key]; !seen || hit.run < cur.run {
			dst[key] = hit
		}
	}
}

// Validate reports the first problem with the spec, or nil.
func (s Spec) Validate() error {
	if len(s.Tools) == 0 {
		return fmt.Errorf("campaign: no tools selected")
	}
	if s.RecordAll && s.RecordDir == "" {
		return fmt.Errorf("campaign: RecordAll requires RecordDir")
	}
	if len(s.Benchmarks) == 0 && len(s.Litmus) == 0 {
		return fmt.Errorf("campaign: no benchmarks or litmus tests selected")
	}
	if s.Runs <= 0 {
		return fmt.Errorf("campaign: runs must be positive, got %d", s.Runs)
	}
	seen := map[string]bool{}
	for _, t := range s.Tools {
		if t.New == nil {
			return fmt.Errorf("campaign: tool %q has no factory", t.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("campaign: duplicate tool %q", t.Name)
		}
		seen[t.Name] = true
	}
	// Duplicate program cells would double-count every aggregate.
	seenBench := map[string]bool{}
	for _, b := range s.Benchmarks {
		if seenBench[b.Name] {
			return fmt.Errorf("campaign: duplicate benchmark %q", b.Name)
		}
		seenBench[b.Name] = true
	}
	seenLit := map[string]bool{}
	for _, l := range s.Litmus {
		if seenLit[l.Name] {
			return fmt.Errorf("campaign: duplicate litmus test %q", l.Name)
		}
		seenLit[l.Name] = true
	}
	return nil
}
