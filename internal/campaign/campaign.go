// Package campaign runs exploration campaigns: (tool × program × N
// executions) matrices like the ones behind the paper's Tables 1–4, sharded
// across a pool of worker goroutines.
//
// The campaign runner is built around one invariant: execution i of a
// (tool, program) cell always runs with seed SeedBase+i, and every tool in
// this repository re-derives all scheduling and reads-from choices from its
// seed, so the outcome of an execution is a pure function of (tool, program,
// seed). Sharding therefore only changes *when* an execution runs, never
// *what* it produces, and a K-worker campaign aggregates to byte-identical
// results as a serial one (wall-clock timings excepted — those are
// measurements, not model outcomes). The determinism test in this package
// pins that property.
//
// Shards, not executions, are the unit of work: each shard constructs a
// fresh tool instance from its ToolSpec factory (tool instances are
// stateful and not goroutine-safe) and runs a contiguous range of
// execution indices serially. Aggregation merges shard fragments with
// order-independent operations only — sums, histogram unions, and
// min-by-execution-index winners for race reproduction metadata.
package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"c11tester/internal/capi"
	"c11tester/internal/harness"
	"c11tester/internal/litmus"
)

// ToolSpec names a tool and knows how to build fresh instances of it.
type ToolSpec struct {
	Name string
	// New constructs a fresh tool instance. Each shard calls it once, so
	// implementations must be safe to call concurrently (the instances
	// themselves are confined to one worker).
	New func() capi.Tool
	// Baseline marks the tsan11-family tools, for which a litmus test's
	// BaselineForbidden outcomes are forbidden in addition to Forbidden
	// (the fragment gap of Section 1.1).
	Baseline bool
	// ReproFlags are the non-default cmd/c11tester flags needed to rebuild
	// this tool configuration; they are embedded in every reproduction
	// command the campaign emits (see harness.Repro.Flags).
	ReproFlags string
}

// BenchmarkSpec is one program cell of the campaign matrix.
type BenchmarkSpec struct {
	Name string
	Prog capi.Program
	// Signal selects which bug signal counts as a detection for this
	// benchmark (races for the data-structure suite, assertion violations
	// for the injected-bug suite).
	Signal harness.Signal
}

// Spec describes a campaign.
type Spec struct {
	Tools      []ToolSpec
	Benchmarks []BenchmarkSpec
	Litmus     []*litmus.Test
	// Runs is the number of executions per (tool, program) cell.
	Runs int
	// SeedBase seeds execution i of every cell with SeedBase+i.
	SeedBase int64
	// Workers sizes the worker pool; 0 means GOMAXPROCS.
	Workers int
	// ShardSize is the number of executions per shard; 0 means 25.
	ShardSize int
}

func (s Spec) withDefaults() Spec {
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	if s.ShardSize <= 0 {
		s.ShardSize = 25
	}
	if s.Runs < 0 {
		s.Runs = 0
	}
	return s
}

// jobKind distinguishes benchmark shards from litmus shards.
type jobKind uint8

const (
	jobBench jobKind = iota
	jobLitmus
)

// job is one shard: a contiguous execution-index range of one cell.
type job struct {
	kind   jobKind
	tool   int // index into Spec.Tools
	cell   int // index into Spec.Benchmarks or Spec.Litmus
	lo, hi int // execution indices [lo, hi)
}

// raceHit is a deduplicated race with the earliest execution that showed it.
type raceHit struct {
	report capi.RaceReport
	run    int // global execution index (seed = SeedBase+run)
}

// fragment is the result of one shard. Fields are aggregated with
// order-independent merges only, which is what keeps the campaign
// deterministic under any worker count.
type fragment struct {
	execs    int
	detected int
	ops      capi.OpStats
	elapsed  time.Duration
	races    map[string]raceHit // keyed by RaceReport.Key()
	// litmus only:
	outcomes  map[string]int
	forbidden map[string]int // outcome → earliest global execution index
	weak      map[string]int
}

// Run executes the campaign and aggregates the results.
func Run(spec Spec) *Summary {
	spec = spec.withDefaults()
	start := time.Now()

	var jobs []job
	shard := func(kind jobKind, tool, cell int) {
		for lo := 0; lo < spec.Runs; lo += spec.ShardSize {
			hi := lo + spec.ShardSize
			if hi > spec.Runs {
				hi = spec.Runs
			}
			jobs = append(jobs, job{kind: kind, tool: tool, cell: cell, lo: lo, hi: hi})
		}
	}
	for t := range spec.Tools {
		for b := range spec.Benchmarks {
			shard(jobBench, t, b)
		}
		for l := range spec.Litmus {
			shard(jobLitmus, t, l)
		}
	}

	// Each worker writes only its own jobs' slots, so the fragment slice
	// needs no lock; merging happens after the barrier, in job order.
	frags := make([]fragment, len(jobs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < spec.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				frags[j] = runShard(spec, jobs[j])
			}
		}()
	}
	for j := range jobs {
		next <- j
	}
	close(next)
	wg.Wait()

	return aggregate(spec, jobs, frags, time.Since(start))
}

// runShard executes one shard with a fresh tool instance.
func runShard(spec Spec, j job) fragment {
	tool := spec.Tools[j.tool].New()
	frag := fragment{races: map[string]raceHit{}}
	start := time.Now()
	switch j.kind {
	case jobBench:
		b := spec.Benchmarks[j.cell]
		for i := j.lo; i < j.hi; i++ {
			res := tool.Execute(b.Prog, spec.SeedBase+int64(i))
			frag.execs++
			if b.Signal.Hit(res) {
				frag.detected++
			}
			frag.ops.Add(res.Stats)
			recordRaces(&frag, res, i)
		}
	case jobLitmus:
		test := spec.Litmus[j.cell]
		frag.outcomes = map[string]int{}
		frag.forbidden = map[string]int{}
		frag.weak = map[string]int{}
		var out string
		prog := test.Make(&out)
		for i := j.lo; i < j.hi; i++ {
			out = ""
			res := tool.Execute(prog, spec.SeedBase+int64(i))
			frag.execs++
			frag.ops.Add(res.Stats)
			// Litmus programs only touch shared state atomically, so any
			// race here is a detector soundness bug, not a finding.
			recordRaces(&frag, res, i)
			if out == "" {
				continue
			}
			frag.outcomes[out]++
			if isForbidden(test, out, spec.Tools[j.tool].Baseline) {
				if first, seen := frag.forbidden[out]; !seen || i < first {
					frag.forbidden[out] = i
				}
			}
			if test.Weak[out] {
				frag.weak[out]++
			}
		}
	}
	frag.elapsed = time.Since(start)
	return frag
}

// recordRaces folds an execution's races into the shard fragment, keeping
// the earliest execution index per race key.
func recordRaces(frag *fragment, res *capi.Result, run int) {
	for _, r := range res.Races {
		key := r.Key()
		if hit, seen := frag.races[key]; !seen || run < hit.run {
			frag.races[key] = raceHit{report: r, run: run}
		}
	}
}

// isForbidden reports whether outcome is forbidden for the given tool
// flavour: the Forbidden set always, plus BaselineForbidden for the
// commit-order baselines.
func isForbidden(t *litmus.Test, outcome string, baseline bool) bool {
	if t.Forbidden[outcome] {
		return true
	}
	return baseline && t.BaselineForbidden[outcome]
}

// mergeRaces folds src into dst, keeping the earliest run per key.
func mergeRaces(dst map[string]raceHit, src map[string]raceHit) {
	for key, hit := range src {
		if cur, seen := dst[key]; !seen || hit.run < cur.run {
			dst[key] = hit
		}
	}
}

// Validate reports the first problem with the spec, or nil.
func (s Spec) Validate() error {
	if len(s.Tools) == 0 {
		return fmt.Errorf("campaign: no tools selected")
	}
	if len(s.Benchmarks) == 0 && len(s.Litmus) == 0 {
		return fmt.Errorf("campaign: no benchmarks or litmus tests selected")
	}
	if s.Runs <= 0 {
		return fmt.Errorf("campaign: runs must be positive, got %d", s.Runs)
	}
	seen := map[string]bool{}
	for _, t := range s.Tools {
		if t.New == nil {
			return fmt.Errorf("campaign: tool %q has no factory", t.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("campaign: duplicate tool %q", t.Name)
		}
		seen[t.Name] = true
	}
	// Duplicate program cells would double-count every aggregate.
	seenBench := map[string]bool{}
	for _, b := range s.Benchmarks {
		if seenBench[b.Name] {
			return fmt.Errorf("campaign: duplicate benchmark %q", b.Name)
		}
		seenBench[b.Name] = true
	}
	seenLit := map[string]bool{}
	for _, l := range s.Litmus {
		if seenLit[l.Name] {
			return fmt.Errorf("campaign: duplicate litmus test %q", l.Name)
		}
		seenLit[l.Name] = true
	}
	return nil
}
