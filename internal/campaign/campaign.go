// Package campaign runs exploration campaigns: (tool × program × N
// executions) matrices like the ones behind the paper's Tables 1–4, sharded
// across a pool of worker goroutines.
//
// The campaign runner is built around one invariant: execution i of a
// (tool, program) cell always runs with seed SeedBase+i, and every tool in
// this repository re-derives all scheduling and reads-from choices from its
// seed, so the outcome of an execution is a pure function of (tool, program,
// seed). Sharding therefore only changes *when* an execution runs, never
// *what* it produces, and a K-worker campaign aggregates to byte-identical
// results as a serial one (wall-clock timings excepted — those are
// measurements, not model outcomes). The determinism test in this package
// pins that property. Budget policies (internal/explore) preserve it: a
// cell's stop point is a pure function of its own observation stream in
// index order, and the freed-budget redistribution is computed at
// deterministic barriers between waves, so adaptive campaigns are as
// worker-count-independent as uniform ones. Trace-guided cells preserve it
// too: the replayed prefix depth is derived from the execution's seed.
//
// Under the uniform policy, shards — contiguous execution-index ranges of
// one cell — are the unit of work; under an adaptive policy the unit is a
// whole-cell grant, run chunk-by-chunk with convergence checks between
// chunks. Either way each unit constructs a fresh tool instance from its
// ToolSpec factory (tool instances are stateful and not goroutine-safe) and
// runs its execution indices serially. Aggregation merges fragments with
// order-independent operations only — sums, histogram unions, and
// min-by-execution-index winners for race reproduction metadata.
package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"

	"c11tester/internal/analysis"
	"c11tester/internal/axiom"
	"c11tester/internal/capi"
	"c11tester/internal/core"
	"c11tester/internal/explore"
	"c11tester/internal/harness"
	"c11tester/internal/litmus"
	"c11tester/internal/obs"
	"c11tester/internal/rng"
	"c11tester/internal/trace"
)

// ToolSpec names a tool and knows how to build fresh instances of it.
type ToolSpec struct {
	Name string
	// New constructs a fresh tool instance. Each shard calls it once, so
	// implementations must be safe to call concurrently (the instances
	// themselves are confined to one worker).
	New func() capi.Tool
	// Baseline marks the tsan11-family tools, for which a litmus test's
	// BaselineForbidden outcomes are forbidden in addition to Forbidden
	// (the fragment gap of Section 1.1).
	Baseline bool
	// ReproFlags are the non-default cmd/c11tester flags needed to rebuild
	// this tool configuration; they are embedded in every reproduction
	// command the campaign emits (see harness.Repro.Flags).
	ReproFlags string
	// TraceConfig is the portable tool identity embedded in recorded traces
	// (see internal/trace); StandardTool fills it in.
	TraceConfig trace.ToolConfig
}

// BenchmarkSpec is one program cell of the campaign matrix.
type BenchmarkSpec struct {
	Name string
	// New builds a fresh program instance. Instances carry reusable state
	// across executions (see structures.Benchmark), so each unit of work
	// builds its own, exactly as it builds its own tool instance.
	New func() capi.Program
	// Signal selects which bug signal counts as a detection for this
	// benchmark (races for the data-structure suite, assertion violations
	// for the injected-bug suite).
	Signal harness.Signal
}

// Spec describes a campaign.
type Spec struct {
	Tools      []ToolSpec
	Benchmarks []BenchmarkSpec
	Litmus     []*litmus.Test
	// Runs is the number of executions per (tool, program) cell — under an
	// adaptive policy, the cell's initial budget.
	Runs int
	// SeedBase seeds execution i of every cell with SeedBase+i.
	SeedBase int64
	// Workers sizes the worker pool; 0 means GOMAXPROCS.
	Workers int
	// ShardSize is the number of executions per shard; 0 means 25.
	ShardSize int
	// Policy selects the per-cell budget policy (internal/explore). Nil
	// means explore.Uniform{}: every cell runs exactly Runs executions. An
	// adaptive policy may stop a cell early once its statistics converge and
	// reassigns the freed budget to still-diverging cells, keeping the
	// campaign total at most Runs × cells.
	Policy explore.Policy
	// Guides supplies recorded traces for trace-guided exploration: engine
	// cells whose (tool, program) matches a loaded trace replay a prefix of
	// its schedule before handing control to the live strategy (see
	// trace.PrefixGuide). Execution i of a guided cell follows trace i mod
	// len(traces), with the prefix depth drawn from the execution's seed.
	Guides *GuideSet
	// GuideMinFrac and GuideMaxFrac bound the replayed prefix depth as
	// fractions of the guiding schedule's choice count; zero means the
	// trace.DefaultGuideMinFrac/MaxFrac skew-deep range.
	GuideMinFrac, GuideMaxFrac float64
	// RecordDir, when non-empty, persists a portable execution trace
	// (internal/trace) for every execution that exhibited a detection
	// signal, race, or forbidden outcome. RecordAll persists every
	// execution instead.
	RecordDir string
	RecordAll bool
	// CaptureDir arms the anomaly-triggered flight recorder: every unit of
	// work watches its execution digests, and executions that trip a trigger
	// (first-seen race key, infeasible model state, forbidden litmus outcome,
	// schedule length above the unit's trailing p99) are re-run with a trace
	// recorder attached and written here as portable traces, indexed by a
	// canonical manifest.json. The capture set is a pure function of the seed
	// indices, so workers=1 ≡ workers=K yields an identical capture
	// directory.
	CaptureDir string
	// CaptureSlowNS additionally arms the wall-clock slow-execution trigger.
	// Wall time is not a pure function of the seed, so this trigger breaks
	// the capture set's worker-count independence; it is a diagnosis aid,
	// off by default.
	CaptureSlowNS bool
	// ValidateAxioms checks every execution of a tool whose memory model
	// exposes total modification orders (core.MOProvider) against the
	// axiomatic model of Appendix A, counting violations in the summary;
	// executions of other tools are counted as skipped.
	ValidateAxioms bool
	// RNG echoes the random source the spec's tools were built with ("pcg"
	// or "legacy"; empty means pcg) into the summary and the spec digest.
	// Like PerfSpec.Handoff it does not itself configure the tools — the
	// ToolSpec factories do (ToolOptions.RNG) — but Validate rejects unknown
	// names so a typo fails fast instead of silently echoing the default.
	RNG string
	// Analyzers names the internal/analysis plug-ins to run over every
	// finished execution (e.g. "sc-robustness", "atomicity"). Each cell
	// builds its own instances; analyzers whose trace or modification-order
	// needs the cell's tool cannot meet are skipped on that cell, mirroring
	// how validation skips non-MOProvider tools. Findings are deduplicated
	// per (analyzer, cell, key) with min-seed repro winners and merged
	// across shards exactly like races. Empty (the default) composes no
	// analyzer stage — the default pipeline is byte-identical to the
	// pre-analyzer runner, and stays allocation-free.
	Analyzers []string
	// Telemetry is the campaign's observability fabric (metrics registry,
	// event stream, live progress). Nil means Run builds a quiet internal
	// one — the metrics core is always on (it is allocation-free and the
	// summary's timing histograms come from it); event emission and progress
	// lines only happen when the caller configures them. One Telemetry
	// serves exactly one Run.
	Telemetry *Telemetry `json:"-"`
	// Shard restricts the campaign to shard Index of Count (uniform policy
	// only): each cell's chunk sequence is dealt round-robin across the
	// shards, so the K partial runs cover exactly the seed set of the
	// single-machine run. The zero value (Count ≤ 1) runs everything. A
	// sharded summary carries a ShardInfo header; cmd/c11merge folds K
	// partials back into the single-machine artifact.
	Shard ShardSel
	// CheckpointPath, when non-empty, persists an atomic checkpoint of
	// completed-wave state there at every deterministic wave barrier, plus a
	// final Complete checkpoint when the campaign ends. Checkpoint write
	// failures never abort the campaign; they are counted in the summary
	// (CheckpointErrors) and warned to stderr.
	CheckpointPath string
	// Resume, when non-nil, restores checkpointed state instead of starting
	// fresh: the runner re-enters at the first incomplete wave, and the
	// finished artifact is byte-identical (Summary.Canonical) to an
	// uninterrupted run. Load with LoadCheckpoint and gate with
	// Checkpoint.ValidateAgainst — a checkpoint from a different spec refuses
	// to resume.
	Resume *Checkpoint `json:"-"`
	// checkpointHook observes every checkpoint just before it is persisted
	// (fault-injection tests).
	checkpointHook func(*Checkpoint)
}

func (s Spec) withDefaults() Spec {
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	if s.ShardSize <= 0 {
		s.ShardSize = 25
	}
	if s.Runs < 0 {
		s.Runs = 0
	}
	if s.Policy == nil {
		s.Policy = explore.Uniform{}
	}
	return s
}

// jobKind distinguishes benchmark shards from litmus shards.
type jobKind uint8

const (
	jobBench jobKind = iota
	jobLitmus
)

// job is one unit of work: a contiguous execution-index range of one cell.
type job struct {
	kind   jobKind
	tool   int // index into Spec.Tools
	cell   int // index into Spec.Benchmarks or Spec.Litmus
	lo, hi int // execution indices [lo, hi)
}

// raceHit is a deduplicated race with the earliest execution that showed it.
// It carries the report's rendered description rather than the
// capi.RaceReport itself: tools recycle their race-report storage across
// Execute calls, so retaining a report beyond runOne would alias mutated
// memory. Rendering happens only on first sight (or an earlier-run upgrade),
// never in the steady state.
type raceHit struct {
	desc string // RaceReport.String() of the winning sighting
	run  int    // global execution index (seed = SeedBase+run)
}

// execFailure is one execution the tool itself aborted (core.InfeasibleError
// surfaced through capi.Result.EngineError, or an infeasible
// modification-order lifting hit while validating/recording the execution).
type execFailure struct {
	run int // global execution index (seed = SeedBase+run)
	err string
}

// findingID identifies one deduplicated analyzer finding within a cell —
// the analyzer's name plus the finding's key (analysis.Finding.Key).
type findingID struct {
	analyzer string
	key      string
}

// findingHit is a deduplicated analyzer finding: the description of the
// earliest execution that showed it (the repro winner, like raceHit) plus
// the number of executions that reproduced it.
type findingHit struct {
	desc  string
	run   int // global execution index of the winner (seed = SeedBase+run)
	count int
}

// fragment is the result of one unit of work. Fields are aggregated with
// order-independent merges only, which is what keeps the campaign
// deterministic under any worker count.
type fragment struct {
	execs    int
	detected int
	ops      capi.OpStats
	elapsed  time.Duration
	races    map[string]raceHit // keyed by RaceReport.Key()
	// litmus only:
	outcomes  map[string]int
	forbidden map[string]int // outcome → earliest global execution index
	weak      map[string]int
	// engine failures (see execFailure): failed counts them, failures
	// samples the earliest few.
	failed   int
	failures []execFailure
	// guided-exploration statistics (cells running under a PrefixGuide):
	guidedExecs    int
	prefixDepth    int64 // summed intended depths
	prefixConsumed int64 // summed choices consumed before handoff
	divergences    int   // executions whose prefix diverged
	// trace/validation duties (Spec.RecordDir / Spec.ValidateAxioms):
	checked    int
	skipped    int
	violations int
	vioSamples []string
	recorded   int
	recordErrs int
	// analyzer findings (Spec.Analyzers), deduplicated per (analyzer, key)
	// with min-run winners; nil when no analyzer stage is composed.
	findings map[findingID]findingHit
	// flight-recorder captures (Spec.CaptureDir), in execution-index order
	// within the unit.
	captures []obs.CaptureRecord
	// allocation counters: global heap-allocation deltas observed around
	// this unit. Under concurrent workers they include other units'
	// allocations; they are exact at Workers=1 and a regression signal
	// otherwise (like the wall-clock they sit next to).
	allocBytes uint64
	allocObjs  uint64
}

// maxViolationSamples caps the axiom-violation and engine-failure details
// carried per fragment and per tool summary.
const maxViolationSamples = 5

// merge folds src into dst with the same order-independent operations (and
// the same sample caps, applied in the same order) as cellAcc.merge, so a
// checkpoint that collapses a cell's completed jobs into one fragment
// aggregates byte-identically to the original job sequence. Callers merge in
// job order — execution-index order within a cell — which keeps the capped
// sample lists deterministic.
func (dst *fragment) merge(src *fragment) {
	dst.execs += src.execs
	dst.detected += src.detected
	dst.ops.Add(src.ops)
	dst.elapsed += src.elapsed
	if dst.races == nil {
		dst.races = map[string]raceHit{}
	}
	mergeRaces(dst.races, src.races)
	for out, n := range src.outcomes {
		if dst.outcomes == nil {
			dst.outcomes = map[string]int{}
		}
		dst.outcomes[out] += n
	}
	for out, first := range src.forbidden {
		if dst.forbidden == nil {
			dst.forbidden = map[string]int{}
		}
		if cur, seen := dst.forbidden[out]; !seen || first < cur {
			dst.forbidden[out] = first
		}
	}
	for out, n := range src.weak {
		if dst.weak == nil {
			dst.weak = map[string]int{}
		}
		dst.weak[out] += n
	}
	dst.failed += src.failed
	for _, fl := range src.failures {
		if len(dst.failures) >= maxViolationSamples {
			break
		}
		dst.failures = append(dst.failures, fl)
	}
	dst.guidedExecs += src.guidedExecs
	dst.prefixDepth += src.prefixDepth
	dst.prefixConsumed += src.prefixConsumed
	dst.divergences += src.divergences
	dst.checked += src.checked
	dst.skipped += src.skipped
	dst.violations += src.violations
	for _, s := range src.vioSamples {
		if len(dst.vioSamples) >= maxViolationSamples {
			break
		}
		dst.vioSamples = append(dst.vioSamples, s)
	}
	dst.recorded += src.recorded
	dst.recordErrs += src.recordErrs
	for id, hit := range src.findings {
		if dst.findings == nil {
			dst.findings = map[findingID]findingHit{}
		}
		if cur, seen := dst.findings[id]; seen {
			if hit.run < cur.run {
				cur.desc, cur.run = hit.desc, hit.run
			}
			cur.count += hit.count
			dst.findings[id] = cur
		} else {
			dst.findings[id] = hit
		}
	}
	dst.captures = append(dst.captures, src.captures...)
	dst.allocBytes += src.allocBytes
	dst.allocObjs += src.allocObjs
}

// readAllocCounters reads the process-wide heap allocation counters (cheap,
// no stop-the-world).
func readAllocCounters() (bytes, objects uint64) {
	s := []metrics.Sample{
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/heap/allocs:objects"},
	}
	metrics.Read(s)
	return s[0].Value.Uint64(), s[1].Value.Uint64()
}

// Run executes the campaign and aggregates the results.
func Run(spec Spec) *Summary {
	spec = spec.withDefaults()
	if spec.RecordDir != "" {
		_ = os.MkdirAll(spec.RecordDir, 0o755)
	}
	if spec.CaptureDir != "" {
		_ = os.MkdirAll(spec.CaptureDir, 0o755)
	}
	tel := spec.Telemetry
	if tel == nil {
		tel = NewTelemetry(TelemetryOptions{})
		spec.Telemetry = tel
	}
	// Register the per-cell metric handles before the measured window so
	// registration (the only allocating part of the metrics core) never
	// shows up in the campaign's GC summary.
	tel.bind(spec)
	tel.campaignStart(specInfo(spec))

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	ck := &ckState{path: spec.CheckpointPath, hook: spec.checkpointHook}
	var jobs []job
	var frags []fragment
	var budgets map[cellKey]*BudgetSummary
	_, uniform := spec.Policy.(explore.Uniform)
	switch {
	case spec.Resume != nil && spec.Resume.Complete:
		// The previous run finished its matrix and checkpointed Complete but
		// died before (or while) writing the artifacts: rebuild them from the
		// checkpoint without re-running anything.
		jobs, frags, budgets = restoreComplete(spec, spec.Resume, !uniform)
	case uniform:
		jobs, frags = runUniform(spec, tel)
		ck.save(spec, tel, 1, true, nil, jobs, frags)
	default:
		jobs, frags, budgets = runAdaptive(spec, tel, ck)
	}

	wall := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	gc := GCSummary{
		AllocBytes:   ms1.TotalAlloc - ms0.TotalAlloc,
		Mallocs:      ms1.Mallocs - ms0.Mallocs,
		NumGC:        ms1.NumGC - ms0.NumGC,
		PauseTotalNS: ms1.PauseTotalNs - ms0.PauseTotalNs,
	}
	sum := aggregate(spec, jobs, frags, budgets, wall, gc)
	sum.CheckpointErrors = ck.errs
	if spec.Shard.Count > 1 {
		sum.Shard = &ShardInfo{Index: spec.Shard.Index, Count: spec.Shard.Count,
			SpecDigest: SpecDigest(spec)}
	}
	if spec.CaptureDir != "" {
		// Write the canonical capture manifest (an empty one when nothing
		// triggered — consumers rely on the file existing). The manifest is
		// sorted by (tool, litmus, program, seed), so it is byte-identical
		// for any worker count.
		if err := captureManifest(frags).WriteFile(filepath.Join(spec.CaptureDir, obs.ManifestFileName)); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: write capture manifest: %v\n", err)
		}
	}
	// campaignEnd closes the event stream (flushing everything queued), so
	// the drop counter folded into the summary is final.
	tel.campaignEnd(totalExecs(sum))
	sum.Obs = &ObsSummary{
		EventsEmitted: tel.EventsEmitted(),
		EventsDropped: tel.EventsDropped(),
	}
	return sum
}

// totalExecs sums the per-tool execution counts of a summary.
func totalExecs(s *Summary) int {
	n := 0
	for _, ts := range s.Tools {
		n += ts.Execs
	}
	return n
}

// runPool executes jobs[i] for every i via fn across the spec's worker pool.
// Each worker writes only its own jobs' fragment slots, so the slice needs no
// lock; the caller merges after the barrier, in job order.
func runPool(spec Spec, n int, fn func(i int)) {
	next := make(chan int)
	var wg sync.WaitGroup
	workers := spec.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// runUniform is the fixed-budget path: every cell is split into shards of
// ShardSize executions, and shards are distributed over the worker pool. The
// whole pass is one telemetry wave. Under Spec.Shard, each cell's chunk
// sequence is dealt round-robin and only this shard's deal is run — the K
// shard runs partition the exact job set of the unsharded run, which is what
// makes the merged artifact byte-identical to it.
func runUniform(spec Spec, tel *Telemetry) ([]job, []fragment) {
	var jobs []job
	shard := func(kind jobKind, tool, cell int) {
		ord := 0
		for lo := 0; lo < spec.Runs; lo += spec.ShardSize {
			hi := lo + spec.ShardSize
			if hi > spec.Runs {
				hi = spec.Runs
			}
			if spec.Shard.Count <= 1 || ord%spec.Shard.Count == spec.Shard.Index {
				jobs = append(jobs, job{kind: kind, tool: tool, cell: cell, lo: lo, hi: hi})
			}
			ord++
		}
	}
	for t := range spec.Tools {
		for b := range spec.Benchmarks {
			shard(jobBench, t, b)
		}
		for l := range spec.Litmus {
			shard(jobLitmus, t, l)
		}
	}
	tel.waveStart(1, len(jobs))
	frags := make([]fragment, len(jobs))
	runPool(spec, len(jobs), func(i int) {
		tel.unitStart(1, jobs[i], jobs[i].hi-jobs[i].lo)
		r := newCellRunner(spec, jobs[i])
		r.run(jobs[i].lo, jobs[i].hi, nil)
		r.close()
		frags[i] = r.frag
		tel.unitDone(1, jobs[i], &frags[i])
	})
	waveExecs := 0
	for i := range frags {
		waveExecs += frags[i].execs
	}
	tel.waveEnd(1, len(jobs), waveExecs)
	return jobs, frags
}

// cellPlan tracks one cell's budget state across adaptive waves.
type cellPlan struct {
	kind    jobKind
	tool    int
	cell    int
	tracker explore.Tracker
	used    int
	stopped bool // converged: excluded from further grants
}

// runAdaptive is the adaptive-budget path. Wave 0 gives every cell its
// initial budget of Runs executions, run chunk-by-chunk with a convergence
// check between chunks; cells that converge stop early. The unspent budget
// of converged cells forms a pool that later waves grant, one chunk per
// still-diverging cell per wave in matrix order, until the pool is exhausted
// or every cell converged. The total never exceeds Runs × cells, and every
// decision happens at a barrier from per-cell-deterministic state, so the
// result is independent of the worker count.
func runAdaptive(spec Spec, tel *Telemetry, ck *ckState) ([]job, []fragment, map[cellKey]*BudgetSummary) {
	chunk := spec.Policy.Chunk()
	if chunk <= 0 || chunk > spec.Runs {
		chunk = spec.Runs
	}

	var plans []*cellPlan
	for t := range spec.Tools {
		for b := range spec.Benchmarks {
			plans = append(plans, &cellPlan{kind: jobBench, tool: t, cell: b, tracker: spec.Policy.NewTracker()})
		}
		for l := range spec.Litmus {
			plans = append(plans, &cellPlan{kind: jobLitmus, tool: t, cell: l, tracker: spec.Policy.NewTracker()})
		}
	}

	var jobs []job
	var frags []fragment
	type grant struct {
		plan   *cellPlan
		budget int
	}
	// runWave executes one grant per selected plan across the worker pool
	// and folds the results into jobs/frags in plan order. Each wave emits
	// its barrier events: unit events from the workers as grants complete,
	// cell_converged and wave_end from the deterministic post-barrier state.
	wave := 0
	if spec.Resume != nil {
		// Re-enter at the last completed wave: plans get their used/stopped
		// budgets and tracker state back, and the completed work re-enters the
		// job list as one synthetic whole-range job per cell carrying the
		// checkpointed merged fragment. aggregate folds both shapes
		// identically, so the finished artifact cannot tell the difference.
		wave = spec.Resume.Wave
		restoreAdaptive(spec, spec.Resume, plans, &jobs, &frags)
	}
	runWave := func(grants []grant) {
		wave++
		tel.waveStart(wave, len(grants))
		waveJobs := make([]job, len(grants))
		waveFrags := make([]fragment, len(grants))
		used := make([]int, len(grants))
		for i, g := range grants {
			waveJobs[i] = job{kind: g.plan.kind, tool: g.plan.tool, cell: g.plan.cell, lo: g.plan.used}
		}
		runPool(spec, len(grants), func(i int) {
			tel.unitStart(wave, waveJobs[i], grants[i].budget)
			r := newCellRunner(spec, waveJobs[i])
			used[i] = r.runChunked(waveJobs[i].lo, grants[i].budget, chunk, grants[i].plan.tracker)
			r.close()
			waveFrags[i] = r.frag
			waveJobs[i].hi = waveJobs[i].lo + used[i]
			tel.unitDone(wave, waveJobs[i], &waveFrags[i])
		})
		waveExecs := 0
		for i, g := range grants {
			waveJobs[i].hi = waveJobs[i].lo + used[i]
			g.plan.used += used[i]
			wasStopped := g.plan.stopped
			g.plan.stopped = g.plan.tracker.Converged()
			// Convergence introspection happens here — at the barrier, from
			// per-cell-deterministic tracker state — so the snapshot stream
			// (and /debug/converge) is identical for any worker count.
			tel.convergeState(wave, waveJobs[i], g.plan.tracker)
			if g.plan.stopped && !wasStopped {
				tel.cellConverged(wave, waveJobs[i], g.plan.used)
			}
			jobs = append(jobs, waveJobs[i])
			frags = append(frags, waveFrags[i])
			waveExecs += waveFrags[i].execs
		}
		tel.waveEnd(wave, len(grants), waveExecs)
		// The wave barrier is the checkpoint point: every decision below this
		// line is a pure function of the state being persisted.
		ck.save(spec, tel, wave, false, plans, jobs, frags)
	}

	if spec.Resume == nil {
		// Wave 0: initial budgets.
		wave0 := make([]grant, len(plans))
		for i, p := range plans {
			wave0[i] = grant{plan: p, budget: spec.Runs}
		}
		runWave(wave0)
	}

	// Freed budget: what converged cells left unspent.
	pool := 0
	for _, p := range plans {
		pool += spec.Runs - p.used
	}

	// Extension waves: grant one chunk per still-diverging cell per wave.
	for pool > 0 {
		var grants []grant
		for _, p := range plans {
			if p.stopped || pool <= 0 {
				continue
			}
			g := chunk
			if g > pool {
				g = pool
			}
			pool -= g
			grants = append(grants, grant{plan: p, budget: g})
		}
		if len(grants) == 0 {
			break
		}
		runWave(grants)
		// Recompute the pool from first principles — total budget minus
		// spent — so a cell that converged mid-grant returns its unspent
		// remainder.
		pool = spec.Runs * len(plans)
		for _, p := range plans {
			pool -= p.used
		}
	}

	ck.save(spec, tel, wave, true, plans, jobs, frags)

	budgets := map[cellKey]*BudgetSummary{}
	for _, p := range plans {
		extended := p.used - spec.Runs
		if extended < 0 {
			extended = 0
		}
		budgets[cellKey{kind: p.kind, tool: p.tool, cell: p.cell}] = &BudgetSummary{
			Planned:   spec.Runs,
			Used:      p.used,
			Extended:  extended,
			Converged: p.stopped,
		}
	}
	return jobs, frags, budgets
}

// execCtx is the per-execution state threaded through the pipeline stages.
// The cellRunner reuses one instance (rewritten at the top of runOne), so
// composing stages costs no per-execution allocation.
type execCtx struct {
	res     *capi.Result
	i       int    // global execution index (seed = SeedBase+i)
	outcome string // rendered litmus outcome ("" for benchmarks)
	// hit marks executions owed a recorded trace: a detection signal, a
	// race, or a forbidden outcome (the signal stage computes it).
	hit bool
	// abort marks the execution's model state untrustworthy (an infeasible
	// modification-order lifting): later stages that would lift it again
	// are skipped.
	abort bool
	obs   explore.Obs
}

// stage is one pipeline step run over every completed execution. Stages are
// method expressions composed once per cell in newCellRunner — which duties
// run, and in what order, is a property of the spec, not a branch in the
// per-execution path.
type stage func(*cellRunner)

// cellAnalyzer is one analysis plug-in instance bound to a cell, carrying
// its position in Spec.Analyzers (the pre-bound metric slot).
type cellAnalyzer struct {
	analysis.Analyzer
	ix int
}

// cellRunner executes a range of one cell's executions with a fresh tool
// instance, folding results into its fragment.
type cellRunner struct {
	spec Spec
	j    job
	tool capi.Tool
	frag fragment

	// stages is the cell's composed pipeline, run in order after every
	// completed execution: the cell-kind signal stage (benchmark detection
	// or litmus verdict, including race dedup), then — per spec — axiom
	// validation, the analyzer stage, and trace recording.
	stages []stage
	// x is the reused per-execution context the stages communicate
	// through.
	x execCtx

	// met is the cell's pre-bound metric handle set (nil only when the
	// runner is constructed outside a campaign, e.g. directly in tests).
	met *CellMetrics

	// fr is the unit's flight recorder (Spec.CaptureDir); nil when capture
	// is unarmed.
	fr *obs.FlightRecorder

	// Engine plumbing (trace duties, guided exploration).
	eng    *core.Engine
	mo     core.MOProvider
	rec    *trace.Recorder
	pg     *trace.PrefixGuide
	guides []*trace.Trace

	// analyzers are the cell's analysis plug-in instances (cell-confined;
	// see analysis.Analyzer), minus the ones this cell's tool cannot feed;
	// ax is the reused Exec handed to them.
	analyzers []cellAnalyzer
	ax        analysis.Exec

	// Program under test.
	prog  capi.Program
	bench BenchmarkSpec // jobBench
	test  *litmus.Test  // jobLitmus
	out   string        // litmus outcome cell
}

func newCellRunner(spec Spec, j job) *cellRunner {
	r := &cellRunner{spec: spec, j: j, frag: fragment{races: map[string]raceHit{}}}
	r.tool = spec.Tools[j.tool].New()
	switch j.kind {
	case jobBench:
		r.bench = spec.Benchmarks[j.cell]
		r.prog = r.bench.New()
	case jobLitmus:
		r.test = spec.Litmus[j.cell]
		r.prog = r.test.Make(&r.out)
		r.frag.outcomes = map[string]int{}
		r.frag.forbidden = map[string]int{}
		r.frag.weak = map[string]int{}
	}

	r.eng, _ = r.tool.(*core.Engine)
	if r.eng != nil {
		r.mo, _ = r.eng.Model().(core.MOProvider)
	}
	if spec.Telemetry != nil {
		r.met = spec.Telemetry.cellMetrics(j)
		if r.eng != nil {
			// Campaign executions always run with handoff-wait timing and
			// phase spans: both measurements are allocation-free and feed the
			// per-cell c11_cell_handoff_wait_ns and c11_cell_phase_ns
			// histograms. Raw perf sweeps (RunPerf) construct tools without a
			// Telemetry and keep both off.
			r.eng.SetHandoffTiming(true)
			r.eng.SetPhaseTiming(true)
		}
	}
	if spec.CaptureDir != "" {
		r.fr = obs.NewFlightRecorder(obs.FlightRecorderConfig{SlowNS: spec.CaptureSlowNS})
	}
	// Guided exploration: wrap the tool's live strategy in a PrefixGuide
	// when the guide set has traces for this cell.
	if r.eng != nil && spec.Guides != nil {
		r.guides = spec.Guides.For(spec.Tools[j.tool].Name, r.programName())
		if len(r.guides) > 0 {
			r.pg = trace.NewPrefixGuide(r.eng.Strategy())
			if spec.GuideMinFrac > 0 {
				r.pg.MinFrac = spec.GuideMinFrac
			}
			if spec.GuideMaxFrac > 0 {
				r.pg.MaxFrac = spec.GuideMaxFrac
				if spec.GuideMinFrac == 0 && r.pg.MaxFrac < r.pg.MinFrac {
					// An explicit upper bound below the default skew-deep
					// floor implies the whole shallow range.
					r.pg.MinFrac = 0
				}
			}
			r.eng.SetStrategy(r.pg)
		}
	}
	// Analyzer plug-ins: one fresh instance per cell. An analyzer whose
	// needs this cell's tool cannot meet — a trace needs the engine, a
	// modification order needs an MOProvider model — is skipped on this
	// cell, the way axiom validation skips non-MOProvider tools. Unknown
	// names were refused by Spec.Validate; a name slipping past it here is
	// skipped rather than crashed on (workers have nowhere to return an
	// error).
	for ix, name := range spec.Analyzers {
		a, err := analysis.New(name)
		if err != nil {
			continue
		}
		if a.NeedsTrace() && r.eng == nil {
			continue
		}
		if a.NeedsMO() && r.mo == nil {
			continue
		}
		r.analyzers = append(r.analyzers, cellAnalyzer{Analyzer: a, ix: ix})
	}
	// Trace duties: engines whose model exposes total modification orders
	// run in trace mode for validation and event recording, and any
	// analyzer that reads the action trace turns tracing on too; the
	// recorder strategy wrapper captures the (effective, guided included)
	// schedule of every execution.
	needTrace := r.mo != nil && (spec.ValidateAxioms || spec.RecordDir != "")
	for _, ca := range r.analyzers {
		if ca.NeedsTrace() {
			needTrace = true
		}
	}
	if r.eng != nil && needTrace {
		r.eng.SetTrace(true)
	}
	if r.eng != nil && spec.RecordDir != "" {
		r.rec = trace.NewRecorder(r.eng.Strategy())
		r.eng.SetStrategy(r.rec)
	}
	// Compose the pipeline. The stage set and order are fixed per cell:
	// signal first (it computes hit, the trace-owed flag), then validation
	// (it decides abort), then analyzers, then recording. With the default
	// spec — no analyzers, no duties — the pipeline is just the signal
	// stage, and the composed path mutates the fragment in exactly the
	// order the pre-pipeline runner did, which is what keeps default
	// campaign artifacts byte-identical across the refactor.
	if j.kind == jobLitmus {
		r.stages = append(r.stages, (*cellRunner).stageLitmus)
	} else {
		r.stages = append(r.stages, (*cellRunner).stageBench)
	}
	if spec.ValidateAxioms {
		r.stages = append(r.stages, (*cellRunner).stageValidate)
	}
	if len(r.analyzers) > 0 {
		r.stages = append(r.stages, (*cellRunner).stageAnalyze)
	}
	if r.rec != nil {
		r.stages = append(r.stages, (*cellRunner).stageRecord)
	}
	return r
}

func (r *cellRunner) programName() string {
	if r.test != nil {
		return r.test.Name
	}
	return r.bench.Name
}

// closeTool releases a tool instance: engines retire their fiber-pool
// workers (core.Engine.Close), so long-lived processes do not accumulate
// parked goroutines across the many tool instances campaigns and perf runs
// construct.
func closeTool(t capi.Tool) {
	if c, ok := t.(interface{ Close() }); ok {
		c.Close()
	}
}

// close releases the runner's tool instance once its unit of work is done.
func (r *cellRunner) close() { closeTool(r.tool) }

// recordFailure folds one aborted execution into the fragment.
func (r *cellRunner) recordFailure(i int, err string) {
	r.frag.failed++
	if len(r.frag.failures) < maxViolationSamples {
		r.frag.failures = append(r.frag.failures, execFailure{run: i, err: err})
	}
}

// run executes global execution indices [lo, hi) serially, folding results
// into the fragment. observe, when non-nil, receives each execution's
// observation in index order (the budget-policy feed).
func (r *cellRunner) run(lo, hi int, observe func(explore.Obs)) {
	a0bytes, a0objs := readAllocCounters()
	start := time.Now()
	for i := lo; i < hi; i++ {
		obs := r.runOne(i)
		if observe != nil {
			observe(obs)
		}
	}
	r.frag.elapsed += time.Since(start)
	a1bytes, a1objs := readAllocCounters()
	r.frag.allocBytes += a1bytes - a0bytes
	r.frag.allocObjs += a1objs - a0objs
}

// runChunked executes up to budget executions starting at global index lo,
// in chunks, stopping early once the tracker reports convergence. It returns
// the number of executions actually run.
func (r *cellRunner) runChunked(lo, budget, chunk int, tracker explore.Tracker) int {
	i, end := lo, lo+budget
	for i < end {
		hi := i + chunk
		if hi > end {
			hi = end
		}
		r.run(i, hi, tracker.Observe)
		i = hi
		if tracker.Converged() {
			break
		}
	}
	return i - lo
}

// runOne executes global index i and returns its observation.
func (r *cellRunner) runOne(i int) explore.Obs {
	if r.pg != nil {
		r.pg.SetSchedule(r.guides[i%len(r.guides)].Schedule)
	}
	if r.test != nil {
		r.out = ""
	}
	// The per-execution instrumentation below — two monotonic clock reads
	// plus CellMetrics.ObserveExec — allocates nothing; the zero-alloc test
	// pins this exact path with metrics enabled.
	execStart := time.Now()
	res := r.tool.Execute(r.prog, r.spec.SeedBase+int64(i))
	execDur := time.Since(execStart)
	if res.EngineError != nil {
		// The tool aborted the execution (core.InfeasibleError). The partial
		// result carries no trustworthy model state: record the failure with
		// its seed and move on — the rest of the matrix keeps running. The
		// execution is excluded from execs (the Detection.Runs denominator);
		// failures are accounted separately.
		r.recordFailure(i, res.EngineError.Error())
		if r.met != nil {
			r.met.Failures.Inc()
		}
		r.flightFail(i)
		return explore.Obs{}
	}
	r.frag.execs++
	if r.met != nil {
		r.met.ObserveExec(execDur, r.eng)
		if len(res.NewRaces) > 0 {
			r.met.Races.Add(uint64(len(res.NewRaces)))
		}
	}
	if r.pg != nil {
		depth, consumed, diverged := r.pg.Handoff()
		r.frag.guidedExecs++
		r.frag.prefixDepth += int64(depth)
		r.frag.prefixConsumed += int64(consumed)
		if diverged {
			r.frag.divergences++
		}
	}

	// Run the composed pipeline over the reused execution context, then the
	// unconditional tail: the detection metric and the flight-recorder
	// check fire whether or not a stage aborted.
	r.x = execCtx{res: res, i: i}
	r.x.obs.RaceKeys = raceKeysOf(res)
	for _, st := range r.stages {
		st(r)
	}
	if r.met != nil && r.x.obs.Detected {
		r.met.Detected.Inc()
	}
	r.flightCheck(i, execDur, len(res.NewRaces) > 0, r.x.obs)
	return r.x.obs
}

// stageBench is the benchmark-cell signal stage: the suite's detection
// signal, op accounting, and race dedup.
func (r *cellRunner) stageBench() {
	res, i := r.x.res, r.x.i
	hit := r.bench.Signal.Hit(res)
	if hit {
		r.frag.detected++
	}
	r.frag.ops.Add(res.Stats)
	recordRaces(&r.frag, res, i)
	r.x.hit = hit || len(res.Races) > 0
	r.x.obs.Detected = hit
}

// stageLitmus is the litmus-cell signal stage: outcome accounting, the
// forbidden/weak verdicts, and race dedup.
func (r *cellRunner) stageLitmus() {
	res, i := r.x.res, r.x.i
	r.frag.ops.Add(res.Stats)
	// Litmus programs only touch shared state atomically, so any race
	// here is a detector soundness bug, not a finding.
	recordRaces(&r.frag, res, i)
	forbidden := false
	if r.out != "" {
		r.frag.outcomes[r.out]++
		if isForbidden(r.test, r.out, r.spec.Tools[r.j.tool].Baseline) {
			forbidden = true
			if first, seen := r.frag.forbidden[r.out]; !seen || i < first {
				r.frag.forbidden[r.out] = i
			}
		}
		if r.test.Weak[r.out] {
			r.frag.weak[r.out]++
		}
	}
	r.x.outcome = r.out
	r.x.hit = forbidden || len(res.Races) > 0
	r.x.obs.Detected = forbidden
	r.x.obs.Outcome = r.out
}

// stageValidate checks the execution against the axiomatic model. The
// lifting (the model's TotalMO) can itself hit an infeasible state — a
// modification-order cycle; RecoverInfeasible converts that into a recorded
// failure, and abort tells the later trace-lifting stages (analyzers,
// recording) to skip this execution.
func (r *cellRunner) stageValidate() {
	if r.mo == nil {
		r.frag.skipped++
		return
	}
	i := r.x.i
	r.frag.checked++
	var vs []axiom.Violation
	// The engine cannot see the campaign's validation duty, so the
	// campaign brackets the PhaseValidate span itself, feeding the same
	// per-cell phase histograms as the engine's reset/run/race spans.
	vt0 := time.Now()
	ie := core.RecoverInfeasible(func() {
		vs = axiom.Check(axiom.FromEngine(r.eng, r.mo))
	})
	r.observePhase(core.PhaseValidate, vt0)
	if ie != nil {
		r.recordFailure(i, ie.Error())
		r.x.abort = true
		// The record stage would hit the same infeasible lifting; if this
		// execution's trace was owed, count it as dropped.
		if r.rec != nil && (r.x.hit || r.spec.RecordAll) {
			r.frag.recordErrs++
		}
		return
	}
	if len(vs) > 0 {
		r.frag.violations += len(vs)
		if len(r.frag.vioSamples) < maxViolationSamples {
			r.frag.vioSamples = append(r.frag.vioSamples,
				fmt.Sprintf("%s/%s seed %d: %v", r.tool.Name(), r.programName(),
					r.spec.SeedBase+int64(i), vs[0]))
		}
	}
}

// stageAnalyze hands the finished execution to the cell's analyzer
// instances and folds their findings into the fragment. Each Observe is
// individually recovered: an infeasible lifting inside one analyzer records
// a failure and moves on to the next.
func (r *cellRunner) stageAnalyze() {
	if r.x.abort {
		return
	}
	r.ax = analysis.Exec{
		Result: r.x.res, Index: r.x.i, Seed: r.spec.SeedBase + int64(r.x.i),
		Tool: r.spec.Tools[r.j.tool].Name, Program: r.programName(),
		Litmus: r.test != nil, Outcome: r.x.outcome,
		Engine: r.eng, MO: r.mo,
	}
	for _, ca := range r.analyzers {
		var fs []analysis.Finding
		ie := core.RecoverInfeasible(func() {
			fs = ca.Observe(&r.ax)
		})
		if ie != nil {
			r.recordFailure(r.x.i, ie.Error())
			continue
		}
		for _, f := range fs {
			r.addFinding(ca, f)
		}
	}
}

// addFinding folds one analyzer finding into the fragment — min-run winner
// per (analyzer, key), counts summed — and bumps the analyzer's pre-bound
// findings counter.
func (r *cellRunner) addFinding(ca cellAnalyzer, f analysis.Finding) {
	if r.frag.findings == nil {
		r.frag.findings = map[findingID]findingHit{}
	}
	id := findingID{analyzer: ca.Name(), key: f.Key}
	hit, seen := r.frag.findings[id]
	if !seen {
		hit = findingHit{desc: f.Desc, run: r.x.i}
	} else if r.x.i < hit.run {
		hit.desc, hit.run = f.Desc, r.x.i
	}
	hit.count++
	r.frag.findings[id] = hit
	if r.met != nil && ca.ix < len(r.met.Findings) {
		r.met.Findings[ca.ix].Inc()
	}
}

// stageRecord persists the execution's portable trace when one is owed (a
// signal-bearing execution, or every execution under RecordAll).
func (r *cellRunner) stageRecord() {
	if r.x.abort || !(r.x.hit || r.spec.RecordAll) {
		return
	}
	spec := r.spec
	i := r.x.i
	seed := spec.SeedBase + int64(i)
	meta := trace.Meta{
		Tool: spec.Tools[r.j.tool].TraceConfig, Program: r.programName(),
		Litmus: r.test != nil, Seed: seed, Outcome: r.x.outcome,
	}
	var tr *trace.Trace
	var err error
	// PhaseRecord span: trace serialization + file write, campaign-
	// bracketed like PhaseValidate above.
	rt0 := time.Now()
	ie := core.RecoverInfeasible(func() {
		tr, err = trace.Record(r.eng, r.x.res, r.rec.Schedule(), meta)
	})
	if ie != nil {
		r.observePhase(core.PhaseRecord, rt0)
		r.recordFailure(i, ie.Error())
		r.frag.recordErrs++
		r.x.abort = true
		return
	}
	if err == nil {
		path := filepath.Join(spec.RecordDir, trace.FileName(r.tool.Name(), r.programName(), seed))
		err = tr.WriteFile(path)
	}
	r.observePhase(core.PhaseRecord, rt0)
	if err == nil {
		r.frag.recorded++
	} else {
		// Counted and surfaced in the summary: a campaign asked to
		// persist traces must not drop them silently.
		r.frag.recordErrs++
	}
}

// observePhase folds a campaign-bracketed phase span (validate, record) into
// the cell's phase histograms.
func (r *cellRunner) observePhase(p core.Phase, t0 time.Time) {
	if r.met != nil {
		r.met.PhaseNS[p].Observe(uint64(time.Since(t0)))
	}
}

// raceKeysOf returns the deduplicated race keys of one execution.
func raceKeysOf(res *capi.Result) []string {
	if len(res.Races) == 0 {
		return nil
	}
	seen := map[string]bool{}
	var keys []string
	for _, r := range res.Races {
		if k := r.Key(); !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// recordRaces folds an execution's races into the fragment, keeping the
// earliest execution index per race key.
func recordRaces(frag *fragment, res *capi.Result, run int) {
	for _, r := range res.Races {
		key := r.Key()
		if hit, seen := frag.races[key]; !seen || run < hit.run {
			frag.races[key] = raceHit{desc: r.String(), run: run}
		}
	}
}

// isForbidden reports whether outcome is forbidden for the given tool
// flavour: the Forbidden set always, plus BaselineForbidden for the
// commit-order baselines.
func isForbidden(t *litmus.Test, outcome string, baseline bool) bool {
	if t.Forbidden[outcome] {
		return true
	}
	return baseline && t.BaselineForbidden[outcome]
}

// mergeRaces folds src into dst, keeping the earliest run per key.
func mergeRaces(dst map[string]raceHit, src map[string]raceHit) {
	for key, hit := range src {
		if cur, seen := dst[key]; !seen || hit.run < cur.run {
			dst[key] = hit
		}
	}
}

// Validate reports the first problem with the spec, or nil.
func (s Spec) Validate() error {
	if len(s.Tools) == 0 {
		return fmt.Errorf("campaign: no tools selected")
	}
	if s.RecordAll && s.RecordDir == "" {
		return fmt.Errorf("campaign: RecordAll requires RecordDir")
	}
	if s.CaptureSlowNS && s.CaptureDir == "" {
		return fmt.Errorf("campaign: CaptureSlowNS requires CaptureDir")
	}
	if len(s.Benchmarks) == 0 && len(s.Litmus) == 0 {
		return fmt.Errorf("campaign: no benchmarks or litmus tests selected")
	}
	if s.Runs <= 0 {
		return fmt.Errorf("campaign: runs must be positive, got %d", s.Runs)
	}
	if _, err := rng.Parse(s.RNG); err != nil {
		return fmt.Errorf("campaign: %v", err)
	}
	if s.Shard.Count != 0 || s.Shard.Index != 0 {
		if s.Shard.Count < 1 || s.Shard.Index < 0 || s.Shard.Index >= s.Shard.Count {
			return fmt.Errorf("campaign: shard %s out of range (want 0 ≤ index < count)", s.Shard)
		}
		if s.Policy != nil {
			if _, uniform := s.Policy.(explore.Uniform); !uniform {
				return fmt.Errorf("campaign: sharding requires the uniform policy (adaptive budgets redistribute across the whole matrix; got %q)", s.Policy.Name())
			}
		}
		if s.CheckpointPath != "" || s.Resume != nil {
			return fmt.Errorf("campaign: sharding is incompatible with checkpoint/resume (resume the whole campaign, or re-run the one lost shard)")
		}
	}
	if s.GuideMinFrac < 0 || s.GuideMinFrac > 1 || s.GuideMaxFrac > 1 ||
		(s.GuideMaxFrac > 0 && s.GuideMinFrac > s.GuideMaxFrac) {
		return fmt.Errorf("campaign: guide prefix fractions [%g, %g] outside 0 ≤ min ≤ max ≤ 1",
			s.GuideMinFrac, s.GuideMaxFrac)
	}
	seenAnalyzer := map[string]bool{}
	for _, name := range s.Analyzers {
		if _, err := analysis.New(name); err != nil {
			return fmt.Errorf("campaign: %v", err)
		}
		if seenAnalyzer[name] {
			return fmt.Errorf("campaign: duplicate analyzer %q", name)
		}
		seenAnalyzer[name] = true
	}
	seen := map[string]bool{}
	for _, t := range s.Tools {
		if t.New == nil {
			return fmt.Errorf("campaign: tool %q has no factory", t.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("campaign: duplicate tool %q", t.Name)
		}
		seen[t.Name] = true
	}
	// Duplicate program cells would double-count every aggregate.
	seenBench := map[string]bool{}
	for _, b := range s.Benchmarks {
		if seenBench[b.Name] {
			return fmt.Errorf("campaign: duplicate benchmark %q", b.Name)
		}
		seenBench[b.Name] = true
	}
	seenLit := map[string]bool{}
	for _, l := range s.Litmus {
		if seenLit[l.Name] {
			return fmt.Errorf("campaign: duplicate litmus test %q", l.Name)
		}
		seenLit[l.Name] = true
	}
	return nil
}
