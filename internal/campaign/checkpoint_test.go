package campaign

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"c11tester/internal/explore"
	"c11tester/internal/litmus"
	"c11tester/internal/safeio"
)

// canonicalJSON renders a summary's canonical form — the byte-identity the
// shard-merge and checkpoint-resume guarantees are stated over.
func canonicalJSON(t *testing.T, s *Summary) string {
	t.Helper()
	data, err := json.MarshalIndent(s.Canonical(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestParseShard(t *testing.T) {
	good := map[string]ShardSel{
		"0/1": {Index: 0, Count: 1},
		"0/3": {Index: 0, Count: 3},
		"2/3": {Index: 2, Count: 3},
	}
	for in, want := range good {
		sel, err := ParseShard(in)
		if err != nil || sel != want {
			t.Errorf("ParseShard(%q) = %+v, %v; want %+v", in, sel, err, want)
		}
		if sel.String() != in {
			t.Errorf("ShardSel(%+v).String() = %q, want %q", sel, sel.String(), in)
		}
	}
	for _, in := range []string{"", "3/3", "-1/3", "x/3", "1/x", "1", "1/0", "0/-2", "1/2/3"} {
		if sel, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) = %+v, want error", in, sel)
		}
	}
}

func TestValidateCrashOptions(t *testing.T) {
	base := func() Spec {
		return Spec{
			Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
			Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
			Runs:       4,
		}
	}
	s := base()
	s.Shard = ShardSel{Index: 1, Count: 3}
	if err := s.Validate(); err != nil {
		t.Errorf("valid shard selection rejected: %v", err)
	}
	s = base()
	s.Shard = ShardSel{Index: 3, Count: 3}
	if err := s.Validate(); err == nil {
		t.Error("out-of-range shard index accepted")
	}
	s = base()
	s.Shard = ShardSel{Index: 0, Count: 2}
	s.Policy = explore.Converge{}
	if err := s.Validate(); err == nil {
		t.Error("sharding under an adaptive policy accepted; the round-robin deal is only deterministic under uniform budgets")
	}
	s = base()
	s.Shard = ShardSel{Index: 0, Count: 2}
	s.CheckpointPath = "ck.json"
	if err := s.Validate(); err == nil {
		t.Error("sharding combined with -checkpoint accepted")
	}
	s = base()
	s.CheckpointPath = "ck.json"
	if err := s.Validate(); err != nil {
		t.Errorf("checkpointing alone rejected: %v", err)
	}
}

// TestShardMergeByteIdentical is half the tentpole acceptance criterion: cut
// a campaign into three shards (each run with a different worker count),
// merge the partials, and the merged summary must be byte-identical — modulo
// Canonical, which strips machine-local timing — to an unsharded run.
func TestShardMergeByteIdentical(t *testing.T) {
	build := func(workers int) Spec {
		return Spec{
			Tools: []ToolSpec{
				mustTool(t, "c11tester", ToolOptions{}),
				mustTool(t, "tsan11", ToolOptions{}),
			},
			Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue"), benchSpec(t, "seqlock")},
			Litmus:     []*litmus.Test{mustLitmus(t, "MP+rlx"), mustLitmus(t, "CoRR")},
			Runs:       30,
			SeedBase:   500,
			Workers:    workers,
			// Does not divide Runs: the ragged tail chunk lands in a shard too.
			ShardSize:      4,
			ValidateAxioms: true,
		}
	}
	single := Run(build(1))

	const shards = 3
	var parts []*Summary
	for i := 0; i < shards; i++ {
		spec := build(i + 2)
		spec.Shard = ShardSel{Index: i, Count: shards}
		part := Run(spec)
		if part.Shard == nil || part.Shard.Index != i || part.Shard.SpecDigest == "" {
			t.Fatalf("shard %d summary carries no shard header: %+v", i, part.Shard)
		}
		parts = append(parts, part)
	}
	// The digest must not depend on shard selection or worker count.
	if d := SpecDigest(build(1)); parts[0].Shard.SpecDigest != d {
		t.Fatalf("shard digest %s != unsharded spec digest %s", parts[0].Shard.SpecDigest, d)
	}

	// Every execution runs in exactly one shard.
	var total int
	for _, p := range parts {
		for _, ts := range p.Tools {
			total += ts.Execs
		}
	}
	var want int
	for _, ts := range single.Tools {
		want += ts.Execs
	}
	if total != want {
		t.Fatalf("shards ran %d executions in total, single run %d", total, want)
	}

	// Merge order must not matter.
	merged, err := MergeSummaries([]*Summary{parts[2], parts[0], parts[1]}, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, wantJSON := canonicalJSON(t, merged), canonicalJSON(t, single); got != wantJSON {
		t.Fatalf("merged summary differs from single-machine run:\nmerged: %s\nsingle: %s", got, wantJSON)
	}
}

func TestMergeSummariesRefusals(t *testing.T) {
	build := func(seedBase int64) Spec {
		return Spec{
			Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
			Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
			Runs:       6,
			SeedBase:   seedBase,
			ShardSize:  2,
		}
	}
	shardRun := func(spec Spec, i, n int) *Summary {
		spec.Shard = ShardSel{Index: i, Count: n}
		return Run(spec)
	}
	p0, p1 := shardRun(build(1), 0, 2), shardRun(build(1), 1, 2)

	if _, err := MergeSummaries(nil, false); err == nil {
		t.Error("empty part list accepted")
	}
	if _, err := MergeSummaries([]*Summary{Run(build(1))}, false); err == nil {
		t.Error("summary without a shard header accepted as a partial")
	}
	if _, err := MergeSummaries([]*Summary{p0}, false); err == nil {
		t.Error("merge of 1 of 2 shards accepted")
	}
	if _, err := MergeSummaries([]*Summary{p0, p0}, false); err == nil {
		t.Error("duplicate shard index accepted")
	}
	// A shard cut from a different spec (different seed base → different
	// digest) must refuse even though the matrix shape matches.
	alien := shardRun(build(999), 1, 2)
	if _, err := MergeSummaries([]*Summary{p0, alien}, false); err == nil ||
		!strings.Contains(err.Error(), "different campaign spec") {
		t.Errorf("digest mismatch not refused: %v", err)
	}
	// Provenance skew refuses without -force and merges with it.
	skewed := shardRun(build(1), 1, 2)
	skewed.Provenance.GoVersion = "go0.0"
	if _, err := MergeSummaries([]*Summary{p0, skewed}, false); err == nil ||
		!strings.Contains(err.Error(), "provenance skew") {
		t.Errorf("provenance skew not refused: %v", err)
	}
	if _, err := MergeSummaries([]*Summary{p0, skewed}, true); err != nil {
		t.Errorf("force did not override provenance skew: %v", err)
	}
	// Schema-version drift refuses.
	old := shardRun(build(1), 1, 2)
	old.SchemaVersion = SchemaVersion - 1
	if _, err := MergeSummaries([]*Summary{p0, old}, false); err == nil {
		t.Error("old-schema partial accepted")
	}
	_ = p1
}

// TestCheckpointResumeByteIdentical is the other half of the tentpole
// acceptance criterion: interrupt an adaptive campaign at ANY wave barrier,
// resume from the checkpoint (with a different worker count), and the
// finished summary must be byte-identical to the uninterrupted run's.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	build := func(workers int) Spec {
		return Spec{
			Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
			Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue"), benchSpec(t, "seqlock")},
			Litmus:     []*litmus.Test{mustLitmus(t, "MP+rlx"), mustLitmus(t, "CoRR")},
			Runs:       32,
			SeedBase:   100,
			Workers:    workers,
			Policy:     explore.Converge{MinExecs: 16, Window: 8, Epsilon: 0.05},
		}
	}

	// Baseline: uninterrupted, collecting the checkpoint written at every
	// wave barrier (deep-copied: later waves must not alias earlier state).
	var checkpoints []*Checkpoint
	spec := build(2)
	spec.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
	spec.checkpointHook = func(c *Checkpoint) {
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var copied Checkpoint
		if err := json.Unmarshal(data, &copied); err != nil {
			t.Fatal(err)
		}
		checkpoints = append(checkpoints, &copied)
	}
	baseline := Run(spec)
	want := canonicalJSON(t, baseline)
	if len(checkpoints) < 2 {
		t.Fatalf("campaign wrote %d checkpoint(s); the test needs several wave barriers", len(checkpoints))
	}
	if !checkpoints[len(checkpoints)-1].Complete {
		t.Fatal("final checkpoint not marked complete")
	}

	for i, ck := range checkpoints {
		resumed := build(3) // different worker count: must not matter
		resumed.Resume = ck
		got := canonicalJSON(t, Run(resumed))
		if got != want {
			t.Fatalf("resume from checkpoint %d (wave %d, complete=%v) diverged from the uninterrupted run:\nresumed: %s\nwant:    %s",
				i, ck.Wave, ck.Complete, got, want)
		}
	}
}

// TestUniformCheckpointResume covers the uniform-policy path: the checkpoint
// is written once at completion, and resuming from it replays the summary
// without re-running anything.
func TestUniformCheckpointResume(t *testing.T) {
	build := func() Spec {
		return Spec{
			Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
			Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
			Litmus:     []*litmus.Test{mustLitmus(t, "SB+sc")},
			Runs:       8,
			SeedBase:   7,
		}
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	spec := build()
	spec.CheckpointPath = path
	want := canonicalJSON(t, Run(spec))

	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Complete {
		t.Fatalf("uniform campaign checkpoint not complete: %+v", ck)
	}
	if err := ck.ValidateAgainst(build()); err != nil {
		t.Fatalf("checkpoint does not validate against its own spec: %v", err)
	}
	resumed := build()
	resumed.Resume = ck
	if got := canonicalJSON(t, Run(resumed)); got != want {
		t.Fatalf("resume from complete checkpoint diverged:\n%s\nwant:\n%s", got, want)
	}
}

// TestValidateAgainstDetectsSpecDrift pins that a checkpoint refuses to
// resume under a spec that would change execution outcomes.
func TestValidateAgainstDetectsSpecDrift(t *testing.T) {
	build := func(runs int) Spec {
		return Spec{
			Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
			Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
			Runs:       runs,
			SeedBase:   7,
		}
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	spec := build(4)
	spec.CheckpointPath = path
	Run(spec)
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.ValidateAgainst(build(5)); err == nil ||
		!strings.Contains(err.Error(), "digest") {
		t.Errorf("spec drift (runs 4→5) not refused: %v", err)
	}
	// Worker count and output paths are excluded from the digest: resuming on
	// a different machine shape is legitimate.
	same := build(4)
	same.Workers = 13
	same.RecordDir = ""
	if err := ck.ValidateAgainst(same); err != nil {
		t.Errorf("worker-count change refused: %v", err)
	}
}

// TestCheckpointWriteFailureDoesNotAbort is the ENOSPC fault-injection leg:
// every checkpoint write fails, the campaign must complete with the identical
// summary, counting the failures in CheckpointErrors.
func TestCheckpointWriteFailureDoesNotAbort(t *testing.T) {
	build := func() Spec {
		return Spec{
			Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
			Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
			Runs:       16,
			SeedBase:   3,
			Policy:     explore.Converge{MinExecs: 8, Window: 4, Epsilon: 0.05},
		}
	}
	want := canonicalJSON(t, Run(build()))

	path := filepath.Join(t.TempDir(), "ck.json")
	safeio.SetFailpoint(func(p string) error {
		if p == path {
			return errors.New("injected ENOSPC")
		}
		return nil
	})
	defer safeio.SetFailpoint(nil)
	spec := build()
	spec.CheckpointPath = path
	sum := Run(spec)
	if sum.CheckpointErrors == 0 {
		t.Fatal("injected write failures not counted in CheckpointErrors")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("failed checkpoint writes left a file behind")
	}
	if got := canonicalJSON(t, sum); got != want {
		t.Fatal("campaign outcome changed under checkpoint write failures")
	}
}

// TestLoadCheckpointCorrupt feeds torn and corrupt checkpoint files to the
// loader: structured *safeio.DecodeError, never a panic.
func TestLoadCheckpointCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	spec := Spec{
		Tools:          []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks:     []BenchmarkSpec{benchSpec(t, "ms-queue")},
		Runs:           4,
		CheckpointPath: path,
	}
	Run(spec)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// len(data)-1 would only shave the trailing newline and still parse; -2
	// cuts into the closing brace.
	for _, cut := range []int{0, 1, len(data) / 2, len(data) - 2} {
		torn := filepath.Join(dir, "torn.json")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadCheckpoint(torn)
		var de *safeio.DecodeError
		if !errors.As(err, &de) {
			t.Errorf("truncation at byte %d: err = %v, want *safeio.DecodeError", cut, err)
		}
	}
	wrong := filepath.Join(dir, "wrong.json")
	if err := os.WriteFile(wrong, []byte(`{"schema":"other/thing","schema_version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(wrong); err == nil {
		t.Error("foreign schema accepted as a checkpoint")
	}
}

// TestBuildShardManifest pins that the K shard manifests partition every
// cell's seed range exactly.
func TestBuildShardManifest(t *testing.T) {
	build := func(i, n int) Spec {
		return Spec{
			Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
			Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
			Runs:       10,
			SeedBase:   50,
			ShardSize:  3,
			Shard:      ShardSel{Index: i, Count: n},
		}
	}
	seeds := map[int64]int{}
	for i := 0; i < 3; i++ {
		spec := build(i, 3)
		m := BuildShardManifest(spec, Run(spec))
		if m.Schema != ShardManifestSchemaName || m.Shard.Index != i {
			t.Fatalf("manifest header = %+v", m)
		}
		if m.Execs == 0 && len(m.SeedRanges) > 0 {
			t.Errorf("shard %d: seed ranges but zero executions", i)
		}
		for _, r := range m.SeedRanges {
			for s := r[0]; s < r[1]; s++ {
				seeds[s]++
			}
		}
	}
	for s := int64(50); s < 60; s++ {
		if seeds[s] != 1 {
			t.Fatalf("seed %d covered %d time(s) across shards, want exactly once", s, seeds[s])
		}
	}
	if len(seeds) != 10 {
		t.Fatalf("shards cover %d seeds, want 10", len(seeds))
	}
}

// TestCanonicalEventStreams runs the same campaign sharded (with an event
// stream per shard) and unsharded, and the canonicalized unit-event sets
// must be identical.
func TestCanonicalEventStreams(t *testing.T) {
	dir := t.TempDir()
	build := func(events string) (Spec, func() error) {
		f, err := os.Create(filepath.Join(dir, events))
		if err != nil {
			t.Fatal(err)
		}
		tel := NewTelemetry(TelemetryOptions{EventSink: f})
		return Spec{
			Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
			Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
			Litmus:     []*litmus.Test{mustLitmus(t, "MP+rlx")},
			Runs:       9,
			SeedBase:   20,
			ShardSize:  2,
			Telemetry:  tel,
		}, f.Close
	}

	spec, done := build("single.jsonl")
	Run(spec)
	if err := done(); err != nil {
		t.Fatal(err)
	}
	var shardPaths []string
	for i := 0; i < 3; i++ {
		name := filepath.Join("", "shard"+string(rune('0'+i))+".jsonl")
		spec, done := build(name)
		spec.Shard = ShardSel{Index: i, Count: 3}
		Run(spec)
		if err := done(); err != nil {
			t.Fatal(err)
		}
		shardPaths = append(shardPaths, filepath.Join(dir, name))
	}

	single, bad, err := CanonicalEvents(filepath.Join(dir, "single.jsonl"))
	if err != nil || bad != 0 {
		t.Fatalf("single stream: bad=%d err=%v", bad, err)
	}
	merged, bad, err := CanonicalEvents(shardPaths...)
	if err != nil || bad != 0 {
		t.Fatalf("shard streams: bad=%d err=%v", bad, err)
	}
	if len(single) == 0 {
		t.Fatal("canonical stream is empty")
	}
	if strings.Join(single, "\n") != strings.Join(merged, "\n") {
		t.Fatalf("canonical event sets differ:\nsingle (%d): %v\nmerged (%d): %v",
			len(single), single, len(merged), merged)
	}
}
