package campaign

import (
	"reflect"
	"strings"
	"testing"

	"c11tester/internal/analysis"
	"c11tester/internal/litmus"
)

// analyzerSpec builds the matrix the analyzer-pipeline tests run: one cell
// seeded for the atomicity monitor (atomic-counter), one for SC-robustness
// (the store-buffering litmus test, whose weak outcome is not
// SC-explainable), plus a race cell to check the analyzers do not perturb
// the classic duties.
func analyzerSpec(t *testing.T, workers int) Spec {
	return Spec{
		Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "atomic-counter"), benchSpec(t, "ms-queue")},
		Litmus:     []*litmus.Test{mustLitmus(t, "SB+rlx")},
		Runs:       60,
		SeedBase:   1,
		Workers:    workers,
		ShardSize:  7,
		Analyzers:  []string{"atomicity", "sc-robustness"},
	}
}

// TestAnalyzerFindingsEndToEnd is the analyzer acceptance criterion: the
// SC-robustness analyzer must flag a non-SC execution on a store-buffering
// litmus cell, the atomicity analyzer must report a violation on the seeded
// lost-update workload, and each finding's repro triple must reproduce the
// finding when replayed as a single-seed campaign.
func TestAnalyzerFindingsEndToEnd(t *testing.T) {
	sum := Run(analyzerSpec(t, 2))
	ts := sum.Tools[0]

	// Rollups appear per requested analyzer, in request order.
	if len(ts.Analyzers) != 2 || ts.Analyzers[0].Analyzer != "atomicity" || ts.Analyzers[1].Analyzer != "sc-robustness" {
		t.Fatalf("analyzer rollups = %+v, want [atomicity sc-robustness]", ts.Analyzers)
	}
	for _, as := range ts.Analyzers {
		if as.Distinct == 0 || as.Count == 0 {
			t.Errorf("analyzer %s found nothing (%+v); the seeded cells must trigger it", as.Analyzer, as)
		}
	}

	byKey := map[string]FindingSummary{}
	for _, f := range ts.Findings {
		byKey[f.Analyzer+"/"+f.Program+"/"+f.Key] = f
	}
	atom, ok := byKey["atomicity/atomic-counter/block/counter.increment"]
	if !ok {
		t.Fatalf("no atomicity finding for the seeded block (have %v)", keys(byKey))
	}
	sc, ok := byKey["sc-robustness/SB+rlx/outcome/r1=0 r2=0"]
	if !ok {
		t.Fatalf("no sc-robustness finding for the SB weak outcome (have %v)", keys(byKey))
	}
	if !sc.Litmus {
		t.Error("SB+rlx finding not marked as a litmus finding")
	}
	if !strings.Contains(sc.Description, "not SC-explainable") {
		t.Errorf("sc finding description = %q", sc.Description)
	}

	// The analyzers must not perturb the classic duties: ms-queue's
	// unconditional race is still detected every run, and no analyzer flags
	// it (its increments are not inside marked blocks).
	msq := ts.Benchmarks[1]
	if msq.Detection.Detected != msq.Detection.Runs {
		t.Errorf("ms-queue detection = %d/%d with analyzers on, want 100%%",
			msq.Detection.Detected, msq.Detection.Runs)
	}
	for _, f := range ts.Findings {
		if f.Program == "ms-queue" && f.Analyzer == "atomicity" {
			t.Errorf("atomicity flagged unannotated program: %+v", f)
		}
	}

	// Close the repro loop: replay each finding's (tool, program, seed) with
	// only that analyzer, and the same finding key must reappear.
	for _, f := range []FindingSummary{atom, sc} {
		if !strings.Contains(f.Repro.Flags, "-analyzers "+f.Analyzer) {
			t.Fatalf("repro flags %q do not select analyzer %s", f.Repro.Flags, f.Analyzer)
		}
		spec := Spec{
			Tools:     []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
			Runs:      1,
			SeedBase:  f.Repro.Seed,
			Analyzers: []string{f.Analyzer},
		}
		if f.Litmus {
			spec.Litmus = []*litmus.Test{mustLitmus(t, f.Program)}
		} else {
			spec.Benchmarks = []BenchmarkSpec{benchSpec(t, f.Program)}
		}
		replay := Run(spec)
		found := false
		for _, rf := range replay.Tools[0].Findings {
			if rf.Analyzer == f.Analyzer && rf.Key == f.Key {
				found = true
			}
		}
		if !found {
			t.Errorf("repro %q did not reproduce finding %s/%s: %+v",
				f.Repro.Command(), f.Analyzer, f.Key, replay.Tools[0].Findings)
		}
	}
}

func keys(m map[string]FindingSummary) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestAnalyzerDeterminismUnderSharding extends the campaign determinism
// guarantee to the analyzer pipeline: per-analyzer findings (keys, counts,
// descriptions, repro seeds) must be byte-identical between workers=1 and
// workers=4.
func TestAnalyzerDeterminismUnderSharding(t *testing.T) {
	serial := canonicalize(Run(analyzerSpec(t, 1)))
	sharded := canonicalize(Run(analyzerSpec(t, 4)))
	if !reflect.DeepEqual(serial.Tools[0].Findings, sharded.Tools[0].Findings) {
		t.Errorf("findings differ between workers=1 and workers=4:\nserial:  %+v\nsharded: %+v",
			serial.Tools[0].Findings, sharded.Tools[0].Findings)
	}
	if got, want := canonicalJSON(t, Run(analyzerSpec(t, 4))), canonicalJSON(t, Run(analyzerSpec(t, 1))); got != want {
		t.Fatalf("summaries differ between workers=1 and workers=4:\nserial:  %s\nsharded: %s", want, got)
	}
	if len(serial.Tools[0].Findings) == 0 {
		t.Fatal("determinism test ran with no findings; the seeded cells must trigger the analyzers")
	}
}

// TestAnalyzerShardMergeByteIdentical is the shard-merge satellite: cutting
// an analyzer campaign into three shards and merging the partials must fold
// per-analyzer finding sets with the same min-by-(cell, seed) winner algebra
// as races — byte-identical to the single-machine run.
func TestAnalyzerShardMergeByteIdentical(t *testing.T) {
	single := Run(analyzerSpec(t, 1))
	if len(single.Tools[0].Findings) == 0 {
		t.Fatal("merge test ran with no findings; the seeded cells must trigger the analyzers")
	}

	const shards = 3
	var parts []*Summary
	for i := 0; i < shards; i++ {
		spec := analyzerSpec(t, i+2)
		spec.Shard = ShardSel{Index: i, Count: shards}
		parts = append(parts, Run(spec))
	}
	merged, err := MergeSummaries([]*Summary{parts[1], parts[2], parts[0]}, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalJSON(t, merged), canonicalJSON(t, single); got != want {
		t.Fatalf("merged analyzer findings differ from single-machine run:\nmerged: %s\nsingle: %s", got, want)
	}
}

// TestCheckpointRoundTripsFindings pins the FragState leg: in-flight finding
// state survives a checkpoint encode/decode cycle.
func TestCheckpointRoundTripsFindings(t *testing.T) {
	f := &fragment{findings: map[findingID]findingHit{
		{analyzer: "atomicity", key: "block/b"}:    {desc: "d1", run: 7, count: 3},
		{analyzer: "sc-robustness", key: "non-sc"}: {desc: "d2", run: 2, count: 1},
	}}
	st := fragState(f)
	if len(st.Findings) != 2 || st.Findings[0].Analyzer != "atomicity" {
		t.Fatalf("fragState findings = %+v, want 2 sorted entries", st.Findings)
	}
	back := st.fragment()
	if !reflect.DeepEqual(back.findings, f.findings) {
		t.Fatalf("findings did not round-trip: %+v vs %+v", back.findings, f.findings)
	}
}

func mkFindingSummary(analyzers []string, findings ...FindingSummary) *Summary {
	return &Summary{
		Schema: SchemaName, SchemaVersion: SchemaVersion,
		Spec: SpecInfo{Analyzers: analyzers},
		Tools: []ToolSummary{{
			Tool: "c11tester", ExecsPerSec: 1000, Findings: findings,
		}},
	}
}

// TestCompareFindings covers the compare leg: gained findings are reported,
// lost findings regress, and the deltas are gated on both artifacts having
// run the same analyzer set.
func TestCompareFindings(t *testing.T) {
	an := []string{"atomicity"}
	fa := FindingSummary{Analyzer: "atomicity", Program: "p", Key: "block/a"}
	fb := FindingSummary{Analyzer: "atomicity", Program: "q", Litmus: true, Key: "block/b"}

	c := Compare(mkFindingSummary(an, fa), mkFindingSummary(an, fa, fb))
	if got := c.Tools[0].NewFindingKeys; len(got) != 1 || got[0] != "atomicity litmus/q block/b" {
		t.Errorf("new finding keys = %v", got)
	}
	if c.Regressed() {
		t.Error("a gained finding must not regress")
	}

	c = Compare(mkFindingSummary(an, fa, fb), mkFindingSummary(an, fb))
	if got := c.Tools[0].LostFindingKeys; len(got) != 1 || got[0] != "atomicity p block/a" {
		t.Errorf("lost finding keys = %v", got)
	}
	if !c.Regressed() {
		t.Error("a lost finding must count as a regression")
	}
	if !strings.Contains(c.String(), "LOST analyzer finding") {
		t.Errorf("comparison text missing the lost-finding line:\n%s", c)
	}

	// Different (or absent) analyzer sets: finding deltas are meaningless
	// and must not be computed.
	c = Compare(mkFindingSummary([]string{"sc-robustness"}, fa), mkFindingSummary(an))
	if len(c.Tools[0].LostFindingKeys) != 0 {
		t.Errorf("finding deltas computed across differing analyzer sets: %v", c.Tools[0].LostFindingKeys)
	}
	c = Compare(mkFindingSummary(nil), mkFindingSummary(nil))
	if len(c.Tools[0].NewFindingKeys) != 0 || c.Regressed() {
		t.Error("empty analyzer sets must not produce finding deltas")
	}
}

// TestParseAnalyzers covers the CLI selector and Spec.Validate's analyzer
// checks.
func TestParseAnalyzers(t *testing.T) {
	if got := ParseAnalyzers(""); got != nil {
		t.Errorf("ParseAnalyzers(\"\") = %v, want nil", got)
	}
	if got := ParseAnalyzers("none"); got != nil {
		t.Errorf("ParseAnalyzers(none) = %v, want nil", got)
	}
	if got := ParseAnalyzers("all"); !reflect.DeepEqual(got, analysis.Names()) {
		t.Errorf("ParseAnalyzers(all) = %v, want %v", got, analysis.Names())
	}
	if got := ParseAnalyzers("atomicity"); !reflect.DeepEqual(got, []string{"atomicity"}) {
		t.Errorf("ParseAnalyzers(atomicity) = %v", got)
	}

	base := Spec{
		Tools:      []ToolSpec{mustTool(t, "c11tester", ToolOptions{})},
		Benchmarks: []BenchmarkSpec{benchSpec(t, "ms-queue")},
		Runs:       1,
	}
	good := base
	good.Analyzers = analysis.Names()
	if err := good.Validate(); err != nil {
		t.Errorf("valid analyzer set rejected: %v", err)
	}
	bad := base
	bad.Analyzers = []string{"nope"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown analyzer name accepted")
	}
	dup := base
	dup.Analyzers = []string{"atomicity", "atomicity"}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate analyzer name accepted")
	}
}
