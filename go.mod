module c11tester

go 1.22
