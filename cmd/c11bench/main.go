// Command c11bench measures the execution-core hot path: for every selected
// (tool, program) cell it runs a serial batch of executions on one tool
// instance — warmup first, so the engine's pools and arenas are in steady
// state — and reports ns/exec, allocated bytes/exec, and allocated
// objects/exec. The result is written as the schema-versioned BENCH_perf.json
// artifact, the perf counterpart of cmd/c11tester's BENCH_campaign.json:
// committed numbers track the hot-path trajectory across PRs.
//
// The scheduler dimension of the paper's Figure 14 is exposed directly:
// -handoff selects the handoff regime (channel ≈ swapcontext fibers, cond ≈
// condition-variable sequencing, osthread ≈ kernel-thread sequencing),
// -respawn disables the fiber pool, and -fig14 appends the full regime ×
// {pooled, respawn} matrix to the artifact.
//
// Examples:
//
//	go run ./cmd/c11bench                         # full matrix, 30 execs/cell
//	go run ./cmd/c11bench -tools c11tester -bench ms-queue -runs 200
//	go run ./cmd/c11bench -litmus none -runs 100 -json ''
//	go run ./cmd/c11bench -handoff cond -q        # Figure 14 cond regime
//	go run ./cmd/c11bench -tools c11tester -litmus SB+rlx,CoRR,MP+rlx -bench none -fig14
package main

import (
	"flag"
	"fmt"
	"os"

	"c11tester/internal/campaign"
	"c11tester/internal/obs"
	"c11tester/internal/sched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("c11bench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		tools    = fs.String("tools", "c11tester,tsan11,tsan11rec", "comma-separated tools to measure")
		bench    = fs.String("bench", "all", "comma-separated benchmarks, 'all', or 'none'")
		lit      = fs.String("litmus", "all", "comma-separated litmus tests, 'all', or 'none'")
		runs     = fs.Int("runs", 30, "measured executions per (tool, program) cell")
		warmup   = fs.Int("warmup", 1, "unmeasured warmup sweeps of the measured seed range per cell (0 for none)")
		seed     = fs.Int64("seed", 1, "seed base; execution i runs with seed+i")
		jsonPath = fs.String("json", "BENCH_perf.json", "perf artifact path ('' disables)")
		handoff  = fs.String("handoff", "channel", "scheduler handoff regime: channel, cond, or osthread (Figure 14)")
		respawn  = fs.Bool("respawn", false, "disable the fiber pool: respawn worker goroutines per execution (Figure 14)")
		fig14    = fs.Bool("fig14", false, "append the Figure 14 handoff × scheduler matrix over the selected programs")
		rngSrc   = fs.String("rng", "pcg", "random source behind every tool decision: pcg (O(1) seed) or legacy (math/rand)")
		compare  = fs.String("compare", "", "diff two perf artifacts: -compare old.json new.json (or old.json,new.json); exits 2 on regression")
		nsTol    = fs.Float64("ns-tol", 20, "-compare: ns/exec tolerance band in percent (negative disables the timing leg)")
		allocTol = fs.Float64("alloc-tol", 0, "-compare: allocation tolerance in percent (0 gates bytes/exec and objects/exec exactly)")
		quiet    = fs.Bool("q", false, "suppress the human-readable report")
		status   = fs.String("status-addr", "", "serve /metrics (Prometheus text), /progress (JSON), and /debug/pprof on this address while the sweep runs ('' disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *compare != "" {
		return runCompare(*compare, fs.Args(), *nsTol, *allocTol, out)
	}
	if _, err := sched.ParseHandoff(*handoff); err != nil {
		fmt.Fprintln(os.Stderr, "c11bench:", err)
		return 1
	}

	toolOpts := campaign.ToolOptions{Handoff: *handoff, Respawn: *respawn, RNG: *rngSrc}
	spec := campaign.PerfSpec{
		Runs: *runs, Warmup: *warmup, SeedBase: *seed,
		Handoff: *handoff, Respawn: *respawn, RNG: *rngSrc,
	}
	if *warmup == 0 {
		spec.Warmup = -1 // flag 0 means literally none; PerfSpec 0 means default
	}
	var toolNames []string
	for _, name := range campaign.SplitList(*tools) {
		ts, err := campaign.StandardTool(name, toolOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c11bench:", err)
			return 1
		}
		spec.Tools = append(spec.Tools, ts)
		toolNames = append(toolNames, name)
	}
	var err error
	spec.Benchmarks, err = campaign.SelectBenchmarks(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11bench:", err)
		return 1
	}
	spec.Litmus, err = campaign.SelectLitmus(*lit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11bench:", err)
		return 1
	}
	if len(spec.Tools) == 0 || (len(spec.Benchmarks) == 0 && len(spec.Litmus) == 0) {
		fmt.Fprintln(os.Stderr, "c11bench: nothing selected (need at least one tool and one program)")
		return 1
	}

	if *status != "" {
		reg := obs.NewRegistry()
		prog := campaign.NewPerfProgress(reg)
		spec.Progress = prog
		srv := obs.NewServer(reg, prog.Snapshot)
		addr, err := srv.Start(*status)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c11bench: -status-addr:", err)
			return 1
		}
		defer srv.Stop()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "c11bench: serving /metrics and /progress on http://%s\n", addr)
		}
	}

	sum := campaign.RunPerf(spec)
	if *fig14 {
		matrix, err := campaign.RunHandoffMatrix(spec, toolNames, campaign.ToolOptions{RNG: *rngSrc}, sum)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c11bench:", err)
			return 1
		}
		sum.HandoffMatrix = matrix
	}
	if !*quiet {
		fmt.Fprint(out, sum.String())
	}
	if *jsonPath != "" {
		if err := sum.WriteJSON(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "c11bench:", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(out, "\nwrote %s\n", *jsonPath)
		}
	}
	return 0
}

// runCompare handles -compare old.json new.json: the new path may follow as
// a positional argument or be joined with a comma (the same convention as
// cmd/c11tester -compare).
func runCompare(oldArg string, positional []string, nsTol, allocTol float64, out *os.File) int {
	oldPath, newPath, err := campaign.SplitComparePaths(oldArg, positional)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11bench:", err)
		return 1
	}
	oldSum, err := campaign.LoadPerfSummary(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11bench:", err)
		return 1
	}
	newSum, err := campaign.LoadPerfSummary(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11bench:", err)
		return 1
	}
	cmp := campaign.ComparePerf(oldSum, newSum, nsTol, allocTol)
	fmt.Fprint(out, cmp.String())
	if cmp.Regressed() {
		return 2
	}
	return 0
}
