// Command c11tester runs exploration campaigns: (tool × program × N
// executions) matrices over the paper's benchmark and litmus suites,
// sharded across worker goroutines (internal/campaign), and writes the
// versioned BENCH_campaign.json artifact.
//
// Examples:
//
//	go run ./cmd/c11tester -runs 200                          # full matrix
//	go run ./cmd/c11tester -tools c11tester -bench ms-queue \
//	    -runs 1 -seed 1042                                    # replay one execution
//	go run ./cmd/c11tester -list                              # show selectable names
//
// The command exits 2 when the campaign observed a memory-model soundness
// problem: a forbidden litmus outcome, a data race reported inside a litmus
// program (which only performs atomic accesses), an axiomatic-model
// violation, or an execution the engine aborted with an infeasible
// memory-model state.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"c11tester/internal/analysis"
	"c11tester/internal/campaign"
	"c11tester/internal/litmus"
	"c11tester/internal/rng"
	"c11tester/internal/structures"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("c11tester", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		tools     = fs.String("tools", strings.Join(campaign.StandardToolNames(), ","), "comma-separated tools to run")
		bench     = fs.String("bench", "all", "comma-separated benchmarks, 'all', or 'none'")
		lit       = fs.String("litmus", "all", "comma-separated litmus tests, 'all', or 'none'")
		runs      = fs.Int("runs", 100, "executions per (tool, program) cell")
		workers   = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		shardSz   = fs.Int("shard-size", 0, "executions per work chunk (0 = default)")
		seed      = fs.Int64("seed", 1, "seed base; execution i runs with seed+i")
		prune     = fs.String("prune", "off", "c11tester prune mode: off, conservative, or aggressive")
		sched     = fs.String("sched", "random", "c11tester scheduler strategy: random or quantum")
		quantum   = fs.Int("quantum", 0, "mean scheduling quantum for quantum strategies (0 = default)")
		maxSteps  = fs.Uint64("max-steps", 0, "per-execution visible-operation cap (0 = default)")
		faithful  = fs.Bool("faithful-handoff", false, "run tsan11rec on kernel-thread handoff (Figure 14 regime)")
		rngSrc    = fs.String("rng", "pcg", "random source behind every tool decision: pcg (O(1) seed) or legacy (math/rand, reproduces pre-PCG artifacts)")
		jsonPath  = fs.String("json", "BENCH_campaign.json", "campaign artifact path ('' disables)")
		policy    = fs.String("policy", "uniform", "per-cell budget policy: uniform, or converge (stop a cell early once its statistics stabilize and reassign the freed budget)")
		minExecs  = fs.Int("min-execs", 0, "converge policy: executions per cell before convergence may be declared (0 = default)")
		window    = fs.Int("window", 0, "converge policy: trailing window size of the convergence test (0 = default)")
		epsilon   = fs.Float64("epsilon", 0, "converge policy: max detection-rate/outcome-histogram movement the window may cause (0 = default)")
		guide     = fs.String("guide", "", "directory of recorded traces for trace-guided exploration: matching cells replay a schedule prefix before exploring live ('' disables)")
		guideMin  = fs.Float64("guide-min", 0, "guided prefix depth lower bound, as a fraction of the recorded schedule (0 = default)")
		guideMax  = fs.Float64("guide-max", 0, "guided prefix depth upper bound, as a fraction of the recorded schedule (0 = default)")
		record    = fs.String("record", "", "directory to persist portable traces of racy/forbidden executions ('' disables)")
		recAll    = fs.Bool("record-all", false, "with -record, persist a trace for every execution")
		validate  = fs.Bool("validate", false, "axiom-check every explored execution against the Appendix A model")
		analyzers = fs.String("analyzers", "", "comma-separated execution analyzers to run per cell, 'all', or 'none' (see -list)")
		compare   = fs.String("compare", "", "diff two campaign artifacts: -compare old.json new.json (or old.json,new.json)")
		quiet     = fs.Bool("q", false, "suppress the human-readable report")
		list      = fs.Bool("list", false, "list selectable tools, benchmarks, and litmus tests")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the campaign to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile taken after the campaign to this file")
	)
	var tflags campaign.TelemetryFlags
	tflags.Register(fs)
	var cflags campaign.CrashFlags
	cflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	tflags.Quiet = *quiet
	if *compare != "" {
		return runCompare(*compare, fs.Args(), out)
	}
	if *list {
		fmt.Fprintf(out, "tools:      %s\n", strings.Join(campaign.StandardToolNames(), " "))
		fmt.Fprintf(out, "benchmarks: %s\n", strings.Join(structures.Names(), " "))
		fmt.Fprintf(out, "litmus:     %s\n", strings.Join(litmus.Names(), " "))
		fmt.Fprintf(out, "analyzers:  %s\n", strings.Join(analysis.Names(), " "))
		fmt.Fprintf(out, "rng-sources: %s\n", strings.Join(rng.Names(), " "))
		return 0
	}

	pruneMode, err := campaign.ParsePrune(*prune)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11tester:", err)
		return 1
	}
	opts := campaign.ToolOptions{
		Prune:           pruneMode,
		Strategy:        *sched,
		QuantumMean:     *quantum,
		MaxSteps:        *maxSteps,
		FaithfulHandoff: *faithful,
		RNG:             *rngSrc,
	}

	if *record != "" {
		if err := os.MkdirAll(*record, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "c11tester: -record:", err)
			return 1
		}
	}
	pol, err := campaign.ParsePolicy(*policy, *minExecs, *window, *epsilon)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11tester:", err)
		return 1
	}
	spec := campaign.Spec{
		Runs: *runs, SeedBase: *seed,
		Workers: *workers, ShardSize: *shardSz,
		RNG:          *rngSrc,
		Policy:       pol,
		GuideMinFrac: *guideMin, GuideMaxFrac: *guideMax,
		RecordDir: *record, RecordAll: *recAll,
		ValidateAxioms: *validate,
		Analyzers:      campaign.ParseAnalyzers(*analyzers),
	}
	if *guide != "" {
		guides, err := campaign.LoadGuides(*guide)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c11tester:", err)
			return 1
		}
		spec.Guides = guides
	}
	for _, name := range campaign.SplitList(*tools) {
		ts, err := campaign.StandardTool(name, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c11tester:", err)
			return 1
		}
		spec.Tools = append(spec.Tools, ts)
	}
	spec.Benchmarks, err = campaign.SelectBenchmarks(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11tester:", err)
		return 1
	}
	spec.Litmus, err = campaign.SelectLitmus(*lit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11tester:", err)
		return 1
	}
	if err := tflags.ApplyCaptureFlags(&spec); err != nil {
		fmt.Fprintln(os.Stderr, "c11tester:", err)
		return 1
	}
	// Crash-safety flags resolve after the matrix so -resume can validate the
	// checkpoint's spec digest against the fully-built spec; the rotation of a
	// previous event stream must also precede SetupTelemetry opening it.
	if err := cflags.Apply(&spec, tflags.EventsPath, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "c11tester:", err)
		return 1
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "c11tester:", err)
		return 1
	}

	// Telemetry fabric: per-wave progress lines, the structured event
	// stream, and the live serving surface all hang off one Telemetry,
	// wired by the helper shared with cmd/litmus.
	tel, cleanup, err := campaign.SetupTelemetry("c11tester", tflags)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer cleanup()
	spec.Telemetry = tel

	// Profiling hooks: make hot-path investigation a one-liner
	// (go run ./cmd/c11tester -runs 200 -cpuprofile cpu.pb.gz, then
	// go tool pprof cpu.pb.gz).
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c11tester: -cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "c11tester: -cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	sum := campaign.Run(spec)

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c11tester: -memprofile:", err)
			return 1
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date in-use statistics in the profile
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "c11tester: -memprofile:", err)
			return 1
		}
	}

	if !*quiet {
		fmt.Fprint(out, sum.String())
	}
	if *jsonPath != "" {
		if err := sum.WriteJSON(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "c11tester:", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(out, "\nwrote %s\n", *jsonPath)
		}
		if sum.Shard != nil {
			manPath := *jsonPath + ".shard.json"
			if err := campaign.BuildShardManifest(spec, sum).WriteFile(manPath); err != nil {
				fmt.Fprintln(os.Stderr, "c11tester:", err)
				return 1
			}
			if !*quiet {
				fmt.Fprintf(out, "wrote %s\n", manPath)
			}
		}
	}
	if sum.Failed() {
		campaign.WriteEngineFailures(os.Stderr, sum)
		fmt.Fprintf(os.Stderr, "c11tester: FAILED: %d forbidden outcome(s), %d unexpected race(s), %d axiom violation(s), %d engine failure(s)\n",
			len(sum.Forbidden()), len(sum.UnexpectedRaces()), sum.AxiomViolations(), sum.EngineFailures())
		return 2
	}
	if n := sum.RecordErrors(); n > 0 {
		fmt.Fprintf(os.Stderr, "c11tester: failed to record %d trace(s) to %s\n", n, *record)
		return 1
	}
	return 0
}

// runCompare handles -compare old.json new.json: the new path may follow as
// a positional argument or be joined with a comma.
func runCompare(oldArg string, positional []string, out *os.File) int {
	oldPath, newPath, err := campaign.SplitComparePaths(oldArg, positional)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11tester:", err)
		return 1
	}
	oldSum, err := campaign.LoadSummary(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11tester:", err)
		return 1
	}
	newSum, err := campaign.LoadSummary(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11tester:", err)
		return 1
	}
	cmp := campaign.Compare(oldSum, newSum)
	fmt.Fprint(out, cmp.String())
	if cmp.Regressed() {
		return 2
	}
	return 0
}
