package main

import (
	"os"
	"path/filepath"
	"testing"

	"c11tester/internal/campaign"
)

// recordOneTrace runs a tiny recording campaign and returns one trace file.
func recordOneTrace(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	tool, err := campaign.StandardTool("c11tester", campaign.ToolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bench, err := campaign.SelectBenchmarks("ms-queue")
	if err != nil {
		t.Fatal(err)
	}
	campaign.Run(campaign.Spec{
		Tools: []campaign.ToolSpec{tool}, Benchmarks: bench,
		Runs: 1, SeedBase: 9, RecordDir: dir, RecordAll: true,
	})
	files, err := filepath.Glob(filepath.Join(dir, "trace_*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no recorded trace (err=%v)", err)
	}
	return files[0]
}

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestCorruptTraceInputsExitStructured fuzzes truncation points through every
// subcommand: corrupt input must produce exit code 1 (a structured read
// error), never a panic and never a zero exit.
func TestCorruptTraceInputsExitStructured(t *testing.T) {
	tracePath := recordOneTrace(t)
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	out := devNull(t)

	// The intact trace must pass every read-only subcommand first.
	for _, sub := range []string{"show", "validate", "replay"} {
		if code := run([]string{sub, tracePath}, out); code != 0 {
			t.Fatalf("%s on intact trace = exit %d", sub, code)
		}
	}

	dir := t.TempDir()
	stride := len(data)/40 + 1
	for cut := 0; cut < len(data)-1; cut += stride {
		torn := filepath.Join(dir, "torn.json")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		for _, sub := range []string{"show", "validate", "replay", "minimize"} {
			if code := run([]string{sub, torn}, out); code != 1 {
				t.Fatalf("%s on trace truncated at byte %d = exit %d, want 1", sub, cut, code)
			}
		}
	}

	// Garbage that is valid JSON but not a trace.
	bogus := filepath.Join(dir, "bogus.json")
	if err := os.WriteFile(bogus, []byte(`{"schema":"not/a-trace","schema_version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"show", bogus}, out); code != 1 {
		t.Fatalf("foreign-schema trace = exit %d, want 1", code)
	}
	// Missing file.
	if code := run([]string{"show", filepath.Join(dir, "absent.json")}, out); code != 1 {
		t.Fatalf("missing trace = exit %d, want 1", code)
	}
}
