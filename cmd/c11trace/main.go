// Command c11trace works with portable execution traces (internal/trace)
// recorded by campaign runs (cmd/c11tester -record):
//
//	c11trace replay trace.json             re-drive the recorded schedule and
//	                                       verify it reproduces the recorded
//	                                       race keys, outcome, and events
//	c11trace validate trace.json           offline axiomatic check (Appendix A)
//	                                       of the serialized execution, with
//	                                       no live engine
//	c11trace minimize [-o out] trace.json  ddmin the schedule to a smaller one
//	                                       exhibiting the same race keys /
//	                                       outcome, and write the minimized
//	                                       trace
//	c11trace show trace.json               print a one-screen trace summary
//
// Exit codes: 0 success, 1 usage/IO error, 2 verification failure or
// axiomatic violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"c11tester/internal/campaign"
	"c11tester/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func usage(out *os.File) int {
	fmt.Fprintln(out, "usage: c11trace <replay|validate|minimize|show> [flags] <trace.json>")
	fmt.Fprintln(out, "  replay    re-drive the recorded schedule; verify exact reproduction")
	fmt.Fprintln(out, "  validate  offline axiomatic check of the serialized execution")
	fmt.Fprintln(out, "  minimize  shrink the schedule to a minimal reproducing one (-o out.json, -budget N)")
	fmt.Fprintln(out, "  show      print a trace summary")
	return 1
}

func run(args []string, out *os.File) int {
	if len(args) < 1 {
		return usage(out)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "replay":
		return withTrace(rest, out, replayCmd)
	case "validate":
		return withTrace(rest, out, validateCmd)
	case "minimize":
		return minimizeCmd(rest, out)
	case "show":
		return withTrace(rest, out, showCmd)
	}
	fmt.Fprintf(os.Stderr, "c11trace: unknown subcommand %q\n", cmd)
	return usage(out)
}

// withTrace loads the single trace-file argument and applies fn.
func withTrace(args []string, out *os.File, fn func(*trace.Trace, *os.File) int) int {
	if len(args) != 1 {
		return usage(out)
	}
	tr, err := trace.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11trace:", err)
		return 1
	}
	return fn(tr, out)
}

func describe(tr *trace.Trace) string {
	kind := "benchmark"
	if tr.Litmus {
		kind = "litmus"
	}
	return fmt.Sprintf("%s %s %q seed %d: %d thread + %d index choices, %d events",
		tr.Tool.Name, kind, tr.Program, tr.Seed,
		len(tr.Schedule.Threads), len(tr.Schedule.Indices), len(tr.Events))
}

func replayCmd(tr *trace.Trace, out *os.File) int {
	subj, err := campaign.TraceSubject(tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11trace:", err)
		return 1
	}
	rr, err := trace.Replay(tr, subj)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11trace:", err)
		return 1
	}
	if err := tr.Verify(rr); err != nil {
		fmt.Fprintf(os.Stderr, "c11trace: replay MISMATCH: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "replay OK: %s\n", describe(tr))
	if len(tr.RaceKeys) > 0 {
		fmt.Fprintf(out, "reproduced race keys: %s\n", strings.Join(tr.RaceKeys, ", "))
	}
	if tr.Outcome != "" {
		fmt.Fprintf(out, "reproduced outcome: %q\n", tr.Outcome)
	}
	return 0
}

func validateCmd(tr *trace.Trace, out *os.File) int {
	vs, err := tr.Validate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11trace:", err)
		return 1
	}
	if len(vs) > 0 {
		fmt.Fprintf(os.Stderr, "c11trace: %d axiomatic violation(s):\n", len(vs))
		for _, v := range vs {
			fmt.Fprintf(os.Stderr, "  %v\n", v)
		}
		return 2
	}
	fmt.Fprintf(out, "validate OK: %s satisfies the axiomatic model\n", describe(tr))
	return 0
}

func minimizeCmd(args []string, out *os.File) int {
	fs := flag.NewFlagSet("c11trace minimize", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		outPath = fs.String("o", "", "output path (default: <input>.min.json)")
		budget  = fs.Int("budget", trace.DefaultMinimizeBudget, "max replays to spend")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 1 {
		return usage(out)
	}
	in := fs.Arg(0)
	tr, err := trace.ReadFile(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11trace:", err)
		return 1
	}
	subj, err := campaign.TraceSubject(tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11trace:", err)
		return 1
	}
	min, stats, err := trace.Minimize(tr, subj, *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11trace:", err)
		return 1
	}
	path := *outPath
	if path == "" {
		path = strings.TrimSuffix(in, ".json") + ".min.json"
	}
	if err := min.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "c11trace:", err)
		return 1
	}
	fmt.Fprintf(out, "minimize OK: %d→%d thread choices (%d core), %d→%d index choices (%d core) in %d replays\nwrote %s\n",
		stats.ThreadsBefore, stats.ThreadsAfter, stats.CoreThreads,
		stats.IndicesBefore, stats.IndicesAfter, stats.CoreIndices,
		stats.Replays, path)
	return 0
}

func showCmd(tr *trace.Trace, out *os.File) int {
	fmt.Fprintln(out, describe(tr))
	if len(tr.RaceKeys) > 0 {
		fmt.Fprintf(out, "race keys:    %s\n", strings.Join(tr.RaceKeys, ", "))
	}
	if tr.Outcome != "" {
		fmt.Fprintf(out, "outcome:      %q\n", tr.Outcome)
	}
	if tr.Deadlocked {
		fmt.Fprintln(out, "deadlocked:   true")
	}
	if tr.Truncated {
		fmt.Fprintln(out, "truncated:    true")
	}
	if tr.AssertFailures > 0 {
		fmt.Fprintf(out, "asserts:      %d failure(s)\n", tr.AssertFailures)
	}
	fmt.Fprintf(out, "validatable:  %v\n", tr.Validatable())
	fmt.Fprintf(out, "locations:    %d with modification orders\n", len(tr.MO))
	return 0
}
