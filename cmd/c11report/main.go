// Command c11report renders the offline forensics report of a campaign: it
// joins the versioned summary artifact (BENCH_campaign.json), the structured
// JSONL event stream (-events), and the flight-recorder capture directory
// (-captures) into one view — top slow cells with per-phase breakdowns, the
// race first-seen timeline, per-cell convergence curves, and a capture index
// with one-command repro lines.
//
// Examples:
//
//	go run ./cmd/c11report -summary BENCH_campaign.json
//	go run ./cmd/c11report -summary BENCH_campaign.json \
//	    -events events.jsonl -captures captures/
//
// Exit codes: 0 success, 1 usage/IO error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"c11tester/internal/campaign"
	"c11tester/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("c11report", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		summary  = fs.String("summary", "BENCH_campaign.json", "campaign summary artifact")
		events   = fs.String("events", "", "structured JSONL event stream appended by -events ('' skips the timeline and convergence sections)")
		captures = fs.String("captures", "", "flight-recorder capture directory holding manifest.json ('' skips the capture index)")
		top      = fs.Int("top", 5, "rows in the slow-cell table")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	sum, err := campaign.LoadSummary(*summary)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11report:", err)
		return 1
	}
	var evs []campaign.Event
	if *events != "" {
		var bad int
		evs, bad, err = campaign.ReadEvents(*events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c11report: -events:", err)
			return 1
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "c11report: %s: skipped %d unparseable line(s)\n", *events, bad)
		}
	}
	var man *obs.Manifest
	if *captures != "" {
		man, err = obs.ReadManifest(filepath.Join(*captures, obs.ManifestFileName))
		if err != nil {
			fmt.Fprintln(os.Stderr, "c11report: -captures:", err)
			return 1
		}
	}
	campaign.WriteReport(out, sum, evs, man, campaign.ReportOptions{TopSlow: *top, CaptureDir: *captures})
	return 0
}
