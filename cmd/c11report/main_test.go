package main

import (
	"os"
	"path/filepath"
	"testing"

	"c11tester/internal/campaign"
)

func writeSummary(t *testing.T, dir string) string {
	t.Helper()
	tool, err := campaign.StandardTool("c11tester", campaign.ToolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bench, err := campaign.SelectBenchmarks("ms-queue")
	if err != nil {
		t.Fatal(err)
	}
	sum := campaign.Run(campaign.Spec{
		Tools: []campaign.ToolSpec{tool}, Benchmarks: bench,
		Runs: 2, SeedBase: 5,
	})
	path := filepath.Join(dir, "BENCH_campaign.json")
	if err := sum.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestCorruptArtifactsExitStructured fuzzes truncation points of the summary
// artifact through the report renderer: every cut must exit 1 with a
// structured error, never panic, never exit 0.
func TestCorruptArtifactsExitStructured(t *testing.T) {
	dir := t.TempDir()
	path := writeSummary(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := devNull(t)

	if code := run([]string{"-summary", path}, out); code != 0 {
		t.Fatalf("intact summary = exit %d", code)
	}

	stride := len(data)/40 + 1
	for cut := 0; cut < len(data)-1; cut += stride {
		torn := filepath.Join(dir, "torn.json")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if code := run([]string{"-summary", torn}, out); code != 1 {
			t.Fatalf("summary truncated at byte %d = exit %d, want 1", cut, code)
		}
	}

	// A torn event stream is lenient (skipped lines), not fatal…
	events := filepath.Join(dir, "events.jsonl")
	lines := `{"v":1,"type":"campaign_start"}` + "\n" + `{"v":1,"type":"race_first_seen","key":"k"}` + "\n" + `{"v":1,"type":"torn`
	if err := os.WriteFile(events, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-summary", path, "-events", events}, out); code != 0 {
		t.Fatalf("torn event line = exit %d, want lenient 0", code)
	}
	// …but an unreadable events path is a structured failure.
	if code := run([]string{"-summary", path, "-events", filepath.Join(dir, "absent.jsonl")}, out); code != 1 {
		t.Fatal("missing events file did not exit 1")
	}

	// Corrupt capture manifest: structured failure.
	capDir := filepath.Join(dir, "captures")
	if err := os.MkdirAll(capDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(capDir, "manifest.json"), []byte(`{"schema":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-summary", path, "-captures", capDir}, out); code != 1 {
		t.Fatal("corrupt capture manifest did not exit 1")
	}
}
