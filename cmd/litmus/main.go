// Command litmus runs the weak-memory litmus suite (internal/litmus) under
// one or more tools and prints the full outcome histograms — the detailed
// view behind cmd/c11tester's summary matrix. Forbidden outcomes (and, for
// the baselines, their additionally-forbidden fragment-gap outcomes) are
// flagged, and the command exits 2 if any was observed.
//
// Examples:
//
//	go run ./cmd/litmus -runs 500                 # whole suite, all tools
//	go run ./cmd/litmus -tools c11tester -tests IRIW+sc,IRIW+acq
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"c11tester/internal/campaign"
	"c11tester/internal/harness"
	"c11tester/internal/litmus"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("litmus", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		tools     = fs.String("tools", strings.Join(campaign.StandardToolNames(), ","), "comma-separated tools to run")
		tests     = fs.String("tests", "all", "comma-separated litmus tests or 'all'")
		runs      = fs.Int("runs", 300, "executions per (tool, test) cell")
		workers   = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		seed      = fs.Int64("seed", 1, "seed base; execution i runs with seed+i")
		policy    = fs.String("policy", "uniform", "per-cell budget policy: uniform or converge")
		analyzers = fs.String("analyzers", "", "comma-separated execution analyzers to run per cell, 'all', or 'none'")
		minExecs  = fs.Int("min-execs", 0, "converge policy: executions per cell before convergence may be declared (0 = default)")
		window    = fs.Int("window", 0, "converge policy: trailing window size (0 = default)")
		epsilon   = fs.Float64("epsilon", 0, "converge policy: max statistic movement per window (0 = default)")
		rngSrc    = fs.String("rng", "pcg", "random source behind every tool decision: pcg (O(1) seed) or legacy (math/rand)")
		quiet     = fs.Bool("q", false, "suppress progress lines on stderr")
		list      = fs.Bool("list", false, "list the litmus suite and exit")
	)
	var tflags campaign.TelemetryFlags
	tflags.Register(fs)
	var cflags campaign.CrashFlags
	cflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	tflags.Quiet = *quiet
	if *list {
		for _, t := range litmus.Tests() {
			fmt.Fprintf(out, "%-14s %s\n", t.Name, t.Doc)
		}
		return 0
	}

	pol, err := campaign.ParsePolicy(*policy, *minExecs, *window, *epsilon)
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmus:", err)
		return 1
	}
	spec := campaign.Spec{Runs: *runs, SeedBase: *seed, Workers: *workers, Policy: pol,
		RNG:       *rngSrc,
		Analyzers: campaign.ParseAnalyzers(*analyzers)}
	for _, name := range campaign.SplitList(*tools) {
		ts, err := campaign.StandardTool(name, campaign.ToolOptions{RNG: *rngSrc})
		if err != nil {
			fmt.Fprintln(os.Stderr, "litmus:", err)
			return 1
		}
		spec.Tools = append(spec.Tools, ts)
	}
	if *tests == "all" {
		spec.Litmus = litmus.Tests()
	} else {
		for _, name := range campaign.SplitList(*tests) {
			t, ok := litmus.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "litmus: unknown test %q (see -list)\n", name)
				return 1
			}
			spec.Litmus = append(spec.Litmus, t)
		}
	}
	if err := tflags.ApplyCaptureFlags(&spec); err != nil {
		fmt.Fprintln(os.Stderr, "litmus:", err)
		return 1
	}
	if err := cflags.Apply(&spec, tflags.EventsPath, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "litmus:", err)
		return 1
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "litmus:", err)
		return 1
	}

	// The telemetry wiring (-status-addr, -events, -v) is the helper shared
	// with cmd/c11tester, so both commands expose the same serving surface.
	tel, cleanup, err := campaign.SetupTelemetry("litmus", tflags)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer cleanup()
	spec.Telemetry = tel

	sum := campaign.Run(spec)

	for l, test := range spec.Litmus {
		fmt.Fprintf(out, "%s — %s\n", test.Name, test.Doc)
		for ti, ts := range sum.Tools {
			cell := ts.Litmus[l]
			fmt.Fprintf(out, "  %-10s", ts.Tool)
			for _, outcome := range harness.SortedKeys(cell.Outcomes) {
				// Forbidden-for-this-tool trumps everything; for the full
				// fragment, a BaselineForbidden outcome is the allowed
				// fragment-gap witness (Section 1.1), which is more telling
				// than the generic weak tag.
				tag := ""
				switch {
				case test.Forbidden[outcome],
					spec.Tools[ti].Baseline && test.BaselineForbidden[outcome]:
					tag = "!FORBIDDEN"
				case test.BaselineForbidden[outcome]:
					tag = "~fragment-gap"
				case test.Weak[outcome]:
					tag = "~weak"
				}
				fmt.Fprintf(out, "  %q×%d%s", outcome, cell.Outcomes[outcome], tag)
			}
			fmt.Fprintf(out, "  (weak %d/%d)\n", len(cell.WeakSeen), cell.WeakDefined)
		}
	}

	for _, ts := range sum.Tools {
		for _, f := range ts.Findings {
			fmt.Fprintf(out, "FINDING [%s] %s: %s (×%d)\n  repro: %s\n",
				f.Analyzer, f.Program, f.Description, f.Count, f.Repro.Command())
		}
	}
	for _, f := range sum.Forbidden() {
		fmt.Fprintf(out, "FORBIDDEN OUTCOME: %s %s=%q ×%d\n  repro: %s\n",
			f.Repro.Tool, f.Test, f.Outcome, f.Count, f.Repro.Command())
	}
	for _, r := range sum.UnexpectedRaces() {
		fmt.Fprintf(out, "UNEXPECTED RACE: %s\n  repro: %s\n", r.Description, r.Repro.Command())
	}
	// Engine failures go to stderr with their repro triples via the helper
	// shared with cmd/c11tester, so scripts piping stdout still see them.
	campaign.WriteEngineFailures(os.Stderr, sum)
	// Failed also covers soundness signals with no detailed line above
	// (e.g. axiom violations from a future -validate flag here).
	if sum.Failed() {
		return 2
	}
	total := 0
	for _, ts := range sum.Tools {
		total += ts.Execs
	}
	fmt.Fprintf(out, "\nno forbidden outcomes in %d executions\n", total)
	if used, planned, converged, cells, ok := sum.BudgetReport(); ok {
		fmt.Fprintf(out, "budget: %d/%d executions (%.0f%% of uniform), %d/%d cells converged\n",
			used, planned, 100*float64(used)/float64(planned), converged, cells)
	}
	return 0
}
