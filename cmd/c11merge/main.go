// Command c11merge folds the partial artifacts of a sharded campaign back
// into the single-machine artifact. Shards partition the seed set
// deterministically (c11tester -shard i/N), so the merge is exact: the merged
// summary is byte-identical — after Summary.Canonical, which strips
// machine-local timing — to the summary of an unsharded run of the same spec.
//
// Modes:
//
//	c11merge -o merged.json part0.json part1.json part2.json
//	    merge K partial summaries (refuses mismatched spec digests, duplicate
//	    or missing shard indices, and build-provenance skew; -force overrides
//	    the skew refusal only)
//	c11merge -events merged.jsonl ev0.jsonl ev1.jsonl ...
//	    merge event streams into one canonical stream (lifecycle events
//	    dropped, timestamps stripped, lines sorted); a single input
//	    canonicalizes it, so both sides of a comparison go through this
//	c11merge -captures merged.json manifest0.json manifest1.json ...
//	    merge flight-recorder capture manifests
//	c11merge -equal a.json b.json
//	    compare two summaries modulo Canonical; exit 0 when identical, 2 when
//	    they differ
//
// Exit codes: 0 success/identical, 1 structured error (corrupt input,
// validation refusal), 2 -equal mismatch.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"c11tester/internal/campaign"
	"c11tester/internal/obs"
	"c11tester/internal/safeio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("c11merge", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		outPath  = fs.String("o", "", "write the merged summary JSON to this file (summaries mode)")
		events   = fs.String("events", "", "merge the positional JSONL event streams into one canonical stream at this path")
		captures = fs.String("captures", "", "merge the positional capture manifests into one manifest at this path")
		equal    = fs.Bool("equal", false, "compare two summaries modulo Summary.Canonical; exit 0 identical, 2 different")
		force    = fs.Bool("force", false, "merge summaries despite build-provenance skew (spec-digest mismatches still refuse)")
		quiet    = fs.Bool("q", false, "suppress the merged human-readable report")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	paths := fs.Args()
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "c11merge:", err)
		return 1
	}
	switch {
	case *equal:
		if len(paths) != 2 {
			return fail(fmt.Errorf("-equal takes exactly two summary files, got %d", len(paths)))
		}
		return runEqual(paths[0], paths[1], out)
	case *events != "":
		lines, bad, err := campaign.CanonicalEvents(paths...)
		if err != nil {
			return fail(err)
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "c11merge: skipped %d torn/corrupt line(s)\n", bad)
		}
		var buf bytes.Buffer
		for _, l := range lines {
			buf.WriteString(l)
			buf.WriteByte('\n')
		}
		if err := safeio.WriteFileAtomic(*events, buf.Bytes(), 0o644); err != nil {
			return fail(err)
		}
		if !*quiet {
			fmt.Fprintf(out, "wrote %s (%d canonical event(s) from %d stream(s))\n", *events, len(lines), len(paths))
		}
		return 0
	case *captures != "":
		var parts []*obs.Manifest
		for _, p := range paths {
			m, err := obs.ReadManifest(p)
			if err != nil {
				return fail(err)
			}
			parts = append(parts, m)
		}
		merged := campaign.MergeManifests(parts)
		if err := merged.WriteFile(*captures); err != nil {
			return fail(err)
		}
		if !*quiet {
			fmt.Fprintf(out, "wrote %s (%d capture(s) from %d manifest(s))\n", *captures, len(merged.Captures), len(paths))
		}
		return 0
	}

	if len(paths) == 0 {
		return fail(fmt.Errorf("no partial summaries given (usage: c11merge -o merged.json part0.json part1.json ...)"))
	}
	var parts []*campaign.Summary
	for _, p := range paths {
		s, err := campaign.LoadSummary(p)
		if err != nil {
			return fail(err)
		}
		parts = append(parts, s)
	}
	merged, err := campaign.MergeSummaries(parts, *force)
	if err != nil {
		return fail(err)
	}
	if !*quiet {
		fmt.Fprint(out, merged.String())
	}
	if *outPath != "" {
		if err := merged.WriteJSON(*outPath); err != nil {
			return fail(err)
		}
		if !*quiet {
			fmt.Fprintf(out, "\nwrote %s (merged from %d shard(s))\n", *outPath, len(parts))
		}
	}
	return 0
}

// runEqual compares two summaries modulo Canonical and reports the first
// divergence when they differ.
func runEqual(pathA, pathB string, out *os.File) int {
	a, err := campaign.LoadSummary(pathA)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11merge:", err)
		return 1
	}
	b, err := campaign.LoadSummary(pathB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11merge:", err)
		return 1
	}
	ja, err := json.MarshalIndent(a.Canonical(), "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11merge:", err)
		return 1
	}
	jb, err := json.MarshalIndent(b.Canonical(), "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "c11merge:", err)
		return 1
	}
	if bytes.Equal(ja, jb) {
		fmt.Fprintf(out, "identical (modulo canonicalization): %s == %s\n", pathA, pathB)
		return 0
	}
	la, lb := bytes.Split(ja, []byte("\n")), bytes.Split(jb, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			fmt.Fprintf(out, "DIFFERENT: first divergence at canonical line %d:\n  %s: %s\n  %s: %s\n",
				i+1, pathA, bytes.TrimSpace(la[i]), pathB, bytes.TrimSpace(lb[i]))
			return 2
		}
	}
	fmt.Fprintf(out, "DIFFERENT: %s (%d line(s)) vs %s (%d line(s)); one is a prefix of the other\n",
		pathA, len(la), pathB, len(lb))
	return 2
}
